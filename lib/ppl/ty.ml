type scalar = Float | Int | Bool

type t =
  | Scalar of scalar
  | Tuple of t list
  | Array of t * int
  | Assoc of t * t

let float_ = Scalar Float
let int_ = Scalar Int
let bool_ = Scalar Bool
let array elt rank = Array (elt, rank)

let rec array_free = function
  | Scalar _ -> true
  | Tuple ts -> List.for_all array_free ts
  | Array _ | Assoc _ -> false

let rec well_formed = function
  | Scalar _ -> true
  | Tuple ts -> List.for_all well_formed ts
  | Array (elt, rank) -> rank >= 0 && array_free elt
  | Assoc (k, v) -> array_free k && array_free v

let equal (a : t) (b : t) = a = b

let rec pp fmt = function
  | Scalar Float -> Format.pp_print_string fmt "Float"
  | Scalar Int -> Format.pp_print_string fmt "Int"
  | Scalar Bool -> Format.pp_print_string fmt "Bool"
  | Tuple ts ->
      Format.fprintf fmt "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        ts
  | Array (elt, rank) -> Format.fprintf fmt "%a^%d" pp elt rank
  | Assoc (k, v) -> Format.fprintf fmt "(%a=>%a)^1" pp k pp v

let to_string t = Format.asprintf "%a" pp t
