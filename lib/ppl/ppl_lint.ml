open Ir

(* ------------------------------------------------------------------ *)
(* Access classification                                               *)
(* ------------------------------------------------------------------ *)

(* Lower's affinity rule, verbatim: an index is affine iff its
   simplified form is an affine expression (Vars are atoms, whatever
   they are bound to).  PPL210 and the cross-check must match the
   backend, so this is THE rule, not an approximation of it. *)
let lower_affine idx = Affine.of_exp (Simplify.exp idx) <> None

exception Data_dep

(* Replace maximal loop-invariant subtrees by fresh symbols; a
   loop-varying subtree that is not affine-composable is data-dependent.
   [tainted] holds the symbols that vary with the enclosing iteration:
   pattern indices, accumulators, and let bindings derived from them. *)
let rec skeleton tainted e =
  match e with
  | Ci _ | Var _ -> e
  | _ ->
      if Sym.Set.is_empty (Sym.Set.inter (Ir.free_vars e) tainted) then
        Var (Sym.fresh "inv")
      else (
        match e with
        | Prim (Add, [ a; b ]) ->
            Prim (Add, [ skeleton tainted a; skeleton tainted b ])
        | Prim (Sub, [ a; b ]) ->
            Prim (Sub, [ skeleton tainted a; skeleton tainted b ])
        | Prim (Neg, [ a ]) -> Prim (Neg, [ skeleton tainted a ])
        | Prim (Mul, ([ a; Ci c ] | [ Ci c; a ])) ->
            Prim (Mul, [ skeleton tainted a; Ci c ])
        | _ -> raise Data_dep)

let idx_class tainted idx =
  if lower_affine idx then `Affine
  else
    match Affine.of_exp (Simplify.exp (skeleton tainted idx)) with
    | Some _ -> `Mod_invariant
    | None -> `Data_dependent
    | exception Data_dep -> `Data_dependent

type service = Sequential | Cached

let predicted_services (p : program) =
  let flagged = Hashtbl.create 8 in
  Rewrite.iter_exp
    (function
      | Read (Var s, idxs)
        when List.exists (fun i -> Sym.equal i.iname s) p.inputs ->
          if List.exists (fun i -> not (lower_affine i)) idxs then
            Hashtbl.replace flagged s ()
      | _ -> ())
    p.body;
  List.map
    (fun i ->
      (i.iname, if Hashtbl.mem flagged i.iname then Cached else Sequential))
    p.inputs

let crosscheck ~cache_leftover (p : program) (d : Hw.design) =
  List.filter_map
    (fun (s, svc) ->
      let prefix = Sym.base s ^ "_cache" in
      let has_cache =
        List.exists
          (fun (m : Hw.mem) ->
            m.Hw.kind = Hw.Cache
            && String.starts_with ~prefix m.Hw.mem_name)
          d.Hw.mems
      in
      let expect = svc = Cached && cache_leftover in
      if expect && not has_cache then
        Some
          (Diagnostic.make ~code:"PPL213" ~severity:Diagnostic.Error
             ~where:(Sym.base s)
             "classified data-dependent (cache-served) but the lowered \
              design has no %s memory — lint and backend disagree"
             prefix)
      else if (not expect) && has_cache then
        Some
          (Diagnostic.make ~code:"PPL213" ~severity:Diagnostic.Error
             ~where:(Sym.base s)
             "classified affine (tile/sequential service) but the lowered \
              design instantiated %s — lint and backend disagree"
             prefix)
      else None)
    (predicted_services p)

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  benv : Bounds.env;  (** loop environment for interval proofs *)
  tainted : Sym.Set.t;  (** symbols that vary with the iteration *)
  path : string list;  (** pattern path, outermost first *)
}

let last = function [] -> None | l -> Some (List.nth l (List.length l - 1))

let subst_lets lets e =
  List.fold_left
    (fun e (s, rhs) -> Ir.subst (Sym.Map.singleton s rhs) e)
    e (List.rev lets)

let check_program (p : program) : Diagnostic.t list =
  let p = Tiling.canonicalize_lens p in
  let is_input s = List.exists (fun i -> Sym.equal i.iname s) p.inputs in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let sbound e =
    match Simplify.exp e with
    | Ci c -> Some c
    | Var s -> Ir.max_sizes_bound p s
    | e -> (
        match Affine.of_exp e with
        | Some a when List.for_all (fun (_, c) -> c >= 0) a.Affine.terms ->
            List.fold_left
              (fun acc (s, c) ->
                match (acc, Ir.max_sizes_bound p s) with
                | Some t, Some m -> Some (t + (c * m))
                | _ -> None)
              (Some a.Affine.const) a.Affine.terms
        | _ -> None)
  in
  let extent = function
    | Dfull e -> sbound e
    | Dtiles { total; tile } ->
        Option.map (fun t -> (t + tile - 1) / tile) (sbound total)
    | Dtail { tile; _ } -> Some tile
  in
  let syms_s l = String.concat "," (List.map Sym.name l) in

  (* ---- PPL210/211/212: classify one input read ---- *)
  let classify_read ctx s idxs rendered =
    let cls =
      List.fold_left
        (fun worst i ->
          match (worst, idx_class ctx.tainted i) with
          | `Data_dependent, _ | _, `Data_dependent -> `Data_dependent
          | `Mod_invariant, _ | _, `Mod_invariant -> `Mod_invariant
          | `Affine, `Affine -> `Affine)
        `Affine idxs
    in
    let mk code fmt =
      Diagnostic.make ~path:ctx.path ~code ~severity:Diagnostic.Info
        ~where:(Sym.name s) fmt
    in
    emit
      (match cls with
      | `Affine ->
          mk "PPL210"
            "%s: affine access — tile-buffer / sequential DRAM service"
            rendered
      | `Mod_invariant ->
          mk "PPL211"
            "%s: affine modulo loop-invariant terms — cache-served by the \
             current backend (tile service would need base-address \
             reconfiguration)"
            rendered
      | `Data_dependent ->
          mk "PPL212"
            "%s: data-dependent indices — served through a cache/CAM, not \
             a tile buffer"
            rendered)
  in

  (* ---- PPL222: division / log / sqrt guards ---- *)
  let guard ctx op e =
    let min_wanted = match op with `Div -> 1 | `Log -> 1 | `Sqrt -> 0 in
    let opname =
      match op with `Div -> "division" | `Log -> "log" | `Sqrt -> "sqrt"
    in
    let mk sev fmt =
      Diagnostic.make ~path:ctx.path ~code:"PPL222" ~severity:sev
        ~where:opname fmt
    in
    let describe =
      match op with
      | `Div -> "denominator not provably nonzero"
      | `Log -> "argument not provably positive"
      | `Sqrt -> "argument not provably nonnegative"
    in
    match Simplify.exp e with
    | Ci 0 -> emit (mk Diagnostic.Error "%s by constant zero" opname)
    | Cf f when f = 0.0 && op <> `Sqrt ->
        emit (mk Diagnostic.Error "%s of/by constant zero" opname)
    | Cf f when f < 0.0 && op <> `Div ->
        emit (mk Diagnostic.Error "%s of negative constant %g" opname f)
    | Ci _ | Cf _ -> ()
    | e' -> (
        let arg = match e' with Prim (ToFloat, [ x ]) -> x | x -> x in
        match Bounds.prove_ge ctx.benv arg min_wanted with
        | `Proven -> ()
        | `Violated when op <> `Div ->
            emit
              (mk Diagnostic.Error "%s: provably < %d: %s" describe
                 min_wanted (Pp.exp_to_string e))
        | `Violated | `Unknown ->
            emit (mk Diagnostic.Info "%s: %s" describe (Pp.exp_to_string e)))
  in

  (* ---- PPL220 (Len-sized domain) ---- *)
  let check_dom ctx idx d =
    match d with
    | Dfull e
      when Rewrite.exists_exp (function Len _ -> true | _ -> false) e ->
        emit
          (Diagnostic.make ~path:ctx.path ~code:"PPL220"
             ~severity:Diagnostic.Info ~where:(Sym.name idx)
             "domain %s is sized by a dynamically produced collection — \
              the dimension cannot be strip-mined; it is served by FIFO \
              streaming"
             (Pp.exp_to_string e))
    | _ -> ()
  in

  (* ---- PPL221: unused pattern indices ---- *)
  let check_unused ctx kind dims idxs parts =
    let used =
      List.fold_left
        (fun acc e -> Sym.Set.union acc (Ir.free_vars e))
        Sym.Set.empty parts
    in
    let used =
      List.fold_left
        (fun acc d ->
          match d with Dtail { outer; _ } -> Sym.Set.add outer acc | _ -> acc)
        used dims
    in
    List.iter
      (fun s ->
        if not (Sym.Set.mem s used) then
          emit
            (Diagnostic.make ~path:ctx.path ~code:"PPL221"
               ~severity:Diagnostic.Warning ~where:(Sym.name s)
               "%s index %s is never used: the dimension multiplies work \
                without addressing anything"
               kind (Sym.name s)))
      idxs
  in
  let check_dead_lets ctx lets rest_parts =
    let rec go = function
      | [] -> ()
      | (s, _) :: later ->
          let scope = List.map snd later @ rest_parts in
          if
            not
              (List.exists (fun e -> Sym.Set.mem s (Ir.free_vars e)) scope)
          then
            emit
              (Diagnostic.make ~path:ctx.path ~code:"PPL221"
                 ~severity:Diagnostic.Warning ~where:(Sym.name s)
                 "dead binding %s: bound but never used" (Sym.name s));
          go later
    in
    go lets
  in

  (* ---- PPL201/202: MultiFold write maps ---- *)
  let check_multifold ctx (mf : multifold_node) =
    let axes =
      List.map2
        (fun d s -> { Depend.asym = s; extent = extent d })
        mf.odims mf.oidxs
    in
    let innermost = last mf.oidxs in
    List.iter
      (fun (out : mf_out) ->
        let region =
          List.map
            (fun (off, len, b) ->
              (subst_lets mf.olets off, subst_lets mf.olets len, b))
            out.oregion
        in
        let offs =
          List.map
            (fun (off, _, _) -> Affine.of_exp (Simplify.exp off))
            region
        in
        if List.for_all Option.is_some offs then begin
          (* a region longer than 1 behaves like an extra unit-stride
             axis in that output dimension *)
          let syn =
            List.map
              (fun (_, len, b) ->
                match Simplify.exp len with
                | Ci 1 -> None
                | Ci c -> Some { Depend.asym = Sym.fresh "r"; extent = Some c }
                | _ -> Some { Depend.asym = Sym.fresh "r"; extent = b })
              region
          in
          let maps =
            List.map2
              (fun off s ->
                let off = Option.get off in
                match s with
                | None -> off
                | Some a -> Affine.add off (Affine.var a.Depend.asym))
              offs syn
          in
          let syn_axes = List.filter_map Fun.id syn in
          let verdict =
            Depend.injectivity ~axes:(axes @ syn_axes) maps
          in
          match verdict with
          | Depend.Injective | Depend.Unknown _ -> ()
          | Depend.Overlapping { dims; reason } ->
              (* axes with zero coefficient in every output dimension are
                 reduction axes: with a combine function present that is
                 the intended multiFold semantics (sum over j into
                 acc(i)), not a race *)
              let reduction_axes =
                List.for_all
                  (fun s ->
                    List.for_all (fun m -> Affine.coeff m s = 0) maps)
                  dims
              in
              let par s =
                (match innermost with
                | Some i -> Sym.equal s i
                | None -> false)
                || List.exists
                     (fun a -> Sym.equal a.Depend.asym s)
                     syn_axes
              in
              let dim_names =
                syms_s
                  (List.filter
                     (fun s ->
                       List.exists
                         (fun a -> Sym.equal a.Depend.asym s)
                         syn_axes
                       |> not)
                     dims)
              in
              let dim_names =
                if dim_names = "" then "region" else dim_names
              in
              if mf.ocomb = None then
                emit
                  (Diagnostic.make ~path:ctx.path ~code:"PPL201"
                     ~severity:Diagnostic.Error ~where:(Sym.name out.oacc)
                     "combine-less multiFold writes some accumulator cell \
                      more than once (%s; dims %s): the exactly-once \
                      contract is violated"
                     reason dim_names)
              else if reduction_axes then ()
              else if List.exists par dims then
                emit
                  (Diagnostic.make ~path:ctx.path ~code:"PPL201"
                     ~severity:Diagnostic.Error ~where:(Sym.name out.oacc)
                     "accumulator write race: the write map is \
                      non-injective along the parallelized dimension \
                      (%s; dims %s)"
                     reason dim_names)
              else
                emit
                  (Diagnostic.make ~path:ctx.path ~code:"PPL202"
                     ~severity:Diagnostic.Warning ~where:(Sym.name out.oacc)
                     "non-injective accumulator writes across serial \
                      dimension(s) %s: accumulation is order-dependent and \
                      the dimension cannot be parallelized (%s)"
                     dim_names reason)
        end)
      mf.oouts
  in

  (* ---- PPL202 (fold ignores acc) / PPL220 (carried dependence) ---- *)
  let check_fold ctx (f : fold_node) =
    if not (Sym.Set.mem f.facc (Ir.free_vars f.fupd)) then
      emit
        (Diagnostic.make ~path:ctx.path ~code:"PPL202"
           ~severity:Diagnostic.Warning ~where:(Sym.name f.facc)
           "fold update never reads the accumulator: iterations overwrite \
            instead of accumulating — parallelization is a race (did you \
            mean a map?)");
    Rewrite.iter_exp
      (function
        | Read ((Var a | Proj (Var a, _)), idxs) when Sym.equal a f.facc ->
            List.iter
              (fun i ->
                match Affine.of_exp (Simplify.exp i) with
                | Some aff
                  when List.exists
                         (fun s -> Affine.coeff aff s <> 0)
                         f.fidxs ->
                    emit
                      (Diagnostic.make ~path:ctx.path ~code:"PPL220"
                         ~severity:Diagnostic.Warning
                         ~where:(Sym.name f.facc)
                         "accumulator read %s depends on the fold index: \
                          loop-carried dependence across the dimension \
                          blocks strip-mining and parallelization"
                         (Pp.exp_to_string i))
                | _ -> ())
              idxs
        | _ -> ())
      f.fupd
  in

  (* ---- PPL203: degenerate GroupByFold keys ---- *)
  let check_groupbyfold ctx (g : groupbyfold_node) =
    let key = subst_lets g.glets g.gkey in
    match (Affine.of_exp (Simplify.exp key), last g.gidxs) with
    | Some aff, Some inner when Affine.coeff aff inner = 0 ->
        if List.for_all (fun s -> Affine.coeff aff s = 0) g.gidxs then
          emit
            (Diagnostic.make ~path:ctx.path ~code:"PPL203"
               ~severity:Diagnostic.Warning ~where:(Sym.name g.gacc)
               "groupByFold key %s is constant over the iteration domain: \
                every iteration updates a single bucket — this is a fold \
                paying for a CAM"
               (Pp.exp_to_string g.gkey))
        else
          emit
            (Diagnostic.make ~path:ctx.path ~code:"PPL203"
               ~severity:Diagnostic.Warning ~where:(Sym.name g.gacc)
               "groupByFold key %s is constant along the innermost \
                (parallelized) dimension: all lanes of a tile update the \
                same bucket and serialize on the CAM"
               (Pp.exp_to_string g.gkey))
    | _ -> ()
  in

  let enter ctx kind dims idxs =
    let benv =
      List.fold_left2 (fun b s d -> Bounds.enter b s d) ctx.benv idxs dims
    in
    { benv;
      tainted = List.fold_right Sym.Set.add idxs ctx.tainted;
      path = ctx.path @ [ Printf.sprintf "%s(%s)" kind (syms_s idxs) ] }
  in
  let taint ctx syms = { ctx with tainted = List.fold_right Sym.Set.add syms ctx.tainted } in
  let taint_let ctx s rhs =
    if Sym.Set.is_empty (Sym.Set.inter (Ir.free_vars rhs) ctx.tainted) then ctx
    else taint ctx [ s ]
  in

  let rec walk ctx e =
    (* inspections *)
    (match e with
    | Read (Var s, idxs) when is_input s && idxs <> [] ->
        classify_read ctx s idxs (Pp.exp_to_string e)
    | Prim (Div, [ _; den ]) | Prim (Mod, [ _; den ]) -> guard ctx `Div den
    | Prim (Sqrt, [ a ]) -> guard ctx `Sqrt a
    | Prim (Log, [ a ]) -> guard ctx `Log a
    | Let (s, _, body) when not (Sym.Set.mem s (Ir.free_vars body)) ->
        emit
          (Diagnostic.make ~path:ctx.path ~code:"PPL221"
             ~severity:Diagnostic.Warning ~where:(Sym.name s)
             "dead binding %s: bound but never used" (Sym.name s))
    | _ -> ());
    (* recursion with loop environments *)
    match e with
    | Map m ->
        List.iter2 (check_dom ctx) m.midxs m.mdims;
        check_unused ctx "map" m.mdims m.midxs [ m.mbody ];
        walk (enter ctx "map" m.mdims m.midxs) m.mbody
    | Fold f ->
        walk ctx f.finit;
        List.iter2 (check_dom ctx) f.fidxs f.fdims;
        check_unused ctx "fold" f.fdims f.fidxs [ f.fupd ];
        let ctx' = taint (enter ctx "fold" f.fdims f.fidxs) [ f.facc ] in
        check_fold ctx' f;
        walk ctx' f.fupd;
        walk (taint ctx [ f.fcomb.ca; f.fcomb.cb ]) f.fcomb.cbody
    | MultiFold mf ->
        walk ctx mf.oinit;
        List.iter2 (check_dom ctx) mf.oidxs mf.odims;
        check_unused ctx "multiFold" mf.odims mf.oidxs
          (List.map snd mf.olets
          @ List.concat_map
              (fun o ->
                o.oupd
                :: List.concat_map (fun (off, l, _) -> [ off; l ]) o.oregion)
              mf.oouts);
        let ctx0 = enter ctx "multiFold" mf.odims mf.oidxs in
        check_multifold ctx0 mf;
        check_dead_lets ctx0 mf.olets
          (List.concat_map
             (fun o ->
               o.oupd
               :: List.concat_map (fun (off, l, _) -> [ off; l ]) o.oregion)
             mf.oouts);
        let ctx' =
          List.fold_left
            (fun c (s, rhs) ->
              walk c rhs;
              taint_let c s rhs)
            ctx0 mf.olets
        in
        List.iter
          (fun o ->
            List.iter
              (fun (off, l, _) ->
                walk ctx' off;
                walk ctx' l)
              o.oregion;
            walk (taint ctx' [ o.oacc ]) o.oupd)
          mf.oouts;
        Option.iter
          (fun c -> walk (taint ctx [ c.ca; c.cb ]) c.cbody)
          mf.ocomb
    | FlatMap fm ->
        check_dom ctx fm.fmidx fm.fmdim;
        check_unused ctx "flatMap" [ fm.fmdim ] [ fm.fmidx ] [ fm.fmbody ];
        walk (enter ctx "flatMap" [ fm.fmdim ] [ fm.fmidx ]) fm.fmbody
    | GroupByFold g ->
        walk ctx g.ginit;
        List.iter2 (check_dom ctx) g.gidxs g.gdims;
        check_unused ctx "groupByFold" g.gdims g.gidxs
          ((g.gkey :: g.gupd :: List.map snd g.glets));
        let ctx0 = enter ctx "groupByFold" g.gdims g.gidxs in
        check_groupbyfold ctx0 g;
        check_dead_lets ctx0 g.glets [ g.gkey; g.gupd ];
        let ctx' =
          List.fold_left
            (fun c (s, rhs) ->
              walk c rhs;
              taint_let c s rhs)
            ctx0 g.glets
        in
        walk ctx' g.gkey;
        walk (taint ctx' [ g.gacc ]) g.gupd;
        walk (taint ctx [ g.gcomb.ca; g.gcomb.cb ]) g.gcomb.cbody
    | Let (s, rhs, body) ->
        walk ctx rhs;
        walk (taint_let ctx s rhs) body
    | e ->
        ignore
          (Rewrite.map_children
             (fun c ->
               walk ctx c;
               c)
             e)
  in
  walk { benv = Bounds.top; tainted = Sym.Set.empty; path = [] } p.body;
  List.sort Diagnostic.compare !diags

let check_all p =
  List.sort Diagnostic.compare (check_program p @ Bounds.check_program p)
