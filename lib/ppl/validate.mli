(** Type and well-formedness checking for PPL programs.

    Beyond ordinary typing, this enforces the restrictions of Section 3:
    no nested arrays, one-dimensional domains for FlatMap and GroupByFold,
    MultiFold update values of the same arity as the accumulator, and
    combine functions of type [(V, V) -> V]. *)

exception Type_error of string

val infer : Ty.t Sym.Map.t -> Ir.exp -> Ty.t
(** Infer the type of an expression under the given environment.
    @raise Type_error on any violation. *)

val check_program : Ir.program -> Ty.t
(** Validate a whole program and return its result type.  Size parameters
    are bound at type [Int], inputs at their declared array types. *)

val initial_env : Ir.program -> Ty.t Sym.Map.t
(** The environment binding a program's size parameters and inputs. *)
