(** Source-to-hardware provenance.

    A provenance value names the source pattern a node originated from
    (a stable preorder id like ["gemm/map#2"]) plus the trail of
    transformations that produced the node from it (e.g.
    [["strip_mine"; "metapipe.stage1"]]).  Provenance is metadata: no
    pass, check or equivalence may branch on it.  Everything here is
    deterministic — no gensym counters, no timestamps — so provenance
    strings are byte-stable across runs and domain counts. *)

type t = { origin : string; trail : string list }

val none : t
(** The empty provenance carried by freshly constructed nodes before the
    stamping pass runs. *)

val is_none : t -> bool

val root : string -> t
(** [root id] is provenance originating at source pattern [id] with an
    empty trail. *)

val push : t -> string -> t
(** [push p frame] appends [frame] to the transformation trail.  Pushing
    onto {!none} makes [frame] the origin instead, so defensively stamped
    nodes still read sensibly. *)

val frames : t -> string list
(** Origin followed by the trail — the full stack, outermost first. *)

val to_string : t -> string
(** Frames joined with [" -> "]; ["<none>"] for {!none}. *)

val sanitize_frame : string -> string
(** Make a frame safe for folded-stack output: [';'], whitespace and
    control characters become ['_'].  Idempotent. *)

val folded : t -> string
(** Sanitized frames joined with [';'] — one flamegraph stack. *)

val compare : t -> t -> int
val equal : t -> t -> bool
