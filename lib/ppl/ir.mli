(** The parallel pattern IR (Figure 2 of the paper).

    Four patterns: [Map] and [MultiFold] are multidimensional with
    fixed output size; [FlatMap] and [GroupByFold] are one-dimensional with
    dynamic output size.  [Fold] is kept as a distinct constructor for the
    MultiFold special case in which every iteration updates the entire
    accumulator — the pattern-interchange rules of Section 4 match on it.

    Every pattern binds explicit index symbols.  Bodies are plain
    expressions in the scope of those symbols; no first-class functions
    appear in the IR. *)

type prim =
  | Add | Sub | Mul | Div | Mod | Neg
  | Min | Max | Abs | Sqrt | Exp | Log
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or | Not
  | ToFloat | ToInt

(** Iteration domains.  Strip mining replaces a [Dfull] domain with a
    [Dtiles] loop over tiles whose body iterates a [Dtail] domain; pattern
    interchange distinguishes strided ([Dtiles]) from unstrided
    ([Dfull]/[Dtail]) domains, as in Section 4. *)
type dom =
  | Dfull of exp  (** unstrided domain of the given size *)
  | Dtiles of { total : exp; tile : int }
      (** strided tile loop: the index ranges over [ceil(total/tile)] tiles *)
  | Dtail of { total : exp; tile : int; outer : Sym.t }
      (** one tile: [min (tile, total - outer*tile)] iterations *)

and exp =
  | Var of Sym.t
  | Cf of float
  | Ci of int
  | Cb of bool
  | Tup of exp list
  | Proj of exp * int
  | Prim of prim * exp list
  | Let of Sym.t * exp * exp
  | If of exp * exp * exp
  | Len of exp * int  (** size of dimension [i] of an array expression *)
  | Read of exp * exp list  (** array element access *)
  | Slice of exp * slice_arg list  (** non-materializing view, e.g. row *)
  | Copy of copy  (** explicit tile copy introduced by strip mining *)
  | Zeros of Ty.t * exp list
      (** identity accumulator of given shape; the element type must be
          array-free (a scalar or tuple of scalars) *)
  | ArrLit of exp list  (** small 1-D array literal (FlatMap bodies) *)
  | EmptyArr of Ty.t  (** [] of the given element type (FlatMap bodies) *)
  | Map of map_node
  | Fold of fold_node
  | MultiFold of multifold_node
  | FlatMap of flatmap_node
  | GroupByFold of groupbyfold_node

and slice_arg = SFix of exp | SAll

and copy = {
  csrc : exp;  (** source array *)
  cdims : copy_dim list;  (** one per source dimension *)
  creuse : int;  (** reuse factor for overlapping tiles (sliding windows) *)
}

and copy_dim =
  | Coffset of { off : exp; len : exp; max_len : int option }
      (** the interval [off, off+len); [max_len] is the static bound used
          for buffer sizing when [len] is not a constant *)
  | Call  (** the whole dimension *)
  | Cfix of exp  (** a single index; the dimension disappears *)

and map_node = {
  mdims : dom list;
  midxs : Sym.t list;
  mbody : exp;
  mprov : Prov.t;  (** metadata only; never semantics *)
}

and fold_node = {
  fdims : dom list;
  fidxs : Sym.t list;
  finit : exp;
  facc : Sym.t;  (** bound to the whole current accumulator in [fupd] *)
  fupd : exp;
  fcomb : comb;
  fprov : Prov.t;
}

and multifold_node = {
  odims : dom list;
  oidxs : Sym.t list;
  oinit : exp;  (** whole-accumulator identity; a [Tup] for multi-component *)
  olets : (Sym.t * exp) list;
      (** per-iteration bindings shared by all outputs (the paper's [f]
          computes values like k-means' [minDistIndex] once and uses them
          in several (location, value-function) pairs); each binding is in
          scope of the indices and of the previous bindings *)
  oouts : mf_out list;  (** one per accumulator component *)
  ocomb : comb option;  (** [None] when each location is written once *)
  oprov : Prov.t;
}

and mf_out = {
  orange : exp list;  (** full shape of this accumulator component *)
  oregion : (exp * exp * int option) list;
      (** per dimension: (offset, length, static length bound); the update
          region of this iteration.  All-unit regions are scalar updates. *)
  oacc : Sym.t;  (** bound to the current region contents in [oupd] *)
  oupd : exp;  (** new region contents *)
}

and flatmap_node = {
  fmdim : dom;
  fmidx : Sym.t;
  fmbody : exp;
  fmprov : Prov.t;
}

and groupbyfold_node = {
  gdims : dom list;
      (** user programs are one-dimensional (Section 3); strip mining
          produces the flattened tiled form [Dtiles; Dtail] *)
  gidxs : Sym.t list;
  ginit : exp;  (** per-bucket identity *)
  glets : (Sym.t * exp) list;  (** per-iteration bindings shared by key/update *)
  gkey : exp;
  gacc : Sym.t;
  gupd : exp;
  gcomb : comb;
  gprov : Prov.t;
}

and comb = { ca : Sym.t; cb : Sym.t; cbody : exp }

type input = { iname : Sym.t; ielt : Ty.t; ishape : exp list }
(** A program input: a runtime array of element type [ielt] whose shape is
    given by expressions over the program's size parameters.  A scalar
    input has [ishape = []]. *)

type program = {
  pname : string;
  size_params : Sym.t list;  (** runtime size symbols (n, k, d, ...) *)
  max_sizes : (Sym.t * int) list;
      (** static upper bounds for size parameters, used to size on-chip
          buffers when a tiled dimension's extent is a runtime value *)
  inputs : input list;
  body : exp;
}

(** {1 Helpers} *)

val dom_size : dom -> exp
(** Number of iterations of a domain, as an expression ([Dtiles] yields
    [ceil(total/tile)], encoded with integer arithmetic). *)

val is_strided : dom -> bool
(** [true] exactly for [Dtiles]. *)

val comb_apply : comb -> exp -> exp -> exp
(** [comb_apply c a b] is [c]'s body with its parameters Let-bound to
    [a] and [b]. *)

val free_vars : exp -> Sym.Set.t
(** Free (unbound) symbols of an expression, respecting all binders. *)

val subst : exp Sym.Map.t -> exp -> exp
(** Capture-avoiding substitution (binders in the IR are globally fresh
    symbols, so plain traversal is safe; bound symbols shadow). *)

val rename_binders : exp -> exp
(** Refresh every binder in the expression with fresh symbols (used when a
    transformation duplicates a subterm). *)

val max_sizes_bound : program -> Sym.t -> int option
(** Static upper bound declared for a size parameter, if any. *)
