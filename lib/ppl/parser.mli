(** Parser for the concrete PPL syntax that {!Pp} prints.

    Together with the printer this makes programs first-class text
    artifacts: the CLI's [export] output parses back, programs can be
    written in [.ppl] files, and the printer/parser roundtrip is property
    tested ([parse (print p)] is alpha-equivalent to [p] and evaluates
    identically).

    The grammar covers the full IR: the four patterns (plus [Fold]),
    tiled domains ([n/64] strided loops, [64@n[ii]] tile tails), shared
    bindings, update regions with static bounds ([off+:len~max]), tile
    copies with reuse factors, and program headers ([size], [maxsize],
    [input] declarations).  All binders are freshly gensymmed, so parsed
    programs obey the same global-uniqueness invariant DSL-built programs
    do. *)

exception Parse_error of string
(** Carries a message with line/column information. *)

val program_of_string : string -> Ir.program
(** @raise Parse_error on malformed input. *)

val exp_of_string : ?scope:(string * Sym.t) list -> string -> Ir.exp
(** Parse one expression; [scope] gives meanings to free identifiers.
    @raise Parse_error on malformed input or unbound identifiers. *)
