type t = { origin : string; trail : string list }

let none = { origin = ""; trail = [] }
let is_none p = p.origin = "" && p.trail = []
let root origin = { origin; trail = [] }

let push p frame =
  if is_none p then { origin = frame; trail = [] }
  else { p with trail = p.trail @ [ frame ] }

let frames p = if is_none p then [] else p.origin :: p.trail

let to_string p =
  match frames p with [] -> "<none>" | fs -> String.concat " -> " fs

let sanitize_frame s =
  String.map
    (fun c ->
      match c with
      | ';' | ' ' | '\t' | '\n' | '\r' -> '_'
      | c when Char.code c < 0x20 -> '_'
      | c -> c)
    s

let folded p =
  match frames p with
  | [] -> "<none>"
  | fs -> String.concat ";" (List.map sanitize_frame fs)

let compare a b =
  match String.compare a.origin b.origin with
  | 0 -> List.compare String.compare a.trail b.trail
  | n -> n

let equal a b = compare a b = 0
