(** Unique symbols (variables, indices, size parameters) of the PPL IR. *)

type t

val fresh : string -> t
(** [fresh base] is a new symbol whose printed name starts with [base].
    Every call returns a distinct symbol, even for equal base names. *)

val name : t -> string
(** Printable name, unique per symbol (base + numeric suffix). *)

val base : t -> string
(** The base name passed to {!fresh}. *)

val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
