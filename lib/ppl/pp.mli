(** Paper-style pretty printing of PPL programs.

    Output mimics the concrete syntax of the paper's figures, e.g.
    [multiFold(n/b0)((k,d),k)(zeros){ ii => ... }{ (a,b) => ... }]. *)

val pp_prim : Format.formatter -> Ir.prim -> unit
val pp_dom : Format.formatter -> Ir.dom -> unit
val pp_exp : Format.formatter -> Ir.exp -> unit
val pp_program : Format.formatter -> Ir.program -> unit
val exp_to_string : Ir.exp -> string
val program_to_string : Ir.program -> string
