(** Source-level linter for the parallel pattern IR.

    Where {!Hw_lint} re-derives hazards on the finished design, this
    analyzer decides the same class of facts on the pattern IR itself —
    before any hardware exists — and reports them against the source
    pattern that caused them.  The properties are exactly the ones the
    paper's tiling story (Section 4) relies on: injectivity of
    MultiFold accumulator write maps (via {!Depend}), affine
    classification of every array access (tile buffer vs cache/CAM
    service, the generality claim over polyhedral tooling), and
    strip-mining legality.  Codes are stable and documented in
    [doc/LINTS.md]:

    - [PPL201] (error) — accumulator write race: non-injective write
      map on a parallelized dimension, or a combine-less MultiFold
      writing a cell more than once;
    - [PPL202] (warning) — order-dependent accumulation: non-injective
      writes across serial dimensions, or a fold update that never
      reads its accumulator;
    - [PPL203] (warning) — degenerate GroupByFold key: provably
      constant along the parallelized dimension (every lane updates
      the same bucket);
    - [PPL210/211/212] (info) — access classified affine /
      affine-modulo-loop-invariant / data-dependent, predicting
      tile-buffer vs cache service;
    - [PPL213] (error) — the prediction disagrees with the memories
      {!Lower} actually instantiated (a lint bug, surfaced by
      {!crosscheck});
    - [PPL220] — strip-mining blockers: a domain sized by a
      dynamically produced collection (info; served by FIFO streaming)
      or a loop-carried accumulator dependence (warning);
    - [PPL221] (warning) — hygiene: unused pattern indices, dead
      [Let] bindings;
    - [PPL222] — division/log/sqrt guards via the {!Bounds} interval
      machinery: error when provably violated, info when not provable.

    {!Bounds} itself reports [PPL230]/[PPL231] on the same
    {!Diagnostic} path. *)

val check_program : Ir.program -> Diagnostic.t list
(** All PPL2xx findings for the program (after {!Tiling.canonicalize_lens}),
    sorted with {!Diagnostic.compare}.  Does not include the {!Bounds}
    findings; see {!check_all}. *)

val check_all : Ir.program -> Diagnostic.t list
(** {!check_program} plus {!Bounds.check_program}, one sorted list —
    what [ppl-fpga lint-ir] prints. *)

type service =
  | Sequential  (** every index affine: tile buffer / sequential DRAM *)
  | Cached  (** some read has a non-affine index: cache-served *)

val predicted_services : Ir.program -> (Sym.t * service) list
(** Per program input, the memory service the access classification
    predicts {!Lower} will instantiate, using Lower's own affinity
    rule on the same program. *)

val crosscheck :
  cache_leftover:bool -> Ir.program -> Hw.design -> Diagnostic.t list
(** [crosscheck ~cache_leftover p d] compares {!predicted_services} on
    [p] (the program that was lowered) against the cache memories in
    [d]: a [Cached] prediction must correspond to an [<arr>_cache]
    memory exactly when [cache_leftover] is set, and a [Sequential]
    prediction to its absence.  Any disagreement is a [PPL213] error —
    the classification and the backend have diverged. *)
