type prim =
  | Add | Sub | Mul | Div | Mod | Neg
  | Min | Max | Abs | Sqrt | Exp | Log
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or | Not
  | ToFloat | ToInt

type dom =
  | Dfull of exp
  | Dtiles of { total : exp; tile : int }
  | Dtail of { total : exp; tile : int; outer : Sym.t }

and exp =
  | Var of Sym.t
  | Cf of float
  | Ci of int
  | Cb of bool
  | Tup of exp list
  | Proj of exp * int
  | Prim of prim * exp list
  | Let of Sym.t * exp * exp
  | If of exp * exp * exp
  | Len of exp * int
  | Read of exp * exp list
  | Slice of exp * slice_arg list
  | Copy of copy
  | Zeros of Ty.t * exp list
  | ArrLit of exp list
  | EmptyArr of Ty.t
  | Map of map_node
  | Fold of fold_node
  | MultiFold of multifold_node
  | FlatMap of flatmap_node
  | GroupByFold of groupbyfold_node

and slice_arg = SFix of exp | SAll

and copy = { csrc : exp; cdims : copy_dim list; creuse : int }

and copy_dim =
  | Coffset of { off : exp; len : exp; max_len : int option }
  | Call
  | Cfix of exp

and map_node = {
  mdims : dom list;
  midxs : Sym.t list;
  mbody : exp;
  mprov : Prov.t;
}

and fold_node = {
  fdims : dom list;
  fidxs : Sym.t list;
  finit : exp;
  facc : Sym.t;
  fupd : exp;
  fcomb : comb;
  fprov : Prov.t;
}

and multifold_node = {
  odims : dom list;
  oidxs : Sym.t list;
  oinit : exp;
  olets : (Sym.t * exp) list;
  oouts : mf_out list;
  ocomb : comb option;
  oprov : Prov.t;
}

and mf_out = {
  orange : exp list;
  oregion : (exp * exp * int option) list;
  oacc : Sym.t;
  oupd : exp;
}

and flatmap_node = {
  fmdim : dom;
  fmidx : Sym.t;
  fmbody : exp;
  fmprov : Prov.t;
}

and groupbyfold_node = {
  gdims : dom list;
  gidxs : Sym.t list;
  ginit : exp;
  glets : (Sym.t * exp) list;
  gkey : exp;
  gacc : Sym.t;
  gupd : exp;
  gcomb : comb;
  gprov : Prov.t;
}

and comb = { ca : Sym.t; cb : Sym.t; cbody : exp }

type input = { iname : Sym.t; ielt : Ty.t; ishape : exp list }

type program = {
  pname : string;
  size_params : Sym.t list;
  max_sizes : (Sym.t * int) list;
  inputs : input list;
  body : exp;
}

let dom_size = function
  | Dfull e -> e
  | Dtiles { total; tile } ->
      (* ceil(total/tile) = (total + tile - 1) / tile *)
      Prim (Div, [ Prim (Add, [ total; Ci (tile - 1) ]); Ci tile ])
  | Dtail { total; tile; outer } ->
      Prim
        (Min, [ Ci tile; Prim (Sub, [ total; Prim (Mul, [ Var outer; Ci tile ]) ]) ])

let is_strided = function Dtiles _ -> true | Dfull _ | Dtail _ -> false

let comb_apply c a b = Let (c.ca, a, Let (c.cb, b, c.cbody))

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

let rec fv_exp bound acc = function
  | Var s -> if Sym.Set.mem s bound then acc else Sym.Set.add s acc
  | Cf _ | Ci _ | Cb _ | EmptyArr _ -> acc
  | Tup es | Prim (_, es) | ArrLit es -> List.fold_left (fv_exp bound) acc es
  | Proj (e, _) | Len (e, _) -> fv_exp bound acc e
  | Let (s, e1, e2) -> fv_exp (Sym.Set.add s bound) (fv_exp bound acc e1) e2
  | If (c, t, e) -> fv_exp bound (fv_exp bound (fv_exp bound acc c) t) e
  | Read (a, idxs) -> List.fold_left (fv_exp bound) (fv_exp bound acc a) idxs
  | Slice (a, args) ->
      List.fold_left
        (fun acc -> function SFix e -> fv_exp bound acc e | SAll -> acc)
        (fv_exp bound acc a) args
  | Copy { csrc; cdims; _ } ->
      List.fold_left
        (fun acc -> function
          | Coffset { off; len; _ } -> fv_exp bound (fv_exp bound acc off) len
          | Call -> acc
          | Cfix e -> fv_exp bound acc e)
        (fv_exp bound acc csrc) cdims
  | Zeros (_, shape) -> List.fold_left (fv_exp bound) acc shape
  | Map { mdims; midxs; mbody; _ } ->
      let acc = List.fold_left (fv_dom bound) acc mdims in
      fv_exp (List.fold_left (fun b s -> Sym.Set.add s b) bound midxs) acc mbody
  | Fold { fdims; fidxs; finit; facc; fupd; fcomb; _ } ->
      let acc = List.fold_left (fv_dom bound) acc fdims in
      let acc = fv_exp bound acc finit in
      let inner =
        List.fold_left (fun b s -> Sym.Set.add s b) bound (facc :: fidxs)
      in
      let acc = fv_exp inner acc fupd in
      fv_comb bound acc fcomb
  | MultiFold { odims; oidxs; oinit; olets; oouts; ocomb; _ } ->
      let acc = List.fold_left (fv_dom bound) acc odims in
      let acc = fv_exp bound acc oinit in
      let inner = List.fold_left (fun b s -> Sym.Set.add s b) bound oidxs in
      let inner, acc =
        List.fold_left
          (fun (inner, acc) (s, e1) ->
            (Sym.Set.add s inner, fv_exp inner acc e1))
          (inner, acc) olets
      in
      let acc =
        List.fold_left
          (fun acc { orange; oregion; oacc; oupd } ->
            let acc = List.fold_left (fv_exp bound) acc orange in
            let acc =
              List.fold_left
                (fun acc (off, len, _) -> fv_exp inner (fv_exp inner acc off) len)
                acc oregion
            in
            fv_exp (Sym.Set.add oacc inner) acc oupd)
          acc oouts
      in
      (match ocomb with None -> acc | Some c -> fv_comb bound acc c)
  | FlatMap { fmdim; fmidx; fmbody; _ } ->
      let acc = fv_dom bound acc fmdim in
      fv_exp (Sym.Set.add fmidx bound) acc fmbody
  | GroupByFold { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; _ } ->
      let acc = List.fold_left (fv_dom bound) acc gdims in
      let acc = fv_exp bound acc ginit in
      let inner = List.fold_left (fun b s -> Sym.Set.add s b) bound gidxs in
      let inner, acc =
        List.fold_left
          (fun (inner, acc) (s, e1) ->
            (Sym.Set.add s inner, fv_exp inner acc e1))
          (inner, acc) glets
      in
      let acc = fv_exp inner acc gkey in
      let acc = fv_exp (Sym.Set.add gacc inner) acc gupd in
      fv_comb bound acc gcomb

and fv_dom bound acc = function
  | Dfull e -> fv_exp bound acc e
  | Dtiles { total; _ } -> fv_exp bound acc total
  | Dtail { total; outer; _ } ->
      let acc = fv_exp bound acc total in
      if Sym.Set.mem outer bound then acc else Sym.Set.add outer acc

and fv_comb bound acc { ca; cb; cbody } =
  fv_exp (Sym.Set.add ca (Sym.Set.add cb bound)) acc cbody

let free_vars e = fv_exp Sym.Set.empty Sym.Set.empty e

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(* All binders are globally fresh symbols (the DSL and every transformation
   generate them with [Sym.fresh]), so substitution needs no renaming: a
   bound symbol can never collide with a substituted term's free symbols.
   Bound symbols still shadow map entries. *)
let rec subst env e =
  if Sym.Map.is_empty env then e
  else
    match e with
    | Var s -> (match Sym.Map.find_opt s env with Some e' -> e' | None -> e)
    | Cf _ | Ci _ | Cb _ | EmptyArr _ -> e
    | Tup es -> Tup (List.map (subst env) es)
    | Proj (e1, i) -> Proj (subst env e1, i)
    | Prim (p, es) -> Prim (p, List.map (subst env) es)
    | Let (s, e1, e2) ->
        Let (s, subst env e1, subst (Sym.Map.remove s env) e2)
    | If (c, t, f) -> If (subst env c, subst env t, subst env f)
    | Len (e1, i) -> Len (subst env e1, i)
    | Read (a, idxs) -> Read (subst env a, List.map (subst env) idxs)
    | Slice (a, args) ->
        Slice
          ( subst env a,
            List.map
              (function SFix e1 -> SFix (subst env e1) | SAll -> SAll)
              args )
    | Copy { csrc; cdims; creuse } ->
        Copy
          { csrc = subst env csrc;
            cdims =
              List.map
                (function
                  | Coffset { off; len; max_len } ->
                      Coffset { off = subst env off; len = subst env len; max_len }
                  | Call -> Call
                  | Cfix e1 -> Cfix (subst env e1))
                cdims;
            creuse }
    | Zeros (sc, shape) -> Zeros (sc, List.map (subst env) shape)
    | ArrLit es -> ArrLit (List.map (subst env) es)
    | Map { mdims; midxs; mbody; mprov } ->
        let env' = List.fold_left (fun m s -> Sym.Map.remove s m) env midxs in
        Map
          { mdims = List.map (subst_dom env) mdims;
            midxs;
            mbody = subst env' mbody;
            mprov }
    | Fold { fdims; fidxs; finit; facc; fupd; fcomb; fprov } ->
        let env' = List.fold_left (fun m s -> Sym.Map.remove s m) env fidxs in
        Fold
          { fdims = List.map (subst_dom env) fdims;
            fidxs;
            finit = subst env finit;
            facc;
            fupd = subst (Sym.Map.remove facc env') fupd;
            fcomb = subst_comb env fcomb;
            fprov }
    | MultiFold { odims; oidxs; oinit; olets; oouts; ocomb; oprov } ->
        let env' = List.fold_left (fun m s -> Sym.Map.remove s m) env oidxs in
        let env', olets =
          List.fold_left
            (fun (env', acc) (s, e1) ->
              let e1' = subst env' e1 in
              (Sym.Map.remove s env', (s, e1') :: acc))
            (env', []) olets
        in
        let olets = List.rev olets in
        MultiFold
          { odims = List.map (subst_dom env) odims;
            oidxs;
            oinit = subst env oinit;
            olets;
            oouts =
              List.map
                (fun { orange; oregion; oacc; oupd } ->
                  { orange = List.map (subst env) orange;
                    oregion =
                      List.map
                        (fun (off, len, b) -> (subst env' off, subst env' len, b))
                        oregion;
                    oacc;
                    oupd = subst (Sym.Map.remove oacc env') oupd })
                oouts;
            ocomb = Option.map (subst_comb env) ocomb;
            oprov }
    | FlatMap { fmdim; fmidx; fmbody; fmprov } ->
        FlatMap
          { fmdim = subst_dom env fmdim;
            fmidx;
            fmbody = subst (Sym.Map.remove fmidx env) fmbody;
            fmprov }
    | GroupByFold { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; gprov }
      ->
        let env' = List.fold_left (fun m s -> Sym.Map.remove s m) env gidxs in
        let env', glets =
          List.fold_left
            (fun (env', acc) (s, e1) ->
              let e1' = subst env' e1 in
              (Sym.Map.remove s env', (s, e1') :: acc))
            (env', []) glets
        in
        let glets = List.rev glets in
        GroupByFold
          { gdims = List.map (subst_dom env) gdims;
            gidxs;
            ginit = subst env ginit;
            glets;
            gkey = subst env' gkey;
            gacc;
            gupd = subst (Sym.Map.remove gacc env') gupd;
            gcomb = subst_comb env gcomb;
            gprov }

and subst_dom env = function
  | Dfull e -> Dfull (subst env e)
  | Dtiles { total; tile } -> Dtiles { total = subst env total; tile }
  | Dtail { total; tile; outer } -> (
      let total = subst env total in
      match Sym.Map.find_opt outer env with
      | None -> Dtail { total; tile; outer }
      | Some (Var outer') -> Dtail { total; tile; outer = outer' }
      | Some _ ->
          invalid_arg "Ir.subst: Dtail outer index substituted by a non-variable")

and subst_comb env { ca; cb; cbody } =
  { ca; cb; cbody = subst (Sym.Map.remove ca (Sym.Map.remove cb env)) cbody }

(* ------------------------------------------------------------------ *)
(* Binder refreshing                                                   *)
(* ------------------------------------------------------------------ *)

let rec ren env e =
  let var s = match Sym.Map.find_opt s env with Some s' -> s' | None -> s in
  match e with
  | Var s -> Var (var s)
  | Cf _ | Ci _ | Cb _ | EmptyArr _ -> e
  | Tup es -> Tup (List.map (ren env) es)
  | Proj (e1, i) -> Proj (ren env e1, i)
  | Prim (p, es) -> Prim (p, List.map (ren env) es)
  | Let (s, e1, e2) ->
      let s' = Sym.fresh (Sym.base s) in
      Let (s', ren env e1, ren (Sym.Map.add s s' env) e2)
  | If (c, t, f) -> If (ren env c, ren env t, ren env f)
  | Len (e1, i) -> Len (ren env e1, i)
  | Read (a, idxs) -> Read (ren env a, List.map (ren env) idxs)
  | Slice (a, args) ->
      Slice
        (ren env a, List.map (function SFix e1 -> SFix (ren env e1) | SAll -> SAll) args)
  | Copy { csrc; cdims; creuse } ->
      Copy
        { csrc = ren env csrc;
          cdims =
            List.map
              (function
                | Coffset { off; len; max_len } ->
                    Coffset { off = ren env off; len = ren env len; max_len }
                | Call -> Call
                | Cfix e1 -> Cfix (ren env e1))
              cdims;
          creuse }
  | Zeros (sc, shape) -> Zeros (sc, List.map (ren env) shape)
  | ArrLit es -> ArrLit (List.map (ren env) es)
  | Map { mdims; midxs; mbody; mprov } ->
      let midxs' = List.map (fun s -> Sym.fresh (Sym.base s)) midxs in
      let env' =
        List.fold_left2 (fun m s s' -> Sym.Map.add s s' m) env midxs midxs'
      in
      Map
        { mdims = List.map (ren_dom env) mdims;
          midxs = midxs';
          mbody = ren env' mbody;
          mprov }
  | Fold { fdims; fidxs; finit; facc; fupd; fcomb; fprov } ->
      let fidxs' = List.map (fun s -> Sym.fresh (Sym.base s)) fidxs in
      let facc' = Sym.fresh (Sym.base facc) in
      let env' =
        List.fold_left2 (fun m s s' -> Sym.Map.add s s' m) env fidxs fidxs'
      in
      Fold
        { fdims = List.map (ren_dom env) fdims;
          fidxs = fidxs';
          finit = ren env finit;
          facc = facc';
          fupd = ren (Sym.Map.add facc facc' env') fupd;
          fcomb = ren_comb env fcomb;
          fprov }
  | MultiFold { odims; oidxs; oinit; olets; oouts; ocomb; oprov } ->
      let oidxs' = List.map (fun s -> Sym.fresh (Sym.base s)) oidxs in
      let env' =
        List.fold_left2 (fun m s s' -> Sym.Map.add s s' m) env oidxs oidxs'
      in
      let env', olets' =
        List.fold_left
          (fun (env', acc) (s, e1) ->
            let e1' = ren env' e1 in
            let s' = Sym.fresh (Sym.base s) in
            (Sym.Map.add s s' env', (s', e1') :: acc))
          (env', []) olets
      in
      let olets' = List.rev olets' in
      MultiFold
        { odims = List.map (ren_dom env) odims;
          oidxs = oidxs';
          oinit = ren env oinit;
          olets = olets';
          oouts =
            List.map
              (fun { orange; oregion; oacc; oupd } ->
                let oacc' = Sym.fresh (Sym.base oacc) in
                { orange = List.map (ren env) orange;
                  oregion =
                    List.map (fun (off, len, b) -> (ren env' off, ren env' len, b)) oregion;
                  oacc = oacc';
                  oupd = ren (Sym.Map.add oacc oacc' env') oupd })
              oouts;
          ocomb = Option.map (ren_comb env) ocomb;
          oprov }
  | FlatMap { fmdim; fmidx; fmbody; fmprov } ->
      let fmidx' = Sym.fresh (Sym.base fmidx) in
      FlatMap
        { fmdim = ren_dom env fmdim;
          fmidx = fmidx';
          fmbody = ren (Sym.Map.add fmidx fmidx' env) fmbody;
          fmprov }
  | GroupByFold { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; gprov }
    ->
      let gidxs' = List.map (fun s -> Sym.fresh (Sym.base s)) gidxs in
      let gacc' = Sym.fresh (Sym.base gacc) in
      let env1 =
        List.fold_left2 (fun m s s' -> Sym.Map.add s s' m) env gidxs gidxs'
      in
      let env1, glets' =
        List.fold_left
          (fun (env1, acc) (s, e1) ->
            let e1' = ren env1 e1 in
            let s' = Sym.fresh (Sym.base s) in
            (Sym.Map.add s s' env1, (s', e1') :: acc))
          (env1, []) glets
      in
      let glets' = List.rev glets' in
      GroupByFold
        { gdims = List.map (ren_dom env) gdims;
          gidxs = gidxs';
          ginit = ren env ginit;
          glets = glets';
          gkey = ren env1 gkey;
          gacc = gacc';
          gupd = ren (Sym.Map.add gacc gacc' env1) gupd;
          gcomb = ren_comb env gcomb;
          gprov }

and ren_dom env = function
  | Dfull e -> Dfull (ren env e)
  | Dtiles { total; tile } -> Dtiles { total = ren env total; tile }
  | Dtail { total; tile; outer } ->
      let outer =
        match Sym.Map.find_opt outer env with Some s -> s | None -> outer
      in
      Dtail { total = ren env total; tile; outer }

and ren_comb env { ca; cb; cbody } =
  let ca' = Sym.fresh (Sym.base ca) and cb' = Sym.fresh (Sym.base cb) in
  { ca = ca';
    cb = cb';
    cbody = ren (Sym.Map.add ca ca' (Sym.Map.add cb cb' env)) cbody }

let rename_binders e = ren Sym.Map.empty e

let max_sizes_bound p s =
  List.find_opt (fun (k, _) -> Sym.equal k s) p.max_sizes |> Option.map snd
