(** Smart constructors for building PPL programs.

    This plays the role of the paper's "high-level translation layer from
    user code to PPL": OCaml functions receive the freshly bound index
    variables as expressions, so programs read like the paper's figures.
    All binders are generated with {!Sym.fresh}, keeping the global
    uniqueness invariant that {!Ir.subst} relies on. *)

open Ir

(** {1 Scalars and operators} *)

val f : float -> exp
val i : int -> exp
val b : bool -> exp
val ( +! ) : exp -> exp -> exp
val ( -! ) : exp -> exp -> exp
val ( *! ) : exp -> exp -> exp
val ( /! ) : exp -> exp -> exp
val ( %! ) : exp -> exp -> exp
val ( <! ) : exp -> exp -> exp
val ( <=! ) : exp -> exp -> exp
val ( >! ) : exp -> exp -> exp
val ( >=! ) : exp -> exp -> exp
val ( =! ) : exp -> exp -> exp
val ( <>! ) : exp -> exp -> exp
val ( &&! ) : exp -> exp -> exp
val ( ||! ) : exp -> exp -> exp
val not_ : exp -> exp
val neg : exp -> exp
val min_ : exp -> exp -> exp
val max_ : exp -> exp -> exp
val abs_ : exp -> exp
val sqrt_ : exp -> exp
val square : exp -> exp
val to_float : exp -> exp
val to_int : exp -> exp
val if_ : exp -> exp -> exp -> exp
val let_ : ?name:string -> exp -> (exp -> exp) -> exp

(** {1 Tuples} *)

val tup : exp list -> exp
val pair : exp -> exp -> exp
val fst_ : exp -> exp
val snd_ : exp -> exp

(** {1 Arrays} *)

val read : exp -> exp list -> exp
val slice_row : exp -> exp -> exp
(** [slice_row a i] is the paper's [a.slice(i, * )]. *)

val slice : exp -> slice_arg list -> exp
val len : exp -> int -> exp
val zeros : Ty.scalar -> exp list -> exp

(** Like {!zeros} with a tuple-of-scalars element type. *)
val zeros_t : Ty.t -> exp list -> exp
val arr : exp list -> exp
val empty : Ty.t -> exp

(** {1 Domains} *)

val dfull : exp -> dom
val dtiles : total:exp -> tile:int -> dom

(** {1 Patterns} *)

val map : dom list -> (exp list -> exp) -> exp
val map1 : dom -> (exp -> exp) -> exp
val map2d : dom -> dom -> (exp -> exp -> exp) -> exp

val fold :
  dom list -> init:exp -> comb:(exp -> exp -> exp) -> (exp list -> exp -> exp) -> exp
(** [fold dims ~init ~comb upd]: [upd idxs acc] is the new whole
    accumulator. *)

val fold1 :
  dom -> init:exp -> comb:(exp -> exp -> exp) -> (exp -> exp -> exp) -> exp

type out_spec = {
  range : exp list;  (** full shape of this accumulator component *)
  region : (exp * exp * int option) list;  (** (offset, len, static bound) *)
  upd : exp -> exp;  (** current region contents -> new contents *)
}

val point : exp list -> (exp * exp * int option) list
(** Unit region at the given offsets (a scalar update). *)

val multifold :
  dom list ->
  init:exp ->
  ?comb:(exp -> exp -> exp) ->
  (exp list -> out_spec list) ->
  exp
(** [multifold dims ~init ?comb outs]: [outs idxs] gives one {!out_spec}
    per accumulator component.  [?comb] omitted means each location is
    written exactly once (the paper's underscore). *)

val multifold_lets :
  dom list ->
  init:exp ->
  ?comb:(exp -> exp -> exp) ->
  (exp list -> (string * exp) list * (exp list -> out_spec list)) ->
  exp
(** Like {!multifold} but with shared per-iteration bindings: the body
    receives the index expressions and returns named bindings plus a
    function from the bound values to the output specs.  Used when several
    accumulator components depend on one computation (k-means'
    [minDistIndex]). *)

val flatmap : dom -> (exp -> exp) -> exp
val filter : dom -> (exp -> exp) -> (exp -> exp) -> exp
(** [filter d pred elt] is the FlatMap encoding of a filter. *)

val groupbyfold :
  dom -> init:exp -> comb:(exp -> exp -> exp) -> (exp -> exp * (exp -> exp)) -> exp
(** [groupbyfold d ~init ~comb f]: [f idx] returns the key and the
    per-bucket accumulator update. *)

(** {1 Programs} *)

val size : string -> Sym.t

val program :
  name:string ->
  sizes:Sym.t list ->
  ?max_sizes:(Sym.t * int) list ->
  inputs:input list ->
  exp ->
  program

val input : string -> Ty.t -> exp list -> input
val in_var : input -> exp
