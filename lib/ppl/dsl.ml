open Ir

let f x = Cf x
let i x = Ci x
let b x = Cb x

let prim2 p a b = Prim (p, [ a; b ])
let ( +! ) = prim2 Add
let ( -! ) = prim2 Sub
let ( *! ) = prim2 Mul
let ( /! ) = prim2 Div
let ( %! ) = prim2 Mod
let ( <! ) = prim2 Lt
let ( <=! ) = prim2 Le
let ( >! ) = prim2 Gt
let ( >=! ) = prim2 Ge
let ( =! ) = prim2 Eq
let ( <>! ) = prim2 Ne
let ( &&! ) = prim2 And
let ( ||! ) = prim2 Or
let not_ e = Prim (Not, [ e ])
let neg e = Prim (Neg, [ e ])
let min_ = prim2 Min
let max_ = prim2 Max
let abs_ e = Prim (Abs, [ e ])
let sqrt_ e = Prim (Sqrt, [ e ])
let square e = Prim (Mul, [ e; e ])
let to_float e = Prim (ToFloat, [ e ])
let to_int e = Prim (ToInt, [ e ])
let if_ c t e = If (c, t, e)

let let_ ?(name = "t") e body =
  let s = Sym.fresh name in
  Let (s, e, body (Var s))

let tup es = Tup es
let pair a b = Tup [ a; b ]
let fst_ e = Proj (e, 0)
let snd_ e = Proj (e, 1)
let read a idxs = Read (a, idxs)
let slice a args = Slice (a, args)

let slice_row a idx_e = Slice (a, [ SFix idx_e; SAll ])

let len a d = Len (a, d)
let zeros sc shape = Zeros (Ty.Scalar sc, shape)
let zeros_t elt shape = Zeros (elt, shape)
let arr es = ArrLit es
let empty t = EmptyArr t
let dfull e = Dfull e
let dtiles ~total ~tile = Dtiles { total; tile }

let fresh_idxs doms = List.map (fun _ -> Sym.fresh "i") doms

let map doms body =
  let idxs = fresh_idxs doms in
  Map
    { mdims = doms;
      midxs = idxs;
      mbody = body (List.map (fun s -> Var s) idxs);
      mprov = Prov.none }

let map1 dom body =
  map [ dom ] (function [ x ] -> body x | _ -> assert false)

let map2d d0 d1 body =
  map [ d0; d1 ] (function [ x; y ] -> body x y | _ -> assert false)

let mk_comb comb =
  let ca = Sym.fresh "a" and cb = Sym.fresh "b" in
  { ca; cb; cbody = comb (Var ca) (Var cb) }

let fold doms ~init ~comb upd =
  let idxs = fresh_idxs doms in
  let acc = Sym.fresh "acc" in
  Fold
    { fdims = doms;
      fidxs = idxs;
      finit = init;
      facc = acc;
      fupd = upd (List.map (fun s -> Var s) idxs) (Var acc);
      fcomb = mk_comb comb;
      fprov = Prov.none }

let fold1 dom ~init ~comb upd =
  fold [ dom ] ~init ~comb (fun idxs acc ->
      match idxs with [ x ] -> upd x acc | _ -> assert false)

type out_spec = {
  range : exp list;
  region : (exp * exp * int option) list;
  upd : exp -> exp;
}

let point offs = List.map (fun o -> (o, Ci 1, Some 1)) offs

let mk_oouts specs =
  List.map
    (fun { range; region; upd } ->
      let acc = Sym.fresh "acc" in
      { orange = range; oregion = region; oacc = acc; oupd = upd (Var acc) })
    specs

let multifold doms ~init ?comb outs =
  let idxs = fresh_idxs doms in
  let specs = outs (List.map (fun s -> Var s) idxs) in
  MultiFold
    { odims = doms;
      oidxs = idxs;
      oinit = init;
      olets = [];
      oouts = mk_oouts specs;
      ocomb = Option.map mk_comb comb;
      oprov = Prov.none }

let multifold_lets doms ~init ?comb body =
  let idxs = fresh_idxs doms in
  let lets_spec, outs_of = body (List.map (fun s -> Var s) idxs) in
  let olets = List.map (fun (nm, e) -> (Sym.fresh nm, e)) lets_spec in
  let specs = outs_of (List.map (fun (s, _) -> Var s) olets) in
  MultiFold
    { odims = doms;
      oidxs = idxs;
      oinit = init;
      olets;
      oouts = mk_oouts specs;
      ocomb = Option.map mk_comb comb;
      oprov = Prov.none }

let flatmap dom body =
  let idx = Sym.fresh "i" in
  FlatMap { fmdim = dom; fmidx = idx; fmbody = body (Var idx); fmprov = Prov.none }

let filter dom pred elt =
  flatmap dom (fun idx ->
      if_ (pred idx) (arr [ elt idx ]) (empty (Ty.Scalar Ty.Float)))

let groupbyfold dom ~init ~comb body =
  let idx = Sym.fresh "i" in
  let acc = Sym.fresh "acc" in
  let key, updf = body (Var idx) in
  GroupByFold
    { gdims = [ dom ];
      gidxs = [ idx ];
      ginit = init;
      glets = [];
      gkey = key;
      gacc = acc;
      gupd = updf (Var acc);
      gcomb = mk_comb comb;
      gprov = Prov.none }

let size name = Sym.fresh name

let input name ielt ishape = { iname = Sym.fresh name; ielt; ishape }
let in_var inp = Var inp.iname

let program ~name ~sizes ?(max_sizes = []) ~inputs body =
  { pname = name; size_params = sizes; max_sizes; inputs; body }
