type t = { id : int; base : string }

(* atomic: symbols are minted from several domains when sweeps tile
   candidate points in parallel (Pool) *)
let counter = Atomic.make 0

let fresh base = { id = Atomic.fetch_and_add counter 1 + 1; base }

let base t = t.base
let id t = t.id
let name t = Printf.sprintf "%s_%d" t.base t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp fmt t = Format.pp_print_string fmt (name t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
