type t = { id : int; base : string }

let counter = ref 0

let fresh base =
  incr counter;
  { id = !counter; base }

let base t = t.base
let id t = t.id
let name t = Printf.sprintf "%s_%d" t.base t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp fmt t = Format.pp_print_string fmt (name t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
