open Ir

let prim_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Neg -> "neg" | Min -> "min" | Max -> "max" | Abs -> "abs"
  | Sqrt -> "sqrt" | Exp -> "exp" | Log -> "log"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||" | Not -> "not"
  | ToFloat -> "toFloat" | ToInt -> "toInt"

let is_infix = function
  | Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> true
  | Neg | Min | Max | Abs | Sqrt | Exp | Log | Not | ToFloat | ToInt -> false

let pp_prim fmt p = Format.pp_print_string fmt (prim_name p)

let pp_sep_comma fmt () = Format.fprintf fmt ",@ "

let pp_syms fmt = function
  | [ s ] -> Sym.pp fmt s
  | syms ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:pp_sep_comma Sym.pp)
        syms

let rec pp_dom fmt = function
  | Dfull e -> pp_exp fmt e
  | Dtiles { total; tile } -> Format.fprintf fmt "%a/%d" pp_exp total tile
  | Dtail { tile; total; outer } ->
      Format.fprintf fmt "%d@@%a[%a]" tile pp_exp total Sym.pp outer

and pp_doms fmt doms =
  Format.fprintf fmt "(%a)" (Format.pp_print_list ~pp_sep:pp_sep_comma pp_dom) doms

and pp_exp fmt = function
  | Var s -> Sym.pp fmt s
  | Cf f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf fmt "%.1f" f
      else
        (* shortest representation that parses back to the same float *)
        let s = Format.sprintf "%g" f in
        if float_of_string s = f then Format.pp_print_string fmt s
        else
          let s = Format.sprintf "%.12g" f in
          if float_of_string s = f then Format.pp_print_string fmt s
          else Format.fprintf fmt "%.17g" f
  | Ci i -> Format.pp_print_int fmt i
  | Cb b -> Format.pp_print_bool fmt b
  | Tup es ->
      Format.fprintf fmt "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        es
  | Proj (e, i) -> Format.fprintf fmt "%a._%d" pp_atom e (i + 1)
  | Prim (p, [ a; b ]) when is_infix p ->
      Format.fprintf fmt "@[<hov>%a %s %a@]" pp_atom a (prim_name p) pp_atom b
  | Prim (p, es) ->
      Format.fprintf fmt "%s(@[<hov>%a@])" (prim_name p)
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        es
  | Let (s, e1, e2) ->
      Format.fprintf fmt "@[<v>%a = %a@,%a@]" Sym.pp s pp_exp e1 pp_exp e2
  | If (c, t, e) ->
      Format.fprintf fmt "@[<hov 2>if %a@ then %a@ else %a@]" pp_exp c pp_exp t
        pp_exp e
  | Len (e, i) -> Format.fprintf fmt "%a.dim(%d)" pp_atom e i
  | Read (a, idxs) ->
      Format.fprintf fmt "%a(@[<hov>%a@])" pp_atom a
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        idxs
  | Slice (a, args) ->
      Format.fprintf fmt "%a.slice(@[<hov>%a@])" pp_atom a
        (Format.pp_print_list ~pp_sep:pp_sep_comma (fun fmt -> function
           | SFix e -> pp_exp fmt e
           | SAll -> Format.pp_print_char fmt '*'))
        args
  | Copy { csrc; cdims; creuse } ->
      Format.fprintf fmt "%a.copy(@[<hov>%a@])%s" pp_atom csrc
        (Format.pp_print_list ~pp_sep:pp_sep_comma (fun fmt -> function
           | Coffset { off; len; max_len } ->
               Format.fprintf fmt "%a+:%a%s" pp_atom off pp_atom len
                 (match max_len with
                 | Some m -> Printf.sprintf "~%d" m
                 | None -> "")
           | Call -> Format.pp_print_char fmt '*'
           | Cfix e -> Format.fprintf fmt "@@%a" pp_atom e))
        cdims
        (if creuse > 1 then Printf.sprintf "{reuse=%d}" creuse else "")
  | Zeros (elt, shape) ->
      Format.fprintf fmt "zeros%s(@[<hov>%a@])"
        (match elt with
        | Ty.Scalar Ty.Float -> ""
        | t -> "[" ^ Ty.to_string t ^ "]")
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        shape
  | ArrLit es ->
      Format.fprintf fmt "[@[<hov>%a@]]"
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        es
  | EmptyArr _ -> Format.pp_print_string fmt "[]"
  | Map { mdims; midxs; mbody; _ } ->
      Format.fprintf fmt "@[<v 2>map%a{ %a =>@ %a }@]" pp_doms mdims pp_syms
        midxs pp_exp mbody
  | Fold { fdims; fidxs; finit; facc; fupd; fcomb; _ } ->
      Format.fprintf fmt
        "@[<v 2>fold%a(%a){ %a =>@ @[<v 2>%a =>@ %a@] }%a@]" pp_doms fdims
        pp_exp finit pp_syms fidxs Sym.pp facc pp_exp fupd pp_comb fcomb
  | MultiFold { odims; oidxs; oinit; olets; oouts; ocomb; _ } ->
      Format.fprintf fmt "@[<v 2>multiFold%a(%a){ %a =>@ %a%a }%a@]" pp_doms
        odims pp_exp oinit pp_syms oidxs
        (fun fmt lets ->
          List.iter
            (fun (s, e) ->
              Format.fprintf fmt "%a = %a@ " Sym.pp s pp_exp e)
            lets)
        olets
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ ;@ ")
           pp_out)
        oouts
        (fun fmt -> function
          | None -> Format.pp_print_string fmt "(_)"
          | Some c -> pp_comb fmt c)
        ocomb
  | FlatMap { fmdim; fmidx; fmbody; _ } ->
      Format.fprintf fmt "@[<v 2>flatMap(%a){ %a =>@ %a }@]" pp_dom fmdim
        Sym.pp fmidx pp_exp fmbody
  | GroupByFold { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; _ } ->
      Format.fprintf fmt
        "@[<v 2>groupByFold%a(%a){ %a =>@ %a(%a, @[<v 2>%a =>@ %a@]) }%a@]"
        pp_doms gdims pp_exp ginit pp_syms gidxs
        (fun fmt lets ->
          List.iter
            (fun (s, e) -> Format.fprintf fmt "%a = %a@ " Sym.pp s pp_exp e)
            lets)
        glets pp_exp gkey Sym.pp gacc pp_exp gupd pp_comb gcomb

and pp_out fmt { orange; oregion; oacc; oupd } =
  Format.fprintf fmt "(@[<hov><%a>@], @[<hov>%a@], @[<v 2>%a =>@ %a@])"
    (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
    orange
    (Format.pp_print_list ~pp_sep:pp_sep_comma (fun fmt (off, len, b) ->
         match (len, b) with
         | Ci 1, Some 1 -> pp_exp fmt off
         | _ ->
             Format.fprintf fmt "%a+:%a%s" pp_atom off pp_atom len
               (match b with Some m -> Printf.sprintf "~%d" m | None -> "")))
    oregion Sym.pp oacc pp_exp oupd

and pp_comb fmt { ca; cb; cbody } =
  Format.fprintf fmt "{ (%a,%a) =>@ %a }" Sym.pp ca Sym.pp cb pp_exp cbody

and pp_atom fmt e =
  match e with
  | Var _ | Ci _ | Cf _ | Cb _ | Tup _ | Read _ | Proj _ | EmptyArr _ ->
      pp_exp fmt e
  | _ -> Format.fprintf fmt "(%a)" pp_exp e

let pp_program fmt (p : program) =
  Format.fprintf fmt "@[<v>program %s@," p.pname;
  List.iter (fun s -> Format.fprintf fmt "size %a@," Sym.pp s) p.size_params;
  List.iter
    (fun (s, b) -> Format.fprintf fmt "maxsize %a %d@," Sym.pp s b)
    p.max_sizes;
  List.iter
    (fun { iname; ielt; ishape } ->
      Format.fprintf fmt "input %a : %a(%a)@," Sym.pp iname Ty.pp ielt
        (Format.pp_print_list ~pp_sep:pp_sep_comma pp_exp)
        ishape)
    p.inputs;
  Format.fprintf fmt "%a@]" pp_exp p.body

let exp_to_string e = Format.asprintf "%a" pp_exp e
let program_to_string p = Format.asprintf "%a" pp_program p
