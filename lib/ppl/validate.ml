open Ir

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec array_free = function
  | Ty.Scalar _ -> true
  | Ty.Tuple ts -> List.for_all array_free ts
  | Ty.Array _ | Ty.Assoc _ -> false

let is_elt_ty t = array_free t

let expect_int what = function
  | Ty.Scalar Ty.Int -> ()
  | t -> err "%s must be Int, got %s" what (Ty.to_string t)

let expect_bool what = function
  | Ty.Scalar Ty.Bool -> ()
  | t -> err "%s must be Bool, got %s" what (Ty.to_string t)

let same what a b =
  if not (Ty.equal a b) then
    err "%s: type mismatch (%s vs %s)" what (Ty.to_string a) (Ty.to_string b)

let rec infer env e =
  match e with
  | Var s -> (
      match Sym.Map.find_opt s env with
      | Some t -> t
      | None -> err "unbound symbol %s" (Sym.name s))
  | Cf _ -> Ty.float_
  | Ci _ -> Ty.int_
  | Cb _ -> Ty.bool_
  | Tup es -> Ty.Tuple (List.map (infer env) es)
  | Proj (e1, idx) -> (
      match infer env e1 with
      | Ty.Tuple ts when idx >= 0 && idx < List.length ts -> List.nth ts idx
      | t -> err "projection ._%d on non-tuple %s" (idx + 1) (Ty.to_string t))
  | Prim (p, args) -> infer_prim env p args
  | Let (s, e1, e2) -> infer (Sym.Map.add s (infer env e1) env) e2
  | If (c, t, e1) ->
      expect_bool "if condition" (infer env c);
      let tt = infer env t and te = infer env e1 in
      same "if branches" tt te;
      tt
  | Len (e1, d) -> (
      match infer env e1 with
      | Ty.Array (_, rank) when d >= 0 && d < rank -> Ty.int_
      | t -> err "dim(%d) on %s" d (Ty.to_string t))
  | Read (a, idxs) -> (
      match infer env a with
      | Ty.Array (elt, rank) ->
          if List.length idxs <> rank then
            err "read with %d indices on rank-%d array" (List.length idxs) rank;
          List.iter (fun i -> expect_int "array index" (infer env i)) idxs;
          elt
      | t -> err "read on non-array %s" (Ty.to_string t))
  | Slice (a, args) -> (
      match infer env a with
      | Ty.Array (elt, rank) ->
          if List.length args <> rank then
            err "slice with %d specs on rank-%d array" (List.length args) rank;
          let kept =
            List.fold_left
              (fun k -> function
                | SAll -> k + 1
                | SFix e1 ->
                    expect_int "slice index" (infer env e1);
                    k)
              0 args
          in
          if kept = 0 then elt else Ty.Array (elt, kept)
      | t -> err "slice on non-array %s" (Ty.to_string t))
  | Copy { csrc; cdims; creuse } -> (
      if creuse < 1 then err "copy with reuse factor %d < 1" creuse;
      match infer env csrc with
      | Ty.Array (elt, rank) ->
          if List.length cdims <> rank then
            err "copy with %d specs on rank-%d array" (List.length cdims) rank;
          let kept =
            List.fold_left
              (fun k -> function
                | Call -> k + 1
                | Coffset { off; len; _ } ->
                    expect_int "copy offset" (infer env off);
                    expect_int "copy length" (infer env len);
                    k + 1
                | Cfix e1 ->
                    expect_int "copy index" (infer env e1);
                    k)
              0 cdims
          in
          if kept = 0 then err "copy must keep at least one dimension";
          Ty.Array (elt, kept)
      | t -> err "copy on non-array %s" (Ty.to_string t))
  | Zeros (elt, shape) ->
      if not (is_elt_ty elt) then
        err "zeros of non-scalar element type %s" (Ty.to_string elt);
      List.iter (fun e1 -> expect_int "zeros dimension" (infer env e1)) shape;
      if shape = [] then elt else Ty.Array (elt, List.length shape)
  | ArrLit es -> (
      match es with
      | [] -> err "empty array literal: use EmptyArr with an element type"
      | e1 :: rest ->
          let t = infer env e1 in
          if not (is_elt_ty t) then
            err "array literal of non-scalar elements %s" (Ty.to_string t);
          List.iter (fun e2 -> same "array literal elements" t (infer env e2)) rest;
          Ty.Array (t, 1))
  | EmptyArr t ->
      if not (is_elt_ty t) then
        err "empty array of non-scalar element type %s" (Ty.to_string t);
      Ty.Array (t, 1)
  | Map { mdims; midxs; mbody; _ } ->
      check_doms env mdims midxs;
      let env' = bind_idxs env midxs in
      let bt = infer env' mbody in
      if not (is_elt_ty bt) then
        err "Map body must produce scalars, got %s (nested arrays are not allowed)"
          (Ty.to_string bt);
      Ty.Array (bt, List.length mdims)
  | Fold { fdims; fidxs; finit; facc; fupd; fcomb; _ } ->
      check_doms env fdims fidxs;
      let acc_t = infer env finit in
      let env' = Sym.Map.add facc acc_t (bind_idxs env fidxs) in
      same "Fold update" acc_t (infer env' fupd);
      check_comb env fcomb acc_t;
      acc_t
  | MultiFold mf -> infer_multifold env mf
  | FlatMap { fmdim; fmidx; fmbody; _ } ->
      check_doms env [ fmdim ] [ fmidx ];
      let bt = infer (Sym.Map.add fmidx Ty.int_ env) fmbody in
      (match bt with
      | Ty.Array (elt, 1) -> Ty.Array (elt, 1)
      | t -> err "FlatMap body must be a 1-D array, got %s" (Ty.to_string t))
  | GroupByFold { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; _ } ->
      check_doms env gdims gidxs;
      let v_t = infer env ginit in
      if not (is_elt_ty v_t) then
        err "GroupByFold bucket type must be scalar, got %s" (Ty.to_string v_t);
      let env_i = bind_idxs env gidxs in
      let env_i =
        List.fold_left (fun m (s, e1) -> Sym.Map.add s (infer m e1) m) env_i glets
      in
      let k_t = infer env_i gkey in
      if not (is_elt_ty k_t) then
        err "GroupByFold key type must be scalar, got %s" (Ty.to_string k_t);
      same "GroupByFold update" v_t (infer (Sym.Map.add gacc v_t env_i) gupd);
      check_comb env gcomb v_t;
      Ty.Assoc (k_t, v_t)

and infer_multifold env { odims; oidxs; oinit; olets; oouts; ocomb; _ } =
  check_doms env odims oidxs;
  let init_t = infer env oinit in
  let comp_tys =
    match (init_t, oouts) with
    | _, [] -> err "MultiFold with no outputs"
    | Ty.Tuple ts, _ :: _ :: _ ->
        if List.length ts <> List.length oouts then
          err "MultiFold: %d outputs but init tuple has %d components"
            (List.length oouts) (List.length ts);
        ts
    | t, [ _ ] -> [ t ]
    | t, outs ->
        err "MultiFold: %d outputs but init is %s" (List.length outs)
          (Ty.to_string t)
  in
  let env_i = bind_idxs env oidxs in
  let env_i =
    List.fold_left (fun m (s, e1) -> Sym.Map.add s (infer m e1) m) env_i olets
  in
  List.iter2
    (fun out comp_t ->
      let elt =
        match comp_t with
        | Ty.Array (elt, rank) ->
            if List.length out.orange <> rank then
              err "MultiFold output range rank %d but accumulator rank %d"
                (List.length out.orange) rank;
            elt
        | t when is_elt_ty t ->
            if List.length out.orange <> 0 then
              err "MultiFold scalar accumulator with non-empty range";
            t
        | t -> err "MultiFold accumulator of type %s" (Ty.to_string t)
      in
      List.iter (fun e1 -> expect_int "MultiFold range" (infer env e1)) out.orange;
      if List.length out.oregion <> List.length out.orange then
        err "MultiFold region rank %d but range rank %d"
          (List.length out.oregion) (List.length out.orange);
      List.iter
        (fun (off, lene, _) ->
          expect_int "MultiFold region offset" (infer env_i off);
          expect_int "MultiFold region length" (infer env_i lene))
        out.oregion;
      let unit_region =
        List.for_all (fun (_, lene, _) -> lene = Ci 1) out.oregion
      in
      let acc_t =
        if unit_region || out.oregion = [] then elt
        else Ty.Array (elt, List.length out.oregion)
      in
      let upd_t = infer (Sym.Map.add out.oacc acc_t env_i) out.oupd in
      same "MultiFold update" acc_t upd_t)
    oouts comp_tys;
  (match ocomb with None -> () | Some c -> check_comb env c init_t);
  init_t

and check_comb env { ca; cb; cbody } t =
  let env' = Sym.Map.add ca t (Sym.Map.add cb t env) in
  same "combine function" t (infer env' cbody)

and bind_idxs env idxs =
  List.fold_left (fun m s -> Sym.Map.add s Ty.int_ m) env idxs

and check_doms env doms idxs =
  if List.length doms <> List.length idxs then
    err "pattern with %d domains but %d indices" (List.length doms)
      (List.length idxs);
  (* later domains may reference earlier sibling indices (the flattened
     [Dtiles; Dtail] form binds the tile index and the in-tile index as
     siblings), so indices come into scope left to right *)
  ignore
    (List.fold_left2
       (fun env d idx ->
         (match d with
         | Dfull e -> expect_int "domain size" (infer env e)
         | Dtiles { total; _ } -> expect_int "tiled domain size" (infer env total)
         | Dtail { total; outer; _ } -> (
             expect_int "tile domain size" (infer env total);
             match Sym.Map.find_opt outer env with
             | Some (Ty.Scalar Ty.Int) -> ()
             | Some t ->
                 err "tile outer index %s has type %s" (Sym.name outer)
                   (Ty.to_string t)
             | None -> err "tile outer index %s is unbound" (Sym.name outer)));
         Sym.Map.add idx Ty.int_ env)
       env doms idxs)

and infer_prim env p args =
  let tys = List.map (infer env) args in
  let arity n =
    if List.length args <> n then
      err "primitive applied to %d arguments, expected %d" (List.length args) n
  in
  let numeric2 () =
    arity 2;
    match tys with
    | [ Ty.Scalar Ty.Float; Ty.Scalar Ty.Float ] -> Ty.float_
    | [ Ty.Scalar Ty.Int; Ty.Scalar Ty.Int ] -> Ty.int_
    | [ a; b1 ] ->
        err "numeric primitive on %s and %s" (Ty.to_string a) (Ty.to_string b1)
    | _ -> assert false
  in
  match p with
  | Add | Sub | Mul | Div | Min | Max -> numeric2 ()
  | Mod -> (
      arity 2;
      match tys with
      | [ Ty.Scalar Ty.Int; Ty.Scalar Ty.Int ] -> Ty.int_
      | _ -> err "mod on non-integers")
  | Neg | Abs -> (
      arity 1;
      match tys with
      | [ (Ty.Scalar (Ty.Float | Ty.Int)) as t ] -> t
      | [ t ] -> err "neg/abs on %s" (Ty.to_string t)
      | _ -> assert false)
  | Sqrt | Exp | Log -> (
      arity 1;
      match tys with
      | [ Ty.Scalar Ty.Float ] -> Ty.float_
      | [ t ] -> err "float primitive on %s" (Ty.to_string t)
      | _ -> assert false)
  | Lt | Le | Gt | Ge -> (
      arity 2;
      match tys with
      | [ Ty.Scalar Ty.Float; Ty.Scalar Ty.Float ]
      | [ Ty.Scalar Ty.Int; Ty.Scalar Ty.Int ] ->
          Ty.bool_
      | [ a; b1 ] -> err "comparison on %s and %s" (Ty.to_string a) (Ty.to_string b1)
      | _ -> assert false)
  | Eq | Ne -> (
      arity 2;
      match tys with
      | [ a; b1 ] when Ty.equal a b1 && is_elt_ty a -> Ty.bool_
      | [ a; b1 ] -> err "equality on %s and %s" (Ty.to_string a) (Ty.to_string b1)
      | _ -> assert false)
  | And | Or -> (
      arity 2;
      match tys with
      | [ Ty.Scalar Ty.Bool; Ty.Scalar Ty.Bool ] -> Ty.bool_
      | _ -> err "boolean primitive on non-booleans")
  | Not -> (
      arity 1;
      match tys with
      | [ Ty.Scalar Ty.Bool ] -> Ty.bool_
      | _ -> err "not on non-boolean")
  | ToFloat -> (
      arity 1;
      match tys with
      | [ Ty.Scalar Ty.Int ] -> Ty.float_
      | [ t ] -> err "toFloat on %s" (Ty.to_string t)
      | _ -> assert false)
  | ToInt -> (
      arity 1;
      match tys with
      | [ Ty.Scalar Ty.Float ] -> Ty.int_
      | [ t ] -> err "toInt on %s" (Ty.to_string t)
      | _ -> assert false)

let initial_env (p : program) =
  let env =
    List.fold_left
      (fun m s -> Sym.Map.add s Ty.int_ m)
      Sym.Map.empty p.size_params
  in
  List.fold_left
    (fun m { iname; ielt; ishape } ->
      if not (is_elt_ty ielt) then
        err "input %s has non-scalar element type %s" (Sym.name iname)
          (Ty.to_string ielt);
      let t =
        if ishape = [] then ielt else Ty.Array (ielt, List.length ishape)
      in
      m |> Sym.Map.add iname t)
    env p.inputs

let check_program (p : program) =
  let env = initial_env p in
  List.iter
    (fun { ishape; _ } ->
      List.iter (fun e -> expect_int "input shape" (infer env e)) ishape)
    p.inputs;
  infer env p.body
