(** Types of PPL values.

    The paper (Section 3) restricts element types to scalars or structures
    of scalars, and collections to multidimensional arrays — no nested
    arrays.  {!well_formed} enforces that restriction. *)

type scalar = Float | Int | Bool

type t =
  | Scalar of scalar
  | Tuple of t list  (** structure of values; may mix scalars and arrays *)
  | Array of t * int  (** element type and rank; element must be array-free *)
  | Assoc of t * t  (** key/value result of GroupByFold, 1-D by construction *)

val float_ : t
val int_ : t
val bool_ : t
val array : t -> int -> t

val well_formed : t -> bool
(** Array elements must not themselves contain arrays or assocs. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
