exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | DOT | AT | TILDE | SLASH_ | ARROW | EQUALS | COLON
  | PLUSCOLON  (* +: *)
  | LT | LE | GT | GE | EQEQ | NEQ | ANDAND | OROR
  | PLUS | MINUS | STAR | PERCENT
  | EOF

let token_name = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | IDENT s -> Printf.sprintf "%S" s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | COMMA -> "," | SEMI -> ";"
  | DOT -> "." | AT -> "@" | TILDE -> "~" | SLASH_ -> "/" | ARROW -> "=>"
  | COLON -> ":"
  | EQUALS -> "=" | PLUSCOLON -> "+:" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">=" | EQEQ -> "==" | NEQ -> "!=" | ANDAND -> "&&" | OROR -> "||"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | PERCENT -> "%" | EOF -> "<eof>"

type lexer = { src : string; mutable pos : int; mutable line : int }

let lex_error lx fmt =
  Format.kasprintf
    (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" lx.line m)))
    fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let rec next_token lx =
  let n = String.length lx.src in
  if lx.pos >= n then EOF
  else
    let c = lx.src.[lx.pos] in
    if c = '\n' then begin
      lx.line <- lx.line + 1;
      lx.pos <- lx.pos + 1;
      next_token lx
    end
    else if c = ' ' || c = '\t' || c = '\r' then begin
      lx.pos <- lx.pos + 1;
      next_token lx
    end
    else if is_digit c then begin
      let start = lx.pos in
      while lx.pos < n && is_digit lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let is_float = ref false in
      if
        lx.pos + 1 < n
        && lx.src.[lx.pos] = '.'
        && is_digit lx.src.[lx.pos + 1]
      then begin
        is_float := true;
        lx.pos <- lx.pos + 1;
        while lx.pos < n && is_digit lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done
      end;
      if lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') then begin
        is_float := true;
        lx.pos <- lx.pos + 1;
        if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then
          lx.pos <- lx.pos + 1;
        while lx.pos < n && is_digit lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done
      end;
      let text = String.sub lx.src start (lx.pos - start) in
      if !is_float then FLOAT (float_of_string text)
      else INT (int_of_string text)
    end
    else if is_ident_char c then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      IDENT (String.sub lx.src start (lx.pos - start))
    end
    else begin
      let two =
        if lx.pos + 1 < n then String.sub lx.src lx.pos 2 else ""
      in
      let take2 t =
        lx.pos <- lx.pos + 2;
        t
      in
      let take1 t =
        lx.pos <- lx.pos + 1;
        t
      in
      match two with
      | "=>" -> take2 ARROW
      | "==" -> take2 EQEQ
      | "!=" -> take2 NEQ
      | "<=" -> take2 LE
      | ">=" -> take2 GE
      | "&&" -> take2 ANDAND
      | "||" -> take2 OROR
      | "+:" -> take2 PLUSCOLON
      | _ -> (
          match c with
          | '(' -> take1 LPAREN
          | ')' -> take1 RPAREN
          | '{' -> take1 LBRACE
          | '}' -> take1 RBRACE
          | '[' -> take1 LBRACKET
          | ']' -> take1 RBRACKET
          | ',' -> take1 COMMA
          | ';' -> take1 SEMI
          | '.' -> take1 DOT
          | '@' -> take1 AT
          | '~' -> take1 TILDE
          | '/' -> take1 SLASH_
          | '=' -> take1 EQUALS
          | ':' -> take1 COLON
          | '<' -> take1 LT
          | '>' -> take1 GT
          | '+' -> take1 PLUS
          | '-' -> take1 MINUS
          | '*' -> take1 STAR
          | '%' -> take1 PERCENT
          | c -> lex_error lx "unexpected character %C" c)
    end

(* ------------------------------------------------------------------ *)
(* Parser state: token stream with lookahead + lexical scope           *)
(* ------------------------------------------------------------------ *)

type state = {
  lx : lexer;
  mutable tok : token;
  mutable tok_line : int;  (* line the current token ends on *)
  mutable prev_line : int;  (* line of the last consumed token *)
  mutable ahead : (token * int) list;  (* pushed-back lookahead *)
  mutable scope : (string * Sym.t) list;
}

let advance st =
  st.prev_line <- st.tok_line;
  match st.ahead with
  | (t, l) :: rest ->
      st.tok <- t;
      st.tok_line <- l;
      st.ahead <- rest
  | [] ->
      st.tok <- next_token st.lx;
      st.tok_line <- st.lx.line

let peek2 st =
  match st.ahead with
  | (t, _) :: _ -> t
  | [] ->
      let t = next_token st.lx in
      st.ahead <- [ (t, st.lx.line) ];
      t

let perr st fmt =
  Format.kasprintf
    (fun m ->
      raise
        (Parse_error
           (Printf.sprintf "line %d: %s (at %s)" st.lx.line m
              (token_name st.tok))))
    fmt

let expect st t =
  if st.tok = t then advance st
  else perr st "expected %s" (token_name t)

let expect_ident st =
  match st.tok with
  | IDENT s ->
      advance st;
      s
  | _ -> perr st "expected identifier"

let expect_int st =
  match st.tok with
  | INT i ->
      advance st;
      i
  | _ -> perr st "expected integer"

(* fresh binder: strip the printer's numeric suffix to recover the base *)
let fresh_of name =
  let base =
    match String.rindex_opt name '_' with
    | Some i
      when i > 0
           && i < String.length name - 1
           && String.for_all is_digit
                (String.sub name (i + 1) (String.length name - i - 1)) ->
        String.sub name 0 i
    | _ -> name
  in
  Sym.fresh base

let bind st name =
  let s = fresh_of name in
  st.scope <- (name, s) :: st.scope;
  s

let lookup st name =
  match List.assoc_opt name st.scope with
  | Some s -> s
  | None -> perr st "unbound identifier %s" name

let scoped st f =
  let saved = st.scope in
  let r = f () in
  st.scope <- saved;
  r

(* ensure the lookahead buffer holds at least [n+1] tokens and return
   the [n]th (0 = the token after the current one) *)
let peek_at st n =
  while List.length st.ahead <= n do
    st.ahead <- st.ahead @ [ (next_token st.lx, st.lx.line) ]
  done;
  fst (List.nth st.ahead n)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st =
  match st.tok with
  | IDENT "Float" ->
      advance st;
      Ty.float_
  | IDENT "Int" ->
      advance st;
      Ty.int_
  | IDENT "Bool" ->
      advance st;
      Ty.bool_
  | LPAREN ->
      advance st;
      let rec go acc =
        let t = parse_ty st in
        if st.tok = COMMA then begin
          advance st;
          go (t :: acc)
        end
        else begin
          expect st RPAREN;
          List.rev (t :: acc)
        end
      in
      Ty.Tuple (go [])
  | _ -> perr st "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let prim_of_call = function
  | "min" -> Some Ir.Min
  | "max" -> Some Ir.Max
  | "abs" -> Some Ir.Abs
  | "sqrt" -> Some Ir.Sqrt
  | "exp" -> Some Ir.Exp
  | "log" -> Some Ir.Log
  | "neg" -> Some Ir.Neg
  | "not" -> Some Ir.Not
  | "toFloat" -> Some Ir.ToFloat
  | "toInt" -> Some Ir.ToInt
  | "mod" -> Some Ir.Mod
  | _ -> None

let rec parse_exp st : Ir.exp =
  (* Let chains: IDENT = e  body *)
  match st.tok with
  | IDENT name
    when peek2 st = EQUALS
         && not (List.mem name [ "reuse" ]) -> (
      (* IDENT '=' but not '==' (lexer would fuse '==') *)
      advance st (* ident *);
      advance st (* '=' *);
      (* the right-hand side may itself be a let-chain (the printer
         renders nested bindings inline) *)
      let rhs = parse_exp st in
      let s = bind st name in
      let body = parse_exp st in
      st.scope <- List.remove_assoc name st.scope;
      Ir.Let (s, rhs, body))
  | _ -> parse_exp_nolet st

and parse_exp_nolet st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if st.tok = OROR then begin
    advance st;
    Ir.Prim (Ir.Or, [ lhs; parse_or st ])
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if st.tok = ANDAND then begin
    advance st;
    Ir.Prim (Ir.And, [ lhs; parse_and st ])
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match st.tok with
    | LT -> Some Ir.Lt
    | LE -> Some Ir.Le
    | GT -> Some Ir.Gt
    | GE -> Some Ir.Ge
    | EQEQ -> Some Ir.Eq
    | NEQ -> Some Ir.Ne
    | _ -> None
  in
  match op with
  | Some p ->
      advance st;
      Ir.Prim (p, [ lhs; parse_add st ])
  | None -> lhs

and parse_add st =
  let lhs = parse_mul st in
  match st.tok with
  | PLUS ->
      advance st;
      parse_add_rest st (fun rhs -> Ir.Prim (Ir.Add, [ lhs; rhs ]))
  | MINUS ->
      advance st;
      parse_add_rest st (fun rhs -> Ir.Prim (Ir.Sub, [ lhs; rhs ]))
  | _ -> lhs

and parse_add_rest st k =
  let rhs = parse_mul st in
  let e = k rhs in
  match st.tok with
  | PLUS ->
      advance st;
      parse_add_rest st (fun r -> Ir.Prim (Ir.Add, [ e; r ]))
  | MINUS ->
      advance st;
      parse_add_rest st (fun r -> Ir.Prim (Ir.Sub, [ e; r ]))
  | _ -> e

and parse_mul st =
  let lhs = parse_postfix st in
  match st.tok with
  | STAR ->
      advance st;
      Ir.Prim (Ir.Mul, [ lhs; parse_mul st ])
  | SLASH_ ->
      advance st;
      Ir.Prim (Ir.Div, [ lhs; parse_mul st ])
  | PERCENT ->
      advance st;
      Ir.Prim (Ir.Mod, [ lhs; parse_mul st ])
  | _ -> lhs

and parse_postfix st =
  (* Suffixes ((args), .slice, .copy, .dim, ._k) attach only to the forms
     the printer leaves unparenthesized in operand position (variables,
     tuples/parens, literals, array literals).  A pattern followed by '('
     is NOT a read of the pattern — the printer always parenthesizes that
     case — it is e.g. a MultiFold's following output tuple. *)
  let e0, readable = parse_atom st in
  if not readable then e0
  else begin
  let e = ref e0 in
  let continue_ = ref true in
  (* the IR has no nested arrays, so an element read can never itself be
     read: after one '(...)' suffix a following '(' starts a new
     construct, not another read *)
  let read_done = ref false in
  while !continue_ do
    match st.tok with
    (* a read's '(' always sits on the same line as the array (the
       printer never splits them): a '(' on a fresh line starts a new
       construct — e.g. the expression after a let binding — not a read *)
    | LPAREN when (not !read_done) && st.tok_line = st.prev_line ->
        advance st;
        let idxs = parse_exp_list st RPAREN in
        e := Ir.Read (!e, idxs);
        read_done := true
    | DOT -> (
        advance st;
        match st.tok with
        | IDENT "slice" ->
            advance st;
            expect st LPAREN;
            let args = parse_slice_args st in
            e := Ir.Slice (!e, args);
            (* Slice is not printed as an atom: no further suffixes *)
            continue_ := false
        | IDENT "copy" ->
            advance st;
            expect st LPAREN;
            let cdims = parse_copy_dims st in
            let creuse =
              if st.tok = LBRACE then begin
                advance st;
                (match st.tok with
                | IDENT "reuse" -> advance st
                | _ -> perr st "expected reuse");
                expect st EQUALS;
                let r = expect_int st in
                expect st RBRACE;
                r
              end
              else 1
            in
            e := Ir.Copy { csrc = !e; cdims; creuse };
            continue_ := false
        | IDENT "dim" ->
            advance st;
            expect st LPAREN;
            let d = expect_int st in
            expect st RPAREN;
            e := Ir.Len (!e, d);
            continue_ := false
        | IDENT proj when String.length proj > 1 && proj.[0] = '_' ->
            advance st;
            let k =
              int_of_string (String.sub proj 1 (String.length proj - 1))
            in
            e := Ir.Proj (!e, k - 1);
            (* a projection may be read ('sc._1(i, j)') *)
            read_done := false
        | _ -> perr st "expected slice/copy/dim/_k after '.'")
    | _ -> continue_ := false
  done;
  !e
  end

and parse_exp_list st closing =
  if st.tok = closing then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_exp_nolet st in
      if st.tok = COMMA then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect st closing;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_slice_args st =
  let rec go acc =
    let arg =
      if st.tok = STAR then begin
        advance st;
        Ir.SAll
      end
      else Ir.SFix (parse_exp_nolet st)
    in
    if st.tok = COMMA then begin
      advance st;
      go (arg :: acc)
    end
    else begin
      expect st RPAREN;
      List.rev (arg :: acc)
    end
  in
  go []

and parse_copy_dims st =
  let rec go acc =
    let dim =
      if st.tok = STAR then begin
        advance st;
        Ir.Call
      end
      else if st.tok = AT then begin
        advance st;
        Ir.Cfix (parse_exp_nolet st)
      end
      else begin
        let off = parse_exp_nolet st in
        (* pp renders an offset atom, then +:, then the length *)
        expect st PLUSCOLON;
        let len = parse_exp_nolet st in
        let max_len =
          if st.tok = TILDE then begin
            advance st;
            Some (expect_int st)
          end
          else None
        in
        Ir.Coffset { off; len; max_len }
      end
    in
    if st.tok = COMMA then begin
      advance st;
      go (dim :: acc)
    end
    else begin
      expect st RPAREN;
      List.rev (dim :: acc)
    end
  in
  go []

and parse_atom st : Ir.exp * bool =
  match st.tok with
  | INT i ->
      advance st;
      (Ir.Ci i, false)
  | FLOAT f ->
      advance st;
      (Ir.Cf f, false)
  | MINUS -> (
      advance st;
      match st.tok with
      | INT i ->
          advance st;
          (Ir.Ci (-i), false)
      | FLOAT f ->
          advance st;
          (Ir.Cf (-.f), false)
      | IDENT "inf" ->
          advance st;
          (Ir.Cf neg_infinity, false)
      | _ -> perr st "expected numeric literal after '-'")
  | IDENT "inf" ->
      advance st;
      (Ir.Cf infinity, false)
  | IDENT "true" ->
      advance st;
      (Ir.Cb true, false)
  | IDENT "false" ->
      advance st;
      (Ir.Cb false, false)
  | IDENT "if" ->
      advance st;
      let c = parse_exp_nolet st in
      (match st.tok with
      | IDENT "then" -> advance st
      | _ -> perr st "expected then");
      let t = parse_exp st in
      (match st.tok with
      | IDENT "else" -> advance st
      | _ -> perr st "expected else");
      let f = parse_exp st in
      (Ir.If (c, t, f), false)
  | IDENT "zeros" ->
      advance st;
      let elt =
        if st.tok = LBRACKET then begin
          advance st;
          let t = parse_ty st in
          expect st RBRACKET;
          t
        end
        else Ty.float_
      in
      expect st LPAREN;
      let shape = parse_exp_list st RPAREN in
      (Ir.Zeros (elt, shape), false)
  | IDENT "map" -> (parse_map st, false)
  | IDENT "fold" -> (parse_fold st, false)
  | IDENT "multiFold" -> (parse_multifold st, false)
  | IDENT "flatMap" -> (parse_flatmap st, false)
  | IDENT "groupByFold" -> (parse_groupbyfold st, false)
  | IDENT name when prim_of_call name <> None ->
      advance st;
      let p = Option.get (prim_of_call name) in
      expect st LPAREN;
      let args = parse_exp_list st RPAREN in
      (Ir.Prim (p, args), false)
  | IDENT name ->
      advance st;
      (Ir.Var (lookup st name), true)
  | LPAREN -> (
      advance st;
      let es = parse_exp_list st RPAREN in
      match es with
      | [ e ] -> (e, true)
      | es -> (Ir.Tup es, true))
  | LBRACKET ->
      advance st;
      if st.tok = RBRACKET then begin
        advance st;
        (Ir.EmptyArr Ty.float_, true)
      end
      else (Ir.ArrLit (parse_exp_list st RBRACKET), true)
  | _ -> perr st "expected expression"

(* ---------------------------- domains ----------------------------- *)

and parse_dom st : Ir.dom =
  match (st.tok, peek2 st) with
  | INT tile, AT ->
      advance st;
      advance st;
      let total = parse_exp_nolet st in
      expect st LBRACKET;
      let outer = expect_ident st in
      expect st RBRACKET;
      Ir.Dtail { total; tile; outer = lookup st outer }
  | _ -> (
      let total = parse_exp_nolet st in
      (* 'a / b' at domain level: Dfull of a Div expression parses as the
         division inside parse_mul, so split it back apart when the
         divisor is a literal: domains print as 'total/TILE' *)
      match total with
      | Ir.Prim (Ir.Div, [ t; Ir.Ci tile ]) -> Ir.Dtiles { total = t; tile }
      | e -> Ir.Dfull e)

and parse_doms st =
  expect st LPAREN;
  let rec go acc =
    let d = parse_dom st in
    if st.tok = COMMA then begin
      advance st;
      go (d :: acc)
    end
    else begin
      expect st RPAREN;
      List.rev (d :: acc)
    end
  in
  go []

and parse_binder_list st =
  (* 'x =>' or '(x, y) =>' *)
  match st.tok with
  | LPAREN ->
      advance st;
      let rec go acc =
        let n = expect_ident st in
        if st.tok = COMMA then begin
          advance st;
          go (n :: acc)
        end
        else begin
          expect st RPAREN;
          List.rev (n :: acc)
        end
      in
      go []
  | IDENT n ->
      advance st;
      [ n ]
  | _ -> perr st "expected binder(s)"

and parse_comb st : Ir.comb =
  expect st LBRACE;
  expect st LPAREN;
  let a = expect_ident st in
  expect st COMMA;
  let b = expect_ident st in
  expect st RPAREN;
  expect st ARROW;
  scoped st (fun () ->
      let ca = bind st a in
      let cb = bind st b in
      let body = parse_exp st in
      expect st RBRACE;
      { Ir.ca; cb; cbody = body })

(* ---------------------------- patterns ---------------------------- *)

and parse_map st =
  advance st;
  let dims = parse_doms st in
  expect st LBRACE;
  let names = parse_binder_list st in
  expect st ARROW;
  scoped st (fun () ->
      let idxs = List.map (bind st) names in
      let body = parse_exp st in
      expect st RBRACE;
      Ir.Map { mdims = dims; midxs = idxs; mbody = body; mprov = Prov.none })

and parse_fold st =
  advance st;
  let dims = parse_doms st in
  expect st LPAREN;
  let init = parse_exp_nolet st in
  expect st RPAREN;
  expect st LBRACE;
  let names = parse_binder_list st in
  expect st ARROW;
  scoped st (fun () ->
      let idxs = List.map (bind st) names in
      let accname = expect_ident st in
      expect st ARROW;
      let facc = bind st accname in
      let upd = parse_exp st in
      expect st RBRACE;
      let comb = parse_comb st in
      Ir.Fold
        { fdims = dims; fidxs = idxs; finit = init; facc; fupd = upd;
          fcomb = comb; fprov = Prov.none })

(* Flattened tiled forms print domains that reference the pattern's own
   binders — `multiFold(n/4096, 4096@n[ii])...{ (ii, i) => ... }` — so the
   binder names must already be in scope while the domains are parsed.
   Scan ahead (without consuming) past the dims and init paren groups to
   the binder list and return its names. *)
and prescan_binders st =
  let tok_at i = if i = 0 then st.tok else peek_at st (i - 1) in
  let skip_group i =
    (* [i] is at '('; index just past its matching ')' *)
    let rec go i depth =
      match tok_at i with
      | LPAREN -> go (i + 1) (depth + 1)
      | RPAREN -> if depth = 1 then i + 1 else go (i + 1) (depth - 1)
      | EOF -> perr st "unterminated pattern"
      | _ -> go (i + 1) depth
    in
    go i 0
  in
  let i = skip_group 0 in
  let i = skip_group i in
  match tok_at i with
  | LBRACE -> (
      match tok_at (i + 1) with
      | LPAREN ->
          let rec names j acc =
            match tok_at j with
            | IDENT n -> (
                match tok_at (j + 1) with
                | COMMA -> names (j + 2) (n :: acc)
                | RPAREN -> List.rev (n :: acc)
                | _ -> perr st "expected , or ) in binder list")
            | _ -> perr st "expected binder"
          in
          names (i + 2) []
      | IDENT n -> [ n ]
      | _ -> perr st "expected binder(s)")
  | _ -> perr st "expected { after init"

and parse_multifold st =
  advance st;
  scoped st (fun () ->
      let pre = prescan_binders st in
      let idxs = List.map (bind st) pre in
      let dims = parse_doms st in
      expect st LPAREN;
      let init = parse_exp_nolet st in
      expect st RPAREN;
      expect st LBRACE;
      let names = parse_binder_list st in
      if names <> pre then perr st "binder list changed under prescan";
      expect st ARROW;
      (* shared bindings: IDENT '=' lines until an out '(' appears *)
      let rec lets acc =
        match st.tok with
        | IDENT n when peek2 st = EQUALS ->
            advance st;
            advance st;
            let rhs = parse_exp_nolet st in
            let s = bind st n in
            lets ((s, rhs) :: acc)
        | _ -> List.rev acc
      in
      let olets = lets [] in
      let rec outs acc =
        let out = parse_out st in
        if st.tok = SEMI then begin
          advance st;
          outs (out :: acc)
        end
        else List.rev (out :: acc)
      in
      let oouts = outs [] in
      expect st RBRACE;
      let ocomb =
        if st.tok = LPAREN then begin
          (* the '(_)' marker *)
          advance st;
          (match st.tok with
          | IDENT "_" -> advance st
          | _ -> perr st "expected _ in (_)");
          expect st RPAREN;
          None
        end
        else Some (parse_comb st)
      in
      Ir.MultiFold { odims = dims; oidxs = idxs; oinit = init; olets; oouts;
                     ocomb; oprov = Prov.none })

and parse_out st : Ir.mf_out =
  expect st LPAREN;
  expect st LT;
  let rec range acc =
    (* range entries are size expressions; parse below the comparison
       level so the closing '>' is not taken as an operator *)
    let e = parse_add st in
    if st.tok = COMMA then begin
      advance st;
      range (e :: acc)
    end
    else begin
      expect st GT;
      List.rev (e :: acc)
    end
  in
  let orange = range [] in
  expect st COMMA;
  (* region entries until the IDENT '=>' accumulator part *)
  let rec region acc =
    match st.tok with
    | IDENT n when peek2 st = ARROW ->
        advance st;
        advance st;
        let oacc = bind st n in
        let upd = parse_exp st in
        expect st RPAREN;
        st.scope <- List.remove_assoc n st.scope;
        (List.rev acc, oacc, upd)
    | _ ->
        let off = parse_exp_nolet st in
        let entry =
          if st.tok = PLUSCOLON then begin
            advance st;
            let len = parse_exp_nolet st in
            let b =
              if st.tok = TILDE then begin
                advance st;
                Some (expect_int st)
              end
              else None
            in
            (off, len, b)
          end
          else (off, Ir.Ci 1, Some 1)
        in
        expect st COMMA;
        region (entry :: acc)
  in
  let oregion, oacc, oupd = region [] in
  { Ir.orange; oregion; oacc; oupd }

and parse_flatmap st =
  advance st;
  expect st LPAREN;
  let dim = parse_dom st in
  expect st RPAREN;
  expect st LBRACE;
  let name = expect_ident st in
  expect st ARROW;
  scoped st (fun () ->
      let idx = bind st name in
      let body = parse_exp st in
      expect st RBRACE;
      Ir.FlatMap { fmdim = dim; fmidx = idx; fmbody = body; fmprov = Prov.none })

and parse_groupbyfold st =
  advance st;
  scoped st (fun () ->
      let pre = prescan_binders st in
      let idxs = List.map (bind st) pre in
      let dims = parse_doms st in
      expect st LPAREN;
      let init = parse_exp_nolet st in
      expect st RPAREN;
      expect st LBRACE;
      let names = parse_binder_list st in
      if names <> pre then perr st "binder list changed under prescan";
      expect st ARROW;
      let rec lets acc =
        match st.tok with
        | IDENT n when peek2 st = EQUALS ->
            advance st;
            advance st;
            let rhs = parse_exp_nolet st in
            let s = bind st n in
            lets ((s, rhs) :: acc)
        | _ -> List.rev acc
      in
      let glets = lets [] in
      expect st LPAREN;
      let key = parse_exp_nolet st in
      expect st COMMA;
      let accname = expect_ident st in
      expect st ARROW;
      let gacc = bind st accname in
      let upd = parse_exp st in
      expect st RPAREN;
      expect st RBRACE;
      let comb = parse_comb st in
      Ir.GroupByFold
        { gdims = dims; gidxs = idxs; ginit = init; glets; gkey = key; gacc;
          gupd = upd; gcomb = comb; gprov = Prov.none })

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let parse_program st =
  (match st.tok with
  | IDENT "program" -> advance st
  | _ -> perr st "expected program");
  let name = expect_ident st in
  let sizes = ref [] and maxes = ref [] and inputs = ref [] in
  let rec header () =
    match st.tok with
    | IDENT "size" ->
        advance st;
        let n = expect_ident st in
        sizes := bind st n :: !sizes;
        header ()
    | IDENT "maxsize" ->
        advance st;
        let n = expect_ident st in
        let b = expect_int st in
        maxes := (lookup st n, b) :: !maxes;
        header ()
    | IDENT "input" ->
        advance st;
        let n = expect_ident st in
        expect st COLON;
        let elt = parse_ty st in
        expect st LPAREN;
        let shape = parse_exp_list st RPAREN in
        inputs :=
          { Ir.iname = bind st n; ielt = elt; ishape = shape } :: !inputs;
        header ()
    | _ -> ()
  in
  header ();
  let body = parse_exp st in
  (match st.tok with
  | EOF -> ()
  | _ -> perr st "trailing input after program body");
  { Ir.pname = name;
    size_params = List.rev !sizes;
    max_sizes = List.rev !maxes;
    inputs = List.rev !inputs;
    body }

let make_state ?(scope = []) src =
  let lx = { src; pos = 0; line = 1 } in
  let st = { lx; tok = EOF; tok_line = 1; prev_line = 1; ahead = []; scope } in
  advance st;
  st

let exp_of_string ?(scope = []) src =
  let st = make_state ~scope src in
  let e = parse_exp st in
  match st.tok with
  | EOF -> e
  | _ -> perr st "trailing input after expression"

let program_of_string src =
  let st = make_state src in
  parse_program st
