(** Tile-copy inference — the second strip-mining pass of Section 4.

    Every read of a program input whose indices are affine in the
    enclosing loop indices is rewritten to read from an explicitly copied
    tile.  Per dimension, the affine index splits into an {e offset} part
    (terms over strided [Dtiles] indices plus constants) and a {e local}
    part (terms over in-tile and unstrided indices); the copy covers
    [offset .. offset + extent(local)), and overlapping local terms
    (sliding windows) set the copy's reuse factor.

    The copy is hoisted to its natural location at insertion time: just
    inside the pattern binding the deepest strided index its offsets
    mention, or — when the offsets mention none, i.e. the whole (small)
    array is reused across all tiles — to the top of the program, which is
    exactly the k-means centroids preload of Fig. 6 (Pipe 0).  Identical
    copies are deduplicated, so e.g. GDA's two reads of the sample tile
    share one buffer.

    Reads with any non-affine index (k-means' scatter at [minDistIndex],
    GDA's [mu(y(i), _)]) are left untouched; hardware generation later
    serves them with caches/CAMs (Table 4).

    Copies are only introduced when the tile's size is statically known
    to fit the on-chip budget. *)

val program : ?budget_words:int -> Ir.program -> Ir.program
(** Default budget: 2^18 words. *)

type stats = {
  copies : int;  (** distinct tile copies created *)
  rewritten_reads : int;  (** input reads redirected to tiles *)
  skipped_nonaffine : int;  (** reads left for caches *)
}

val program_with_stats :
  ?budget_words:int -> Ir.program -> Ir.program * stats
