(** Algebraic simplification: constant folding and identity elimination.

    Run after the tiling transformations to keep generated index arithmetic
    (e.g. [ii*b + 0], [min(b, n - ii*b)] with constant [n]) in canonical
    form; the affine analysis and the hardware lowering both consume
    simplified expressions. *)

val exp : Ir.exp -> Ir.exp
(** Bottom-up simplification; preserves semantics exactly (integer
    arithmetic only is folded — float folding is limited to
    literal-on-literal operations, which cannot change rounding). *)

val program : Ir.program -> Ir.program
