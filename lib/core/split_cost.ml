let rec width_words = function
  | Ty.Scalar _ -> 1
  | Ty.Tuple ts -> List.fold_left (fun acc t -> acc + width_words t) 0 ts
  | t -> invalid_arg ("Split_cost.width_words: " ^ Ty.to_string t)

let dom_bound ~bound = function
  | Ir.Dfull e -> bound e
  | Ir.Dtail { tile; _ } -> Some tile
  | Ir.Dtiles { total; tile } ->
      Option.map (fun t -> (t + tile - 1) / tile) (bound total)

let intermediate_fits ~budget_words ~bound doms elt =
  let extents = List.map (dom_bound ~bound) doms in
  if List.exists Option.is_none extents then false
  else
    let count =
      List.fold_left (fun acc e -> acc * Option.get e) 1 extents
    in
    count * width_words elt <= budget_words
