open Ir

(* -------------------- vertical Map fusion -------------------- *)

(* All uses of [x] must be Read(Var x, idxs) with full-rank indices, or
   Len(Var x, i); anything else (slices, copies, whole-array escapes)
   blocks fusion. *)
let uses_fusible x rank body =
  let ok = ref true in
  let rec go e =
    match e with
    | Read (Var s, idxs) when Sym.equal s x ->
        if List.length idxs <> rank then ok := false;
        List.iter go idxs
    | Len (Var s, _) when Sym.equal s x -> ()
    | Var s when Sym.equal s x -> ok := false
    | e -> ignore (Rewrite.map_children (fun c -> go c; c) e)
  in
  go body;
  !ok

let count_reads x body =
  let n = ref 0 in
  Rewrite.iter_exp
    (function Read (Var s, _) when Sym.equal s x -> incr n | _ -> ())
    body;
  !n

(* inline: Read(x, idxs) -> body[midxs := idxs]; Len(x, i) -> size of dim *)
let inline_map x (m : map_node) body =
  let rec go e =
    match e with
    | Read (Var s, idxs) when Sym.equal s x ->
        let idxs = List.map go idxs in
        let sigma =
          List.fold_left2
            (fun acc p idx -> Sym.Map.add p idx acc)
            Sym.Map.empty m.midxs idxs
        in
        Ir.rename_binders (Ir.subst sigma m.mbody)
    | Len (Var s, i) when Sym.equal s x ->
        (match List.nth m.mdims i with
        | Dfull e1 -> e1
        | d -> Ir.dom_size d)
    | e -> Rewrite.map_children go e
  in
  go body

let vertical_rule e =
  match e with
  | Let (x, Map m, body)
    when uses_fusible x (List.length m.mdims) body
         && (count_reads x body <= 4 || Rewrite.node_count m.mbody <= 16) ->
      inline_map x m body
  | e -> e

(* -------------------- horizontal Map fusion -------------------- *)

(* Two adjacent Let-bound Maps over the same domain, the second independent
   of the first, merge into one Map producing a tuple: a single traversal
   of the domain (the paper's horizontal fusion, "to eliminate redundant
   traversals over the same domain"). *)
let horizontal_rule e =
  match e with
  | Let (x, Map mx, Let (y, Map my, rest))
    when mx.mdims = my.mdims
         && (not (Sym.Set.mem x (Ir.free_vars (Map my))))
         && uses_fusible x (List.length mx.mdims) rest
         && uses_fusible y (List.length my.mdims) rest ->
      let xy = Sym.fresh (Sym.base x ^ "_" ^ Sym.base y) in
      let sigma =
        List.fold_left2
          (fun m a b -> Sym.Map.add a (Var b) m)
          Sym.Map.empty my.midxs mx.midxs
      in
      let fused_map =
        Map
          { mdims = mx.mdims;
            midxs = mx.midxs;
            mbody = Tup [ mx.mbody; Ir.rename_binders (Ir.subst sigma my.mbody) ];
            mprov = Prov.push mx.mprov "fusion.horizontal" }
      in
      let rec rewrite e =
        match e with
        | Read (Var s, idxs) when Sym.equal s x ->
            Proj (Read (Var xy, List.map rewrite idxs), 0)
        | Read (Var s, idxs) when Sym.equal s y ->
            Proj (Read (Var xy, List.map rewrite idxs), 1)
        | Len (Var s, i) when Sym.equal s x || Sym.equal s y ->
            Len (Var xy, i)
        | e -> Rewrite.map_children rewrite e
      in
      Let (xy, fused_map, rewrite rest)
  | e -> e

(* -------------------- filter-reduce fusion -------------------- *)

(* Fold over all elements produced by one FlatMap iteration.  The body is
   restricted to the shapes a filter produces: conditionals over array
   literals and empty arrays. *)
let rec fold_elements facc fupd fold_idx acc_e body =
  match body with
  | EmptyArr _ -> Some acc_e
  | ArrLit es ->
      Some
        (List.fold_left
           (fun acc elt ->
             (* one fold step: fupd with the element inlined *)
             let step =
               Ir.rename_binders
                 (Ir.subst (Sym.Map.singleton facc acc) fupd)
             in
             subst_element step fold_idx elt)
           acc_e es)
  | If (c, t, f1) -> (
      match
        ( fold_elements facc fupd fold_idx acc_e t,
          fold_elements facc fupd fold_idx acc_e f1 )
      with
      | Some t', Some f' -> Some (If (c, t', f'))
      | _ -> None)
  | Let (s, e1, e2) ->
      Option.map
        (fun e2' -> Let (s, e1, e2'))
        (fold_elements facc fupd fold_idx acc_e e2)
  | _ -> None

(* replace Read(arr-being-fused, [Var fold_idx]) by the element *)
and subst_element step (x, fold_idx) elt =
  let rec go e =
    match e with
    | Read (Var s, [ idx ]) when Sym.equal s x -> (
        match idx with
        | Var j when Sym.equal j fold_idx -> elt
        | _ -> e)
    | e -> Rewrite.map_children go e
  in
  go step

let filter_rule e =
  match e with
  | Let
      ( x,
        FlatMap { fmdim; fmidx; fmbody; fmprov },
        Fold
          { fdims = [ Dfull (Len (Var x', 0)) ];
            fidxs = [ j ];
            finit;
            facc;
            fupd;
            fcomb;
            fprov = _ } )
    when Sym.equal x x'
         (* every read of x in the fold body is at the fold index *)
         && count_reads x fupd > 0 ->
      let ok =
        let bad = ref false in
        Rewrite.iter_exp
          (function
            | Read (Var s, idxs) when Sym.equal s x -> (
                match idxs with
                | [ Var j' ] when Sym.equal j' j -> ()
                | _ -> bad := true)
            | Len (Var s, _) when Sym.equal s x -> bad := true
            | _ -> ())
          fupd;
        not !bad
      in
      if not ok then e
      else begin
        match fold_elements facc fupd (x, j) (Var facc) fmbody with
        | Some stepped when not (Sym.Set.mem j (Ir.free_vars stepped)) ->
            let facc' = Sym.fresh (Sym.base facc) in
            let stepped =
              Ir.subst (Sym.Map.singleton facc (Var facc')) stepped
            in
            Fold
              { fdims = [ fmdim ];
                fidxs = [ fmidx ];
                finit;
                facc = facc';
                fupd = stepped;
                fcomb;
                fprov = Prov.push fmprov "fusion.filter" }
        | _ -> e
      end
  | e -> e

let exp ?(fuse_filters = false) e =
  let e = Rewrite.bottom_up horizontal_rule e in
  let e = Rewrite.bottom_up vertical_rule e in
  if fuse_filters then Rewrite.bottom_up filter_rule e else e

let program ?fuse_filters (p : program) =
  { p with body = exp ?fuse_filters p.body }
