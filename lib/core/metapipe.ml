let dedup l = List.sort_uniq String.compare l

let stage_writes c =
  dedup
    (Hw.fold_ctrls
       (fun acc c ->
         match c with
         | Hw.Pipe { defines; _ } -> defines @ acc
         | Hw.Tile_load { mem; _ } -> mem :: acc
         | _ -> acc)
       [] c)

let stage_reads c =
  dedup
    (Hw.fold_ctrls
       (fun acc c ->
         match c with
         | Hw.Pipe { uses; _ } -> uses @ acc
         | Hw.Tile_store { mem = Some m; _ } -> m :: acc
         | _ -> acc)
       [] c)

(* memories that couple two different stages of a metapipeline *)
let promoted design =
  let promote = Hashtbl.create 16 in
  Hw.iter_ctrls
    (function
      | Hw.Loop { meta = true; stages; _ } ->
          let infos =
            List.map (fun s -> (stage_writes s, stage_reads s)) stages
          in
          List.iteri
            (fun i (writes, _) ->
              List.iter
                (fun m ->
                  List.iteri
                    (fun j (_, reads) ->
                      if i <> j && List.mem m reads then
                        Hashtbl.replace promote m ())
                    infos)
                writes)
            infos
      | _ -> ())
    design.Hw.top;
  promote

(* record which metapipeline stage slot a controller occupies in its
   provenance trail, so profiles can attribute overlap behavior; skipped
   when the frame is already present, making re-finalization idempotent *)
let stage_frame i = Printf.sprintf "metapipe.stage%d" (i + 1)

let has_stage_frame p =
  match List.rev (Prov.frames p) with
  | last :: _ ->
      String.length last >= 14 && String.sub last 0 14 = "metapipe.stage"
  | [] -> false

let rec annotate_stage_provs c =
  match c with
  | Hw.Seq r ->
      Hw.Seq { r with children = List.map annotate_stage_provs r.children }
  | Hw.Par r ->
      Hw.Par { r with children = List.map annotate_stage_provs r.children }
  | Hw.Loop r ->
      let stages = List.map annotate_stage_provs r.stages in
      let stages =
        if r.meta && List.length stages > 1 then
          List.mapi
            (fun i s ->
              let p = Hw.ctrl_prov s in
              if has_stage_frame p then s
              else Hw.with_prov s (Prov.push p (stage_frame i)))
            stages
        else stages
      in
      Hw.Loop { r with stages }
  | Hw.Pipe _ | Hw.Tile_load _ | Hw.Tile_store _ -> c

let finalize_uninstrumented (design : Hw.design) =
  let design = { design with Hw.top = annotate_stage_provs design.Hw.top } in
  let promote = promoted design in
  let mems =
    List.map
      (fun m ->
        if Hashtbl.mem promote m.Hw.mem_name && m.Hw.kind = Hw.Buffer then
          { m with Hw.kind = Hw.Double_buffer }
        else m)
      design.Hw.mems
  in
  (* reader/writer port counts *)
  List.iter
    (fun m ->
      m.Hw.readers <- 0;
      m.Hw.writers <- 0)
    mems;
  let find name = List.find_opt (fun m -> m.Hw.mem_name = name) mems in
  Hw.iter_ctrls
    (fun c ->
      match c with
      | Hw.Pipe { uses; defines; _ } ->
          List.iter
            (fun n ->
              match find n with
              | Some m -> m.Hw.readers <- m.Hw.readers + 1
              | None -> ())
            uses;
          List.iter
            (fun n ->
              match find n with
              | Some m -> m.Hw.writers <- m.Hw.writers + 1
              | None -> ())
            defines
      | Hw.Tile_load { mem; _ } -> (
          match find mem with
          | Some m -> m.Hw.writers <- m.Hw.writers + 1
          | None -> ())
      | Hw.Tile_store { mem = Some mem; _ } -> (
          match find mem with
          | Some m -> m.Hw.readers <- m.Hw.readers + 1
          | None -> ())
      | _ -> ())
    design.Hw.top;
  { design with Hw.mems }

let finalize (design : Hw.design) =
  Metrics.time "pass.metapipe" (fun () ->
      if not (Trace.enabled ()) then finalize_uninstrumented design
      else begin
        let args = ref [] in
        Trace.with_span ~cat:"pass" ~args:(fun () -> !args) "metapipe"
          (fun () ->
            let d = finalize_uninstrumented design in
            let dbufs =
              List.length
                (List.filter
                   (fun m -> m.Hw.kind = Hw.Double_buffer)
                   d.Hw.mems)
            in
            args :=
              [ ("design", Trace.Str d.Hw.design_name);
                ("double_buffers", Trace.Int dbufs) ];
            d)
      end)
