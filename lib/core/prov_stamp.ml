let exp ~pname e =
  let n = ref 0 in
  let stamp kind prov =
    incr n;
    if Prov.is_none prov then
      Prov.root (Printf.sprintf "%s/%s#%d" pname kind !n)
    else prov
  in
  let rec go e =
    let e =
      match e with
      | Ir.Map m -> Ir.Map { m with Ir.mprov = stamp "map" m.Ir.mprov }
      | Ir.Fold f -> Ir.Fold { f with Ir.fprov = stamp "fold" f.Ir.fprov }
      | Ir.MultiFold mf ->
          Ir.MultiFold { mf with Ir.oprov = stamp "multifold" mf.Ir.oprov }
      | Ir.FlatMap fm ->
          Ir.FlatMap { fm with Ir.fmprov = stamp "flatmap" fm.Ir.fmprov }
      | Ir.GroupByFold g ->
          Ir.GroupByFold { g with Ir.gprov = stamp "groupbyfold" g.Ir.gprov }
      | e -> e
    in
    Rewrite.map_children go e
  in
  go e

let program (p : Ir.program) =
  { p with Ir.body = exp ~pname:p.Ir.pname p.Ir.body }
