open Ir

type t = { terms : (Sym.t * int) list; const : int }

let normalize terms =
  let merged =
    List.fold_left
      (fun acc (s, c) ->
        match List.partition (fun (s', _) -> Sym.equal s s') acc with
        | [ (_, c') ], rest -> (s, c + c') :: rest
        | [], acc -> (s, c) :: acc
        | _ -> assert false)
      [] terms
  in
  List.filter (fun (_, c) -> c <> 0) merged
  |> List.sort (fun (a, _) (b, _) -> Sym.compare a b)

let make terms const = { terms = normalize terms; const }
let const c = { terms = []; const = c }
let var s = { terms = [ (s, 1) ]; const = 0 }
let add a b = make (a.terms @ b.terms) (a.const + b.const)
let scale k a = make (List.map (fun (s, c) -> (s, k * c)) a.terms) (k * a.const)
let sub a b = add a (scale (-1) b)

let rec of_exp = function
  | Ci c -> Some (const c)
  | Var s -> Some (var s)
  | Prim (Add, [ a; b ]) -> combine add a b
  | Prim (Sub, [ a; b ]) -> combine sub a b
  | Prim (Neg, [ a ]) -> Option.map (scale (-1)) (of_exp a)
  | Prim (Mul, [ a; Ci k ]) | Prim (Mul, [ Ci k; a ]) ->
      Option.map (scale k) (of_exp a)
  | _ -> None

and combine f a b =
  match (of_exp a, of_exp b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

let to_exp a =
  let term_exp (s, c) =
    if c = 1 then Var s else Prim (Mul, [ Var s; Ci c ])
  in
  match a.terms with
  | [] -> Ci a.const
  | t0 :: rest ->
      let sum =
        List.fold_left (fun acc t -> Prim (Add, [ acc; term_exp t ])) (term_exp t0)
          rest
      in
      if a.const = 0 then sum else Prim (Add, [ sum; Ci a.const ])

let syms a =
  List.fold_left (fun set (s, _) -> Sym.Set.add s set) Sym.Set.empty a.terms

let coeff a s =
  match List.find_opt (fun (s', _) -> Sym.equal s s') a.terms with
  | Some (_, c) -> c
  | None -> 0

let is_const a = a.terms = []

let partition a p =
  let inside, outside = List.partition (fun (s, _) -> p s) a.terms in
  ({ terms = inside; const = 0 }, { terms = outside; const = a.const })

let equal a b = a.terms = b.terms && a.const = b.const

let pp fmt a =
  List.iter (fun (s, c) -> Format.fprintf fmt "%d*%a + " c Sym.pp s) a.terms;
  Format.pp_print_int fmt a.const
