(** Alpha-equivalence of IR expressions: structural equality up to
    consistent renaming of bound symbols.  Needed by CSE because every
    transformation-created duplicate carries freshly renamed binders. *)

val equal : Ir.exp -> Ir.exp -> bool
