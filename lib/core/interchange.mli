(** Pattern interchange (Section 4): move strided (tile) loops out of
    unstrided loops to increase the reuse of tiled inputs.

    Two transformations, applied bottom-up to a strip-mined program:

    - {b Interchange} (the Collect/Reduce-derived rule): an unstrided
      [Map] whose body is a strided [Fold] over tiles becomes a strided
      [Fold] whose update is a [Map] — the tile loaded by the fold's body
      is then reused across all Map elements (Table 3's gemm; k-means'
      centroids tile, Fig. 5b).  The fold's combine function is lifted
      elementwise over the Map domain.

    - {b Interchange, inverse rule}: an unstrided [Fold] whose update is a
      strided no-reduction [MultiFold] (the outer pattern of a tiled Map)
      becomes a strided MultiFold of per-slice folds, provided every
      accumulator read targets the element being written (checked by
      affine equality against [offset + inner index]) and the combine is
      elementwise.

    - {b Split}: an imperfectly nested [MultiFold] whose shared binding
      contains a strided fold is fissioned into a [Map] producing the
      per-element intermediate plus a [MultiFold] reading it, exposing a
      perfect nest for interchange.  Applied only when the intermediate
      fits on-chip ({!Split_cost}), trading buffer space for main-memory
      reads exactly as Section 4 describes. *)

val program : ?budget_words:int -> Ir.program -> Ir.program
(** Default budget: 2^18 words (1 MB of 32-bit elements — a fraction of a
    Stratix V's on-chip RAM, leaving room for the data tiles). *)

val exp :
  budget_words:int ->
  tenv:Ty.t Sym.Map.t ->
  bound:(Ir.exp -> int option) ->
  Ir.exp ->
  Ir.exp
