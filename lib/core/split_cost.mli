(** The split heuristic of Section 4: imperfectly nested patterns are
    split (fissioned) before interchange only when the intermediate
    result created by the split is statically known to fit on-chip. *)

val width_words : Ty.t -> int
(** On-chip words per element: scalars are one word, tuples the sum of
    their components.
    @raise Invalid_argument on array types (not a buffer element). *)

val dom_bound : bound:(Ir.exp -> int option) -> Ir.dom -> int option
(** Static upper bound on a domain's iteration count: the tile size for
    [Dtail], [ceil(bound/tile)] for [Dtiles], [bound] of the size
    expression for [Dfull]. *)

val intermediate_fits :
  budget_words:int ->
  bound:(Ir.exp -> int option) ->
  Ir.dom list ->
  Ty.t ->
  bool
(** Would an intermediate of the given element type, with one element per
    iteration of the given domains, fit in the on-chip budget? [false]
    when any extent has no static bound. *)
