open Ir

let rule e =
  match e with
  (* integer constant folding *)
  | Prim (Add, [ Ci a; Ci b ]) -> Ci (a + b)
  | Prim (Sub, [ Ci a; Ci b ]) -> Ci (a - b)
  | Prim (Mul, [ Ci a; Ci b ]) -> Ci (a * b)
  | Prim (Div, [ Ci a; Ci b ]) when b <> 0 -> Ci (a / b)
  | Prim (Mod, [ Ci a; Ci b ]) when b <> 0 -> Ci (a mod b)
  | Prim (Min, [ Ci a; Ci b ]) -> Ci (Int.min a b)
  | Prim (Max, [ Ci a; Ci b ]) -> Ci (Int.max a b)
  | Prim (Neg, [ Ci a ]) -> Ci (-a)
  (* float literal folding *)
  | Prim (Add, [ Cf a; Cf b ]) -> Cf (a +. b)
  | Prim (Sub, [ Cf a; Cf b ]) -> Cf (a -. b)
  | Prim (Mul, [ Cf a; Cf b ]) -> Cf (a *. b)
  | Prim (Neg, [ Cf a ]) -> Cf (-.a)
  (* additive/multiplicative identities (integer indices) *)
  | Prim (Add, [ e1; Ci 0 ]) | Prim (Add, [ Ci 0; e1 ]) -> e1
  | Prim (Sub, [ e1; Ci 0 ]) -> e1
  | Prim (Mul, [ e1; Ci 1 ]) | Prim (Mul, [ Ci 1; e1 ]) -> e1
  | Prim (Mul, [ _; Ci 0 ]) | Prim (Mul, [ Ci 0; _ ]) -> Ci 0
  | Prim (Div, [ e1; Ci 1 ]) -> e1
  (* float identities that cannot change results: x +. 0. is exact except
     for signed zeros of x, which the IR has no way to observe separately *)
  | Prim (Add, [ e1; Cf 0.0 ]) | Prim (Add, [ Cf 0.0; e1 ]) -> e1
  | Prim (Mul, [ e1; Cf 1.0 ]) | Prim (Mul, [ Cf 1.0; e1 ]) -> e1
  (* comparisons on constants *)
  | Prim (Lt, [ Ci a; Ci b ]) -> Cb (a < b)
  | Prim (Le, [ Ci a; Ci b ]) -> Cb (a <= b)
  | Prim (Gt, [ Ci a; Ci b ]) -> Cb (a > b)
  | Prim (Ge, [ Ci a; Ci b ]) -> Cb (a >= b)
  | Prim (Eq, [ Ci a; Ci b ]) -> Cb (a = b)
  | Prim (Ne, [ Ci a; Ci b ]) -> Cb (a <> b)
  (* boolean algebra *)
  | Prim (And, [ Cb true; e1 ]) | Prim (And, [ e1; Cb true ]) -> e1
  | Prim (And, [ Cb false; _ ]) | Prim (And, [ _; Cb false ]) -> Cb false
  | Prim (Or, [ Cb false; e1 ]) | Prim (Or, [ e1; Cb false ]) -> e1
  | Prim (Or, [ Cb true; _ ]) | Prim (Or, [ _; Cb true ]) -> Cb true
  | Prim (Not, [ Cb x ]) -> Cb (not x)
  | If (Cb true, t, _) -> t
  | If (Cb false, _, e1) -> e1
  (* projection of a literal tuple (safe: tuples are pure values) *)
  | Proj (Tup es, i) when i < List.length es -> List.nth es i
  (* (a + c1) + c2 -> a + (c1+c2): canonicalizes tiled index arithmetic *)
  | Prim (Add, [ Prim (Add, [ a; Ci c1 ]); Ci c2 ]) ->
      Prim (Add, [ a; Ci (c1 + c2) ])
  (* c1 + (e - c2) and (e - c2) + c1 -> e + (c1-c2): tile length exprs *)
  | Prim (Add, [ Ci c1; Prim (Sub, [ a; Ci c2 ]) ])
  | Prim (Add, [ Prim (Sub, [ a; Ci c2 ]); Ci c1 ]) ->
      Prim (Add, [ a; Ci (c1 - c2) ])
  (* min(t, c) where both constant handled above; min(x, x) -> x *)
  | Prim (Min, [ a; b ]) when a = b -> a
  | Prim (Max, [ a; b ]) when a = b -> a
  | e -> e

(* apply the rule set to fixpoint at each node: one rewrite may expose
   another (e.g. [1 + (e - 1)] -> [e + 0] -> [e]) *)
let rec fix e =
  let e' = rule e in
  if e' = e then e else fix e'

let exp e = Rewrite.bottom_up fix e

let program (p : program) = { p with body = exp p.body }
