(** Stamp stable source-pattern provenance ids onto a pattern IR tree.

    Each pattern node (Map/Fold/MultiFold/FlatMap/GroupByFold) gets an
    origin of the form ["<pname>/<kind>#<n>"] where [n] is the node's
    preorder position among pattern nodes.  Nodes that already carry
    provenance are left untouched, so stamping is idempotent and safe to
    re-run defensively before lowering; the preorder counter still
    advances over stamped nodes, so ids are stable for a given tree. *)

val exp : pname:string -> Ir.exp -> Ir.exp
val program : Ir.program -> Ir.program
