(** Common subexpression elimination over Let-bound values.

    Scans binding chains ([Let]s and the shared bindings of MultiFold /
    GroupByFold): a binding alpha-equal to one already in scope is dropped
    and its uses redirected.  The IR is pure, so this is always sound.
    Duplicate tile copies created independently at the same nesting level
    collapse to one buffer. *)

val exp : Ir.exp -> Ir.exp
val program : Ir.program -> Ir.program
