(** Semantic static analysis over lowered hardware designs.

    {!Hw_check} guarantees a design is structurally well-formed; this
    module asks whether it is {e right}: the invisible guarantees the
    paper's generated hardware relies on (Section 5's double-buffer
    promotion between overlapped metapipeline stages, banked memories
    wide enough for the duplicated compute, FIFO producers and consumers
    whose rates agree, tiles that fit their buffers).  A hand-built or
    buggy lowering that violates one of them still simulates — and
    produces a plausible-but-wrong number — so the linter's job is to
    reject or warn instead.

    Analyses and codes (full catalog with examples in [doc/LINTS.md]):

    - {b Metapipeline races} — HW101 (error): a memory written by one
      stage and read by a different stage of a metapipelined loop must
      be a [Double_buffer]; the lint independently re-derives the
      coupling set {!Metapipe.finalize} promotes and flags
      disagreement.  HW102 (warning): a [Double_buffer] that never
      couples two distinct stages (over-promotion wastes area).  HW103
      (warning): a scalar [Reg] or [Cache] coupling overlapped stages
      (finalize does not promote those, so values can be overwritten a
      full outer iteration early).
    - {b Banking / ports} — HW110 (error): a pipe with [par = P]
      touching a banked scratchpad with [banks < P].  HW111 (error):
      declared [readers]/[writers] port counts disagreeing with the
      controller tree.
    - {b FIFO rates} — HW120 (error): producer and consumer move
      provably different element counts per activation (compared with
      {!Hw.trip} algebra: symbolically when the trip expressions match
      structurally, numerically when both are constant).  HW121 (error):
      a FIFO too shallow for the words provably pushed before its
      consumer starts draining (deadlock: the producer stalls forever).
      HW122 (warning): depth under twice the per-burst production — no
      slack to fill one burst while the consumer drains the previous.
    - {b Capacity} — HW130 (error): a tile load/store moving provably
      more words per invocation than the on-chip buffer holds.
    - {b Performance} — HW140 (info): a controller whose subtree
      neither writes a memory nor touches DRAM (dead hardware).  HW141
      (info): a sequential loop whose stages form a cross-stage
      producer/consumer chain — exactly the shape metapipelining
      overlaps.  HW142 (info): adjacent stages of a metapipeline that
      both occupy the DRAM channel, so the steady state is floored by
      their serialized traffic rather than the slowest stage. *)

val check : Hw.design -> Diagnostic.t list
(** The semantic lints only (assumes the design already passes
    {!Hw_check.check}); sorted errors-first. *)

val check_all : Hw.design -> Diagnostic.t list
(** [Hw_check.check] followed by {!check}, one sorted list — what
    [ppl-fpga lint] runs. *)
