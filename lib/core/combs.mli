(** Analysis and reconstruction of combine functions.

    Strip mining needs two operations on a pattern's combine function:
    duplicate it (each nesting level gets its own copy, keeping the
    global-freshness invariant on binders), and — for the accumulator
    localization of Table 2's sumrows — re-instantiate an {e elementwise}
    combine at tile extents instead of full-range extents. *)

val rename : Ir.comb -> Ir.comb
(** A copy with all binders (parameters and internal) refreshed. *)

val elementwise : Ir.comb -> (Ir.exp list -> Ir.exp -> Ir.exp -> Ir.exp) option
(** If the combine function is an elementwise map —
    [{(a,b) => map(dims){ i => g(a(i), b(i)) }}] with both parameters used
    only as reads at exactly the map indices — return a builder
    [build extents x y] producing that map re-instantiated over new
    domain extents and applied to arrays [x] and [y].  [None] otherwise. *)
