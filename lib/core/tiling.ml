type result = {
  fused : Ir.program;
  stripped : Ir.program;
  stripped_with_copies : Ir.program;
  tiled : Ir.program;
}

let src = Logs.Src.create "ppl.tiling" ~doc:"Tiling pipeline driver"

module Log = (val Logs.src_log src : Logs.LOG)

let canonicalize_lens (p : Ir.program) =
  let shapes =
    List.map (fun i -> (i.Ir.iname, i.Ir.ishape)) p.Ir.inputs
  in
  let rule e =
    match e with
    | Ir.Len (Ir.Var s, d) -> (
        match List.find_opt (fun (n, _) -> Sym.equal n s) shapes with
        | Some (_, shape) when d < List.length shape -> List.nth shape d
        | _ -> e)
    | e -> e
  in
  { p with body = Rewrite.bottom_up rule p.body }

let cleanup p = Simplify.program (Code_motion.program (Cse.program p))

let run ?fuse_filters ?budget_words ~tiles (p : Ir.program) =
  (* reject tile configurations that cannot take effect *)
  List.iter
    (fun (s, b) ->
      if b <= 0 then
        invalid_arg
          (Printf.sprintf "Tiling.run: tile size %d for %s" b (Sym.name s));
      if not (List.exists (Sym.equal s) p.Ir.size_params) then
        invalid_arg
          (Printf.sprintf "Tiling.run: %s is not a size parameter of %s"
             (Sym.name s) p.Ir.pname))
    tiles;
  ignore (Validate.check_program p);
  let nodes (q : Ir.program) = Rewrite.node_count q.Ir.body in
  let fused = cleanup (Fusion.program ?fuse_filters (canonicalize_lens p)) in
  ignore (Validate.check_program fused);
  Log.debug (fun m ->
      m "%s: fused (%d -> %d nodes)" p.Ir.pname (nodes p) (nodes fused));
  let stripped = Simplify.program (Strip_mine.program ~tiles fused) in
  ignore (Validate.check_program stripped);
  Log.debug (fun m -> m "%s: strip-mined (%d nodes)" p.Ir.pname (nodes stripped));
  let stripped_with_copies =
    cleanup (Copy_insert.program ?budget_words stripped)
  in
  ignore (Validate.check_program stripped_with_copies);
  let tiled =
    cleanup
      (Copy_insert.program ?budget_words
         (Interchange.program ?budget_words stripped))
  in
  ignore (Validate.check_program tiled);
  Log.debug (fun m ->
      m "%s: interchanged + copies (%d nodes)" p.Ir.pname (nodes tiled));
  { fused; stripped; stripped_with_copies; tiled }
