type result = {
  fused : Ir.program;
  stripped : Ir.program;
  stripped_with_copies : Ir.program;
  tiled : Ir.program;
}

let src = Logs.Src.create "ppl.tiling" ~doc:"Tiling pipeline driver"

module Log = (val Logs.src_log src : Logs.LOG)

let canonicalize_lens (p : Ir.program) =
  let shapes =
    List.map (fun i -> (i.Ir.iname, i.Ir.ishape)) p.Ir.inputs
  in
  let rule e =
    match e with
    | Ir.Len (Ir.Var s, d) -> (
        match List.find_opt (fun (n, _) -> Sym.equal n s) shapes with
        | Some (_, shape) when d < List.length shape -> List.nth shape d
        | _ -> e)
    | e -> e
  in
  { p with body = Rewrite.bottom_up rule p.body }

(* Run one program->program pass under observability: a wall-clock span
   carrying before/after Ir_stats deltas (when tracing is on) and an
   accumulated [pass.<name>] timer in the metrics registry (always). *)
let traced_pass name f p =
  Metrics.time ("pass." ^ name) (fun () ->
      if not (Trace.enabled ()) then f p
      else begin
        let args = ref [] in
        Trace.with_span ~cat:"pass" ~args:(fun () -> !args) name (fun () ->
            let b = Ir_stats.of_program p in
            let r = f p in
            let a = Ir_stats.of_program r in
            args :=
              [ ("nodes_before", Trace.Int b.Ir_stats.nodes);
                ("nodes_after", Trace.Int a.Ir_stats.nodes);
                ("copies_before", Trace.Int b.Ir_stats.copies);
                ("copies_after", Trace.Int a.Ir_stats.copies);
                ("strided_before", Trace.Int b.Ir_stats.strided_loops);
                ("strided_after", Trace.Int a.Ir_stats.strided_loops);
                ("nest_before", Trace.Int b.Ir_stats.max_nest);
                ("nest_after", Trace.Int a.Ir_stats.max_nest) ];
            r)
      end)

let cleanup p =
  traced_pass "simplify" Simplify.program
    (traced_pass "code-motion" Code_motion.program
       (traced_pass "cse" Cse.program p))

let run ?fuse_filters ?budget_words ~tiles (p : Ir.program) =
  (* reject tile configurations that cannot take effect *)
  List.iter
    (fun (s, b) ->
      if b <= 0 then
        invalid_arg
          (Printf.sprintf "Tiling.run: tile size %d for %s" b (Sym.name s));
      if not (List.exists (Sym.equal s) p.Ir.size_params) then
        invalid_arg
          (Printf.sprintf "Tiling.run: %s is not a size parameter of %s"
             (Sym.name s) p.Ir.pname))
    tiles;
  (* name every source pattern before any transformation touches it, so
     the hardware tree can be attributed back to this program's patterns *)
  let p = Prov_stamp.program p in
  ignore (Validate.check_program p);
  let nodes (q : Ir.program) = Rewrite.node_count q.Ir.body in
  Trace.with_span ~cat:"pass"
    ~args:(fun () -> [ ("program", Trace.Str p.Ir.pname) ])
    ("tiling:" ^ p.Ir.pname)
    (fun () ->
      let fused =
        cleanup
          (traced_pass "fusion" (Fusion.program ?fuse_filters)
             (canonicalize_lens p))
      in
      ignore (Validate.check_program fused);
      Log.debug (fun m ->
          m "%s: fused (%d -> %d nodes)" p.Ir.pname (nodes p) (nodes fused));
      let stripped =
        traced_pass "simplify" Simplify.program
          (traced_pass "strip-mine" (Strip_mine.program ~tiles) fused)
      in
      ignore (Validate.check_program stripped);
      Log.debug (fun m ->
          m "%s: strip-mined (%d nodes)" p.Ir.pname (nodes stripped));
      let stripped_with_copies =
        cleanup
          (traced_pass "copy-insert" (Copy_insert.program ?budget_words)
             stripped)
      in
      ignore (Validate.check_program stripped_with_copies);
      let tiled =
        cleanup
          (traced_pass "copy-insert" (Copy_insert.program ?budget_words)
             (traced_pass "interchange" (Interchange.program ?budget_words)
                stripped))
      in
      ignore (Validate.check_program tiled);
      Log.debug (fun m ->
          m "%s: interchanged + copies (%d nodes)" p.Ir.pname (nodes tiled));
      { fused; stripped; stripped_with_copies; tiled })
