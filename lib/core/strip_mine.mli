(** Strip mining of parallel patterns (Table 1 of the paper).

    Every pattern whose domain ranges over a tiled size parameter is split
    into a strided loop over tiles and an unstrided loop over one tile:

    - [Map] becomes a [MultiFold] over tiles whose update writes a
      rectangular region with an inner [Map] over the tile (the outer
      MultiFold writes each location once — its combine is the paper's
      underscore);
    - [Fold] nests into a strided fold of per-tile folds, merged with the
      original combine function;
    - [MultiFold] with a combine either {e localizes} the accumulator to
      the tile (when every update targets exactly the tiled index and the
      combine is elementwise — Table 2's sumrows) or falls back to a
      strided [Fold] of per-tile MultiFolds (k-means, Fig. 5a);
    - [FlatMap] nests into a FlatMap of FlatMaps;
    - [GroupByFold] and combine-less [MultiFold]s take the equivalent
      flattened form, their domain list extended with [Dtiles; Dtail]
      pairs (Section 3's perfect-nesting equivalence).

    Tile copies are {e not} introduced here; that is the second pass
    ({!Copy_insert}), run after pattern interchange. *)

val program : tiles:(Sym.t * int) list -> Ir.program -> Ir.program
(** [program ~tiles p] strip mines every pattern of [p] whose domain size
    is [Var s] for some [(s, b)] in [tiles].  The program must type check.
    @raise Validate.Type_error if it does not. *)

val exp :
  tiles:(Sym.t * int) list ->
  tenv:Ty.t Sym.Map.t ->
  bound:(Ir.exp -> int option) ->
  Ir.exp ->
  Ir.exp
(** Expression-level entry point; [tenv] types the free symbols and
    [bound] gives static upper bounds of size expressions (used for the
    [max_len] annotations on update regions). *)
