open Ir

let map_dom f = function
  | Dfull e -> Dfull (f e)
  | Dtiles { total; tile } -> Dtiles { total = f total; tile }
  | Dtail { total; tile; outer } -> Dtail { total = f total; tile; outer }

let map_copy_dim f = function
  | Coffset { off; len; max_len } -> Coffset { off = f off; len = f len; max_len }
  | Call -> Call
  | Cfix e -> Cfix (f e)

let map_comb f { ca; cb; cbody } = { ca; cb; cbody = f cbody }

let map_children f e =
  match e with
  | Var _ | Cf _ | Ci _ | Cb _ | EmptyArr _ -> e
  | Tup es -> Tup (List.map f es)
  | Proj (e1, i) -> Proj (f e1, i)
  | Prim (p, es) -> Prim (p, List.map f es)
  | Let (s, e1, e2) -> Let (s, f e1, f e2)
  | If (c, t, e1) -> If (f c, f t, f e1)
  | Len (e1, i) -> Len (f e1, i)
  | Read (a, idxs) -> Read (f a, List.map f idxs)
  | Slice (a, args) ->
      Slice (f a, List.map (function SFix e1 -> SFix (f e1) | SAll -> SAll) args)
  | Copy { csrc; cdims; creuse } ->
      Copy { csrc = f csrc; cdims = List.map (map_copy_dim f) cdims; creuse }
  | Zeros (sc, shape) -> Zeros (sc, List.map f shape)
  | ArrLit es -> ArrLit (List.map f es)
  | Map m -> Map { m with mdims = List.map (map_dom f) m.mdims; mbody = f m.mbody }
  | Fold fl ->
      Fold
        { fl with
          fdims = List.map (map_dom f) fl.fdims;
          finit = f fl.finit;
          fupd = f fl.fupd;
          fcomb = map_comb f fl.fcomb }
  | MultiFold mf ->
      MultiFold
        { mf with
          odims = List.map (map_dom f) mf.odims;
          oinit = f mf.oinit;
          olets = List.map (fun (s, e1) -> (s, f e1)) mf.olets;
          oouts =
            List.map
              (fun out ->
                { out with
                  orange = List.map f out.orange;
                  oregion =
                    List.map (fun (o, l, b) -> (f o, f l, b)) out.oregion;
                  oupd = f out.oupd })
              mf.oouts;
          ocomb = Option.map (map_comb f) mf.ocomb }
  | FlatMap fm ->
      FlatMap { fm with fmdim = map_dom f fm.fmdim; fmbody = f fm.fmbody }
  | GroupByFold g ->
      GroupByFold
        { g with
          gdims = List.map (map_dom f) g.gdims;
          ginit = f g.ginit;
          glets = List.map (fun (s, e1) -> (s, f e1)) g.glets;
          gkey = f g.gkey;
          gupd = f g.gupd;
          gcomb = map_comb f g.gcomb }

let rec bottom_up f e = f (map_children (bottom_up f) e)

let rec top_down_ctx ctx ~enter f e =
  match f ctx e with
  | Some e' -> top_down_ctx ctx ~enter f e'
  | None ->
      let ctx' = enter ctx e in
      map_children (top_down_ctx ctx' ~enter f) e

let iter_exp f e =
  let rec go e =
    f e;
    ignore
      (map_children
         (fun child ->
           go child;
           child)
         e)
  in
  go e

let exists_exp p e =
  let exception Found in
  try
    iter_exp (fun e1 -> if p e1 then raise Found) e;
    false
  with Found -> true

let node_count e =
  let n = ref 0 in
  iter_exp (fun _ -> incr n) e;
  !n
