open Ir

type stats = {
  copies : int;
  rewritten_reads : int;
  skipped_nonaffine : int;
}

(* Loop index roles, innermost last.  [depth] orders placements. *)
type role =
  | Outer of { tile : int }  (** Dtiles index *)
  | Local of { extent : exp; max_extent : int option }  (** Dtail/Dfull index *)

type loop = { lsym : Sym.t; role : role; depth : int }

type copy_desc = {
  arr : Sym.t;
  cdims : copy_dim list;
  reuse : int;
  tile_sym : Sym.t;
  placement : Sym.t option;  (* the Dtiles index to nest the copy under *)
  words_bound : int;  (* static size bound, for reporting *)
}

type st = {
  inputs : (Sym.t * int) list;  (* input name -> rank *)
  budget : int;
  bound : exp -> int option;
  table : (string, copy_desc) Hashtbl.t;
  mutable rewritten : int;
  mutable skipped : int;
}

let find_loop loops s = List.find_opt (fun l -> Sym.equal l.lsym s) loops

(* Analyze one index expression.  Returns per-dimension copy information:
   offset expression, length expression, static length bound, local
   (tile-relative) index expression, and the number of local terms. *)
let analyze_dim loops e =
  match Affine.of_exp (Simplify.exp e) with
  | None -> None
  | Some aff ->
      let ok =
        List.for_all (fun (s, _) -> Option.is_some (find_loop loops s)) aff.Affine.terms
      in
      if not ok then None
      else
        let is_outer s =
          match find_loop loops s with
          | Some { role = Outer _; _ } -> true
          | _ -> false
        in
        let local, offset = Affine.partition aff (fun s -> not (is_outer s)) in
        (* negative local coefficients would address below the copy origin *)
        if List.exists (fun (_, c) -> c < 0) local.Affine.terms then None
        else begin
          let extent_parts =
            List.map
              (fun (s, c) ->
                match find_loop loops s with
                | Some { role = Local { extent; max_extent }; _ } ->
                    Some (c, extent, max_extent)
                | _ -> None)
              local.Affine.terms
          in
          if List.exists Option.is_none extent_parts then None
          else
            let extent_parts = List.map Option.get extent_parts in
            (* len = 1 + sum c * (extent - 1) *)
            let len_exp =
              List.fold_left
                (fun acc (c, extent, _) ->
                  Prim
                    ( Add,
                      [ acc;
                        Prim
                          (Mul, [ Ci c; Prim (Sub, [ extent; Ci 1 ]) ]) ] ))
                (Ci 1) extent_parts
            in
            let len_max =
              List.fold_left
                (fun acc (c, _, mx) ->
                  match (acc, mx) with
                  | Some a, Some m -> Some (a + (c * (m - 1)))
                  | _ -> None)
                (Some 1) extent_parts
            in
            Some
              ( Simplify.exp (Affine.to_exp offset),
                Simplify.exp len_exp,
                len_max,
                Simplify.exp (Affine.to_exp local),
                List.length local.Affine.terms )
        end

let key_of arr dims =
  String.concat "|"
    (Sym.name arr
    :: List.map
         (function
           | Coffset { off; len; _ } ->
               Pp.exp_to_string off ^ "+:" ^ Pp.exp_to_string len
           | Call -> "*"
           | Cfix e -> "@" ^ Pp.exp_to_string e)
         dims)

(* Try to rewrite one input read; returns the tile-relative read. *)
let try_read st loops arr idx_exps =
  let dims = List.map (analyze_dim loops) idx_exps in
  if List.exists Option.is_none dims then begin
    st.skipped <- st.skipped + 1;
    None
  end
  else begin
    let dims = List.map Option.get dims in
    let words =
      List.fold_left
        (fun acc (_, _, mx, _, _) ->
          match (acc, mx) with Some a, Some m -> Some (a * m) | _ -> None)
        (Some 1) dims
    in
    match words with
    | Some w when w <= st.budget ->
        let cdims =
          List.map
            (fun (off, len, mx, _, _) -> Coffset { off; len; max_len = mx })
            dims
        in
        let reuse =
          if List.exists (fun (_, _, _, _, nlocal) -> nlocal > 1) dims then 2
          else 1
        in
        let key = key_of arr cdims in
        let desc =
          match Hashtbl.find_opt st.table key with
          | Some d -> d
          | None ->
              (* deepest strided index mentioned by the offsets *)
              let placement =
                List.fold_left
                  (fun best (off, _, _, _, _) ->
                    Sym.Set.fold
                      (fun s best ->
                        match find_loop loops s with
                        | Some { role = Outer _; depth; _ } -> (
                            match best with
                            | Some (_, bd) when bd >= depth -> best
                            | _ -> Some (s, depth))
                        | _ -> best)
                      (Ir.free_vars off) best)
                  None dims
              in
              let d =
                { arr;
                  cdims;
                  reuse;
                  tile_sym = Sym.fresh (Sym.base arr ^ "Tile");
                  placement = Option.map fst placement;
                  words_bound = w }
              in
              Hashtbl.add st.table key d;
              d
        in
        st.rewritten <- st.rewritten + 1;
        Some
          (Read
             ( Var desc.tile_sym,
               List.map (fun (_, _, _, local, _) -> local) dims ))
    | _ ->
        st.skipped <- st.skipped + 1;
        None
  end

(* ----------------------------------------------------------------- *)
(* Phase 1: rewrite reads, collecting copy descriptors                *)
(* ----------------------------------------------------------------- *)

let loop_of_dim st depth (d, s) =
  match d with
  | Dtiles { tile; _ } -> { lsym = s; role = Outer { tile }; depth }
  | Dtail { tile; _ } ->
      { lsym = s;
        role = Local { extent = dom_size d; max_extent = Some tile };
        depth }
  | Dfull e ->
      { lsym = s; role = Local { extent = e; max_extent = st.bound e }; depth }

let rec phase1 st loops depth e =
  let recur = phase1 st loops depth in
  match e with
  | Read (Var arr, idx_exps) when List.mem_assoc arr st.inputs -> (
      match try_read st loops arr idx_exps with
      | Some e' -> e'
      | None -> Read (Var arr, List.map recur idx_exps))
  | Map m ->
      let loops' =
        loops @ List.mapi (fun i ds -> loop_of_dim st (depth + i) ds)
                  (List.combine m.mdims m.midxs)
      in
      Map { m with mbody = phase1 st loops' (depth + List.length m.midxs) m.mbody }
  | Fold f ->
      let loops' =
        loops @ List.mapi (fun i ds -> loop_of_dim st (depth + i) ds)
                  (List.combine f.fdims f.fidxs)
      in
      let d' = depth + List.length f.fidxs in
      Fold
        { f with
          finit = recur f.finit;
          fupd = phase1 st loops' d' f.fupd;
          fcomb = { f.fcomb with cbody = recur f.fcomb.cbody } }
  | MultiFold mf ->
      let loops' =
        loops @ List.mapi (fun i ds -> loop_of_dim st (depth + i) ds)
                  (List.combine mf.odims mf.oidxs)
      in
      let d' = depth + List.length mf.oidxs in
      MultiFold
        { mf with
          oinit = recur mf.oinit;
          olets = List.map (fun (s, e1) -> (s, phase1 st loops' d' e1)) mf.olets;
          oouts =
            List.map
              (fun out ->
                { out with
                  oregion =
                    List.map
                      (fun (o, l, b) ->
                        (phase1 st loops' d' o, phase1 st loops' d' l, b))
                      out.oregion;
                  oupd = phase1 st loops' d' out.oupd })
              mf.oouts;
          ocomb =
            Option.map
              (fun c -> { c with cbody = recur c.cbody })
              mf.ocomb }
  | FlatMap fm ->
      let loops' = loops @ [ loop_of_dim st depth (fm.fmdim, fm.fmidx) ] in
      FlatMap { fm with fmbody = phase1 st loops' (depth + 1) fm.fmbody }
  | GroupByFold g ->
      let loops' =
        loops @ List.mapi (fun i ds -> loop_of_dim st (depth + i) ds)
                  (List.combine g.gdims g.gidxs)
      in
      let d' = depth + List.length g.gidxs in
      GroupByFold
        { g with
          ginit = recur g.ginit;
          glets = List.map (fun (s, e1) -> (s, phase1 st loops' d' e1)) g.glets;
          gkey = phase1 st loops' d' g.gkey;
          gupd = phase1 st loops' d' g.gupd;
          gcomb = { g.gcomb with cbody = recur g.gcomb.cbody } }
  | _ -> Rewrite.map_children recur e

(* ----------------------------------------------------------------- *)
(* Phase 2: insert the Let-bound copies                                *)
(* ----------------------------------------------------------------- *)

let copies_for st placement =
  Hashtbl.fold
    (fun _ d acc ->
      match (d.placement, placement) with
      | None, None -> d :: acc
      | Some s, Some s' when Sym.equal s s' -> d :: acc
      | _ -> acc)
    st.table []
  |> List.sort (fun a b -> Sym.compare a.tile_sym b.tile_sym)

let wrap_copies descs body =
  List.fold_right
    (fun d acc ->
      Let (d.tile_sym, Copy { csrc = Var d.arr; cdims = d.cdims; creuse = d.reuse }, acc))
    descs body

let lets_copies descs lets =
  List.map
    (fun d ->
      (d.tile_sym, Copy { csrc = Var d.arr; cdims = d.cdims; creuse = d.reuse }))
    descs
  @ lets

let rec phase2 st e =
  let recur = phase2 st in
  match e with
  | Map m -> (
      let m = { m with mbody = recur m.mbody } in
      let descs =
        List.concat_map
          (fun s -> copies_for st (Some s))
          m.midxs
      in
      match descs with
      | [] -> Map m
      | ds -> Map { m with mbody = wrap_copies ds m.mbody })
  | Fold f ->
      let f =
        { f with
          finit = recur f.finit;
          fupd = recur f.fupd;
          fcomb = { f.fcomb with cbody = recur f.fcomb.cbody } }
      in
      let descs = List.concat_map (fun s -> copies_for st (Some s)) f.fidxs in
      if descs = [] then Fold f
      else Fold { f with fupd = wrap_copies descs f.fupd }
  | MultiFold mf ->
      let mf =
        { mf with
          oinit = recur mf.oinit;
          olets = List.map (fun (s, e1) -> (s, recur e1)) mf.olets;
          oouts =
            List.map
              (fun out ->
                { out with
                  oregion =
                    List.map (fun (o, l, b) -> (recur o, recur l, b)) out.oregion;
                  oupd = recur out.oupd })
              mf.oouts;
          ocomb = Option.map (fun c -> { c with cbody = recur c.cbody }) mf.ocomb
        }
      in
      let descs = List.concat_map (fun s -> copies_for st (Some s)) mf.oidxs in
      if descs = [] then MultiFold mf
      else MultiFold { mf with olets = lets_copies descs mf.olets }
  | FlatMap fm -> (
      let fm = { fm with fmbody = recur fm.fmbody } in
      match copies_for st (Some fm.fmidx) with
      | [] -> FlatMap fm
      | ds -> FlatMap { fm with fmbody = wrap_copies ds fm.fmbody })
  | GroupByFold g ->
      let g =
        { g with
          ginit = recur g.ginit;
          glets = List.map (fun (s, e1) -> (s, recur e1)) g.glets;
          gkey = recur g.gkey;
          gupd = recur g.gupd;
          gcomb = { g.gcomb with cbody = recur g.gcomb.cbody } }
      in
      let descs = List.concat_map (fun s -> copies_for st (Some s)) g.gidxs in
      if descs = [] then GroupByFold g
      else GroupByFold { g with glets = lets_copies descs g.glets }
  | _ -> Rewrite.map_children recur e

let program_with_stats ?(budget_words = 1 lsl 18) (p : program) =
  let bound e =
    match e with
    | Ci c -> Some c
    | Var s -> Ir.max_sizes_bound p s
    | _ -> None
  in
  let st =
    { inputs =
        List.filter_map
          (fun i ->
            if i.ishape = [] then None
            else Some (i.iname, List.length i.ishape))
          p.inputs;
      budget = budget_words;
      bound;
      table = Hashtbl.create 16;
      rewritten = 0;
      skipped = 0 }
  in
  let body1 = phase1 st [] 0 p.body in
  let body2 = phase2 st body1 in
  let body3 = wrap_copies (copies_for st None) body2 in
  ( { p with body = body3 },
    { copies = Hashtbl.length st.table;
      rewritten_reads = st.rewritten;
      skipped_nonaffine = st.skipped } )

let program ?budget_words p = fst (program_with_stats ?budget_words p)
