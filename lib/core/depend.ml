type axis = { asym : Sym.t; extent : int option }

type verdict =
  | Injective
  | Overlapping of { dims : Sym.t list; reason : string }
  | Unknown of string

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* coefficient vector of one axis across the output dimensions *)
let coeffs maps (a : axis) = List.map (fun m -> Affine.coeff m a.asym) maps

(* |d| steps of axis [a] stay inside its box *)
let fits a d =
  match a.extent with None -> true | Some e -> abs d <= e - 1

(* Minimal kernel direction of the map restricted to axes [a], [b]:
   (d1, d2) with ca*d1 + cb*d2 = 0 per output dimension.  The direction
   is fixed by the first dimension where either coefficient is nonzero
   and then checked against the rest; if it also fits both extents, the
   two points p and p + (d1, d2) collide. *)
let pair_kernel maps a b =
  let ca = coeffs maps a and cb = coeffs maps b in
  match List.find_opt (fun (x, y) -> x <> 0 || y <> 0) (List.combine ca cb) with
  | None -> None
  | Some (x, y) ->
      let g = gcd x y in
      let d1 = y / g and d2 = -x / g in
      if
        List.for_all2 (fun x y -> (x * d1) + (y * d2) = 0) ca cb
        && fits a d1 && fits b d2
      then Some (d1, d2)
      else None

let injectivity ~axes maps =
  let live =
    List.filter (fun a -> a.extent <> Some 0 && a.extent <> Some 1) axes
  in
  let missing =
    List.filter (fun a -> List.for_all (( = ) 0) (coeffs maps a)) live
  in
  if missing <> [] then
    Overlapping
      { dims = List.map (fun a -> a.asym) missing;
        reason = "iteration index never addresses the accumulator" }
  else
    let rec find_pair = function
      | [] -> None
      | a :: rest -> (
          match List.find_opt (fun b -> pair_kernel maps a b <> None) rest with
          | Some b -> Some (a, b)
          | None -> find_pair rest)
    in
    match find_pair live with
    | Some (a, b) ->
        Overlapping
          { dims = [ a.asym; b.asym ];
            reason =
              "distinct iterations reach the same cell (stride kernel fits \
               the iteration box)" }
    | None ->
        (* Greedy peeling: axis [a] can be peeled via output dim [m] when
           its stride strictly dominates what every other unpeeled axis
           can contribute there — so equal outputs force equal [a]
           components; peeled axes cancel and drop out of the bound. *)
        let contribution m b =
          match (Affine.coeff m b.asym, b.extent) with
          | 0, _ -> Some 0
          | c, Some e -> Some (abs c * (e - 1))
          | _, None -> None (* unbounded contribution *)
        in
        let dominant remaining a =
          List.exists
            (fun m ->
              let c = Affine.coeff m a.asym in
              c <> 0
              &&
              let slack =
                List.fold_left
                  (fun acc b ->
                    match acc with
                    | None -> None
                    | Some s ->
                        if Sym.equal b.asym a.asym then acc
                        else
                          Option.map (( + ) s) (contribution m b))
                  (Some 0) remaining
              in
              match slack with Some s -> abs c > s | None -> false)
            maps
        in
        let rec peel remaining =
          match remaining with
          | [] -> Injective
          | _ -> (
              match List.find_opt (dominant remaining) remaining with
              | Some a ->
                  peel
                    (List.filter
                       (fun b -> not (Sym.equal b.asym a.asym))
                       remaining)
              | None -> Unknown "strides not provably non-overlapping")
        in
        peel live

exception Found of int list * int list

let collision ~axes maps =
  let syms = List.map fst axes in
  let eval pt (m : Affine.t) =
    List.fold_left2
      (fun acc s v -> acc + (Affine.coeff m s * v))
      m.Affine.const syms pt
  in
  let rec enum axes k =
    match axes with
    | [] -> k []
    | (_, e) :: rest ->
        for v = 0 to e - 1 do
          enum rest (fun tail -> k (v :: tail))
        done
  in
  let tbl = Hashtbl.create 64 in
  try
    enum axes (fun pt ->
        let image = List.map (eval pt) maps in
        match Hashtbl.find_opt tbl image with
        | Some prev -> raise (Found (prev, pt))
        | None -> Hashtbl.add tbl image pt);
    None
  with Found (a, b) -> Some (a, b)
