open Ir

(* Each environment maps a bound symbol to its binding depth; two
   expressions are alpha-equal when bound symbols map to the same depth and
   free symbols are identical. *)
type env = { depth : int; map : int Sym.Map.t }

let empty = { depth = 0; map = Sym.Map.empty }
let bind env s = { depth = env.depth + 1; map = Sym.Map.add s env.depth env.map }

let var_eq ea eb a b =
  match (Sym.Map.find_opt a ea.map, Sym.Map.find_opt b eb.map) with
  | Some da, Some db -> da = db
  | None, None -> Sym.equal a b
  | _ -> false

let rec eq ea eb x y =
  match (x, y) with
  | Var a, Var b -> var_eq ea eb a b
  | Cf a, Cf b -> a = b
  | Ci a, Ci b -> a = b
  | Cb a, Cb b -> a = b
  | EmptyArr a, EmptyArr b -> Ty.equal a b
  | Tup xs, Tup ys | ArrLit xs, ArrLit ys -> eq_list ea eb xs ys
  | Proj (x1, i), Proj (y1, j) -> i = j && eq ea eb x1 y1
  | Prim (p, xs), Prim (q, ys) -> p = q && eq_list ea eb xs ys
  | Let (sa, x1, x2), Let (sb, y1, y2) ->
      eq ea eb x1 y1 && eq (bind ea sa) (bind eb sb) x2 y2
  | If (c1, t1, f1), If (c2, t2, f2) ->
      eq ea eb c1 c2 && eq ea eb t1 t2 && eq ea eb f1 f2
  | Len (x1, i), Len (y1, j) -> i = j && eq ea eb x1 y1
  | Read (x1, xs), Read (y1, ys) -> eq ea eb x1 y1 && eq_list ea eb xs ys
  | Slice (x1, xs), Slice (y1, ys) ->
      eq ea eb x1 y1
      && List.length xs = List.length ys
      && List.for_all2
           (fun sa sb ->
             match (sa, sb) with
             | SAll, SAll -> true
             | SFix a, SFix b -> eq ea eb a b
             | _ -> false)
           xs ys
  | Copy ca, Copy cb ->
      eq ea eb ca.csrc cb.csrc
      && ca.creuse = cb.creuse
      && List.length ca.cdims = List.length cb.cdims
      && List.for_all2
           (fun da db ->
             match (da, db) with
             | Call, Call -> true
             | Cfix a, Cfix b -> eq ea eb a b
             | Coffset a, Coffset b ->
                 eq ea eb a.off b.off && eq ea eb a.len b.len
                 && a.max_len = b.max_len
             | _ -> false)
           ca.cdims cb.cdims
  | Zeros (ta, xs), Zeros (tb, ys) -> Ty.equal ta tb && eq_list ea eb xs ys
  | Map ma, Map mb -> (
      match eq_doms_bind ea eb ma.mdims ma.midxs mb.mdims mb.midxs with
      | Some (ea', eb') -> eq ea' eb' ma.mbody mb.mbody
      | None -> false)
  | Fold fa, Fold fb -> (
      match eq_doms_bind ea eb fa.fdims fa.fidxs fb.fdims fb.fidxs with
      | Some (ea', eb') ->
          eq ea eb fa.finit fb.finit
          && eq (bind ea' fa.facc) (bind eb' fb.facc) fa.fupd fb.fupd
          && eq_comb ea eb fa.fcomb fb.fcomb
      | None -> false)
  | MultiFold a, MultiFold b ->
      (match eq_doms_bind ea eb a.odims a.oidxs b.odims b.oidxs with
      | None -> false
      | Some (ea', eb') ->
          eq ea eb a.oinit b.oinit
          && List.length a.olets = List.length b.olets
          && List.length a.oouts = List.length b.oouts
          &&
          let rec lets ea' eb' la lb =
            match (la, lb) with
            | [], [] ->
                List.for_all2
                  (fun oa ob ->
                    eq_list ea' eb' oa.orange ob.orange
                    && List.length oa.oregion = List.length ob.oregion
                    && List.for_all2
                         (fun (o1, l1, b1) (o2, l2, b2) ->
                           eq ea' eb' o1 o2 && eq ea' eb' l1 l2 && b1 = b2)
                         oa.oregion ob.oregion
                    && eq (bind ea' oa.oacc) (bind eb' ob.oacc) oa.oupd ob.oupd)
                  a.oouts b.oouts
            | (sa, xa) :: ra, (sb, xb) :: rb ->
                eq ea' eb' xa xb && lets (bind ea' sa) (bind eb' sb) ra rb
            | _ -> false
          in
          lets ea' eb' a.olets b.olets)
      && (match (a.ocomb, b.ocomb) with
         | None, None -> true
         | Some ca, Some cb -> eq_comb ea eb ca cb
         | _ -> false)
  | FlatMap a, FlatMap b ->
      eq_dom ea eb a.fmdim b.fmdim
      && eq (bind ea a.fmidx) (bind eb b.fmidx) a.fmbody b.fmbody
  | GroupByFold a, GroupByFold b ->
      (match eq_doms_bind ea eb a.gdims a.gidxs b.gdims b.gidxs with
      | None -> false
      | Some (ea', eb') ->
          eq ea eb a.ginit b.ginit
          && List.length a.glets = List.length b.glets
          &&
          let rec lets ea' eb' la lb =
            match (la, lb) with
            | [], [] ->
                eq ea' eb' a.gkey b.gkey
                && eq (bind ea' a.gacc) (bind eb' b.gacc) a.gupd b.gupd
            | (sa, xa) :: ra, (sb, xb) :: rb ->
                eq ea' eb' xa xb && lets (bind ea' sa) (bind eb' sb) ra rb
            | _ -> false
          in
          lets ea' eb' a.glets b.glets)
      && eq_comb ea eb a.gcomb b.gcomb
  | _ -> false

and eq_list ea eb xs ys =
  List.length xs = List.length ys && List.for_all2 (eq ea eb) xs ys

and eq_dom ea eb da db =
  match (da, db) with
  | Dfull a, Dfull b -> eq ea eb a b
  | Dtiles a, Dtiles b -> a.tile = b.tile && eq ea eb a.total b.total
  | Dtail a, Dtail b ->
      a.tile = b.tile && eq ea eb a.total b.total
      && var_eq ea eb a.outer b.outer
  | _ -> false

and eq_doms_bind ea eb das ia dbs ib =
  (* domains are scoped progressively, like the validator: dom_i may
     reference idx_j for j < i (flattened tiled forms do) — so bind each
     index before comparing the next domain *)
  match (das, ia, dbs, ib) with
  | [], [], [], [] -> Some (ea, eb)
  | da :: ras, sa :: rsa, db :: rbs, sb :: rsb ->
      if eq_dom ea eb da db then
        eq_doms_bind (bind ea sa) (bind eb sb) ras rsa rbs rsb
      else None
  | _ -> None

and eq_comb ea eb ca cb =
  eq (bind (bind ea ca.ca) ca.cb) (bind (bind eb cb.ca) cb.cb) ca.cbody cb.cbody

let equal x y = eq empty empty x y
