(** Loop-invariant code motion.

    Let-bindings (and MultiFold/GroupByFold shared bindings) whose value
    does not reference any index bound by the enclosing pattern are moved
    out of that pattern.  Applied repeatedly, a binding floats to the
    outermost position where it is still well-scoped — in particular, tile
    copies hoist as far as their offsets allow after pattern interchange,
    as Section 4 assumes. *)

val exp : Ir.exp -> Ir.exp
val program : Ir.program -> Ir.program
