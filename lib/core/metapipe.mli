(** Metapipeline finalization (Section 5).

    After lowering, every output buffer that couples two stages of a
    metapipeline is promoted to a double buffer — required to avoid
    write-after-read hazards between stages executing different outer
    iterations concurrently.  Buffers written and read by stages of
    non-metapipelined (sequential) loops stay single-buffered, as do
    preloaded top-level buffers (Fig. 6: the points tile is double
    buffered, the centroids preload is not).

    Also fills in each memory's reader/writer port counts from the
    finished controller tree. *)

val finalize : Hw.design -> Hw.design

val stage_writes : Hw.ctrl -> string list
(** All on-chip memories written anywhere within a controller subtree. *)

val stage_reads : Hw.ctrl -> string list
