(** Dependence core: injectivity of affine write maps over iteration
    domains.

    A MultiFold output is updated at a region whose offsets are (when
    the program is analyzable at all) affine in the pattern's iteration
    indices.  Whether two distinct iterations can touch the same
    accumulator cell is exactly the question of whether that affine map
    is injective over the iteration box — the fact the paper's tiling
    story (Section 4) relies on to parallelize MultiFolds without
    hardware interlocks.  This module answers it with two decision
    procedures that need no polyhedral library:

    - a disproof: pairwise GCD/kernel test — for each pair of axes,
      the minimal integer kernel direction of the map restricted to the
      pair; if it fits inside the axes' extents, two iterations
      provably collide (plus the degenerate case of an axis the map
      never reads);
    - a proof: greedy dominant-stride peeling — repeatedly find an
      axis whose stride in some output dimension strictly dominates
      the maximal contribution of all other unpeeled axes
      (the mixed-radix argument), peel it, and recurse.

    Neither side is complete; the gap is reported as {!Unknown}. *)

type axis = {
  asym : Sym.t;  (** iteration index symbol, counting from 0 *)
  extent : int option;
      (** static trip-count upper bound ([Some]), or symbolic/unknown
          ([None]).  Extents are upper bounds: proofs treat them
          conservatively, disproofs mean "for sizes that reach the
          bound". *)
}

type verdict =
  | Injective  (** distinct iterations write distinct cells *)
  | Overlapping of { dims : Sym.t list; reason : string }
      (** provably non-injective; [dims] are the iteration axes whose
          variation produces the collision *)
  | Unknown of string  (** neither provable nor refutable here *)

val injectivity : axes:axis list -> Affine.t list -> verdict
(** [injectivity ~axes maps] decides whether the map
    [i ↦ (maps_0(i), …, maps_k(i))] is injective over the box
    [0 ≤ i_j < extent_j].  Symbols in [maps] that are not axes (size
    parameters) are constants of the map and cannot affect the
    verdict.  Axes with extent [0] or [1] are ignored. *)

val collision :
  axes:(Sym.t * int) list ->
  Affine.t list ->
  (int list * int list) option
(** Brute force over the concrete box (extents exact here, not upper
    bounds): the first pair of distinct points with equal images, or
    [None].  Intended for tests that cross-check {!injectivity} on
    small domains; cost is the product of the extents. *)
