open Ir

(* One motion step: for a pattern node, peel off leading Let-bindings of
   its body (or invariant shared bindings) that do not mention the
   pattern's binders, and rebind them around the pattern.  [Rewrite.bottom_up]
   applies this at every node; repeating until fixpoint floats bindings
   through several levels. *)

let invariant binders e = Sym.Set.is_empty (Sym.Set.inter (Ir.free_vars e) binders)

(* split leading Lets of [body] into (hoistable, residual body) *)
let peel binders body =
  let rec go acc = function
    | Let (s, e1, e2) when invariant binders e1 -> go ((s, e1) :: acc) e2
    | e -> (List.rev acc, e)
  in
  go [] body

let rebind lets e =
  List.fold_right (fun (s, e1) acc -> Let (s, e1, acc)) lets e

let binders_of_doms idxs = Sym.Set.of_list idxs

let step e =
  match e with
  | Map m -> (
      match peel (binders_of_doms m.midxs) m.mbody with
      | [], _ -> e
      | lets, body -> rebind lets (Map { m with mbody = body }))
  | Fold f -> (
      let binders = Sym.Set.add f.facc (binders_of_doms f.fidxs) in
      match peel binders f.fupd with
      | [], _ -> e
      | lets, body -> rebind lets (Fold { f with fupd = body }))
  | FlatMap fm -> (
      match peel (Sym.Set.singleton fm.fmidx) fm.fmbody with
      | [], _ -> e
      | lets, body -> rebind lets (FlatMap { fm with fmbody = body }))
  | MultiFold mf ->
      let binders = binders_of_doms mf.oidxs in
      (* hoist invariant shared bindings (later bindings may reference
         earlier ones, so only a prefix whose members are all invariant and
         mutually consistent hoists) *)
      let rec split_prefix acc = function
        | (s, e1) :: rest when invariant binders e1 -> split_prefix ((s, e1) :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let hoisted, kept = split_prefix [] mf.olets in
      if hoisted = [] then e
      else rebind hoisted (MultiFold { mf with olets = kept })
  | GroupByFold g ->
      let binders = binders_of_doms g.gidxs in
      let rec split_prefix acc = function
        | (s, e1) :: rest when invariant binders e1 -> split_prefix ((s, e1) :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let hoisted, kept = split_prefix [] g.glets in
      if hoisted = [] then e
      else rebind hoisted (GroupByFold { g with glets = kept })
  | e -> e

let rec exp e =
  let e' = Rewrite.bottom_up step e in
  if e' = e then e else exp e'

let program (p : program) = { p with body = exp p.body }
