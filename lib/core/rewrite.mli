(** Generic traversal and rewriting over the PPL IR.

    All transformation passes are built on these: [map_children] applies a
    function to every direct child expression (including expressions inside
    domains, regions, shared bindings and combine functions), [bottom_up]
    rewrites post-order. *)

val map_children : (Ir.exp -> Ir.exp) -> Ir.exp -> Ir.exp
val map_dom : (Ir.exp -> Ir.exp) -> Ir.dom -> Ir.dom

val bottom_up : (Ir.exp -> Ir.exp) -> Ir.exp -> Ir.exp
(** [bottom_up f e] rebuilds [e] with children rewritten first, then
    applies [f] to each resulting node. *)

val top_down_ctx :
  'ctx -> enter:('ctx -> Ir.exp -> 'ctx) -> ('ctx -> Ir.exp -> Ir.exp option) -> Ir.exp -> Ir.exp
(** [top_down_ctx ctx ~enter f e]: at each node, [f ctx e] may replace the
    node (the replacement is re-visited); otherwise recursion proceeds into
    children with [enter ctx e] as the new context. *)

val iter_exp : (Ir.exp -> unit) -> Ir.exp -> unit
(** Pre-order visit of every node. *)

val exists_exp : (Ir.exp -> bool) -> Ir.exp -> bool
val node_count : Ir.exp -> int
