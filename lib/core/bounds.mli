(** Static bounds verification for input accesses.

    Proves, symbolically, that every read of a program input and every
    tile copy stays inside the input's declared shape — for all values of
    the size parameters.  This is the safety side of the tiling story:
    strip mining introduces index arithmetic like [ii*b + i] with
    [i < min(b, n - ii*b)], and this pass discharges exactly those
    obligations with interval analysis plus two relational rules:

    - a [Dtail] index and its tile index bound each other:
      [outer*tile + inner <= total - 1];
    - [min(a, b)] is bounded above by each operand.

    Findings are {!Diagnostic.t} values on the shared rendering/JSON
    path: [PPL231] (error) for accesses provably out of range for some
    sizes, [PPL230] (warning) for accesses this analysis cannot decide
    (data-dependent indices like k-means' [minDistIndex] are inherently
    unprovable here — the hardware serves them through a cache).
    Proven-safe accesses are silent. *)

type env
(** Loop environment for the proving primitives: the pattern indices in
    scope with their domains, outermost first. *)

val top : env
(** No indices in scope. *)

val enter : env -> Sym.t -> Ir.dom -> env
(** [enter env s d] pushes index [s] ranging over domain [d]. *)

val prove_ge :
  env -> Ir.exp -> int -> [ `Proven | `Unknown | `Violated ]
(** [prove_ge env e k]: is [e >= k] for all size-parameter values >= 0
    and all in-range index values?  Used by {!Ppl_lint}'s PPL222 rule
    (division/log/sqrt guards) as well as internally. *)

val audit : Ir.program -> int * Diagnostic.t list
(** [(accesses, diags)]: the number of input reads / tile copies
    checked, and the diagnostics for those not proven safe ([PPL230]
    warnings, [PPL231] errors), sorted with {!Diagnostic.compare}. *)

val check_program : Ir.program -> Diagnostic.t list
(** [snd (audit p)]. *)
