(** Static bounds verification for input accesses.

    Proves, symbolically, that every read of a program input and every
    tile copy stays inside the input's declared shape — for all values of
    the size parameters.  This is the safety side of the tiling story:
    strip mining introduces index arithmetic like [ii*b + i] with
    [i < min(b, n - ii*b)], and this pass discharges exactly those
    obligations with interval analysis plus two relational rules:

    - a [Dtail] index and its tile index bound each other:
      [outer*tile + inner <= total - 1];
    - [min(a, b)] is bounded above by each operand.

    Accesses it cannot prove are reported as warnings (data-dependent
    indices like k-means' [minDistIndex] are inherently unprovable here —
    the hardware serves them through a cache; they are reported as
    [`Unknown], not as violations). *)

type verdict =
  | Safe  (** proven in range for all size-parameter values *)
  | Unknown of string  (** not provable by this analysis (e.g. data-dependent) *)
  | Violation of string  (** provably out of range for some sizes *)

type finding = {
  array : Sym.t;  (** the input accessed *)
  what : string;  (** rendering of the access *)
  verdict : verdict;
}

val check_program : Ir.program -> finding list
(** One finding per input read / tile copy in the program body. *)

val violations : finding list -> finding list
val unproven : finding list -> finding list
val pp_finding : Format.formatter -> finding -> unit
