open Ir

type opts = {
  meta : bool;
  par : int;
  budget_words : int;
  cache_leftover : bool;
  fifo_rate : float;
}

let default_opts =
  { meta = true; par = 16; budget_words = 1 lsl 18; cache_leftover = true;
    fifo_rate = 0.05 }

let baseline_opts = { default_opts with meta = false; cache_leftover = false }

type ctx = {
  opts : opts;
  tenv : Ty.t Sym.Map.t;
  bound : exp -> int option;
  ishapes : (Sym.t * exp list) list;  (* input array shapes *)
  bufs : (Sym.t * string list) list;  (* on-chip value -> mem per component *)
  dram : (Sym.t * string) list;  (* DRAM arrays *)
  mems : Hw.mem list ref;
  caches : (Sym.t, string) Hashtbl.t;
  dyn_lens : (Sym.t * Hw.trip) list;  (* FlatMap outputs: expected lengths *)
  counter : int ref;
  prov : Prov.t;  (* nearest enclosing source pattern's provenance *)
}

let fresh_name ctx base =
  incr ctx.counter;
  Printf.sprintf "%s_%d" base !(ctx.counter)

(* provenance carried by a pattern node, if any *)
let pat_prov = function
  | Map m -> m.mprov
  | Fold f -> f.fprov
  | MultiFold mf -> mf.oprov
  | FlatMap fm -> fm.fmprov
  | GroupByFold g -> g.gprov
  | _ -> Prov.none

(* provenance of a leaf expression: its top pattern, or the pattern its
   Let-spine terminates in *)
let rec exp_prov e =
  let p = pat_prov e in
  if not (Prov.is_none p) then p
  else match e with Let (_, _, rest) -> exp_prov rest | _ -> Prov.none

let node_prov ctx p = if Prov.is_none p then ctx.prov else p
let under_prov ctx p = { ctx with prov = p }

let add_ty ctx s t = { ctx with tenv = Sym.Map.add s t ctx.tenv }

let add_idxs ctx idxs =
  { ctx with
    tenv = List.fold_left (fun m s -> Sym.Map.add s Ty.int_ m) ctx.tenv idxs }

let add_buf ctx s names = { ctx with bufs = (s, names) :: ctx.bufs }
let infer ctx e = Validate.infer ctx.tenv e

let rec width_of_ty = function
  | Ty.Scalar _ -> 32
  | Ty.Tuple ts -> List.fold_left (fun acc t -> acc + width_of_ty t) 0 ts
  | Ty.Array (elt, _) -> width_of_ty elt
  | Ty.Assoc (k, v) -> width_of_ty k + width_of_ty v

let alloc_mem ctx ~name ~kind ~width ~depth ~banks =
  let m =
    { Hw.mem_name = name; kind; width_bits = width; depth; banks;
      readers = 0; writers = 0; mem_prov = ctx.prov }
  in
  ctx.mems := m :: !(ctx.mems);
  name

(* ------------------------------ trips ------------------------------ *)

let rec trip_of_size ctx e =
  match e with
  | Ci c -> Hw.Tconst (float_of_int c)
  | Var s -> (
      match List.find_opt (fun (k, _) -> Sym.equal k s) ctx.dyn_lens with
      | Some (_, t) -> t
      | None -> Hw.Tsize s)
  | Len (Var s, _) -> (
      match List.find_opt (fun (k, _) -> Sym.equal k s) ctx.dyn_lens with
      | Some (_, t) -> t
      | None -> Hw.Tconst 1.0)
  | Prim (Mul, [ a; b ]) -> Hw.Tmul (trip_of_size ctx a, trip_of_size ctx b)
  | Prim (Add, [ a; Ci _ ]) -> trip_of_size ctx a
  | Prim (Min, [ Ci tile; Prim (Sub, [ total; Prim (Mul, [ _; Ci tile' ]) ]) ])
    when tile = tile' ->
      Hw.Tavg_tail { total = trip_of_size ctx total; tile }
  | _ -> Hw.Tconst 1.0

let trip_of_dom ctx = function
  | Dfull e -> trip_of_size ctx e
  | Dtiles { total; tile } -> (
      match trip_of_size ctx total with
      | Hw.Tconst c -> Hw.Tconst (ceil (c /. float_of_int tile))
      | t -> Hw.Tceil_div (t, tile))
  | Dtail { total; tile; _ } -> (
      match trip_of_size ctx total with
      | Hw.Tconst c ->
          let tiles = ceil (c /. float_of_int tile) in
          Hw.Tconst (if tiles <= 0.0 then 0.0 else c /. tiles)
      | t -> Hw.Tavg_tail { total = t; tile })

let trip_of_len ctx len max_len =
  match len with
  | Ci c -> Hw.Tconst (float_of_int c)
  | _ -> (
      match trip_of_size ctx len with
      | Hw.Tconst 1.0 -> (
          match max_len with
          | Some m -> Hw.Tconst (float_of_int m)
          | None -> Hw.Tconst 1.0)
      | t -> t)

(* static trip estimate, for spine selection *)
let trip_estimate ctx = function
  | Dfull e -> (match ctx.bound e with Some b -> b | None -> 64)
  | Dtiles { total; tile } -> (
      match ctx.bound total with
      | Some b -> (b + tile - 1) / tile
      | None -> 64)
  | Dtail { tile; _ } -> tile

(* --------------------------- classification ------------------------ *)

let is_pattern = function
  | Map _ | Fold _ | MultiFold _ | FlatMap _ | GroupByFold _ -> true
  | _ -> false

(* a value that needs no buffer: its computation stays in the datapath *)
let scalarish e =
  not
    (Rewrite.exists_exp
       (function
         | Zeros _ | ArrLit _ | EmptyArr _ | Copy _ | Slice _ -> true
         | Map _ | MultiFold _ | FlatMap _ | GroupByFold _ -> true
         | _ -> false)
       e)

(* a Let-bound pattern that can live inside a pipe's datapath (a scalar
   reduction like gemm's dot product) rather than forming its own stage *)
let datapath_pattern = function
  | Fold { finit; _ } -> scalarish finit
  | _ -> false

(* A leaf lowers to a single pipelined execution unit: no tile copies and
   no staged (Let- or shared-binding-bound, buffer-producing) patterns
   anywhere inside. *)
let is_leaf e =
  not
    (Rewrite.exists_exp
       (function
         | Copy _ -> true
         | Let (_, rhs, _) when is_pattern rhs && not (datapath_pattern rhs) ->
             true
         | MultiFold { olets; _ } ->
             List.exists
               (fun (_, rhs) -> is_pattern rhs && not (datapath_pattern rhs))
               olets
         | GroupByFold { glets; _ } ->
             List.exists
               (fun (_, rhs) -> is_pattern rhs && not (datapath_pattern rhs))
               glets
         | _ -> false)
       e)

(* maximal pattern subterms, not descending into them *)
let top_patterns e =
  if is_pattern e then [ e ]
  else begin
    let acc = ref [] in
    let rec visit_children e =
      ignore
        (Rewrite.map_children
           (fun c ->
             if is_pattern c then acc := c :: !acc else visit_children c;
             c)
           e)
    in
    visit_children e;
    List.rev !acc
  end

(* ----------------------------- leaf pipes -------------------------- *)

let pattern_parts = function
  | Map m -> Some (List.combine m.mdims m.midxs, [ m.mbody ])
  | Fold f -> Some (List.combine f.fdims f.fidxs, [ f.fupd ])
  | MultiFold mf ->
      Some
        ( List.combine mf.odims mf.oidxs,
          List.map snd mf.olets @ List.map (fun o -> o.oupd) mf.oouts )
  | FlatMap fm -> Some ([ (fm.fmdim, fm.fmidx) ], [ fm.fmbody ])
  | GroupByFold g ->
      Some
        ( List.combine g.gdims g.gidxs,
          List.map snd g.glets @ [ g.gkey; g.gupd ] )
  | _ -> None

(* The nested chain of iteration domains with the largest static count.
   Sub-patterns that do not depend on this pattern's indices are evaluated
   once, not per iteration (e.g. the inner MultiFold under sumrows' outer
   elementwise merge), so their trips must not multiply with ours: such a
   chain competes with the dependent chain instead. *)
let rec spine ctx e =
  match pattern_parts e with
  | None -> []
  | Some (here, bodies) ->
      let weight s =
        List.fold_left (fun acc (d, _) -> acc * trip_estimate ctx d) 1 s
      in
      let idxs = List.map snd here in
      let dependent p =
        let fv = Ir.free_vars p in
        List.exists (fun s -> Sym.Set.mem s fv) idxs
      in
      let subs = List.concat_map top_patterns bodies in
      let best l =
        List.fold_left
          (fun best p ->
            let s = spine ctx p in
            match best with
            | Some b when weight b >= weight s -> best
            | _ -> Some s)
          None l
      in
      let dep, indep = List.partition dependent subs in
      let dep_chain =
        here @ (match best dep with Some s -> s | None -> [])
      in
      let indep_chain = match best indep with Some s -> s | None -> [] in
      if weight indep_chain > weight dep_chain then indep_chain else dep_chain

(* deepest pattern along the spine, and its body *)
let rec deepest_pattern e =
  match pattern_parts e with
  | None -> e
  | Some (_, bodies) -> (
      match List.concat_map top_patterns bodies with
      | [] -> e
      | p :: _ -> deepest_pattern p)

let innermost_body e =
  match pattern_parts (deepest_pattern e) with
  | Some (_, bodies) -> bodies
  | None -> [ e ]

let count_ops es =
  let flops = ref 0 and int_ops = ref 0 and cmp_ops = ref 0 in
  let reads = ref 0 in
  List.iter
    (Rewrite.iter_exp (function
      | Prim ((Add | Sub | Mul | Div | Neg | Sqrt | Exp | Log | Abs), _) ->
          incr flops
      | Prim ((Min | Max | Lt | Le | Gt | Ge | Eq | Ne), _) -> incr cmp_ops
      | Prim ((Mod | ToFloat | ToInt | And | Or | Not), _) -> incr int_ops
      | Read _ -> incr reads
      | _ -> ()))
    es;
  { Hw.flops = !flops; int_ops = !int_ops; cmp_ops = !cmp_ops;
    mem_reads = !reads; mem_writes = 1 }

let template_of e =
  match deepest_pattern e with
  | Map _ -> Hw.Vector
  | Fold _ | MultiFold _ -> Hw.Tree
  | FlatMap _ -> Hw.Fifo_write
  | GroupByFold _ -> Hw.Cam_update
  | _ -> Hw.Scalar_unit

(* every DRAM read inside a leaf, with per-spine-loop dependence flags *)
let dram_accesses ctx spine_dims e =
  let accs = ref [] in
  Rewrite.iter_exp
    (function
      | Read (Var s, idxs) -> (
          match List.find_opt (fun (k, _) -> Sym.equal k s) ctx.dram with
          | None -> ()
          | Some (_, arr) ->
              let deps =
                List.fold_left
                  (fun acc i -> Sym.Set.union acc (Ir.free_vars i))
                  Sym.Set.empty idxs
              in
              let path =
                List.map
                  (fun (d, idx) -> (trip_of_dom ctx d, Sym.Set.mem idx deps))
                  spine_dims
              in
              let contiguous =
                let rec last = function
                  | [ x ] -> Some x
                  | _ :: r -> last r
                  | [] -> None
                in
                match last idxs with
                | None -> false
                | Some last_idx -> (
                    match Affine.of_exp (Simplify.exp last_idx) with
                    | None -> false
                    | Some aff ->
                        let spine_syms = List.map snd spine_dims in
                        let unit_syms =
                          Sym.Set.filter
                            (fun s -> Affine.coeff aff s = 1)
                            (Affine.syms aff)
                        in
                        (* contiguous if the unit-stride symbol is deeper
                           than every other dependent loop: either a
                           non-spine (inner region) index, or the last
                           dependent spine index *)
                        Sym.Set.exists
                          (fun s -> not (List.exists (Sym.equal s) spine_syms))
                          unit_syms
                        ||
                        match
                          last
                            (List.filter
                               (fun (_, idx) -> Sym.Set.mem idx deps)
                               spine_dims)
                        with
                        | Some (_, idx) -> Sym.Set.mem idx unit_syms
                        | None -> false)
              in
              let affine =
                List.for_all
                  (fun i -> Affine.of_exp (Simplify.exp i) <> None)
                  idxs
              in
              let kind =
                if (not affine) && ctx.opts.cache_leftover then begin
                  (if not (Hashtbl.mem ctx.caches s) then begin
                     let name = fresh_name ctx (arr ^ "_cache") in
                     ignore
                       (alloc_mem ctx ~name ~kind:Hw.Cache ~width:32
                          ~depth:1024 ~banks:1);
                     Hashtbl.add ctx.caches s name
                   end);
                  `Cached
                end
                else `Read
              in
              let row_words =
                (* innermost dependent extent: one contiguous run *)
                let rec last_dep = function
                  | [] -> None
                  | (d, idx) :: rest -> (
                      match last_dep rest with
                      | Some x -> Some x
                      | None -> if Sym.Set.mem idx deps then Some d else None)
                in
                match last_dep spine_dims with
                | Some d when contiguous -> trip_of_dom ctx d
                | _ -> Hw.Tconst 1.0
              in
              let da =
                { Hw.da_array = arr; da_path = path;
                  da_contiguous = contiguous; da_affine = affine;
                  da_row_words = row_words; da_kind = kind }
              in
              (* one stream per distinct (array, dependence) pattern: a
                 pipe re-reading the same element in several places shares
                 one memory stream *)
              if not (List.mem da !accs) then accs := da :: !accs)
      | _ -> ())
    e;
  List.rev !accs

let buffer_uses ctx e =
  let uses = ref [] in
  Rewrite.iter_exp
    (function
      | Var s -> (
          match List.find_opt (fun (k, _) -> Sym.equal k s) ctx.bufs with
          | Some (_, names) ->
              List.iter
                (fun n -> if not (List.mem n !uses) then uses := n :: !uses)
                names
          | None -> ())
      | _ -> ())
    e;
  List.rev !uses

let cache_uses ctx e =
  let uses = ref [] in
  Rewrite.iter_exp
    (function
      | Var s -> (
          match Hashtbl.find_opt ctx.caches s with
          | Some n when not (List.mem n !uses) -> uses := n :: !uses
          | _ -> ())
      | _ -> ())
    e;
  List.rev !uses

let lower_leaf ctx ~defines base e =
  let sp = spine ctx e in
  let trips = List.map (fun (d, _) -> trip_of_dom ctx d) sp in
  let ops = count_ops (innermost_body e) in
  let dram = dram_accesses ctx sp e in
  (* fill latency: critical path of the datapath after MaxJ's automatic
     pipelining *)
  let depth = Depth.of_exp e in
  let name = fresh_name ctx base in
  Hw.Pipe
    { name;
      trips;
      template = template_of e;
      par = ctx.opts.par;
      depth;
      ii = 1;
      ops;
      body =
        (match innermost_body e with
        | [ b ] -> Some b
        | bs -> Some (Tup bs));
      dram;
      uses = buffer_uses ctx e @ cache_uses ctx e;
      defines;
      prov = Prov.push (node_prov ctx (exp_prov e)) name }

(* --------------------------- memory sizing ------------------------- *)

(* components of a value type: one mem per array/scalar component *)
let component_tys = function
  | Ty.Tuple ts when List.exists (function Ty.Array _ -> true | _ -> false) ts
    ->
      ts
  | t -> [ t ]

let shape_words ctx shape =
  List.fold_left
    (fun acc e ->
      match (acc, ctx.bound e) with
      | Some a, Some b -> Some (a * b)
      | _ -> None)
    (Some 1) shape

(* component shapes of an accumulator init expression *)
let init_shapes init =
  match init with
  | Tup es ->
      List.map
        (function
          | Zeros (_, shape) -> Some shape
          | Cf _ | Ci _ | Cb _ | Tup _ -> Some []
          | _ -> None)
        es
  | Zeros (_, shape) -> [ Some shape ]
  | Cf _ | Ci _ | Cb _ -> [ Some [] ]
  | Map m -> [ Some (List.map (fun d -> Ir.dom_size d) m.mdims) ]
  | _ -> [ None ]

(* allocate on-chip storage for an accumulator/intermediate value.
   Returns the mem names, or None if its static bound exceeds the budget. *)
let alloc_value ctx base ty init =
  let comps = component_tys ty in
  let shapes =
    let s = init_shapes init in
    if List.length s = List.length comps then s
    else List.map (fun _ -> None) comps
  in
  let words =
    List.fold_left2
      (fun acc comp shape ->
        match (acc, shape) with
        | Some a, Some sh -> (
            match shape_words ctx sh with
            | Some w -> Some (a + (w * (width_of_ty comp / 32)))
            | None -> None)
        | _ -> None)
      (Some 0) comps shapes
  in
  match words with
  | Some w when w <= ctx.opts.budget_words ->
      let names =
        List.map2
          (fun comp shape ->
            let name =
              fresh_name ctx
                (base ^ if List.length comps = 1 then "" else "_c")
            in
            match comp with
            | Ty.Assoc (k, v) ->
                (* GroupByFold result: an associative key-value store *)
                alloc_mem ctx ~name ~kind:Hw.Cam
                  ~width:(width_of_ty k + width_of_ty v)
                  ~depth:1024 ~banks:1
            | _ ->
                let depth =
                  match shape with
                  | Some sh -> (
                      match shape_words ctx sh with
                      | Some w -> Int.max 1 w
                      | None -> 1)
                  | None -> 1
                in
                let kind = if depth = 1 then Hw.Reg else Hw.Buffer in
                alloc_mem ctx ~name ~kind ~width:(width_of_ty comp) ~depth
                  ~banks:(if depth = 1 then 1 else ctx.opts.par))
          comps shapes
      in
      Some names
  | _ -> None

(* ----------------------- stage decomposition ----------------------- *)

(* Detect the tiled-MultiFold redundant-accumulation wrapper produced by
   strip mining: [upd = lets...; a = acc; b = INNER; comb-body].  The inner
   pattern then accumulates directly into the outer buffer and no merge
   stage is emitted (Section 5, metapipeline analysis). *)
let strip_comb_wrapper facc fupd =
  let rec go prefix e =
    match e with
    | Let (a, Var facc', Let (b, inner, cbody))
      when Sym.equal facc' facc
           && Sym.Set.mem a (Ir.free_vars cbody)
           && Sym.Set.mem b (Ir.free_vars cbody) ->
        let rec rebuild = function
          | [] -> inner
          | (s, rhs) :: rest -> Let (s, rhs, rebuild rest)
        in
        Some (rebuild (List.rev prefix))
    | Let (s, rhs, rest) -> go ((s, rhs) :: prefix) rest
    | _ -> None
  in
  go [] fupd

let elt_width_of_src ctx src =
  match src with
  | Var s -> (
      match Sym.Map.find_opt s ctx.tenv with
      | Some (Ty.Array (elt, _)) -> width_of_ty elt
      | _ -> 32)
  | _ -> 32

(* Tile copy -> buffer + tile load unit *)
let lower_copy ctx s { csrc; cdims; creuse } =
  let arr_sym = match csrc with Var a -> Some a | _ -> None in
  let arr_name =
    match arr_sym with
    | Some a -> (
        match List.find_opt (fun (k, _) -> Sym.equal k a) ctx.dram with
        | Some (_, n) -> n
        | None -> Sym.name a)
    | None -> "anon"
  in
  let shape =
    match arr_sym with
    | Some a -> (
        match List.find_opt (fun (k, _) -> Sym.equal k a) ctx.ishapes with
        | Some (_, sh) -> sh
        | None -> [])
    | None -> []
  in
  let dim_info =
    List.mapi
      (fun i cd ->
        match cd with
        | Coffset { len; max_len; _ } ->
            (trip_of_len ctx len max_len,
             match max_len with Some m -> m | None -> 1024)
        | Call ->
            let size_e = try List.nth shape i with _ -> Ci 1 in
            ( trip_of_size ctx size_e,
              match ctx.bound size_e with Some b -> b | None -> 1024 )
        | Cfix _ -> (Hw.Tconst 1.0, 1))
      cdims
  in
  let words = Hw.trip_product (List.map fst dim_info) in
  let depth = List.fold_left (fun acc (_, m) -> acc * m) 1 dim_info in
  let mem_name =
    alloc_mem ctx ~name:(Sym.name s) ~kind:Hw.Buffer
      ~width:(elt_width_of_src ctx csrc) ~depth ~banks:ctx.opts.par
  in
  let load_name = fresh_name ctx ("load_" ^ arr_name) in
  let load =
    Hw.Tile_load
      { name = load_name;
        mem = mem_name;
        array = arr_name;
        words;
        path = [];
        reuse = creuse;
        prov = Prov.push ctx.prov load_name }
  in
  (mem_name, load)

(* region write of a DRAM-resident accumulator *)
let region_words ctx region =
  Hw.trip_product
    (List.map (fun (_, len, max_len) -> trip_of_len ctx len max_len) region)

let region_depth _ctx region =
  List.fold_left
    (fun acc (_, len, max_len) ->
      acc
      *
      match (len, max_len) with
      | Ci c, _ -> c
      | _, Some m -> m
      | _ -> 1024)
    1 region

(* destination of a lowered value *)
type dest =
  | Onchip of string list  (* mem names per component *)
  | Dram_arr of string  (* DRAM-resident array *)

let rec lower_stages ctx e ~dest : Hw.ctrl list =
  match e with
  (* streaming filter-reduce: FlatMap consumed by a fold over its length
     becomes one loop whose stages are loads | filter pipe | reduce pipe,
     all coupled through the FIFO *)
  | Let
      ( x,
        FlatMap
          { fmdim = Dtiles { total; tile } as od; fmidx; fmbody; fmprov; _ },
        (Fold { fdims = [ Dfull (Len (Var x', 0)) ]; _ } as consumer) )
    when Sym.equal x x' ->
      let bprov = node_prov ctx fmprov in
      let ctx = under_prov ctx bprov in
      let fifo =
        alloc_mem ctx ~name:(Sym.name x) ~kind:Hw.Fifo ~width:32
          ~depth:(2 * tile) ~banks:1
      in
      let tail_trip =
        trip_of_dom ctx (Dtail { total; tile; outer = fmidx })
      in
      let ctx_body = add_idxs ctx [ fmidx ] in
      let inner_stages =
        lower_flatmap_body ctx_body fmbody ~fifo
      in
      let ctx_consume =
        { ctx with
          dyn_lens =
            (x, Hw.Tscale (ctx.opts.fifo_rate, tail_trip)) :: ctx.dyn_lens;
          bufs = (x, [ fifo ]) :: ctx.bufs }
      in
      let reduce = lower_value ctx_consume consumer ~dest in
      let name = fresh_name ctx "stream" in
      [ Hw.Loop
          { name;
            trips = [ trip_of_dom ctx od ];
            meta = ctx.opts.meta;
            stages = inner_stages @ reduce;
            prov = Prov.push bprov name } ]
  | Let (s, Copy c, rest) ->
      let mem_name, load = lower_copy ctx s c in
      let t = infer ctx (Copy c) in
      let ctx' = add_buf (add_ty ctx s t) s [ mem_name ] in
      load :: lower_stages ctx' rest ~dest
  | Let (s, rhs, rest) when is_pattern rhs ->
      let t = infer ctx rhs in
      (* the intermediate's storage belongs to the pattern computing it *)
      let ctx_a = under_prov ctx (node_prov ctx (pat_prov rhs)) in
      let names =
        match alloc_value ctx_a (Sym.name s) t (init_hint_of rhs) with
        | Some names -> names
        | None ->
            (* intermediate too large: keep in DRAM *)
            [ alloc_mem ctx_a ~name:(Sym.name s) ~kind:Hw.Buffer ~width:32
                ~depth:1 ~banks:1 ]
      in
      let stage = lower_value ctx rhs ~dest:(Onchip names) in
      let ctx' = add_buf (add_ty ctx s t) s names in
      (* FlatMap intermediates have dynamic length: register the expected
         rate so downstream consumers get realistic trip counts *)
      let ctx' =
        match rhs with
        | FlatMap { fmdim; _ } ->
            { ctx' with
              dyn_lens =
                (s, Hw.Tscale (ctx.opts.fifo_rate, trip_of_dom ctx fmdim))
                :: ctx'.dyn_lens }
        | _ -> ctx'
      in
      stage @ lower_stages ctx' rest ~dest
  | Let (s, (Var _ as alias), rest) ->
      (* alias: propagate buffer/dram bindings *)
      let t = infer ctx alias in
      let ctx' =
        match alias with
        | Var a -> (
            match List.find_opt (fun (k, _) -> Sym.equal k a) ctx.bufs with
            | Some (_, names) -> add_buf (add_ty ctx s t) s names
            | None -> add_ty ctx s t)
        | _ -> add_ty ctx s t
      in
      lower_stages ctx' rest ~dest
  | Let (s, rhs, rest) ->
      (* scalar or small expression: a register stage *)
      let t = infer ctx rhs in
      let name =
        alloc_mem ctx ~name:(Sym.name s) ~kind:Hw.Reg ~width:(width_of_ty t)
          ~depth:1 ~banks:1
      in
      let stage = lower_leaf ctx ~defines:[ name ] "scalar" rhs in
      let ctx' = add_buf (add_ty ctx s t) s [ name ] in
      stage :: lower_stages ctx' rest ~dest
  | e -> lower_value ctx e ~dest

and init_hint_of = function
  | Fold { finit; _ } -> finit
  | MultiFold { oinit; _ } -> oinit
  | Map m ->
      (* a Map produces one element per index *)
      Zeros (Ty.float_, List.map Ir.dom_size m.mdims)
  | _ -> Ci 0

and lower_flatmap_body ctx e ~fifo : Hw.ctrl list =
  (* body of an outer FlatMap tile iteration: leading copies then the
     inner (leaf) FlatMap writing the FIFO *)
  match e with
  | Let (s, Copy c, rest) ->
      let mem_name, load = lower_copy ctx s c in
      let t = infer ctx (Copy c) in
      let ctx' = add_buf (add_ty ctx s t) s [ mem_name ] in
      load :: lower_flatmap_body ctx' rest ~fifo
  | e -> [ lower_leaf ctx ~defines:[ fifo ] "filter" e ]

and lower_value ctx e ~dest : Hw.ctrl list =
  match e with
  | _ when is_leaf e -> lower_leaf_value ctx e ~dest
  | Fold f -> lower_fold ctx f ~dest
  | MultiFold mf -> lower_multifold ctx mf ~dest
  | FlatMap fm -> lower_flatmap ctx fm ~dest
  | GroupByFold g -> lower_groupbyfold ctx g ~dest
  | Map m ->
      (* non-leaf Map: loop over its domain with staged body *)
      let bprov = node_prov ctx m.mprov in
      let ctx' = add_idxs (under_prov ctx bprov) m.midxs in
      let stages = lower_stages ctx' m.mbody ~dest in
      let name = fresh_name ctx "map_loop" in
      [ Hw.Loop
          { name;
            trips = List.map (trip_of_dom ctx) m.mdims;
            meta = ctx.opts.meta;
            stages;
            prov = Prov.push bprov name } ]
  | Let _ -> lower_stages ctx e ~dest
  | e ->
      (* fallback: treat as one pipe *)
      [ lower_leaf ctx ~defines:(dest_defines dest) "pipe" e ]

and dest_defines = function Onchip names -> names | Dram_arr _ -> []

and lower_leaf_value ctx e ~dest : Hw.ctrl list =
  match (e, dest) with
  | MultiFold ({ oouts = _ :: _ :: _; _ } as mf), Onchip names
    when List.length mf.oouts = List.length names ->
      (* one pipe per accumulator component, running in parallel
         (Fig. 6's Pipe 3 / Pipe 4) *)
      let bprov = node_prov ctx mf.oprov in
      let ctx = under_prov ctx bprov in
      let ctx_i = add_idxs ctx mf.oidxs in
      let ctx_i =
        List.fold_left
          (fun c (s, rhs) ->
            match infer c rhs with
            | t -> add_ty c s t
            | exception Validate.Type_error _ -> c)
          ctx_i mf.olets
      in
      (* the shared bindings (e.g. minDistIndex) are computed by the first
         pipe; the others consume the value, so they carry neither the
         shared trips nor the shared operations *)
      let pipes =
        List.mapi
          (fun i (out, name) ->
            lower_leaf ctx_i ~defines:[ name ] ("update_" ^ name)
              (MultiFold
                 { mf with
                   olets = (if i = 0 then mf.olets else []);
                   oouts = [ out ] }))
          (List.combine mf.oouts names)
      in
      let name = fresh_name ctx "par" in
      [ Hw.Par { name; children = pipes; prov = Prov.push bprov name } ]
  | _, Onchip names -> [ lower_leaf ctx ~defines:names "pipe" e ]
  | _, Dram_arr arr ->
      (* leaf computing a DRAM-resident value: pipe into a staging buffer
         then store (used for whole-result leaves) *)
      let bprov = node_prov ctx (exp_prov e) in
      let ctx = under_prov ctx bprov in
      let stage_mem =
        alloc_mem ctx ~name:(fresh_name ctx "stage") ~kind:Hw.Buffer ~width:32
          ~depth:1024 ~banks:ctx.opts.par
      in
      let pipe = lower_leaf ctx ~defines:[ stage_mem ] "pipe" e in
      let words =
        match e with
        | Map m -> Hw.trip_product (List.map (trip_of_dom ctx) m.mdims)
        | MultiFold { oouts = out :: _; _ } ->
            (* minimum writes: the accumulator's full range once *)
            Hw.trip_product (List.map (trip_of_size ctx) out.orange)
        | Fold { finit; _ } -> (
            match init_shapes finit with
            | [ Some shape ] ->
                Hw.trip_product (List.map (trip_of_size ctx) shape)
            | _ -> Hw.Tconst 1.0)
        | _ -> Hw.Tconst 1.0
      in
      let sname = fresh_name ctx ("store_" ^ arr) in
      [ pipe;
        Hw.Tile_store
          { name = sname;
            mem = Some stage_mem;
            array = arr;
            words;
            path = [];
            prov = Prov.push bprov sname } ]

and lower_fold ctx ({ fdims; fidxs; finit; facc; fupd; fcomb = _; fprov; _ } as _f)
    ~dest : Hw.ctrl list =
  let bprov = node_prov ctx fprov in
  let ctx = under_prov ctx bprov in
  let acc_t = infer ctx finit in
  let acc_names =
    match dest with
    | Onchip names -> names
    | Dram_arr _ -> (
        match alloc_value ctx "acc" acc_t finit with
        | Some names -> names
        | None -> [ alloc_mem ctx ~name:(fresh_name ctx "acc") ~kind:Hw.Buffer
                      ~width:32 ~depth:1024 ~banks:ctx.opts.par ])
  in
  let ctx_b = add_ty (add_idxs ctx fidxs) facc acc_t in
  let ctx_b = add_buf ctx_b facc acc_names in
  let body =
    match strip_comb_wrapper facc fupd with
    | Some inner -> inner
    | None -> fupd
  in
  let stages = lower_stages ctx_b body ~dest:(Onchip acc_names) in
  let loop =
    let name = fresh_name ctx "fold_loop" in
    Hw.Loop
      { name;
        trips = List.map (trip_of_dom ctx) fdims;
        meta = ctx.opts.meta;
        stages;
        prov = Prov.push bprov name }
  in
  match dest with
  | Onchip _ -> [ loop ]
  | Dram_arr arr ->
      (* result lives in DRAM: store the accumulator at the end *)
      let words =
        match init_shapes finit with
        | [ Some shape ] ->
            Hw.trip_product (List.map (trip_of_size ctx) shape)
        | _ -> Hw.Tconst 1.0
      in
      let sname = fresh_name ctx ("store_" ^ arr) in
      [ loop;
        Hw.Tile_store
          { name = sname;
            mem = (match acc_names with n :: _ -> Some n | [] -> None);
            array = arr;
            words;
            path = [];
            prov = Prov.push bprov sname } ]

and lower_multifold ctx
    ({ odims; oidxs; oinit; olets; oouts; ocomb; oprov; _ } as mf) ~dest :
    Hw.ctrl list =
  let bprov = node_prov ctx oprov in
  let ctx = under_prov ctx bprov in
  let init_t = infer ctx oinit in
  match dest with
  | Onchip names ->
      (* on-chip accumulator: stage the shared bindings, then the updates *)
      let ctx_i = add_idxs ctx oidxs in
      (* register accumulator buffers under a synthetic symbol so update
         pipes record them as uses via defines only *)
      let ctx_i, let_stages =
        List.fold_left
          (fun (c, acc) (s, rhs) ->
            if is_pattern rhs || (match rhs with Copy _ -> true | _ -> false)
            then begin
              let t = infer c rhs in
              match rhs with
              | Copy cp ->
                  let mem_name, load = lower_copy c s cp in
                  (add_buf (add_ty c s t) s [ mem_name ], load :: acc)
              | _ ->
                  let bnames =
                    match alloc_value c (Sym.name s) t (init_hint_of rhs) with
                    | Some ns -> ns
                    | None ->
                        [ alloc_mem c ~name:(Sym.name s) ~kind:Hw.Buffer
                            ~width:32 ~depth:1024 ~banks:c.opts.par ]
                  in
                  let stage = lower_value c rhs ~dest:(Onchip bnames) in
                  (add_buf (add_ty c s t) s bnames, List.rev stage @ acc)
            end
            else
              let t = infer c rhs in
              (add_ty c s t, acc))
          (ctx_i, []) olets
      in
      let let_stages = List.rev let_stages in
      let residual_olets =
        List.filter
          (fun (s, rhs) ->
            (not (is_pattern rhs))
            && (match rhs with Copy _ -> false | _ -> true)
            && not (List.exists (fun (k, _) -> Sym.equal k s) ctx_i.bufs))
          olets
      in
      let upd_stage =
        lower_leaf_value ctx_i
          (MultiFold { mf with olets = residual_olets; odims; oidxs })
          ~dest:(Onchip names)
      in
      let name = fresh_name ctx "mf_loop" in
      [ Hw.Loop
          { name;
            trips = List.map (trip_of_dom ctx) odims;
            meta = ctx.opts.meta;
            stages = let_stages @ upd_stage;
            prov = Prov.push bprov name } ]
  | Dram_arr arr -> (
      (* DRAM-resident accumulator: per-iteration region stores (plus
         load+merge when a combine makes it a read-modify-write) *)
      match oouts with
      | [ out ] ->
          let ctx_i = add_idxs ctx oidxs in
          let ctx_i, let_stages =
            List.fold_left
              (fun (c, acc) (s, rhs) ->
                match rhs with
                | Copy cp ->
                    let t = infer c rhs in
                    let mem_name, load = lower_copy c s cp in
                    (add_buf (add_ty c s t) s [ mem_name ], load :: acc)
                | _ ->
                    let t = infer c rhs in
                    (add_ty c s t, acc))
              (ctx_i, []) olets
          in
          let let_stages = List.rev let_stages in
          let elt =
            match init_t with Ty.Array (elt, _) -> elt | t -> t
          in
          let staging =
            alloc_mem ctx_i ~name:(fresh_name ctx "region")
              ~kind:Hw.Buffer ~width:(width_of_ty elt)
              ~depth:(region_depth ctx_i out.oregion) ~banks:ctx.opts.par
          in
          let words = region_words ctx_i out.oregion in
          let compute =
            if is_leaf out.oupd then
              [ lower_leaf ctx_i ~defines:[ staging ] "pipe" out.oupd ]
            else lower_value ctx_i out.oupd ~dest:(Onchip [ staging ])
          in
          let rmw =
            match ocomb with
            | None -> []
            | Some _ ->
                let lname = fresh_name ctx ("load_" ^ arr) in
                [ Hw.Tile_load
                    { name = lname;
                      mem = staging;
                      array = arr;
                      words;
                      path = [];
                      reuse = 1;
                      prov = Prov.push bprov lname } ]
          in
          let store =
            let sname = fresh_name ctx ("store_" ^ arr) in
            Hw.Tile_store
              { name = sname;
                mem = Some staging;
                array = arr;
                words;
                path = [];
                prov = Prov.push bprov sname }
          in
          (* Forwarding path (Section 5): loop dimensions the accumulator
             region does not index are pushed into an inner loop, so the
             staging buffer carries the region across those iterations and
             the read-modify-write traffic happens only when the region
             actually changes. *)
          let dim_idx = List.combine odims oidxs in
          let deps =
            List.fold_left
              (fun acc (off, len, _) ->
                Sym.Set.union acc
                  (Sym.Set.union (Ir.free_vars off) (Ir.free_vars len)))
              Sym.Set.empty out.oregion
          in
          let rec split_suffix rev_pairs inner =
            match rev_pairs with
            | (d, ix) :: rest when not (Sym.Set.mem ix deps) ->
                split_suffix rest ((d, ix) :: inner)
            | _ -> (List.rev rev_pairs, inner)
          in
          let outer, inner = split_suffix (List.rev dim_idx) [] in
          (* Profitability: hoisting pays when the accumulator round-trip
             is at least comparable to the per-iteration input copies it
             would otherwise share the loop with; when copies dominate,
             the nested controller only costs cross-stage overlap. *)
          let copy_words_bound =
            List.fold_left
              (fun acc (s, rhs) ->
                match rhs with
                | Copy _ ->
                    let names =
                      match
                        List.find_opt
                          (fun (k, _) -> Sym.equal k s)
                          ctx_i.bufs
                      with
                      | Some (_, ns) -> ns
                      | None -> []
                    in
                    List.fold_left
                      (fun a n ->
                        match
                          List.find_opt
                            (fun m -> m.Hw.mem_name = n)
                            !(ctx.mems)
                        with
                        | Some m -> a + m.Hw.depth
                        | None -> a)
                      acc names
                | _ -> acc)
              0 olets
          in
          let region_static = region_depth ctx_i out.oregion in
          if
            rmw <> [] && inner <> [] && outer <> []
            && 2 * region_static >= copy_words_bound
          then begin
            let inner_loop =
              let name = fresh_name ctx "mf_inner" in
              Hw.Loop
                { name;
                  trips = List.map (fun (d, _) -> trip_of_dom ctx d) inner;
                  meta = ctx.opts.meta;
                  stages = let_stages @ compute;
                  prov = Prov.push bprov name }
            in
            let name = fresh_name ctx "mf_loop" in
            [ Hw.Loop
                { name;
                  trips = List.map (fun (d, _) -> trip_of_dom ctx d) outer;
                  meta = ctx.opts.meta;
                  stages = rmw @ [ inner_loop ] @ [ store ];
                  prov = Prov.push bprov name } ]
          end
          else
            let name = fresh_name ctx "mf_loop" in
            [ Hw.Loop
                { name;
                  trips = List.map (trip_of_dom ctx) odims;
                  meta = ctx.opts.meta;
                  stages = let_stages @ rmw @ compute @ [ store ];
                  prov = Prov.push bprov name } ]
      | _ ->
          (* multi-output DRAM accumulator: not produced by the pipeline *)
          [ lower_leaf ctx ~defines:[] "pipe" (MultiFold mf) ])

and lower_flatmap ctx ({ fmdim; fmidx; fmbody; fmprov; _ } as fm) ~dest :
    Hw.ctrl list =
  let bprov = node_prov ctx fmprov in
  let ctx = under_prov ctx bprov in
  let fifo =
    match dest with
    | Onchip (n :: _) -> n
    | _ ->
        alloc_mem ctx ~name:(fresh_name ctx "fifo") ~kind:Hw.Fifo ~width:32
          ~depth:4096 ~banks:1
  in
  let ctx' = add_idxs ctx [ fmidx ] in
  if is_leaf (FlatMap fm) then [ lower_leaf ctx ~defines:[ fifo ] "filter" (FlatMap fm) ]
  else
    let stages = lower_flatmap_body ctx' fmbody ~fifo in
    let name = fresh_name ctx "fm_loop" in
    [ Hw.Loop
        { name;
          trips = [ trip_of_dom ctx fmdim ];
          meta = ctx.opts.meta;
          stages;
          prov = Prov.push bprov name } ]

and lower_groupbyfold ctx g ~dest : Hw.ctrl list =
  let bprov = node_prov ctx g.gprov in
  let ctx = under_prov ctx bprov in
  let cam =
    match dest with
    | Onchip (n :: _) -> n
    | _ ->
        alloc_mem ctx ~name:(fresh_name ctx "cam") ~kind:Hw.Cam ~width:64
          ~depth:1024 ~banks:1
  in
  match g.gdims with
  | (Dtiles _ as od) :: rest when rest <> [] ->
      let ctx' = add_idxs ctx g.gidxs in
      let ctx', loads =
        List.fold_left
          (fun (c, acc) (s, rhs) ->
            match rhs with
            | Copy cp ->
                let t = infer c rhs in
                let mem_name, load = lower_copy c s cp in
                (add_buf (add_ty c s t) s [ mem_name ], load :: acc)
            | _ -> (c, acc))
          (ctx', []) g.glets
      in
      let residual =
        List.filter
          (fun (s, _) -> not (List.exists (fun (k, _) -> Sym.equal k s) ctx'.bufs))
          g.glets
      in
      let inner =
        GroupByFold { g with gdims = rest; gidxs = List.tl g.gidxs; glets = residual }
      in
      let stages =
        List.rev loads @ [ lower_leaf ctx' ~defines:[ cam ] "cam" inner ]
      in
      let name = fresh_name ctx "gbf_loop" in
      [ Hw.Loop
          { name;
            trips = [ trip_of_dom ctx od ];
            meta = ctx.opts.meta;
            stages;
            prov = Prov.push bprov name }
      ]
  | _ -> [ lower_leaf ctx ~defines:[ cam ] "cam" (GroupByFold g) ]

(* ------------------------------ top ------------------------------- *)

let lower_program opts (p : program) =
  (* defensive: untiled (baseline) programs reach here without going
     through Tiling.run, so stamp source-pattern ids now (idempotent) *)
  let p = Prov_stamp.program p in
  let result_ty = Validate.check_program p in
  let tenv = Validate.initial_env p in
  let rec bound e =
    match e with
    | Ci c -> Some c
    | Var s -> Ir.max_sizes_bound p s
    | Prim (Mul, [ a; b ]) -> (
        match (bound a, bound b) with
        | Some x, Some y -> Some (x * y)
        | _ -> None)
    | Prim (Min, [ a; b ]) -> (
        (* a tile-tail extent: bounded by either operand *)
        match (bound a, bound b) with
        | Some x, Some y -> Some (Int.min x y)
        | Some x, None | None, Some x -> Some x
        | None, None -> None)
    | Prim (Add, [ a; Ci c ]) -> Option.map (fun x -> x + c) (bound a)
    | _ -> None
  in
  let ctx =
    { opts;
      tenv;
      bound;
      ishapes = List.map (fun i -> (i.iname, i.ishape)) p.inputs;
      bufs = [];
      dram = List.map (fun i -> (i.iname, Sym.base i.iname)) p.inputs;
      mems = ref [];
      caches = Hashtbl.create 8;
      dyn_lens = [];
      counter = ref 0;
      prov = Prov.root (p.pname ^ "/top") }
  in
  (* the program result: on-chip if it fits (then stored once at the end),
     DRAM-resident otherwise (stores happen inside the loops) *)
  let result_words =
    match p.body with
    | Let _ -> None  (* decided when the final expression is reached *)
    | _ -> None
  in
  ignore result_words;
  let rec final_exp = function Let (_, _, rest) -> final_exp rest | e -> e in
  let fexp = final_exp p.body in
  let fits =
    match fexp with
    | Map m ->
        (match
           shape_words ctx (List.map Ir.dom_size m.mdims)
         with
        | Some w -> w * (width_of_ty result_ty / 32) <= opts.budget_words
        | None -> false)
    | Fold { finit; _ } -> (
        match init_shapes finit with
        | [ Some shape ] -> (
            match shape_words ctx shape with
            | Some w -> w <= opts.budget_words
            | None -> false)
        | _ -> true)
    | MultiFold { oinit; _ } -> (
        match init_shapes oinit with
        | shapes when List.for_all Option.is_some shapes -> (
            match
              List.fold_left
                (fun acc sh ->
                  match (acc, shape_words ctx (Option.get sh)) with
                  | Some a, Some w -> Some (a + w)
                  | _ -> None)
                (Some 0) shapes
            with
            | Some w -> w <= opts.budget_words
            | None -> false)
        | _ -> false)
    | _ -> true
  in
  let stages =
    if fits then begin
      let names =
        match
          alloc_value ctx "result" result_ty (init_hint_of fexp)
        with
        | Some names -> names
        | None ->
            [ alloc_mem ctx ~name:"result" ~kind:Hw.Buffer ~width:32
                ~depth:1024 ~banks:opts.par ]
      in
      let body_stages = lower_stages ctx p.body ~dest:(Onchip names) in
      let words =
        match fexp with
        | Map m -> Hw.trip_product (List.map (trip_of_dom ctx) m.mdims)
        | Fold { finit; _ } -> (
            match init_shapes finit with
            | [ Some shape ] ->
                Hw.trip_product (List.map (trip_of_size ctx) shape)
            | _ -> Hw.Tconst 1.0)
        | MultiFold { oouts = out :: _; _ } ->
            Hw.trip_product (List.map (trip_of_size ctx) out.orange)
        | _ -> Hw.Tconst 1.0
      in
      let sname = fresh_name ctx "store_result" in
      body_stages
      @ [ Hw.Tile_store
            { name = sname;
              mem = (match names with n :: _ -> Some n | [] -> None);
              array = "result";
              words;
              path = [];
              prov = Prov.push (node_prov ctx (exp_prov fexp)) sname } ]
    end
    else lower_stages ctx p.body ~dest:(Dram_arr "result")
  in
  let top =
    Hw.Seq { name = p.pname ^ "_top"; children = stages; prov = ctx.prov }
  in
  let design =
    { Hw.design_name = p.pname;
      mems = List.rev !(ctx.mems);
      top;
      par_factor = opts.par }
  in
  Metapipe.finalize design

let program opts (p : program) =
  Metrics.time "pass.lower" (fun () ->
      if not (Trace.enabled ()) then lower_program opts p
      else begin
        let args = ref [] in
        Trace.with_span ~cat:"pass" ~args:(fun () -> !args) "lower" (fun () ->
            let d = lower_program opts p in
            let ctrls = Hw.fold_ctrls (fun n _ -> n + 1) 0 d.Hw.top in
            args :=
              [ ("program", Trace.Str p.pname);
                ("controllers", Trace.Int ctrls);
                ("mems", Trace.Int (List.length d.Hw.mems));
                ("par", Trace.Int opts.par);
                ("meta", Trace.Str (if opts.meta then "true" else "false")) ];
            d)
      end)
