type t = {
  nodes : int;
  maps : int;
  folds : int;
  multifolds : int;
  flatmaps : int;
  groupbyfolds : int;
  copies : int;
  strided_loops : int;
  lets : int;
  max_nest : int;
}

let doms_of = function
  | Ir.Map m -> m.Ir.mdims
  | Ir.Fold f -> f.Ir.fdims
  | Ir.MultiFold mf -> mf.Ir.odims
  | Ir.FlatMap fm -> [ fm.Ir.fmdim ]
  | Ir.GroupByFold g -> g.Ir.gdims
  | _ -> []

let rec nest_depth e =
  let is_pattern = function
    | Ir.Map _ | Ir.Fold _ | Ir.MultiFold _ | Ir.FlatMap _ | Ir.GroupByFold _
      ->
        true
    | _ -> false
  in
  let deepest = ref 0 in
  ignore
    (Rewrite.map_children
       (fun c ->
         let d = nest_depth c in
         if d > !deepest then deepest := d;
         c)
       e);
  if is_pattern e then 1 + !deepest else !deepest

let of_exp e =
  let maps = ref 0 and folds = ref 0 and multifolds = ref 0 in
  let flatmaps = ref 0 and groupbyfolds = ref 0 and copies = ref 0 in
  let strided = ref 0 and lets = ref 0 and nodes = ref 0 in
  Rewrite.iter_exp
    (fun e1 ->
      incr nodes;
      (match e1 with
      | Ir.Map _ -> incr maps
      | Ir.Fold _ -> incr folds
      | Ir.MultiFold _ -> incr multifolds
      | Ir.FlatMap _ -> incr flatmaps
      | Ir.GroupByFold _ -> incr groupbyfolds
      | Ir.Copy _ -> incr copies
      | Ir.Let _ -> incr lets
      | _ -> ());
      List.iter
        (fun d -> if Ir.is_strided d then incr strided)
        (doms_of e1))
    e;
  { nodes = !nodes;
    maps = !maps;
    folds = !folds;
    multifolds = !multifolds;
    flatmaps = !flatmaps;
    groupbyfolds = !groupbyfolds;
    copies = !copies;
    strided_loops = !strided;
    lets = !lets;
    max_nest = nest_depth e }

let of_program (p : Ir.program) = of_exp p.Ir.body

let header =
  Printf.sprintf "%-18s %6s %5s %5s %6s %5s %5s %6s %7s %5s %5s" "stage"
    "nodes" "map" "fold" "mfold" "fmap" "gbf" "copy" "strided" "let" "nest"

let row name s =
  Printf.sprintf "%-18s %6d %5d %5d %6d %5d %5d %6d %7d %5d %5d" name s.nodes
    s.maps s.folds s.multifolds s.flatmaps s.groupbyfolds s.copies
    s.strided_loops s.lets s.max_nest

let pp fmt s = Format.pp_print_string fmt (row "" s)
