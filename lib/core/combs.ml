open Ir

let rename { ca; cb; cbody } =
  let ca' = Sym.fresh (Sym.base ca) and cb' = Sym.fresh (Sym.base cb) in
  let cbody' =
    Ir.rename_binders
      (Ir.subst
         (Sym.Map.add ca (Var ca') (Sym.Map.singleton cb (Var cb')))
         cbody)
  in
  { ca = ca'; cb = cb'; cbody = cbody' }

let count p e =
  let n = ref 0 in
  Rewrite.iter_exp (fun e1 -> if p e1 then incr n) e;
  !n

let elementwise { ca; cb; cbody } =
  match cbody with
  | Map { mdims = _; midxs; mbody; mprov; _ } ->
      let exact_idxs idxs =
        List.length idxs = List.length midxs
        && List.for_all2
             (fun e s -> match e with Var s' -> Sym.equal s s' | _ -> false)
             idxs midxs
      in
      let param_ok s =
        let total = count (fun e -> e = Var s) mbody in
        let proper =
          count
            (function
              | Read (Var s', idxs) -> Sym.equal s s' && exact_idxs idxs
              | _ -> false)
            mbody
        in
        total = proper
      in
      if param_ok ca && param_ok cb then
        Some
          (fun extents x y ->
            let nidxs = List.map (fun s -> Sym.fresh (Sym.base s)) midxs in
            let env =
              List.fold_left2
                (fun m s s' -> Sym.Map.add s (Var s') m)
                (Sym.Map.add ca x (Sym.Map.singleton cb y))
                midxs nidxs
            in
            Map
              { mdims = List.map (fun e -> Dfull e) extents;
                midxs = nidxs;
                mbody = Ir.rename_binders (Ir.subst env mbody);
                (* an instantiated combiner is the combiner map applied:
                   it keeps the source combiner's provenance *)
                mprov })
      else None
  | _ -> None
