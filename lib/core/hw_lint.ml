(* Semantic lints over a lowered design.  Hw_check answers "is this a
   design at all"; this module answers "does this design honor the
   guarantees the paper's hardware templates rely on".  Each analysis
   re-derives its invariant from the controller tree alone, so a buggy
   lowering (or a hand-edited design) disagreeing with what Lower and
   Metapipe.finalize should have produced is flagged. *)

let dedup l = List.sort_uniq String.compare l

(* ------------------------- trip algebra ------------------------- *)

(* fully static trip value; None when it depends on a size parameter or
   a data-dependent rate *)
let rec trip_const = function
  | Hw.Tconst c -> Some c
  | Hw.Tsize _ -> None
  | Hw.Tceil_div (t, b) ->
      Option.map (fun c -> ceil (c /. float_of_int b)) (trip_const t)
  | Hw.Tavg_tail { total; tile } ->
      Option.map
        (fun tot ->
          let tiles = ceil (tot /. float_of_int tile) in
          if tiles <= 0.0 then 0.0 else tot /. tiles)
        (trip_const total)
  | Hw.Tmul (a, b) -> (
      match (trip_const a, trip_const b) with
      | Some x, Some y -> Some (x *. y)
      | _ -> None)
  | Hw.Tscale _ -> None

(* a trip as a product: constant factor, sorted symbolic atoms, and
   whether a data-dependent Tscale is involved.  Two trips with equal
   atom lists differ exactly when their constants differ, which is how
   rates are compared "symbolically where possible". *)
let normalize t =
  let const = ref 1.0 and atoms = ref [] and dynamic = ref false in
  let rec go t =
    match trip_const t with
    | Some c -> const := !const *. c
    | None -> (
        match t with
        | Hw.Tmul (a, b) ->
            go a;
            go b
        | Hw.Tscale (f, t') ->
            dynamic := true;
            const := !const *. f;
            go t'
        | atom -> atoms := Format.asprintf "%a" Hw.pp_trip atom :: !atoms)
  in
  go t;
  (!const, List.sort String.compare !atoms, !dynamic)

(* Some (a, b) when the two rates provably differ (a vs b element
   counts); None when equal or not statically comparable *)
let rates_disagree ta tb =
  let ca, aa, da = normalize ta and cb, ab, db = normalize tb in
  if da || db then None (* data-dependent (FlatMap selectivity): matched
                           at runtime by construction *)
  else if aa <> ab then None (* incomparable symbolic shapes *)
  else if Float.abs (ca -. cb) > 1e-6 *. Float.max 1.0 (Float.max ca cb) then
    Some (ca, cb)
  else None

(* ----------------------- design traversals ---------------------- *)

(* memories written / read anywhere in a controller subtree *)
let subtree_writes c =
  dedup
    (Hw.fold_ctrls
       (fun acc c ->
         match c with
         | Hw.Pipe { defines; _ } -> defines @ acc
         | Hw.Tile_load { mem; _ } -> mem :: acc
         | _ -> acc)
       [] c)

let subtree_reads c =
  dedup
    (Hw.fold_ctrls
       (fun acc c ->
         match c with
         | Hw.Pipe { uses; _ } -> uses @ acc
         | Hw.Tile_store { mem = Some m; _ } -> m :: acc
         | _ -> acc)
       [] c)

let rec effectful c =
  match c with
  | Hw.Pipe { defines; dram; _ } -> defines <> [] || dram <> []
  | Hw.Tile_load _ | Hw.Tile_store _ -> true
  | _ -> List.exists effectful (Hw.children c)

let has_dram_traffic c =
  Hw.fold_ctrls
    (fun acc c ->
      acc
      ||
      match c with
      | Hw.Tile_load _ | Hw.Tile_store _ -> true
      | Hw.Pipe { dram; _ } -> dram <> []
      | _ -> false)
    false c

(* every memory reference, with enough schedule context to reason about
   rates: the referencing node, its controller path, its own
   per-activation element count, and the trips of each enclosing loop *)
type mem_ref = {
  r_mem : string;
  r_write : bool;
  r_path : string list;  (* enclosing controllers, outermost first *)
  r_node : string;
  r_own : Hw.trip;  (* elements per node activation *)
  r_loops : (string * Hw.trip list) list;  (* enclosing Loops, outermost first *)
}

let collect_refs (d : Hw.design) =
  let refs = ref [] in
  let add r = refs := r :: !refs in
  let rec go path loops c =
    let name = Hw.ctrl_name c in
    (match c with
    | Hw.Pipe { trips; uses; defines; _ } ->
        let own = Hw.trip_product trips in
        List.iter
          (fun n ->
            add
              { r_mem = n; r_write = true; r_path = path; r_node = name;
                r_own = own; r_loops = loops })
          (dedup defines);
        List.iter
          (fun n ->
            add
              { r_mem = n; r_write = false; r_path = path; r_node = name;
                r_own = own; r_loops = loops })
          (dedup uses)
    | Hw.Tile_load { mem; words; _ } ->
        add
          { r_mem = mem; r_write = true; r_path = path; r_node = name;
            r_own = words; r_loops = loops }
    | Hw.Tile_store { mem = Some m; words; _ } ->
        add
          { r_mem = m; r_write = false; r_path = path; r_node = name;
            r_own = words; r_loops = loops }
    | _ -> ());
    let loops' =
      match c with
      | Hw.Loop { trips; _ } -> loops @ [ (name, trips) ]
      | _ -> loops
    in
    List.iter (go (path @ [ name ]) loops') (Hw.children c)
  in
  go [] [] d.Hw.top;
  List.rev !refs

(* total elements moved over the whole design run *)
let total_volume r =
  Hw.trip_product (List.concat_map snd r.r_loops @ [ r.r_own ])

(* elements moved per activation of the subtree rooted strictly below
   the common ancestor prefix [cp] *)
let volume_below cp r =
  let below =
    List.filter (fun (n, _) -> not (List.mem n cp)) r.r_loops
  in
  Hw.trip_product (List.concat_map snd below @ [ r.r_own ])

let rec common_prefix a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> x :: common_prefix a' b'
  | _ -> []

(* does [p] run to completion before [c] starts, per activation of their
   least common ancestor?  True under a Seq with p's branch first, and
   within a Loop (sequential or metapipeline wavefront) when they sit in
   different stages in order. *)
let sequenced_before ctrl_by_name cp p c =
  match cp with
  | [] -> None
  | _ -> (
      let lca_name = List.nth cp (List.length cp - 1) in
      match Hashtbl.find_opt ctrl_by_name lca_name with
      | None -> None
      | Some lca ->
          let branch r =
            (* the LCA child this reference sits under (or is) *)
            match List.nth_opt (r.r_path @ [ r.r_node ]) (List.length cp) with
            | Some n -> n
            | None -> r.r_node
          in
          let index_of n =
            let rec go i = function
              | [] -> None
              | ch :: rest ->
                  if Hw.ctrl_name ch = n then Some i else go (i + 1) rest
            in
            go 0 (Hw.children lca)
          in
          (match (lca, index_of (branch p), index_of (branch c)) with
          | (Hw.Seq _ | Hw.Loop _), Some ip, Some ic when ip < ic ->
              Some (lca_name, match lca with Hw.Loop { meta; _ } -> meta | _ -> false)
          | _ -> None))

(* ---------------------------- analyses --------------------------- *)

let check (d : Hw.design) =
  let diags = ref [] in
  let emit ?(path = []) ~code ~severity where fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.code; severity; path; where; message } :: !diags)
      fmt
  in
  let mem n = List.find_opt (fun m -> m.Hw.mem_name = n) d.Hw.mems in
  let kind_name k = Hw_pp.mem_kind_name k in
  let ctrl_by_name = Hashtbl.create 64 in
  Hw.iter_ctrls
    (fun c ->
      if not (Hashtbl.mem ctrl_by_name (Hw.ctrl_name c)) then
        Hashtbl.add ctrl_by_name (Hw.ctrl_name c) c)
    d.Hw.top;

  (* --- 1. metapipeline race detection (HW101 / HW102 / HW103) ---
     Re-derive the stage-coupling set Metapipe.finalize promotes: a
     memory written by one stage and read by a different stage of a
     metapipelined loop.  With plain single buffers the writer's next
     outer iteration overwrites data the reader is still consuming
     (Section 5's reason for double buffers). *)
  let coupled = Hashtbl.create 16 in
  let race_seen = Hashtbl.create 16 in
  Hw.iter_ctrls_path
    (fun path c ->
      match c with
      | Hw.Loop { name; meta = true; stages; _ } ->
          let infos =
            List.map
              (fun s -> (Hw.ctrl_name s, subtree_writes s, subtree_reads s))
              stages
          in
          List.iteri
            (fun i (wname, writes, _) ->
              List.iter
                (fun mn ->
                  List.iteri
                    (fun j (rname, _, reads) ->
                      if i <> j && List.mem mn reads then begin
                        Hashtbl.replace coupled mn ();
                        if not (Hashtbl.mem race_seen (mn, name)) then begin
                          Hashtbl.add race_seen (mn, name) ();
                          match mem mn with
                          | Some m -> (
                              match m.Hw.kind with
                              | Hw.Double_buffer | Hw.Fifo | Hw.Cam ->
                                  () (* decoupled by design *)
                              | Hw.Buffer ->
                                  emit ~path:(path @ [ name ]) ~code:"HW101"
                                    ~severity:Diagnostic.Error mn
                                    "buffer is written by stage %s and read \
                                     by stage %s of metapipeline %s but is \
                                     not a double buffer: overlapped outer \
                                     iterations race (write-after-read); \
                                     Metapipe.finalize should have promoted \
                                     it"
                                    wname rname name
                              | Hw.Reg | Hw.Cache ->
                                  emit ~path:(path @ [ name ]) ~code:"HW103"
                                    ~severity:Diagnostic.Warning mn
                                    "%s is written by stage %s and read by \
                                     stage %s of metapipeline %s without \
                                     double buffering: the value is \
                                     overwritten one outer iteration early \
                                     when stages overlap"
                                    (kind_name m.Hw.kind) wname rname name)
                          | None -> ()
                        end
                      end)
                    infos)
                writes)
            infos
      | _ -> ())
    d.Hw.top;
  (* over-promotion: double-buffer area spent without a stage to couple *)
  List.iter
    (fun m ->
      if m.Hw.kind = Hw.Double_buffer && not (Hashtbl.mem coupled m.Hw.mem_name)
      then
        emit ~code:"HW102" ~severity:Diagnostic.Warning m.Hw.mem_name
          "double buffer never couples two distinct metapipeline stages: \
           promotion doubles its area for no overlap benefit")
    d.Hw.mems;

  (* --- 2. banking and port conflicts (HW110 / HW111) --- *)
  Hw.iter_ctrls_path
    (fun path c ->
      match c with
      | Hw.Pipe { name; par; uses; defines; _ } when par > 1 ->
          List.iter
            (fun n ->
              match mem n with
              | Some m
                when (m.Hw.kind = Hw.Buffer || m.Hw.kind = Hw.Double_buffer)
                     && m.Hw.depth > 1 && m.Hw.banks < par ->
                  emit ~path ~code:"HW110" ~severity:Diagnostic.Error name
                    "par=%d lanes access %s which has only %d bank%s: \
                     accesses serialize on the memory ports, defeating the \
                     parallelization"
                    par n m.Hw.banks
                    (if m.Hw.banks = 1 then "" else "s")
              | _ -> ())
            (dedup (uses @ defines))
      | _ -> ())
    d.Hw.top;
  (* recount reader/writer ports exactly as Metapipe.finalize does and
     flag disagreement with the declared counts *)
  let readers = Hashtbl.create 16 and writers = Hashtbl.create 16 in
  let bump tbl n =
    Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n))
  in
  Hw.iter_ctrls
    (fun c ->
      match c with
      | Hw.Pipe { uses; defines; _ } ->
          List.iter (bump readers) uses;
          List.iter (bump writers) defines
      | Hw.Tile_load { mem; _ } -> bump writers mem
      | Hw.Tile_store { mem = Some m; _ } -> bump readers m
      | _ -> ())
    d.Hw.top;
  List.iter
    (fun m ->
      let n = m.Hw.mem_name in
      let r = Option.value ~default:0 (Hashtbl.find_opt readers n) in
      let w = Option.value ~default:0 (Hashtbl.find_opt writers n) in
      if m.Hw.readers <> r || m.Hw.writers <> w then
        emit ~code:"HW111" ~severity:Diagnostic.Error n
          "declared ports (R=%d W=%d) disagree with the controller tree \
           (R=%d W=%d): the area model and banking decisions are computed \
           from stale counts"
          m.Hw.readers m.Hw.writers r w)
    d.Hw.mems;

  (* --- 3. FIFO rate and deadlock analysis (HW120 / HW121 / HW122) --- *)
  let refs = collect_refs d in
  List.iter
    (fun m ->
      if m.Hw.kind = Hw.Fifo then begin
        let n = m.Hw.mem_name in
        let prods =
          List.filter (fun r -> r.r_mem = n && r.r_write) refs
        in
        let cons =
          List.filter (fun r -> r.r_mem = n && not r.r_write) refs
        in
        (match (prods, cons) with
        | [ p ], [ c ] -> (
            (* whole-run volume balance, symbolically where possible *)
            (match rates_disagree (total_volume p) (total_volume c) with
            | Some (vp, vc) ->
                emit ~path:(common_prefix p.r_path c.r_path) ~code:"HW120"
                  ~severity:Diagnostic.Error n
                  "producer %s pushes %.0f elements over the run but \
                   consumer %s pops %.0f: the FIFO %s"
                  p.r_node vp c.r_node vc
                  (if vp > vc then "fills and stalls the producer"
                   else "underflows and stalls the consumer")
            | None -> ());
            (* capacity against the burst pushed before draining starts *)
            let cp = common_prefix p.r_path c.r_path in
            match sequenced_before ctrl_by_name cp p c with
            | Some (lca_name, lca_meta) -> (
                match trip_const (volume_below cp p) with
                | Some burst when burst > float_of_int m.Hw.depth ->
                    emit ~path:cp ~code:"HW121" ~severity:Diagnostic.Error n
                      "producer %s pushes %.0f elements per activation of %s \
                       before consumer %s starts draining, but the FIFO \
                       holds %d: the producer blocks forever (deadlock)"
                      p.r_node burst lca_name c.r_node m.Hw.depth
                | Some burst
                  when lca_meta && 2.0 *. burst > float_of_int m.Hw.depth ->
                    emit ~path:cp ~code:"HW122" ~severity:Diagnostic.Warning n
                      "FIFO depth %d leaves no slack to fill one %.0f-element \
                       burst while consumer %s drains the previous one: the \
                       metapipeline %s serializes on it"
                      m.Hw.depth burst c.r_node lca_name
                | _ -> ())
            | None -> ())
        | _ -> () (* multi-ended FIFOs: rates not statically attributable *))
      end)
    d.Hw.mems;

  (* --- 4. capacity analysis (HW130) --- *)
  Hw.iter_ctrls_path
    (fun path c ->
      match c with
      | Hw.Tile_load { name; mem = mn; words; _ } -> (
          match (mem mn, trip_const words) with
          | Some m, Some w when w > float_of_int m.Hw.depth ->
              emit ~path ~code:"HW130" ~severity:Diagnostic.Error name
                "loads a %.0f-word tile into %s which holds %d words: the \
                 tile footprint under the enclosing iteration space exceeds \
                 the declared depth"
                w mn m.Hw.depth
          | _ -> ())
      | Hw.Tile_store { name; mem = Some mn; words; _ } -> (
          match (mem mn, trip_const words) with
          | Some m, Some w when w > float_of_int m.Hw.depth ->
              emit ~path ~code:"HW130" ~severity:Diagnostic.Error name
                "stores a %.0f-word tile out of %s which holds only %d \
                 words: the staged region cannot have been buffered"
                w mn m.Hw.depth
          | _ -> ())
      | _ -> ())
    d.Hw.top;

  (* --- 5. performance lints (HW140 / HW141 / HW142) --- *)
  (* dead controllers: report the topmost effect-free subtree only *)
  let rec scan_dead path c =
    if not (effectful c) then
      emit ~path ~code:"HW140" ~severity:Diagnostic.Info (Hw.ctrl_name c)
        "controller has no observable effect: it writes no memory and moves \
         no DRAM data (dead hardware still costs area)"
    else
      List.iter
        (scan_dead (path @ [ Hw.ctrl_name c ]))
        (Hw.children c)
  in
  scan_dead [] d.Hw.top;
  Hw.iter_ctrls_path
    (fun path c ->
      match c with
      | Hw.Loop { name; meta = false; stages; _ }
        when List.length stages >= 2 ->
          (* overlap-eligible: a forward cross-stage producer/consumer
             chain is exactly what metapipelining overlaps *)
          let infos =
            List.map (fun s -> (subtree_writes s, subtree_reads s)) stages
          in
          let eligible =
            List.exists
              (fun i ->
                let wi, _ = List.nth infos i in
                List.exists
                  (fun j ->
                    let _, rj = List.nth infos j in
                    List.exists (fun m -> List.mem m rj) wi)
                  (List.init (List.length infos - i - 1) (fun k -> i + 1 + k)))
              (List.init (List.length infos) (fun i -> i))
          in
          if eligible then
            emit ~path ~code:"HW141" ~severity:Diagnostic.Info name
              "sequential loop's stages form a producer/consumer chain: \
               metapipelining (meta=true) would overlap outer iterations \
               (Section 5)"
      | Hw.Loop { name; meta = true; stages; _ } -> (
          (* adjacent DRAM stages serialize the steady state *)
          let dram_flags = List.map has_dram_traffic stages in
          let rec adj i = function
            | a :: (b :: _ as rest) ->
                if a && b then Some i else adj (i + 1) rest
            | _ -> None
          in
          match adj 0 dram_flags with
          | Some i ->
              let nth_name k = Hw.ctrl_name (List.nth stages k) in
              emit ~path ~code:"HW142" ~severity:Diagnostic.Info name
                "stages %s and %s both occupy the DRAM channel: the \
                 metapipeline steady state is floored by their serialized \
                 traffic rather than the slowest stage (see `simulate \
                 --bottlenecks`)"
                (nth_name i) (nth_name (i + 1))
          | None -> ())
      | _ -> ())
    d.Hw.top;
  List.sort Diagnostic.compare !diags

let check_all d = List.sort Diagnostic.compare (Hw_check.check d @ check d)
