open Ir

(* Available bindings: expressions (already CSE'd) with the symbol that
   holds them.  Scoped lexically: entries are only valid while their free
   variables stay bound, which holds because we extend the list only while
   descending and index it by position. *)
type avail = (exp * Sym.t) list

let trivial = function
  | Var _ | Ci _ | Cf _ | Cb _ -> true
  | _ -> false

let lookup avail e =
  if trivial e then None
  else
    List.find_opt (fun (e', _) -> Alpha.equal e e') avail |> Option.map snd

let rec go (avail : avail) e =
  match e with
  | Let (s, e1, e2) -> (
      let e1' = go avail e1 in
      match lookup avail e1' with
      | Some s' -> go avail (Ir.subst (Sym.Map.singleton s (Var s')) e2)
      | None -> Let (s, e1', go ((e1', s) :: avail) e2))
  | MultiFold mf ->
      (* rebuild the shared bindings while collecting a substitution for
         dropped duplicates, then apply it to the outputs *)
      let subs = ref Sym.Map.empty in
      let avail', olets' =
        List.fold_left
          (fun (av, acc) (s, e1) ->
            let e1' = go av (Ir.subst !subs e1) in
            match lookup av e1' with
            | Some s' ->
                subs := Sym.Map.add s (Var s') !subs;
                (av, acc)
            | None -> ((e1', s) :: av, (s, e1') :: acc))
          (avail, []) mf.olets
      in
      let olets' = List.rev olets' in
      MultiFold
        { mf with
          oinit = go avail mf.oinit;
          olets = olets';
          oouts =
            List.map
              (fun out ->
                { out with
                  oregion =
                    List.map
                      (fun (o, l, b) ->
                        (go avail' (Ir.subst !subs o), go avail' (Ir.subst !subs l), b))
                      out.oregion;
                  oupd = go avail' (Ir.subst !subs out.oupd) })
              mf.oouts;
          ocomb =
            Option.map (fun c -> { c with cbody = go avail c.cbody }) mf.ocomb }
  | GroupByFold g ->
      let subs = ref Sym.Map.empty in
      let avail', glets' =
        List.fold_left
          (fun (av, acc) (s, e1) ->
            let e1' = go av (Ir.subst !subs e1) in
            match lookup av e1' with
            | Some s' ->
                subs := Sym.Map.add s (Var s') !subs;
                (av, acc)
            | None -> ((e1', s) :: av, (s, e1') :: acc))
          (avail, []) g.glets
      in
      let glets' = List.rev glets' in
      GroupByFold
        { g with
          ginit = go avail g.ginit;
          glets = glets';
          gkey = go avail' (Ir.subst !subs g.gkey);
          gupd = go avail' (Ir.subst !subs g.gupd);
          gcomb = { g.gcomb with cbody = go avail g.gcomb.cbody } }
  | _ -> Rewrite.map_children (go avail) e

let exp e = go [] e
let program (p : program) = { p with body = exp p.body }
