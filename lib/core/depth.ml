let op_latency = function
  | Ir.Add | Ir.Sub | Ir.Neg -> 8
  | Ir.Mul -> 6
  | Ir.Div -> 28
  | Ir.Sqrt -> 16
  | Ir.Exp | Ir.Log -> 20
  | Ir.Min | Ir.Max -> 2
  | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne -> 1
  | Ir.And | Ir.Or | Ir.Not | Ir.Abs | Ir.Mod -> 1
  | Ir.ToFloat | Ir.ToInt -> 2

(* Critical path over the expression viewed as a dataflow DAG.  Binders
   are handled with an environment carrying the depth of the bound
   value. *)
let rec path env (e : Ir.exp) =
  let p x = path env x in
  let max_list l = List.fold_left Int.max 0 l in
  match e with
  | Ir.Var s -> (match Sym.Map.find_opt s env with Some d -> d | None -> 0)
  | Ir.Cf _ | Ir.Ci _ | Ir.Cb _ | Ir.EmptyArr _ -> 0
  | Ir.Tup es | Ir.ArrLit es -> max_list (List.map p es)
  | Ir.Proj (e1, _) -> p e1
  | Ir.Prim (op, args) -> op_latency op + max_list (List.map p args)
  | Ir.Let (s, e1, e2) -> path (Sym.Map.add s (p e1) env) e2
  | Ir.If (c, t, f) -> 1 + max_list [ p c; p t; p f ]
  | Ir.Len (e1, _) -> p e1
  | Ir.Read (a, idxs) -> 1 + max_list (p a :: List.map p idxs)
  | Ir.Slice (a, _) -> p a
  | Ir.Copy { csrc; _ } -> p csrc
  | Ir.Zeros _ -> 0
  | Ir.Map m -> path (bind env m.Ir.midxs) m.Ir.mbody
  | Ir.Fold f ->
      (* fill: the body once, plus a log-depth combine tree *)
      let inner = path (Sym.Map.add f.Ir.facc 0 (bind env f.Ir.fidxs)) f.Ir.fupd in
      inner + tree_term
  | Ir.MultiFold mf ->
      let env_i = bind env mf.Ir.oidxs in
      let env_i =
        List.fold_left
          (fun acc (s, e1) -> Sym.Map.add s (path acc e1) acc)
          env_i mf.Ir.olets
      in
      max_list
        (List.map
           (fun out -> path (Sym.Map.add out.Ir.oacc 0 env_i) out.Ir.oupd)
           mf.Ir.oouts)
      + tree_term
  | Ir.FlatMap fm -> path (bind env [ fm.Ir.fmidx ]) fm.Ir.fmbody
  | Ir.GroupByFold g ->
      let env_i = bind env g.Ir.gidxs in
      let env_i =
        List.fold_left
          (fun acc (s, e1) -> Sym.Map.add s (path acc e1) acc)
          env_i g.Ir.glets
      in
      Int.max (path env_i g.Ir.gkey)
        (path (Sym.Map.add g.Ir.gacc 0 env_i) g.Ir.gupd)
      +
      (* associative lookup/update *)
      2

and tree_term = (* combine tree for a 16-wide leaf level: log2(16) fadds *) 4 * 8

and bind env idxs =
  List.fold_left (fun m s -> Sym.Map.add s 0 m) env idxs

let of_exp e = Int.max 4 (path Sym.Map.empty e)
