(** MaxJ-like hardware generation language emission.

    The paper's compiler emits MaxJ, a Java-based HGL whose programs
    instantiate parameterizable templates (Section 5, Table 4).  The
    Maxeler toolchain is not available here, so this emitter produces
    faithful MaxJ-{e like} text — a Kernel class instantiating the same
    template vocabulary with the same parameters — so generated designs
    are inspectable and diffable. *)

val emit : Hw.design -> string
(** The full kernel text for a design. *)

val pp : Format.formatter -> Hw.design -> unit
