(** The hardware IR: parameterizable templates (Table 4) composed into a
    hierarchical design.

    Memories model on-chip storage (buffers, double buffers, caches,
    FIFOs, CAMs, registers); controllers model execution (sequential,
    parallel, metapipeline, tile load/store units, pipelined compute).
    The design is the compilation target of {!Lower}, the input of the
    cycle simulator ({!Simulate}) and the area model ({!Area_model}), and
    what {!Maxj} prints as hardware-generation-language text. *)

(** {1 Memories} *)

type mem_kind =
  | Buffer  (** on-chip scratchpad for a statically sized array *)
  | Double_buffer  (** buffer coupling two metapipeline stages *)
  | Cache  (** tagged memory for non-affine main-memory accesses *)
  | Fifo  (** ordered dynamic-size stream (FlatMap output) *)
  | Cam  (** fully associative key-value store (GroupByFold) *)
  | Reg  (** scalar register or small register file *)

type mem = {
  mem_name : string;
  kind : mem_kind;
  width_bits : int;  (** element width *)
  depth : int;  (** static element capacity *)
  banks : int;  (** banking factor for parallel access *)
  mutable readers : int;
  mutable writers : int;
  mem_prov : Prov.t;  (** source pattern the buffer serves; metadata only *)
}

(** {1 Iteration counts}

    Controllers carry symbolic trip counts evaluated at simulation time
    against concrete size-parameter values.  A [Dtail] domain's data-
    dependent extent is modeled by its average ([total / ceil(total/tile)]),
    which is exact whenever the tile divides the extent. *)

type trip =
  | Tconst of float
  | Tsize of Sym.t  (** a size parameter *)
  | Tceil_div of trip * int
  | Tavg_tail of { total : trip; tile : int }  (** average tile extent *)
  | Tmul of trip * trip
  | Tscale of float * trip  (** e.g. FIFO consumer rate = selectivity x n *)

val trip_of_dom : Ir.dom -> trip
val trip_eval : (Sym.t * int) list -> trip -> float
val trip_product : trip list -> trip
val pp_trip : Format.formatter -> trip -> unit

(** {1 Direct DRAM traffic}

    A pipe that reads main memory directly (untiled baseline designs, and
    non-affine accesses) records, per enclosing loop from outermost to
    innermost, whether the access address depends on that loop.  The
    simulator charges re-reads for address-independent loops only when the
    data footprint under them exceeds one DRAM burst — the paper's
    baseline exploits exactly single-burst locality (Section 6.1). *)

type dram_access = {
  da_array : string;  (** source array *)
  da_path : (trip * bool) list;
      (** enclosing loops, outermost first; [true] = address depends on it *)
  da_contiguous : bool;
      (** whether the innermost address-varying loop walks unit stride;
          non-contiguous accesses waste most of each DRAM burst *)
  da_affine : bool;
      (** [false] for data-dependent addresses (k-means' minDistIndex,
          GDA's label-indexed mean) *)
  da_row_words : trip;
      (** length of one contiguous run (the innermost dependent extent) *)
  da_kind : [ `Read | `Write | `Cached ];
      (** [`Cached] accesses go through an allocated cache memory *)
}

(** {1 Controllers} *)

type pipe_template =
  | Vector  (** SIMD map over scalars *)
  | Tree  (** pipelined reduction tree *)
  | Fifo_write  (** FlatMap over scalars feeding a FIFO *)
  | Cam_update  (** GroupByFold over scalars updating a CAM *)
  | Scalar_unit  (** straight-line scalar datapath *)

type op_counts = {
  flops : int;  (** floating point operations per innermost iteration *)
  int_ops : int;
  cmp_ops : int;
  mem_reads : int;  (** on-chip buffer reads per iteration *)
  mem_writes : int;
}

type ctrl =
  | Seq of { name : string; children : ctrl list; prov : Prov.t }
      (** sequential controller: children run one after another *)
  | Par of { name : string; children : ctrl list; prov : Prov.t }
      (** task-parallel controller: children run simultaneously *)
  | Loop of {
      name : string;
      trips : trip list;
      meta : bool;
      stages : ctrl list;
      prov : Prov.t;
    }
      (** loop controller over an iteration domain; [meta] selects the
          metapipeline schedule (stages overlap across iterations through
          double buffers) versus plain sequential iteration *)
  | Pipe of {
      name : string;
      trips : trip list;  (** iteration space, including fused inner dims *)
      template : pipe_template;
      par : int;  (** innermost parallelism factor *)
      depth : int;  (** pipeline fill latency in cycles *)
      ii : int;  (** initiation interval *)
      ops : op_counts;
      body : Ir.exp option;
      dram : dram_access list;  (** direct main-memory traffic *)
      uses : string list;  (** on-chip memories read *)
      defines : string list;  (** on-chip memories written *)
      prov : Prov.t;
    }
  | Tile_load of {
      name : string;
      mem : string;  (** destination on-chip buffer *)
      array : string;  (** source DRAM array *)
      words : trip;  (** words moved per invocation *)
      path : (trip * bool) list;  (** enclosing loops (for traffic totals) *)
      reuse : int;  (** overlap reuse factor: words / reuse hit DRAM *)
      prov : Prov.t;
    }
  | Tile_store of {
      name : string;
      mem : string option;  (** source buffer, if the value lives on-chip *)
      array : string;  (** destination DRAM array *)
      words : trip;
      path : (trip * bool) list;
      prov : Prov.t;
    }

type design = {
  design_name : string;
  mems : mem list;
  top : ctrl;
  par_factor : int;  (** the innermost parallelism applied uniformly *)
}

val ctrl_name : ctrl -> string

val ctrl_prov : ctrl -> Prov.t
(** Provenance carried by any controller node (metadata, never semantics). *)

val with_prov : ctrl -> Prov.t -> ctrl
(** Rebuild a controller with new provenance, leaving everything else. *)

val iter_ctrls : (ctrl -> unit) -> ctrl -> unit
(** Pre-order visit of the controller tree. *)

val fold_ctrls : ('a -> ctrl -> 'a) -> 'a -> ctrl -> 'a

val iter_ctrls_path : (string list -> ctrl -> unit) -> ctrl -> unit
(** Pre-order visit carrying the names of the enclosing controllers,
    outermost first (the root is visited with [[]]). *)

val children : ctrl -> ctrl list
val find_mem : design -> string -> mem
(** @raise Not_found *)
