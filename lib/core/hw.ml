type mem_kind = Buffer | Double_buffer | Cache | Fifo | Cam | Reg

type mem = {
  mem_name : string;
  kind : mem_kind;
  width_bits : int;
  depth : int;
  banks : int;
  mutable readers : int;
  mutable writers : int;
  mem_prov : Prov.t;
}

type trip =
  | Tconst of float
  | Tsize of Sym.t
  | Tceil_div of trip * int
  | Tavg_tail of { total : trip; tile : int }
  | Tmul of trip * trip
  | Tscale of float * trip

let trip_of_dom = function
  | Ir.Dfull e ->
      let rec of_exp = function
        | Ir.Ci c -> Tconst (float_of_int c)
        | Ir.Var s -> Tsize s
        | Ir.Prim (Ir.Mul, [ a; b ]) -> Tmul (of_exp a, of_exp b)
        | Ir.Prim (Ir.Add, [ a; Ir.Ci c ]) ->
            (* additive constants on sizes barely matter for trips *)
            ignore c;
            of_exp a
        | _ -> Tconst 1.0
      in
      of_exp e
  | Ir.Dtiles { total; tile } -> (
      match total with
      | Ir.Var s -> Tceil_div (Tsize s, tile)
      | Ir.Ci c -> Tconst (float_of_int ((c + tile - 1) / tile))
      | _ -> Tconst 1.0)
  | Ir.Dtail { total; tile; _ } -> (
      match total with
      | Ir.Var s -> Tavg_tail { total = Tsize s; tile }
      | Ir.Ci c ->
          let tiles = (c + tile - 1) / tile in
          Tconst (float_of_int c /. float_of_int (Int.max 1 tiles))
      | _ -> Tconst (float_of_int tile))

let rec trip_eval sizes t =
  match t with
  | Tconst c -> c
  | Tsize s -> (
      match List.find_opt (fun (k, _) -> Sym.equal k s) sizes with
      | Some (_, v) -> float_of_int v
      | None -> invalid_arg ("Hw.trip_eval: missing size " ^ Sym.name s))
  | Tceil_div (t1, b) -> Float.of_int
      (int_of_float (ceil (trip_eval sizes t1 /. float_of_int b)))
  | Tavg_tail { total; tile } ->
      let tot = trip_eval sizes total in
      let tiles = ceil (tot /. float_of_int tile) in
      if tiles <= 0.0 then 0.0 else tot /. tiles
  | Tmul (a, b) -> trip_eval sizes a *. trip_eval sizes b
  | Tscale (f, t1) -> f *. trip_eval sizes t1

let trip_product = function
  | [] -> Tconst 1.0
  | t :: rest -> List.fold_left (fun acc x -> Tmul (acc, x)) t rest

let rec pp_trip fmt = function
  | Tconst c ->
      if Float.is_integer c then Format.fprintf fmt "%.0f" c
      else Format.fprintf fmt "%g" c
  | Tsize s -> Sym.pp fmt s
  | Tceil_div (t, b) -> Format.fprintf fmt "ceil(%a/%d)" pp_trip t b
  | Tavg_tail { total; tile } -> Format.fprintf fmt "avg(%a@%d)" pp_trip total tile
  | Tmul (a, b) -> Format.fprintf fmt "%a*%a" pp_trip a pp_trip b
  | Tscale (f, t) -> Format.fprintf fmt "%g*%a" f pp_trip t

type dram_access = {
  da_array : string;
  da_path : (trip * bool) list;
  da_contiguous : bool;
  da_affine : bool;
  da_row_words : trip;
  da_kind : [ `Read | `Write | `Cached ];
}

type pipe_template = Vector | Tree | Fifo_write | Cam_update | Scalar_unit

type op_counts = {
  flops : int;
  int_ops : int;
  cmp_ops : int;
  mem_reads : int;
  mem_writes : int;
}

type ctrl =
  | Seq of { name : string; children : ctrl list; prov : Prov.t }
  | Par of { name : string; children : ctrl list; prov : Prov.t }
  | Loop of {
      name : string;
      trips : trip list;
      meta : bool;
      stages : ctrl list;
      prov : Prov.t;
    }
  | Pipe of {
      name : string;
      trips : trip list;
      template : pipe_template;
      par : int;
      depth : int;
      ii : int;
      ops : op_counts;
      body : Ir.exp option;
      dram : dram_access list;
      uses : string list;
      defines : string list;
      prov : Prov.t;
    }
  | Tile_load of {
      name : string;
      mem : string;
      array : string;
      words : trip;
      path : (trip * bool) list;
      reuse : int;
      prov : Prov.t;
    }
  | Tile_store of {
      name : string;
      mem : string option;
      array : string;
      words : trip;
      path : (trip * bool) list;
      prov : Prov.t;
    }

type design = {
  design_name : string;
  mems : mem list;
  top : ctrl;
  par_factor : int;
}

let ctrl_name = function
  | Seq { name; _ } | Par { name; _ } | Loop { name; _ } | Pipe { name; _ }
  | Tile_load { name; _ } | Tile_store { name; _ } ->
      name

let children = function
  | Seq { children; _ } | Par { children; _ } -> children
  | Loop { stages; _ } -> stages
  | Pipe _ | Tile_load _ | Tile_store _ -> []

let rec iter_ctrls f c =
  f c;
  List.iter (iter_ctrls f) (children c)

let iter_ctrls_path f c =
  let rec go path c =
    f path c;
    List.iter (go (path @ [ ctrl_name c ])) (children c)
  in
  go [] c

let rec fold_ctrls f acc c =
  let acc = f acc c in
  List.fold_left (fold_ctrls f) acc (children c)

let ctrl_prov = function
  | Seq { prov; _ } | Par { prov; _ } | Loop { prov; _ } | Pipe { prov; _ }
  | Tile_load { prov; _ } | Tile_store { prov; _ } ->
      prov

let with_prov c prov =
  match c with
  | Seq r -> Seq { r with prov }
  | Par r -> Par { r with prov }
  | Loop r -> Loop { r with prov }
  | Pipe r -> Pipe { r with prov }
  | Tile_load r -> Tile_load { r with prov }
  | Tile_store r -> Tile_store { r with prov }

let find_mem d name =
  match List.find_opt (fun m -> m.mem_name = name) d.mems with
  | Some m -> m
  | None -> raise Not_found
