(** Pattern fusion (the vertical/horizontal fusion the paper's pipeline
    runs before tiling; Section 3 shows its effect on k-means).

    - {b Horizontal Map fusion}: two adjacent Let-bound [Map]s over the
      same domain merge into a single tuple-producing [Map], eliminating
      the redundant traversal.
    - {b Vertical Map fusion}: a Let-bound [Map] whose every use is an
      element read (or a [Len]) is inlined into its consumers, removing
      the intermediate array and shrinking producer-consumer reuse
      distance.
    - {b Filter fusion} (optional): a Let-bound [FlatMap] consumed by a
      single [Fold] over its dynamic length fuses into a conditional fold
      over the FlatMap's domain — the classic filter-reduce fusion.
      Off by default so the hardware generator still sees the FlatMap and
      maps it to a parallel FIFO (Table 4); enabling it is an ablation. *)

val exp : ?fuse_filters:bool -> Ir.exp -> Ir.exp
val program : ?fuse_filters:bool -> Ir.program -> Ir.program
