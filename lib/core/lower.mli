(** Hardware generation: lower a (tiled or untiled) PPL program to a
    hardware design built from the templates of Table 4.

    Mapping, following Section 5:
    - statically sized arrays (tile copies, on-chip accumulators, split
      intermediates) become buffers; tile copies additionally get a tile
      load unit;
    - innermost patterns over scalars become pipelined execution units
      (Map -> vector unit, Fold/MultiFold -> reduction tree, FlatMap ->
      FIFO writer, GroupByFold -> CAM updater);
    - outer patterns become loop controllers whose bodies are decomposed
      into stages (one per shared binding, tile copy, and accumulator
      update); with metapipelining enabled the controller schedules the
      stages as a metapipeline and stage-coupling buffers are promoted to
      double buffers ({!Metapipe});
    - a MultiFold tiled into a fold of MultiFolds is detected as the
      paper's redundant-accumulation case: the inner MultiFold writes the
      outer accumulator directly and no intermediate buffer or merge
      stage is emitted;
    - accumulators whose static bound exceeds the on-chip budget live in
      DRAM: non-unit update regions get a staging buffer plus a tile
      store (and a load + merge for read-modify-write combines);
    - remaining main-memory reads (non-affine accesses) are served by
      caches when [cache_leftover] is set (tiled designs), or counted as
      direct burst traffic (the baseline). *)

type opts = {
  meta : bool;  (** generate metapipeline schedules *)
  par : int;  (** innermost parallelism factor (constant across configs) *)
  budget_words : int;  (** on-chip capacity for accumulators/buffers *)
  cache_leftover : bool;  (** allocate caches for non-affine reads *)
  fifo_rate : float;  (** expected FlatMap output rate (elements/input) *)
}

val default_opts : opts
(** [meta = true], [par = 16], 2^18 words, caches on, rate 0.05. *)

val baseline_opts : opts
(** The Section 6.1 baseline: no metapipelining, no caches — burst-level
    locality only.  Same parallelism factor. *)

val program : opts -> Ir.program -> Hw.design
(** @raise Validate.Type_error on an ill-typed program. *)
