(** Structured compiler diagnostics.

    Every analyzer finding — from the structural validator
    ({!Hw_check}), the design linter ({!Hw_lint}), the source-level
    pattern linter ({!Ppl_lint}) or the bounds checker ({!Bounds}) — is
    a value of {!t}: a stable code (["HW101"], ["PPL201"]), a severity,
    the path from the root to the offending node (controller path for
    designs, pattern path for the IR), the memory/controller/array the
    finding is about, and a human message.  Codes are documented in
    [doc/LINTS.md] and are part of the tool's interface: scripts may
    match on them, so existing codes keep their meaning across
    releases. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable identifier, e.g. ["HW101"] *)
  severity : severity;
  path : string list;
      (** controller path from the design root to the finding, outermost
          first; [[]] for design- or memory-table-level findings *)
  where : string;  (** the memory or controller the finding is about *)
  message : string;
}

val make :
  ?path:string list ->
  code:string ->
  severity:severity ->
  where:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [make ~code ~severity ~where fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val severity_name : severity -> string

val compare_codes : string -> string -> int
(** Numeric-aware code order: alphabetic family first ([HW] before
    [PPL]), then the numeric part as a number — ["HW90"] sorts before
    ["HW101"], which plain string comparison gets wrong. *)

val compare : t -> t -> int
(** Orders errors before warnings before infos, then by
    {!compare_codes} on the code, then by location — the order
    renderers present lists in. *)

val errors : t list -> t list
(** The error-severity subset. *)

val has_errors : t list -> bool

val summary : t list -> string
(** e.g. ["2 errors, 1 warning, 4 infos"]; ["clean"] for the empty
    list. *)

val pp : Format.formatter -> t -> unit
(** One line: [CODE severity [path]: where: message]. *)

val pp_list : Format.formatter -> t list -> unit
(** Sorted with {!compare}, one per line. *)

val to_json : t -> string
(** A single JSON object with [code], [severity], [path], [where] and
    [message] fields (no external JSON dependency; strings are
    escaped). *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects, sorted with {!compare}. *)
