let mem_kind_name = function
  | Hw.Buffer -> "buffer"
  | Hw.Double_buffer -> "double-buffer"
  | Hw.Cache -> "cache"
  | Hw.Fifo -> "fifo"
  | Hw.Cam -> "cam"
  | Hw.Reg -> "reg"

let template_name = function
  | Hw.Vector -> "vector"
  | Hw.Tree -> "reduce-tree"
  | Hw.Fifo_write -> "fifo-write"
  | Hw.Cam_update -> "cam-update"
  | Hw.Scalar_unit -> "scalar"

let pp_trips fmt trips =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       Hw.pp_trip)
    trips

let rec pp_ctrl indent fmt c =
  let pad = String.make indent ' ' in
  match c with
  | Hw.Seq { name; children; _ } ->
      Format.fprintf fmt "%sSequential %s@." pad name;
      List.iter (pp_ctrl (indent + 2) fmt) children
  | Hw.Par { name; children; _ } ->
      Format.fprintf fmt "%sParallel %s@." pad name;
      List.iter (pp_ctrl (indent + 2) fmt) children
  | Hw.Loop { name; trips; meta; stages; _ } ->
      Format.fprintf fmt "%s%s %s %a@." pad
        (if meta then "Metapipeline" else "Loop")
        name pp_trips trips;
      List.iter (pp_ctrl (indent + 2) fmt) stages
  | Hw.Pipe { name; trips; template; par; depth; ii; ops; dram; uses; defines; _ }
    ->
      Format.fprintf fmt
        "%sPipe %s [%s] %a par=%d depth=%d ii=%d flops=%d cmps=%d@." pad name
        (template_name template) pp_trips trips par depth ii ops.Hw.flops
        ops.Hw.cmp_ops;
      if uses <> [] then
        Format.fprintf fmt "%s  reads: %s@." pad (String.concat ", " uses);
      if defines <> [] then
        Format.fprintf fmt "%s  writes: %s@." pad (String.concat ", " defines);
      List.iter
        (fun da ->
          Format.fprintf fmt "%s  dram %s %s%s@." pad da.Hw.da_array
            (match da.Hw.da_kind with
            | `Read -> "read"
            | `Write -> "write"
            | `Cached -> "cached")
            (if da.Hw.da_contiguous then "" else " [non-contiguous]"))
        dram
  | Hw.Tile_load { name; mem; array; words; reuse; _ } ->
      Format.fprintf fmt "%sTileLoad %s %s <- dram:%s words=%a%s@." pad name mem
        array Hw.pp_trip words
        (if reuse > 1 then Printf.sprintf " reuse=%d" reuse else "")
  | Hw.Tile_store { name; mem; array; words; _ } ->
      Format.fprintf fmt "%sTileStore %s %s -> dram:%s words=%a@." pad name
        (match mem with Some m -> m | None -> "(stream)")
        array Hw.pp_trip words

let pp_design fmt (d : Hw.design) =
  Format.fprintf fmt "design %s (par=%d)@." d.Hw.design_name d.Hw.par_factor;
  Format.fprintf fmt "memories:@.";
  List.iter
    (fun m ->
      Format.fprintf fmt "  %-24s %-13s %5d x %2db banks=%d R=%d W=%d@."
        m.Hw.mem_name (mem_kind_name m.Hw.kind) m.Hw.depth m.Hw.width_bits
        m.Hw.banks m.Hw.readers m.Hw.writers)
    d.Hw.mems;
  Format.fprintf fmt "controllers:@.";
  pp_ctrl 2 fmt d.Hw.top

let design_to_string d = Format.asprintf "%a" pp_design d
