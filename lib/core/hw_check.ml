(* memory names referenced by a controller, split into write-side and
   read-side references *)
let mem_refs c =
  match c with
  | Hw.Pipe { uses; defines; _ } -> (defines, uses)
  | Hw.Tile_load { mem; _ } -> ([ mem ], [])
  | Hw.Tile_store { mem = Some m; _ } -> ([], [ m ])
  | _ -> ([], [])

let check (d : Hw.design) =
  let diags = ref [] in
  let bad ?(path = []) ~code where fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.code; severity = Diagnostic.Error; path; where; message }
          :: !diags)
      fmt
  in
  let mem_names = List.map (fun m -> m.Hw.mem_name) d.Hw.mems in
  (* memory table sanity *)
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup mem_names with
  | Some n -> bad ~code:"HW001" n "duplicate memory name"
  | None -> ());
  List.iter
    (fun m ->
      if m.Hw.width_bits <= 0 then
        bad ~code:"HW003" m.Hw.mem_name "non-positive width";
      if m.Hw.depth <= 0 then
        bad ~code:"HW003" m.Hw.mem_name "non-positive depth";
      if m.Hw.banks <= 0 then
        bad ~code:"HW003" m.Hw.mem_name "non-positive banks")
    d.Hw.mems;
  (* controller names unique *)
  let ctrl_names =
    List.rev (Hw.fold_ctrls (fun acc c -> Hw.ctrl_name c :: acc) [] d.Hw.top)
  in
  (match dup ctrl_names with
  | Some n -> bad ~code:"HW002" n "duplicate controller name"
  | None -> ());
  (* reference map: for each memory, the path of the first controller
     referencing it, and whether any reference sits under a metapipelined
     loop *)
  let written = Hashtbl.create 16 and read = Hashtbl.create 16 in
  let under_meta = Hashtbl.create 16 in
  let rec walk path meta c =
    let w, r = mem_refs c in
    let here = path @ [ Hw.ctrl_name c ] in
    List.iter
      (fun n ->
        if not (Hashtbl.mem written n) then Hashtbl.add written n here;
        if meta then Hashtbl.replace under_meta n ())
      w;
    List.iter
      (fun n ->
        if not (Hashtbl.mem read n) then Hashtbl.add read n here;
        if meta then Hashtbl.replace under_meta n ())
      r;
    let meta' =
      match c with Hw.Loop { meta = m; _ } -> meta || m | _ -> meta
    in
    List.iter (walk here meta') (Hw.children c)
  in
  walk [] false d.Hw.top;
  let referenced n = Hashtbl.mem written n || Hashtbl.mem read n in
  (* dangling references *)
  Hashtbl.iter
    (fun n path ->
      if not (List.mem n mem_names) then
        bad ~code:"HW004" ~path n "written but not declared")
    written;
  Hashtbl.iter
    (fun n path ->
      if not (List.mem n mem_names) then
        bad ~code:"HW005" ~path n "read but not declared")
    read;
  (* declared but unused; write-only / read-only anomalies *)
  List.iter
    (fun m ->
      let n = m.Hw.mem_name in
      if not (referenced n) then
        bad ~code:"HW006" n "declared but never referenced"
      else begin
        (* caches are demand-filled from DRAM, not by a controller *)
        if (not (Hashtbl.mem written n)) && m.Hw.kind <> Hw.Cache then
          bad ~code:"HW007" n "read but never written (no producer)";
        if not (Hashtbl.mem read n) then
          bad ~code:"HW008" n "written but never read";
        match m.Hw.kind with
        | Hw.Double_buffer ->
            if not (Hashtbl.mem under_meta n) then
              bad ~code:"HW009" n "double buffer entirely outside metapipelines"
        | Hw.Fifo ->
            if not (Hashtbl.mem written n && Hashtbl.mem read n) then
              bad ~code:"HW010" n "FIFO must have both a producer and a consumer"
        | _ -> ()
      end)
    d.Hw.mems;
  (* controller-local invariants *)
  Hw.iter_ctrls_path
    (fun path c ->
      match c with
      | Hw.Pipe { name; par; ii; depth; trips; template; _ } ->
          if par < 1 then bad ~code:"HW011" ~path name "par < 1";
          if ii < 1 then bad ~code:"HW011" ~path name "ii < 1";
          if depth < 0 then bad ~code:"HW011" ~path name "negative depth";
          (* a scalar unit legitimately runs once with no loop dims *)
          if trips = [] && template <> Hw.Scalar_unit then
            bad ~code:"HW011" ~path name "pipe with no iteration space"
      | Hw.Loop { name; trips; stages; _ } ->
          if trips = [] then bad ~code:"HW012" ~path name "loop with no trips";
          if stages = [] then bad ~code:"HW012" ~path name "loop with no stages"
      | Hw.Seq { name; children; _ } | Hw.Par { name; children; _ } ->
          if children = [] then
            bad ~code:"HW013" ~path name "controller with no children"
      | Hw.Tile_load _ | Hw.Tile_store _ -> ())
    d.Hw.top;
  List.sort Diagnostic.compare !diags

let check_exn d =
  match check d with
  | [] -> ()
  | fs ->
      failwith
        (String.concat "; "
           (List.map
              (fun f ->
                Printf.sprintf "%s: %s" f.Diagnostic.where f.Diagnostic.message)
              fs))
