(** Graphviz rendering of a hardware design (the Fig. 6 block diagram):
    controllers as nested clusters, memories as nodes, dataflow edges from
    writers to readers. *)

val emit : Hw.design -> string
