open Ir

type ctx = {
  budget : int;
  tenv : Ty.t Sym.Map.t;
  bound : exp -> int option;
}

let add_ty ctx s t = { ctx with tenv = Sym.Map.add s t ctx.tenv }

let add_idxs ctx idxs =
  { ctx with
    tenv = List.fold_left (fun m s -> Sym.Map.add s Ty.int_ m) ctx.tenv idxs }

let infer ctx e = Validate.infer ctx.tenv e

let rec is_elt_ty = function
  | Ty.Scalar _ -> true
  | Ty.Tuple ts -> List.for_all is_elt_ty ts
  | Ty.Array _ | Ty.Assoc _ -> false

let unstrided doms = List.for_all (fun d -> not (is_strided d)) doms

(* ----------------------------------------------------------------- *)
(* Rule 1: strided fold out of unstrided map                          *)
(* ----------------------------------------------------------------- *)

(* Map{U}{ Fold{d/b}{...} }  ==>  Fold{d/b}{ Map{U}{...} }
   The fold accumulator becomes an array over U; init, update and combine
   are lifted elementwise. *)
let try_rule1 ctx { mdims; midxs; mbody; mprov } =
  match mbody with
  | Fold
      { fdims = [ (Dtiles _ as sd) ]; fidxs = [ kk ]; finit; facc; fupd; fcomb;
        fprov }
    when unstrided mdims -> (
      let ctx_i = add_idxs ctx midxs in
      match infer ctx_i finit with
      | exception Validate.Type_error _ -> None
      | acc_t when is_elt_ty acc_t ->
          let kk' = Sym.fresh (Sym.base kk) in
          let lift body_build =
            let idxs' = List.map (fun s -> Sym.fresh (Sym.base s)) midxs in
            let sigma =
              List.fold_left2
                (fun m s s' -> Sym.Map.add s (Var s') m)
                Sym.Map.empty midxs idxs'
            in
            Map
              { mdims;
                midxs = idxs';
                mbody = body_build sigma (List.map (fun s -> Var s) idxs');
                mprov = Prov.push mprov "interchange.lift" }
          in
          let init' =
            lift (fun sigma _ -> Ir.rename_binders (Ir.subst sigma finit))
          in
          let acc_a = Sym.fresh (Sym.base facc) in
          let upd' =
            lift (fun sigma idx_vars ->
                let sigma =
                  sigma
                  |> Sym.Map.add kk (Var kk')
                  |> Sym.Map.add facc (Read (Var acc_a, idx_vars))
                in
                Ir.rename_binders (Ir.subst sigma fupd))
          in
          let a = Sym.fresh "a" and b = Sym.fresh "b" in
          let comb_body =
            lift (fun sigma idx_vars ->
                ignore sigma;
                comb_apply (Combs.rename fcomb) (Read (Var a, idx_vars))
                  (Read (Var b, idx_vars)))
          in
          Some
            (Fold
               { fdims = [ sd ];
                 fidxs = [ kk' ];
                 finit = init';
                 facc = acc_a;
                 fupd = upd';
                 fcomb = { ca = a; cb = b; cbody = comb_body };
                 fprov = Prov.push fprov "interchange" })
      | _ -> None)
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Rule 2: strided no-reduction MultiFold out of unstrided fold       *)
(* ----------------------------------------------------------------- *)

(* Fold{U}{ acc => MultiFold{d/b}{ (o +: l) => Map{l}{ j => f(acc(o+j)) } } }
     ==>  MultiFold{d/b}{ (o +: l) => Fold{U}{ accs => Map{l}{ j => f(accs(j)) } } }
   Sound when each written slice element depends only on the accumulator
   at its own (global) position, checked via affine equality of every
   accumulator read against [offset + inner index]. *)
let try_rule2 _ctx { fdims; fidxs; finit; facc; fupd; fcomb; fprov } =
  match fupd with
  | MultiFold
      { odims = [ (Dtiles _ as sd) ];
        oidxs = [ kk ];
        olets = [];
        oouts =
          [ { orange = [ range ];
              oregion = [ (off, len, lenb) ];
              oacc = _;
              oupd =
                Map { mdims = [ tail_dom ]; midxs = [ j ]; mbody;
                      mprov = inner_mprov } } ];
        ocomb = None;
        oprov;
        _ }
    when List.for_all (fun d -> not (is_strided d)) fdims -> (
      (* every read of the fold accumulator must target offset + j *)
      let expected =
        match (Affine.of_exp (Simplify.exp off), Affine.of_exp (Var j)) with
        | Some o, Some jj -> Some (Affine.add o jj)
        | _ -> None
      in
      let acc_reads_ok =
        match expected with
        | None -> false
        | Some want ->
            (* every occurrence of the accumulator symbol must be a read at
               exactly [offset + j]: compare the count of well-formed reads
               against the count of Var occurrences (each read contains
               one) *)
            let total = ref 0 and proper = ref 0 in
            Rewrite.iter_exp
              (function
                | Var s when Sym.equal s facc -> incr total
                | Read (Var s, [ idx ]) when Sym.equal s facc -> (
                    match Affine.of_exp (Simplify.exp idx) with
                    | Some a when Affine.equal a want -> incr proper
                    | _ -> ())
                | _ -> ())
              mbody;
            !total > 0 && !total = !proper
      in
      match (finit, Combs.elementwise fcomb, acc_reads_ok) with
      | Zeros (elt, [ _ ]), Some build, true ->
          let kk' = Sym.fresh (Sym.base kk) in
          let sub_kk e = Ir.subst (Sym.Map.singleton kk (Var kk')) e in
          let off' = sub_kk off and len' = sub_kk len in
          let tail_dom' =
            match tail_dom with
            | Dtail { total; tile; outer } ->
                Dtail
                  { total;
                    tile;
                    outer = (if Sym.equal outer kk then kk' else outer) }
            | d -> d
          in
          let fidxs' = List.map (fun s -> Sym.fresh (Sym.base s)) fidxs in
          let facc' = Sym.fresh (Sym.base facc) in
          let j' = Sym.fresh (Sym.base j) in
          (* inner body: acc reads redirected to the slice at j' *)
          let rec redirect e =
            match e with
            | Read (Var s, [ _ ]) when Sym.equal s facc ->
                Read (Var facc', [ Var j' ])
            | e -> Rewrite.map_children redirect e
          in
          let sigma =
            List.fold_left2
              (fun m a b -> Sym.Map.add a (Var b) m)
              (Sym.Map.add kk (Var kk') (Sym.Map.singleton j (Var j')))
              fidxs fidxs'
          in
          let inner_body =
            Ir.rename_binders (Ir.subst sigma (redirect mbody))
          in
          let slice_acc = Sym.fresh "acc" in
          Some
            (MultiFold
               { odims = [ sd ];
                 oidxs = [ kk' ];
                 oinit = Zeros (elt, [ range ]);
                 olets = [];
                 oouts =
                   [ { orange = [ range ];
                       oregion = [ (off', len', lenb) ];
                       oacc = slice_acc;
                       oupd =
                         Fold
                           { fdims;
                             fidxs = fidxs';
                             finit = Zeros (elt, [ len' ]);
                             facc = facc';
                             fupd =
                               Map
                                 { mdims = [ tail_dom' ];
                                   midxs = [ j' ];
                                   mbody = inner_body;
                                   mprov =
                                     Prov.push inner_mprov "interchange" };
                             fcomb =
                               (let a = Sym.fresh "a" and b = Sym.fresh "b" in
                                { ca = a;
                                  cb = b;
                                  cbody = build [ len' ] (Var a) (Var b) });
                             fprov = Prov.push fprov "interchange" } }
                   ];
                 ocomb = None;
                 oprov = Prov.push oprov "interchange" })
      | _ -> None)
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Split: fission an imperfect nest to expose a perfect one           *)
(* ----------------------------------------------------------------- *)

(* MultiFold{D}{ t = Fold{d/b}{...}; scatter(t) }
     ==>  tmp = Map{D}{ Fold{d/b}{...} }           (then rule 1 on the Map)
          MultiFold{D}{ t = tmp(i); scatter(t) }
   Only when the tmp intermediate fits on-chip. *)
let rec peel_projs acc = function
  | Proj (e, i) -> peel_projs (i :: acc) e
  | e -> (acc, e)

let rebuild_projs projs e =
  List.fold_right (fun i acc -> Proj (acc, i)) (List.rev projs) e

let try_split ctx ({ odims; oidxs; olets; _ } as mf) =
  match olets with
  | [ (t, whole) ] when unstrided odims -> (
      (* the binding may project out of the fold (e.g. taking ._2 of a
         (distance, index) pair): split on the fold underneath and keep
         the projection on the intermediate reads *)
      let projs, bexp = peel_projs [] whole in
      match bexp with
      | Fold { fdims = [ Dtiles _ ]; _ } -> (
      let ctx_i = add_idxs ctx oidxs in
      match infer ctx_i bexp with
      | exception Validate.Type_error _ -> None
      | elt_t
        when is_elt_ty elt_t
             && Split_cost.intermediate_fits ~budget_words:ctx.budget
                  ~bound:ctx.bound odims elt_t ->
          let map_idxs = List.map (fun s -> Sym.fresh (Sym.base s)) oidxs in
          let sigma =
            List.fold_left2
              (fun m s s' -> Sym.Map.add s (Var s') m)
              Sym.Map.empty oidxs map_idxs
          in
          let mapped =
            { mdims = odims;
              midxs = map_idxs;
              mbody = Ir.rename_binders (Ir.subst sigma bexp);
              mprov = Prov.push mf.oprov "interchange.split" }
          in
          let interchanged =
            match try_rule1 ctx mapped with
            | Some e -> e
            | None -> Map mapped
          in
          let tmp = Sym.fresh (Sym.base t ^ "s") in
          Some
            (Let
               ( tmp,
                 interchanged,
                 MultiFold
                   { mf with
                     olets =
                       [ ( t,
                           rebuild_projs projs
                             (Read (Var tmp, List.map (fun s -> Var s) oidxs))
                         ) ]
                   } ))
      | _ -> None)
      | _ -> None)
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Bottom-up driver with type-environment threading                   *)
(* ----------------------------------------------------------------- *)

let rec ic ctx e =
  match e with
  | Var _ | Cf _ | Ci _ | Cb _ | EmptyArr _ | Zeros _ -> e
  | Tup _ | Proj _ | Prim _ | If _ | Len _ | Read _ | Slice _ | Copy _
  | ArrLit _ ->
      Rewrite.map_children (ic ctx) e
  | Let (s, e1, e2) ->
      let t1 = infer ctx e1 in
      Let (s, ic ctx e1, ic (add_ty ctx s t1) e2)
  | Map m -> (
      let m' = { m with mbody = ic (add_idxs ctx m.midxs) m.mbody } in
      match try_rule1 ctx m' with Some e' -> e' | None -> Map m')
  | Fold f -> (
      let acc_t = infer ctx f.finit in
      let ctx_b = add_ty (add_idxs ctx f.fidxs) f.facc acc_t in
      let f' = { f with finit = ic ctx f.finit; fupd = ic ctx_b f.fupd } in
      match try_rule2 ctx f' with Some e' -> e' | None -> Fold f')
  | MultiFold mf -> (
      let init_t = infer ctx mf.oinit in
      let comp_tys =
        match (init_t, mf.oouts) with
        | Ty.Tuple ts, _ :: _ :: _ -> ts
        | t, _ -> [ t ]
      in
      let ctx_i = add_idxs ctx mf.oidxs in
      let ctx_i, olets' =
        List.fold_left
          (fun (c, acc) (s, e1) ->
            let t1 = infer c e1 in
            (add_ty c s t1, (s, ic c e1) :: acc))
          (ctx_i, []) mf.olets
      in
      let olets' = List.rev olets' in
      let oouts' =
        List.map2
          (fun out comp_t ->
            let elt = match comp_t with Ty.Array (e1, _) -> e1 | t -> t in
            let unit_region =
              List.for_all (fun (_, l, _) -> l = Ci 1) out.oregion
            in
            let acc_t =
              if out.oregion = [] || unit_region then elt
              else Ty.Array (elt, List.length out.oregion)
            in
            { out with oupd = ic (add_ty ctx_i out.oacc acc_t) out.oupd })
          mf.oouts comp_tys
      in
      let mf' = { mf with oinit = ic ctx mf.oinit; olets = olets'; oouts = oouts' } in
      match try_split ctx mf' with Some e' -> e' | None -> MultiFold mf')
  | FlatMap fm ->
      FlatMap { fm with fmbody = ic (add_idxs ctx [ fm.fmidx ]) fm.fmbody }
  | GroupByFold g ->
      let v_t = infer ctx g.ginit in
      let ctx_i = add_idxs ctx g.gidxs in
      let ctx_i, glets' =
        List.fold_left
          (fun (c, acc) (s, e1) ->
            let t1 = infer c e1 in
            (add_ty c s t1, (s, ic c e1) :: acc))
          (ctx_i, []) g.glets
      in
      let glets' = List.rev glets' in
      GroupByFold
        { g with
          glets = glets';
          gkey = ic ctx_i g.gkey;
          gupd = ic (add_ty ctx_i g.gacc v_t) g.gupd }

let exp ~budget_words ~tenv ~bound e = ic { budget = budget_words; tenv; bound } e

let program ?(budget_words = 1 lsl 18) (p : program) =
  let tenv = Validate.initial_env p in
  let bound e =
    match e with
    | Ci c -> Some c
    | Var s -> Ir.max_sizes_bound p s
    | _ -> None
  in
  (* "We apply these two rules whenever possible" (Section 4): one
     interchange can expose another, so iterate to a fixpoint (bounded —
     each application strictly restructures a nest). *)
  let rec fix n body =
    let body' = exp ~budget_words ~tenv ~bound body in
    if n = 0 || Rewrite.node_count body' = Rewrite.node_count body then body'
    else fix (n - 1) body'
  in
  { p with body = fix 3 p.body }
