(** Design-level validation: structural invariants every lowered design
    must satisfy, checked after {!Lower} and {!Metapipe.finalize}.  The
    IR type checker ({!Validate}) guards the front of the pipeline; this
    guards the back — a lowering bug that produces a malformed design
    (dangling memory reference, double buffer outside a metapipeline,
    FIFO without a producer) is caught here rather than as a nonsense
    simulation number.

    Findings are {!Diagnostic.t} values with stable [HW0xx] codes (all
    error severity — a structurally malformed design has no meaningful
    simulation), locating controllers by their full path from the design
    root.  The semantic analyses (hazards, rates, capacities, perf) live
    in {!Hw_lint}; [Hw_lint.check_all] runs both. *)

val check : Hw.design -> Diagnostic.t list
(** All violations found; empty = well-formed.  Checked invariants
    (codes in [doc/LINTS.md]):

    - HW004/HW005: every memory referenced by a controller ([uses],
      [defines], tile-load/store [mem]) is declared in [mems];
    - HW006: every declared memory is referenced by some controller;
    - HW001/HW002: memory names are unique; controller names are unique;
    - HW003: every memory has positive width, depth and banks;
    - HW007/HW008: dataflow — every declared memory is both produced and
      consumed: written somewhere (except [Cache], which demand-fills
      from DRAM) and read somewhere (a tile store counts as the read);
    - HW009: a [Double_buffer] is written or read under at least one
      metapipelined loop (promotion happens only there);
    - HW010: every [Fifo] has both a producer ([Fifo_write] pipe or
      [defines]) and a consumer;
    - HW011: [Pipe] fields are sane: [par >= 1], [ii >= 1],
      [depth >= 0], and a non-scalar pipe has an iteration space (a
      [Scalar_unit] may run once with no loop dims);
    - HW012: [Loop] controllers have at least one trip and one stage;
    - HW013: [Seq]/[Par] controllers have at least one child. *)

val check_exn : Hw.design -> unit
(** @raise Failure with all findings when the design is malformed. *)
