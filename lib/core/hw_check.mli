(** Design-level validation: structural invariants every lowered design
    must satisfy, checked after {!Lower} and {!Metapipe.finalize}.  The
    IR type checker ({!Validate}) guards the front of the pipeline; this
    guards the back — a lowering bug that produces a malformed design
    (dangling memory reference, double buffer outside a metapipeline,
    FIFO without a producer) is caught here rather than as a nonsense
    simulation number. *)

type finding = {
  where : string;  (** controller or memory name *)
  problem : string;
}

val check : Hw.design -> finding list
(** All violations found; empty = well-formed.  Checked invariants:

    - every memory referenced by a controller ([uses], [defines],
      tile-load/store [mem]) is declared in [mems], and every declared
      memory is referenced by some controller;
    - memory names are unique; controller names are unique;
    - every memory has positive width, depth and banks;
    - dataflow: every declared memory is both produced and consumed —
      written somewhere (except [Cache], which demand-fills from DRAM)
      and read somewhere (a tile store counts as the read);
    - a [Double_buffer] is written or read under at least one
      metapipelined loop (promotion happens only there);
    - every [Fifo] has both a producer ([Fifo_write] pipe or [defines])
      and a consumer;
    - [Pipe] fields are sane: [par >= 1], [ii >= 1], [depth >= 0], and a
      non-scalar pipe has an iteration space (a [Scalar_unit] may run
      once with no loop dims);
    - [Loop] controllers have at least one trip and one stage; a
      metapipelined loop has at least one stage (overlap needs two or
      more to help, but one is legal). *)

val pp_finding : Format.formatter -> finding -> unit

val check_exn : Hw.design -> unit
(** @raise Failure with all findings when the design is malformed. *)
