(** Affine analysis of index expressions.

    An index expression is affine when it is [sum_i c_i * s_i + c0] for
    integer constants [c_i] and symbols [s_i].  Strip mining's tile-copy
    inference (Section 4, second pass) classifies every array access
    through this analysis; non-affine accesses (data-dependent indices
    like k-means' [minDistIndex]) return [None] and are later served by
    caches/CAMs rather than tile buffers — the key generality claim over
    polyhedral tooling. *)

type t = {
  terms : (Sym.t * int) list;  (** nonzero coefficients, sorted by symbol *)
  const : int;
}

val of_exp : Ir.exp -> t option
(** [None] if the expression is not affine (any [Read], [If], [Div], ...). *)

val to_exp : t -> Ir.exp
(** Canonical expression form: terms in symbol order, then the constant;
    omits zero coefficients and a zero constant. *)

val const : int -> t
val var : Sym.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val syms : t -> Sym.Set.t
val coeff : t -> Sym.t -> int
val is_const : t -> bool

val partition : t -> (Sym.t -> bool) -> t * t
(** [partition a p] splits [a] into [(inside, outside)]: terms whose symbol
    satisfies [p] (with const 0) and the rest (carrying the constant). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
