(** Human-readable rendering of hardware designs: an indented controller
    tree plus the memory table (used by the CLI and in tests). *)

val pp_design : Format.formatter -> Hw.design -> unit
val design_to_string : Hw.design -> string
val mem_kind_name : Hw.mem_kind -> string
val template_name : Hw.pipe_template -> string
