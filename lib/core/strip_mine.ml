open Ir

type ctx = {
  tiles : (Sym.t * int) list;
  tenv : Ty.t Sym.Map.t;
  bound : exp -> int option;
}

let add_ty ctx s t = { ctx with tenv = Sym.Map.add s t ctx.tenv }
let add_idxs ctx idxs =
  { ctx with
    tenv = List.fold_left (fun m s -> Sym.Map.add s Ty.int_ m) ctx.tenv idxs }

let infer ctx e = Validate.infer ctx.tenv e

(* --------------------------------------------------------------- *)
(* Dimension plans                                                  *)
(* --------------------------------------------------------------- *)

type plan =
  | Keep of { dom : dom; inner : Sym.t }
  | Tile of { total : exp; tile : int; ii : Sym.t; inner : Sym.t }

let plan_dims ctx dims idxs =
  List.map2
    (fun d s ->
      match d with
      | Dfull (Var sz) -> (
          match List.find_opt (fun (t, _) -> Sym.equal t sz) ctx.tiles with
          | Some (_, b) ->
              Tile
                { total = Var sz;
                  tile = b;
                  ii = Sym.fresh "ii";
                  inner = Sym.fresh (Sym.base s) }
          | None -> Keep { dom = d; inner = Sym.fresh (Sym.base s) })
      | _ -> Keep { dom = d; inner = Sym.fresh (Sym.base s) })
    dims idxs

let any_tiled plans = List.exists (function Tile _ -> true | Keep _ -> false) plans

let index_subst plans idxs =
  List.fold_left2
    (fun m plan s ->
      match plan with
      | Tile { tile; ii; inner; _ } ->
          Sym.Map.add s
            (Prim (Add, [ Prim (Mul, [ Var ii; Ci tile ]); Var inner ]))
            m
      | Keep { inner; _ } -> Sym.Map.add s (Var inner) m)
    Sym.Map.empty plans idxs

let outer_doms plans =
  List.filter_map
    (function
      | Tile { total; tile; ii; _ } -> Some (Dtiles { total; tile }, ii)
      | Keep _ -> None)
    plans

let inner_dom = function
  | Tile { total; tile; ii; _ } -> Dtail { total; tile; outer = ii }
  | Keep { dom; _ } -> dom

let inner_idx = function Tile { inner; _ } | Keep { inner; _ } -> inner

let dim_total = function
  | Dfull e -> e
  | Dtiles { total; _ } | Dtail { total; _ } -> total

let plan_total = function
  | Tile { total; _ } -> total
  | Keep { dom; _ } -> dim_total dom

(* --------------------------------------------------------------- *)
(* The transformation                                               *)
(* --------------------------------------------------------------- *)

let rec sm ctx e =
  match e with
  | Var _ | Cf _ | Ci _ | Cb _ | EmptyArr _ | Zeros _ -> e
  | Tup _ | Proj _ | Prim _ | If _ | Len _ | Read _ | Slice _ | Copy _
  | ArrLit _ ->
      Rewrite.map_children (sm ctx) e
  | Let (s, e1, e2) ->
      let t1 = infer ctx e1 in
      Let (s, sm ctx e1, sm (add_ty ctx s t1) e2)
  | Map m -> sm_map ctx m
  | Fold f -> sm_fold ctx f
  | MultiFold mf -> sm_multifold ctx mf
  | FlatMap fm -> sm_flatmap ctx fm
  | GroupByFold g -> sm_groupbyfold ctx g

(* Combine functions are merge operators, not data-parallel loops over
   main-memory data: they never benefit from tiling (their operands are
   already on-chip accumulators) and localization must be able to
   recognize their elementwise structure, so they are left untouched. *)
and sm_comb _ctx _acc_t c = c

(* T[Map]: MultiFold over tiles writing rectangular regions, each holding
   an inner Map over one tile (Table 1, first rule). *)
and sm_map ctx ({ mdims; midxs; mbody; mprov } as m) =
  let ctx_body = add_idxs ctx midxs in
  let body' = sm ctx_body mbody in
  let plans = plan_dims ctx mdims midxs in
  if not (any_tiled plans) then Map { m with mbody = body' }
  else begin
    let elt = infer ctx_body mbody in
    let sigma = index_subst plans midxs in
    let inner_map =
      Map
        { mdims = List.map inner_dom plans;
          midxs = List.map inner_idx plans;
          mbody = Ir.subst sigma body';
          mprov = Prov.push mprov "strip_mine.tile" }
    in
    let range = List.map plan_total plans in
    let region =
      List.map
        (function
          | Tile { tile; ii; _ } as p ->
              ( Prim (Mul, [ Var ii; Ci tile ]),
                dom_size (inner_dom p),
                Some tile )
          | Keep { dom; _ } ->
              (Ci 0, dim_total dom, ctx.bound (dim_total dom)))
        plans
    in
    MultiFold
      { odims = List.map fst (outer_doms plans);
        oidxs = List.map snd (outer_doms plans);
        oinit = Zeros (elt, range);
        olets = [];
        oouts =
          [ { orange = range;
              oregion = region;
              oacc = Sym.fresh "acc";
              oupd = inner_map } ];
        ocomb = None;
        oprov = Prov.push mprov "strip_mine" }
  end

(* T[Fold]: strided fold of per-tile folds, merged with the combine
   function (Table 1, second rule restricted to whole-accumulator
   updates). *)
and sm_fold ctx { fdims; fidxs; finit; facc; fupd; fcomb; fprov } =
  let acc_t = infer ctx finit in
  let finit' = sm ctx finit in
  let ctx_body = add_ty (add_idxs ctx fidxs) facc acc_t in
  let fupd' = sm ctx_body fupd in
  let fcomb' = sm_comb ctx acc_t fcomb in
  let plans = plan_dims ctx fdims fidxs in
  if not (any_tiled plans) then
    Fold
      { fdims; fidxs; finit = finit'; facc; fupd = fupd'; fcomb = fcomb';
        fprov }
  else begin
    let sigma = index_subst plans fidxs in
    let inner =
      Fold
        { fdims = List.map inner_dom plans;
          fidxs = List.map inner_idx plans;
          finit = Ir.rename_binders finit';
          facc;
          fupd = Ir.subst sigma fupd';
          fcomb = Combs.rename fcomb';
          fprov = Prov.push fprov "strip_mine.tile" }
    in
    let acc_o = Sym.fresh (Sym.base facc) in
    Fold
      { fdims = List.map fst (outer_doms plans);
        fidxs = List.map snd (outer_doms plans);
        finit = finit';
        facc = acc_o;
        fupd = comb_apply (Combs.rename fcomb') (Var acc_o) inner;
        fcomb = fcomb';
        fprov = Prov.push fprov "strip_mine" }
  end

and sm_multifold ctx ({ odims; oidxs; oinit; olets; oouts; ocomb; oprov } as mf) =
  let init_t = infer ctx oinit in
  let comp_tys =
    match (init_t, oouts) with
    | Ty.Tuple ts, _ :: _ :: _ -> ts
    | t, _ -> [ t ]
  in
  let oinit' = sm ctx oinit in
  let ctx_i = add_idxs ctx oidxs in
  (* transform shared bindings left to right, extending the environment *)
  let ctx_i, olets' =
    List.fold_left
      (fun (c, acc) (s, e1) ->
        let t1 = infer c e1 in
        (add_ty c s t1, (s, sm c e1) :: acc))
      (ctx_i, []) olets
  in
  let olets' = List.rev olets' in
  let oouts' =
    List.map2
      (fun out comp_t ->
        let elt =
          match comp_t with Ty.Array (elt, _) -> elt | t -> t
        in
        let unit_region =
          List.for_all (fun (_, l, _) -> l = Ci 1) out.oregion
        in
        let acc_t =
          if out.oregion = [] || unit_region then elt
          else Ty.Array (elt, List.length out.oregion)
        in
        { out with
          oregion = List.map (fun (o, l, b) -> (sm ctx_i o, sm ctx_i l, b)) out.oregion;
          oupd = sm (add_ty ctx_i out.oacc acc_t) out.oupd })
      oouts comp_tys
  in
  let ocomb' = Option.map (sm_comb ctx init_t) ocomb in
  let plans = plan_dims ctx odims oidxs in
  if not (any_tiled plans) then
    MultiFold { mf with oinit = oinit'; olets = olets'; oouts = oouts'; ocomb = ocomb' }
  else
    match ocomb' with
    | None -> flatten_multifold oprov plans oidxs oinit' olets' oouts'
    | Some comb' -> (
        match localizable oprov ctx plans oidxs oinit' oouts' comb' with
        | Some result -> result
        | None ->
            fold_of_multifold oprov plans oidxs oinit' olets' oouts' comb')

(* Combine-less MultiFold: equivalent flattened form with [Dtiles; Dtail]
   dimension pairs. *)
and flatten_multifold oprov plans oidxs oinit' olets' oouts' =
  let sigma = index_subst plans oidxs in
  let dims, idxs =
    List.fold_right
      (fun plan (ds, is_) ->
        match plan with
        | Tile { total; tile; ii; inner } ->
            ( Dtiles { total; tile } :: Dtail { total; tile; outer = ii } :: ds,
              ii :: inner :: is_ )
        | Keep { dom; inner } -> (dom :: ds, inner :: is_))
      plans ([], [])
  in
  MultiFold
    { odims = dims;
      oidxs = idxs;
      oinit = oinit';
      olets = List.map (fun (s, e1) -> (s, Ir.subst sigma e1)) olets';
      oouts =
        List.map
          (fun out ->
            { out with
              oregion =
                List.map
                  (fun (o, l, b) -> (Ir.subst sigma o, Ir.subst sigma l, b))
                  out.oregion;
              oupd = Ir.subst sigma out.oupd })
          oouts';
      ocomb = None;
      oprov = Prov.push oprov "strip_mine" }

(* MultiFold with a combine whose updates cannot be localized: strided Fold
   of per-tile MultiFolds (the k-means shape, Fig. 5a). *)
and fold_of_multifold oprov plans oidxs oinit' olets' oouts' comb' =
  let sigma = index_subst plans oidxs in
  let inner =
    MultiFold
      { odims = List.map inner_dom plans;
        oidxs = List.map inner_idx plans;
        oinit = Ir.rename_binders oinit';
        olets = List.map (fun (s, e1) -> (s, Ir.subst sigma e1)) olets';
        oouts =
          List.map
            (fun out ->
              { out with
                oregion =
                  List.map
                    (fun (o, l, b) -> (Ir.subst sigma o, Ir.subst sigma l, b))
                    out.oregion;
                oupd = Ir.subst sigma out.oupd })
            oouts';
        ocomb = Some comb';
        oprov = Prov.push oprov "strip_mine.tile" }
  in
  let acc_o = Sym.fresh "acc" in
  Fold
    { fdims = List.map fst (outer_doms plans);
      fidxs = List.map snd (outer_doms plans);
      finit = oinit';
      facc = acc_o;
      fupd = comb_apply (Combs.rename comb') (Var acc_o) inner;
      fcomb = Combs.rename comb';
      fprov = Prov.push oprov "strip_mine" }

(* Accumulator localization (Table 2, sumrows): when the single output's
   update regions are unit regions addressed exactly by tiled indices and
   the combine is elementwise, the inner MultiFold reduces into a
   tile-sized accumulator and the outer writes tile slices. *)
and localizable oprov ctx plans oidxs oinit' oouts' comb' =
  match (oouts', Combs.elementwise comb') with
  | [ out ], Some build -> (
      match oinit' with
      | Zeros (elt_ty, _) ->
          let plan_of_idx s =
            let rec go plans idxs =
              match (plans, idxs) with
              | p :: ps, i :: is_ ->
                  if Sym.equal i s then Some p else go ps is_
              | _ -> None
            in
            go plans oidxs
          in
          let classify (off, len, _) =
            if len = Ci 1 then
              match off with
              | Var s -> (
                  match plan_of_idx s with
                  | Some (Tile _ as p) -> `Ltile p
                  | _ -> `Lfull)
              | _ -> `Lfull
            else `Lfull
          in
          let classes = List.map classify out.oregion in
          if
            not
              (List.exists (function `Ltile _ -> true | `Lfull -> false) classes)
          then None
          else begin
            let sigma = index_subst plans oidxs in
            (* full localized shape, one entry per range dimension *)
            let inner_shape =
              List.map2
                (fun cls (range_e : exp) ->
                  match cls with
                  | `Ltile p -> dom_size (inner_dom p)
                  | `Lfull -> range_e)
                classes out.orange
            in
            let inner_region =
              List.map2
                (fun cls (o, l, b) ->
                  match cls with
                  | `Ltile p -> (Var (inner_idx p), Ci 1, Some 1)
                  | `Lfull -> (Ir.subst sigma o, Ir.subst sigma l, b))
                classes out.oregion
            in
            let inner =
              MultiFold
                { odims = List.map inner_dom plans;
                  oidxs = List.map inner_idx plans;
                  oinit = Zeros (elt_ty, inner_shape);
                  olets = [];
                  oouts =
                    [ { orange = inner_shape;
                        oregion = inner_region;
                        oacc = out.oacc;
                        oupd = Ir.subst sigma out.oupd } ];
                  ocomb =
                    Some
                      (let a = Sym.fresh "a" and b = Sym.fresh "b" in
                       { ca = a;
                         cb = b;
                         cbody = build inner_shape (Var a) (Var b) });
                  oprov = Prov.push oprov "strip_mine.tile" }
            in
            let outer_region =
              List.map2
                (fun cls (range_e : exp) ->
                  match cls with
                  | `Ltile (Tile { tile; ii; _ } as p) ->
                      ( Prim (Mul, [ Var ii; Ci tile ]),
                        dom_size (inner_dom p),
                        Some tile )
                  | `Ltile (Keep _) -> assert false
                  | `Lfull -> (Ci 0, range_e, ctx.bound range_e))
                classes out.orange
            in
            let oacc2 = Sym.fresh "acc" in
            Some
              (MultiFold
                 { odims = List.map fst (outer_doms plans);
                   oidxs = List.map snd (outer_doms plans);
                   oinit = oinit';
                   olets = [];
                   oouts =
                     [ { orange = out.orange;
                         oregion = outer_region;
                         oacc = oacc2;
                         oupd = build inner_shape (Var oacc2) inner } ];
                   ocomb = Some (Combs.rename comb');
                   oprov = Prov.push oprov "strip_mine" })
          end
      | _ -> None)
  | _ -> None

(* T[FlatMap]: FlatMap over tiles of FlatMaps over one tile (Table 1). *)
and sm_flatmap ctx { fmdim; fmidx; fmbody; fmprov } =
  let body' = sm (add_idxs ctx [ fmidx ]) fmbody in
  match plan_dims ctx [ fmdim ] [ fmidx ] with
  | [ Tile { total; tile; ii; inner } ] ->
      let sigma =
        Sym.Map.singleton fmidx
          (Prim (Add, [ Prim (Mul, [ Var ii; Ci tile ]); Var inner ]))
      in
      FlatMap
        { fmdim = Dtiles { total; tile };
          fmidx = ii;
          fmbody =
            FlatMap
              { fmdim = Dtail { total; tile; outer = ii };
                fmidx = inner;
                fmbody = Ir.subst sigma body';
                fmprov = Prov.push fmprov "strip_mine.tile" };
          fmprov = Prov.push fmprov "strip_mine" }
  | _ -> FlatMap { fmdim; fmidx; fmbody = body'; fmprov }

(* T[GroupByFold]: flattened tiled form (Table 1's nested form merges
   buckets tile-wise with the same combine; the flattened form streams the
   same elements through the same buckets). *)
and sm_groupbyfold ctx
    { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; gprov } =
  let v_t = infer ctx ginit in
  let ginit' = sm ctx ginit in
  let ctx_i = add_idxs ctx gidxs in
  let ctx_i, glets' =
    List.fold_left
      (fun (c, acc) (s, e1) ->
        let t1 = infer c e1 in
        (add_ty c s t1, (s, sm c e1) :: acc))
      (ctx_i, []) glets
  in
  let glets' = List.rev glets' in
  let gkey' = sm ctx_i gkey in
  let gupd' = sm (add_ty ctx_i gacc v_t) gupd in
  let gcomb' = sm_comb ctx v_t gcomb in
  let plans = plan_dims ctx gdims gidxs in
  if not (any_tiled plans) then
    GroupByFold
      { gdims; gidxs; ginit = ginit'; glets = glets'; gkey = gkey'; gacc;
        gupd = gupd'; gcomb = gcomb'; gprov }
  else begin
    let sigma = index_subst plans gidxs in
    let dims, idxs =
      List.fold_right
        (fun plan (ds, is_) ->
          match plan with
          | Tile { total; tile; ii; inner } ->
              ( Dtiles { total; tile } :: Dtail { total; tile; outer = ii } :: ds,
                ii :: inner :: is_ )
          | Keep { dom; inner } -> (dom :: ds, inner :: is_))
        plans ([], [])
    in
    GroupByFold
      { gdims = dims;
        gidxs = idxs;
        ginit = ginit';
        glets = List.map (fun (s, e1) -> (s, Ir.subst sigma e1)) glets';
        gkey = Ir.subst sigma gkey';
        gacc;
        gupd = Ir.subst sigma gupd';
        gcomb = gcomb';
        gprov = Prov.push gprov "strip_mine" }
  end

let exp ~tiles ~tenv ~bound e = sm { tiles; tenv; bound } e

let program ~tiles (p : program) =
  ignore (Validate.check_program p);
  let tenv = Validate.initial_env p in
  let bound e =
    match e with
    | Ci c -> Some c
    | Var s -> Ir.max_sizes_bound p s
    | _ -> None
  in
  { p with body = exp ~tiles ~tenv ~bound p.body }
