let trip_str t = Format.asprintf "%a" Hw.pp_trip t

let trips_str trips =
  "{" ^ String.concat ", " (List.map trip_str trips) ^ "}"

let mem_decl buf (m : Hw.mem) =
  let ctor =
    match m.Hw.kind with
    | Hw.Buffer -> "mem.alloc"
    | Hw.Double_buffer -> "mem.allocDouble"
    | Hw.Cache -> "mem.allocCache"
    | Hw.Fifo -> "mem.allocFIFO"
    | Hw.Cam -> "mem.allocCAM"
    | Hw.Reg -> "dfe.reg"
  in
  Buffer.add_string buf
    (Printf.sprintf
       "    Memory %s = %s(dfeFloat(8, %d), /*depth*/ %d, /*banks*/ %d); // R:%d W:%d\n"
       m.Hw.mem_name ctor m.Hw.width_bits m.Hw.depth m.Hw.banks m.Hw.readers
       m.Hw.writers)

(* Java-ish rendering of a datapath expression, for the generated kernel's
   dataflow comment.  Deliberately shallow: deep nests elide to [...]. *)
let rec java_of_exp ?(depth = 4) (e : Ir.exp) =
  if depth = 0 then "..."
  else
    let go = java_of_exp ~depth:(depth - 1) in
    match e with
    | Ir.Var s -> Sym.name s
    | Ir.Cf f -> Printf.sprintf "constant.var(%g)" f
    | Ir.Ci i -> string_of_int i
    | Ir.Cb b -> string_of_bool b
    | Ir.Read (a, idxs) ->
        Printf.sprintf "%s.read(%s)" (go a)
          (String.concat ", " (List.map go idxs))
    | Ir.Prim (p, args) -> (
        let args' = List.map go args in
        match (p, args') with
        | Ir.Add, [ a; b ] -> Printf.sprintf "(%s + %s)" a b
        | Ir.Sub, [ a; b ] -> Printf.sprintf "(%s - %s)" a b
        | Ir.Mul, [ a; b ] -> Printf.sprintf "(%s * %s)" a b
        | Ir.Div, [ a; b ] -> Printf.sprintf "(%s / %s)" a b
        | Ir.Lt, [ a; b ] -> Printf.sprintf "(%s < %s)" a b
        | Ir.Le, [ a; b ] -> Printf.sprintf "(%s <= %s)" a b
        | Ir.Gt, [ a; b ] -> Printf.sprintf "(%s > %s)" a b
        | Ir.Ge, [ a; b ] -> Printf.sprintf "(%s >= %s)" a b
        | Ir.Eq, [ a; b ] -> Printf.sprintf "(%s === %s)" a b
        | Ir.Min, [ a; b ] -> Printf.sprintf "KernelMath.min(%s, %s)" a b
        | Ir.Max, [ a; b ] -> Printf.sprintf "KernelMath.max(%s, %s)" a b
        | Ir.Sqrt, [ a ] -> Printf.sprintf "KernelMath.sqrt(%s)" a
        | Ir.Exp, [ a ] -> Printf.sprintf "KernelMath.exp(%s)" a
        | _, args' ->
            Printf.sprintf "%s(%s)"
              (String.lowercase_ascii
                 (match p with
                 | Ir.Mod -> "mod" | Ir.Neg -> "neg" | Ir.Abs -> "abs"
                 | Ir.Log -> "log" | Ir.Ne -> "neq" | Ir.And -> "and"
                 | Ir.Or -> "or" | Ir.Not -> "not" | Ir.ToFloat -> "cast"
                 | Ir.ToInt -> "cast" | _ -> "op"))
              (String.concat ", " args'))
    | Ir.If (c, t, f) ->
        Printf.sprintf "(%s ? %s : %s)" (go c) (go t) (go f)
    | Ir.Let (s, e1, e2) ->
        Printf.sprintf "let %s = %s in %s" (Sym.name s) (go e1) (go e2)
    | Ir.Tup es -> Printf.sprintf "{%s}" (String.concat ", " (List.map go es))
    | Ir.Proj (e1, i) -> Printf.sprintf "%s[%d]" (go e1) i
    | _ -> "..."

let template_ctor = function
  | Hw.Vector -> "VectorUnit"
  | Hw.Tree -> "ReductionTree"
  | Hw.Fifo_write -> "ParallelFIFO"
  | Hw.Cam_update -> "CAMUpdate"
  | Hw.Scalar_unit -> "ScalarUnit"

let rec emit_ctrl buf indent c =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match c with
  | Hw.Seq { name; children; _ } ->
      line "SequentialController %s = control.sequential(() -> {" name;
      List.iter (emit_ctrl buf (indent + 2)) children;
      line "});"
  | Hw.Par { name; children; _ } ->
      line "ParallelController %s = control.parallel(() -> {" name;
      List.iter (emit_ctrl buf (indent + 2)) children;
      line "});"
  | Hw.Loop { name; trips; meta; stages; _ } ->
      line "%s %s = control.%s(%s, () -> {"
        (if meta then "Metapipeline" else "LoopController")
        name
        (if meta then "metapipeline" else "loop")
        (trips_str trips);
      List.iter (emit_ctrl buf (indent + 2)) stages;
      line "});"
  | Hw.Pipe { name; trips; template; par; depth; ii; ops; uses; defines; dram; body; _ }
    ->
      line "%s %s = compute.%s(%s)" (template_ctor template) name
        (String.uncapitalize_ascii (template_ctor template))
        (trips_str trips);
      (match body with
      | Some b ->
          line "    // dataflow: %s"
            (String.concat " " (String.split_on_char '\n' (java_of_exp b)))
      | None -> ());
      line "    .parallelism(%d).depth(%d).ii(%d)" par depth ii;
      line "    .ops(/*fp*/ %d, /*cmp*/ %d, /*int*/ %d)" ops.Hw.flops
        ops.Hw.cmp_ops ops.Hw.int_ops;
      if uses <> [] then line "    .reads(%s)" (String.concat ", " uses);
      if defines <> [] then line "    .writes(%s)" (String.concat ", " defines);
      List.iter
        (fun da ->
          line "    .dramStream(\"%s\", %s)" da.Hw.da_array
            (match da.Hw.da_kind with
            | `Read -> if da.Hw.da_contiguous then "BURST_READ" else "STRIDED_READ"
            | `Cached -> "CACHED_READ"
            | `Write -> "BURST_WRITE"))
        dram;
      line "    ;"
  | Hw.Tile_load { name; mem; array; words; reuse; _ } ->
      line
        "TileMemoryCommand %s = mem.tileLoad(\"%s\", %s, /*words*/ %s%s);"
        name array mem (trip_str words)
        (if reuse > 1 then Printf.sprintf ", /*reuse*/ %d" reuse else "")
  | Hw.Tile_store { name; mem; array; words; _ } ->
      line "TileMemoryCommand %s = mem.tileStore(\"%s\", %s, /*words*/ %s);"
        name array
        (match mem with Some m -> m | None -> "STREAM")
        (trip_str words)

let emit (d : Hw.design) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// Generated by ppl-fpga; MaxJ-like HGL\n\
                     class %sKernel extends Kernel {\n\
                    \  %sKernel(KernelParameters params) {\n\
                    \    super(params); // par_factor = %d\n\n"
       (String.capitalize_ascii d.Hw.design_name)
       (String.capitalize_ascii d.Hw.design_name)
       d.Hw.par_factor);
  Buffer.add_string buf "    // -- on-chip memories (Table 4) --\n";
  List.iter (mem_decl buf) d.Hw.mems;
  Buffer.add_string buf "\n    // -- controller hierarchy --\n";
  emit_ctrl buf 4 d.Hw.top;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let pp fmt d = Format.pp_print_string fmt (emit d)
