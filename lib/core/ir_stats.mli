(** Structural statistics of a PPL program — what each transformation did
    to the IR, in numbers (used by the CLI's [stats] command and handy in
    regression tests). *)

type t = {
  nodes : int;
  maps : int;
  folds : int;
  multifolds : int;
  flatmaps : int;
  groupbyfolds : int;
  copies : int;  (** explicit tile copies *)
  strided_loops : int;  (** [Dtiles] domains *)
  lets : int;
  max_nest : int;  (** deepest pattern nesting *)
}

val of_exp : Ir.exp -> t
val of_program : Ir.program -> t
val pp : Format.formatter -> t -> unit
val header : string
val row : string -> t -> string
