type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  path : string list;
  where : string;
  message : string;
}

let make ?(path = []) ~code ~severity ~where fmt =
  Printf.ksprintf
    (fun message -> { code; severity; path; where; message })
    fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Codes are an alphabetic family plus a number ("HW101", "PPL230");
   plain string comparison would order "HW101" before "HW90" and make
   mixed HW+PPL lists depend on zero padding, so split and compare the
   numeric part as a number.  Codes that do not fit the pattern fall
   back to string order after the well-formed ones. *)
let split_code c =
  let n = String.length c in
  let rec alpha i =
    if i < n && (c.[i] < '0' || c.[i] > '9') then alpha (i + 1) else i
  in
  let k = alpha 0 in
  if k = n then (String.sub c 0 k, -1)
  else
    match int_of_string_opt (String.sub c k (n - k)) with
    | Some num -> (String.sub c 0 k, num)
    | None -> (c, -1)

let compare_codes a b =
  let pa, na = split_code a and pb, nb = split_code b in
  match String.compare pa pb with
  | 0 -> ( match Int.compare na nb with 0 -> String.compare a b | c -> c)
  | c -> c

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match compare_codes a.code b.code with
      | 0 -> (
          match
            Stdlib.compare (a.path @ [ a.where ]) (b.path @ [ b.where ])
          with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  match
    List.filter_map
      (fun (s, word) ->
        let n = count s in
        if n = 0 then None else Some (plural n word))
      [ (Error, "error"); (Warning, "warning"); (Info, "info") ]
  with
  | [] -> "clean"
  | parts -> String.concat ", " parts

let pp_path fmt = function
  | [] -> ()
  | path -> Format.fprintf fmt " [%s]" (String.concat "/" path)

let pp fmt d =
  Format.fprintf fmt "%s %s%a: %s: %s" d.code (severity_name d.severity)
    pp_path d.path d.where d.message

let pp_list fmt ds =
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) (List.sort compare ds)

(* hand-rolled JSON: the repo carries no JSON library and the shape is
   flat, so escaping strings is the only subtlety *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"code\": %s, \"severity\": %s, \"path\": [%s], \"where\": %s, \
     \"message\": %s}"
    (json_string d.code)
    (json_string (severity_name d.severity))
    (String.concat ", " (List.map json_string d.path))
    (json_string d.where)
    (json_string d.message)

let list_to_json ds =
  "[" ^ String.concat ", " (List.map to_json (List.sort compare ds)) ^ "]"
