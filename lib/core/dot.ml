let mem_color = function
  | Hw.Buffer -> "lightyellow"
  | Hw.Double_buffer -> "khaki"
  | Hw.Cache -> "lightsalmon"
  | Hw.Fifo -> "lightcyan"
  | Hw.Cam -> "plum"
  | Hw.Reg -> "white"

let esc s = String.map (fun c -> if c = '"' then '\'' else c) s

let emit (d : Hw.design) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "digraph %s {" (esc d.Hw.design_name);
  line "  rankdir=TB; node [fontname=\"Helvetica\", fontsize=10];";
  (* memories *)
  List.iter
    (fun m ->
      line "  \"%s\" [shape=box3d, style=filled, fillcolor=%s, label=\"%s\\n%s %dx%db\"];"
        (esc m.Hw.mem_name) (mem_color m.Hw.kind) (esc m.Hw.mem_name)
        (Hw_pp.mem_kind_name m.Hw.kind) m.Hw.depth m.Hw.width_bits)
    d.Hw.mems;
  (* controllers as clusters; pipes/loads/stores as nodes *)
  let counter = ref 0 in
  let rec go indent c =
    let pad = String.make indent ' ' in
    match c with
    | Hw.Seq { name; children; _ } | Hw.Par { name; children; _ } ->
        incr counter;
        line "%ssubgraph cluster_%d {" pad !counter;
        line "%s  label=\"%s (%s)\"; style=dashed;" pad (esc name)
          (match c with Hw.Par _ -> "parallel" | _ -> "sequential");
        List.iter (go (indent + 2)) children;
        line "%s}" pad
    | Hw.Loop { name; meta; stages; trips; _ } ->
        incr counter;
        line "%ssubgraph cluster_%d {" pad !counter;
        line "%s  label=\"%s (%s, trips=%s)\"; style=%s; color=%s;" pad
          (esc name)
          (if meta then "metapipeline" else "loop")
          (esc
             (String.concat "x"
                (List.map (fun t -> Format.asprintf "%a" Hw.pp_trip t) trips)))
          (if meta then "bold" else "solid")
          (if meta then "blue" else "black");
        List.iter (go (indent + 2)) stages;
        line "%s}" pad
    | Hw.Pipe { name; template; uses; defines; _ } ->
        line "%s\"%s\" [shape=component, label=\"%s\\n[%s]\"];" pad (esc name)
          (esc name) (Hw_pp.template_name template);
        List.iter (fun m -> line "%s\"%s\" -> \"%s\";" pad (esc m) (esc name)) uses;
        List.iter (fun m -> line "%s\"%s\" -> \"%s\";" pad (esc name) (esc m)) defines
    | Hw.Tile_load { name; mem; array; _ } ->
        line "%s\"%s\" [shape=cds, style=filled, fillcolor=lightblue, label=\"%s\"];"
          pad (esc name) (esc name);
        line "%s\"dram_%s\" [shape=cylinder, label=\"DRAM %s\"];" pad (esc array)
          (esc array);
        line "%s\"dram_%s\" -> \"%s\" -> \"%s\";" pad (esc array) (esc name) (esc mem)
    | Hw.Tile_store { name; mem; array; _ } ->
        line "%s\"%s\" [shape=cds, style=filled, fillcolor=lightpink, label=\"%s\"];"
          pad (esc name) (esc name);
        line "%s\"dram_%s\" [shape=cylinder, label=\"DRAM %s\"];" pad (esc array)
          (esc array);
        (match mem with
        | Some m -> line "%s\"%s\" -> \"%s\" -> \"dram_%s\";" pad (esc m) (esc name) (esc array)
        | None -> line "%s\"%s\" -> \"dram_%s\";" pad (esc name) (esc array))
  in
  go 2 d.Hw.top;
  line "}";
  Buffer.contents buf
