open Ir

(* ------------------------------------------------------------------ *)
(* Candidate interval analysis                                         *)
(*                                                                     *)
(* Bounds are affine forms over size parameters and loop indices; a     *)
(* value may have several sound candidates (min produces one per        *)
(* operand).  [close] then eliminates loop indices innermost-first by   *)
(* substituting their own bounds, which discharges the relational       *)
(* [ii*b + i <= total-1] facts exactly: the Dtail extent candidate      *)
(* [total - ii*tile] cancels the [ii*tile] term.                        *)
(* ------------------------------------------------------------------ *)

(* loop environment: innermost last *)
type loop = { lsym : Sym.t; dom : dom; depth : int }

type env = loop list

let top = []
let enter env s d = env @ [ { lsym = s; dom = d; depth = List.length env } ]

let cap = 6
let take_cap l = List.filteri (fun i _ -> i < cap) l

let cross f xs ys =
  take_cap (List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs)

(* upper/lower bound candidates of an expression, as affine forms over
   size params and loop syms.  None = unknown. *)
let rec ub_cands e : Affine.t list option =
  match e with
  | Ci c -> Some [ Affine.const c ]
  | Var s -> Some [ Affine.var s ]
  | Prim (Add, [ a; b ]) -> map2 Affine.add (ub_cands a) (ub_cands b)
  | Prim (Sub, [ a; b ]) -> map2 Affine.sub (ub_cands a) (lb_cands b)
  | Prim (Mul, [ a; Ci c ]) | Prim (Mul, [ Ci c; a ]) ->
      let base = if c >= 0 then ub_cands a else lb_cands a in
      Option.map (List.map (Affine.scale c)) base
  | Prim (Min, [ a; b ]) -> (
      (* any upper bound of either operand bounds the min *)
      match (ub_cands a, ub_cands b) with
      | Some xs, Some ys -> Some (take_cap (xs @ ys))
      | Some xs, None | None, Some xs -> Some xs
      | None, None -> None)
  | Prim (Max, [ a; b ]) -> (
      (* only sound when one side provably dominates; constants only *)
      match (ub_cands a, ub_cands b) with
      | Some [ x ], Some [ y ] when Affine.is_const x && Affine.is_const y ->
          Some [ (if x.Affine.const >= y.Affine.const then x else y) ]
      | _ -> None)
  | _ -> None

and lb_cands e : Affine.t list option =
  match e with
  | Ci c -> Some [ Affine.const c ]
  | Var s -> Some [ Affine.var s ]
  | Prim (Add, [ a; b ]) -> map2 Affine.add (lb_cands a) (lb_cands b)
  | Prim (Sub, [ a; b ]) -> map2 Affine.sub (lb_cands a) (ub_cands b)
  | Prim (Mul, [ a; Ci c ]) | Prim (Mul, [ Ci c; a ]) ->
      let base = if c >= 0 then lb_cands a else ub_cands a in
      Option.map (List.map (Affine.scale c)) base
  | Prim (Min, [ a; b ]) -> (
      match (lb_cands a, lb_cands b) with
      | Some [ x ], Some [ y ] when Affine.is_const x && Affine.is_const y ->
          Some [ (if x.Affine.const <= y.Affine.const then x else y) ]
      | _ -> None)
  | _ -> None

and map2 f a b =
  match (a, b) with Some xs, Some ys -> Some (cross f xs ys) | _ -> None

(* loop-index bounds, as candidate affines over outer syms / sizes *)
let idx_ub (l : loop) : Affine.t list option =
  match l.dom with
  | Dfull e ->
      Option.map (List.map (fun a -> Affine.sub a (Affine.const 1))) (ub_cands e)
  | Dtiles { total; tile } ->
      (* idx <= ceil(total/tile) - 1, hence idx*tile <= total - 1; encode
         the useful scaled form by giving idx the ub (total-1)/tile is not
         affine — instead expose candidate (total - 1) for idx*tile via
         the closure: approximate idx <= (total - 1) / tile by providing
         total - 1 scaled at substitution time is not expressible, so we
         provide the exact fact used by tiled code: see [close]. *)
      Option.map
        (List.map (fun a -> Affine.sub a (Affine.const 1)))
        (ub_cands (Prim (Div, [ Prim (Add, [ total; Ci (tile - 1) ]); Ci tile ])))
  | Dtail { total; tile; outer } ->
      (* extent = min(tile, total - outer*tile); idx <= extent - 1 *)
      Option.map
        (List.map (fun a -> Affine.sub a (Affine.const 1)))
        (ub_cands
           (Prim
              ( Min,
                [ Ci tile;
                  Prim (Sub, [ total; Prim (Mul, [ Var outer; Ci tile ]) ]) ] )))

let idx_lb (_ : loop) : Affine.t list option = Some [ Affine.const 0 ]

(* For Dtiles indices the usable fact is [idx * tile <= total - 1]; the
   generic ub above is not affine (ceil).  [tiles_scaled_ub loops s c]
   returns the bound for the term [c * s] when [s] is a Dtiles index and
   [c] is a positive multiple of its tile. *)
let tiles_scaled_ub (l : loop) c =
  match l.dom with
  | Dtiles { total; tile } when c mod tile = 0 && c > 0 ->
      (* s <= ceil(total/tile) - 1  ==>  s*tile <= total - 1 (total >= 1);
         s*c = (c/tile) * (s*tile) <= (c/tile) * (total - 1) *)
      Option.map
        (List.map (fun a ->
             Affine.scale (c / tile) (Affine.sub a (Affine.const 1))))
        (ub_cands total)
  | _ -> None

(* Eliminate loop syms from a candidate, innermost first.  [upper] selects
   the polarity: when closing an upper-bound candidate, positive
   coefficients substitute the index's upper bound (and vice versa for
   lower-bound candidates). *)
let rec close ~upper (loops : loop list) (aff : Affine.t) : Affine.t list =
  let loop_of s = List.find_opt (fun l -> Sym.equal l.lsym s) loops in
  (* find the deepest loop sym present *)
  let deepest =
    Sym.Set.fold
      (fun s best ->
        match loop_of s with
        | Some l -> (
            match best with
            | Some b when b.depth >= l.depth -> best
            | _ -> Some l)
        | None -> best)
      (Affine.syms aff) None
  in
  match deepest with
  | None -> [ aff ]
  | Some l ->
      let c = Affine.coeff aff l.lsym in
      let rest = Affine.sub aff (Affine.scale c (Affine.var l.lsym)) in
      let want_ub = if upper then c > 0 else c < 0 in
      let bound_cands =
        if want_ub then
          match (if c > 0 then tiles_scaled_ub l c else None) with
          | Some scaled ->
              (* scaled candidates already include the factor c *)
              Some (List.map (fun b -> (b, 1)) scaled)
          | None -> Option.map (List.map (fun b -> (b, c))) (idx_ub l)
        else Option.map (List.map (fun b -> (b, c))) (idx_lb l)
      in
      (match bound_cands with
      | None -> []
      | Some cands ->
          take_cap
            (List.concat_map
               (fun (b, factor) ->
                 close ~upper loops (Affine.add rest (Affine.scale factor b)))
               cands))

(* e provably <= limit (an affine over size params) for all sizes >= 0 *)
let prove_le loops e limit =
  match ub_cands e with
  | None -> `Unknown
  | Some cands ->
      let closed = List.concat_map (close ~upper:true loops) cands in
      let ok a =
        let diff = Affine.sub a limit in
        diff.Affine.const <= 0
        && List.for_all (fun (_, c) -> c <= 0) diff.Affine.terms
      in
      if List.exists ok closed then `Proven
      else if
        (* definite violation only in the fully constant case *)
        List.for_all Affine.is_const closed
        && Affine.is_const limit && closed <> []
        && List.for_all
             (fun (a : Affine.t) -> a.Affine.const > limit.Affine.const)
             closed
      then `Violated
      else `Unknown

let prove_ge loops e k =
  match lb_cands e with
  | None -> `Unknown
  | Some cands ->
      let closed = List.concat_map (close ~upper:false loops) cands in
      let ok (a : Affine.t) =
        a.Affine.const >= k && List.for_all (fun (_, c) -> c >= 0) a.Affine.terms
      in
      if List.exists ok closed then `Proven
      else if
        List.for_all Affine.is_const closed && closed <> []
        && List.for_all (fun (a : Affine.t) -> a.Affine.const < k) closed
      then `Violated
      else `Unknown

let prove_ge0 loops e = prove_ge loops e 0

(* ------------------------------------------------------------------ *)
(* Obligation collection                                               *)
(* ------------------------------------------------------------------ *)

let audit (p : program) =
  let shapes = List.map (fun i -> (i.iname, i.ishape)) p.inputs in
  let diags = ref [] in
  let checked = ref 0 in
  let emit array what verdicts =
    incr checked;
    if List.exists (function `Violated -> true | _ -> false) verdicts then
      diags :=
        Diagnostic.make ~code:"PPL231" ~severity:Diagnostic.Error
          ~where:(Sym.name array) "%s: index provably out of range" what
        :: !diags
    else if List.exists (function `Unknown -> true | _ -> false) verdicts then
      diags :=
        Diagnostic.make ~code:"PPL230" ~severity:Diagnostic.Warning
          ~where:(Sym.name array)
          "%s: not provable (data-dependent or non-affine index)" what
        :: !diags
  in
  let rec walk loops depth e =
    let enter_dims dims idxs k =
      let loops' =
        loops
        @ List.mapi
            (fun i (d, s) -> { lsym = s; dom = d; depth = depth + i })
            (List.combine dims idxs)
      in
      k loops' (depth + List.length idxs)
    in
    (match e with
    | Read (Var s, idxs) when List.exists (fun (k, _) -> Sym.equal k s) shapes
      ->
        let shape =
          snd (List.find (fun (k, _) -> Sym.equal k s) shapes)
        in
        let verdicts =
          List.concat
            (List.map2
               (fun idx dim ->
                 match ub_cands dim with
                 | Some [ limit ] ->
                     [ prove_le loops (Simplify.exp idx)
                         (Affine.sub limit (Affine.const 1));
                       prove_ge0 loops (Simplify.exp idx) ]
                 | _ -> [ `Unknown ])
               idxs shape)
        in
        emit s (Pp.exp_to_string e) verdicts
    | Copy { csrc = Var s; cdims; _ }
      when List.exists (fun (k, _) -> Sym.equal k s) shapes ->
        let shape =
          snd (List.find (fun (k, _) -> Sym.equal k s) shapes)
        in
        let verdicts =
          List.concat
            (List.map2
               (fun cd dim ->
                 match (cd, ub_cands dim) with
                 | Call, _ -> [ `Proven ]
                 | Cfix idx, Some [ limit ] ->
                     [ prove_le loops (Simplify.exp idx)
                         (Affine.sub limit (Affine.const 1));
                       prove_ge0 loops (Simplify.exp idx) ]
                 | Coffset { off; len; _ }, Some [ limit ] ->
                     [ prove_le loops
                         (Simplify.exp (Prim (Add, [ off; len ])))
                         limit;
                       prove_ge0 loops (Simplify.exp off) ]
                 | _ -> [ `Unknown ])
               cdims shape)
        in
        emit s (Pp.exp_to_string e) verdicts
    | _ -> ());
    (* recurse with loop environments *)
    match e with
    | Map m ->
        enter_dims m.mdims m.midxs (fun loops' d -> walk loops' d m.mbody)
    | Fold f ->
        walk loops depth f.finit;
        enter_dims f.fdims f.fidxs (fun loops' d -> walk loops' d f.fupd)
    | MultiFold mf ->
        walk loops depth mf.oinit;
        enter_dims mf.odims mf.oidxs (fun loops' d ->
            List.iter (fun (_, e1) -> walk loops' d e1) mf.olets;
            List.iter
              (fun out ->
                List.iter
                  (fun (o, l, _) ->
                    walk loops' d o;
                    walk loops' d l)
                  out.oregion;
                walk loops' d out.oupd)
              mf.oouts)
    | FlatMap fm ->
        enter_dims [ fm.fmdim ] [ fm.fmidx ] (fun loops' d ->
            walk loops' d fm.fmbody)
    | GroupByFold g ->
        walk loops depth g.ginit;
        enter_dims g.gdims g.gidxs (fun loops' d ->
            List.iter (fun (_, e1) -> walk loops' d e1) g.glets;
            walk loops' d g.gkey;
            walk loops' d g.gupd)
    | e ->
        ignore
          (Rewrite.map_children
             (fun c ->
               walk loops depth c;
               c)
             e)
  in
  walk [] 0 p.body;
  (!checked, List.sort Diagnostic.compare (List.rev !diags))

let check_program p = snd (audit p)
