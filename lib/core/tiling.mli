(** The tiling pipeline driver (Figure 1, "Pattern Transformations").

    Sequencing: fusion and cleanup passes first (the paper assumes they
    have already been run, Section 4), then strip mining, then pattern
    interchange, then tile-copy inference with CSE and code motion to
    deduplicate and hoist the copies.

    Intermediate programs are retained so the evaluation can report them
    separately — Fig. 5c compares main-memory traffic of the {e fused},
    {e strip-mined} and {e interchanged} forms of k-means. *)

type result = {
  fused : Ir.program;  (** after fusion, CSE, code motion, simplification *)
  stripped : Ir.program;  (** after strip mining (no copies yet) *)
  stripped_with_copies : Ir.program;
      (** strip-mined form with tile copies — Fig. 5a with copies *)
  tiled : Ir.program;
      (** final: interchanged, copies inserted, cleaned — Fig. 5b *)
}

val run :
  ?fuse_filters:bool ->
  ?budget_words:int ->
  tiles:(Sym.t * int) list ->
  Ir.program ->
  result
(** @raise Validate.Type_error if the input program is ill-typed. *)

val canonicalize_lens : Ir.program -> Ir.program
(** Replace [Len] of a program input by the input's declared shape
    expression, so domain sizes are visible to the tile configuration. *)
