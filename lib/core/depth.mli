(** Pipeline depth estimation: the critical path of a datapath expression
    in cycles, using per-operator latencies representative of
    single-precision floating point on a Stratix-V-class FPGA.  MaxJ
    inserts pipeline registers automatically (Section 5); this determines
    how many stages that creates, i.e. a pipe's fill latency. *)

val op_latency : Ir.prim -> int
(** fadd/fsub 8, fmul 6, fdiv 28, sqrt 16, exp/log 20, comparisons and
    integer ops 1, conversions 2. *)

val of_exp : Ir.exp -> int
(** Critical path in cycles.  Reads cost one cycle (registered BRAM
    output); nested patterns contribute the depth of their bodies plus a
    tree-combine term [ceil(log2 par)] approximated with the static
    extent; [Let]-bound values are on the path of their uses. *)
