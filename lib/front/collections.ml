open Dsl

type elt = Ir.exp
type vec = { vlen : Ir.exp; vget : elt -> elt }
type mat = { mrows : Ir.exp; mcols : Ir.exp; mget : elt -> elt -> elt }

(* ----------------------------- intro ----------------------------- *)

let vec_of_input (inp : Ir.input) =
  match inp.Ir.ishape with
  | [ len ] -> { vlen = len; vget = (fun i -> read (in_var inp) [ i ]) }
  | _ -> invalid_arg "Collections.vec_of_input: not one-dimensional"

let mat_of_input (inp : Ir.input) =
  match inp.Ir.ishape with
  | [ r; c ] ->
      { mrows = r; mcols = c; mget = (fun i j -> read (in_var inp) [ i; j ]) }
  | _ -> invalid_arg "Collections.mat_of_input: not two-dimensional"

let vec_tabulate n f = { vlen = n; vget = f }

let vec_of_exp e =
  { vlen = Ir.Len (e, 0); vget = (fun i -> read e [ i ]) }

(* ------------------------- element-wise -------------------------- *)

let vmap f v = { v with vget = (fun i -> f (v.vget i)) }

let vzip f a b =
  (* lengths assumed equal, as in the paper's zip *)
  { vlen = a.vlen; vget = (fun i -> f (a.vget i) (b.vget i)) }

let vlen v = v.vlen
let vget v i = v.vget i
let row m i = { vlen = m.mcols; vget = (fun j -> m.mget i j) }
let col m j = { vlen = m.mrows; vget = (fun i -> m.mget i j) }
let mmap f m = { m with mget = (fun i j -> f (m.mget i j)) }
let mrows m = m.mrows
let mcols m = m.mcols

(* -------------------------- reductions --------------------------- *)

let vfold ~init f v =
  fold1 (dfull v.vlen) ~init ~comb:f (fun i acc -> f acc (v.vget i))

let vsum v = vfold ~init:(f 0.0) (fun a b -> a +! b) v
let dot a b = vsum (vzip (fun x y -> x *! y) a b)

let min_with_index v =
  fold1 (dfull v.vlen)
    ~init:(pair (f infinity) (i (-1)))
    ~comb:(fun a b -> if_ (fst_ a <! fst_ b) a b)
    (fun idx acc ->
      let_ ~name:"candidate" (v.vget idx) (fun value ->
          if_ (fst_ acc <! value) acc (pair value idx)))

let map_rows m body =
  { vlen = m.mrows; vget = (fun i -> body i (row m i)) }

let sum_rows m =
  let out =
    multifold
      [ dfull m.mrows; dfull m.mcols ]
      ~init:(zeros Ty.Float [ m.mrows ])
      ~comb:(fun a b ->
        map1 (dfull m.mrows) (fun j -> read a [ j ] +! read b [ j ]))
      (fun idxs ->
        match idxs with
        | [ r; c ] ->
            [ { range = [ m.mrows ];
                region = point [ r ];
                upd = (fun acc -> acc +! m.mget r c) } ]
        | _ -> assert false)
  in
  vec_of_exp out

(* ------------------------ materialization ------------------------ *)

let materialize v = map1 (dfull v.vlen) v.vget
let materialize_mat m = map2d (dfull m.mrows) (dfull m.mcols) m.mget

(* --------------------- filters and grouping ---------------------- *)

let filter_map ~n ~pred ~f:fe =
  flatmap (dfull n) (fun idx ->
      if_ (pred idx) (arr [ fe idx ]) (empty Ty.float_))

let group_by_fold ~n ~key ~init ~upd ~comb =
  groupbyfold (dfull n) ~init ~comb (fun idx ->
      (key idx, fun acc -> upd acc idx))

let group_by_vector_sum ~n ~k ~d ~key ~vec_of =
  multifold_lets [ dfull n ]
    ~init:(tup [ zeros Ty.Float [ k; d ]; zeros Ty.Float [ k ] ])
    ~comb:(fun a b ->
      tup
        [ map2d (dfull k) (dfull d) (fun r c ->
              read (fst_ a) [ r; c ] +! read (fst_ b) [ r; c ]);
          map1 (dfull k) (fun r -> read (snd_ a) [ r ] +! read (snd_ b) [ r ])
        ])
    (fun idxs ->
      let idx = match idxs with [ x ] -> x | _ -> assert false in
      ( [ ("key", key idx) ],
        fun lets ->
          let group = match lets with [ g ] -> g | _ -> assert false in
          [ { range = [ k; d ];
              region = [ (group, i 1, Some 1); (i 0, d, None) ];
              upd =
                (fun acc ->
                  map2d (dfull (i 1)) (dfull d) (fun z c ->
                      read acc [ z; c ] +! vget (vec_of idx) c)) };
            { range = [ k ];
              region = point [ group ];
              upd = (fun acc -> acc +! f 1.0) } ] ))
