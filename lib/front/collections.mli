(** The collections front end — the paper's Fig. 3 surface syntax.

    Section 3 assumes "a high-level translation layer from user code to
    PPL exists" and shows k-means written against Scala collections
    (Fig. 3) before its fused PPL form (Fig. 4).  This module is that
    layer: collections are {e pull arrays} (a length plus an element
    generator), so [map]/[zip]/[slice] compose without materializing —
    vertical fusion by construction, exactly the producer–consumer fusion
    Delite performs — and the reductions emit the fused PPL patterns of
    Fig. 2.  [group_by_vector_sum] implements the Collect/Reduce fusion
    that turns Fig. 3's [groupBy + per-group reduce] into Fig. 4's
    scattering MultiFold.

    All functions build IR; nothing is evaluated here. *)

type elt = Ir.exp
(** a scalar expression *)

type vec
(** a symbolic one-dimensional collection *)

type mat
(** a symbolic two-dimensional collection *)

(** {1 Introduction} *)

val vec_of_input : Ir.input -> vec
(** @raise Invalid_argument if the input is not one-dimensional. *)

val mat_of_input : Ir.input -> mat
(** @raise Invalid_argument if the input is not two-dimensional. *)

val vec_tabulate : Ir.exp -> (elt -> elt) -> vec
(** [vec_tabulate n f]: the collection [f 0, ..., f (n-1)] (not
    materialized). *)

val vec_of_exp : Ir.exp -> vec
(** View an IR expression of 1-D array type as a collection (reads
    index it). *)

(** {1 Element-wise operators (fused, non-materializing)} *)

val vmap : (elt -> elt) -> vec -> vec
val vzip : (elt -> elt -> elt) -> vec -> vec -> vec
val vlen : vec -> Ir.exp
val vget : vec -> elt -> elt

val row : mat -> elt -> vec
(** The paper's [slice(i, * )]. *)

val col : mat -> elt -> vec
val mmap : (elt -> elt) -> mat -> mat
val mrows : mat -> Ir.exp
val mcols : mat -> Ir.exp

(** {1 Reductions (emit PPL patterns)} *)

val vfold : init:elt -> (elt -> elt -> elt) -> vec -> elt
(** [fold] with an associative combiner, e.g. [x.fold(1){(a,b) => a*b}]. *)

val vsum : vec -> elt
val dot : vec -> vec -> elt

val min_with_index : vec -> elt
(** Fig. 3's [zipWithIndex.minBy(p => p._1)]: a [(value, index)] pair;
    ties resolve to the later index, matching the PPL fold in Fig. 4. *)

val map_rows : mat -> (elt -> vec -> elt) -> vec
(** [x.map{row => f row}] — the index is also provided. *)

val sum_rows : mat -> vec
(** Row sums (Table 2's sumrows), as the fused MultiFold. *)

(** {1 Materialization} *)

val materialize : vec -> Ir.exp
(** Emit a [Map] producing the collection as an array value. *)

val materialize_mat : mat -> Ir.exp

(** {1 Filters and grouping} *)

val filter_map : n:Ir.exp -> pred:(elt -> Ir.exp) -> f:(elt -> elt) -> Ir.exp
(** [x.flatMap{ e => if pred e then [f e] else [] }] over indices
    [0..n-1]; a dynamically sized 1-D array (FlatMap). *)

val group_by_fold :
  n:Ir.exp ->
  key:(elt -> elt) ->
  init:elt ->
  upd:(elt -> elt -> elt) ->
  comb:(elt -> elt -> elt) ->
  Ir.exp
(** [x.groupByFold(init){ i => (key i, acc => upd acc i) }{comb}]. *)

val group_by_vector_sum :
  n:Ir.exp ->
  k:Ir.exp ->
  d:Ir.exp ->
  key:(elt -> elt) ->
  vec_of:(elt -> vec) ->
  Ir.exp
(** The Collect/Reduce fusion behind Fig. 3 -> Fig. 4: group the vectors
    [vec_of i] (each of length [d]) by [key i] in [0..k-1], producing the
    pair of a [k x d] matrix of per-group vector sums and a [k]-vector of
    group sizes — the scattering MultiFold with the shared key binding. *)
