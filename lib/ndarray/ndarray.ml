exception Shape_error of string

let shape_error fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

(* Strided representation: [data.(offset + sum_i idx_i * strides.(i))].
   Freshly created arrays are contiguous row-major; [slice_view] produces
   aliased views with adjusted offset/strides. *)
type 'a t = {
  shape : int array;
  strides : int array;
  offset : int;
  data : 'a array;
}

let row_major_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let total shape = Array.fold_left ( * ) 1 shape

let check_shape shape =
  Array.iter (fun d -> if d < 0 then shape_error "negative dimension %d" d) shape

let make_contiguous shape data =
  { shape; strides = row_major_strides shape; offset = 0; data }

let create shape_l x =
  let shape = Array.of_list shape_l in
  check_shape shape;
  make_contiguous shape (Array.make (total shape) x)

let shape a = Array.to_list a.shape
let rank a = Array.length a.shape
let size a = total a.shape

let dim a i =
  if i < 0 || i >= Array.length a.shape then
    shape_error "dim %d out of range for rank %d" i (Array.length a.shape)
  else a.shape.(i)

let flat_index a idx =
  let n = Array.length a.shape in
  if List.length idx <> n then
    shape_error "index rank %d does not match array rank %d" (List.length idx) n;
  let pos = ref a.offset in
  List.iteri
    (fun i x ->
      if x < 0 || x >= a.shape.(i) then
        shape_error "index %d out of bounds for dimension %d (size %d)" x i
          a.shape.(i);
      pos := !pos + (x * a.strides.(i)))
    idx;
  !pos

let get a idx = a.data.(flat_index a idx)
let set a idx x = a.data.(flat_index a idx) <- x

let get1 a i = get a [ i ]
let get2 a i j = get a [ i; j ]
let set1 a i x = set a [ i ] x
let set2 a i j x = set a [ i; j ] x

let get_scalar a =
  if size a <> 1 then shape_error "get_scalar on array of size %d" (size a)
  else get a (List.map (fun _ -> 0) (shape a))

let scalar x = create [] x

let indices shape_l =
  let rec go = function
    | [] -> [ [] ]
    | d :: rest ->
        let tails = go rest in
        List.concat_map
          (fun i -> List.map (fun t -> i :: t) tails)
          (List.init d (fun i -> i))
  in
  go shape_l

let linearize shape_l idx =
  check_shape (Array.of_list shape_l);
  let strides = row_major_strides (Array.of_list shape_l) in
  let dims = Array.of_list shape_l in
  if List.length idx <> Array.length dims then
    shape_error "linearize: index rank %d vs shape rank %d" (List.length idx)
      (Array.length dims);
  let pos = ref 0 in
  List.iteri
    (fun i x ->
      if x < 0 || x >= dims.(i) then
        shape_error "linearize: index %d out of bounds for dim %d (size %d)" x i
          dims.(i);
      pos := !pos + (x * strides.(i)))
    idx;
  !pos

let delinearize shape_l flat =
  let strides = row_major_strides (Array.of_list shape_l) in
  let n = List.length shape_l in
  let rec go i rem acc =
    if i >= n then List.rev acc
    else
      let s = strides.(i) in
      go (i + 1) (rem mod s) ((rem / s) :: acc)
  in
  go 0 flat []

let init shape_l f =
  let shape = Array.of_list shape_l in
  check_shape shape;
  let data = Array.init (total shape) (fun flat -> f (delinearize shape_l flat)) in
  make_contiguous shape data

let of_list l = make_contiguous [| List.length l |] (Array.of_list l)

let of_list2 rows =
  let m = List.length rows in
  let n = match rows with [] -> 0 | r :: _ -> List.length r in
  List.iteri
    (fun i r ->
      if List.length r <> n then
        shape_error "of_list2: row %d has length %d, expected %d" i
          (List.length r) n)
    rows;
  let flat = Array.of_list (List.concat rows) in
  make_contiguous [| m; n |] flat

let iteri f a =
  let shp = shape a in
  if size a > 0 then List.iter (fun idx -> f idx (get a idx)) (indices shp)

let iter f a = iteri (fun _ x -> f x) a

let mapi f a =
  let shp = shape a in
  init shp (fun idx -> f idx (get a idx))

let map f a = mapi (fun _ x -> f x) a

let map2 f a b =
  if a.shape <> b.shape then
    shape_error "map2: shape mismatch (%s vs %s)"
      (String.concat "x" (List.map string_of_int (shape a)))
      (String.concat "x" (List.map string_of_int (shape b)));
  mapi (fun idx x -> f x (get b idx)) a

let fold f acc a =
  let r = ref acc in
  iter (fun x -> r := f !r x) a;
  !r

let for_all p a = fold (fun ok x -> ok && p x) true a
let exists p a = fold (fun found x -> found || p x) false a
let fill a x = iteri (fun idx _ -> set a idx x) a

type dim_spec = Fix of int | Range of int * int

let slice_view a specs =
  let n = Array.length a.shape in
  if List.length specs <> n then
    shape_error "slice: %d specs for rank %d" (List.length specs) n;
  let offset = ref a.offset in
  let out_shape = ref [] and out_strides = ref [] in
  List.iteri
    (fun i spec ->
      match spec with
      | Fix x ->
          if x < 0 || x >= a.shape.(i) then
            shape_error "slice: index %d out of bounds for dim %d (size %d)" x i
              a.shape.(i);
          offset := !offset + (x * a.strides.(i))
      | Range (off, len) ->
          if off < 0 || len < 0 || off + len > a.shape.(i) then
            shape_error
              "slice: range (%d,%d) out of bounds for dim %d (size %d)" off len
              i a.shape.(i);
          offset := !offset + (off * a.strides.(i));
          out_shape := len :: !out_shape;
          out_strides := a.strides.(i) :: !out_strides)
    specs;
  { shape = Array.of_list (List.rev !out_shape);
    strides = Array.of_list (List.rev !out_strides);
    offset = !offset;
    data = a.data }

let copy a = mapi (fun _ x -> x) a
let copy_region a specs = copy (slice_view a specs)

let blit_region ~src ~dst off =
  if rank src <> rank dst then
    shape_error "blit_region: rank mismatch (%d vs %d)" (rank src) (rank dst);
  if List.length off <> rank dst then
    shape_error "blit_region: offset rank %d vs array rank %d" (List.length off)
      (rank dst);
  let specs = List.map2 (fun o len -> Range (o, len)) off (shape src) in
  let view = slice_view dst specs in
  iteri (fun idx x -> set view idx x) src

let to_list a = List.rev (fold (fun acc x -> x :: acc) [] a)

let concat1 arrays =
  List.iter
    (fun a -> if rank a <> 1 then shape_error "concat1: rank-%d array" (rank a))
    arrays;
  let data = Array.concat (List.map (fun a -> Array.of_list (to_list a)) arrays) in
  make_contiguous [| Array.length data |] data

let reshape a new_shape =
  let ns = Array.of_list new_shape in
  check_shape ns;
  if total ns <> size a then
    shape_error "reshape: size %d to shape of size %d" (size a) (total ns);
  let flat = Array.of_list (to_list a) in
  make_contiguous ns flat

let transpose2 a =
  if rank a <> 2 then shape_error "transpose2 on rank-%d array" (rank a);
  init [ dim a 1; dim a 0 ] (function
    | [ i; j ] -> get2 a j i
    | _ -> assert false)

let equal eq a b =
  shape a = shape b
  &&
  let ok = ref true in
  iteri (fun idx x -> if not (eq x (get b idx)) then ok := false) a;
  !ok

let pp pp_elt fmt a =
  let rec go fmt view =
    if rank view = 0 then pp_elt fmt (get_scalar view)
    else begin
      Format.fprintf fmt "[@[<hov>";
      let d = dim view 0 in
      for i = 0 to d - 1 do
        if i > 0 then Format.fprintf fmt ";@ ";
        let sub =
          slice_view view
            (Fix i :: List.map (fun len -> Range (0, len)) (List.tl (shape view)))
        in
        go fmt sub
      done;
      Format.fprintf fmt "@]]"
    end
  in
  go fmt a
