(** Dense multidimensional arrays in row-major order.

    This is the storage substrate for the PPL reference interpreter and the
    workload generators: the paper's [V{^R}] tensors (Section 3) are
    represented as values of type ['a t].  Shapes are immutable; the element
    store is mutable so accumulator patterns (MultiFold) can update slices in
    place. *)

type 'a t

exception Shape_error of string
(** Raised on rank or bounds violations.  The payload describes the
    offending operation. *)

(** {1 Construction} *)

val create : int list -> 'a -> 'a t
(** [create shape x] is a fresh array of the given shape filled with [x].
    @raise Shape_error if any dimension is negative. *)

val init : int list -> (int list -> 'a) -> 'a t
(** [init shape f] fills each cell with [f index]. *)

val scalar : 'a -> 'a t
(** Rank-0 array holding a single element. *)

val of_list : 'a list -> 'a t
(** 1-D array from a list. *)

val of_list2 : 'a list list -> 'a t
(** 2-D array from a rectangular list of rows.
    @raise Shape_error if rows have unequal lengths. *)

(** {1 Shape} *)

val shape : 'a t -> int list
val rank : 'a t -> int
val size : 'a t -> int
(** Total number of elements. *)

val dim : 'a t -> int -> int
(** [dim a i] is the size of dimension [i].
    @raise Shape_error if [i] is out of range. *)

(** {1 Access} *)

val get : 'a t -> int list -> 'a
val set : 'a t -> int list -> 'a -> unit

val get1 : 'a t -> int -> 'a
val get2 : 'a t -> int -> int -> 'a
val set1 : 'a t -> int -> 'a -> unit
val set2 : 'a t -> int -> int -> 'a -> unit

val get_scalar : 'a t -> 'a
(** The single element of a rank-0 (or size-1) array.
    @raise Shape_error otherwise. *)

(** {1 Views and regions}

    A slice takes, per dimension, either a fixed index (reducing rank) or an
    [offset, length] interval.  [copy_region] materializes such a region —
    the interpreter uses it for the paper's [copy] tile operator, [slice_view]
    for the (non-materializing) [slice] operator. *)

type dim_spec =
  | Fix of int          (** select one index; the dimension disappears *)
  | Range of int * int  (** [Range (offset, len)]: keep [len] indices *)

val copy_region : 'a t -> dim_spec list -> 'a t
(** Materialize the selected region as a fresh array. *)

val slice_view : 'a t -> dim_spec list -> 'a t
(** Like {!copy_region} but shares storage with the source: writes through
    the view are visible in the source and vice versa. *)

val blit_region : src:'a t -> dst:'a t -> int list -> unit
(** [blit_region ~src ~dst offset] writes all of [src] into [dst] starting
    at [offset].  [src] must have the same rank as [dst] and fit. *)

(** {1 Bulk operations} *)

val fill : 'a t -> 'a -> unit
val copy : 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int list -> 'a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** @raise Shape_error if shapes differ. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int list -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val for_all : ('a -> bool) -> 'a t -> bool
val exists : ('a -> bool) -> 'a t -> bool

val concat1 : 'a t list -> 'a t
(** Concatenate 1-D arrays (used by FlatMap semantics).
    @raise Shape_error if any argument is not 1-D. *)

val reshape : 'a t -> int list -> 'a t
(** Same data, new shape of equal total size (fresh storage when the source
    is a strided view). *)

val transpose2 : 'a t -> 'a t
(** Transpose of a 2-D array. *)

val to_list : 'a t -> 'a list
(** Elements in row-major order. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Shape and element-wise equality. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** Nested-bracket rendering, e.g. [[1; 2]; [3; 4]]. *)

(** {1 Index arithmetic} *)

val indices : int list -> int list list
(** All indices of a shape in row-major order.  [indices [] = [[]]]. *)

val linearize : int list -> int list -> int
(** [linearize shape idx] is the row-major flat offset.
    @raise Shape_error on rank mismatch or out-of-bounds. *)

val delinearize : int list -> int -> int list
(** Inverse of {!linearize}. *)
