(** Source-pattern attribution profiler.

    Distributes a design's simulated cycles down the controller tree
    following the simulator's own composition rules, then aggregates
    cycles, DRAM traffic and area by the provenance stamped on each
    controller and memory — answering "which source pattern costs
    what?".  Attribution is complete by construction: the root total is
    the simulator's cycle count verbatim, and every node's [self] is its
    total minus what its children received, so [self] summed over the
    tree telescopes back to the total.

    Three backends: an aligned text report ({!pp_text}), JSON
    ({!to_json}), and the folded-stack flamegraph format ({!to_folded}):
    one [frame;frame;... weight] line per provenance trail, integer
    weights, lexicographically sorted — byte-deterministic for a given
    design and sizes. *)

type traffic = (string * float) list

type node = {
  name : string;
  kind : string;
  prov : Prov.t;
  total : float;  (** cycles attributed to this subtree, all invocations *)
  self : float;  (** total minus what the children received *)
  invocations : float;
  fill : float;  (** share of [total] spent filling pipelines *)
  steady : float;  (** share in steady-state execution *)
  dram : float;  (** share serialized behind the shared DRAM channel *)
  reads : traffic;  (** words read from DRAM, all invocations *)
  writes : traffic;
  area : Area_model.t;  (** this controller instance, without children *)
  children : node list;
}

type origin_row = {
  origin : string;  (** source-pattern id, e.g. ["gemm/map#2"] *)
  o_cycles : float;  (** summed [self] cycles of controllers so stamped *)
  o_share : float;  (** fraction of the design total *)
  o_traffic : float;  (** DRAM words moved by those controllers *)
  o_area : Area_model.t;  (** controllers plus memories so stamped *)
  o_ctrls : int;
}

type t = {
  design_name : string;
  total_cycles : float;  (** the {!Simulate.run} cycle count, verbatim *)
  dram_cycles : float;
  fill_cycles : float;
  steady_cycles : float;
  dram_serial_cycles : float;
  root : node;
  origins : origin_row list;  (** cycle-sorted, heaviest first *)
  unattributed_area : Area_model.t;  (** platform overhead *)
}

val of_design :
  ?machine:Machine.t ->
  ?cache:Simulate.cache ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  t

val total_cycles : t -> float

val top_sinks : t -> int -> origin_row list
(** The [k] heaviest origins by attributed cycles (zero rows dropped). *)

val fold_nodes : ('a -> node -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over the attribution tree. *)

val pp_text : Format.formatter -> t -> unit
val to_json : t -> string

val to_folded : t -> string
(** Folded flamegraph stacks, one line per provenance trail. *)

val json_float : float -> string
(** The number formatting [to_json] uses (integral floats print without
    a decimal point), shared so other emitters can match it exactly. *)
