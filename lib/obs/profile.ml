(* Cycle / traffic / area attribution by source-pattern provenance.

   The analytic simulator assigns every controller subtree a
   per-invocation result (cycles, DRAM-busy cycles, traffic).  This pass
   distributes the design's total cycles down the controller tree so
   that every node receives the share the composing rules gave it, then
   aggregates shares by the provenance stamped on each node — answering
   "which source pattern do these cycles (and this traffic, and this
   area) belong to?".

   Distribution rules mirror the simulator's composition exactly:
   - Seq / Par / sequential Loop: children split the parent's total in
     proportion to their standalone per-invocation cycles;
   - metapipelined Loop: each stage is weighted by its first-iteration
     cycles plus its share of the steady state — the slowest stage when
     the loop is stage-bound, DRAM-busy-proportional shares when the
     shared channel serializes the stages;
   - leaves keep everything they receive.

   A node's [self] is its total minus what its children received, so
   summing [self] over the tree telescopes back to the root total and
   attribution is complete by construction. *)

type traffic = (string * float) list

type node = {
  name : string;
  kind : string;
  prov : Prov.t;
  total : float;  (** cycles attributed to this subtree, all invocations *)
  self : float;  (** total minus what the children received *)
  invocations : float;
  fill : float;  (** share of [total] spent filling pipelines *)
  steady : float;  (** share in steady-state execution *)
  dram : float;  (** share serialized behind the shared DRAM channel *)
  reads : traffic;  (** words read from DRAM, all invocations *)
  writes : traffic;
  area : Area_model.t;  (** this controller instance, without children *)
  children : node list;
}

type origin_row = {
  origin : string;
  o_cycles : float;  (** summed [self] cycles of controllers so stamped *)
  o_share : float;  (** fraction of the design total *)
  o_traffic : float;  (** DRAM words moved by those controllers *)
  o_area : Area_model.t;  (** controllers plus memories so stamped *)
  o_ctrls : int;
}

type t = {
  design_name : string;
  total_cycles : float;
  dram_cycles : float;
  fill_cycles : float;
  steady_cycles : float;
  dram_serial_cycles : float;
  root : node;
  origins : origin_row list;
  unattributed_area : Area_model.t;  (** platform overhead *)
}

(* ------------------------- attribution ----------------------------- *)

let sum f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

let trips_product sizes trips =
  Float.max 1.0
    (List.fold_left (fun acc t -> acc *. Hw.trip_eval sizes t) 1.0 trips)

(* local scheduling transients of one controller, given the factor [f]
   scaling its per-invocation cycles up to its attributed total *)
let local_split sizes f (c : Hw.ctrl) (r : Simulate.node_report)
    (stage_rs : Simulate.node_report list) =
  match c with
  | Hw.Pipe { trips; par; depth; ii; _ } ->
      let iters =
        List.fold_left (fun acc t -> acc *. Hw.trip_eval sizes t) 1.0 trips
      in
      let compute =
        float_of_int depth
        +. (ceil (iters /. float_of_int (Int.max 1 par)) *. float_of_int ii)
      in
      let fill = f *. float_of_int depth in
      let dram = f *. Float.max 0.0 (r.Simulate.nr_dram -. compute) in
      (fill, dram)
  | Hw.Tile_load _ | Hw.Tile_store _ -> (0.0, f *. r.Simulate.nr_cycles)
  | Hw.Loop { trips; meta = true; _ } when List.length stage_rs > 1 ->
      let iter = trips_product sizes trips in
      let per_iter_sum = sum (fun s -> s.Simulate.nr_cycles) stage_rs in
      let slowest =
        List.fold_left
          (fun acc s -> Float.max acc s.Simulate.nr_cycles)
          0.0 stage_rs
      in
      let dram_sum = sum (fun s -> s.Simulate.nr_dram) stage_rs in
      let steady_rate = Float.max slowest dram_sum in
      let fill = f *. Float.max 0.0 (per_iter_sum -. steady_rate) in
      let dram =
        f *. (iter -. 1.0) *. Float.max 0.0 (dram_sum -. slowest)
      in
      (fill, dram)
  | _ -> (0.0, 0.0)

(* weights by which a controller's total is split among its children;
   they sum to the parent's own per-invocation cycles by construction *)
let child_weights sizes (c : Hw.ctrl) (rs : Simulate.node_report list) =
  match c with
  | Hw.Loop { trips; meta = true; _ } when List.length rs > 1 ->
      let iter = trips_product sizes trips in
      let slowest =
        List.fold_left
          (fun acc r -> Float.max acc r.Simulate.nr_cycles)
          0.0 rs
      in
      let dram_sum = sum (fun r -> r.Simulate.nr_dram) rs in
      let steady_rate = Float.max slowest dram_sum in
      let stage_bound = slowest >= dram_sum in
      (* first slowest stage wins ties, deterministically *)
      let argmax =
        let rec go i best besti = function
          | [] -> besti
          | r :: rest ->
              if r.Simulate.nr_cycles > best then
                go (i + 1) r.Simulate.nr_cycles i rest
              else go (i + 1) best besti rest
        in
        go 0 Float.neg_infinity (-1) rs
      in
      List.mapi
        (fun i r ->
          let steady_share =
            if stage_bound then if i = argmax then steady_rate else 0.0
            else if dram_sum > 0.0 then
              steady_rate *. r.Simulate.nr_dram /. dram_sum
            else 0.0
          in
          r.Simulate.nr_cycles +. ((iter -. 1.0) *. steady_share))
        rs
  | _ -> List.map (fun r -> r.Simulate.nr_cycles) rs

let child_invocations sizes (c : Hw.ctrl) invocations =
  match c with
  | Hw.Loop { trips; _ } -> invocations *. trips_product sizes trips
  | _ -> invocations

let scale_traffic k t = List.map (fun (a, w) -> (a, k *. w)) t

let of_design ?(machine = Machine.default) ?cache (d : Hw.design) ~sizes =
  let q = Simulate.measure ~machine ?cache d ~sizes in
  let fill_acc = ref 0.0 and dram_acc = ref 0.0 in
  let rec build c ~total ~invocations =
    let r = q c in
    let f =
      if r.Simulate.nr_cycles > 0.0 then total /. r.Simulate.nr_cycles
      else 0.0
    in
    let kids = Hw.children c in
    let krs = List.map q kids in
    let fill, dram = local_split sizes f c r krs in
    fill_acc := !fill_acc +. fill;
    dram_acc := !dram_acc +. dram;
    let weights = child_weights sizes c krs in
    let wsum = List.fold_left ( +. ) 0.0 weights in
    let kinv = child_invocations sizes c invocations in
    let children =
      List.map2
        (fun k w ->
          let share = if wsum > 0.0 then total *. w /. wsum else 0.0 in
          build k ~total:share ~invocations:kinv)
        kids weights
    in
    let self = total -. sum (fun n -> n.total) children in
    { name = Hw.ctrl_name c;
      kind = Simulate.kind_of c;
      prov = Hw.ctrl_prov c;
      total;
      self;
      invocations;
      fill;
      steady = Float.max 0.0 (total -. fill -. dram);
      dram;
      reads = scale_traffic invocations r.Simulate.nr_reads;
      writes = scale_traffic invocations r.Simulate.nr_writes;
      area = Area_model.ctrl_cost c;
      children }
  in
  let root_r = q d.Hw.top in
  let root =
    build d.Hw.top ~total:root_r.Simulate.nr_cycles ~invocations:1.0
  in
  (* by-origin aggregation *)
  let tbl = Hashtbl.create 16 in
  let rec visit n =
    let origin =
      match Prov.frames n.prov with o :: _ -> o | [] -> "<unattributed>"
    in
    let words =
      (* leaves own the traffic; interior nodes would double-count it *)
      if n.children = [] then
        sum snd n.reads +. sum snd n.writes
      else 0.0
    in
    let prev =
      match Hashtbl.find_opt tbl origin with
      | Some row -> row
      | None ->
          { origin; o_cycles = 0.0; o_share = 0.0; o_traffic = 0.0;
            o_area = Area_model.zero; o_ctrls = 0 }
    in
    Hashtbl.replace tbl origin
      { prev with
        o_cycles = prev.o_cycles +. n.self;
        o_traffic = prev.o_traffic +. words;
        o_area = Area_model.add prev.o_area n.area;
        o_ctrls = prev.o_ctrls + 1 };
    List.iter visit n.children
  in
  visit root;
  (* memories join the rows of the pattern they serve *)
  List.iter
    (fun m ->
      let origin =
        match Prov.frames m.Hw.mem_prov with
        | o :: _ -> o
        | [] -> "<unattributed>"
      in
      let prev =
        match Hashtbl.find_opt tbl origin with
        | Some row -> row
        | None ->
            { origin; o_cycles = 0.0; o_share = 0.0; o_traffic = 0.0;
              o_area = Area_model.zero; o_ctrls = 0 }
      in
      Hashtbl.replace tbl origin
        { prev with o_area = Area_model.add prev.o_area (Area_model.mem_cost m) })
    d.Hw.mems;
  let total = root.total in
  let origins =
    Hashtbl.fold (fun _ row acc -> row :: acc) tbl []
    |> List.map (fun row ->
           { row with
             o_share = (if total > 0.0 then row.o_cycles /. total else 0.0) })
    |> List.sort (fun a b ->
           match compare b.o_cycles a.o_cycles with
           | 0 -> String.compare a.origin b.origin
           | n -> n)
  in
  let fill = Float.min !fill_acc total in
  let dram = Float.min !dram_acc (total -. fill) in
  { design_name = d.Hw.design_name;
    total_cycles = total;
    dram_cycles = root_r.Simulate.nr_dram;
    fill_cycles = fill;
    steady_cycles = Float.max 0.0 (total -. fill -. dram);
    dram_serial_cycles = dram;
    root;
    origins;
    unattributed_area = Area_model.platform_overhead }

let total_cycles t = t.total_cycles

let top_sinks t k =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (List.filter (fun r -> r.o_cycles > 0.0) t.origins)

let fold_nodes f acc t =
  let rec go acc n = List.fold_left go (f acc n) n.children in
  go acc t.root

(* ------------------------- text backend ---------------------------- *)

let pp_text fmt t =
  Format.fprintf fmt "profile: %s  total %.0f cycles (dram-busy %.0f)@."
    t.design_name t.total_cycles t.dram_cycles;
  Format.fprintf fmt "  fill %.0f  steady %.0f  dram-serialized %.0f@."
    t.fill_cycles t.steady_cycles t.dram_serial_cycles;
  Format.fprintf fmt "@.%-28s %12s %7s %14s %10s %8s@." "source pattern"
    "cycles" "share" "dram words" "area(alm)" "ctrls";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %12.0f %6.1f%% %14.0f %10.0f %8d@." r.origin
        r.o_cycles
        (100.0 *. r.o_share)
        r.o_traffic r.o_area.Area_model.logic r.o_ctrls)
    t.origins;
  Format.fprintf fmt "@.%-44s %12s %12s %10s  %s@." "controller" "total"
    "self" "invocs" "provenance";
  let rec tree depth n =
    Format.fprintf fmt "%s%-*s %12.0f %12.0f %10.0f  %s@."
      (String.make (2 * depth) ' ')
      (Int.max 1 (44 - (2 * depth)))
      n.name n.total n.self n.invocations (Prov.to_string n.prov);
    List.iter (tree (depth + 1)) n.children
  in
  tree 0 t.root

(* ------------------------- json backend ---------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let json_area (a : Area_model.t) =
  Printf.sprintf
    "{\"logic\": %s, \"ff\": %s, \"bram\": %s, \"dsp\": %s}"
    (json_float a.Area_model.logic) (json_float a.Area_model.ff)
    (json_float a.Area_model.bram) (json_float a.Area_model.dsp)

let json_traffic tr =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (a, w) ->
           Printf.sprintf "\"%s\": %s" (json_escape a) (json_float w))
         tr)
  ^ "}"

let rec json_node n =
  Printf.sprintf
    "{\"name\": \"%s\", \"kind\": \"%s\", \"prov\": \"%s\", \"total\": %s, \
     \"self\": %s, \"invocations\": %s, \"fill\": %s, \"steady\": %s, \
     \"dram\": %s, \"reads\": %s, \"writes\": %s, \"area\": %s, \
     \"children\": [%s]}"
    (json_escape n.name) (json_escape n.kind)
    (json_escape (Prov.to_string n.prov))
    (json_float n.total) (json_float n.self) (json_float n.invocations)
    (json_float n.fill) (json_float n.steady) (json_float n.dram)
    (json_traffic n.reads) (json_traffic n.writes) (json_area n.area)
    (String.concat ", " (List.map json_node n.children))

let to_json t =
  Printf.sprintf
    "{\"design\": \"%s\", \"total_cycles\": %s, \"dram_cycles\": %s, \
     \"fill_cycles\": %s, \"steady_cycles\": %s, \"dram_serial_cycles\": %s, \
     \"origins\": [%s], \"tree\": %s}"
    (json_escape t.design_name)
    (json_float t.total_cycles) (json_float t.dram_cycles)
    (json_float t.fill_cycles) (json_float t.steady_cycles)
    (json_float t.dram_serial_cycles)
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"origin\": \"%s\", \"cycles\": %s, \"share\": %s, \
               \"traffic_words\": %s, \"area\": %s, \"controllers\": %d}"
              (json_escape r.origin) (json_float r.o_cycles)
              (json_float r.o_share) (json_float r.o_traffic)
              (json_area r.o_area) r.o_ctrls)
          t.origins))
    (json_node t.root)

(* ---------------------- folded-stack backend ------------------------ *)

(* One line per provenance trail: `frame;frame;... <integer weight>`,
   weight = the trail's self cycles.  Identical trails merge; lines sort
   lexicographically, so output is byte-deterministic for a design. *)
let to_folded t =
  let tbl = Hashtbl.create 64 in
  ignore
    (fold_nodes
       (fun () n ->
         let w = int_of_float (Float.round n.self) in
         if w > 0 then begin
           let key = Prov.folded n.prov in
           let prev =
             match Hashtbl.find_opt tbl key with Some v -> v | None -> 0
           in
           Hashtbl.replace tbl key (prev + w)
         end)
       () t);
  let lines =
    Hashtbl.fold
      (fun k w acc -> Printf.sprintf "%s %d" k w :: acc)
      tbl []
  in
  String.concat "\n"
    (List.sort String.compare lines)
  ^ if lines = [] then "" else "\n"
