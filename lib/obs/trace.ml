type arg = Int of int | Float of float | Str of string

type ph = B | E | X | M

type event = {
  ph : ph;
  name : string;
  cat : string;
  pid : int;
  track : string;
  ts : float;
  dur : float;  (* X events only *)
  args : (string * arg) list;
}

let wall_pid = 0
let virtual_pid = 1

(* ------------------------- collector state ------------------------- *)

let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let events : event list ref = ref []  (* newest first *)
let epoch = ref 0.0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get enabled_flag

let enable () =
  epoch := Unix.gettimeofday ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
let clear () = with_lock (fun () -> events := [])
let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let record evs =
  with_lock (fun () -> events := List.rev_append evs !events)

(* one wall track per domain, so pass spans inside a Pool sweep nest on
   the domain that ran them instead of interleaving on one track *)
let wall_track () = Printf.sprintf "wall-d%d" (Domain.self () :> int)

let with_span ?(cat = "pass") ?args name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      let t1 = now_us () in
      let a = match args with None -> [] | Some g -> g () in
      record
        [ { ph = X; name; cat; pid = wall_pid; track = wall_track ();
            ts = t0; dur = t1 -. t0; args = a } ]
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let virtual_span ?(cat = "sim") ~track ~name ~start ~finish ?(args = []) () =
  if enabled () then
    record
      [ { ph = B; name; cat; pid = virtual_pid; track; ts = start; dur = 0.0;
          args };
        { ph = E; name; cat; pid = virtual_pid; track; ts = finish; dur = 0.0;
          args = [] } ]

(* --------------------------- serialization ------------------------- *)

(* canonical float text: integers print without a fraction, everything
   else with a fixed number of digits — deterministic across runs *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4f" f

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_str = function
  | Int i -> string_of_int i
  | Float f -> float_str f
  | Str s -> "\"" ^ escape s ^ "\""

let args_str = function
  | [] -> "{}"
  | args ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ arg_str v) args)
      ^ "}"

let ph_str = function B -> "B" | E -> "E" | X -> "X" | M -> "M"

let event_line tid ev =
  let dur =
    match ev.ph with X -> Printf.sprintf ", \"dur\": %s" (float_str ev.dur) | _ -> ""
  in
  Printf.sprintf
    "{\"ph\": \"%s\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": %d, \
     \"tid\": %d, \"ts\": %s%s, \"args\": %s}"
    (ph_str ev.ph) (escape ev.name) (escape ev.cat) ev.pid tid
    (float_str ev.ts) dur (args_str ev.args)

let snapshot () = with_lock (fun () -> List.rev !events)

(* tracks of a pid, in deterministic (sorted) order *)
let tracks_of evs pid =
  List.sort_uniq String.compare
    (List.filter_map (fun e -> if e.pid = pid then Some e.track else None) evs)

let to_json () =
  let evs = snapshot () in
  let vtracks = tracks_of evs virtual_pid in
  let wtracks = tracks_of evs wall_pid in
  let tid_of pid track =
    let ts = if pid = virtual_pid then vtracks else wtracks in
    let rec idx i = function
      | [] -> 0
      | t :: _ when String.equal t track -> i
      | _ :: rest -> idx (i + 1) rest
    in
    1 + idx 0 ts
  in
  let meta =
    (* process/thread names so Perfetto labels the tracks; metadata for
       the wall pid is tagged onto it and stripped with it *)
    let proc pid name =
      { ph = M; name = "process_name"; cat = "meta"; pid; track = "";
        ts = 0.0; dur = 0.0; args = [ ("name", Str name) ] }
    in
    let threads pid =
      List.map
        (fun track ->
          { ph = M; name = "thread_name"; cat = "meta"; pid; track; ts = 0.0;
            dur = 0.0; args = [ ("name", Str track) ] })
        (if pid = virtual_pid then vtracks else wtracks)
    in
    (if vtracks = [] then []
     else proc virtual_pid "simulator (virtual cycles)" :: threads virtual_pid)
    @
    if wtracks = [] then []
    else proc wall_pid "compiler (wall clock, us)" :: threads wall_pid
  in
  (* virtual events first (deterministic), then wall; within a pid the
     events are grouped by track, each track keeping record order (the
     recorder guarantees per-track timestamp order) *)
  let body =
    List.stable_sort
      (fun a b ->
        match compare (-a.pid) (-b.pid) with
        | 0 -> compare (tid_of a.pid a.track) (tid_of b.pid b.track)
        | c -> c)
      evs
  in
  let lines =
    List.map (fun ev -> event_line (tid_of ev.pid ev.track) ev) (meta @ body)
  in
  "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n"
  ^ String.concat ",\n" lines
  ^ "\n]}\n"

let write file =
  let oc = open_out file in
  output_string oc (to_json ());
  close_out oc

(* ----------------------------- summary ----------------------------- *)

type track_acc = {
  mutable spans : int;
  mutable busy : float;
  mutable first : float;
  mutable last : float;
  mutable open_ts : float;
}

let summary () =
  let evs = snapshot () in
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* virtual tracks: reconstruct span durations from the B/E pairs *)
  let vt : (string, track_acc) Hashtbl.t = Hashtbl.create 16 in
  let makespan = ref 0.0 in
  List.iter
    (fun e ->
      if e.pid = virtual_pid then begin
        let acc =
          match Hashtbl.find_opt vt e.track with
          | Some a -> a
          | None ->
              let a =
                { spans = 0; busy = 0.0; first = infinity; last = 0.0;
                  open_ts = 0.0 }
              in
              Hashtbl.add vt e.track a;
              a
        in
        match e.ph with
        | B ->
            acc.open_ts <- e.ts;
            if e.ts < acc.first then acc.first <- e.ts
        | E ->
            acc.spans <- acc.spans + 1;
            acc.busy <- acc.busy +. (e.ts -. acc.open_ts);
            if e.ts > acc.last then acc.last <- e.ts;
            if e.ts > !makespan then makespan := e.ts
        | _ -> ()
      end)
    evs;
  if Hashtbl.length vt > 0 then begin
    pr "virtual timeline (makespan %s cycles)\n" (float_str !makespan);
    pr "  %-38s %8s %14s %7s %14s\n" "track" "spans" "busy cycles" "util"
      "stall cycles";
    List.iter
      (fun (track, a) ->
        let util = if !makespan > 0.0 then a.busy /. !makespan else 0.0 in
        let stall = a.last -. a.first -. a.busy in
        pr "  %-38s %8d %14s %6.1f%% %14s\n" track a.spans (float_str a.busy)
          (100.0 *. util)
          (float_str (Float.max 0.0 stall)))
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) vt []))
  end;
  (* wall spans aggregated by name *)
  let wt : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.pid = wall_pid && e.ph = X then
        let t, n =
          match Hashtbl.find_opt wt e.name with Some x -> x | None -> (0.0, 0)
        in
        Hashtbl.replace wt e.name (t +. e.dur, n + 1))
    evs;
  if Hashtbl.length wt > 0 then begin
    pr "wall-clock spans (total ms, by name)\n";
    let rows = Hashtbl.fold (fun k (t, n) acc -> (t, n, k) :: acc) wt [] in
    let rows = List.sort (fun (a, _, _) (b, _, _) -> compare b a) rows in
    List.iteri
      (fun i (t, n, name) ->
        if i < 12 then pr "  %-38s %8d %11.3f ms\n" name n (t /. 1e3))
      rows
  end;
  Buffer.contents buf
