type value =
  | Counter of int
  | Gauge of float
  | Timer of { seconds : float; count : int }

type timer_state = { mutable t_seconds : float; mutable t_count : int }

type entry =
  | Ecounter of int Atomic.t
  | Egauge of float ref
  | Etimer of timer_state

let lock = Mutex.create ()
let tbl : (string, entry) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or name mk =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some e -> e
      | None ->
          let e = mk () in
          Hashtbl.add tbl name e;
          e)

let incr ?(by = 1) name =
  match find_or name (fun () -> Ecounter (Atomic.make 0)) with
  | Ecounter a -> ignore (Atomic.fetch_and_add a by)
  | _ -> ()

let set_gauge name v =
  match find_or name (fun () -> Egauge (ref v)) with
  | Egauge r -> with_lock (fun () -> r := v)
  | _ -> ()

let time name f =
  let t0 = Unix.gettimeofday () in
  let finish () =
    let dt = Unix.gettimeofday () -. t0 in
    match find_or name (fun () -> Etimer { t_seconds = 0.0; t_count = 0 }) with
    | Etimer t ->
        with_lock (fun () ->
            t.t_seconds <- t.t_seconds +. dt;
            t.t_count <- t.t_count + 1)
    | _ -> ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let snapshot () =
  let entries =
    with_lock (fun () -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) tbl [])
  in
  entries
  |> List.map (fun (k, e) ->
         ( k,
           match e with
           | Ecounter a -> Counter (Atomic.get a)
           | Egauge r -> Gauge !r
           | Etimer t -> Timer { seconds = t.t_seconds; count = t.t_count } ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~base cur =
  let base_of k = List.assoc_opt k base in
  List.filter_map
    (fun (k, v) ->
      match (v, base_of k) with
      | Counter n, Some (Counter n0) ->
          if n = n0 then None else Some (k, Counter (n - n0))
      | Timer { seconds; count }, Some (Timer { seconds = s0; count = c0 }) ->
          if count = c0 && seconds = s0 then None
          else Some (k, Timer { seconds = seconds -. s0; count = count - c0 })
      | Gauge _, Some (Gauge _) -> Some (k, v)
      (* new since the baseline, or rebound to another kind: report as-is *)
      | _, _ -> Some (k, v))
    cur

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let values_to_json snap =
  let section f =
    String.concat ", " (List.filter_map f snap)
  in
  let counters =
    section (function
      | k, Counter n -> Some (Printf.sprintf "\"%s\": %d" (escape k) n)
      | _ -> None)
  in
  let gauges =
    section (function
      | k, Gauge v -> Some (Printf.sprintf "\"%s\": %.6g" (escape k) v)
      | _ -> None)
  in
  let timers =
    section (function
      | k, Timer { seconds; count } ->
          Some
            (Printf.sprintf "\"%s\": {\"seconds\": %.6f, \"count\": %d}"
               (escape k) seconds count)
      | _ -> None)
  in
  Printf.sprintf
    "{\"counters\": {%s}, \"gauges\": {%s}, \"timers\": {%s}}\n" counters
    gauges timers

let to_json () = values_to_json (snapshot ())

let pp_values fmt snap =
  if snap <> [] then Format.fprintf fmt "metrics@.";
  List.iter
    (fun (k, v) ->
      match v with
      | Counter n -> Format.fprintf fmt "  %-42s %14d@." k n
      | Gauge v -> Format.fprintf fmt "  %-42s %14.6g@." k v
      | Timer { seconds; count } ->
          Format.fprintf fmt "  %-42s %11.3f ms  (%d calls)@." k
            (1e3 *. seconds) count)
    snap

let pp fmt () = pp_values fmt (snapshot ())
let reset () = with_lock (fun () -> Hashtbl.reset tbl)
let reset_all = reset
