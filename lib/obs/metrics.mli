(** Process-wide registry of named counters, gauges and timers.

    Counters are atomic (safe to bump from pool domains), gauges and
    timers are mutex-protected.  Recording is always on and cheap; the
    CLI prints or dumps the registry only under [--metrics].  Names are
    dotted paths ([dse.points.evaluated], [pass.fusion], ...); the
    catalog lives in [doc/OBSERVABILITY.md].

    A name is bound to one kind on first use; later uses with a
    different kind are ignored rather than raising, so instrumentation
    can never crash the pipeline. *)

type value =
  | Counter of int
  | Gauge of float
  | Timer of { seconds : float; count : int }

val incr : ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use). *)

val set_gauge : string -> float -> unit
(** Set a gauge to the given value. *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration and a call count
    into the named timer. *)

val snapshot : unit -> (string * value) list
(** All entries, sorted by name. *)

val diff :
  base:(string * value) list -> (string * value) list -> (string * value) list
(** [diff ~base cur] is the per-invocation delta between two snapshots:
    counters and timers subtract (entries unchanged since [base] are
    dropped), gauges keep their current value.  Entries new since
    [base] pass through verbatim.  The registry is process-global, so
    CLI subcommands report [diff ~base:(snapshot at entry)] rather than
    lifetime totals. *)

val to_json : unit -> string
(** [{"counters": {...}, "gauges": {...}, "timers": {name: {"seconds":
    s, "count": n}}}], keys sorted. *)

val values_to_json : (string * value) list -> string
(** Same JSON shape over an explicit snapshot (or {!diff} result). *)

val pp : Format.formatter -> unit -> unit
(** Aligned text dump of {!snapshot}. *)

val pp_values : Format.formatter -> (string * value) list -> unit
(** Aligned text dump of an explicit snapshot (or {!diff} result). *)

val reset : unit -> unit
(** Drop every entry (used by tests). *)

val reset_all : unit -> unit
(** Alias of {!reset}: clear the whole process-global registry. *)
