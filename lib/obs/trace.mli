(** Span-based tracing, serialized as Chrome trace-event JSON.

    The collector is a process-wide, mutex-protected event buffer that
    every layer of the stack writes into when tracing is enabled (it is
    off by default and costs one atomic load per instrumentation point
    when off).  Two clocks coexist, kept apart by the trace-event [pid]:

    - {b wall clock} ([pid] {!wall_pid}): compiler passes, recorded as
      complete ("X") events whose [ts]/[dur] are microseconds since
      {!enable}.  One track per OCaml domain, so passes running inside a
      {!Pool} sweep nest correctly.  Wall events are the only
      nondeterministic part of a trace; golden tests strip them by
      filtering on the pid.
    - {b virtual clock} ([pid] {!virtual_pid}): simulator timelines,
      recorded as begin/end ("B"/"E") pairs whose timestamps are virtual
      cycles.  One track per metapipeline stage (plus a DRAM-busy
      track); spans on a track never overlap, so the B/E stack is always
      balanced.  Virtual events are bit-deterministic across runs and
      domain counts.

    The serialized form ({!to_json}, {!write}) is the Chrome trace-event
    JSON array format: load it at [ui.perfetto.dev] or
    [chrome://tracing].  One event per line, events ordered virtual
    first then wall, each track's events in record order — so stripping
    wall lines yields a byte-stable golden form. *)

type arg = Int of int | Float of float | Str of string
(** Argument values attached to a span (rendered under ["args"]). *)

val wall_pid : int
(** The trace-event pid carrying wall-clock (nondeterministic) events. *)

val virtual_pid : int
(** The trace-event pid carrying virtual-cycle (deterministic) events. *)

val enable : unit -> unit
(** Start collecting; resets the wall-clock epoch to now. *)

val disable : unit -> unit
(** Stop collecting (already-recorded events are kept until {!clear}). *)

val clear : unit -> unit
(** Drop all recorded events. *)

val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(unit -> (string * arg) list) -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a wall-clock span.  When
    tracing is disabled this is just [f ()].  [args] is evaluated {e
    after} [f] returns, so it can report results (e.g. after-pass IR
    stats stashed in a ref by [f]).  The span is recorded even when [f]
    raises. *)

val virtual_span :
  ?cat:string -> track:string -> name:string -> start:float ->
  finish:float -> ?args:(string * arg) list -> unit -> unit
(** Record one virtual-cycle span as a B/E pair on [track].  Spans on
    the same track must be recorded in start order and must not overlap
    (the simulator's per-stage schedules guarantee both). *)

val to_json : unit -> string
(** Serialize the collected events as Chrome trace-event JSON. *)

val write : string -> unit
(** [write file] writes {!to_json} to [file]. *)

val summary : unit -> string
(** Human-readable digest: per-virtual-track span counts, busy cycles,
    utilization and stall against the overall makespan, and the top
    wall-clock spans aggregated by name. *)
