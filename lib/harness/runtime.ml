type host = {
  pcie_bytes_per_sec : float;
  invocation_overhead_s : float;
}

let default_host =
  { pcie_bytes_per_sec = 4.0e9; invocation_overhead_s = 30.0e-6 }

type summary = {
  device_s : float;
  transfer_s : float;
  overhead_s : float;
  total_s : float;
  per_invocation_s : float;
}

let run ?(host = default_host) ?(machine = Machine.default) design ~sizes
    ~input_bytes ~output_bytes ~invocations =
  let invocations = Int.max 1 invocations in
  let rep = Simulate.run ~machine design ~sizes in
  let device_once = Machine.seconds machine rep.Simulate.cycles in
  let device_s = device_once *. float_of_int invocations in
  let transfer_s =
    (input_bytes +. (output_bytes *. float_of_int invocations))
    /. host.pcie_bytes_per_sec
  in
  let overhead_s = host.invocation_overhead_s *. float_of_int invocations in
  { device_s;
    transfer_s;
    overhead_s;
    total_s = device_s +. transfer_s +. overhead_s;
    per_invocation_s = device_once }

let pp_summary fmt s =
  Format.fprintf fmt
    "device %.3f ms (%.3f ms/invocation), transfers %.3f ms, overhead %.3f \
     ms, total %.3f ms"
    (1e3 *. s.device_s)
    (1e3 *. s.per_invocation_s)
    (1e3 *. s.transfer_s) (1e3 *. s.overhead_s) (1e3 *. s.total_s)
