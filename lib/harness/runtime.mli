(** Host-side runtime model.

    The paper measures "starting after input data has been copied to the
    FPGA's DRAM and ending when the hardware design reports completion"
    (Section 6.1) — per-invocation device time, which {!Simulate} gives.
    Real deployments wrap that in a host loop: copy inputs over PCIe once,
    invoke the bitstream repeatedly (k-means iterates "until the centroid
    values stop changing"), read results back.  This module models that
    loop so examples can report end-to-end times and show how transfer
    cost amortizes across iterations. *)

type host = {
  pcie_bytes_per_sec : float;  (** sustained host-device bandwidth *)
  invocation_overhead_s : float;  (** per-kernel-launch driver overhead *)
}

val default_host : host
(** 4 GB/s (PCIe gen3 x8 sustained), 30 us per invocation. *)

type summary = {
  device_s : float;  (** accelerator busy time across all invocations *)
  transfer_s : float;  (** PCIe in + out *)
  overhead_s : float;
  total_s : float;
  per_invocation_s : float;
}

val run :
  ?host:host ->
  ?machine:Machine.t ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  input_bytes:float ->
  output_bytes:float ->
  invocations:int ->
  summary
(** Model [invocations] back-to-back runs of the design: one input
    transfer up front, one result readback per invocation. *)

val pp_summary : Format.formatter -> summary -> unit
