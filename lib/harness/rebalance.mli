(** Metapipeline stage rebalancing.

    Section 6.2 for GDA: "We parallelize the vector outer product stage as
    it is the most compute-heavy part of the algorithm; parallelizing the
    vector outer product enables the metapipeline to achieve greater
    throughput", yielding the 39.4x total.  This pass implements that
    optimization: within each metapipeline, find the bottleneck stage by
    simulation and scale up its compute parallelism.

    Not part of the default Fig. 7 configurations (those keep the
    innermost parallelism factor constant, per Section 6.1); exposed as an
    ablation. *)

val apply :
  ?factor:int ->
  ?machine:Machine.t ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  Hw.design
(** Multiply the parallelism of each metapipeline's slowest compute stage
    by [factor] (default 4) when that stage is a pipe. *)
