let default_domains () = Domain.recommended_domain_count ()

let map ?domains f items =
  let requested =
    match domains with Some d -> Int.max 1 d | None -> default_domains ()
  in
  match items with
  | [] -> []
  | items when requested <= 1 || List.length items <= 1 -> List.map f items
  | items ->
      let arr = Array.of_list items in
      let len = Array.length arr in
      (* one slot per item: results come back in input order no matter
         which domain computed them *)
      let results = Array.make len None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < len then begin
            (results.(i) <-
               Some
                 (try Ok (f arr.(i))
                  with e -> Error (e, Printexc.get_raw_backtrace ())));
            loop ()
          end
        in
        loop ()
      in
      let workers = Int.min requested len in
      let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned;
      (* deliver in index order, so the first failing *item* (not the
         first failing domain) determines the raised exception *)
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)

let mapi ?domains f items =
  map ?domains (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) items)
