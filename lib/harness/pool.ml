let default_domains () = Domain.recommended_domain_count ()

type tally = { mutable per_domain : int array }

let tally () = { per_domain = [||] }

let map ?domains ?tally:tl f items =
  let requested =
    match domains with Some d -> Int.max 1 d | None -> default_domains ()
  in
  (* per-worker completed-item counters: each slot is written by exactly
     one domain, and only read after the joins, so plain ints suffice
     and the result list is untouched *)
  let counts = ref [||] in
  let init_counts n =
    let a = Array.make n 0 in
    counts := a;
    (match tl with Some t -> t.per_domain <- a | None -> ());
    a
  in
  match items with
  | [] ->
      ignore (init_counts 1);
      []
  | items when requested <= 1 || List.length items <= 1 ->
      let a = init_counts 1 in
      List.map
        (fun x ->
          let y = f x in
          a.(0) <- a.(0) + 1;
          y)
        items
  | items ->
      let arr = Array.of_list items in
      let len = Array.length arr in
      (* one slot per item: results come back in input order no matter
         which domain computed them *)
      let results = Array.make len None in
      let next = Atomic.make 0 in
      let workers = Int.min requested len in
      let a = init_counts workers in
      let worker w () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < len then begin
            (results.(i) <-
               Some
                 (try Ok (f arr.(i))
                  with e -> Error (e, Printexc.get_raw_backtrace ())));
            a.(w) <- a.(w) + 1;
            loop ()
          end
        in
        loop ()
      in
      let spawned =
        List.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      (* deliver in index order, so the first failing *item* (not the
         first failing domain) determines the raised exception *)
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)

let mapi ?domains ?tally f items =
  map ?domains ?tally (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) items)
