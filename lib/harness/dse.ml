type point = {
  tiles : (Sym.t * int) list;
  par : int;
  cycles : float;
  area : Area_model.t;
  feasible : bool;
}

type skip = {
  sk_tiles : (Sym.t * int) list;
  sk_reason : string;
}

type result = {
  points : point list;
  best : point option;
  skipped : skip list;
}

let cartesian (candidates : (Sym.t * int list) list) =
  List.fold_right
    (fun (s, sizes) acc ->
      List.concat_map (fun rest -> List.map (fun b -> (s, b) :: rest) sizes) acc)
    candidates [ [] ]

(* Non-finite cycles sort last and can never be [best]; among finite
   points, strictly by cycles (Float.compare, not the polymorphic
   compare, so a NaN cannot poison the order). *)
let point_order a b =
  match (Float.is_finite a.cycles, Float.is_finite b.cycles) with
  | true, false -> -1
  | false, true -> 1
  | _ -> Float.compare a.cycles b.cycles

let explore_joint ?domains ?machine ?(opts = Lower.default_opts)
    ?(bram_budget = 2560.0) ~prog ~candidates ~pars ~sizes () =
  let eval_assignment tiles =
    (* Only tiling rejections of *this candidate* are survivable: a bad
       tile size or a tile parameter the program does not have
       (Invalid_argument), or a tiling stage failing to re-validate at
       these tiles (Type_error).  Anything else — including any exception
       out of Lower / Simulate / Area_model — is a genuine bug and
       propagates. *)
    match Tiling.run ~tiles prog with
    | exception Invalid_argument reason -> Error { sk_tiles = tiles; sk_reason = reason }
    | exception Validate.Type_error reason ->
        Error { sk_tiles = tiles; sk_reason = reason }
    | r ->
        Ok
          (List.map
             (fun par ->
               let design =
                 Lower.program { opts with Lower.par } r.Tiling.tiled
               in
               let rep = Simulate.run ?machine design ~sizes in
               let area = Area_model.of_design design in
               let cycles = rep.Simulate.cycles in
               { tiles;
                 par;
                 cycles;
                 area;
                 feasible =
                   Float.is_finite cycles
                   && area.Area_model.bram <= bram_budget
                   && Area_model.fits area })
             pars)
  in
  let tally = Pool.tally () in
  let evaluated = Pool.map ?domains ~tally eval_assignment (cartesian candidates) in
  let points = List.concat_map (function Ok ps -> ps | Error _ -> []) evaluated in
  let skipped =
    List.filter_map (function Error s -> Some s | Ok _ -> None) evaluated
  in
  Metrics.incr ~by:(List.length points) "dse.points.evaluated";
  Metrics.incr ~by:(List.length skipped) "dse.points.skipped";
  Array.iteri
    (fun d n -> Metrics.incr ~by:n (Printf.sprintf "dse.pool.d%d.completed" d))
    tally.Pool.per_domain;
  (* List.sort is a stable merge sort and the pool preserves input order,
     so the sorted list is identical at every domain count *)
  let points = List.sort point_order points in
  let best = List.find_opt (fun p -> p.feasible) points in
  { points; best; skipped }

let explore ?domains ?machine ?(opts = Lower.default_opts) ?bram_budget ~prog
    ~candidates ~sizes () =
  explore_joint ?domains ?machine ~opts ?bram_budget ~prog ~candidates
    ~pars:[ opts.Lower.par ] ~sizes ()

let explore_bench ?domains ?bram_budget ?(pars = []) (bench : Suite.bench) =
  let candidates =
    List.map
      (fun (s, default) ->
        (* the bench's own default is always a candidate — otherwise a
           tile whose default is small (< 8) would filter to an empty
           axis and silently empty the whole cartesian sweep *)
        let around =
          List.sort_uniq compare
            (default
            :: List.filter
                 (fun b -> b >= 8)
                 [ default / 4; default / 2; default; default * 2; default * 4 ])
        in
        (s, around))
      bench.Suite.tiles
  in
  let pars = if pars = [] then [ Lower.default_opts.Lower.par ] else pars in
  explore_joint ?domains ?bram_budget ~prog:bench.Suite.prog ~candidates ~pars
    ~sizes:bench.Suite.sim_sizes ()

let tiles_to_string tiles =
  String.concat ", "
    (List.map (fun (s, b) -> Printf.sprintf "%s=%d" (Sym.base s) b) tiles)

let print_result r =
  Printf.printf "%-36s %5s %14s %10s %10s\n" "tiles" "par" "cycles" "bram"
    "feasible";
  List.iter
    (fun p ->
      Printf.printf "%-36s %5d %14.0f %10.0f %10s%s\n" (tiles_to_string p.tiles)
        p.par p.cycles p.area.Area_model.bram
        (if p.feasible then "yes" else "no")
        (* structural comparison: after the parallel rewrite the selected
           point is no longer the same physical list as the printed one *)
        (match r.best with
        | Some b when b.tiles = p.tiles && b.par = p.par -> "   <- selected"
        | _ -> ""))
    r.points;
  if r.skipped <> [] then begin
    Printf.printf "\n%d point(s) skipped (tiling rejected the candidate):\n"
      (List.length r.skipped);
    List.iter
      (fun s ->
        Printf.printf "  %-36s %s\n" (tiles_to_string s.sk_tiles) s.sk_reason)
      r.skipped
  end
