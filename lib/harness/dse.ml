type point = {
  tiles : (Sym.t * int) list;
  par : int;
  cycles : float;
  area : Area_model.t;
  feasible : bool;
}

type result = {
  points : point list;
  best : point option;
}

let cartesian (candidates : (Sym.t * int list) list) =
  List.fold_right
    (fun (s, sizes) acc ->
      List.concat_map (fun rest -> List.map (fun b -> (s, b) :: rest) sizes) acc)
    candidates [ [] ]

let explore_joint ?machine ?(opts = Lower.default_opts)
    ?(bram_budget = 2560.0) ~prog ~candidates ~pars ~sizes () =
  let points =
    List.concat_map
      (fun tiles ->
        match Tiling.run ~tiles prog with
        | r ->
            List.map
              (fun par ->
                let design =
                  Lower.program { opts with Lower.par } r.Tiling.tiled
                in
                let rep = Simulate.run ?machine design ~sizes in
                let area = Area_model.of_design design in
                { tiles;
                  par;
                  cycles = rep.Simulate.cycles;
                  area;
                  feasible =
                    area.Area_model.bram <= bram_budget
                    && Area_model.fits area })
              pars
        | exception _ -> [])
      (cartesian candidates)
  in
  let points = List.sort (fun a b -> compare a.cycles b.cycles) points in
  let best = List.find_opt (fun p -> p.feasible) points in
  { points; best }

let explore ?machine ?(opts = Lower.default_opts) ?bram_budget ~prog
    ~candidates ~sizes () =
  explore_joint ?machine ~opts ?bram_budget ~prog ~candidates
    ~pars:[ opts.Lower.par ] ~sizes ()

let explore_bench ?bram_budget ?(pars = []) (bench : Suite.bench) =
  let candidates =
    List.map
      (fun (s, default) ->
        let around =
          List.sort_uniq compare
            (List.filter
               (fun b -> b >= 8)
               [ default / 4; default / 2; default; default * 2; default * 4 ])
        in
        (s, around))
      bench.Suite.tiles
  in
  let pars = if pars = [] then [ Lower.default_opts.Lower.par ] else pars in
  explore_joint ?bram_budget ~prog:bench.Suite.prog ~candidates ~pars
    ~sizes:bench.Suite.sim_sizes ()

let print_result r =
  Printf.printf "%-36s %5s %14s %10s %10s\n" "tiles" "par" "cycles" "bram"
    "feasible";
  List.iter
    (fun p ->
      let tiles =
        String.concat ", "
          (List.map (fun (s, b) -> Printf.sprintf "%s=%d" (Sym.base s) b) p.tiles)
      in
      Printf.printf "%-36s %5d %14.0f %10.0f %10s%s\n" tiles p.par p.cycles
        p.area.Area_model.bram
        (if p.feasible then "yes" else "no")
        (match r.best with
        | Some b when b.tiles == p.tiles && b.par = p.par -> "   <- selected"
        | _ -> ""))
    r.points
