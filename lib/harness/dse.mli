(** Automated tile-size selection by design-space exploration.

    The paper requires user-specified tile sizes and names this as future
    work (Section 4: "tile sizes for all pattern dimensions will instead
    be determined by the compiler through automated tile size selection
    using modeling and design space exploration").  This module implements
    that loop: enumerate candidate tile assignments, compile each through
    the full tiling + hardware-generation pipeline, evaluate with the
    performance and area models, discard points over the on-chip memory
    budget, and return the Pareto-best point.

    Every point is an independent compile + simulate chain, so the sweep
    fans out across OCaml 5 domains ({!Pool}).  Results are deterministic:
    any [?domains] value returns the identical [points] list and [best]
    point (same order, same floats) as a sequential run. *)

type point = {
  tiles : (Sym.t * int) list;
  par : int;  (** vector-lane / tree-leaf parallelism factor *)
  cycles : float;
  area : Area_model.t;
  feasible : bool;
      (** finite cycles, within the block-RAM budget and the chip *)
}

type skip = {
  sk_tiles : (Sym.t * int) list;  (** the rejected tile assignment *)
  sk_reason : string;  (** why tiling rejected it *)
}

type result = {
  points : point list;  (** all evaluated points, fastest first *)
  best : point option;  (** fastest feasible point *)
  skipped : skip list;
      (** candidate assignments the tiling pipeline rejected — reported,
          never silently dropped *)
}

val explore :
  ?domains:int ->
  ?machine:Machine.t ->
  ?opts:Lower.opts ->
  ?bram_budget:float ->
  prog:Ir.program ->
  candidates:(Sym.t * int list) list ->
  sizes:(Sym.t * int) list ->
  unit ->
  result
(** [explore ~prog ~candidates ~sizes ()] evaluates the cartesian product
    of per-parameter candidate tile sizes.  Default budget: 2560 M20K
    blocks (a Stratix V).  [?domains] bounds the evaluation pool
    (default: {!Pool.default_domains}; [1] = sequential). *)

val explore_joint :
  ?domains:int ->
  ?machine:Machine.t ->
  ?opts:Lower.opts ->
  ?bram_budget:float ->
  prog:Ir.program ->
  candidates:(Sym.t * int list) list ->
  pars:int list ->
  sizes:(Sym.t * int) list ->
  unit ->
  result
(** Joint tile-size and parallelism-factor exploration: the cartesian
    product of tile assignments and [pars] values.  Feasibility also
    checks chip capacity (logic/FF), which parallelism spends.

    Candidate assignments that the tiling pipeline itself rejects
    ([Invalid_argument] or {!Validate.Type_error} from [Tiling.run]) are
    recorded in [skipped]; any other exception — a genuine bug in
    [Lower], [Simulate] or [Area_model] — propagates to the caller. *)

val explore_bench :
  ?domains:int -> ?bram_budget:float -> ?pars:int list -> Suite.bench -> result
(** Convenience: power-of-two candidates around the benchmark's default
    tile configuration (the default size itself is always a candidate),
    evaluated at its simulation sizes.  [pars] defaults to the single
    default parallelism factor. *)

val print_result : result -> unit
