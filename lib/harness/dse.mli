(** Automated tile-size selection by design-space exploration.

    The paper requires user-specified tile sizes and names this as future
    work (Section 4: "tile sizes for all pattern dimensions will instead
    be determined by the compiler through automated tile size selection
    using modeling and design space exploration").  This module implements
    that loop: enumerate candidate tile assignments, compile each through
    the full tiling + hardware-generation pipeline, evaluate with the
    performance and area models, discard points over the on-chip memory
    budget, and return the Pareto-best point. *)

type point = {
  tiles : (Sym.t * int) list;
  par : int;  (** vector-lane / tree-leaf parallelism factor *)
  cycles : float;
  area : Area_model.t;
  feasible : bool;  (** within the block-RAM budget and the chip *)
}

type result = {
  points : point list;  (** all evaluated points, fastest first *)
  best : point option;  (** fastest feasible point *)
}

val explore :
  ?machine:Machine.t ->
  ?opts:Lower.opts ->
  ?bram_budget:float ->
  prog:Ir.program ->
  candidates:(Sym.t * int list) list ->
  sizes:(Sym.t * int) list ->
  unit ->
  result
(** [explore ~prog ~candidates ~sizes ()] evaluates the cartesian product
    of per-parameter candidate tile sizes.  Default budget: 2560 M20K
    blocks (a Stratix V). *)

val explore_joint :
  ?machine:Machine.t ->
  ?opts:Lower.opts ->
  ?bram_budget:float ->
  prog:Ir.program ->
  candidates:(Sym.t * int list) list ->
  pars:int list ->
  sizes:(Sym.t * int) list ->
  unit ->
  result
(** Joint tile-size and parallelism-factor exploration: the cartesian
    product of tile assignments and [pars] values.  Feasibility also
    checks chip capacity (logic/FF), which parallelism spends. *)

val explore_bench : ?bram_budget:float -> ?pars:int list -> Suite.bench -> result
(** Convenience: power-of-two candidates around the benchmark's default
    tile configuration, evaluated at its simulation sizes.  [pars]
    defaults to the single default parallelism factor. *)

val print_result : result -> unit
