(** Deterministic work pool over OCaml 5 domains.

    Design-space sweeps evaluate many independent points — each a full
    [Tiling.run] → [Lower.program] → [Simulate.run] → [Area_model]
    chain — so the harness fans them out across domains.  The pool is
    deliberately boring: items are claimed from a shared atomic counter,
    each result lands in the slot of its *input index*, and the output
    list is rebuilt in input order.  A parallel [map] therefore returns
    exactly what [List.map] returns (same order, same values), which the
    DSE determinism tests assert. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the bound used when [?domains]
    is omitted. *)

type tally = { mutable per_domain : int array }
(** Per-worker completed-item counters, filled in by {!map} when passed:
    [per_domain.(w)] is the number of items worker [w] completed (worker
    0 is the calling domain; the array length is the worker count the
    call actually used).  Purely observational — the result list is
    bit-identical with or without a tally — and the slot sums always
    equal the item count.  Feeds the {!Metrics} registry in the sweep
    harnesses. *)

val tally : unit -> tally
(** An empty tally (replaced wholesale by the next {!map} it is passed
    to). *)

val map : ?domains:int -> ?tally:tally -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f items] is [List.map f items], evaluated on up to
    [domains] domains (default {!default_domains}; values [<= 1] run
    sequentially on the calling domain, with no spawns).  If any [f item]
    raises, the exception of the smallest-index failing item is re-raised
    (with its backtrace) after all domains have joined. *)

val mapi : ?domains:int -> ?tally:tally -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, passing each item's index. *)
