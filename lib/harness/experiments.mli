(** The experiment harness: regenerates every table and figure of the
    paper's evaluation (Section 6) from the compiler + simulator + area
    model, in paper-shaped rows.  Used by both the CLI and the benchmark
    executable; EXPERIMENTS.md records its output against the paper. *)

(** The three hardware configurations of Section 6.2. *)
type config = Baseline | Tiled | Tiled_meta

val config_name : config -> string

val design_of : config -> Suite.bench -> Hw.design
(** Run the tiling pipeline appropriate to the configuration and lower. *)

(** {1 Figure 7} *)

type fig7_row = {
  bench : string;
  cycles : config -> float;
  speedup : config -> float;  (** over [Baseline] *)
  area : config -> Area_model.t;
  area_ratio : config -> Area_model.t;  (** over [Baseline] *)
}

val fig7 :
  ?machine:Machine.t -> ?domains:int -> Suite.bench list -> fig7_row list
(** [?domains] fans the per-benchmark chains out across a {!Pool}
    (default: {!Pool.default_domains}; [1] = sequential).  The rows are
    identical at every domain count. *)

val paper_fig7_speedups : (string * (float * float)) list
(** The paper's reported (tiling, tiling+metapipelining) speedups, for
    side-by-side comparison. *)

val print_fig7 : fig7_row list -> unit

(** {1 Sensitivity}

    Fig. 7's qualitative claims should not hinge on the exact machine
    constants.  [sensitivity] re-runs the speedup computation under
    perturbed machine models (each knob scaled down and up) and reports
    the per-benchmark tiling speedups. *)

type sensitivity_row = {
  variant : string;  (** e.g. "stream-bw x0.5" *)
  speedups : (string * float) list;  (** benchmark -> +tiling+meta speedup *)
}

val sensitivity : Suite.bench list -> sensitivity_row list
val print_sensitivity : sensitivity_row list -> unit

val scaling : Suite.bench list -> sensitivity_row list
(** The same speedups with every problem size halved and doubled
    (tile sizes fixed): the Fig. 7 shape should be a property of the
    designs, not of one problem size. *)

(** {1 Figure 5c} *)

type fig5c_row = {
  structure : string;
  stage : string;  (** fused / strip-mined / interchanged *)
  measured_words : float;
  expected_words : float;  (** the paper's closed form at these sizes *)
  onchip_words : float;  (** on-chip storage allocated for the structure *)
  expected_onchip : float;
}

val fig5c :
  ?machine:Machine.t -> n:int -> k:int -> d:int -> b0:int -> b1:int -> unit ->
  fig5c_row list

val print_fig5c : fig5c_row list -> unit

(** {1 Per-input traffic}

    The Fig. 5c analysis generalized to any benchmark: DRAM read words
    per program input under the baseline and tiled designs, optionally
    cross-checked against the interpreter's {!Profile} counts on the
    tiled program at the same sizes. *)

type traffic_row = {
  tinput : string;
  tbaseline : float;  (** simulated read words, baseline design *)
  ttiled : float;  (** simulated read words, tiled design *)
  tprofile : int option;  (** interpreter words for the tiled program *)
}

val traffic :
  ?machine:Machine.t ->
  ?profile:bool ->
  ?sizes:(Sym.t * int) list ->
  Suite.bench ->
  traffic_row list
(** Default sizes: the benchmark's simulation sizes, or its (small) test
    sizes when [profile] is set so the interpreter run stays cheap. *)

val print_traffic : string -> traffic_row list -> unit

(** {1 Table 5} *)

val print_table5 : Suite.bench list -> unit
