type config = Baseline | Tiled | Tiled_meta

let config_name = function
  | Baseline -> "baseline"
  | Tiled -> "+tiling"
  | Tiled_meta -> "+tiling+metapipelining"

let design_of config (bench : Suite.bench) =
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  match config with
  | Baseline -> Lower.program Lower.baseline_opts r.Tiling.fused
  | Tiled ->
      Lower.program { Lower.default_opts with Lower.meta = false } r.Tiling.tiled
  | Tiled_meta -> Lower.program Lower.default_opts r.Tiling.tiled

(* ------------------------------ Fig. 7 ------------------------------ *)

type fig7_row = {
  bench : string;
  cycles : config -> float;
  speedup : config -> float;
  area : config -> Area_model.t;
  area_ratio : config -> Area_model.t;
}

let configs = [ Baseline; Tiled; Tiled_meta ]

let fig7 ?machine ?domains benches =
  let tally = Pool.tally () in
  (* each bench is an independent compile + 3x simulate chain *)
  let rows =
    Pool.map ?domains ~tally
      (fun (bench : Suite.bench) ->
      let per_config =
        List.map
          (fun cfg ->
            let d = design_of cfg bench in
            let rep = Simulate.run ?machine d ~sizes:bench.Suite.sim_sizes in
            (cfg, (rep.Simulate.cycles, Area_model.of_design d)))
          configs
      in
      let get cfg = List.assoc cfg per_config in
      let base_cycles, base_area = get Baseline in
      { bench = bench.Suite.name;
        cycles = (fun cfg -> fst (get cfg));
        speedup = (fun cfg -> base_cycles /. fst (get cfg));
        area = (fun cfg -> snd (get cfg));
        area_ratio = (fun cfg -> Area_model.ratio (snd (get cfg)) base_area) })
      benches
  in
  Metrics.incr ~by:(List.length rows) "fig7.benches";
  Array.iteri
    (fun d n -> Metrics.incr ~by:n (Printf.sprintf "fig7.pool.d%d.completed" d))
    tally.Pool.per_domain;
  rows

let paper_fig7_speedups =
  [ ("outerprod", (1.1, 1.1));
    ("sumrows", (6.5, 11.5));
    ("gemm", (4.1, 6.3));
    ("tpchq6", (1.6, 2.0));
    ("gda", (13.4, 39.4));
    ("kmeans", (15.5, 19.7)) ]

let print_fig7 rows =
  Printf.printf
    "Figure 7 — speedups over the baseline (paper values in parentheses)\n";
  Printf.printf "%-10s %12s %12s %12s | %-16s %-16s\n" "benchmark" "baseline"
    "+tiling" "+meta" "tiling (paper)" "meta (paper)";
  List.iter
    (fun r ->
      let pt, pm =
        match List.assoc_opt r.bench paper_fig7_speedups with
        | Some v -> v
        | None -> (nan, nan)
      in
      Printf.printf "%-10s %12.0f %12.0f %12.0f | %6.2fx (%4.1fx)  %6.2fx (%4.1fx)\n"
        r.bench (r.cycles Baseline) (r.cycles Tiled) (r.cycles Tiled_meta)
        (r.speedup Tiled) pt (r.speedup Tiled_meta) pm)
    rows;
  Printf.printf
    "\nFigure 7 — resource use relative to the baseline (logic / FF / mem)\n";
  Printf.printf "%-10s %-26s %-26s\n" "benchmark" "+tiling" "+tiling+metapipelining";
  List.iter
    (fun r ->
      let t = r.area_ratio Tiled and m = r.area_ratio Tiled_meta in
      Printf.printf "%-10s   %6.2f %6.2f %6.2f        %6.2f %6.2f %6.2f\n"
        r.bench t.Area_model.logic t.Area_model.ff t.Area_model.bram
        m.Area_model.logic m.Area_model.ff m.Area_model.bram)
    rows

(* ---------------------------- sensitivity --------------------------- *)

type sensitivity_row = {
  variant : string;
  speedups : (string * float) list;
}

let machine_variants =
  let m = Machine.default in
  [ ("default", m);
    ("stream-bw x0.5",
     { m with Machine.stream_words_per_cycle = m.Machine.stream_words_per_cycle /. 2.0 });
    ("stream-bw x2",
     { m with Machine.stream_words_per_cycle = m.Machine.stream_words_per_cycle *. 2.0 });
    ("row-cost x0.5", { m with Machine.short_row_cost = m.Machine.short_row_cost /. 2.0 });
    ("row-cost x2", { m with Machine.short_row_cost = m.Machine.short_row_cost *. 2.0 });
    ("tile-latency x4", { m with Machine.tile_latency = m.Machine.tile_latency *. 4.0 });
    ("burst-window x2",
     { m with Machine.stream_cache_bytes = m.Machine.stream_cache_bytes / 2 }) ]

let sensitivity benches =
  (* build designs once; re-simulate under each machine *)
  let designs =
    List.map
      (fun (bench : Suite.bench) ->
        ( bench,
          design_of Baseline bench,
          design_of Tiled_meta bench ))
      benches
  in
  List.map
    (fun (variant, machine) ->
      { variant;
        speedups =
          List.map
            (fun ((bench : Suite.bench), base, meta) ->
              let c d = (Simulate.run ~machine d ~sizes:bench.Suite.sim_sizes).Simulate.cycles in
              (bench.Suite.name, c base /. c meta))
            designs })
    machine_variants

let print_sensitivity rows =
  match rows with
  | [] -> ()
  | first :: _ ->
      Printf.printf
        "Sensitivity — +tiling+metapipelining speedup under perturbed machine \
         models\n";
      Printf.printf "%-18s" "variant";
      List.iter (fun (b, _) -> Printf.printf "%11s" b) first.speedups;
      print_newline ();
      List.iter
        (fun r ->
          Printf.printf "%-18s" r.variant;
          List.iter (fun (_, s) -> Printf.printf "%10.1fx" s) r.speedups;
          print_newline ())
        rows

let scaling benches =
  let designs =
    List.map
      (fun (bench : Suite.bench) ->
        (bench, design_of Baseline bench, design_of Tiled_meta bench))
      benches
  in
  List.map
    (fun (label, scale) ->
      { variant = label;
        speedups =
          List.map
            (fun ((bench : Suite.bench), base, meta) ->
              let sizes =
                List.map
                  (fun (s, v) -> (s, Int.max 1 (int_of_float (float_of_int v *. scale))))
                  bench.Suite.sim_sizes
              in
              let c d = (Simulate.run d ~sizes).Simulate.cycles in
              (bench.Suite.name, c base /. c meta))
            designs })
    [ ("sizes x0.5", 0.5); ("sizes x1", 1.0); ("sizes x2", 2.0) ]

(* ------------------------------ Fig. 5c ----------------------------- *)

type fig5c_row = {
  structure : string;
  stage : string;
  measured_words : float;
  expected_words : float;
  onchip_words : float;
  expected_onchip : float;
}

let onchip_words_for (design : Hw.design) prefix =
  List.fold_left
    (fun acc m ->
      if
        String.length m.Hw.mem_name >= String.length prefix
        && String.sub m.Hw.mem_name 0 (String.length prefix) = prefix
      then acc +. float_of_int (m.Hw.depth * m.Hw.width_bits / 32)
      else acc)
    0.0 design.Hw.mems

let fig5c ?machine ~n ~k ~d ~b0 ~b1 () =
  let t = Kmeans.make () in
  let tiles = [ (t.Kmeans.n, b0); (t.Kmeans.k, b1) ] in
  let r = Tiling.run ~tiles t.Kmeans.prog in
  let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
  let stages =
    [ ("fused", r.Tiling.fused, Lower.baseline_opts);
      ( "strip-mined",
        r.Tiling.stripped_with_copies,
        { Lower.default_opts with Lower.meta = false } );
      ("interchanged", r.Tiling.tiled, { Lower.default_opts with Lower.meta = false })
    ]
  in
  let fn = float_of_int n and fk = float_of_int k and fd = float_of_int d in
  let fb0 = float_of_int b0 and fb1 = float_of_int b1 in
  let tiles_n = Float.of_int ((n + b0 - 1) / b0) in
  List.concat_map
    (fun (stage, prog, opts) ->
      let design = Lower.program opts prog in
      let rep = Simulate.run ?machine design ~sizes in
      let expected_points = fn *. fd in
      let expected_centroids =
        match stage with
        | "interchanged" -> tiles_n *. fk *. fd
        | _ -> fn *. fk *. fd
      in
      let expected_onchip_points =
        match stage with "fused" -> fd | _ -> fb0 *. fd
      in
      let expected_onchip_centroids =
        match stage with "fused" -> fd | _ -> fb1 *. fd
      in
      let expected_onchip_mindist =
        match stage with "interchanged" -> 2.0 *. fb0 | _ -> 2.0
      in
      [ { structure = "points";
          stage;
          measured_words = Simulate.read_words rep "points";
          expected_words = expected_points;
          onchip_words = onchip_words_for design "pointsTile";
          expected_onchip = expected_onchip_points };
        { structure = "centroids";
          stage;
          measured_words = Simulate.read_words rep "centroids";
          expected_words = expected_centroids;
          onchip_words = onchip_words_for design "centroidsTile";
          expected_onchip = expected_onchip_centroids };
        { structure = "minDistWithIndex";
          stage;
          measured_words = 0.0;
          expected_words = 0.0;
          onchip_words = onchip_words_for design "minDistWithIndexs";
          expected_onchip = expected_onchip_mindist } ])
    stages

let print_fig5c rows =
  Printf.printf
    "Figure 5c — k-means main-memory reads and on-chip storage per structure\n";
  Printf.printf "%-18s %-13s %14s %14s %10s %10s\n" "structure" "stage"
    "DRAM words" "paper formula" "on-chip" "paper";
  List.iter
    (fun r ->
      Printf.printf "%-18s %-13s %14.0f %14.0f %10.0f %10.0f\n" r.structure
        r.stage r.measured_words r.expected_words r.onchip_words
        r.expected_onchip)
    rows

(* --------------------------- per-input traffic ---------------------- *)

type traffic_row = {
  tinput : string;
  tbaseline : float;
  ttiled : float;
  tprofile : int option;
}

let traffic ?machine ?(profile = false) ?sizes (bench : Suite.bench) =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> if profile then bench.Suite.test_sizes else bench.Suite.sim_sizes
  in
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  let base = Lower.program Lower.baseline_opts r.Tiling.fused in
  let tiled =
    Lower.program { Lower.default_opts with Lower.meta = false } r.Tiling.tiled
  in
  let rep_b = Simulate.run ?machine base ~sizes in
  let rep_t = Simulate.run ?machine tiled ~sizes in
  let prof =
    if profile then
      let inputs = bench.Suite.gen ~sizes ~seed:2026 in
      let _, counts = Mem_profile.run r.Tiling.tiled ~sizes ~inputs in
      Some counts
    else None
  in
  List.map
    (fun (inp : Ir.input) ->
      let name = Sym.base inp.Ir.iname in
      { tinput = name;
        tbaseline = Simulate.read_words rep_b name;
        ttiled = Simulate.read_words rep_t name;
        tprofile =
          Option.map (fun counts -> Mem_profile.words counts inp.Ir.iname) prof })
    bench.Suite.prog.Ir.inputs

let print_traffic bench_name rows =
  Printf.printf
    "Per-input DRAM read words for %s (the Fig. 5c analysis, generalized)\n"
    bench_name;
  Printf.printf "%-14s %14s %14s %8s" "input" "baseline" "tiled" "ratio";
  if List.exists (fun r -> r.tprofile <> None) rows then
    Printf.printf " %14s" "interp count";
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%-14s %14.0f %14.0f %7.1fx" r.tinput r.tbaseline r.ttiled
        (if r.ttiled > 0.0 then r.tbaseline /. r.ttiled else nan);
      (match r.tprofile with
      | Some w -> Printf.printf " %14d" w
      | None -> ());
      print_newline ())
    rows

(* ------------------------------ Table 5 ----------------------------- *)

let print_table5 benches =
  Printf.printf "Table 5 — evaluation benchmarks\n";
  Printf.printf "%-10s %-38s %s\n" "benchmark" "description" "collections ops";
  List.iter
    (fun (b : Suite.bench) ->
      Printf.printf "%-10s %-38s %s\n" b.Suite.name b.Suite.description
        b.Suite.collection_ops)
    benches
