let stage_cycles ?machine sizes stage =
  (Simulate.run ?machine
     { Hw.design_name = "stage"; mems = []; top = stage; par_factor = 1 }
     ~sizes)
    .Simulate.cycles

let boost_pipe factor = function
  | Hw.Pipe p -> Hw.Pipe { p with par = p.par * factor }
  | c -> c

let apply ?(factor = 4) ?machine (design : Hw.design) ~sizes =
  let rec go c =
    match c with
    | Hw.Seq s -> Hw.Seq { s with children = List.map go s.children }
    | Hw.Par p -> Hw.Par { p with children = List.map go p.children }
    | Hw.Loop ({ meta = true; stages; _ } as l) when List.length stages > 1 ->
        let stages = List.map go stages in
        let cycles = List.map (stage_cycles ?machine sizes) stages in
        let slowest =
          List.fold_left Float.max 0.0 cycles
        in
        let stages =
          List.map2
            (fun stage c ->
              if c >= slowest -. 0.5 then boost_pipe factor stage else stage)
            stages cycles
        in
        Hw.Loop { l with stages }
    | Hw.Loop l -> Hw.Loop { l with stages = List.map go l.stages }
    | c -> c
  in
  { design with Hw.top = go design.Hw.top }
