type t = { logic : float; ff : float; bram : float; dsp : float }

let zero = { logic = 0.0; ff = 0.0; bram = 0.0; dsp = 0.0 }

let add a b =
  { logic = a.logic +. b.logic;
    ff = a.ff +. b.ff;
    bram = a.bram +. b.bram;
    dsp = a.dsp +. b.dsp }

let scale k a =
  { logic = k *. a.logic; ff = k *. a.ff; bram = k *. a.bram; dsp = k *. a.dsp }

(* ---------------- per-template costs ---------------- *)

let m20k_bits = 20480.0

let bram_blocks ~depth ~width ~banks =
  let bits = float_of_int (depth * width) in
  Float.max (float_of_int banks) (ceil (bits /. m20k_bits))

let mem_cost (m : Hw.mem) =
  let blocks = bram_blocks ~depth:m.Hw.depth ~width:m.Hw.width_bits ~banks:m.Hw.banks in
  let ports = float_of_int (m.Hw.readers + m.Hw.writers) in
  match m.Hw.kind with
  | Hw.Buffer ->
      { logic = 50.0 +. (20.0 *. ports); ff = 40.0; bram = blocks; dsp = 0.0 }
  | Hw.Double_buffer ->
      (* two copies plus the swap control *)
      { logic = 120.0 +. (20.0 *. ports); ff = 90.0; bram = 2.0 *. blocks; dsp = 0.0 }
  | Hw.Cache ->
      (* data + tags + comparators *)
      { logic = 600.0; ff = 500.0; bram = blocks +. 2.0; dsp = 0.0 }
  | Hw.Fifo -> { logic = 250.0; ff = 200.0; bram = blocks; dsp = 0.0 }
  | Hw.Cam ->
      (* associative match logic scales with capacity *)
      { logic = 400.0 +. (2.0 *. float_of_int m.Hw.depth);
        ff = 300.0;
        bram = 2.0 *. blocks;
        dsp = 0.0 }
  | Hw.Reg ->
      { logic = 10.0; ff = float_of_int m.Hw.width_bits; bram = 0.0; dsp = 0.0 }

(* a DRAM command generator + alignment buffers (tile load/store unit, or
   one direct-access stream of the baseline) *)
let load_store_unit =
  (* command generator plus address/data stream buffers (Section 6.2:
     each unit "creates several control structures ... which require
     several on-chip buffers") *)
  { logic = 2200.0; ff = 3500.0; bram = 64.0; dsp = 0.0 }

(* fixed platform infrastructure present in every bitstream: DRAM
   controllers, PCIe/runtime interface (identical in all configurations,
   so it compresses Fig. 7's relative-resource ratios toward 1) *)
let platform_overhead =
  { logic = 25000.0; ff = 50000.0; bram = 300.0; dsp = 0.0 }

let flop_cost = { logic = 380.0; ff = 520.0; bram = 0.0; dsp = 0.5 }
let cmp_cost = { logic = 70.0; ff = 60.0; bram = 0.0; dsp = 0.0 }
let int_cost = { logic = 40.0; ff = 40.0; bram = 0.0; dsp = 0.0 }

let pipe_cost ~template ~par ~depth (ops : Hw.op_counts) =
  let p = float_of_int par in
  let datapath =
    add
      (scale (p *. float_of_int ops.Hw.flops) flop_cost)
      (add
         (scale (p *. float_of_int ops.Hw.cmp_ops) cmp_cost)
         (scale (p *. float_of_int ops.Hw.int_ops) int_cost))
  in
  let pipeline_regs =
    { zero with ff = float_of_int depth *. 32.0 *. p /. 4.0 }
  in
  let template_extra =
    match template with
    | Hw.Tree ->
        (* log-depth combining stages beyond the leaf operators *)
        scale (p -. 1.0) (scale 0.4 flop_cost)
    | Hw.Fifo_write -> { logic = 300.0; ff = 250.0; bram = 0.0; dsp = 0.0 }
    | Hw.Cam_update -> { logic = 350.0; ff = 250.0; bram = 0.0; dsp = 0.0 }
    | Hw.Vector | Hw.Scalar_unit -> zero
  in
  add datapath (add pipeline_regs template_extra)

let ctrl_overhead = { logic = 150.0; ff = 220.0; bram = 0.0; dsp = 0.0 }
let meta_stage_overhead = { logic = 110.0; ff = 160.0; bram = 0.0; dsp = 0.0 }

(* area charged to one controller node, excluding its children (the
   per-node view the attribution profiler aggregates by provenance) *)
let ctrl_cost = function
  | Hw.Seq _ | Hw.Par _ -> ctrl_overhead
  | Hw.Loop { meta; stages; _ } ->
      if meta then
        add ctrl_overhead
          (scale (float_of_int (List.length stages)) meta_stage_overhead)
      else ctrl_overhead
  | Hw.Pipe { template; par; depth; ops; dram; _ } ->
      (* each direct DRAM stream instantiates its own access unit *)
      add
        (pipe_cost ~template ~par ~depth ops)
        (scale (float_of_int (List.length dram)) load_store_unit)
  | Hw.Tile_load _ | Hw.Tile_store _ -> load_store_unit

let of_design (d : Hw.design) =
  let mems =
    List.fold_left (fun acc m -> add acc (mem_cost m)) platform_overhead
      d.Hw.mems
  in
  Hw.fold_ctrls (fun acc c -> add acc (ctrl_cost c)) mems d.Hw.top

let ratio a b =
  let div x y = if y = 0.0 then 1.0 else x /. y in
  { logic = div a.logic b.logic;
    ff = div a.ff b.ff;
    bram = div a.bram b.bram;
    dsp = div a.dsp b.dsp }

let stratix_v =
  { logic = 262400.0; ff = 1049600.0; bram = 2560.0; dsp = 1963.0 }

let utilization t = ratio t stratix_v

let fits t =
  let u = utilization t in
  u.logic <= 1.0 && u.ff <= 1.0 && u.bram <= 1.0 && u.dsp <= 1.0

let pp fmt t =
  Format.fprintf fmt "logic=%.0f ff=%.0f bram=%.0f dsp=%.0f" t.logic t.ff
    t.bram t.dsp

let pp_utilization fmt t =
  let u = utilization t in
  Format.fprintf fmt "logic %.1f%%, FF %.1f%%, mem %.1f%%, DSP %.1f%%"
    (100.0 *. u.logic) (100.0 *. u.ff) (100.0 *. u.bram) (100.0 *. u.dsp)
