(** Parametric area model of a hardware design, standing in for the
    Altera synthesis reports of Section 6.1.

    Costs are charged per template instance:
    - pipes: datapath operators scaled by the parallelism factor, plus
      pipeline registers;
    - memories: M20K-equivalent block RAM from depth x width (doubled for
      double buffers, at least one block per bank), flip-flops for
      registers, tag/match logic for caches and CAMs;
    - tile load/store units and each direct DRAM access stream: command
      generators with several internal buffers — the reason the paper's
      untiled k-means baseline uses {e more} on-chip memory than the tiled
      design (Section 6.2);
    - controllers: counters and handshaking, a little more for
      metapipeline double-buffer control.

    Absolute numbers are indicative; Fig. 7 uses the {e ratios} between
    configurations, which depend only on instance counts and buffer
    sizes. *)

type t = {
  logic : float;  (** ALM-equivalent logic *)
  ff : float;  (** flip-flops *)
  bram : float;  (** M20K-equivalent memory blocks *)
  dsp : float;
}

val zero : t
val add : t -> t -> t
val of_design : Hw.design -> t

val ctrl_cost : Hw.ctrl -> t
(** Area charged to one controller node, excluding its children.
    Summing [ctrl_cost] over the tree plus {!mem_cost} over the memories
    and the platform overhead reproduces {!of_design}. *)

val mem_cost : Hw.mem -> t
(** Area of one on-chip memory instance. *)

val platform_overhead : t
(** Fixed infrastructure present in every bitstream (DRAM controllers,
    host interface) — charged to no source pattern. *)

val ratio : t -> t -> t
(** [ratio a b] divides componentwise ([a]/[b]), for Fig. 7's
    relative-resource bars. *)

val stratix_v : t
(** Capacity of the evaluation FPGA (Stratix V GS D8-class): ALM-
    equivalent logic, flip-flops, M20K blocks, DSPs. *)

val utilization : t -> t
(** Componentwise fraction of {!stratix_v} (1.0 = full). *)

val fits : t -> bool
(** Every component within the chip. *)

val pp : Format.formatter -> t -> unit
val pp_utilization : Format.formatter -> t -> unit
