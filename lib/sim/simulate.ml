type traffic = (string * float) list

type report = {
  cycles : float;
  dram_cycles : float;
  reads : traffic;
  writes : traffic;
}

(* Traffic accumulates into a map keyed by array name: the assoc-list
   version walked the whole list per arrival (O(n^2) across a sweep).
   Per-key sums add in the same left-to-right order as before, so the
   floats are unchanged. *)
module Smap = Map.Make (String)

let add_words t arr words =
  Smap.update arr
    (function None -> Some words | Some w -> Some (w +. words))
    t

let merge_traffic a b = Smap.union (fun _ x y -> Some (x +. y)) a b
let scale_traffic f t = Smap.map (fun w -> f *. w) t

(* per-invocation result of one controller *)
type node_res = {
  n_cycles : float;
  n_dram : float;
  n_reads : float Smap.t;
  n_writes : float Smap.t;
}

let zero =
  { n_cycles = 0.0; n_dram = 0.0; n_reads = Smap.empty; n_writes = Smap.empty }

let seq_compose a b =
  { n_cycles = a.n_cycles +. b.n_cycles;
    n_dram = a.n_dram +. b.n_dram;
    n_reads = merge_traffic a.n_reads b.n_reads;
    n_writes = merge_traffic a.n_writes b.n_writes }

(* Direct-access traffic: outermost-in, dependent loops multiply; an
   independent loop multiplies only when the footprint beneath it exceeds
   the stream cache. *)
let direct_words (m : Machine.t) sizes (da : Hw.dram_access) =
  let rec go = function
    | [] -> 1.0
    | (trip, dep) :: rest ->
        let inner = go rest in
        let t = Hw.trip_eval sizes trip in
        if dep then t *. inner
        else if
          inner *. float_of_int m.Machine.word_bytes
          > float_of_int m.Machine.stream_cache_bytes
        then t *. inner
        else inner
  in
  go da.Hw.da_path

let direct_cycles (m : Machine.t) sizes par words (da : Hw.dram_access) =
  let transfer = words /. m.Machine.stream_words_per_cycle in
  let group = float_of_int (Int.max 1 par) in
  let requests =
    if not da.Hw.da_affine then
      (* data-dependent: one request per vector group of *iterations* —
         the address changes unpredictably every cycle *)
      let iters =
        List.fold_left
          (fun acc (t, _) -> acc *. Hw.trip_eval sizes t)
          1.0 da.Hw.da_path
      in
      iters /. group *. m.Machine.nonaffine_access_cost
    else if not da.Hw.da_contiguous then
      words /. group *. m.Machine.noncontig_group_cost
    else
      let row = Float.max 1.0 (Hw.trip_eval sizes da.Hw.da_row_words) in
      if row >= float_of_int m.Machine.burst_words then
        (* long sequential run: prefetch-friendly *)
        words /. float_of_int m.Machine.burst_words *. m.Machine.long_burst_cost
      else words /. row *. m.Machine.short_row_cost
  in
  Float.max transfer requests

(* compulsory words for a cache-served access: a cache captures the reuse,
   so only the dependent extents are fetched *)
let cached_footprint (_m : Machine.t) sizes (da : Hw.dram_access) =
  let rec go = function
    | [] -> 1.0
    | (trip, dep) :: rest ->
        let inner = go rest in
        if dep then Hw.trip_eval sizes trip *. inner else inner
  in
  go da.Hw.da_path

(* ------------------------- memoized sim ---------------------------- *)

(* Identity-keyed table over controller subtrees.  A node's result is a
   function of (machine, sizes, structure) only, so memoizing on physical
   identity is sound; physically equal nodes are structurally equal, so
   the default structural hash (bounded-depth, O(1)) is a valid hash for
   ( == ). *)
module Ctbl = Hashtbl.Make (struct
  type t = Hw.ctrl

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type cache = {
  mutable ckey : (Machine.t * (Sym.t * int) list) option;
  tbl : node_res Ctbl.t;
  mutable hits : int;  (** lifetime lookup hits (survive resets) *)
  mutable misses : int;  (** lifetime misses = distinct subtrees simulated *)
}

type cache_stats = { hits : int; misses : int }

let cache () = { ckey = None; tbl = Ctbl.create 64; hits = 0; misses = 0 }
let cache_stats (c : cache) = { hits = c.hits; misses = c.misses }
let cache_nodes c = Ctbl.length c.tbl

(* a cache is only valid for one (machine, sizes) pair: reset on change
   (the hit/miss counters are lifetime totals and are not reset) *)
let prepare cache machine sizes =
  match cache.ckey with
  | Some (m, s) when m == machine && s == sizes -> ()
  | Some (m, s) when m = machine && s = sizes -> ()
  | _ ->
      Ctbl.reset cache.tbl;
      cache.ckey <- Some (machine, sizes)

let rec sim cc (m : Machine.t) sizes (c : Hw.ctrl) : node_res =
  match Ctbl.find_opt cc.tbl c with
  | Some r ->
      cc.hits <- cc.hits + 1;
      r
  | None ->
      cc.misses <- cc.misses + 1;
      let r = sim_uncached cc m sizes c in
      Ctbl.add cc.tbl c r;
      r

and sim_uncached cc (m : Machine.t) sizes (c : Hw.ctrl) : node_res =
  match c with
  | Hw.Seq { children; _ } ->
      List.fold_left (fun acc ch -> seq_compose acc (sim cc m sizes ch)) zero
        children
  | Hw.Par { children; _ } ->
      let rs = List.map (sim cc m sizes) children in
      { n_cycles =
          Float.max
            (List.fold_left (fun acc r -> Float.max acc r.n_cycles) 0.0 rs)
            (List.fold_left (fun acc r -> acc +. r.n_dram) 0.0 rs);
        n_dram = List.fold_left (fun acc r -> acc +. r.n_dram) 0.0 rs;
        n_reads =
          List.fold_left
            (fun acc r -> merge_traffic acc r.n_reads)
            Smap.empty rs;
        n_writes =
          List.fold_left
            (fun acc r -> merge_traffic acc r.n_writes)
            Smap.empty rs }
  | Hw.Loop { trips; meta; stages; _ } ->
      let rs = List.map (sim cc m sizes) stages in
      let iter =
        List.fold_left (fun acc t -> acc *. Hw.trip_eval sizes t) 1.0 trips
      in
      let iter = Float.max iter 1.0 in
      let per_iter_sum =
        List.fold_left (fun acc r -> acc +. r.n_cycles) 0.0 rs
      in
      let cycles =
        if meta && List.length rs > 1 then begin
          (* fill once, then the steady-state bottleneck per iteration:
             the slowest stage, but at least the DRAM serialization *)
          let slowest =
            List.fold_left (fun acc r -> Float.max acc r.n_cycles) 0.0 rs
          in
          let dram_sum = List.fold_left (fun acc r -> acc +. r.n_dram) 0.0 rs in
          per_iter_sum +. ((iter -. 1.0) *. Float.max slowest dram_sum)
        end
        else iter *. per_iter_sum
      in
      { n_cycles = cycles;
        n_dram =
          iter *. List.fold_left (fun acc r -> acc +. r.n_dram) 0.0 rs;
        n_reads =
          scale_traffic iter
            (List.fold_left
               (fun acc r -> merge_traffic acc r.n_reads)
               Smap.empty rs);
        n_writes =
          scale_traffic iter
            (List.fold_left
               (fun acc r -> merge_traffic acc r.n_writes)
               Smap.empty rs) }
  | Hw.Pipe { trips; par; depth; ii; dram; _ } ->
      let iters =
        List.fold_left (fun acc t -> acc *. Hw.trip_eval sizes t) 1.0 trips
      in
      let compute =
        float_of_int depth
        +. (ceil (iters /. float_of_int (Int.max 1 par)) *. float_of_int ii)
      in
      let dram_res =
        List.fold_left
          (fun acc da ->
            let words = direct_words m sizes da in
            let cyc = direct_cycles m sizes par words da in
            let acc = { acc with n_dram = acc.n_dram +. cyc } in
            match da.Hw.da_kind with
            | `Read ->
                { acc with n_reads = add_words acc.n_reads da.Hw.da_array words }
            | `Cached ->
                let fp = Float.min (cached_footprint m sizes da) words in
                { acc with
                  n_dram = acc.n_dram -. cyc +. (fp /. m.Machine.stream_words_per_cycle);
                  n_reads = add_words acc.n_reads da.Hw.da_array fp }
            | `Write ->
                { acc with n_writes = add_words acc.n_writes da.Hw.da_array words })
          zero dram
      in
      { n_cycles = Float.max compute dram_res.n_dram;
        n_dram = dram_res.n_dram;
        n_reads = dram_res.n_reads;
        n_writes = dram_res.n_writes }
  | Hw.Tile_load { words; reuse; array; _ } ->
      let w = Hw.trip_eval sizes words /. float_of_int (Int.max 1 reuse) in
      let cyc = m.Machine.tile_latency +. (w /. m.Machine.stream_words_per_cycle) in
      { n_cycles = cyc;
        n_dram = cyc;
        n_reads = Smap.singleton array w;
        n_writes = Smap.empty }
  | Hw.Tile_store { words; array; _ } ->
      let w = Hw.trip_eval sizes words in
      let cyc = m.Machine.tile_latency +. (w /. m.Machine.stream_words_per_cycle) in
      { n_cycles = cyc;
        n_dram = cyc;
        n_reads = Smap.empty;
        n_writes = Smap.singleton array w }

let scratch_or machine sizes = function
  | Some c ->
      prepare c machine sizes;
      c
  | None -> cache ()

let run ?(machine = Machine.default) ?cache:c (d : Hw.design) ~sizes =
  let cc = scratch_or machine sizes c in
  let r = sim cc machine sizes d.Hw.top in
  { cycles = r.n_cycles;
    dram_cycles = r.n_dram;
    reads = Smap.bindings r.n_reads;
    writes = Smap.bindings r.n_writes }

(* ------------------------- per-node measurement -------------------- *)

type node_report = {
  nr_cycles : float;
  nr_dram : float;
  nr_reads : traffic;
  nr_writes : traffic;
}

let measure ?(machine = Machine.default) ?cache:c (d : Hw.design) ~sizes =
  let cc = scratch_or machine sizes c in
  (* fill the memo table once from the root so per-node queries are O(1) *)
  ignore (sim cc machine sizes d.Hw.top);
  fun ctrl ->
    let r = sim cc machine sizes ctrl in
    { nr_cycles = r.n_cycles;
      nr_dram = r.n_dram;
      nr_reads = Smap.bindings r.n_reads;
      nr_writes = Smap.bindings r.n_writes }

(* ------------------------- breakdown ------------------------------- *)

type breakdown_row = {
  br_name : string;
  br_depth : int;
  br_kind : string;
  br_cycles : float;
  br_invocations : float;
}

let kind_of = function
  | Hw.Seq _ -> "sequential"
  | Hw.Par _ -> "parallel"
  | Hw.Loop { meta = true; _ } -> "metapipeline"
  | Hw.Loop _ -> "loop"
  | Hw.Pipe { template; _ } -> (
      match template with
      | Hw.Vector -> "pipe/vector"
      | Hw.Tree -> "pipe/tree"
      | Hw.Fifo_write -> "pipe/fifo"
      | Hw.Cam_update -> "pipe/cam"
      | Hw.Scalar_unit -> "pipe/scalar")
  | Hw.Tile_load _ -> "tile-load"
  | Hw.Tile_store _ -> "tile-store"

let breakdown ?(machine = Machine.default) ?cache:c (d : Hw.design) ~sizes =
  (* one memo table serves every node: the root's sim fills it, so the
     per-node lookups below are O(1) instead of re-simulating each
     subtree once per ancestor (O(n * depth)) *)
  let cc = scratch_or machine sizes c in
  let rows = ref [] in
  let rec go depth invocations c =
    let r = sim cc machine sizes c in
    rows :=
      { br_name = Hw.ctrl_name c;
        br_depth = depth;
        br_kind = kind_of c;
        br_cycles = r.n_cycles;
        br_invocations = invocations }
      :: !rows;
    let child_invocations =
      match c with
      | Hw.Loop { trips; _ } ->
          invocations
          *. Float.max 1.0
               (List.fold_left
                  (fun acc t -> acc *. Hw.trip_eval sizes t)
                  1.0 trips)
      | _ -> invocations
    in
    List.iter (go (depth + 1) child_invocations) (Hw.children c)
  in
  go 0 1.0 d.Hw.top;
  List.rev !rows

let pp_breakdown fmt rows =
  Format.fprintf fmt "%-34s %-14s %14s %12s@." "controller" "kind"
    "cycles/invoc" "invocations";
  List.iter
    (fun r ->
      Format.fprintf fmt "%s%-*s %-14s %14.0f %12.0f@."
        (String.make (2 * r.br_depth) ' ')
        (34 - (2 * r.br_depth))
        r.br_name r.br_kind r.br_cycles r.br_invocations)
    rows

(* ------------------------- bottlenecks ----------------------------- *)

type bottleneck_row = {
  bn_loop : string;
  bn_iters : float;
  bn_stage : string;
  bn_stage_cycles : float;
  bn_dram_sum : float;
  bn_bound : [ `Stage | `Dram ];
  bn_frac : float;
}

let bottlenecks ?(machine = Machine.default) ?cache:c (d : Hw.design) ~sizes =
  let cc = scratch_or machine sizes c in
  let rows = ref [] in
  Hw.iter_ctrls
    (fun c ->
      match c with
      | Hw.Loop { name; trips; meta = true; stages; _ } when List.length stages > 1
        ->
          let rs =
            List.map (fun s -> (Hw.ctrl_name s, sim cc machine sizes s)) stages
          in
          let iters =
            Float.max 1.0
              (List.fold_left
                 (fun acc t -> acc *. Hw.trip_eval sizes t)
                 1.0 trips)
          in
          let slow_name, slow =
            List.fold_left
              (fun ((_, sc) as best) ((_, r) as cand) ->
                if r.n_cycles > sc.n_cycles then cand else best)
              (List.hd rs) (List.tl rs)
          in
          let dram_sum =
            List.fold_left (fun acc (_, r) -> acc +. r.n_dram) 0.0 rs
          in
          let steady = Float.max slow.n_cycles dram_sum in
          rows :=
            { bn_loop = name;
              bn_iters = iters;
              bn_stage = slow_name;
              bn_stage_cycles = slow.n_cycles;
              bn_dram_sum = dram_sum;
              bn_bound = (if slow.n_cycles >= dram_sum then `Stage else `Dram);
              bn_frac = (if steady > 0.0 then slow.n_cycles /. steady else 1.0)
            }
            :: !rows
      | _ -> ())
    d.Hw.top;
  List.rev !rows

let pp_bottlenecks fmt rows =
  Format.fprintf fmt "%-22s %10s  %-28s %12s %12s  %s@." "metapipeline" "iters"
    "slowest stage" "stage cyc" "dram sum" "steady-state bound";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s %10.0f  %-28s %12.0f %12.0f  %s@." r.bn_loop
        r.bn_iters r.bn_stage r.bn_stage_cycles r.bn_dram_sum
        (match r.bn_bound with
        | `Stage ->
            Printf.sprintf "compute (stage is %.0f%% of steady state)"
              (100.0 *. r.bn_frac)
        | `Dram -> "DRAM serialization"))
    rows

let read_words r arr =
  match List.assoc_opt arr r.reads with Some w -> w | None -> 0.0

let written_words r arr =
  match List.assoc_opt arr r.writes with Some w -> w | None -> 0.0

let total_read r = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 r.reads
let total_written r = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 r.writes

let pp_report fmt r =
  Format.fprintf fmt "cycles: %.0f (dram-busy %.0f)@." r.cycles r.dram_cycles;
  List.iter
    (fun (a, w) -> Format.fprintf fmt "  read  %-16s %12.0f words@." a w)
    r.reads;
  List.iter
    (fun (a, w) -> Format.fprintf fmt "  write %-16s %12.0f words@." a w)
    r.writes
