type span = {
  sp_track : string;
  sp_name : string;
  sp_start : float;
  sp_finish : float;
  sp_args : (string * float) list;
}

type timeline = {
  tl_spans : span list;
  tl_dram_busy : (float * float) list;
  tl_makespan : float;
}

type track_stats = {
  tk_track : string;
  tk_spans : int;
  tk_busy : float;
  tk_first : float;
  tk_last : float;
}

type result = {
  report : Simulate.report;
  events : int;
  fallbacks : int;
  timeline : timeline option;
}

let max_events = 200_000

(* Mutable simulation state: the DRAM interface as a calendar of busy
   intervals (a request is granted the earliest idle gap at or after its
   request time — so a transfer issued by a later-visited controller can
   still use memory idle time before an earlier-visited one), the event
   budget, and traffic accumulators. *)
type st = {
  machine : Machine.t;
  sizes : (Sym.t * int) list;
  mutable dram_cal : (float * float) list;  (** sorted disjoint busy spans *)
  mutable dram_busy : float;  (** accumulated DRAM-busy cycles *)
  mutable events : int;
  mutable fallbacks : int;
  mutable reads : (string * float) list;
  mutable writes : (string * float) list;
  record : bool;  (** collect the timeline *)
  mutable spans : span list;  (** newest first *)
}

let push_span st ~track ~name ~start ~finish args =
  if st.record then
    st.spans <-
      { sp_track = track; sp_name = name; sp_start = start; sp_finish = finish;
        sp_args = args }
      :: st.spans

let add st table (arr, words) =
  let rec go = function
    | [] -> [ (arr, words) ]
    | (a, w) :: rest when a = arr -> (a, w +. words) :: rest
    | x :: rest -> x :: go rest
  in
  match table with
  | `R -> st.reads <- go st.reads
  | `W -> st.writes <- go st.writes

(* Acquire [dur] cycles of DRAM time starting no earlier than [t].  The
   interface time-multiplexes outstanding transfers at burst granularity,
   so a request simply consumes the idle gaps of the calendar in time
   order (preemptive FIFO) rather than needing one contiguous slot.
   Returns the completion time. *)
let dram_transfer st t dur =
  if dur <= 0.0 then t
  else begin
    st.dram_busy <- st.dram_busy +. dur;
    let rec consume cursor remaining spans acc_new =
      match spans with
      | [] -> ((cursor, cursor +. remaining) :: acc_new, cursor +. remaining)
      | (s, e) :: rest ->
          if e <= cursor then consume cursor remaining rest acc_new
          else if s <= cursor then consume e remaining rest acc_new
          else begin
            let gap = s -. cursor in
            if gap >= remaining then
              ((cursor, cursor +. remaining) :: acc_new, cursor +. remaining)
            else consume e (remaining -. gap) rest ((cursor, s) :: acc_new)
          end
    in
    let new_spans, fin = consume (Float.max t 0.0) dur st.dram_cal [] in
    let sorted =
      List.sort compare (List.rev_append new_spans st.dram_cal)
    in
    let rec merge = function
      | (s1, e1) :: (s2, e2) :: rest when e1 >= s2 ->
          merge ((s1, Float.max e1 e2) :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    let cal = merge sorted in
    (* keep the calendar bounded: beyond 2048 spans, conservatively
       coalesce the oldest half into one busy span (requests rarely
       back-fill that far; the approximation is pessimistic) *)
    let cal =
      let len = List.length cal in
      if len <= 2048 then cal
      else begin
        let rec split i acc = function
          | x :: rest when i > 0 -> split (i - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let old, recent = split (len / 2) [] cal in
        match (old, List.rev old) with
        | (s0, _) :: _, (_, e_last) :: _ -> (s0, e_last) :: recent
        | _ -> cal
      end
    in
    st.dram_cal <- cal;
    fin
  end

let trip_count st trips =
  let x =
    List.fold_left (fun acc t -> acc *. Hw.trip_eval st.sizes t) 1.0 trips
  in
  Float.max 1.0 x

(* One invocation of a leaf, starting at [t]; returns its finish time. *)
let leaf st t (c : Hw.ctrl) =
  st.events <- st.events + 1;
  match c with
  | Hw.Pipe { trips; par; depth; ii; dram; _ } ->
      let iters = trip_count st trips in
      let compute =
        float_of_int depth
        +. (ceil (iters /. float_of_int (Int.max 1 par)) *. float_of_int ii)
      in
      let mem_end =
        List.fold_left
          (fun acc da ->
            let words = Simulate.direct_words st.machine st.sizes da in
            let cyc, words =
              match da.Hw.da_kind with
              | `Cached ->
                  let fp =
                    Float.min (Simulate.cached_footprint st.machine st.sizes da) words
                  in
                  (fp /. st.machine.Machine.stream_words_per_cycle, fp)
              | _ ->
                  (Simulate.direct_cycles st.machine st.sizes par words da, words)
            in
            add st (match da.Hw.da_kind with `Write -> `W | _ -> `R)
              (da.Hw.da_array, words);
            Float.max acc (dram_transfer st t cyc))
          t dram
      in
      Float.max (t +. compute) mem_end
  | Hw.Tile_load { words; reuse; array; _ } ->
      let w =
        Hw.trip_eval st.sizes words /. float_of_int (Int.max 1 reuse)
      in
      add st `R (array, w);
      dram_transfer st t
        (st.machine.Machine.tile_latency
        +. (w /. st.machine.Machine.stream_words_per_cycle))
  | Hw.Tile_store { words; array; _ } ->
      let w = Hw.trip_eval st.sizes words in
      add st `W (array, w);
      dram_transfer st t
        (st.machine.Machine.tile_latency
        +. (w /. st.machine.Machine.stream_words_per_cycle))
  | _ -> t

(* fall back to the analytic engine for an oversized subtree *)
let analytic_fallback st t c =
  st.fallbacks <- st.fallbacks + 1;
  let rep =
    Simulate.run ~machine:st.machine
      { Hw.design_name = "sub"; mems = []; top = c; par_factor = 1 }
      ~sizes:st.sizes
  in
  List.iter (fun rw -> add st `R rw) rep.Simulate.reads;
  List.iter (fun rw -> add st `W rw) rep.Simulate.writes;
  ignore (dram_transfer st t rep.Simulate.dram_cycles);
  t +. rep.Simulate.cycles

(* static count of controller instances a subtree would schedule *)
let rec instance_count st (c : Hw.ctrl) =
  match c with
  | Hw.Pipe _ | Hw.Tile_load _ | Hw.Tile_store _ -> 1.0
  | Hw.Seq { children; _ } | Hw.Par { children; _ } ->
      List.fold_left (fun acc ch -> acc +. instance_count st ch) 1.0 children
  | Hw.Loop { trips; stages; _ } ->
      let per_iter =
        List.fold_left (fun acc ch -> acc +. instance_count st ch) 1.0 stages
      in
      1.0 +. (trip_count st trips *. per_iter)

let rec exec st t (c : Hw.ctrl) =
  match c with
  | Hw.Pipe _ | Hw.Tile_load _ | Hw.Tile_store _ -> leaf st t c
  | Hw.Seq { children; _ } ->
      List.fold_left (fun now ch -> exec st now ch) t children
  | Hw.Par { children; _ } ->
      (* all start together; the DRAM queue serializes their transfers in
         list order *)
      List.fold_left (fun fin ch -> Float.max fin (exec st t ch)) t children
  | Hw.Loop { name; trips; meta; stages; _ } ->
      if instance_count st c > float_of_int max_events then
        analytic_fallback st t c
      else begin
        let iters = int_of_float (trip_count st trips) in
        if (not meta) || List.length stages <= 1 then begin
          let now = ref t in
          for _ = 1 to iters do
            List.iter (fun s -> now := exec st !now s) stages
          done;
          !now
        end
        else begin
          (* metapipeline: stage s of iteration i waits for stage s-1 of
             iteration i and for its own iteration i-1 (double buffer) *)
          let nstages = List.length stages in
          let avail = Array.make nstages t in
          let finish_last = ref t in
          for i = 1 to iters do
            let prev_done = ref t in
            List.iteri
              (fun s stage ->
                let start = Float.max !prev_done avail.(s) in
                let fin = exec st start stage in
                (* Gantt: one track per metapipeline stage, one span per
                   iteration instance; stage instances never overlap on
                   their own track (avail.(s) serializes them) *)
                push_span st
                  ~track:(name ^ "." ^ Hw.ctrl_name stage)
                  ~name:(Printf.sprintf "%s#%d" (Hw.ctrl_name stage) i)
                  ~start ~finish:fin
                  [ ("iteration", float_of_int i) ];
                avail.(s) <- fin;
                prev_done := fin;
                if s = nstages - 1 then finish_last := fin)
              stages
          done;
          !finish_last
        end
      end

let run ?(machine = Machine.default) ?(record = false) (d : Hw.design) ~sizes =
  let st =
    { machine; sizes; dram_cal = []; dram_busy = 0.0; events = 0;
      fallbacks = 0; reads = []; writes = []; record; spans = [] }
  in
  (* when recording, each top-level controller also gets a span on its
     own track (the same schedule exec applies: Seq chains, Par forks) *)
  let traced_child now ch =
    let fin = exec st now ch in
    push_span st ~track:(Hw.ctrl_name ch) ~name:(Hw.ctrl_name ch) ~start:now
      ~finish:fin
      [ ("top-level", 1.0) ];
    fin
  in
  let fin =
    match d.Hw.top with
    | Hw.Seq { children; _ } when record ->
        List.fold_left traced_child 0.0 children
    | Hw.Par { children; _ } when record ->
        List.fold_left
          (fun fin ch -> Float.max fin (traced_child 0.0 ch))
          0.0 children
    | top -> exec st 0.0 top
  in
  { report =
      { Simulate.cycles = fin;
        dram_cycles = st.dram_busy;
        reads = List.sort compare st.reads;
        writes = List.sort compare st.writes };
    events = st.events;
    fallbacks = st.fallbacks;
    timeline =
      (if record then
         Some
           { tl_spans = List.rev st.spans;
             tl_dram_busy = st.dram_cal;
             tl_makespan = fin }
       else None) }

let track_stats tl =
  let tbl : (string, track_stats) Hashtbl.t = Hashtbl.create 16 in
  let touch track start finish =
    match Hashtbl.find_opt tbl track with
    | Some tk ->
        Hashtbl.replace tbl track
          { tk with
            tk_spans = tk.tk_spans + 1;
            tk_busy = tk.tk_busy +. (finish -. start);
            tk_first = Float.min tk.tk_first start;
            tk_last = Float.max tk.tk_last finish }
    | None ->
        Hashtbl.add tbl track
          { tk_track = track; tk_spans = 1; tk_busy = finish -. start;
            tk_first = start; tk_last = finish }
  in
  List.iter (fun sp -> touch sp.sp_track sp.sp_start sp.sp_finish) tl.tl_spans;
  List.iter (fun (s, e) -> touch "DRAM" s e) tl.tl_dram_busy;
  List.sort
    (fun a b -> String.compare a.tk_track b.tk_track)
    (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
