(** Event-level simulation of a hardware design.

    Where {!Simulate} composes closed-form cycle counts, this engine
    schedules every controller {e instance} (each loop iteration of each
    stage) on a virtual timeline with two structural constraints the
    analytic model only approximates:

    - {b double buffering}: stage [s] of metapipeline iteration [i] starts
      only once stage [s-1] has finished iteration [i] {e and} stage [s]
      itself has finished iteration [i-1];
    - {b DRAM serialization}: all tile load/store units and direct-access
      streams contend for one memory interface, granted in request order.

    Agreement between the two engines (checked in the test suite) validates
    the analytic metapipeline formula [fill + (trips-1) * max(slowest
    stage, sum of memory stages)] that Fig. 7 rests on.

    Designs whose loop structure exceeds {!val:max_events} controller
    instances fall back to the analytic engine for the offending subtree
    (reported in {!result}); none of the paper's designs do. *)

type result = {
  report : Simulate.report;
  events : int;  (** controller instances scheduled *)
  fallbacks : int;  (** subtrees beyond the event budget, analytic *)
}

val max_events : int

val run :
  ?machine:Machine.t -> Hw.design -> sizes:(Sym.t * int) list -> result
