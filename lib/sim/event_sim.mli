(** Event-level simulation of a hardware design.

    Where {!Simulate} composes closed-form cycle counts, this engine
    schedules every controller {e instance} (each loop iteration of each
    stage) on a virtual timeline with two structural constraints the
    analytic model only approximates:

    - {b double buffering}: stage [s] of metapipeline iteration [i] starts
      only once stage [s-1] has finished iteration [i] {e and} stage [s]
      itself has finished iteration [i-1];
    - {b DRAM serialization}: all tile load/store units and direct-access
      streams contend for one memory interface, granted in request order.

    Agreement between the two engines (checked in the test suite) validates
    the analytic metapipeline formula [fill + (trips-1) * max(slowest
    stage, sum of memory stages)] that Fig. 7 rests on.

    Designs whose loop structure exceeds {!val:max_events} controller
    instances fall back to the analytic engine for the offending subtree
    (reported in {!result}); none of the paper's designs do. *)

(** {1 Timeline}

    With [~record:true], {!run} additionally captures its virtual
    schedule as a Gantt timeline: one track per metapipeline stage
    (track [loop.stage], one span per iteration instance), one track
    per top-level controller, and the DRAM busy calendar.  The timeline
    is a pure function of (machine, sizes, design) — bit-identical
    across runs — and is what [ppl-fpga timeline] and [--trace] export
    as Perfetto JSON (see {!Sim_trace}). *)

type span = {
  sp_track : string;  (** e.g. ["loop_3.stage_load_4"] *)
  sp_name : string;  (** instance label, e.g. ["stage_load_4#17"] *)
  sp_start : float;  (** virtual cycles *)
  sp_finish : float;
  sp_args : (string * float) list;  (** e.g. the iteration index *)
}

type timeline = {
  tl_spans : span list;  (** in schedule order; per-track starts ascend *)
  tl_dram_busy : (float * float) list;  (** merged DRAM busy intervals *)
  tl_makespan : float;  (** = [report.cycles] *)
}

type track_stats = {
  tk_track : string;
  tk_spans : int;
  tk_busy : float;  (** summed span cycles on the track *)
  tk_first : float;
  tk_last : float;
}

val track_stats : timeline -> track_stats list
(** Per-track occupancy (including the synthetic [DRAM] track), sorted
    by track name.  Utilization is [tk_busy /. tl_makespan]; stall is
    [(tk_last -. tk_first) -. tk_busy]. *)

type result = {
  report : Simulate.report;
  events : int;  (** controller instances scheduled *)
  fallbacks : int;  (** subtrees beyond the event budget, analytic *)
  timeline : timeline option;  (** present iff [~record:true] *)
}

val max_events : int

val run :
  ?machine:Machine.t ->
  ?record:bool ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  result
