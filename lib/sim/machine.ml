type t = {
  clock_mhz : float;
  stream_words_per_cycle : float;
  burst_words : int;
  long_burst_cost : float;
  short_row_cost : float;
  noncontig_group_cost : float;
  nonaffine_access_cost : float;
  tile_latency : float;
  word_bytes : int;
  stream_cache_bytes : int;
}

let default =
  { clock_mhz = 150.0;
    stream_words_per_cycle = 8.0;
    burst_words = 96;
    long_burst_cost = 20.0;
    short_row_cost = 16.0;
    noncontig_group_cost = 4.0;
    nonaffine_access_cost = 8.0;
    tile_latency = 100.0;
    word_bytes = 4;
    stream_cache_bytes = 16 * 1024 }

let seconds t cycles = cycles /. (t.clock_mhz *. 1e6)
