(** Machine model of the evaluation platform (Section 6.1): an Altera
    Stratix V on a Max4 Maia board — 48 GB DDR3, 76.8 GB/s peak, 384-byte
    bursts, FPGA designs clocked at 150 MHz.

    Tile load/store units stream prefetched sequential data at sustained
    stream bandwidth with one request latency per tile.  Direct accesses —
    how the burst-locality baseline of Section 6.1 and non-affine accesses
    touch memory — pay per-request costs that depend on the access shape:

    - long sequential runs (at least one burst) are prefetch-friendly and
      pay a small per-burst scheduling cost;
    - short rows (shorter than a burst, e.g. one matrix row per outer
      iteration) pay a page-hit-latency cost per row;
    - regular non-contiguous accesses (strided columns) are grouped over
      the vector width and pay a pipelined request cost per group;
    - data-dependent (non-affine) accesses pay an unpipelined request per
      vector group — unless the design allocated a cache for them. *)

type t = {
  clock_mhz : float;
  stream_words_per_cycle : float;  (** sustained streaming words/cycle *)
  burst_words : int;  (** words per DRAM burst (384 B / 4 B) *)
  long_burst_cost : float;  (** cycles/burst for long sequential runs *)
  short_row_cost : float;  (** cycles/row for sub-burst rows *)
  noncontig_group_cost : float;  (** cycles per vector group, strided *)
  nonaffine_access_cost : float;  (** cycles per vector group, data-dependent *)
  tile_latency : float;  (** request latency per tile transfer *)
  word_bytes : int;
  stream_cache_bytes : int;
      (** burst-locality reuse window: an address-independent loop
          re-reads only when its inner footprint exceeds this *)
}

val default : t
val seconds : t -> float -> float
