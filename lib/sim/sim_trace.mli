(** Bridge from {!Event_sim} timelines to the observability layer.

    {!record} pushes every timeline span (stage instances, top-level
    controllers, DRAM busy intervals) into the global {!Trace} collector
    as virtual-cycle B/E events, and publishes per-track occupancy into
    {!Metrics} as gauges ([sim.track.<track>.busy_cycles], [.util],
    [.stall_cycles], [.spans]) plus [sim.makespan_cycles].  All recorded
    data is on the virtual clock, so the resulting trace JSON is
    bit-deterministic. *)

val record : Event_sim.timeline -> unit
