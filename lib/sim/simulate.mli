(** Hierarchical cycle simulator for hardware designs.

    Every controller is reduced to (cycles, DRAM-busy cycles, per-array
    traffic), composing upward:
    - a pipe runs [fill + ceil(iterations / par)] compute cycles and
      overlaps its own streaming, so it costs the max of compute and its
      direct-DRAM time;
    - tile load/store units cost one request latency plus the streamed
      words at stream bandwidth;
    - [Seq] sums children, [Par] takes their max but sums their DRAM time
      (the memory system serializes);
    - a sequential [Loop] multiplies the per-iteration sum by its trip
      count; a metapipelined [Loop] pays one fill (the sum) and then a
      steady-state bottleneck per iteration — the slowest stage, but no
      less than the sum of the memory stages, which all share DRAM.

    Direct accesses follow the burst-reuse rule: walking the loop path
    outermost-in, an address-dependent loop multiplies traffic; an
    address-independent loop multiplies only when the footprint beneath it
    exceeds the stream cache.  Non-contiguous accesses amortize each burst
    over only [par] useful words; contiguous ones over a full burst.

    Fig. 5c's "minimum words read from main memory" is the [reads] side of
    the traffic report; Fig. 7's speedups are ratios of [cycles]. *)

type traffic = (string * float) list  (** array name -> words *)

type report = {
  cycles : float;
  dram_cycles : float;  (** cycles during which DRAM is busy *)
  reads : traffic;  (** words read per DRAM array *)
  writes : traffic;  (** words written per DRAM array *)
}

type cache
(** Identity-keyed memo over controller subtrees.  One [sim] pass fills
    it; {!run}, {!breakdown} and {!bottlenecks} sharing a cache then
    reuse each node's result instead of re-simulating every subtree once
    per ancestor.  A cache is valid for one (machine, sizes) pair and
    resets itself transparently when either changes.  Memoized calls
    return exactly what the unmemoized ones return. *)

val cache : unit -> cache

type cache_stats = { hits : int; misses : int }
(** Lifetime lookup totals for a cache: [hits] counts memo-table hits,
    [misses] counts distinct subtrees actually simulated.  The counters
    survive the transparent reset on a (machine, sizes) change, so a
    second report sharing the cache at the same sizes is all hits. *)

val cache_stats : cache -> cache_stats

val cache_nodes : cache -> int
(** Memoized controller subtrees currently held (resets with the table
    on a (machine, sizes) change). *)

val run :
  ?machine:Machine.t ->
  ?cache:cache ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  report

(** {1 Cost primitives}

    Shared with the event-driven engine ({!Event_sim}). *)

val direct_words :
  Machine.t -> (Sym.t * int) list -> Hw.dram_access -> float
(** Words actually fetched by a direct access, after the burst-locality
    reuse rule over its loop path. *)

val direct_cycles :
  Machine.t -> (Sym.t * int) list -> int -> float -> Hw.dram_access -> float
(** [direct_cycles m sizes par words da]: DRAM-busy cycles for a direct
    access that moves [words], under the request-cost model. *)

val cached_footprint :
  Machine.t -> (Sym.t * int) list -> Hw.dram_access -> float
(** Compulsory words for a cache-served access (dependent extents only). *)

(** {1 Per-node measurement} *)

type node_report = {
  nr_cycles : float;  (** per-invocation cycles of the subtree *)
  nr_dram : float;  (** per-invocation DRAM-busy cycles *)
  nr_reads : traffic;  (** per-invocation words read, per DRAM array *)
  nr_writes : traffic;
}

val measure :
  ?machine:Machine.t ->
  ?cache:cache ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  Hw.ctrl ->
  node_report
(** [measure d ~sizes] simulates the design once (filling the memo
    table) and returns an O(1) query for any controller subtree of [d]:
    exactly the (cycles, DRAM-busy, traffic) the composing simulator
    assigned that node per invocation.  Querying the root reproduces
    {!run}.  The attribution profiler is the main client. *)

(** {1 Breakdown} *)

type breakdown_row = {
  br_name : string;
  br_depth : int;  (** nesting depth in the controller tree *)
  br_kind : string;  (** "metapipeline", "pipe", "tile-load", ... *)
  br_cycles : float;  (** per-invocation cycles of this controller *)
  br_invocations : float;  (** times it runs, given enclosing trips *)
}

val kind_of : Hw.ctrl -> string
(** Display kind of a controller ("metapipeline", "pipe/vector", ...). *)

val breakdown :
  ?machine:Machine.t ->
  ?cache:cache ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  breakdown_row list
(** Per-controller timing table, pre-order.  [br_cycles *.
    br_invocations] is each controller's total contribution (overlap in
    metapipelines means children can sum to more than the parent). *)

val pp_breakdown : Format.formatter -> breakdown_row list -> unit

(** {1 Bottlenecks}

    The analysis behind the paper's gda rebalancing (§6.2): for every
    metapipeline, which stage limits the steady state, and whether the
    limit is that stage's compute or the shared DRAM channel. *)

type bottleneck_row = {
  bn_loop : string;  (** metapipelined loop name *)
  bn_iters : float;  (** iterations at the given sizes *)
  bn_stage : string;  (** slowest stage *)
  bn_stage_cycles : float;  (** its per-iteration cycles *)
  bn_dram_sum : float;  (** sum of all stages' DRAM-busy cycles *)
  bn_bound : [ `Stage | `Dram ];  (** what sets the steady state *)
  bn_frac : float;  (** slowest-stage share of the steady state *)
}

val bottlenecks :
  ?machine:Machine.t ->
  ?cache:cache ->
  Hw.design ->
  sizes:(Sym.t * int) list ->
  bottleneck_row list

val pp_bottlenecks : Format.formatter -> bottleneck_row list -> unit

val read_words : report -> string -> float
(** Words read from the named array (0 if absent). *)

val written_words : report -> string -> float
val total_read : report -> float
val total_written : report -> float
val pp_report : Format.formatter -> report -> unit
