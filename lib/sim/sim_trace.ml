let record (tl : Event_sim.timeline) =
  List.iter
    (fun (sp : Event_sim.span) ->
      Trace.virtual_span ~cat:"sim" ~track:sp.Event_sim.sp_track
        ~name:sp.Event_sim.sp_name ~start:sp.Event_sim.sp_start
        ~finish:sp.Event_sim.sp_finish
        ~args:
          (List.map (fun (k, v) -> (k, Trace.Float v)) sp.Event_sim.sp_args)
        ())
    tl.Event_sim.tl_spans;
  List.iter
    (fun (s, e) ->
      Trace.virtual_span ~cat:"sim" ~track:"DRAM" ~name:"busy" ~start:s
        ~finish:e ())
    tl.Event_sim.tl_dram_busy;
  let makespan = tl.Event_sim.tl_makespan in
  Metrics.set_gauge "sim.makespan_cycles" makespan;
  List.iter
    (fun (tk : Event_sim.track_stats) ->
      let base = "sim.track." ^ tk.Event_sim.tk_track in
      Metrics.set_gauge (base ^ ".spans") (float_of_int tk.Event_sim.tk_spans);
      Metrics.set_gauge (base ^ ".busy_cycles") tk.Event_sim.tk_busy;
      Metrics.set_gauge (base ^ ".util")
        (if makespan > 0.0 then tk.Event_sim.tk_busy /. makespan else 0.0);
      Metrics.set_gauge (base ^ ".stall_cycles")
        (Float.max 0.0
           (tk.Event_sim.tk_last -. tk.Event_sim.tk_first
          -. tk.Event_sim.tk_busy)))
    (Event_sim.track_stats tl)
