(** IR-level memory profiling.

    Counts, during reference evaluation, how many words are read from each
    program input — element reads count one word, tile copies count their
    region size (discounted by the reuse factor).  On a tiled program
    whose input accesses all go through tile copies this equals the words
    a hardware implementation moves from DRAM, so it cross-checks both the
    closed forms of Fig. 5c and the simulator's traffic counters, from a
    third, independent direction (actual execution). *)

type counts = (Sym.t * int) list

val run :
  ?mode:Eval.mode ->
  Ir.program ->
  sizes:(Sym.t * int) list ->
  inputs:(Sym.t * Value.t) list ->
  Value.t * counts
(** Evaluate the program, returning its value and the per-input word
    counts (inputs with zero accesses are included). *)

val words : counts -> Sym.t -> int
val pp : Format.formatter -> counts -> unit
