open Ir
module V = Value

type mode = Sequential | Chunked of int | Parallel of int
type env = V.t Sym.Map.t

(* Parallel mode only fans out at the outermost reduction: worker domains
   carry this flag and evaluate nested patterns in chunked (but
   single-domain) fashion, so the result is bit-identical to [Chunked]
   with the same chunk size. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let lookup env s =
  match Sym.Map.find_opt s env with
  | Some v -> v
  | None -> err "unbound symbol %s" (Sym.name s)

(* Optional access instrumentation (see Profile).  A single global hook
   keeps the recursive evaluator signature unchanged; [with_hook]
   installs it for the dynamic extent of one evaluation and is not
   reentrant. *)
let access_hook : (Sym.t -> int -> unit) option ref = ref None

let with_hook hook f =
  let saved = !access_hook in
  access_hook := Some hook;
  Fun.protect ~finally:(fun () -> access_hook := saved) f

let record_access s words =
  match !access_hook with Some h -> h s words | None -> ()

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let num2 name ff fi a b =
  match (a, b) with
  | V.F x, V.F y -> V.F (ff x y)
  | V.I x, V.I y -> V.I (fi x y)
  | _ -> err "%s on %s and %s" name (V.to_string a) (V.to_string b)

let cmp2 name ff fi a b =
  match (a, b) with
  | V.F x, V.F y -> V.B (ff x y)
  | V.I x, V.I y -> V.B (fi x y)
  | _ -> err "%s on %s and %s" name (V.to_string a) (V.to_string b)

let eval_prim p args =
  match (p, args) with
  | Add, [ a; b ] -> num2 "+" ( +. ) ( + ) a b
  | Sub, [ a; b ] -> num2 "-" ( -. ) ( - ) a b
  | Mul, [ a; b ] -> num2 "*" ( *. ) ( * ) a b
  | Div, [ a; b ] -> num2 "/" ( /. ) ( / ) a b
  | Mod, [ V.I x; V.I y ] -> V.I (x mod y)
  | Neg, [ V.F x ] -> V.F (-.x)
  | Neg, [ V.I x ] -> V.I (-x)
  | Min, [ a; b ] -> num2 "min" Float.min Int.min a b
  | Max, [ a; b ] -> num2 "max" Float.max Int.max a b
  | Abs, [ V.F x ] -> V.F (Float.abs x)
  | Abs, [ V.I x ] -> V.I (abs x)
  | Sqrt, [ V.F x ] -> V.F (sqrt x)
  | Exp, [ V.F x ] -> V.F (exp x)
  | Log, [ V.F x ] -> V.F (log x)
  | Lt, [ a; b ] -> cmp2 "<" ( < ) ( < ) a b
  | Le, [ a; b ] -> cmp2 "<=" ( <= ) ( <= ) a b
  | Gt, [ a; b ] -> cmp2 ">" ( > ) ( > ) a b
  | Ge, [ a; b ] -> cmp2 ">=" ( >= ) ( >= ) a b
  | Eq, [ a; b ] -> V.B (V.equal ~eps:0.0 a b)
  | Ne, [ a; b ] -> V.B (not (V.equal ~eps:0.0 a b))
  | And, [ V.B x; V.B y ] -> V.B (x && y)
  | Or, [ V.B x; V.B y ] -> V.B (x || y)
  | Not, [ V.B x ] -> V.B (not x)
  | ToFloat, [ V.I x ] -> V.F (float_of_int x)
  | ToInt, [ V.F x ] -> V.I (int_of_float x)
  | _ ->
      err "ill-typed primitive application (%s)"
        (String.concat ", " (List.map V.to_string args))

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let rec eval ?(mode = Sequential) env e =
  let ev env e = eval ~mode env e in
  match e with
  | Var s -> lookup env s
  | Cf x -> V.F x
  | Ci x -> V.I x
  | Cb x -> V.B x
  | Tup es -> V.Tup (List.map (ev env) es)
  | Proj (e1, idx) -> (
      match ev env e1 with
      | V.Tup vs when idx < List.length vs -> List.nth vs idx
      | v -> err "projection on %s" (V.to_string v))
  | Prim (p, es) -> eval_prim p (List.map (ev env) es)
  | Let (s, e1, e2) -> ev (Sym.Map.add s (ev env e1) env) e2
  | If (c, t, e1) -> if V.to_bool (ev env c) then ev env t else ev env e1
  | Len (e1, d) -> V.I (Ndarray.dim (V.to_arr (ev env e1)) d)
  | Read (a, idxs) ->
      (match a with Var s -> record_access s 1 | _ -> ());
      Ndarray.get (V.to_arr (ev env a)) (List.map (eval_int ~mode env) idxs)
  | Slice (a, args) ->
      let arr = V.to_arr (ev env a) in
      let specs =
        List.mapi
          (fun d arg ->
            match arg with
            | SFix e1 -> Ndarray.Fix (eval_int ~mode env e1)
            | SAll -> Ndarray.Range (0, Ndarray.dim arr d))
          args
      in
      V.Arr (Ndarray.slice_view arr specs)
  | Copy { csrc; cdims; creuse } ->
      let arr = V.to_arr (ev env csrc) in
      let specs =
        List.mapi
          (fun d cd ->
            match cd with
            | Call -> Ndarray.Range (0, Ndarray.dim arr d)
            | Cfix e1 -> Ndarray.Fix (eval_int ~mode env e1)
            | Coffset { off; len; _ } ->
                Ndarray.Range (eval_int ~mode env off, eval_int ~mode env len))
          cdims
      in
      let region = Ndarray.copy_region arr specs in
      (match csrc with
      | Var s -> record_access s (Ndarray.size region / Int.max 1 creuse)
      | _ -> ());
      V.Arr region
  | Zeros (elt, shape) ->
      let rec zero_of = function
        | Ty.Scalar Ty.Float -> V.F 0.0
        | Ty.Scalar Ty.Int -> V.I 0
        | Ty.Scalar Ty.Bool -> V.B false
        | Ty.Tuple ts -> V.Tup (List.map zero_of ts)
        | t -> err "zeros of non-scalar element type %s" (Ty.to_string t)
      in
      let zero = zero_of elt in
      if shape = [] then zero
      else V.Arr (Ndarray.create (List.map (eval_int ~mode env) shape) zero)
  | ArrLit es -> V.Arr (Ndarray.of_list (List.map (ev env) es))
  | EmptyArr _ -> V.Arr (Ndarray.of_list [])
  | Map { mdims; midxs; mbody; _ } ->
      (* Map iteration spaces are rectangular: any Dtail refers to an
         enclosing binder already bound in [env]. *)
      let shape = List.map (dom_extent ~mode env) mdims in
      let result =
        Ndarray.init shape (fun idx ->
            let env' = bind_indices env midxs idx in
            ev env' mbody)
      in
      V.Arr result
  | Fold { fdims; fidxs; finit; facc; fupd; fcomb; _ } ->
      let init () = V.deep_copy (ev env finit) in
      let step acc env_i = eval ~mode (Sym.Map.add facc acc env_i) fupd in
      let combine a b = eval_comb ~mode env fcomb a b in
      reduce_domain ~mode env fdims fidxs ~init ~step ~combine
  | MultiFold mf -> eval_multifold ~mode env mf
  | FlatMap { fmdim; fmidx; fmbody; _ } ->
      let n = dom_extent ~mode env fmdim in
      let pieces =
        List.init n (fun idx ->
            let env' = Sym.Map.add fmidx (V.I idx) env in
            V.to_arr (ev env' fmbody))
      in
      V.Arr (Ndarray.concat1 pieces)
  | GroupByFold g -> eval_groupbyfold ~mode env g

and eval_int ?(mode = Sequential) env e = V.to_int (eval ~mode env e)

and bind_indices env idxs idx_vals =
  List.fold_left2 (fun m s v -> Sym.Map.add s (V.I v) m) env idxs idx_vals

and dom_extent ~mode env = function
  | Dfull e -> eval_int ~mode env e
  | Dtiles { total; tile } ->
      let t = eval_int ~mode env total in
      (t + tile - 1) / tile
  | Dtail { total; tile; outer } ->
      let t = eval_int ~mode env total in
      let o = V.to_int (lookup env outer) in
      Int.min tile (t - (o * tile))

and eval_comb ~mode env { ca; cb; cbody } a b =
  let env' = Sym.Map.add ca a (Sym.Map.add cb b env) in
  eval ~mode env' cbody

(* Iterate a possibly ragged domain: each dimension's extent may depend on
   earlier sibling indices (flattened tiled forms bind the tile index and
   the in-tile index as sibling dimensions). [f] receives the environment
   with all indices bound.  The first dimension can be restricted, which
   implements chunked evaluation. *)
and iter_domain ~mode env doms idxs ~first_lo ~first_hi f =
  match (doms, idxs) with
  | [], [] -> ()
  | d0 :: drest, s0 :: srest ->
      let ext = dom_extent ~mode env d0 in
      let lo = Int.max 0 first_lo and hi = Int.min ext first_hi in
      for v = lo to hi - 1 do
        let env0 = Sym.Map.add s0 (V.I v) env in
        let rec go env doms idxs =
          match (doms, idxs) with
          | [], [] -> f env
          | d :: dr, s :: sr ->
              let ext = dom_extent ~mode env d in
              for w = 0 to ext - 1 do
                go (Sym.Map.add s (V.I w) env) dr sr
              done
          | _ -> assert false
        in
        go env0 drest srest
      done
  | _ -> assert false

(* Reduce over a domain.  In [Chunked c] mode the outermost dimension is
   split into chunks, each reduced into its own copy of the identity, and
   partials merged with [combine]. *)
and reduce_domain : 'a.
    mode:mode -> env -> dom list -> Sym.t list -> init:(unit -> 'a) ->
    step:('a -> env -> 'a) -> combine:('a -> 'a -> 'a) -> 'a =
 fun ~mode env doms idxs ~init ~step ~combine ->
  let run_range lo hi =
    let acc = ref (init ()) in
    iter_domain ~mode env doms idxs ~first_lo:lo ~first_hi:hi (fun env_i ->
        acc := step !acc env_i);
    !acc
  in
  match doms with
  | [] -> init ()
  | d0 :: _ -> (
      let outer = dom_extent ~mode env d0 in
      let chunked c =
        let c = Int.max 1 c in
        let nchunks = (outer + c - 1) / c in
        if nchunks <= 1 then run_range 0 outer
        else
          let partials =
            List.init nchunks (fun k ->
                run_range (k * c) (Int.min outer ((k + 1) * c)))
          in
          List.fold_left combine (List.hd partials) (List.tl partials)
      in
      match mode with
      | Sequential -> run_range 0 outer
      | Chunked c -> chunked c
      | Parallel c when Domain.DLS.get in_worker -> chunked c
      | Parallel c ->
          let c = Int.max 1 c in
          let nchunks = (outer + c - 1) / c in
          if nchunks <= 1 then run_range 0 outer
          else begin
            (* one result slot per chunk; a bounded set of worker domains
               processes chunks round-robin, then partials merge in chunk
               order (so the value equals Chunked exactly) *)
            let results = Array.make nchunks None in
            let workers =
              Int.max 1
                (Int.min nchunks (Domain.recommended_domain_count () - 1))
            in
            let spawn j =
              Domain.spawn (fun () ->
                  Domain.DLS.set in_worker true;
                  let k = ref j in
                  while !k < nchunks do
                    results.(!k) <-
                      Some (run_range (!k * c) (Int.min outer ((!k + 1) * c)));
                    k := !k + workers
                  done)
            in
            let doms_ = List.init workers spawn in
            List.iter Domain.join doms_;
            let partials =
              Array.to_list results
              |> List.map (function Some v -> v | None -> assert false)
            in
            List.fold_left combine (List.hd partials) (List.tl partials)
          end)

and eval_multifold ~mode env { odims; oidxs; oinit; olets; oouts; ocomb; _ } =
  let multi = List.length oouts > 1 in
  let split v =
    if multi then
      match v with
      | V.Tup vs -> Array.of_list vs
      | v -> err "MultiFold tuple accumulator expected, got %s" (V.to_string v)
    else [| v |]
  in
  let join comps = if multi then V.Tup (Array.to_list comps) else comps.(0) in
  let init () = split (V.deep_copy (eval ~mode env oinit)) in
  let step comps env_i =
    let env_i =
      List.fold_left
        (fun m (s, e1) -> Sym.Map.add s (eval ~mode m e1) m)
        env_i olets
    in
    List.iteri
      (fun k { orange = _; oregion; oacc; oupd } ->
        let offs = List.map (fun (o, _, _) -> eval_int ~mode env_i o) oregion in
        let lens = List.map (fun (_, l, _) -> eval_int ~mode env_i l) oregion in
        (* scalar updates are a *syntactic* property (all lengths literally
           1), matching the validator's typing: a ragged corner tile whose
           lengths happen to evaluate to 1 is still an array update *)
        let unit_region = List.for_all (fun (_, l, _) -> l = Ci 1) oregion in
        if oregion = [] then begin
          (* scalar accumulator component *)
          let env_u = Sym.Map.add oacc comps.(k) env_i in
          comps.(k) <- eval ~mode env_u oupd
        end
        else
          let arr = V.to_arr comps.(k) in
          if unit_region then begin
            let cur = Ndarray.get arr offs in
            let env_u = Sym.Map.add oacc cur env_i in
            Ndarray.set arr offs (eval ~mode env_u oupd)
          end
          else begin
            let specs = List.map2 (fun o l -> Ndarray.Range (o, l)) offs lens in
            let cur = V.Arr (Ndarray.copy_region arr specs) in
            let env_u = Sym.Map.add oacc cur env_i in
            let nv = V.to_arr (eval ~mode env_u oupd) in
            Ndarray.blit_region ~src:nv ~dst:arr offs
          end)
      oouts;
    comps
  in
  match ocomb with
  | None ->
      (* Every location is written exactly once: a shared accumulator is
         correct in any evaluation order, so chunking is irrelevant. *)
      let comps = init () in
      iter_domain ~mode env odims oidxs ~first_lo:0 ~first_hi:max_int
        (fun env_i -> ignore (step comps env_i));
      join comps
  | Some comb ->
      let combine a b = split (eval_comb ~mode env comb (join a) (join b)) in
      let result = reduce_domain ~mode env odims oidxs ~init ~step ~combine in
      join result

and eval_groupbyfold ~mode env
    { gdims; gidxs; ginit; glets; gkey; gacc; gupd; gcomb; _ } =
  let run_range lo hi =
    let buckets = ref [] in
    iter_domain ~mode env gdims gidxs ~first_lo:lo ~first_hi:hi (fun env_i ->
        let env_i =
          List.fold_left
            (fun m (s, e1) -> Sym.Map.add s (eval ~mode m e1) m)
            env_i glets
        in
        let key = eval ~mode env_i gkey in
        let cur =
          match
            List.find_opt (fun (k, _) -> V.equal ~eps:0.0 k key) !buckets
          with
          | Some (_, v) -> v
          | None -> V.deep_copy (eval ~mode env ginit)
        in
        let nv = eval ~mode (Sym.Map.add gacc cur env_i) gupd in
        if List.exists (fun (k, _) -> V.equal ~eps:0.0 k key) !buckets then
          buckets :=
            List.map
              (fun (k, v) -> if V.equal ~eps:0.0 k key then (k, nv) else (k, v))
              !buckets
        else buckets := !buckets @ [ (key, nv) ]);
    !buckets
  in
  let merge b1 b2 =
    List.fold_left
      (fun acc (k, v) ->
        if List.exists (fun (k', _) -> V.equal ~eps:0.0 k' k) acc then
          List.map
            (fun (k', v') ->
              if V.equal ~eps:0.0 k' k then (k', eval_comb ~mode env gcomb v' v)
              else (k', v'))
            acc
        else acc @ [ (k, v) ])
      b1 b2
  in
  let result =
    match gdims with
    | [] -> []
    | d0 :: _ -> (
        let n = dom_extent ~mode env d0 in
        match mode with
        | Sequential -> run_range 0 n
        | Chunked c | Parallel c ->
            let c = Int.max 1 c in
            let nchunks = (n + c - 1) / c in
            if nchunks <= 1 then run_range 0 n
            else
              let partials =
                List.init nchunks (fun k ->
                    run_range (k * c) (Int.min n ((k + 1) * c)))
              in
              List.fold_left merge (List.hd partials) (List.tl partials))
  in
  V.Assoc result

let eval_program ?(mode = Sequential) (p : program) ~sizes ~inputs =
  let env =
    List.fold_left
      (fun m s ->
        match List.find_opt (fun (k, _) -> Sym.equal k s) sizes with
        | Some (_, v) -> Sym.Map.add s (V.I v) m
        | None -> err "missing size parameter %s" (Sym.name s))
      Sym.Map.empty p.size_params
  in
  let env =
    List.fold_left
      (fun m inp ->
        match List.find_opt (fun (k, _) -> Sym.equal k inp.iname) inputs with
        | Some (_, v) -> Sym.Map.add inp.iname v m
        | None -> err "missing input %s" (Sym.name inp.iname))
      env p.inputs
  in
  eval ~mode env p.body
