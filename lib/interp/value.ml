type t =
  | F of float
  | I of int
  | B of bool
  | Tup of t list
  | Arr of t Ndarray.t
  | Assoc of (t * t) list

let rec deep_copy = function
  | (F _ | I _ | B _) as v -> v
  | Tup vs -> Tup (List.map deep_copy vs)
  | Arr a -> Arr (Ndarray.map deep_copy a)
  | Assoc kvs -> Assoc (List.map (fun (k, v) -> (deep_copy k, deep_copy v)) kvs)

let float_eq eps a b =
  if Float.is_nan a && Float.is_nan b then true
  else
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= eps *. scale

let rec equal ?(eps = 1e-9) v1 v2 =
  match (v1, v2) with
  | F a, F b -> float_eq eps a b
  | I a, I b -> a = b
  | B a, B b -> a = b
  | Tup a, Tup b ->
      List.length a = List.length b && List.for_all2 (equal ~eps) a b
  | Arr a, Arr b -> Ndarray.equal (equal ~eps) a b
  | Assoc a, Assoc b ->
      List.length a = List.length b
      && List.for_all2
           (fun (k1, x1) (k2, x2) -> equal ~eps k1 k2 && equal ~eps x1 x2)
           a b
  | _ -> false

let rec pp fmt = function
  | F x -> Format.fprintf fmt "%g" x
  | I x -> Format.pp_print_int fmt x
  | B x -> Format.pp_print_bool fmt x
  | Tup vs ->
      Format.fprintf fmt "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        vs
  | Arr a -> Ndarray.pp pp fmt a
  | Assoc kvs ->
      Format.fprintf fmt "{@[<hov>%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           (fun fmt (k, v) -> Format.fprintf fmt "%a -> %a" pp k pp v))
        kvs

let to_string v = Format.asprintf "%a" pp v

let of_float_list l = Arr (Ndarray.of_list (List.map (fun x -> F x) l))
let of_int_list l = Arr (Ndarray.of_list (List.map (fun x -> I x) l))

let of_float_list2 rows =
  Arr (Ndarray.of_list2 (List.map (List.map (fun x -> F x)) rows))

let to_float = function
  | F x -> x
  | v -> invalid_arg ("Value.to_float: " ^ to_string v)

let to_int = function
  | I x -> x
  | v -> invalid_arg ("Value.to_int: " ^ to_string v)

let to_bool = function
  | B x -> x
  | v -> invalid_arg ("Value.to_bool: " ^ to_string v)

let to_arr = function
  | Arr a -> a
  | v -> invalid_arg ("Value.to_arr: " ^ to_string v)

let float_arr v =
  let a = to_arr v in
  if Ndarray.rank a <> 1 then invalid_arg "Value.float_arr: not rank 1";
  Array.of_list (List.map to_float (Ndarray.to_list a))
