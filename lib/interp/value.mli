(** Runtime values of the PPL reference interpreter. *)

type t =
  | F of float
  | I of int
  | B of bool
  | Tup of t list
  | Arr of t Ndarray.t
  | Assoc of (t * t) list
      (** GroupByFold result; keys in first-appearance order *)

val deep_copy : t -> t
(** Structure-preserving copy; fresh storage for every array. *)

val equal : ?eps:float -> t -> t -> bool
(** Structural equality; floats compared within [eps] (default 1e-9,
    relative for large magnitudes). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Conversions} *)

val of_float_list : float list -> t
val of_float_list2 : float list list -> t
val of_int_list : int list -> t
val to_float : t -> float
(** @raise Invalid_argument on non-float *)

val to_int : t -> int
val to_bool : t -> bool
val to_arr : t -> t Ndarray.t
val float_arr : t -> float array
(** 1-D float array contents. @raise Invalid_argument otherwise. *)
