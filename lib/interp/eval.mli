(** Reference interpreter for the PPL IR.

    Two modes:
    - [Sequential]: the textbook left-to-right semantics.
    - [Chunked c]: splits every reduction pattern's outermost domain into
      chunks of [c] iterations, evaluates each chunk into its own partial
      accumulator, and merges partials with the pattern's combine
      function — the execution model of a parallelized/tiled hardware
      implementation.  Agreement between the two modes validates that
      combine functions are correct, the property the tiling
      transformations of Section 4 rely on.
    - [Parallel c]: like [Chunked c], but the outermost reduction's chunks
      run on separate OCaml 5 domains (nested patterns stay single-domain).
      Produces bit-identical results to [Chunked c].  Not compatible with
      the {!with_hook} instrumentation. *)

type mode = Sequential | Chunked of int | Parallel of int

type env = Value.t Sym.Map.t

exception Eval_error of string

val eval : ?mode:mode -> env -> Ir.exp -> Value.t
(** @raise Eval_error on unbound symbols or dynamic type errors;
    @raise Ndarray.Shape_error on out-of-bounds accesses (a transformation
    bug, not a user error). *)

val eval_program :
  ?mode:mode ->
  Ir.program ->
  sizes:(Sym.t * int) list ->
  inputs:(Sym.t * Value.t) list ->
  Value.t
(** Evaluate a program's body with its size parameters and inputs bound.
    @raise Eval_error if a size parameter or input is missing. *)

val eval_int : ?mode:mode -> env -> Ir.exp -> int
(** Evaluate an expression expected to produce an [I _]. *)

val with_hook : (Sym.t -> int -> unit) -> (unit -> 'a) -> 'a
(** [with_hook h f] runs [f] with access instrumentation installed: [h s w]
    fires on every array access whose base is the variable [s] — [w = 1]
    for an element read, the region word count for a tile [Copy] (divided
    by the copy's reuse factor).  Not reentrant; used by {!Profile}. *)
