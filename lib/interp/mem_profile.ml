type counts = (Sym.t * int) list

let run ?mode (p : Ir.program) ~sizes ~inputs =
  let table = Hashtbl.create 8 in
  List.iter (fun (inp : Ir.input) -> Hashtbl.replace table inp.Ir.iname 0) p.Ir.inputs;
  let hook s w =
    match Hashtbl.find_opt table s with
    | Some c -> Hashtbl.replace table s (c + w)
    | None -> ()
  in
  let v =
    Eval.with_hook hook (fun () -> Eval.eval_program ?mode p ~sizes ~inputs)
  in
  let counts =
    List.map (fun (inp : Ir.input) ->
        (inp.Ir.iname, Hashtbl.find table inp.Ir.iname))
      p.Ir.inputs
  in
  (v, counts)

let words counts s =
  match List.find_opt (fun (k, _) -> Sym.equal k s) counts with
  | Some (_, w) -> w
  | None -> 0

let pp fmt counts =
  List.iter
    (fun (s, w) -> Format.fprintf fmt "%-16s %10d words@." (Sym.name s) w)
    counts
