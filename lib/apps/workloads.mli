(** Deterministic synthetic workload generation.

    The paper's inputs (dense matrices, clustered points, a TPC-H lineitem
    table) are regenerated synthetically with a self-contained PRNG so
    every run and every machine sees identical data. *)

module Rng : sig
  type t

  val make : int -> t
  (** Seeded generator; the same seed always yields the same stream. *)

  val float : t -> float -> float
  (** [float t bound] is uniform in [[0, bound)]. *)

  val int : t -> int -> int
  (** [int t bound] is uniform in [[0, bound)]. *)
end

val float_matrix : Rng.t -> int -> int -> float array array
(** Uniform values in [[0, 1)]. *)

val float_vector : Rng.t -> int -> float array

val clustered_points : Rng.t -> n:int -> d:int -> k:int -> float array array
(** Points drawn around [k] well-separated cluster centers — the k-means
    and GDA workload. *)

val labels : Rng.t -> int -> int array
(** Binary class labels. *)

type lineitem = {
  shipdate : int array;  (** yyyymmdd encoded *)
  discount : float array;
  quantity : float array;
  extendedprice : float array;
}

val lineitems : Rng.t -> int -> lineitem
(** TPC-H Q6-relevant columns with Q6-realistic selectivity (~2%%). *)

val q6_selectivity : lineitem -> float
(** Fraction of rows matching the Q6 predicate (for sanity checks). *)

(** {1 Conversions to interpreter values} *)

val value_of_matrix : float array array -> Value.t
val value_of_vector : float array -> Value.t
val value_of_int_vector : int array -> Value.t
