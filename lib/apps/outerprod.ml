open Dsl

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  a : Ir.input;
  b : Ir.input;
}

let make () =
  let m = size "m" and n = size "n" in
  let a = input "a" Ty.float_ [ Ir.Var m ] in
  let b = input "b" Ty.float_ [ Ir.Var n ] in
  let body =
    map2d (dfull (Ir.Var m)) (dfull (Ir.Var n)) (fun row col ->
        read (in_var a) [ row ] *! read (in_var b) [ col ])
  in
  let prog =
    program ~name:"outerprod" ~sizes:[ m; n ]
      ~max_sizes:[ (m, 1 lsl 20); (n, 1 lsl 20) ]
      ~inputs:[ a; b ] body
  in
  { prog; m; n; a; b }

let raw_inputs ~seed ~m ~n =
  let rng = Workloads.Rng.make seed in
  (Workloads.float_vector rng m, Workloads.float_vector rng n)

let gen_inputs t ~seed ~m ~n =
  let va, vb = raw_inputs ~seed ~m ~n in
  [ (t.a.Ir.iname, Workloads.value_of_vector va);
    (t.b.Ir.iname, Workloads.value_of_vector vb) ]

let reference a b =
  Array.map (fun x -> Array.map (fun y -> x *. y) b) a
