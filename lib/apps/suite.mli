(** The Figure 7 benchmark suite: one entry per row of Table 5, with the
    default tiling configuration, simulation-scale sizes (Fig. 7) and
    test-scale sizes (interpreter correctness). *)

type bench = {
  name : string;
  description : string;
  collection_ops : string;  (** Table 5's "Collections Ops" column *)
  prog : Ir.program;
  tiles : (Sym.t * int) list;  (** size parameter -> tile size *)
  sim_sizes : (Sym.t * int) list;
  test_sizes : (Sym.t * int) list;
  gen : sizes:(Sym.t * int) list -> seed:int -> (Sym.t * Value.t) list;
}

val all : unit -> bench list
(** Fresh instances of the six benchmarks, in Table 5 order. *)

val extended : unit -> bench list
(** [all ()] plus the extension applications (histogram, conv2d, logreg,
    blackscholes, matvec) — everything the CLI can name.  Figure
    reproductions stay on [all]; the extras exercise patterns and
    machine-model corners the paper's six do not. *)

val find : bench list -> string -> bench
(** @raise Not_found if no benchmark has that name. *)

val size_of : (Sym.t * int) list -> Sym.t -> int
(** Lookup by symbol. @raise Not_found if absent. *)
