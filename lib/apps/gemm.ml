open Dsl

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  p : Sym.t;
  x : Ir.input;
  y : Ir.input;
}

let make () =
  let m = size "m" and n = size "n" and p = size "p" in
  let x = input "x" Ty.float_ [ Ir.Var m; Ir.Var p ] in
  let y = input "y" Ty.float_ [ Ir.Var p; Ir.Var n ] in
  let body =
    map2d (dfull (Ir.Var m)) (dfull (Ir.Var n)) (fun row col ->
        fold1
          (dfull (Ir.Var p))
          ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun k acc ->
            acc +! (read (in_var x) [ row; k ] *! read (in_var y) [ k; col ])))
  in
  let prog =
    program ~name:"gemm" ~sizes:[ m; n; p ]
      ~max_sizes:[ (m, 1 lsl 16); (n, 1 lsl 16); (p, 1 lsl 16) ]
      ~inputs:[ x; y ] body
  in
  { prog; m; n; p; x; y }

let raw_inputs ~seed ~m ~n ~p =
  let rng = Workloads.Rng.make seed in
  (Workloads.float_matrix rng m p, Workloads.float_matrix rng p n)

let gen_inputs t ~seed ~m ~n ~p =
  let vx, vy = raw_inputs ~seed ~m ~n ~p in
  [ (t.x.Ir.iname, Workloads.value_of_matrix vx);
    (t.y.Ir.iname, Workloads.value_of_matrix vy) ]

let reference x y =
  let m = Array.length x in
  let p = Array.length y in
  let n = Array.length y.(0) in
  Array.init m (fun row ->
      Array.init n (fun col ->
          let acc = ref 0.0 in
          for k = 0 to p - 1 do
            acc := !acc +. (x.(row).(k) *. y.(k).(col))
          done;
          !acc))
