(** Vector outer product benchmark (Table 5): [out(i,j) = a(i) * b(j)]. *)

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  a : Ir.input;
  b : Ir.input;
}

val make : unit -> t

val gen_inputs : t -> seed:int -> m:int -> n:int -> (Sym.t * Value.t) list

val reference : float array -> float array -> float array array
(** Plain-OCaml result for checking the interpreter and tiled variants. *)

val raw_inputs : seed:int -> m:int -> n:int -> float array * float array
(** The same data [gen_inputs] produces, in plain form. *)
