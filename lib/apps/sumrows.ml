open Dsl

type t = { prog : Ir.program; m : Sym.t; n : Sym.t; x : Ir.input }

let make () =
  let m = size "m" and n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var m; Ir.Var n ] in
  (* multiFold(m,n)(m)(zeros(m)){ (i,j) => (i, acc => acc + x(i,j)) }
       {(a,b) => map(m){j => a(j) + b(j)}}                       (Table 2) *)
  let body =
    multifold
      [ dfull (Ir.Var m); dfull (Ir.Var n) ]
      ~init:(zeros Ty.Float [ Ir.Var m ])
      ~comb:(fun a b ->
        map1 (dfull (Ir.Var m)) (fun j -> read a [ j ] +! read b [ j ]))
      (fun idxs ->
        match idxs with
        | [ row; col ] ->
            [ { range = [ Ir.Var m ];
                region = point [ row ];
                upd = (fun acc -> acc +! read (in_var x) [ row; col ]) } ]
        | _ -> assert false)
  in
  let prog =
    program ~name:"sumrows" ~sizes:[ m; n ]
      ~max_sizes:[ (m, 1 lsl 20); (n, 1 lsl 20) ]
      ~inputs:[ x ] body
  in
  { prog; m; n; x }

let raw_inputs ~seed ~m ~n =
  Workloads.float_matrix (Workloads.Rng.make seed) m n

let gen_inputs t ~seed ~m ~n =
  [ (t.x.Ir.iname, Workloads.value_of_matrix (raw_inputs ~seed ~m ~n)) ]

let reference x = Array.map (fun row -> Array.fold_left ( +. ) 0.0 row) x
