(** Gaussian discriminant analysis benchmark (Table 5).

    Computes the shared covariance matrix
    [sigma = sum_i (x_i - mu_{y_i}) (x_i - mu_{y_i})^T]
    for binary-labeled samples.  The per-sample vector subtraction and
    vector outer product are the stages the paper parallelizes inside the
    GDA metapipeline; the [mu(y(i), _)] access is data-dependent. *)

type t = {
  prog : Ir.program;
  n : Sym.t;
  d : Sym.t;
  x : Ir.input;
  y : Ir.input;
  mu : Ir.input;
}

val make : unit -> t

val gen_inputs : t -> seed:int -> n:int -> d:int -> (Sym.t * Value.t) list

val reference :
  x:float array array -> y:int array -> mu:float array array ->
  float array array

val raw_inputs :
  seed:int -> n:int -> d:int -> float array array * int array * float array array
