(** TPC-H Query 6 benchmark (Table 5): filter purchase records by a
    predicate, then sum [extendedprice * discount] over the survivors.

    Written as a FlatMap (the filter) feeding a Fold — the paper's
    filter+reduce composition.  The FlatMap's dynamically sized output is
    what the hardware generator maps to a parallel FIFO (Table 4). *)

type t = {
  prog : Ir.program;
  n : Sym.t;
  shipdate : Ir.input;
  discount : Ir.input;
  quantity : Ir.input;
  extendedprice : Ir.input;
}

val make : unit -> t
val gen_inputs : t -> seed:int -> n:int -> (Sym.t * Value.t) list
val reference : Workloads.lineitem -> float
val raw_inputs : seed:int -> n:int -> Workloads.lineitem
