(** Logistic regression (one gradient-descent step) — an extension
    application from the paper's machine-learning motivation.

    [grad(j) = sum_i (sigmoid(w . x_i) - y_i) * x_i(j)]

    Structurally a k-means sibling: a MultiFold over the samples with a
    shared per-sample binding (the prediction error) feeding a vector
    accumulator — but with a transcendental ([exp]) in the datapath and a
    dense (non-scattering) accumulator update. *)

type t = {
  prog : Ir.program;
  n : Sym.t;  (** samples *)
  d : Sym.t;  (** features *)
  x : Ir.input;  (** n x d *)
  y : Ir.input;  (** n, labels in {0,1} as floats *)
  w : Ir.input;  (** d, current weights *)
}

val make : unit -> t

val gen_inputs : t -> seed:int -> n:int -> d:int -> (Sym.t * Value.t) list

val reference :
  x:float array array -> y:float array -> w:float array -> float array

val raw_inputs :
  seed:int -> n:int -> d:int -> float array array * float array * float array
