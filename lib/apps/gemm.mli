(** Matrix multiplication benchmark (Table 3/5):
    [out(i,j) = sum_k x(i,k) * y(k,j)]. *)

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  p : Sym.t;
  x : Ir.input;
  y : Ir.input;
}

val make : unit -> t

val gen_inputs :
  t -> seed:int -> m:int -> n:int -> p:int -> (Sym.t * Value.t) list

val reference : float array array -> float array array -> float array array

val raw_inputs :
  seed:int -> m:int -> n:int -> p:int -> float array array * float array array
