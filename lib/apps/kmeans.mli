(** k-means clustering benchmark — the paper's running example (Fig. 3/4).

    One refinement iteration: assign every point to its closest centroid
    (MultiFold over the points with a minimum-distance Fold inside,
    scattering each point into the [sums]/[counts] accumulators at the
    data-dependent [minDistIndex]), then average to produce the new
    centroids.  Matches Figure 4 of the paper, including the shared
    per-iteration binding for [minDistWithIndex]. *)

type t = {
  prog : Ir.program;
  n : Sym.t;
  k : Sym.t;
  d : Sym.t;
  points : Ir.input;
  centroids : Ir.input;
}

val make : unit -> t

val gen_inputs :
  t -> seed:int -> n:int -> k:int -> d:int -> (Sym.t * Value.t) list

val reference :
  points:float array array -> centroids:float array array -> float array array
(** The new centroids ([sum/count] per cluster; NaN rows for empty
    clusters, matching the PPL semantics). *)

val raw_inputs :
  seed:int -> n:int -> k:int -> d:int -> float array array * float array array
