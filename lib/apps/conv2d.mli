(** 2-D convolution — an extension application from the paper's motivating
    image-processing domain (Section 1).

    [out(i,j) = sum_{u,v} img(i+u, j+v) * kernel(u,v)].

    Not part of the Fig. 7 suite; it exercises what the suite does not:
    multidimensional [Fold] domains and two-dimensional sliding-window
    tile copies with reuse factors in both dimensions. *)

type t = {
  prog : Ir.program;
  h : Sym.t;  (** output height *)
  w : Sym.t;  (** output width *)
  img : Ir.input;  (** (h + kh - 1) x (w + kw - 1) *)
  kernel : Ir.input;  (** kh x kw, compile-time kernel extent *)
  kh : int;
  kw : int;
}

val make : ?kh:int -> ?kw:int -> unit -> t
(** Default kernel: 3 x 3. *)

val gen_inputs : t -> seed:int -> h:int -> w:int -> (Sym.t * Value.t) list

val reference :
  img:float array array -> kernel:float array array -> h:int -> w:int ->
  float array array

val raw_inputs :
  t -> seed:int -> h:int -> w:int -> float array array * float array array
