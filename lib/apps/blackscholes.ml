open Dsl

type t = {
  prog : Ir.program;
  n : Sym.t;
  sptprice : Ir.input;
  strike : Ir.input;
  time : Ir.input;
}

let rate = 0.05
let volatility = 0.2

(* logistic approximation of the cumulative normal: branch-free, so the
   whole option price is a single deep datapath *)
let cnd_coeff = 1.702

let make () =
  let n = size "n" in
  let sptprice = input "sptprice" Ty.float_ [ Ir.Var n ] in
  let strike = input "strike" Ty.float_ [ Ir.Var n ] in
  let time = input "time" Ty.float_ [ Ir.Var n ] in
  let exp_ x = Ir.Prim (Ir.Exp, [ x ]) in
  let log_ x = Ir.Prim (Ir.Log, [ x ]) in
  let cnd x = f 1.0 /! (f 1.0 +! exp_ (neg (f cnd_coeff *! x))) in
  let body =
    map1
      (dfull (Ir.Var n))
      (fun idx ->
        let_ ~name:"s" (read (in_var sptprice) [ idx ]) (fun s ->
            let_ ~name:"k" (read (in_var strike) [ idx ]) (fun k ->
                let_ ~name:"t" (read (in_var time) [ idx ]) (fun t ->
                    let_ ~name:"volsqrt" (f volatility *! sqrt_ t)
                      (fun volsqrt ->
                        let_ ~name:"d1"
                          ((log_ (s /! k)
                           +! ((f rate
                               +! (f (0.5 *. volatility *. volatility)))
                              *! t))
                          /! volsqrt)
                          (fun d1 ->
                            (s *! cnd d1)
                            -! (k
                               *! exp_ (neg (f rate *! t))
                               *! cnd (d1 -! volsqrt))))))))
  in
  let prog =
    program ~name:"blackscholes" ~sizes:[ n ]
      ~max_sizes:[ (n, 1 lsl 22) ]
      ~inputs:[ sptprice; strike; time ] body
  in
  { prog; n; sptprice; strike; time }

let raw_inputs ~seed ~n =
  let rng = Workloads.Rng.make seed in
  let s = Array.init n (fun _ -> 10.0 +. Workloads.Rng.float rng 90.0) in
  let k = Array.init n (fun _ -> 10.0 +. Workloads.Rng.float rng 90.0) in
  let t = Array.init n (fun _ -> 0.1 +. Workloads.Rng.float rng 1.9) in
  (s, k, t)

let gen_inputs t ~seed ~n =
  let s, k, tm = raw_inputs ~seed ~n in
  [ (t.sptprice.Ir.iname, Workloads.value_of_vector s);
    (t.strike.Ir.iname, Workloads.value_of_vector k);
    (t.time.Ir.iname, Workloads.value_of_vector tm) ]

let reference ~sptprice ~strike ~time =
  let cnd x = 1.0 /. (1.0 +. exp (-.cnd_coeff *. x)) in
  Array.init (Array.length sptprice) (fun i ->
      let s = sptprice.(i) and k = strike.(i) and t = time.(i) in
      let volsqrt = volatility *. sqrt t in
      let d1 =
        (log (s /. k) +. ((rate +. (0.5 *. volatility *. volatility)) *. t))
        /. volsqrt
      in
      (s *. cnd d1) -. (k *. exp (-.rate *. t) *. cnd (d1 -. volsqrt)))
