open Dsl

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  nnz : Sym.t;
  rowptr : Ir.input;
  cols : Ir.input;
  vals : Ir.input;
  x : Ir.input;
}

let make () =
  let m = size "m" and n = size "n" and nnz = size "nnz" in
  let rowptr = input "rowptr" Ty.int_ [ Ir.Prim (Ir.Add, [ Ir.Var m; i 1 ]) ] in
  let cols = input "cols" Ty.int_ [ Ir.Var nnz ] in
  let vals = input "vals" Ty.float_ [ Ir.Var nnz ] in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    map1
      (dfull (Ir.Var m))
      (fun row ->
        let_ ~name:"start" (read (in_var rowptr) [ row ]) (fun start ->
            let_ ~name:"stop"
              (read (in_var rowptr) [ row +! i 1 ])
              (fun stop ->
                fold1
                  (dfull (stop -! start))
                  ~init:(f 0.0)
                  ~comb:(fun a b -> a +! b)
                  (fun j acc ->
                    let_ ~name:"k" (start +! j) (fun k ->
                        acc
                        +! (read (in_var vals) [ k ]
                           *! read (in_var x) [ read (in_var cols) [ k ] ]))))))
  in
  let prog =
    program ~name:"spmv" ~sizes:[ m; n; nnz ]
      ~max_sizes:[ (m, 1 lsl 20); (n, 1 lsl 16); (nnz, 1 lsl 24) ]
      ~inputs:[ rowptr; cols; vals; x ] body
  in
  { prog; m; n; nnz; rowptr; cols; vals; x }

(* a CSR matrix with exactly [nnz] nonzeros spread over [m] rows *)
let raw_inputs ~seed ~m ~n ~nnz =
  let rng = Workloads.Rng.make seed in
  (* distribute nnz across rows: start uniform, then fix the total *)
  let per_row = Array.make m (nnz / m) in
  let leftover = nnz - (m * (nnz / m)) in
  for k = 0 to leftover - 1 do
    per_row.(k mod m) <- per_row.(k mod m) + 1
  done;
  let rowptr = Array.make (m + 1) 0 in
  for r = 0 to m - 1 do
    rowptr.(r + 1) <- rowptr.(r) + per_row.(r)
  done;
  let cols = Array.init nnz (fun _ -> Workloads.Rng.int rng n) in
  let vals = Array.init nnz (fun _ -> Workloads.Rng.float rng 1.0) in
  let x = Workloads.float_vector rng n in
  (rowptr, cols, vals, x)

let gen_inputs t ~seed ~m ~n ~nnz =
  let rowptr, cols, vals, x = raw_inputs ~seed ~m ~n ~nnz in
  [ (t.rowptr.Ir.iname, Workloads.value_of_int_vector rowptr);
    (t.cols.Ir.iname, Workloads.value_of_int_vector cols);
    (t.vals.Ir.iname, Workloads.value_of_vector vals);
    (t.x.Ir.iname, Workloads.value_of_vector x) ]

let reference ~rowptr ~cols ~vals ~x =
  Array.init
    (Array.length rowptr - 1)
    (fun r ->
      let acc = ref 0.0 in
      for k = rowptr.(r) to rowptr.(r + 1) - 1 do
        acc := !acc +. (vals.(k) *. x.(cols.(k)))
      done;
      !acc)
