open Dsl

type t = {
  prog : Ir.program;
  n : Sym.t;
  k : Sym.t;
  d : Sym.t;
  points : Ir.input;
  centroids : Ir.input;
}

let make () =
  let n = size "n" and k = size "k" and d = size "d" in
  let points = input "points" Ty.float_ [ Ir.Var n; Ir.Var d ] in
  let centroids = input "centroids" Ty.float_ [ Ir.Var k; Ir.Var d ] in
  let dist_to_centroid pt cent =
    fold1
      (dfull (Ir.Var d))
      ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun p acc ->
        acc
        +! square (read (in_var points) [ pt; p ] -! read (in_var centroids) [ cent; p ]))
  in
  (* fold(k)((max, -1)){ j => acc => if acc._1 < dist then acc else (dist, j) } *)
  let min_dist_with_index pt =
    fold1
      (dfull (Ir.Var k))
      ~init:(pair (f infinity) (i (-1)))
      ~comb:(fun a b -> if_ (fst_ a <! fst_ b) a b)
      (fun cent acc ->
        let_ ~name:"dist" (dist_to_centroid pt cent) (fun dist ->
            if_ (fst_ acc <! dist) acc (pair dist cent)))
  in
  let sums_counts =
    multifold_lets
      [ dfull (Ir.Var n) ]
      ~init:(tup [ zeros Ty.Float [ Ir.Var k; Ir.Var d ]; zeros Ty.Float [ Ir.Var k ] ])
      ~comb:(fun a b ->
        tup
          [ map2d (dfull (Ir.Var k)) (dfull (Ir.Var d)) (fun r c ->
                read (fst_ a) [ r; c ] +! read (fst_ b) [ r; c ]);
            map1 (dfull (Ir.Var k)) (fun r ->
                read (snd_ a) [ r ] +! read (snd_ b) [ r ]) ])
      (fun idxs ->
        let pt = match idxs with [ pt ] -> pt | _ -> assert false in
        ( [ ("minDistWithIndex", min_dist_with_index pt) ],
          fun lets ->
            let min_idx =
              match lets with [ mdwi ] -> snd_ mdwi | _ -> assert false
            in
            [ (* reduce the point into the sums row at minDistIndex *)
              { range = [ Ir.Var k; Ir.Var d ];
                region = [ (min_idx, i 1, Some 1); (i 0, Ir.Var d, None) ];
                upd =
                  (fun acc ->
                    map2d (dfull (i 1)) (dfull (Ir.Var d)) (fun z p ->
                        read acc [ z; p ] +! read (in_var points) [ pt; p ])) };
              (* increment the count at minDistIndex *)
              { range = [ Ir.Var k ];
                region = point [ min_idx ];
                upd = (fun acc -> acc +! f 1.0) } ] ))
  in
  let body =
    let_ ~name:"sums_counts" sums_counts (fun sc ->
        map2d (dfull (Ir.Var k)) (dfull (Ir.Var d)) (fun ci cj ->
            read (fst_ sc) [ ci; cj ] /! read (snd_ sc) [ ci ]))
  in
  let prog =
    program ~name:"kmeans" ~sizes:[ n; k; d ]
      ~max_sizes:[ (n, 1 lsl 20); (k, 512); (d, 32) ]
      ~inputs:[ points; centroids ] body
  in
  { prog; n; k; d; points; centroids }

let raw_inputs ~seed ~n ~k ~d =
  let rng = Workloads.Rng.make seed in
  let points = Workloads.clustered_points rng ~n ~d ~k in
  (* initial centroids: the first k points, as is conventional (wrapping
     when callers ask for more clusters than points) *)
  let centroids = Array.init k (fun c -> Array.copy points.(c mod n)) in
  (points, centroids)

let gen_inputs t ~seed ~n ~k ~d =
  let points, centroids = raw_inputs ~seed ~n ~k ~d in
  [ (t.points.Ir.iname, Workloads.value_of_matrix points);
    (t.centroids.Ir.iname, Workloads.value_of_matrix centroids) ]

let reference ~points ~centroids =
  let n = Array.length points in
  let d = Array.length points.(0) in
  let k = Array.length centroids in
  let sums = Array.make_matrix k d 0.0 in
  let counts = Array.make k 0.0 in
  for pt = 0 to n - 1 do
    let best = ref (-1) and best_dist = ref infinity in
    for cent = 0 to k - 1 do
      let dist = ref 0.0 in
      for p = 0 to d - 1 do
        let diff = points.(pt).(p) -. centroids.(cent).(p) in
        dist := !dist +. (diff *. diff)
      done;
      (* strict <: ties keep the earlier centroid, like the PPL fold *)
      if not (!best_dist < !dist) then begin
        best_dist := !dist;
        best := cent
      end
    done;
    for p = 0 to d - 1 do
      sums.(!best).(p) <- sums.(!best).(p) +. points.(pt).(p)
    done;
    counts.(!best) <- counts.(!best) +. 1.0
  done;
  Array.init k (fun c -> Array.init d (fun p -> sums.(c).(p) /. counts.(c)))
