(** Sparse matrix-vector multiply over CSR — the extension application
    that most stresses the paper's generality claim: per-row extents are
    data-dependent ([rowptr(i+1) - rowptr(i)]), and the [x] gather is
    indirect ([x(cols(k))]), so polyhedral tooling cannot touch it while
    the pattern tiling still strip-mines the row loop and the hardware
    generator allocates a cache for the gather. *)

type t = {
  prog : Ir.program;
  m : Sym.t;  (** rows *)
  n : Sym.t;  (** columns (length of x) *)
  nnz : Sym.t;  (** nonzeros *)
  rowptr : Ir.input;  (** m+1 row offsets *)
  cols : Ir.input;  (** nnz column indices *)
  vals : Ir.input;  (** nnz values *)
  x : Ir.input;  (** dense vector *)
}

val make : unit -> t

val gen_inputs :
  t -> seed:int -> m:int -> n:int -> nnz:int -> (Sym.t * Value.t) list

val reference :
  rowptr:int array -> cols:int array -> vals:float array -> x:float array ->
  float array

val raw_inputs :
  seed:int -> m:int -> n:int -> nnz:int ->
  int array * int array * float array * float array
