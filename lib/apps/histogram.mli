(** Histogram calculation (Table 2's GroupByFold example):
    [x.groupByFold(0){ r => (r/10, 1) }{ (a,b) => a + b }].

    Not part of the Figure 7 suite, but it exercises the GroupByFold
    pattern end to end (strip mining rule, CAM template). *)

type t = { prog : Ir.program; n : Sym.t; x : Ir.input }

val make : unit -> t
val gen_inputs : t -> seed:int -> n:int -> (Sym.t * Value.t) list
val reference : float array -> (int * int) list
(** Buckets in first-appearance order, like the PPL semantics. *)

val raw_inputs : seed:int -> n:int -> float array
