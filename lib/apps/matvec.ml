open Dsl

type t = {
  prog : Ir.program;
  m : Sym.t;
  n : Sym.t;
  a : Ir.input;
  x : Ir.input;
}

let make () =
  let m = size "m" and n = size "n" in
  let a = input "a" Ty.float_ [ Ir.Var m; Ir.Var n ] in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  (* map(m){ i => reduce(n)(0){ j => a(i,j) * x(j) }{(p,q) => p + q} } *)
  let body =
    map1
      (dfull (Ir.Var m))
      (fun row ->
        fold1
          (dfull (Ir.Var n))
          ~init:(f 0.0)
          ~comb:(fun p q -> p +! q)
          (fun col acc ->
            acc +! (read (in_var a) [ row; col ] *! read (in_var x) [ col ])))
  in
  let prog =
    program ~name:"matvec" ~sizes:[ m; n ]
      ~max_sizes:[ (m, 1 lsl 20); (n, 1 lsl 14) ]
      ~inputs:[ a; x ] body
  in
  { prog; m; n; a; x }

let raw_inputs ~seed ~m ~n =
  let rng = Workloads.Rng.make seed in
  (Workloads.float_matrix rng m n, Workloads.float_vector rng n)

let gen_inputs t ~seed ~m ~n =
  let av, xv = raw_inputs ~seed ~m ~n in
  [ (t.a.Ir.iname, Workloads.value_of_matrix av);
    (t.x.Ir.iname, Workloads.value_of_vector xv) ]

let reference ~a ~x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a
