(** Dense matrix-vector multiply (gemv) — an extension application sitting
    between sumrows (same loop nest, plus a second operand) and gemm (one
    fewer dimension).

    Tiling pays through the vector: a tile of [x] is loaded once per
    column tile and reused by every row of the row tile, so the [x]
    traffic drops by the row-tile size while [a] streams exactly once
    either way. *)

type t = {
  prog : Ir.program;
  m : Sym.t;  (** rows *)
  n : Sym.t;  (** columns *)
  a : Ir.input;  (** m x n *)
  x : Ir.input;  (** n *)
}

val make : unit -> t

val gen_inputs : t -> seed:int -> m:int -> n:int -> (Sym.t * Value.t) list

val reference : a:float array array -> x:float array -> float array

val raw_inputs : seed:int -> m:int -> n:int -> float array array * float array
