open Dsl

type t = {
  prog : Ir.program;
  h : Sym.t;
  w : Sym.t;
  img : Ir.input;
  kernel : Ir.input;
  kh : int;
  kw : int;
}

let make ?(kh = 3) ?(kw = 3) () =
  let h = size "h" and w = size "w" in
  let img =
    input "img" Ty.float_
      [ Ir.Prim (Ir.Add, [ Ir.Var h; i (kh - 1) ]);
        Ir.Prim (Ir.Add, [ Ir.Var w; i (kw - 1) ]) ]
  in
  let kernel = input "kernel" Ty.float_ [ i kh; i kw ] in
  let body =
    map2d (dfull (Ir.Var h)) (dfull (Ir.Var w)) (fun row col ->
        fold
          [ dfull (i kh); dfull (i kw) ]
          ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun taps acc ->
            match taps with
            | [ u; v ] ->
                acc
                +! (read (in_var img) [ row +! u; col +! v ]
                   *! read (in_var kernel) [ u; v ])
            | _ -> assert false))
  in
  let prog =
    program ~name:"conv2d" ~sizes:[ h; w ]
      ~max_sizes:[ (h, 1 lsl 14); (w, 1 lsl 14) ]
      ~inputs:[ img; kernel ] body
  in
  { prog; h; w; img; kernel; kh; kw }

let raw_inputs t ~seed ~h ~w =
  let rng = Workloads.Rng.make seed in
  let img = Workloads.float_matrix rng (h + t.kh - 1) (w + t.kw - 1) in
  let kernel = Workloads.float_matrix rng t.kh t.kw in
  (img, kernel)

let gen_inputs t ~seed ~h ~w =
  let img, kernel = raw_inputs t ~seed ~h ~w in
  [ (t.img.Ir.iname, Workloads.value_of_matrix img);
    (t.kernel.Ir.iname, Workloads.value_of_matrix kernel) ]

let reference ~img ~kernel ~h ~w =
  let kh = Array.length kernel and kw = Array.length kernel.(0) in
  Array.init h (fun row ->
      Array.init w (fun col ->
          let acc = ref 0.0 in
          for u = 0 to kh - 1 do
            for v = 0 to kw - 1 do
              acc := !acc +. (img.(row + u).(col + v) *. kernel.(u).(v))
            done
          done;
          !acc))
