module Rng = struct
  (* splitmix64: tiny, deterministic, good distribution. *)
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int (seed * 2654435761 + 1) }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t bound =
    let bits = Int64.shift_right_logical (next t) 11 in
    (* 53 random bits -> [0,1) *)
    Int64.to_float bits /. 9007199254740992.0 *. bound

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))
end

let float_matrix rng m n =
  Array.init m (fun _ -> Array.init n (fun _ -> Rng.float rng 1.0))

let float_vector rng n = Array.init n (fun _ -> Rng.float rng 1.0)

let clustered_points rng ~n ~d ~k =
  let centers =
    Array.init k (fun _ -> Array.init d (fun _ -> Rng.float rng 10.0))
  in
  Array.init n (fun _ ->
      let c = centers.(Rng.int rng k) in
      Array.init d (fun j -> c.(j) +. Rng.float rng 0.5))

let labels rng n = Array.init n (fun _ -> Rng.int rng 2)

type lineitem = {
  shipdate : int array;
  discount : float array;
  quantity : float array;
  extendedprice : float array;
}

let lineitems rng n =
  (* Ship dates over 1992-1998; Q6 keeps 1994 with discount in
     [0.05, 0.07] and quantity < 24, which is a small fraction of rows. *)
  let shipdate =
    Array.init n (fun _ ->
        let year = 1992 + Rng.int rng 7 in
        let month = 1 + Rng.int rng 12 in
        let day = 1 + Rng.int rng 28 in
        (year * 10000) + (month * 100) + day)
  in
  let discount =
    Array.init n (fun _ -> float_of_int (Rng.int rng 11) /. 100.0)
  in
  let quantity = Array.init n (fun _ -> 1.0 +. Rng.float rng 49.0) in
  let extendedprice = Array.init n (fun _ -> 900.0 +. Rng.float rng 10000.0) in
  { shipdate; discount; quantity; extendedprice }

let q6_pred li idx =
  li.shipdate.(idx) >= 19940101
  && li.shipdate.(idx) < 19950101
  && li.discount.(idx) >= 0.05
  && li.discount.(idx) <= 0.07
  && li.quantity.(idx) < 24.0

let q6_selectivity li =
  let n = Array.length li.shipdate in
  let hits = ref 0 in
  for idx = 0 to n - 1 do
    if q6_pred li idx then incr hits
  done;
  float_of_int !hits /. float_of_int n

let value_of_matrix m =
  Value.Arr
    (Ndarray.init
       [ Array.length m; Array.length m.(0) ]
       (function [ r; c ] -> Value.F m.(r).(c) | _ -> assert false))

let value_of_vector v =
  Value.Arr (Ndarray.init [ Array.length v ] (function
    | [ r ] -> Value.F v.(r)
    | _ -> assert false))

let value_of_int_vector v =
  Value.Arr (Ndarray.init [ Array.length v ] (function
    | [ r ] -> Value.I v.(r)
    | _ -> assert false))
