open Dsl

type t = {
  prog : Ir.program;
  n : Sym.t;
  d : Sym.t;
  x : Ir.input;
  y : Ir.input;
  w : Ir.input;
}

let make () =
  let n = size "n" and d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var d ] in
  let y = input "y" Ty.float_ [ Ir.Var n ] in
  let w = input "w" Ty.float_ [ Ir.Var d ] in
  let dot_wx sample =
    fold1
      (dfull (Ir.Var d))
      ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun j acc ->
        acc +! (read (in_var w) [ j ] *! read (in_var x) [ sample; j ]))
  in
  let sigmoid z = f 1.0 /! (f 1.0 +! Ir.Prim (Ir.Exp, [ neg z ])) in
  (* grad = sum_i err_i * x_i, with err_i computed once per sample *)
  let body =
    multifold_lets
      [ dfull (Ir.Var n) ]
      ~init:(zeros Ty.Float [ Ir.Var d ])
      ~comb:(fun a b ->
        map1 (dfull (Ir.Var d)) (fun j -> read a [ j ] +! read b [ j ]))
      (fun idxs ->
        let sample = match idxs with [ s ] -> s | _ -> assert false in
        ( [ ("err", sigmoid (dot_wx sample) -! read (in_var y) [ sample ]) ],
          fun lets ->
            let err = match lets with [ e ] -> e | _ -> assert false in
            [ { range = [ Ir.Var d ];
                region = [ (i 0, Ir.Var d, None) ];
                upd =
                  (fun acc ->
                    map1 (dfull (Ir.Var d)) (fun j ->
                        read acc [ j ] +! (err *! read (in_var x) [ sample; j ])))
              } ] ))
  in
  let prog =
    program ~name:"logreg" ~sizes:[ n; d ]
      ~max_sizes:[ (n, 1 lsl 20); (d, 256) ]
      ~inputs:[ x; y; w ] body
  in
  { prog; n; d; x; y; w }

let raw_inputs ~seed ~n ~d =
  let rng = Workloads.Rng.make seed in
  let x = Workloads.float_matrix rng n d in
  let y = Array.init n (fun _ -> float_of_int (Workloads.Rng.int rng 2)) in
  let w = Workloads.float_vector rng d in
  (x, y, w)

let gen_inputs t ~seed ~n ~d =
  let x, y, w = raw_inputs ~seed ~n ~d in
  [ (t.x.Ir.iname, Workloads.value_of_matrix x);
    (t.y.Ir.iname, Workloads.value_of_vector y);
    (t.w.Ir.iname, Workloads.value_of_vector w) ]

let reference ~x ~y ~w =
  let n = Array.length x in
  let d = Array.length w in
  let grad = Array.make d 0.0 in
  for s = 0 to n - 1 do
    let z = ref 0.0 in
    for j = 0 to d - 1 do
      z := !z +. (w.(j) *. x.(s).(j))
    done;
    let err = (1.0 /. (1.0 +. exp (-. !z))) -. y.(s) in
    for j = 0 to d - 1 do
      grad.(j) <- grad.(j) +. (err *. x.(s).(j))
    done
  done;
  grad
