open Dsl

type t = {
  prog : Ir.program;
  n : Sym.t;
  d : Sym.t;
  x : Ir.input;
  y : Ir.input;
  mu : Ir.input;
}

let make () =
  let n = size "n" and d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var d ] in
  let y = input "y" Ty.int_ [ Ir.Var n ] in
  let mu = input "mu" Ty.float_ [ i 2; Ir.Var d ] in
  let sub sample j =
    read (in_var x) [ sample; j ]
    -! read (in_var mu) [ read (in_var y) [ sample ]; j ]
  in
  let body =
    fold1
      (dfull (Ir.Var n))
      ~init:(zeros Ty.Float [ Ir.Var d; Ir.Var d ])
      ~comb:(fun a b ->
        map2d (dfull (Ir.Var d)) (dfull (Ir.Var d)) (fun r c ->
            read a [ r; c ] +! read b [ r; c ]))
      (fun sample acc ->
        map2d (dfull (Ir.Var d)) (dfull (Ir.Var d)) (fun r c ->
            read acc [ r; c ] +! (sub sample r *! sub sample c)))
  in
  let prog =
    program ~name:"gda" ~sizes:[ n; d ]
      ~max_sizes:[ (n, 1 lsl 20); (d, 128) ]
      ~inputs:[ x; y; mu ] body
  in
  { prog; n; d; x; y; mu }

let raw_inputs ~seed ~n ~d =
  let rng = Workloads.Rng.make seed in
  let x = Workloads.clustered_points rng ~n ~d ~k:2 in
  let y = Workloads.labels rng n in
  (* class means of the generated data *)
  let mu =
    Array.init 2 (fun cls ->
        let members = ref 0 in
        let sum = Array.make d 0.0 in
        Array.iteri
          (fun idx row ->
            if y.(idx) = cls then begin
              incr members;
              Array.iteri (fun j v -> sum.(j) <- sum.(j) +. v) row
            end)
          x;
        let c = float_of_int (Int.max 1 !members) in
        Array.map (fun s -> s /. c) sum)
  in
  (x, y, mu)

let gen_inputs t ~seed ~n ~d =
  let x, y, mu = raw_inputs ~seed ~n ~d in
  [ (t.x.Ir.iname, Workloads.value_of_matrix x);
    (t.y.Ir.iname, Workloads.value_of_int_vector y);
    (t.mu.Ir.iname, Workloads.value_of_matrix mu) ]

let reference ~x ~y ~mu =
  let n = Array.length x in
  let d = Array.length x.(0) in
  let sigma = Array.make_matrix d d 0.0 in
  for sample = 0 to n - 1 do
    let diff = Array.init d (fun j -> x.(sample).(j) -. mu.(y.(sample)).(j)) in
    for r = 0 to d - 1 do
      for c = 0 to d - 1 do
        sigma.(r).(c) <- sigma.(r).(c) +. (diff.(r) *. diff.(c))
      done
    done
  done;
  sigma
