open Dsl

type t = { prog : Ir.program; n : Sym.t; x : Ir.input }

let make () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    groupbyfold
      (dfull (Ir.Var n))
      ~init:(i 0)
      ~comb:(fun a b -> a +! b)
      (fun row ->
        (to_int (read (in_var x) [ row ]) /! i 10, fun acc -> acc +! i 1))
  in
  let prog =
    program ~name:"histogram" ~sizes:[ n ]
      ~max_sizes:[ (n, 1 lsl 24) ]
      ~inputs:[ x ] body
  in
  { prog; n; x }

let raw_inputs ~seed ~n =
  let rng = Workloads.Rng.make seed in
  Array.init n (fun _ -> Workloads.Rng.float rng 100.0)

let gen_inputs t ~seed ~n =
  [ (t.x.Ir.iname, Workloads.value_of_vector (raw_inputs ~seed ~n)) ]

let reference x =
  let buckets = ref [] in
  Array.iter
    (fun v ->
      let key = int_of_float v / 10 in
      if List.mem_assoc key !buckets then
        buckets :=
          List.map
            (fun (k, c) -> if k = key then (k, c + 1) else (k, c))
            !buckets
      else buckets := !buckets @ [ (key, 1) ])
    x;
  !buckets
