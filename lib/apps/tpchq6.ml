open Dsl

type t = {
  prog : Ir.program;
  n : Sym.t;
  shipdate : Ir.input;
  discount : Ir.input;
  quantity : Ir.input;
  extendedprice : Ir.input;
}

let make () =
  let n = size "n" in
  let shipdate = input "shipdate" Ty.int_ [ Ir.Var n ] in
  let discount = input "discount" Ty.float_ [ Ir.Var n ] in
  let quantity = input "quantity" Ty.float_ [ Ir.Var n ] in
  let extendedprice = input "extendedprice" Ty.float_ [ Ir.Var n ] in
  let predicate row =
    read (in_var shipdate) [ row ] >=! i 19940101
    &&! (read (in_var shipdate) [ row ] <! i 19950101)
    &&! (read (in_var discount) [ row ] >=! f 0.05)
    &&! (read (in_var discount) [ row ] <=! f 0.07)
    &&! (read (in_var quantity) [ row ] <! f 24.0)
  in
  let revenue row =
    read (in_var extendedprice) [ row ] *! read (in_var discount) [ row ]
  in
  let body =
    let_ ~name:"filtered"
      (filter (dfull (Ir.Var n)) predicate revenue)
      (fun filtered ->
        fold1
          (dfull (len filtered 0))
          ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun j acc -> acc +! read filtered [ j ]))
  in
  let prog =
    program ~name:"tpchq6" ~sizes:[ n ]
      ~max_sizes:[ (n, 1 lsl 24) ]
      ~inputs:[ shipdate; discount; quantity; extendedprice ]
      body
  in
  { prog; n; shipdate; discount; quantity; extendedprice }

let raw_inputs ~seed ~n = Workloads.lineitems (Workloads.Rng.make seed) n

let gen_inputs t ~seed ~n =
  let li = raw_inputs ~seed ~n in
  [ (t.shipdate.Ir.iname, Workloads.value_of_int_vector li.Workloads.shipdate);
    (t.discount.Ir.iname, Workloads.value_of_vector li.Workloads.discount);
    (t.quantity.Ir.iname, Workloads.value_of_vector li.Workloads.quantity);
    ( t.extendedprice.Ir.iname,
      Workloads.value_of_vector li.Workloads.extendedprice ) ]

let reference (li : Workloads.lineitem) =
  let acc = ref 0.0 in
  Array.iteri
    (fun idx sd ->
      if
        sd >= 19940101 && sd < 19950101
        && li.discount.(idx) >= 0.05
        && li.discount.(idx) <= 0.07
        && li.quantity.(idx) < 24.0
      then acc := !acc +. (li.extendedprice.(idx) *. li.discount.(idx)))
    li.shipdate;
  !acc
