(** Matrix row-summation benchmark (Table 2/5):
    [out(i) = sum_j x(i,j)], written as the paper's fused MultiFold over
    the whole (m, n) domain with unit update regions. *)

type t = { prog : Ir.program; m : Sym.t; n : Sym.t; x : Ir.input }

val make : unit -> t
val gen_inputs : t -> seed:int -> m:int -> n:int -> (Sym.t * Value.t) list
val reference : float array array -> float array
val raw_inputs : seed:int -> m:int -> n:int -> float array array
