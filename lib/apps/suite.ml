type bench = {
  name : string;
  description : string;
  collection_ops : string;
  prog : Ir.program;
  tiles : (Sym.t * int) list;
  sim_sizes : (Sym.t * int) list;
  test_sizes : (Sym.t * int) list;
  gen : sizes:(Sym.t * int) list -> seed:int -> (Sym.t * Value.t) list;
}

let size_of sizes s =
  match List.find_opt (fun (k, _) -> Sym.equal k s) sizes with
  | Some (_, v) -> v
  | None -> raise Not_found

let outerprod () =
  let t = Outerprod.make () in
  { name = "outerprod";
    description = "Vector outer product";
    collection_ops = "map";
    prog = t.Outerprod.prog;
    tiles = [ (t.Outerprod.m, 128); (t.Outerprod.n, 128) ];
    sim_sizes = [ (t.Outerprod.m, 16384); (t.Outerprod.n, 2048) ];
    test_sizes = [ (t.Outerprod.m, 13); (t.Outerprod.n, 9) ];
    gen =
      (fun ~sizes ~seed ->
        Outerprod.gen_inputs t ~seed ~m:(size_of sizes t.Outerprod.m)
          ~n:(size_of sizes t.Outerprod.n)) }

let sumrows () =
  let t = Sumrows.make () in
  { name = "sumrows";
    description = "Matrix summation through rows";
    collection_ops = "map, reduce";
    prog = t.Sumrows.prog;
    tiles = [ (t.Sumrows.m, 4096); (t.Sumrows.n, 16) ];
    sim_sizes = [ (t.Sumrows.m, 262144); (t.Sumrows.n, 16) ];
    test_sizes = [ (t.Sumrows.m, 11); (t.Sumrows.n, 17) ];
    gen =
      (fun ~sizes ~seed ->
        Sumrows.gen_inputs t ~seed ~m:(size_of sizes t.Sumrows.m)
          ~n:(size_of sizes t.Sumrows.n)) }

let gemm () =
  let t = Gemm.make () in
  { name = "gemm";
    description = "Matrix multiplication";
    collection_ops = "map, reduce";
    prog = t.Gemm.prog;
    tiles = [ (t.Gemm.m, 128); (t.Gemm.n, 128); (t.Gemm.p, 128) ];
    sim_sizes = [ (t.Gemm.m, 1024); (t.Gemm.n, 1024); (t.Gemm.p, 1024) ];
    test_sizes = [ (t.Gemm.m, 7); (t.Gemm.n, 5); (t.Gemm.p, 9) ];
    gen =
      (fun ~sizes ~seed ->
        Gemm.gen_inputs t ~seed ~m:(size_of sizes t.Gemm.m)
          ~n:(size_of sizes t.Gemm.n) ~p:(size_of sizes t.Gemm.p)) }

let tpchq6 () =
  let t = Tpchq6.make () in
  { name = "tpchq6";
    description = "TPC-H Query 6";
    collection_ops = "filter, reduce";
    prog = t.Tpchq6.prog;
    tiles = [ (t.Tpchq6.n, 16384) ];
    sim_sizes = [ (t.Tpchq6.n, 1 lsl 22) ];
    test_sizes = [ (t.Tpchq6.n, 200) ];
    gen =
      (fun ~sizes ~seed -> Tpchq6.gen_inputs t ~seed ~n:(size_of sizes t.Tpchq6.n))
  }

let gda () =
  let t = Gda.make () in
  { name = "gda";
    description = "Gaussian discriminant analysis";
    collection_ops = "map, filter, reduce";
    prog = t.Gda.prog;
    tiles = [ (t.Gda.n, 1024) ];
    sim_sizes = [ (t.Gda.n, 65536); (t.Gda.d, 32) ];
    test_sizes = [ (t.Gda.n, 20); (t.Gda.d, 4) ];
    gen =
      (fun ~sizes ~seed ->
        Gda.gen_inputs t ~seed ~n:(size_of sizes t.Gda.n)
          ~d:(size_of sizes t.Gda.d)) }

let kmeans () =
  let t = Kmeans.make () in
  { name = "kmeans";
    description = "k-means clustering";
    collection_ops = "map, groupBy, reduce";
    prog = t.Kmeans.prog;
    tiles = [ (t.Kmeans.n, 1024); (t.Kmeans.k, 64) ];
    sim_sizes = [ (t.Kmeans.n, 65536); (t.Kmeans.k, 512); (t.Kmeans.d, 16) ];
    test_sizes = [ (t.Kmeans.n, 30); (t.Kmeans.k, 4); (t.Kmeans.d, 3) ];
    gen =
      (fun ~sizes ~seed ->
        Kmeans.gen_inputs t ~seed ~n:(size_of sizes t.Kmeans.n)
          ~k:(size_of sizes t.Kmeans.k) ~d:(size_of sizes t.Kmeans.d)) }

let all () = [ outerprod (); sumrows (); gemm (); tpchq6 (); gda (); kmeans () ]

(* ------------------- extension applications ------------------- *)

let histogram () =
  let t = Histogram.make () in
  { name = "histogram";
    description = "Bucketed histogram (Table 2's GroupByFold)";
    collection_ops = "groupBy, reduce";
    prog = t.Histogram.prog;
    tiles = [ (t.Histogram.n, 4096) ];
    sim_sizes = [ (t.Histogram.n, 1 lsl 20) ];
    test_sizes = [ (t.Histogram.n, 100) ];
    gen =
      (fun ~sizes ~seed ->
        Histogram.gen_inputs t ~seed ~n:(size_of sizes t.Histogram.n)) }

let conv2d () =
  let t = Conv2d.make () in
  { name = "conv2d";
    description = "2-D convolution (3x3, sliding-window reuse)";
    collection_ops = "map, reduce";
    prog = t.Conv2d.prog;
    tiles = [ (t.Conv2d.h, 128); (t.Conv2d.w, 128) ];
    sim_sizes = [ (t.Conv2d.h, 1024); (t.Conv2d.w, 1024) ];
    test_sizes = [ (t.Conv2d.h, 7); (t.Conv2d.w, 9) ];
    gen =
      (fun ~sizes ~seed ->
        Conv2d.gen_inputs t ~seed ~h:(size_of sizes t.Conv2d.h)
          ~w:(size_of sizes t.Conv2d.w)) }

let logreg () =
  let t = Logreg.make () in
  { name = "logreg";
    description = "Logistic regression gradient step";
    collection_ops = "map, reduce";
    prog = t.Logreg.prog;
    tiles = [ (t.Logreg.n, 1024) ];
    sim_sizes = [ (t.Logreg.n, 65536); (t.Logreg.d, 32) ];
    test_sizes = [ (t.Logreg.n, 25); (t.Logreg.d, 4) ];
    gen =
      (fun ~sizes ~seed ->
        Logreg.gen_inputs t ~seed ~n:(size_of sizes t.Logreg.n)
          ~d:(size_of sizes t.Logreg.d)) }

let blackscholes () =
  let t = Blackscholes.make () in
  { name = "blackscholes";
    description = "Black-Scholes option pricing (streaming)";
    collection_ops = "map";
    prog = t.Blackscholes.prog;
    tiles = [ (t.Blackscholes.n, 16384) ];
    sim_sizes = [ (t.Blackscholes.n, 1 lsl 22) ];
    test_sizes = [ (t.Blackscholes.n, 50) ];
    gen =
      (fun ~sizes ~seed ->
        Blackscholes.gen_inputs t ~seed ~n:(size_of sizes t.Blackscholes.n)) }

let matvec () =
  let t = Matvec.make () in
  { name = "matvec";
    description = "Dense matrix-vector multiply";
    collection_ops = "map, reduce";
    prog = t.Matvec.prog;
    tiles = [ (t.Matvec.m, 1024); (t.Matvec.n, 1024) ];
    sim_sizes = [ (t.Matvec.m, 16384); (t.Matvec.n, 8192) ];
    test_sizes = [ (t.Matvec.m, 9); (t.Matvec.n, 7) ];
    gen =
      (fun ~sizes ~seed ->
        Matvec.gen_inputs t ~seed ~m:(size_of sizes t.Matvec.m)
          ~n:(size_of sizes t.Matvec.n)) }

let spmv () =
  let t = Spmv.make () in
  { name = "spmv";
    description = "Sparse matrix-vector multiply (CSR)";
    collection_ops = "map, reduce";
    prog = t.Spmv.prog;
    tiles = [ (t.Spmv.m, 1024) ];
    sim_sizes =
      [ (t.Spmv.m, 65536); (t.Spmv.n, 16384); (t.Spmv.nnz, 16 * 65536) ];
    test_sizes = [ (t.Spmv.m, 13); (t.Spmv.n, 9); (t.Spmv.nnz, 40) ];
    gen =
      (fun ~sizes ~seed ->
        Spmv.gen_inputs t ~seed ~m:(size_of sizes t.Spmv.m)
          ~n:(size_of sizes t.Spmv.n)
          ~nnz:(size_of sizes t.Spmv.nnz)) }

let extended () =
  all ()
  @ [ histogram (); conv2d (); logreg (); blackscholes (); matvec (); spmv () ]

let find benches name =
  match List.find_opt (fun b -> b.name = name) benches with
  | Some b -> b
  | None -> raise Not_found
