(** Black-Scholes European option pricing — an extension application from
    the streaming-compute domain the paper's predecessors evaluate.

    One [Map] over the options with a deep branch-free datapath
    (log/exp/sqrt/divide), using a logistic approximation of the
    cumulative normal so no data-dependent control flow is needed.
    A pure streaming benchmark: like outerprod it gains nothing from
    tiling (every word is used once) but stresses the pipeline-depth
    model ({!Depth}) and the parallelism sweep. *)

type t = {
  prog : Ir.program;
  n : Sym.t;  (** number of options *)
  sptprice : Ir.input;
  strike : Ir.input;
  time : Ir.input;  (** years to maturity *)
}

val rate : float
(** Risk-free rate baked into the kernel (scalar constant). *)

val volatility : float

val make : unit -> t

val gen_inputs : t -> seed:int -> n:int -> (Sym.t * Value.t) list

val reference :
  sptprice:float array -> strike:float array -> time:float array ->
  float array
(** Same logistic-CND formula as the kernel, evaluated in OCaml. *)

val raw_inputs :
  seed:int -> n:int -> float array * float array * float array
