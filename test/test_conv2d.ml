(* 2-D convolution: multidimensional Fold domains and two-dimensional
   sliding-window tile copies. *)

let value_eq = Value.equal ~eps:1e-5

let test_reference () =
  let t = Conv2d.make () in
  let h = 9 and w = 7 in
  let img, kernel = Conv2d.raw_inputs t ~seed:4 ~h ~w in
  let v =
    Eval.eval_program t.Conv2d.prog
      ~sizes:[ (t.Conv2d.h, h); (t.Conv2d.w, w) ]
      ~inputs:(Conv2d.gen_inputs t ~seed:4 ~h ~w)
  in
  Alcotest.(check bool) "matches reference" true
    (value_eq (Workloads.value_of_matrix (Conv2d.reference ~img ~kernel ~h ~w)) v)

let test_tiled_equivalence () =
  let t = Conv2d.make ~kh:3 ~kw:5 () in
  List.iter
    (fun (h, w, bh, bw) ->
      let tiles = [ (t.Conv2d.h, bh); (t.Conv2d.w, bw) ] in
      let r = Tiling.run ~tiles t.Conv2d.prog in
      ignore (Validate.check_program r.Tiling.tiled);
      let sizes = [ (t.Conv2d.h, h); (t.Conv2d.w, w) ] in
      let inputs = Conv2d.gen_inputs t ~seed:9 ~h ~w in
      let expected = Eval.eval_program t.Conv2d.prog ~sizes ~inputs in
      let actual = Eval.eval_program r.Tiling.tiled ~sizes ~inputs in
      if not (value_eq expected actual) then
        Alcotest.failf "h=%d w=%d bh=%d bw=%d mismatch" h w bh bw)
    [ (8, 8, 4, 4); (9, 7, 4, 3); (5, 5, 8, 8); (12, 6, 5, 2) ]

let test_window_copy () =
  (* the image tile must cover the halo and carry a reuse factor *)
  let t = Conv2d.make () in
  let tiles = [ (t.Conv2d.h, 16); (t.Conv2d.w, 16) ] in
  let r = Tiling.run ~tiles t.Conv2d.prog in
  let found = ref None in
  Rewrite.iter_exp
    (function
      | Ir.Copy ({ csrc = Ir.Var s; _ } as c)
        when Sym.equal s t.Conv2d.img.Ir.iname ->
          found := Some c
      | _ -> ())
    r.Tiling.tiled.Ir.body;
  match !found with
  | None -> Alcotest.fail "no image tile copy"
  | Some c ->
      Alcotest.(check bool) "reuse marked" true (c.Ir.creuse >= 2);
      (* halo: max_len = tile + kernel - 1 in both dimensions *)
      List.iter
        (fun cd ->
          match cd with
          | Ir.Coffset { max_len = Some m; _ } ->
              Alcotest.(check int) "tile + halo" (16 + 2) m
          | _ -> Alcotest.fail "unexpected copy dim")
        c.Ir.cdims

let test_hardware () =
  let t = Conv2d.make () in
  let tiles = [ (t.Conv2d.h, 32); (t.Conv2d.w, 32) ] in
  let r = Tiling.run ~tiles t.Conv2d.prog in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  (* halo-extended tile buffer: (32+2)^2 *)
  let tile_mem =
    List.find_opt
      (fun m ->
        String.length m.Hw.mem_name >= 7
        && String.sub m.Hw.mem_name 0 7 = "imgTile")
      d.Hw.mems
  in
  (match tile_mem with
  | Some m -> Alcotest.(check int) "halo buffer depth" (34 * 34) m.Hw.depth
  | None -> Alcotest.fail "no image tile buffer");
  (* reuse factor reduces simulated DRAM traffic below the naive
     (tile+halo)^2 per-tile refetch *)
  let sizes = [ (t.Conv2d.h, 1024); (t.Conv2d.w, 1024) ] in
  let rep = Simulate.run d ~sizes in
  let words = Simulate.read_words rep "img" in
  let naive = 1024.0 /. 32.0 *. (1024.0 /. 32.0) *. (34.0 *. 34.0) in
  Alcotest.(check bool) "reuse saves traffic" true (words < naive)

let () =
  Alcotest.run "conv2d"
    [ ( "conv2d",
        [ Alcotest.test_case "reference" `Quick test_reference;
          Alcotest.test_case "tiled equivalence" `Quick test_tiled_equivalence;
          Alcotest.test_case "window copy" `Quick test_window_copy;
          Alcotest.test_case "hardware" `Quick test_hardware ] ) ]
