(* Provenance preservation and profile attribution.

   The provenance stamped on the source patterns (Prov_stamp, run at
   Tiling.run entry) must survive fusion, strip mining, interchange,
   lowering and metapipelining: every controller of every generated
   design carries a non-empty trail whose origin is a real source
   pattern id.  And the attribution profiler must account for 100% of
   the simulated cycles: its root total is the Simulate.run figure
   verbatim, and the self cycles over the tree telescope back to it.
   Both properties are checked for every suite benchmark under all
   three hardware configurations.

   The folded flamegraph backend is validated by a hand-rolled parser:
   [;]-separated frames, one space, an integer weight — and the bytes
   are identical across runs and domain counts. *)

let configs =
  [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ]

let cfg_name = Experiments.config_name

(* the source-pattern ids a benchmark can legitimately attribute to:
   stamping is a deterministic preorder pass, so stamping the source
   program here reproduces exactly the ids Tiling.run assigns *)
let source_origins (bench : Suite.bench) =
  let p = Prov_stamp.program bench.Suite.prog in
  let acc = ref [ p.Ir.pname ^ "/top" ] in
  Rewrite.iter_exp
    (fun e ->
      let prov =
        match e with
        | Ir.Map m -> m.Ir.mprov
        | Ir.Fold f -> f.Ir.fprov
        | Ir.MultiFold mf -> mf.Ir.oprov
        | Ir.FlatMap fm -> fm.Ir.fmprov
        | Ir.GroupByFold g -> g.Ir.gprov
        | _ -> Prov.none
      in
      if not (Prov.is_none prov) then acc := prov.Prov.origin :: !acc)
    p.Ir.body;
  !acc

let rec iter_ctrl f c =
  f c;
  match c with
  | Hw.Seq { children; _ } | Hw.Par { children; _ } ->
      List.iter (iter_ctrl f) children
  | Hw.Loop { stages; _ } -> List.iter (iter_ctrl f) stages
  | Hw.Pipe _ | Hw.Tile_load _ | Hw.Tile_store _ -> ()

let test_ctrl_provenance () =
  List.iter
    (fun (bench : Suite.bench) ->
      let origins = source_origins bench in
      List.iter
        (fun cfg ->
          let d = Experiments.design_of cfg bench in
          let ctx name =
            Printf.sprintf "%s/%s: %s" bench.Suite.name (cfg_name cfg) name
          in
          iter_ctrl
            (fun c ->
              let p = Hw.ctrl_prov c in
              let name = Hw.ctrl_name c in
              Alcotest.(check bool)
                (ctx name ^ " has provenance")
                true
                (not (Prov.is_none p));
              Alcotest.(check bool)
                (ctx name ^ " rooted at a source pattern ("
               ^ p.Prov.origin ^ ")")
                true
                (List.mem p.Prov.origin origins))
            d.Hw.top;
          (* memories are attributed too: every on-chip buffer carries
             the provenance of the pattern it was allocated for *)
          List.iter
            (fun (m : Hw.mem) ->
              Alcotest.(check bool)
                (ctx m.Hw.mem_name ^ " (mem) has provenance")
                true
                (not (Prov.is_none m.Hw.mem_prov)))
            d.Hw.mems)
        configs)
    (Suite.extended ())

let rec sum_self (n : Profile.node) =
  List.fold_left (fun acc c -> acc +. sum_self c) n.Profile.self
    n.Profile.children

let test_full_attribution () =
  List.iter
    (fun (bench : Suite.bench) ->
      List.iter
        (fun cfg ->
          let d = Experiments.design_of cfg bench in
          let sizes = bench.Suite.sim_sizes in
          let cache = Simulate.cache () in
          let rep = Simulate.run ~cache d ~sizes in
          let p = Profile.of_design ~cache d ~sizes in
          let ctx s =
            Printf.sprintf "%s/%s: %s" bench.Suite.name (cfg_name cfg) s
          in
          (* the root total is the simulator's figure, verbatim *)
          Alcotest.(check bool)
            (ctx "profile total = simulate total")
            true
            (Profile.total_cycles p = rep.Simulate.cycles);
          Alcotest.(check bool)
            (ctx "root node carries the total")
            true
            (p.Profile.root.Profile.total = rep.Simulate.cycles);
          (* ... and the self cycles telescope back to 100% of it *)
          let self_sum = sum_self p.Profile.root in
          let tol = 1e-6 *. Float.max 1.0 rep.Simulate.cycles in
          Alcotest.(check bool)
            (ctx "self cycles sum to the total")
            true
            (Float.abs (self_sum -. rep.Simulate.cycles) <= tol);
          (* the per-origin table is the same partition, re-keyed *)
          let origin_sum =
            List.fold_left
              (fun acc (o : Profile.origin_row) -> acc +. o.Profile.o_cycles)
              0.0 p.Profile.origins
          in
          Alcotest.(check bool)
            (ctx "origin rows sum to the total")
            true
            (Float.abs (origin_sum -. rep.Simulate.cycles) <= tol))
        configs)
    (Suite.extended ())

(* ------------------------- folded-stack format ----------------------- *)

let gemm () = Suite.find (Suite.extended ()) "gemm"

let gemm_profile () =
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  Profile.of_design d ~sizes:bench.Suite.sim_sizes

(* hand-rolled parser for the folded flamegraph format: each line is
   [frame;frame;...frame weight] — [;]-separated non-empty frames with
   no embedded whitespace, exactly one space, a non-negative integer
   weight, nothing else *)
let parse_folded_line line =
  match String.rindex_opt line ' ' with
  | None -> Error "no space separator"
  | Some i ->
      let stack = String.sub line 0 i in
      let weight = String.sub line (i + 1) (String.length line - i - 1) in
      if weight = "" then Error "empty weight"
      else if not (String.for_all (fun c -> c >= '0' && c <= '9') weight) then
        Error ("weight not an integer: " ^ weight)
      else
        let frames = String.split_on_char ';' stack in
        if frames = [] then Error "no frames"
        else if
          List.exists
            (fun f ->
              f = ""
              || String.exists
                   (fun c -> c = ' ' || c = '\t' || Char.code c < 0x20)
                   f)
            frames
        then Error ("bad frame in: " ^ stack)
        else Ok (frames, int_of_string weight)

let test_folded_format () =
  let folded = Profile.to_folded (gemm_profile ()) in
  Alcotest.(check bool) "folded output nonempty" true (String.length folded > 0);
  Alcotest.(check bool) "ends with a newline" true
    (folded.[String.length folded - 1] = '\n');
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
  in
  Alcotest.(check bool) "has stacks" true (List.length lines >= 2);
  let parsed =
    List.map
      (fun l ->
        match parse_folded_line l with
        | Ok p -> p
        | Error e -> Alcotest.fail (Printf.sprintf "line %S: %s" l e))
      lines
  in
  (* weights are positive (zero-weight stacks are dropped) *)
  List.iter
    (fun (_, w) -> Alcotest.(check bool) "positive weight" true (w > 0))
    parsed;
  (* stacks are unique and lexicographically sorted *)
  let stacks = List.map (fun l -> String.concat ";" (fst l)) parsed in
  Alcotest.(check (list string)) "sorted, duplicate-free stacks"
    (List.sort_uniq String.compare stacks)
    stacks;
  (* every stack is rooted at a gemm source pattern *)
  let origins = source_origins (gemm ()) in
  List.iter
    (fun (frames, _) ->
      Alcotest.(check bool)
        ("stack rooted at a source pattern: " ^ List.hd frames)
        true
        (List.mem (List.hd frames) origins))
    parsed;
  (* folded weights sum to (almost all of) the design total: only
     sub-cycle rounding of each node's self time may be lost *)
  let p = gemm_profile () in
  let weight_sum =
    List.fold_left (fun acc (_, w) -> acc +. float_of_int w) 0.0 parsed
  in
  let nodes =
    Profile.fold_nodes (fun acc _ -> acc + 1) 0 p
  in
  Alcotest.(check bool) "weights cover the cycle total" true
    (Float.abs (weight_sum -. Profile.total_cycles p)
    <= 0.5 *. float_of_int nodes)

let test_folded_deterministic () =
  let a = Profile.to_folded (gemm_profile ()) in
  let b = Profile.to_folded (gemm_profile ()) in
  Alcotest.(check string) "byte-identical across runs" a b;
  (* ... and across domain counts: profiles computed inside a parallel
     Pool sweep emit the same bytes as the sequential ones *)
  List.iter
    (fun domains ->
      let results =
        Pool.map ~domains (fun () -> Profile.to_folded (gemm_profile ()))
          [ (); () ]
      in
      List.iter
        (fun r ->
          Alcotest.(check string)
            (Printf.sprintf "byte-identical at %d domains" domains)
            a r)
        results)
    [ 1; 2 ]

let () =
  Alcotest.run "provenance"
    [ ( "preservation",
        [ Alcotest.test_case "every controller rooted at a source pattern"
            `Quick test_ctrl_provenance ] );
      ( "attribution",
        [ Alcotest.test_case "100% of cycles attributed (suite x configs)"
            `Quick test_full_attribution ] );
      ( "folded",
        [ Alcotest.test_case "format parses" `Quick test_folded_format;
          Alcotest.test_case "byte-deterministic" `Quick
            test_folded_deterministic ] ) ]
