(* The observability layer: the Chrome trace-event JSON emitted by
   [Trace] must parse, its B/E spans must balance per track, simulator
   spans must live on the deterministic virtual clock, and the stripped
   (wall-clock-free) form must be byte-stable across runs and domain
   counts.  The acceptance check ties the timeline back to the cycle
   model: gemm's top-level spans summed reproduce the event engine's
   cycle total, which in turn sits within 2% of the analytic report. *)

(* ------------------- minimal JSON recursive descent ------------------ *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos))
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else raise (Bad_json ("bad literal at " ^ string_of_int !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad_json "unterminated string");
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 5 > n then raise (Bad_json "truncated \\u escape");
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* the emitters only escape control chars, all ASCII *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else raise (Bad_json "non-ASCII \\u escape")
          | c -> raise (Bad_json (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let isnum c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while isnum (peek ()) do
      advance ()
    done;
    if !pos = start then
      raise (Bad_json ("expected a value at " ^ string_of_int start));
    JNum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' -> parse_obj ()
    | '[' -> parse_arr ()
    | '"' -> JStr (parse_string ())
    | 't' -> literal "true" (JBool true)
    | 'f' -> literal "false" (JBool false)
    | 'n' -> literal "null" JNull
    | _ -> parse_number ()
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      JObj []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ((k, v) :: acc)
        | '}' ->
            advance ();
            JObj (List.rev ((k, v) :: acc))
        | _ -> raise (Bad_json ("expected , or } at " ^ string_of_int !pos))
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      JArr []
    end
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems (v :: acc)
        | ']' ->
            advance ();
            JArr (List.rev (v :: acc))
        | _ -> raise (Bad_json ("expected , or ] at " ^ string_of_int !pos))
      in
      elems []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let field name = function
  | JObj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail ("missing field " ^ name))
  | _ -> Alcotest.fail ("not an object (looking up " ^ name ^ ")")

let num = function JNum f -> f | _ -> Alcotest.fail "expected a number"
let str = function JStr s -> s | _ -> Alcotest.fail "expected a string"
let int_of j = int_of_float (num j)

let events_of json =
  match field "traceEvents" json with
  | JArr evs -> evs
  | _ -> Alcotest.fail "traceEvents is not an array"

(* ------------------------------ captures ----------------------------- *)

let gemm () = Suite.find (Suite.all ()) "gemm"

(* what `ppl-fpga simulate gemm --trace` records: traced compile passes
   (wall clock) plus the event engine's virtual timeline *)
let capture_sim_trace () =
  Trace.clear ();
  Trace.enable ();
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let r = Event_sim.run ~record:true d ~sizes:bench.Suite.sim_sizes in
  Option.iter Sim_trace.record r.Event_sim.timeline;
  Trace.disable ();
  (Trace.to_json (), r)

(* what `ppl-fpga timeline gemm` emits: the design is compiled before the
   collector is enabled, so the trace holds only virtual-clock events *)
let capture_timeline () =
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  Trace.clear ();
  Trace.enable ();
  let r = Event_sim.run ~record:true d ~sizes:bench.Suite.sim_sizes in
  Option.iter Sim_trace.record r.Event_sim.timeline;
  Trace.disable ();
  Trace.to_json ()

(* a full mixed-clock run with multi-domain wall activity: compile + sim
   timeline + a small DSE sweep fanned out over [domains] *)
let capture_full ~domains () =
  Trace.clear ();
  Trace.enable ();
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let r = Event_sim.run ~record:true d ~sizes:bench.Suite.sim_sizes in
  Option.iter Sim_trace.record r.Event_sim.timeline;
  let candidates =
    List.map (fun (s, dft) -> (s, [ dft; dft * 2 ])) bench.Suite.tiles
  in
  ignore
    (Dse.explore ~domains ~prog:bench.Suite.prog ~candidates
       ~sizes:bench.Suite.sim_sizes ());
  Trace.disable ();
  Trace.to_json ()

let contains_sub line sub =
  let nl = String.length line and ns = String.length sub in
  let rec go i = i + ns <= nl && (String.sub line i ns = sub || go (i + 1)) in
  go 0

(* golden form: drop wall-clock lines (pid 0, the only nondeterministic
   events) and normalize the trailing commas their removal exposes *)
let strip_wall json =
  String.split_on_char '\n' json
  |> List.filter (fun l -> not (contains_sub l "\"pid\": 0"))
  |> List.map (fun l ->
         let len = String.length l in
         if len > 0 && l.[len - 1] = ',' then String.sub l 0 (len - 1) else l)

(* ------------------------------- tests ------------------------------- *)

let test_json_parses () =
  let json, _ = capture_sim_trace () in
  let evs = events_of (parse json) in
  Alcotest.(check bool) "trace has events" true (List.length evs > 100);
  (* both clocks are present: wall passes and virtual sim spans *)
  let pids = List.map (fun e -> int_of (field "pid" e)) evs in
  Alcotest.(check bool) "wall events present" true (List.mem 0 pids);
  Alcotest.(check bool) "virtual events present" true (List.mem 1 pids)

let test_be_balance () =
  let json, _ = capture_sim_trace () in
  let evs = events_of (parse json) in
  let depth : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let pairs = ref 0 in
  List.iter
    (fun e ->
      let ph = str (field "ph" e) in
      if ph = "B" || ph = "E" then begin
        let key = (int_of (field "pid" e), int_of (field "tid" e)) in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
        let d' = if ph = "B" then d + 1 else d - 1 in
        if d' < 0 then Alcotest.fail "E before B on a track";
        if ph = "E" then incr pairs;
        Hashtbl.replace depth key d'
      end)
    evs;
  Alcotest.(check bool) "has span pairs" true (!pairs > 100);
  Hashtbl.iter
    (fun _ d -> Alcotest.(check int) "every track balances" 0 d)
    depth

let test_virtual_timestamps () =
  let json, r = capture_sim_trace () in
  let evs = events_of (parse json) in
  let max_ts = ref 0.0 in
  List.iter
    (fun e ->
      let ph = str (field "ph" e) in
      if ph = "B" || ph = "E" then begin
        (* every sim span lives on the virtual pid with a cycle timestamp *)
        Alcotest.(check int) "sim spans on virtual pid" Trace.virtual_pid
          (int_of (field "pid" e));
        let ts = num (field "ts" e) in
        Alcotest.(check bool) "cycle timestamps are finite and >= 0" true
          (Float.is_finite ts && ts >= 0.0);
        if ts > !max_ts then max_ts := ts
      end)
    evs;
  let cycles = r.Event_sim.report.Simulate.cycles in
  Alcotest.(check bool) "timeline ends at the reported cycle count" true
    (Float.abs (!max_ts -. cycles) /. cycles < 1e-9)

let test_root_spans_sum_to_report () =
  (* acceptance: per-stage spans of the top-level track, summed, equal
     the event engine's cycle total for tiled gemm, which agrees with
     the analytic report within 2% *)
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let sizes = bench.Suite.sim_sizes in
  let r = Event_sim.run ~record:true d ~sizes in
  let tl =
    match r.Event_sim.timeline with
    | Some tl -> tl
    | None -> Alcotest.fail "no timeline recorded"
  in
  let root_sum =
    List.fold_left
      (fun acc (sp : Event_sim.span) ->
        if String.contains sp.Event_sim.sp_track '.' then acc
        else acc +. (sp.Event_sim.sp_finish -. sp.Event_sim.sp_start))
      0.0 tl.Event_sim.tl_spans
  in
  let ev = r.Event_sim.report.Simulate.cycles in
  let rel a b = Float.abs (a -. b) /. Float.max a b in
  Alcotest.(check bool) "has root spans" true (root_sum > 0.0);
  Alcotest.(check bool) "root spans sum to the event cycle total" true
    (rel root_sum ev < 1e-9);
  Alcotest.(check bool) "makespan equals the report" true
    (rel tl.Event_sim.tl_makespan ev < 1e-9);
  let an = (Simulate.run d ~sizes).Simulate.cycles in
  Alcotest.(check bool) "event total within 2% of analytic" true
    (rel an ev < 0.02);
  Alcotest.(check int) "no fallbacks on gemm" 0 r.Event_sim.fallbacks

let test_timeline_byte_identical () =
  (* virtual-only capture: fully deterministic, byte for byte *)
  let a = capture_timeline () and b = capture_timeline () in
  Alcotest.(check bool) "nonempty" true (String.length a > 1000);
  Alcotest.(check bool) "byte-identical across runs" true (String.equal a b)

let test_stripped_determinism () =
  let a = capture_full ~domains:1 () in
  let b = capture_full ~domains:1 () in
  let c = capture_full ~domains:2 () in
  (* wall lines exist and are the only thing stripping removes *)
  Alcotest.(check bool) "wall section present" true
    (List.length (strip_wall a)
    < List.length (String.split_on_char '\n' a));
  Alcotest.(check (list string)) "stripped form stable across runs"
    (strip_wall a) (strip_wall b);
  Alcotest.(check (list string)) "stripped form stable across domain counts"
    (strip_wall a) (strip_wall c)

let test_warm_cache_timeline () =
  (* the event engine's recorded timeline (and hence `timeline`'s JSON)
     must not depend on whether a Simulate memo cache is cold or warm:
     memoized re-runs return exactly the unmemoized results, and the
     virtual-clock capture is bit-identical either way *)
  let bench = gemm () in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let sizes = bench.Suite.sim_sizes in
  let capture () =
    Trace.clear ();
    Trace.enable ();
    let r = Event_sim.run ~record:true d ~sizes in
    Option.iter Sim_trace.record r.Event_sim.timeline;
    Trace.disable ();
    (Trace.to_json (), r.Event_sim.report.Simulate.cycles)
  in
  let cold_json, cold_cycles = capture () in
  (* warm a shared cache with two analytic passes over the same design *)
  let cache = Simulate.cache () in
  let r1 = Simulate.run ~cache d ~sizes in
  let r2 = Simulate.run ~cache d ~sizes in
  Alcotest.(check bool) "memoized re-run returns identical report" true
    (r1 = r2);
  Alcotest.(check bool) "second run hit the memo table" true
    ((Simulate.cache_stats cache).Simulate.hits > 0);
  let warm_json, warm_cycles = capture () in
  Alcotest.(check bool) "cycle total identical warm vs cold" true
    (cold_cycles = warm_cycles);
  Alcotest.(check bool) "timeline byte-identical warm vs cold" true
    (String.equal cold_json warm_json)

let test_metrics_json () =
  Metrics.reset ();
  Metrics.incr ~by:3 "t.counter";
  Metrics.incr "t.counter";
  Metrics.set_gauge "t.gauge" 0.25;
  ignore (Metrics.time "t.timer" (fun () -> 42));
  let j = parse (Metrics.to_json ()) in
  Alcotest.(check (float 0.0)) "counter value" 4.0
    (num (field "t.counter" (field "counters" j)));
  Alcotest.(check (float 0.0)) "gauge value" 0.25
    (num (field "t.gauge" (field "gauges" j)));
  Alcotest.(check (float 0.0)) "timer count" 1.0
    (num (field "count" (field "t.timer" (field "timers" j))))

let test_metrics_diff () =
  (* the registry is process-global; the CLI reports per-invocation
     deltas against a snapshot taken at command entry *)
  Metrics.reset_all ();
  Metrics.incr ~by:2 "d.count";
  Metrics.incr ~by:7 "d.idle";
  Metrics.set_gauge "d.gauge" 1.0;
  let base = Metrics.snapshot () in
  Metrics.incr ~by:5 "d.count";
  Metrics.incr "d.fresh";
  Metrics.set_gauge "d.gauge" 3.5;
  ignore (Metrics.time "d.timer" (fun () -> ()));
  let delta = Metrics.diff ~base (Metrics.snapshot ()) in
  let get k = List.assoc_opt k delta in
  (match get "d.count" with
  | Some (Metrics.Counter 5) -> ()
  | _ -> Alcotest.fail "counter delta should be 5");
  (match get "d.fresh" with
  | Some (Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "fresh counter should pass through");
  (match get "d.gauge" with
  | Some (Metrics.Gauge 3.5) -> ()
  | _ -> Alcotest.fail "gauge should keep its current value");
  (match get "d.timer" with
  | Some (Metrics.Timer { count = 1; _ }) -> ()
  | _ -> Alcotest.fail "timer delta should count 1 call");
  Alcotest.(check bool) "untouched entries are dropped" true
    (get "d.idle" = None)

let test_pass_instrumentation () =
  (* compiling a benchmark populates the pass timers even with tracing
     off: the registry is always on *)
  Metrics.reset ();
  let bench = gemm () in
  ignore (Experiments.design_of Experiments.Tiled_meta bench);
  let snap = Metrics.snapshot () in
  let timer_count name =
    match List.assoc_opt name snap with
    | Some (Metrics.Timer { count; _ }) -> count
    | _ -> 0
  in
  List.iter
    (fun pass ->
      Alcotest.(check bool) (pass ^ " timed") true (timer_count pass >= 1))
    [ "pass.fusion"; "pass.strip-mine"; "pass.interchange"; "pass.cse";
      "pass.lower"; "pass.metapipe" ]

let () =
  Alcotest.run "trace"
    [ ( "json",
        [ Alcotest.test_case "trace parses" `Quick test_json_parses;
          Alcotest.test_case "metrics parse" `Quick test_metrics_json ] );
      ( "spans",
        [ Alcotest.test_case "B/E balance per track" `Quick test_be_balance;
          Alcotest.test_case "virtual timestamps" `Quick
            test_virtual_timestamps;
          Alcotest.test_case "root spans reproduce the report" `Quick
            test_root_spans_sum_to_report ] );
      ( "determinism",
        [ Alcotest.test_case "timeline byte-identical" `Quick
            test_timeline_byte_identical;
          Alcotest.test_case "timeline unaffected by warm sim cache" `Quick
            test_warm_cache_timeline;
          Alcotest.test_case "stripped trace stable" `Quick
            test_stripped_determinism ] );
      ( "metrics",
        [ Alcotest.test_case "pass timers recorded" `Quick
            test_pass_instrumentation;
          Alcotest.test_case "per-invocation deltas" `Quick
            test_metrics_diff ] ) ]
