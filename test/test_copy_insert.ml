(* Tile-copy inference (strip mining pass 2). *)

let value_eq = Value.equal ~eps:1e-6

let full_tiling ?budget_words (bench : Suite.bench) tiles =
  Copy_insert.program ?budget_words
    (Interchange.program (Strip_mine.program ~tiles bench.Suite.prog))

let count_copies prog =
  let n = ref 0 in
  Rewrite.iter_exp
    (function Ir.Copy _ -> incr n | _ -> ())
    prog.Ir.body;
  !n

(* ------------------------- structure ------------------------------ *)

let test_map_copy () =
  (* Table 2 row 1: tiled element-wise map reads from an explicit tile *)
  let d = Dsl.size "d" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var d ] in
  let prog =
    Dsl.program ~name:"scale" ~sizes:[ d ] ~max_sizes:[ (d, 1 lsl 20) ]
      ~inputs:[ x ]
      (Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun idx ->
           Dsl.( *! ) (Dsl.f 2.0) (Dsl.read (Dsl.in_var x) [ idx ])))
  in
  let tiled = Copy_insert.program (Strip_mine.program ~tiles:[ (d, 8) ] prog) in
  ignore (Validate.check_program tiled);
  Alcotest.(check int) "one tile copy" 1 (count_copies tiled);
  (* no direct reads of the input remain *)
  let direct = ref 0 in
  Rewrite.iter_exp
    (function
      | Ir.Read (Ir.Var s, _) when Sym.equal s x.Ir.iname -> incr direct
      | _ -> ())
    tiled.Ir.body;
  Alcotest.(check int) "no direct input reads" 0 !direct

let test_kmeans_centroid_preload () =
  (* Fig. 6: when only n is tiled, the centroids copy has no strided
     offsets and is hoisted to the top of the program (Pipe 0's preload) *)
  let t = Kmeans.make () in
  let prog, stats =
    Copy_insert.program_with_stats
      (Interchange.program
         (Strip_mine.program ~tiles:[ (t.Kmeans.n, 8) ] t.Kmeans.prog))
  in
  ignore (Validate.check_program prog);
  (match prog.Ir.body with
  | Ir.Let (_, Ir.Copy { csrc = Ir.Var s; _ }, _)
    when Sym.equal s t.Kmeans.centroids.Ir.iname ->
      ()
  | Ir.Let (_, Ir.Copy { csrc = Ir.Var s; _ }, Ir.Let (_, Ir.Copy { csrc = Ir.Var s2; _ }, _))
    when Sym.equal s t.Kmeans.centroids.Ir.iname
         || Sym.equal s2 t.Kmeans.centroids.Ir.iname ->
      ()
  | _ -> Alcotest.fail "centroids not preloaded at top level");
  (* the scatter at minDistIndex stays non-affine *)
  Alcotest.(check bool) "non-affine reads skipped" true
    (stats.Copy_insert.skipped_nonaffine >= 0)

let test_kmeans_tile_in_k_loop () =
  (* Fig. 5b: with k tiled, the centroids tile is copied inside the
     strided fold over centroid tiles *)
  let t = Kmeans.make () in
  let bench = Suite.find (Suite.all ()) "kmeans" in
  ignore bench;
  let prog =
    Copy_insert.program
      (Interchange.program
         (Strip_mine.program
            ~tiles:[ (t.Kmeans.n, 8); (t.Kmeans.k, 2) ]
            t.Kmeans.prog))
  in
  ignore (Validate.check_program prog);
  let found = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Fold { fdims = [ Ir.Dtiles { tile = 2; _ } ]; fupd; _ } ->
          (match fupd with
          | Ir.Let (_, Ir.Copy { csrc = Ir.Var s; _ }, _)
            when Sym.equal s t.Kmeans.centroids.Ir.iname ->
              found := true
          | _ -> ())
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check bool) "centroids tile inside k-tile fold" true !found

let test_gemm_ytile_placement () =
  (* Table 3 interchanged: the y tile is copied inside the p-tile fold *)
  let t = Gemm.make () in
  let prog =
    Copy_insert.program
      (Interchange.program
         (Strip_mine.program
            ~tiles:[ (t.Gemm.m, 4); (t.Gemm.n, 4); (t.Gemm.p, 4) ]
            t.Gemm.prog))
  in
  ignore (Validate.check_program prog);
  let found = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Fold { fdims = [ Ir.Dtiles { tile = 4; _ } ]; fupd; _ } ->
          let rec lets = function
            | Ir.Let (_, Ir.Copy { csrc = Ir.Var s; _ }, rest) ->
                Sym.equal s t.Gemm.y.Ir.iname || lets rest
            | _ -> false
          in
          if lets fupd then found := true
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check bool) "y tile inside p-tile fold" true !found

let test_gda_dedup_and_cache () =
  let t = Gda.make () in
  let prog, stats =
    Copy_insert.program_with_stats
      (Interchange.program
         (Strip_mine.program ~tiles:[ (t.Gda.n, 8) ] t.Gda.prog))
  in
  ignore (Validate.check_program prog);
  (* x is read twice (row r and row c of the outer product) but through
     one deduplicated tile; mu's data-dependent read is skipped *)
  Alcotest.(check bool) "mu read left non-affine" true
    (stats.Copy_insert.skipped_nonaffine >= 1);
  let x_copies = ref 0 in
  Rewrite.iter_exp
    (function
      | Ir.Copy { csrc = Ir.Var s; _ } when Sym.equal s t.Gda.x.Ir.iname ->
          incr x_copies
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check int) "one x tile" 1 !x_copies

let test_budget_gate () =
  (* a tiny budget suppresses all copies *)
  let t = Outerprod.make () in
  let stripped =
    Strip_mine.program ~tiles:[ (t.Outerprod.m, 4); (t.Outerprod.n, 4) ]
      t.Outerprod.prog
  in
  let prog = Copy_insert.program ~budget_words:1 stripped in
  Alcotest.(check int) "no copies under tiny budget" 0 (count_copies prog)

(* ------------------------- semantics ------------------------------ *)

let test_equivalence (bench : Suite.bench) () =
  List.iter
    (fun tile ->
      let tiles = List.map (fun (s, _) -> (s, tile)) bench.Suite.tiles in
      let prog = full_tiling bench tiles in
      ignore (Validate.check_program prog);
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:21 in
      let expected = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
      let actual = Eval.eval_program prog ~sizes ~inputs in
      if not (value_eq expected actual) then
        Alcotest.failf "%s tile=%d mismatch:@.expected %s@.got %s"
          bench.Suite.name tile
          (Value.to_string expected)
          (Value.to_string actual))
    [ 2; 4; 7 ]

let prop_sliding_window =
  (* 1-D convolution: reads x(i + w) with two local terms; the copy gets a
     reuse factor and the program stays correct *)
  QCheck.Test.make ~name:"sliding window copy equivalence" ~count:30
    QCheck.(pair (int_range 3 40) (int_range 1 8))
    (fun (n, tile) ->
      let d = Dsl.size "d" in
      let x = Dsl.input "x" Ty.float_ [ Ir.Prim (Ir.Add, [ Ir.Var d; Ir.Ci 2 ]) ] in
      let body =
        Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun idx ->
            Dsl.fold1 (Dsl.dfull (Dsl.i 3)) ~init:(Dsl.f 0.0)
              ~comb:(fun a b -> Dsl.( +! ) a b)
              (fun w acc ->
                Dsl.( +! ) acc
                  (Dsl.read (Dsl.in_var x) [ Dsl.( +! ) idx w ])))
      in
      let prog =
        Dsl.program ~name:"conv" ~sizes:[ d ] ~max_sizes:[ (d, 1 lsl 16) ]
          ~inputs:[ x ] body
      in
      let tiled =
        Copy_insert.program (Strip_mine.program ~tiles:[ (d, tile) ] prog)
      in
      ignore (Validate.check_program tiled);
      let rng = Workloads.Rng.make (n * tile) in
      let xs = Workloads.float_vector rng (n + 2) in
      let inputs = [ (x.Ir.iname, Workloads.value_of_vector xs) ] in
      let sizes = [ (d, n) ] in
      value_eq
        (Eval.eval_program prog ~sizes ~inputs)
        (Eval.eval_program tiled ~sizes ~inputs))

let prop_window_has_reuse =
  QCheck.Test.make ~name:"sliding window marks reuse" ~count:1 QCheck.unit
    (fun () ->
      let d = Dsl.size "d" in
      let x = Dsl.input "x" Ty.float_ [ Ir.Prim (Ir.Add, [ Ir.Var d; Ir.Ci 2 ]) ] in
      let body =
        Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun idx ->
            Dsl.fold1 (Dsl.dfull (Dsl.i 3)) ~init:(Dsl.f 0.0)
              ~comb:(fun a b -> Dsl.( +! ) a b)
              (fun w acc ->
                Dsl.( +! ) acc (Dsl.read (Dsl.in_var x) [ Dsl.( +! ) idx w ])))
      in
      let prog =
        Dsl.program ~name:"conv" ~sizes:[ d ] ~max_sizes:[ (d, 1 lsl 16) ]
          ~inputs:[ x ] body
      in
      let tiled =
        Copy_insert.program (Strip_mine.program ~tiles:[ (d, 8) ] prog)
      in
      let reuse = ref 0 in
      Rewrite.iter_exp
        (function Ir.Copy { creuse; _ } -> reuse := max !reuse creuse | _ -> ())
        tiled.Ir.body;
      !reuse >= 2)

let () =
  let suite = Suite.all () in
  Alcotest.run "copy_insert"
    [ ( "structure",
        [ Alcotest.test_case "map tile copy" `Quick test_map_copy;
          Alcotest.test_case "kmeans centroid preload" `Quick
            test_kmeans_centroid_preload;
          Alcotest.test_case "kmeans k-tile copy" `Quick
            test_kmeans_tile_in_k_loop;
          Alcotest.test_case "gemm yTile placement" `Quick
            test_gemm_ytile_placement;
          Alcotest.test_case "gda dedup + cache" `Quick test_gda_dedup_and_cache;
          Alcotest.test_case "budget gate" `Quick test_budget_gate ] );
      ( "equivalence",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick (test_equivalence bench))
          suite );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_sliding_window;
          QCheck_alcotest.to_alcotest prop_window_has_reuse ] ) ]
