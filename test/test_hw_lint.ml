(* The semantic design linter: every analysis class fires on a
   hand-built adversarial design, every generated design (suite and
   corpus, all configurations) is clean at error severity, and deleting
   the double-buffer promotion Metapipe.finalize performs makes the race
   lint fire on real benchmarks. *)

let pipe ?(par = 4) ?(trips = [ Hw.Tconst 16.0 ]) ?(template = Hw.Vector)
    ?(uses = []) ?(defines = []) ?(dram = []) name =
  Hw.Pipe
    { name;
      trips;
      template;
      par;
      depth = 4;
      ii = 1;
      ops =
        { Hw.flops = 1; int_ops = 0; cmp_ops = 0; mem_reads = 1; mem_writes = 1 };
      body = None;
      dram;
      uses;
      defines;
      prov = Prov.none }

let mem ?(kind = Hw.Buffer) ?(depth = 64) ?(banks = 4) name =
  { Hw.mem_name = name; kind; width_bits = 32; depth; banks;
    readers = 0; writers = 0; mem_prov = Prov.none }

(* the port recount Metapipe.finalize performs, without its promotion —
   adversarial designs stay adversarial but carry honest port counts *)
let recount (d : Hw.design) =
  List.iter
    (fun m ->
      m.Hw.readers <- 0;
      m.Hw.writers <- 0)
    d.Hw.mems;
  let find n = List.find_opt (fun m -> m.Hw.mem_name = n) d.Hw.mems in
  let bump_r n =
    match find n with Some m -> m.Hw.readers <- m.Hw.readers + 1 | None -> ()
  in
  let bump_w n =
    match find n with Some m -> m.Hw.writers <- m.Hw.writers + 1 | None -> ()
  in
  Hw.iter_ctrls
    (fun c ->
      match c with
      | Hw.Pipe { uses; defines; _ } ->
          List.iter bump_r uses;
          List.iter bump_w defines
      | Hw.Tile_load { mem; _ } -> bump_w mem
      | Hw.Tile_store { mem = Some m; _ } -> bump_r m
      | _ -> ())
    d.Hw.top;
  d

let design ?(mems = []) top =
  recount { Hw.design_name = "t"; mems; top; par_factor = 4 }

let codes d = List.map (fun f -> f.Diagnostic.code) (Hw_lint.check d)
let has_code d c = List.mem c (codes d)

let check_has d c =
  Alcotest.(check bool)
    (c ^ " fires") true (has_code d c)

let check_not d c =
  Alcotest.(check bool)
    (c ^ " silent") false (has_code d c)

let meta_loop ?(meta = true) name stages =
  Hw.Loop { name; trips = [ Hw.Tconst 8.0 ]; meta; stages; prov = Prov.none }

(* ------------------- 1. metapipeline races ------------------- *)

let test_race_buffer () =
  let top =
    meta_loop "l"
      [ pipe ~defines:[ "buf" ] "w"; pipe ~uses:[ "buf" ] "r" ]
  in
  let d = design ~mems:[ mem "buf" ] top in
  check_has d "HW101";
  (* the diagnostic carries the controller path to the loop *)
  let diag =
    List.find (fun f -> f.Diagnostic.code = "HW101") (Hw_lint.check d)
  in
  Alcotest.(check (list string)) "path" [ "l" ] diag.Diagnostic.path;
  Alcotest.(check string) "where" "buf" diag.Diagnostic.where;
  (* double-buffered, the same shape is exactly right *)
  let d = design ~mems:[ mem ~kind:Hw.Double_buffer "buf" ] top in
  check_not d "HW101";
  check_not d "HW102"

let test_race_needs_distinct_stages () =
  (* write and read within one stage: no overlap hazard *)
  let top =
    meta_loop "l" [ pipe ~uses:[ "buf" ] ~defines:[ "buf" ] "rw" ]
  in
  let d = design ~mems:[ mem "buf" ] top in
  check_not d "HW101"

let test_race_sequential_loop_exempt () =
  let top =
    meta_loop ~meta:false "l"
      [ pipe ~defines:[ "buf" ] "w"; pipe ~uses:[ "buf" ] "r" ]
  in
  let d = design ~mems:[ mem "buf" ] top in
  check_not d "HW101";
  (* ...but that shape is exactly what metapipelining overlaps *)
  check_has d "HW141"

let test_race_scalar_reg () =
  let top =
    meta_loop "l"
      [ pipe ~defines:[ "r0" ] "w"; pipe ~uses:[ "r0" ] "r" ]
  in
  let d = design ~mems:[ mem ~kind:Hw.Reg ~depth:1 ~banks:1 "r0" ] top in
  check_not d "HW101";
  check_has d "HW103";
  let diag =
    List.find (fun f -> f.Diagnostic.code = "HW103") (Hw_lint.check d)
  in
  Alcotest.(check bool) "warning severity" true
    (diag.Diagnostic.severity = Diagnostic.Warning)

let test_fifo_coupling_exempt () =
  (* a FIFO between stages is the decoupling mechanism, not a race *)
  let top =
    meta_loop "l"
      [ pipe ~template:Hw.Fifo_write ~defines:[ "q" ] "w";
        pipe ~uses:[ "q" ] "r" ]
  in
  let d = design ~mems:[ mem ~kind:Hw.Fifo ~depth:64 ~banks:1 "q" ] top in
  check_not d "HW101";
  check_not d "HW103"

let test_overpromotion () =
  let top =
    meta_loop "l" [ pipe ~uses:[ "db" ] ~defines:[ "db" ] "rw" ]
  in
  let d = design ~mems:[ mem ~kind:Hw.Double_buffer "db" ] top in
  check_has d "HW102"

(* ------------------- 2. banking / ports ------------------- *)

let test_bank_conflict () =
  let top = pipe ~par:8 ~uses:[ "m" ] ~defines:[ "out" ] "p" in
  let d =
    design ~mems:[ mem ~banks:2 "m"; mem ~banks:8 "out" ] top
  in
  check_has d "HW110";
  (* enough banks: clean *)
  let d =
    design ~mems:[ mem ~banks:8 "m"; mem ~banks:8 "out" ] top
  in
  check_not d "HW110"

let test_reg_broadcast_exempt () =
  (* a depth-1 register is broadcast to all lanes, not banked *)
  let top = pipe ~par:8 ~uses:[ "r0" ] ~defines:[ "out" ] "p" in
  let d =
    design ~mems:[ mem ~kind:Hw.Reg ~depth:1 ~banks:1 "r0"; mem ~banks:8 "out" ] top
  in
  check_not d "HW110"

let test_port_counts () =
  let top = pipe ~uses:[ "m" ] ~defines:[ "out" ] "p" in
  let d = design ~mems:[ mem "m"; mem "out" ] top in
  check_not d "HW111";
  (* stale declared counts are flagged *)
  let m = Hw.find_mem d "m" in
  m.Hw.readers <- 5;
  check_has d "HW111"

(* ------------------- 3. FIFO rates / deadlock ------------------- *)

let fifo_pair ?(meta = false) ?(fifo_depth = 4096) ~ptrips ~ctrips () =
  let top =
    meta_loop ~meta "l"
      [ pipe ~trips:ptrips ~template:Hw.Fifo_write ~defines:[ "q" ] "prod";
        pipe ~trips:ctrips ~uses:[ "q" ] "cons" ]
  in
  design
    ~mems:[ mem ~kind:Hw.Fifo ~depth:fifo_depth ~banks:1 "q" ]
    top

let test_fifo_rate_mismatch () =
  let d =
    fifo_pair ~ptrips:[ Hw.Tconst 1024.0 ] ~ctrips:[ Hw.Tconst 256.0 ] ()
  in
  check_has d "HW120";
  (* matched rates: clean *)
  let d =
    fifo_pair ~ptrips:[ Hw.Tconst 1024.0 ] ~ctrips:[ Hw.Tconst 1024.0 ] ()
  in
  check_not d "HW120"

let test_fifo_rate_symbolic () =
  let n = Sym.fresh "n" in
  (* n*4 vs 4*n: same symbolic product, no finding *)
  let d =
    fifo_pair
      ~ptrips:[ Hw.Tsize n; Hw.Tconst 4.0 ]
      ~ctrips:[ Hw.Tconst 4.0; Hw.Tsize n ]
      ()
  in
  check_not d "HW120";
  (* n*4 vs n: same atoms, different constant — provably mismatched
     without knowing n *)
  let d =
    fifo_pair ~ptrips:[ Hw.Tsize n; Hw.Tconst 4.0 ] ~ctrips:[ Hw.Tsize n ] ()
  in
  check_has d "HW120";
  (* a data-dependent (selectivity-scaled) consumer rate is matched at
     runtime by construction: no static verdict *)
  let d =
    fifo_pair
      ~ptrips:[ Hw.Tsize n ]
      ~ctrips:[ Hw.Tscale (0.05, Hw.Tsize n) ]
      ()
  in
  check_not d "HW120"

let test_fifo_deadlock () =
  (* the producer must push 1024 elements before the consumer stage
     starts draining, through a 16-deep FIFO: it blocks forever *)
  let d =
    fifo_pair ~fifo_depth:16
      ~ptrips:[ Hw.Tconst 1024.0 ]
      ~ctrips:[ Hw.Tconst 1024.0 ]
      ()
  in
  check_has d "HW121";
  (* deep enough: clean *)
  let d =
    fifo_pair ~fifo_depth:2048
      ~ptrips:[ Hw.Tconst 1024.0 ]
      ~ctrips:[ Hw.Tconst 1024.0 ]
      ()
  in
  check_not d "HW121"

let test_fifo_burst_slack () =
  (* fits one burst but not two: a metapipeline serializes on it *)
  let d =
    fifo_pair ~meta:true ~fifo_depth:100
      ~ptrips:[ Hw.Tconst 64.0 ]
      ~ctrips:[ Hw.Tconst 64.0 ]
      ()
  in
  check_not d "HW121";
  check_has d "HW122";
  let d =
    fifo_pair ~meta:true ~fifo_depth:128
      ~ptrips:[ Hw.Tconst 64.0 ]
      ~ctrips:[ Hw.Tconst 64.0 ]
      ()
  in
  check_not d "HW122"

(* ------------------- 4. capacity ------------------- *)

let test_capacity_overflow () =
  let load words =
    Hw.Tile_load
      { name = "load"; mem = "buf"; array = "x"; words = Hw.Tconst words;
        path = []; reuse = 1; prov = Prov.none }
  in
  let top words =
    Hw.Seq
      { name = "top"; children = [ load words; pipe ~uses:[ "buf" ] ~defines:[ "out" ] "p" ]; prov = Prov.none }
  in
  let mems () = [ mem ~depth:1024 ~banks:4 "buf"; mem ~banks:4 "out" ] in
  let d = design ~mems:(mems ()) (top 4096.0) in
  check_has d "HW130";
  let d = design ~mems:(mems ()) (top 1024.0) in
  check_not d "HW130"

let test_capacity_store () =
  let store =
    Hw.Tile_store
      { name = "store"; mem = Some "buf"; array = "out";
        words = Hw.Tconst 4096.0; path = []; prov = Prov.none }
  in
  let top =
    Hw.Seq
      { name = "top"; children = [ pipe ~defines:[ "buf" ] "p"; store ]; prov = Prov.none }
  in
  let d = design ~mems:[ mem ~depth:64 ~banks:4 "buf" ] top in
  check_has d "HW130"

(* ------------------- 5. performance lints ------------------- *)

let test_dead_controller () =
  let top =
    Hw.Seq
      { name = "top";
        children =
          [ pipe ~defines:[ "m" ] "w";
            Hw.Seq { name = "dead"; children = [ pipe ~uses:[ "m" ] "r" ]; prov = Prov.none } ]; prov = Prov.none }
  in
  let d = design ~mems:[ mem "m" ] top in
  check_has d "HW140";
  let diag =
    List.find (fun f -> f.Diagnostic.code = "HW140") (Hw_lint.check d)
  in
  (* the topmost effect-free subtree is reported, not every node in it *)
  Alcotest.(check string) "where" "dead" diag.Diagnostic.where

let test_adjacent_dram_stages () =
  let load n m =
    Hw.Tile_load
      { name = n; mem = m; array = "x"; words = Hw.Tconst 64.0; path = [];
        reuse = 1; prov = Prov.none }
  in
  let top =
    meta_loop "l"
      [ load "la" "a"; load "lb" "b";
        pipe ~uses:[ "a"; "b" ] ~defines:[ "out" ] "p" ]
  in
  let d = design ~mems:[ mem "a"; mem "b"; mem ~banks:4 "out" ] top in
  check_has d "HW142";
  (* separated by a compute stage: the channel gets gaps *)
  let top =
    meta_loop "l"
      [ load "la" "a"; pipe ~uses:[ "a" ] ~defines:[ "out" ] "p";
        load "lb" "b" ]
  in
  let d = design ~mems:[ mem "a"; mem "b"; mem ~banks:4 "out" ] top in
  check_not d "HW142"

(* ------------- generated designs are lint-clean ------------- *)

let configs =
  [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ]

let test_suite_clean () =
  List.iter
    (fun (b : Suite.bench) ->
      List.iter
        (fun cfg ->
          let d = Experiments.design_of cfg b in
          match Diagnostic.errors (Hw_lint.check_all d) with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s/%s: %s" b.Suite.name
                (Experiments.config_name cfg)
                (String.concat "; "
                   (List.map (Format.asprintf "%a" Diagnostic.pp) errs)))
        configs)
    (Suite.extended ())

(* Deleting the promotion Metapipe.finalize performs must make the race
   lint fire: demote every double buffer back to a plain buffer (the
   design a promotion-less finalize would produce) and re-lint. *)
let test_demoted_promotion_races () =
  let fired =
    List.filter
      (fun (b : Suite.bench) ->
        let d = Experiments.design_of Experiments.Tiled_meta b in
        let demoted =
          { d with
            Hw.mems =
              List.map
                (fun m ->
                  if m.Hw.kind = Hw.Double_buffer then
                    { m with Hw.kind = Hw.Buffer }
                  else m)
                d.Hw.mems }
        in
        has_code demoted "HW101")
      (Suite.extended ())
  in
  if fired = [] then
    Alcotest.fail
      "demoting every Double_buffer to Buffer raised no HW101 on any \
       benchmark: the race lint does not re-derive the promotion";
  (* the promotion matters on most of the suite; pin a known case *)
  Alcotest.(check bool) "gemm relies on promotion" true
    (List.exists (fun (b : Suite.bench) -> b.Suite.name = "gemm") fired)

(* ------------- corpus programs through the parser path ------------- *)

let corpus_dir () =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "average.ppl"))
    [ "../corpus"; "corpus"; "../../corpus" ]

let corpus_specs =
  [ ("average.ppl", [ ("n", 1024) ]);
    ("saxpy.ppl", [ ("n", 1024) ]);
    ("possum.ppl", [ ("n", 4096) ]);
    ("rowdot.ppl", [ ("m", 1024); ("n", 1024) ]) ]

let test_corpus_clean () =
  match corpus_dir () with
  | None -> Alcotest.fail "corpus directory not found (dune deps missing?)"
  | Some dir ->
      List.iter
        (fun (file, tile_spec) ->
          let path = Filename.concat dir file in
          let ic = open_in path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let prog = Parser.program_of_string text in
          ignore (Validate.check_program prog);
          let tiles =
            List.filter_map
              (fun (base, v) ->
                Option.map
                  (fun s -> (s, v))
                  (List.find_opt
                     (fun s -> Sym.base s = base)
                     prog.Ir.size_params))
              tile_spec
          in
          let r = Tiling.run ~tiles prog in
          let d = Lower.program Lower.default_opts r.Tiling.tiled in
          match Diagnostic.errors (Hw_lint.check_all d) with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s: %s" file
                (String.concat "; "
                   (List.map (Format.asprintf "%a" Diagnostic.pp) errs)))
        corpus_specs

let () =
  Alcotest.run "hw_lint"
    [ ( "races",
        [ Alcotest.test_case "buffer coupling stages" `Quick test_race_buffer;
          Alcotest.test_case "same-stage write/read ok" `Quick
            test_race_needs_distinct_stages;
          Alcotest.test_case "sequential loop exempt" `Quick
            test_race_sequential_loop_exempt;
          Alcotest.test_case "scalar register warns" `Quick test_race_scalar_reg;
          Alcotest.test_case "fifo coupling exempt" `Quick
            test_fifo_coupling_exempt;
          Alcotest.test_case "over-promotion warns" `Quick test_overpromotion ] );
      ( "banking",
        [ Alcotest.test_case "bank conflict" `Quick test_bank_conflict;
          Alcotest.test_case "register broadcast exempt" `Quick
            test_reg_broadcast_exempt;
          Alcotest.test_case "port counts" `Quick test_port_counts ] );
      ( "fifo",
        [ Alcotest.test_case "constant rate mismatch" `Quick
            test_fifo_rate_mismatch;
          Alcotest.test_case "symbolic rates" `Quick test_fifo_rate_symbolic;
          Alcotest.test_case "deadlock" `Quick test_fifo_deadlock;
          Alcotest.test_case "burst slack" `Quick test_fifo_burst_slack ] );
      ( "capacity",
        [ Alcotest.test_case "tile load overflow" `Quick test_capacity_overflow;
          Alcotest.test_case "tile store overflow" `Quick test_capacity_store ] );
      ( "perf",
        [ Alcotest.test_case "dead controller" `Quick test_dead_controller;
          Alcotest.test_case "adjacent dram stages" `Quick
            test_adjacent_dram_stages ] );
      ( "generated",
        [ Alcotest.test_case "suite clean at error severity" `Quick
            test_suite_clean;
          Alcotest.test_case "deleting promotion fires race lint" `Quick
            test_demoted_promotion_races;
          Alcotest.test_case "corpus clean via parser path" `Quick
            test_corpus_clean ] ) ]
