(* Strip mining (Table 1 / Table 2): structural expectations on the tiled
   forms plus semantic equivalence against the untiled programs for every
   benchmark, including ragged sizes where tiles do not divide the
   domain. *)

open Dsl

let value_eq = Value.equal ~eps:1e-6

let check_value msg expected actual =
  if not (value_eq expected actual) then
    Alcotest.failf "%s:@.expected %s@.got %s" msg (Value.to_string expected)
      (Value.to_string actual)

let strip (bench : Suite.bench) =
  Strip_mine.program ~tiles:bench.Suite.tiles bench.Suite.prog

(* every strip-mined benchmark still type checks, with the same type *)
let test_types_preserved () =
  List.iter
    (fun bench ->
      let t0 = Validate.check_program bench.Suite.prog in
      let t1 = Validate.check_program (strip bench) in
      Alcotest.(check bool)
        (bench.Suite.name ^ " type preserved")
        true (Ty.equal t0 t1))
    (Suite.all ())

let equivalence_sizes (bench : Suite.bench) =
  (* ragged: sizes deliberately not multiples of the tile sizes *)
  let ragged =
    List.map
      (fun (s, v) ->
        let tile =
          match List.find_opt (fun (t, _) -> Sym.equal t s) bench.Suite.tiles with
          | Some (_, b) -> b
          | None -> 1
        in
        ignore tile;
        (s, v))
      bench.Suite.test_sizes
  in
  [ bench.Suite.test_sizes; ragged ]

let test_equivalence (bench : Suite.bench) () =
  let tiled = strip bench in
  List.iter
    (fun sizes ->
      List.iter
        (fun seed ->
          let inputs = bench.Suite.gen ~sizes ~seed in
          let expected = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
          let actual = Eval.eval_program tiled ~sizes ~inputs in
          check_value
            (Printf.sprintf "%s seed=%d" bench.Suite.name seed)
            expected actual;
          (* tiled program in chunked mode exercises the generated combs *)
          let chunked =
            Eval.eval_program ~mode:(Eval.Chunked 3) tiled ~sizes ~inputs
          in
          check_value
            (Printf.sprintf "%s chunked seed=%d" bench.Suite.name seed)
            expected chunked)
        [ 1; 2; 3 ])
    (equivalence_sizes bench)

(* -------------------- tile configurations for small sizes ------------- *)

(* The suite's test sizes are small, so retile with small tiles that do and
   do not divide the extents. *)
let small_tiles (bench : Suite.bench) tile =
  List.map (fun (s, _) -> (s, tile)) bench.Suite.tiles

let test_small_tiles (bench : Suite.bench) () =
  List.iter
    (fun tile ->
      let tiled =
        Strip_mine.program ~tiles:(small_tiles bench tile) bench.Suite.prog
      in
      ignore (Validate.check_program tiled);
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:99 in
      let expected = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
      let actual = Eval.eval_program tiled ~sizes ~inputs in
      check_value
        (Printf.sprintf "%s tile=%d" bench.Suite.name tile)
        expected actual)
    [ 2; 3; 4; 7 ]

(* -------------------- structural expectations (Table 1/2) ------------- *)

let test_map_rule_structure () =
  (* map(d){ i => 2*x(i) } strip mines to a MultiFold over tiles with an
     inner Map over each tile and no combine (Table 2 row 1) *)
  let d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var d ] in
  let prog =
    program ~name:"scale" ~sizes:[ d ] ~inputs:[ x ]
      (map1 (dfull (Ir.Var d)) (fun idx -> f 2.0 *! read (in_var x) [ idx ]))
  in
  let tiled = Strip_mine.program ~tiles:[ (d, 4) ] prog in
  match tiled.Ir.body with
  | Ir.MultiFold { odims = [ Ir.Dtiles { tile = 4; _ } ]; ocomb = None;
                   oouts = [ out ]; _ } -> (
      (match out.Ir.oregion with
      | [ (Ir.Prim (Ir.Mul, [ Ir.Var _; Ir.Ci 4 ]), _, Some 4) ] -> ()
      | _ -> Alcotest.fail "unexpected region");
      match out.Ir.oupd with
      | Ir.Map { mdims = [ Ir.Dtail { tile = 4; _ } ]; _ } -> ()
      | _ -> Alcotest.fail "inner pattern is not a tile Map")
  | _ -> Alcotest.fail "outer pattern is not a tile MultiFold"

let test_fold_rule_structure () =
  (* fold strip mines to a strided fold of per-tile folds *)
  let d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var d ] in
  let prog =
    program ~name:"sum" ~sizes:[ d ] ~inputs:[ x ]
      (fold1
         (dfull (Ir.Var d))
         ~init:(f 0.0)
         ~comb:(fun a b -> a +! b)
         (fun idx acc -> acc +! read (in_var x) [ idx ]))
  in
  let tiled = Strip_mine.program ~tiles:[ (d, 8) ] prog in
  match tiled.Ir.body with
  | Ir.Fold { fdims = [ Ir.Dtiles { tile = 8; _ } ]; fupd; _ } ->
      let has_inner_fold =
        Rewrite.exists_exp
          (function
            | Ir.Fold { fdims = [ Ir.Dtail { tile = 8; _ } ]; _ } -> true
            | _ -> false)
          fupd
      in
      Alcotest.(check bool) "inner tile fold" true has_inner_fold
  | _ -> Alcotest.fail "outer pattern is not a strided fold"

let test_sumrows_localization () =
  (* Table 2 row 2: the inner MultiFold accumulates into a tile-sized
     buffer (range = tile extents), the outer writes tile slices *)
  let t = Sumrows.make () in
  let tiled =
    Strip_mine.program
      ~tiles:[ (t.Sumrows.m, 4); (t.Sumrows.n, 8) ]
      t.Sumrows.prog
  in
  match tiled.Ir.body with
  | Ir.MultiFold
      { odims = [ Ir.Dtiles { tile = 4; _ }; Ir.Dtiles { tile = 8; _ } ];
        oouts = [ out ];
        ocomb = Some _; _ } -> (
      (* outer region: a tile-sized slice of the m-range *)
      (match out.Ir.oregion with
      | [ (Ir.Prim (Ir.Mul, [ Ir.Var _; Ir.Ci 4 ]), _, Some 4) ] -> ()
      | _ -> Alcotest.fail "outer region is not the m-tile slice");
      (* the inner MultiFold reduces into a b0-sized accumulator *)
      let inner_local =
        Rewrite.exists_exp
          (function
            | Ir.MultiFold { oinit = Ir.Zeros (_, [ shape0 ]); _ } ->
                shape0 <> Ir.Var t.Sumrows.m
            | _ -> false)
          out.Ir.oupd
      in
      Alcotest.(check bool) "inner accumulator localized" true inner_local)
  | _ -> Alcotest.fail "sumrows did not localize"

let test_kmeans_fold_shape () =
  (* Fig. 5a: the points loop becomes a strided Fold whose body contains a
     per-tile MultiFold carrying the shared minDist binding *)
  let t = Kmeans.make () in
  let tiled =
    Strip_mine.program ~tiles:[ (t.Kmeans.n, 8); (t.Kmeans.k, 2) ] t.Kmeans.prog
  in
  let has_outer_fold = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Fold { fdims = [ Ir.Dtiles { tile = 8; _ } ]; fupd; _ } ->
          if
            Rewrite.exists_exp
              (function
                | Ir.MultiFold { olets = _ :: _; odims = [ Ir.Dtail _ ]; _ } ->
                    true
                | _ -> false)
              fupd
          then has_outer_fold := true
      | _ -> ())
    tiled.Ir.body;
  Alcotest.(check bool) "fig 5a shape" true !has_outer_fold

let test_flatmap_rule_structure () =
  let t = Tpchq6.make () in
  let tiled = Strip_mine.program ~tiles:[ (t.Tpchq6.n, 16) ] t.Tpchq6.prog in
  let nested =
    Rewrite.exists_exp
      (function
        | Ir.FlatMap { fmdim = Ir.Dtiles { tile = 16; _ }; fmbody; _ } -> (
            match fmbody with
            | Ir.FlatMap { fmdim = Ir.Dtail { tile = 16; _ }; _ } -> true
            | _ -> false)
        | _ -> false)
      tiled.Ir.body
  in
  Alcotest.(check bool) "nested flatmap" true nested

let test_groupbyfold_rule_structure () =
  let t = Histogram.make () in
  let tiled = Strip_mine.program ~tiles:[ (t.Histogram.n, 16) ] t.Histogram.prog in
  (match tiled.Ir.body with
  | Ir.GroupByFold { gdims = [ Ir.Dtiles { tile = 16; _ }; Ir.Dtail _ ]; _ } -> ()
  | _ -> Alcotest.fail "groupByFold not flattened-tiled");
  (* semantics preserved *)
  let sizes = [ (t.Histogram.n, 50) ] in
  let inputs = Histogram.gen_inputs t ~seed:4 ~n:50 in
  check_value "histogram tiled"
    (Eval.eval_program t.Histogram.prog ~sizes ~inputs)
    (Eval.eval_program tiled ~sizes ~inputs)

let test_untiled_untouched () =
  (* strip mining with an empty tile set is the identity on structure *)
  List.iter
    (fun bench ->
      let out = Strip_mine.program ~tiles:[] bench.Suite.prog in
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:0 in
      check_value
        (bench.Suite.name ^ " no-tiles identity")
        (Eval.eval_program bench.Suite.prog ~sizes ~inputs)
        (Eval.eval_program out ~sizes ~inputs))
    (Suite.all ())

(* property: equivalence at random sizes and tiles for the small kernels *)
let prop_map_fold_equiv =
  QCheck.Test.make ~name:"map+fold strip mining equivalence" ~count:40
    QCheck.(triple (int_range 1 30) (int_range 1 9) (int_range 0 100))
    (fun (dval, tile, seed) ->
      let d = size "d" in
      let x = input "x" Ty.float_ [ Ir.Var d ] in
      let body =
        let_ ~name:"doubled"
          (map1 (dfull (Ir.Var d)) (fun idx -> f 2.0 *! read (in_var x) [ idx ]))
          (fun doubled ->
            fold1
              (dfull (Ir.Var d))
              ~init:(f 0.0)
              ~comb:(fun a b -> a +! b)
              (fun idx acc -> acc +! read doubled [ idx ]))
      in
      let prog = program ~name:"p" ~sizes:[ d ] ~inputs:[ x ] body in
      let tiled = Strip_mine.program ~tiles:[ (d, tile) ] prog in
      let rng = Workloads.Rng.make seed in
      let xs = Workloads.float_vector rng dval in
      let inputs = [ (x.Ir.iname, Workloads.value_of_vector xs) ] in
      let sizes = [ (d, dval) ] in
      value_eq
        (Eval.eval_program prog ~sizes ~inputs)
        (Eval.eval_program tiled ~sizes ~inputs))

let () =
  let suite = Suite.all () in
  Alcotest.run "strip_mine"
    [ ( "structure",
        [ Alcotest.test_case "map rule" `Quick test_map_rule_structure;
          Alcotest.test_case "fold rule" `Quick test_fold_rule_structure;
          Alcotest.test_case "sumrows localization" `Quick
            test_sumrows_localization;
          Alcotest.test_case "kmeans fig5a shape" `Quick test_kmeans_fold_shape;
          Alcotest.test_case "flatmap rule" `Quick test_flatmap_rule_structure;
          Alcotest.test_case "groupbyfold rule" `Quick
            test_groupbyfold_rule_structure;
          Alcotest.test_case "no tiles = identity" `Quick test_untiled_untouched
        ] );
      ( "types",
        [ Alcotest.test_case "all benchmarks" `Quick test_types_preserved ] );
      ( "equivalence",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick (test_equivalence bench))
          suite );
      ( "small tiles",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick (test_small_tiles bench))
          suite );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_map_fold_equiv ] ) ]
