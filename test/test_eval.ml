(* Interpreter correctness: every benchmark evaluated against its plain-OCaml
   reference, in both Sequential and Chunked modes (the latter exercises
   every combine function, the associativity the tiling transformations
   rely on). *)

open Dsl

let value_eq = Value.equal ~eps:1e-6

let check_value msg expected actual =
  if not (value_eq expected actual) then
    Alcotest.failf "%s:@.expected %s@.got %s" msg (Value.to_string expected)
      (Value.to_string actual)

let matrix_value = Workloads.value_of_matrix
let vector_value = Workloads.value_of_vector

(* -------------------- small direct programs -------------------- *)

let ev ?mode e = Eval.eval ?mode Sym.Map.empty e

let test_scalar_ops () =
  check_value "add" (Value.F 5.0) (ev (f 2.0 +! f 3.0));
  check_value "int div truncates" (Value.I 3) (ev (i 7 /! i 2));
  check_value "mod" (Value.I 1) (ev (i 7 %! i 2));
  check_value "min" (Value.F 2.0) (ev (min_ (f 2.0) (f 3.0)));
  check_value "select" (Value.I 1) (ev (if_ (b true) (i 1) (i 2)));
  check_value "tuple proj" (Value.I 2) (ev (snd_ (pair (f 1.0) (i 2))))

let test_map_eval () =
  let e = map1 (dfull (i 4)) (fun idx -> idx *! i 2) in
  check_value "map" (Value.of_int_list [ 0; 2; 4; 6 ]) (ev e)

let test_map2d_eval () =
  let e = map2d (dfull (i 2)) (dfull (i 3)) (fun r c -> (r *! i 10) +! c) in
  check_value "map2d"
    (Value.Arr
       (Ndarray.of_list2
          [ [ Value.I 0; Value.I 1; Value.I 2 ];
            [ Value.I 10; Value.I 11; Value.I 12 ] ]))
    (ev e)

let test_fold_eval () =
  let e =
    fold1 (dfull (i 5)) ~init:(i 0) ~comb:(fun a b -> a +! b)
      (fun idx acc -> acc +! idx)
  in
  check_value "sum 0..4" (Value.I 10) (ev e);
  check_value "chunked same" (Value.I 10) (ev ~mode:(Eval.Chunked 2) e)

let test_flatmap_eval () =
  let e =
    flatmap (dfull (i 4)) (fun idx ->
        if_ (idx %! i 2 =! i 0) (arr [ idx; neg idx ]) (empty Ty.int_))
  in
  check_value "flatmap" (Value.of_int_list [ 0; 0; 2; -2 ]) (ev e)

let test_groupbyfold_eval () =
  let e =
    groupbyfold (dfull (i 7)) ~init:(i 0)
      ~comb:(fun a b -> a +! b)
      (fun idx -> (idx %! i 3, fun acc -> acc +! i 1))
  in
  check_value "histogram mod 3"
    (Value.Assoc
       [ (Value.I 0, Value.I 3); (Value.I 1, Value.I 2); (Value.I 2, Value.I 2) ])
    (ev e);
  check_value "chunked merge equal"
    (ev e)
    (ev ~mode:(Eval.Chunked 2) e)

let test_multifold_row_writes () =
  (* write each row of a 3x2 output exactly once, no combine *)
  let e =
    multifold [ dfull (i 3) ]
      ~init:(zeros Ty.Int [ i 3; i 2 ])
      (fun idxs ->
        let r = List.hd idxs in
        [ { range = [ i 3; i 2 ];
            region = [ (r, i 1, Some 1); (i 0, i 2, Some 2) ];
            upd =
              (fun _acc -> map2d (dfull (i 1)) (dfull (i 2)) (fun _ c -> r +! c))
          } ])
  in
  check_value "rows"
    (Value.Arr
       (Ndarray.of_list2
          [ [ Value.I 0; Value.I 1 ];
            [ Value.I 1; Value.I 2 ];
            [ Value.I 2; Value.I 3 ] ]))
    (ev e)

let test_let_slices () =
  let x = Sym.fresh "x" in
  let env =
    Sym.Map.singleton x (Workloads.value_of_matrix [| [| 1.; 2. |]; [| 3.; 4. |] |])
  in
  let e = read (slice_row (Ir.Var x) (i 1)) [ i 0 ] in
  check_value "slice row read" (Value.F 3.0) (Eval.eval env e)

let test_copy_eval () =
  let x = Sym.fresh "x" in
  let env =
    Sym.Map.singleton x
      (Workloads.value_of_matrix [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |])
  in
  let e =
    Ir.Copy
      { csrc = Ir.Var x;
        cdims =
          [ Ir.Coffset { off = i 0; len = i 2; max_len = Some 2 };
            Ir.Coffset { off = i 1; len = i 2; max_len = Some 2 } ];
        creuse = 1 }
  in
  check_value "tile copy"
    (Value.Arr
       (Ndarray.of_list2
          [ [ Value.F 2.; Value.F 3. ]; [ Value.F 5.; Value.F 6. ] ]))
    (Eval.eval env e)

(* -------------------- benchmarks vs references -------------------- *)

let test_outerprod_reference () =
  let t = Outerprod.make () in
  let m = 13 and n = 9 in
  let a, b = Outerprod.raw_inputs ~seed:42 ~m ~n in
  let result =
    Eval.eval_program t.Outerprod.prog
      ~sizes:[ (t.Outerprod.m, m); (t.Outerprod.n, n) ]
      ~inputs:(Outerprod.gen_inputs t ~seed:42 ~m ~n)
  in
  check_value "outerprod" (matrix_value (Outerprod.reference a b)) result

let test_sumrows_reference () =
  let t = Sumrows.make () in
  let m = 11 and n = 17 in
  let x = Sumrows.raw_inputs ~seed:42 ~m ~n in
  let sizes = [ (t.Sumrows.m, m); (t.Sumrows.n, n) ] in
  let inputs = Sumrows.gen_inputs t ~seed:42 ~m ~n in
  let result = Eval.eval_program t.Sumrows.prog ~sizes ~inputs in
  check_value "sumrows" (vector_value (Sumrows.reference x)) result;
  let chunked =
    Eval.eval_program ~mode:(Eval.Chunked 3) t.Sumrows.prog ~sizes ~inputs
  in
  check_value "sumrows chunked" (vector_value (Sumrows.reference x)) chunked

let test_gemm_reference () =
  let t = Gemm.make () in
  let m = 7 and n = 5 and p = 9 in
  let x, y = Gemm.raw_inputs ~seed:1 ~m ~n ~p in
  let result =
    Eval.eval_program t.Gemm.prog
      ~sizes:[ (t.Gemm.m, m); (t.Gemm.n, n); (t.Gemm.p, p) ]
      ~inputs:(Gemm.gen_inputs t ~seed:1 ~m ~n ~p)
  in
  check_value "gemm" (matrix_value (Gemm.reference x y)) result

let test_tpchq6_reference () =
  let t = Tpchq6.make () in
  let n = 400 in
  let li = Tpchq6.raw_inputs ~seed:7 ~n in
  let result =
    Eval.eval_program t.Tpchq6.prog
      ~sizes:[ (t.Tpchq6.n, n) ]
      ~inputs:(Tpchq6.gen_inputs t ~seed:7 ~n)
  in
  check_value "q6 revenue" (Value.F (Tpchq6.reference li)) result;
  (* some rows must actually match for the test to mean anything *)
  Alcotest.(check bool) "selectivity positive" true
    (Workloads.q6_selectivity li > 0.0)

let test_gda_reference () =
  let t = Gda.make () in
  let n = 20 and d = 4 in
  let x, y, mu = Gda.raw_inputs ~seed:3 ~n ~d in
  let sizes = [ (t.Gda.n, n); (t.Gda.d, d) ] in
  let inputs = Gda.gen_inputs t ~seed:3 ~n ~d in
  let result = Eval.eval_program t.Gda.prog ~sizes ~inputs in
  check_value "gda sigma" (matrix_value (Gda.reference ~x ~y ~mu)) result;
  let chunked = Eval.eval_program ~mode:(Eval.Chunked 7) t.Gda.prog ~sizes ~inputs in
  check_value "gda chunked" (matrix_value (Gda.reference ~x ~y ~mu)) chunked

let test_kmeans_reference () =
  let t = Kmeans.make () in
  let n = 30 and k = 4 and d = 3 in
  let points, centroids = Kmeans.raw_inputs ~seed:5 ~n ~k ~d in
  let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
  let inputs = Kmeans.gen_inputs t ~seed:5 ~n ~k ~d in
  let result = Eval.eval_program t.Kmeans.prog ~sizes ~inputs in
  check_value "kmeans new centroids"
    (matrix_value (Kmeans.reference ~points ~centroids))
    result;
  let chunked =
    Eval.eval_program ~mode:(Eval.Chunked 8) t.Kmeans.prog ~sizes ~inputs
  in
  check_value "kmeans chunked"
    (matrix_value (Kmeans.reference ~points ~centroids))
    chunked

let test_histogram_reference () =
  let t = Histogram.make () in
  let n = 100 in
  let x = Histogram.raw_inputs ~seed:11 ~n in
  let result =
    Eval.eval_program t.Histogram.prog
      ~sizes:[ (t.Histogram.n, n) ]
      ~inputs:(Histogram.gen_inputs t ~seed:11 ~n)
  in
  let expected =
    Value.Assoc
      (List.map
         (fun (k, c) -> (Value.I k, Value.I c))
         (Histogram.reference x))
  in
  check_value "histogram" expected result

(* -------------------- chunked/sequential agreement (property) ------- *)

let prop_mode_agreement (bench : Suite.bench) =
  QCheck.Test.make
    ~name:(bench.Suite.name ^ ": sequential = chunked")
    ~count:12
    QCheck.(pair (int_range 0 1000) (int_range 1 9))
    (fun (seed, chunk) ->
      let inputs = bench.Suite.gen ~sizes:bench.Suite.test_sizes ~seed in
      let seq =
        Eval.eval_program bench.Suite.prog ~sizes:bench.Suite.test_sizes ~inputs
      in
      let par =
        Eval.eval_program ~mode:(Eval.Chunked chunk) bench.Suite.prog
          ~sizes:bench.Suite.test_sizes ~inputs
      in
      value_eq seq par)

let () =
  let suite = Suite.all () in
  Alcotest.run "eval"
    [ ( "scalars",
        [ Alcotest.test_case "ops" `Quick test_scalar_ops ] );
      ( "patterns",
        [ Alcotest.test_case "map" `Quick test_map_eval;
          Alcotest.test_case "map2d" `Quick test_map2d_eval;
          Alcotest.test_case "fold" `Quick test_fold_eval;
          Alcotest.test_case "flatmap" `Quick test_flatmap_eval;
          Alcotest.test_case "groupbyfold" `Quick test_groupbyfold_eval;
          Alcotest.test_case "multifold rows" `Quick test_multifold_row_writes;
          Alcotest.test_case "slices" `Quick test_let_slices;
          Alcotest.test_case "copy" `Quick test_copy_eval ] );
      ( "benchmarks",
        [ Alcotest.test_case "outerprod" `Quick test_outerprod_reference;
          Alcotest.test_case "sumrows" `Quick test_sumrows_reference;
          Alcotest.test_case "gemm" `Quick test_gemm_reference;
          Alcotest.test_case "tpchq6" `Quick test_tpchq6_reference;
          Alcotest.test_case "gda" `Quick test_gda_reference;
          Alcotest.test_case "kmeans" `Quick test_kmeans_reference;
          Alcotest.test_case "histogram" `Quick test_histogram_reference ] );
      ( "mode agreement",
        List.map
          (fun bench -> QCheck_alcotest.to_alcotest (prop_mode_agreement bench))
          suite ) ]
