(* Source-level linter: every PPL2xx rule has a program that triggers it
   and a near-identical program that stays clean; the dependence core is
   property-tested against brute-force collision search on small
   concrete iteration boxes; the whole benchmark suite and the good
   corpus programs are lint-clean; the deliberately bad corpus programs
   trip the expected codes. *)

open Dsl

let codes ds = List.map (fun d -> d.Diagnostic.code) ds
let has code ds = List.mem code (codes ds)

let check_has name code ds =
  if not (has code ds) then
    Alcotest.failf "%s: expected %s, got [%s]" name code
      (String.concat "; " (codes ds))

let check_not name code ds =
  if has code ds then
    Alcotest.failf "%s: unexpected %s" name code

(* ------------------- PPL201/202: multiFold races ------------------- *)

let race_prog ~comb write =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var n ] in
  let body =
    multifold
      [ dfull (Ir.Var n); dfull (Ir.Var n) ]
      ~init:(zeros Ty.Float [ Ir.Var n +! Ir.Var n ])
      ?comb
      (fun idxs ->
        match idxs with
        | [ i1; j1 ] ->
            [ { range = [ Ir.Var n +! Ir.Var n ];
                region = point [ write i1 j1 ];
                upd = (fun acc -> acc +! read (in_var x) [ i1; j1 ]) } ]
        | _ -> assert false)
  in
  program ~name:"race" ~sizes:[ n ]
    ~max_sizes:[ (n, 1024) ]
    ~inputs:[ x ] body

let arr_comb n a b = map1 (dfull n) (fun k -> read a [ k ] +! read b [ k ])

let test_combless_race () =
  (* acc(i+j) without a combine: two iterations hit the same cell *)
  let ds = Ppl_lint.check_program (race_prog ~comb:None (fun a b1 -> a +! b1)) in
  check_has "combine-less non-injective" "PPL201" ds;
  Alcotest.(check bool) "is error" true (Diagnostic.has_errors ds);
  (* acc(i, j) without a combine writes every cell exactly once: clean *)
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var n ] in
  let body =
    multifold
      [ dfull (Ir.Var n); dfull (Ir.Var n) ]
      ~init:(zeros Ty.Float [ Ir.Var n; Ir.Var n ])
      (fun idxs ->
        match idxs with
        | [ i1; j1 ] ->
            [ { range = [ Ir.Var n; Ir.Var n ];
                region = point [ i1; j1 ];
                upd = (fun acc -> acc +! read (in_var x) [ i1; j1 ]) } ]
        | _ -> assert false)
  in
  let prog =
    program ~name:"scatter" ~sizes:[ n ] ~max_sizes:[ (n, 1024) ]
      ~inputs:[ x ] body
  in
  let ds' = Ppl_lint.check_program prog in
  check_not "combine-less injective" "PPL201" ds';
  check_not "combine-less injective" "PPL202" ds'

let test_parallel_race () =
  (* with a combine, acc(i+j) still races across the parallelized
     (innermost) dimension *)
  let comb = Some (fun a b -> arr_comb (i 2048) a b) in
  let ds = Ppl_lint.check_program (race_prog ~comb (fun a b1 -> a +! b1)) in
  check_has "parallelized overlap" "PPL201" ds

let test_reduction_axis_clean () =
  (* sumrows (Table 2): axis j reduces into acc(i) and the combine
     reconciles it — no diagnostic *)
  let t = Sumrows.make () in
  let ds = Ppl_lint.check_program t.Sumrows.prog in
  check_not "reduction with combine" "PPL201" ds;
  check_not "reduction with combine" "PPL202" ds

let test_serial_overlap_warns () =
  (* acc(i+j, k): i and j collide but the innermost axis k is injective,
     so the overlap only blocks the serial dimensions — a warning *)
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var n ] in
  let body =
    multifold
      [ dfull (Ir.Var n); dfull (Ir.Var n); dfull (Ir.Var n) ]
      ~init:(zeros Ty.Float [ Ir.Var n +! Ir.Var n; Ir.Var n ])
      ~comb:(fun a b ->
        map2d (dfull (Ir.Var n +! Ir.Var n)) (dfull (Ir.Var n)) (fun p q ->
            read a [ p; q ] +! read b [ p; q ]))
      (fun idxs ->
        match idxs with
        | [ i1; j1; k1 ] ->
            [ { range = [ Ir.Var n +! Ir.Var n; Ir.Var n ];
                region = point [ i1 +! j1; k1 ];
                upd = (fun acc -> acc +! read (in_var x) [ i1; k1 ]) } ]
        | _ -> assert false)
  in
  let prog =
    program ~name:"serial" ~sizes:[ n ] ~max_sizes:[ (n, 1024) ]
      ~inputs:[ x ] body
  in
  let ds = Ppl_lint.check_program prog in
  check_has "serial-dim overlap" "PPL202" ds;
  check_not "serial-dim overlap is not an error" "PPL201" ds;
  Alcotest.(check bool) "warning, not error" false (Diagnostic.has_errors ds)

let test_fold_ignores_acc () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let bad =
    fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun idx _acc -> read (in_var x) [ idx ])
  in
  let prog = program ~name:"over" ~sizes:[ n ] ~inputs:[ x ] bad in
  check_has "fold overwrites" "PPL202" (Ppl_lint.check_program prog);
  let good =
    fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun idx acc -> acc +! read (in_var x) [ idx ])
  in
  let prog' = program ~name:"sum" ~sizes:[ n ] ~inputs:[ x ] good in
  let ds' = Ppl_lint.check_program prog' in
  check_not "fold accumulates" "PPL202" ds';
  check_not "no carried dependence" "PPL220" ds'

(* ------------------- PPL203: degenerate keys ------------------- *)

let test_constant_key () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    groupbyfold (dfull (Ir.Var n)) ~init:(i 0)
      ~comb:(fun a b -> a +! b)
      (fun _row -> (i 3, fun acc -> acc +! i 1))
  in
  let prog = program ~name:"onebucket" ~sizes:[ n ] ~inputs:[ x ] body in
  check_has "constant key" "PPL203" (Ppl_lint.check_program prog);
  (* histogram's data-dependent key is the legitimate use *)
  let t = Histogram.make () in
  check_not "histogram key" "PPL203" (Ppl_lint.check_program t.Histogram.prog)

(* ------------- PPL210/211/212: access classification ------------- *)

let read_prog mk_idx =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n *! Ir.Var n ] in
  let y = input "y" Ty.int_ [ Ir.Var n ] in
  let body = map1 (dfull (Ir.Var n)) (fun idx -> read (in_var x) [ mk_idx n y idx ]) in
  program ~name:"cls" ~sizes:[ n ] ~inputs:[ x; y ] body

let test_access_classes () =
  let affine = Ppl_lint.check_program (read_prog (fun _ _ idx -> idx +! i 1)) in
  check_has "affine" "PPL210" affine;
  check_not "affine" "PPL211" affine;
  check_not "affine" "PPL212" affine;
  (* i + n*n: non-affine, but the non-affine part is loop-invariant *)
  let modinv =
    Ppl_lint.check_program
      (read_prog (fun n _ idx -> idx +! (Ir.Var n *! Ir.Var n)))
  in
  check_has "affine mod invariant" "PPL211" modinv;
  check_not "affine mod invariant" "PPL212" modinv;
  (* x(y(i)): a gather *)
  let dd =
    Ppl_lint.check_program (read_prog (fun _ y idx -> read (in_var y) [ idx ]))
  in
  check_has "data-dependent" "PPL212" dd

(* ------------------- PPL213: backend cross-check ------------------- *)

let test_crosscheck () =
  let b = Suite.find (Suite.extended ()) "spmv" in
  let r = Tiling.run ~tiles:b.Suite.tiles b.Suite.prog in
  (* the design actually lowered from the tiled program agrees *)
  let d_tiled = Experiments.design_of Experiments.Tiled b in
  Alcotest.(check (list string)) "agreement" []
    (codes (Ppl_lint.crosscheck ~cache_leftover:true r.Tiling.tiled d_tiled));
  (* the baseline design has no leftover caches: claiming it should
     have one is exactly the disagreement PPL213 reports *)
  let d_base = Experiments.design_of Experiments.Baseline b in
  let ds = Ppl_lint.crosscheck ~cache_leftover:true r.Tiling.tiled d_base in
  check_has "missing cache" "PPL213" ds;
  Alcotest.(check bool) "error severity" true (Diagnostic.has_errors ds)

let test_crosscheck_suite () =
  (* lint and backend must agree on every benchmark, all three configs *)
  List.iter
    (fun (b : Suite.bench) ->
      let r = Tiling.run ~tiles:b.Suite.tiles b.Suite.prog in
      List.iter
        (fun cfg ->
          let prog, cache_leftover =
            match cfg with
            | Experiments.Baseline -> (r.Tiling.fused, false)
            | Experiments.Tiled | Experiments.Tiled_meta ->
                (r.Tiling.tiled, true)
          in
          let d = Experiments.design_of cfg b in
          match Ppl_lint.crosscheck ~cache_leftover prog d with
          | [] -> ()
          | ds ->
              Alcotest.failf "%s/%s: %s" b.Suite.name
                (Experiments.config_name cfg)
                (String.concat "; " (codes ds)))
        [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ])
    (Suite.extended ())

(* ------------------- PPL220/221/222 ------------------- *)

let test_carried_dependence () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    fold1 (dfull (Ir.Var n))
      ~init:(zeros Ty.Float [ Ir.Var n ])
      ~comb:(fun a b -> map1 (dfull (Ir.Var n)) (fun k -> read a [ k ] +! read b [ k ]))
      (fun idx acc ->
        map1 (dfull (Ir.Var n)) (fun k ->
            read acc [ k ] +! (read acc [ idx ] *! read (in_var x) [ idx ])))
  in
  let prog = program ~name:"carried" ~sizes:[ n ] ~inputs:[ x ] body in
  check_has "acc read at fold index" "PPL220" (Ppl_lint.check_program prog)

let test_unused_index () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body = map2d (dfull (Ir.Var n)) (dfull (Ir.Var n)) (fun a _ -> read (in_var x) [ a ]) in
  let prog = program ~name:"unused" ~sizes:[ n ] ~inputs:[ x ] body in
  check_has "unused map index" "PPL221" (Ppl_lint.check_program prog);
  let body' = map2d (dfull (Ir.Var n)) (dfull (Ir.Var n)) (fun a b1 -> read (in_var x) [ a ] *! to_float b1) in
  let prog' = program ~name:"used" ~sizes:[ n ] ~inputs:[ x ] body' in
  check_not "both used" "PPL221" (Ppl_lint.check_program prog')

let test_dead_let () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    map1 (dfull (Ir.Var n)) (fun idx ->
        let_ (read (in_var x) [ idx ]) (fun _dead -> f 1.0))
  in
  let prog = program ~name:"deadlet" ~sizes:[ n ] ~inputs:[ x ] body in
  check_has "dead let" "PPL221" (Ppl_lint.check_program prog)

let test_guards () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let prog body = program ~name:"g" ~sizes:[ n ] ~inputs:[ x ] body in
  let div0 =
    Ppl_lint.check_program
      (prog (map1 (dfull (Ir.Var n)) (fun idx -> read (in_var x) [ idx ] /! f 0.0)))
  in
  check_has "division by zero" "PPL222" div0;
  Alcotest.(check bool) "div0 is error" true (Diagnostic.has_errors div0);
  let sqrtneg =
    Ppl_lint.check_program
      (prog (map1 (dfull (Ir.Var n)) (fun _ -> sqrt_ (f (-1.0)))))
  in
  check_has "sqrt of negative" "PPL222" sqrtneg;
  (* n+1 is provably >= 1: silent *)
  let proven =
    Ppl_lint.check_program
      (prog
         (map1 (dfull (Ir.Var n)) (fun idx ->
              read (in_var x) [ idx ] /! to_float (Ir.Var n +! i 1))))
  in
  check_not "provably nonzero denominator" "PPL222" proven;
  (* data-dependent denominator: only an info, never an error *)
  let dd =
    Ppl_lint.check_program
      (prog
         (map1 (dfull (Ir.Var n)) (fun idx ->
              f 1.0 /! read (in_var x) [ idx ])))
  in
  check_has "data-dependent denominator noted" "PPL222" dd;
  Alcotest.(check bool) "but not an error" false (Diagnostic.has_errors dd)

(* --------------- Depend: property-test the dependence core --------------- *)

let gen_case =
  QCheck.Gen.(
    int_range 1 3 >>= fun nax ->
    int_range 1 2 >>= fun nmaps ->
    list_repeat nax (int_range 1 4) >>= fun extents ->
    list_repeat nmaps (list_repeat nax (int_range (-3) 3)) >>= fun coeffs ->
    list_repeat nmaps (int_range (-2) 2) >>= fun consts ->
    return (extents, coeffs, consts))

let prop_injectivity_vs_bruteforce =
  QCheck.Test.make ~name:"depend: injectivity agrees with brute force"
    ~count:500
    (QCheck.make gen_case)
    (fun (extents, coeffs, consts) ->
      let syms = List.map (fun _ -> Sym.fresh "a") extents in
      let axes =
        List.map2 (fun s e -> { Depend.asym = s; extent = Some e }) syms extents
      in
      let maps =
        List.map2
          (fun cs c0 ->
            List.fold_left2
              (fun acc s c -> Affine.add acc (Affine.scale c (Affine.var s)))
              (Affine.const c0) syms cs)
          coeffs consts
      in
      let brute =
        Depend.collision ~axes:(List.combine syms extents) maps
      in
      match Depend.injectivity ~axes maps with
      | Depend.Injective -> brute = None
      | Depend.Overlapping _ -> brute <> None
      | Depend.Unknown _ -> true)

let test_injectivity_units () =
  let a = Sym.fresh "a" and b1 = Sym.fresh "b" in
  let ax e = List.map2 (fun s x -> { Depend.asym = s; extent = Some x }) [ a; b1 ] e in
  let m cs c0 =
    List.fold_left2
      (fun acc s c -> Affine.add acc (Affine.scale c (Affine.var s)))
      (Affine.const c0) [ a; b1 ] cs
  in
  (* (a, b) -> 4a + b with b < 4: mixed radix, injective *)
  Alcotest.(check bool) "mixed radix" true
    (Depend.injectivity ~axes:(ax [ 8; 4 ]) [ m [ 4; 1 ] 0 ] = Depend.Injective);
  (* (a, b) -> a + b: collides *)
  (match Depend.injectivity ~axes:(ax [ 4; 4 ]) [ m [ 1; 1 ] 0 ] with
  | Depend.Overlapping _ -> ()
  | _ -> Alcotest.fail "a+b should overlap");
  (* b never addresses the output *)
  (match Depend.injectivity ~axes:(ax [ 4; 4 ]) [ m [ 1; 0 ] 0 ] with
  | Depend.Overlapping { dims; _ } ->
      Alcotest.(check int) "missing axis" 1 (List.length dims)
  | _ -> Alcotest.fail "missing axis should overlap");
  (* 3a + b with b < 4 > 3: strides genuinely collide *)
  (match Depend.injectivity ~axes:(ax [ 4; 4 ]) [ m [ 3; 1 ] 0 ] with
  | Depend.Overlapping _ -> ()
  | _ -> Alcotest.fail "3a+b with b<4 should overlap")

(* --------------- Diagnostic code ordering --------------- *)

let test_compare_codes () =
  let lt a b1 =
    Alcotest.(check bool)
      (Printf.sprintf "%s < %s" a b1)
      true
      (Diagnostic.compare_codes a b1 < 0)
  in
  lt "HW9" "HW10";
  lt "HW101" "HW102";
  lt "HW142" "PPL201";
  lt "PPL201" "PPL210";
  lt "PPL222" "PPL230";
  Alcotest.(check int) "equal codes" 0 (Diagnostic.compare_codes "PPL201" "PPL201")

(* --------------- whole-suite and corpus cleanliness --------------- *)

let test_suite_error_clean () =
  List.iter
    (fun (b : Suite.bench) ->
      match Diagnostic.errors (Ppl_lint.check_all b.Suite.prog) with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s: %s" b.Suite.name
            (String.concat "; "
               (List.map (Format.asprintf "%a" Diagnostic.pp) errs)))
    (Suite.extended ())

let corpus_dir () =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "average.ppl"))
    [ "../corpus"; "corpus"; "../../corpus" ]

let parse_corpus dir file =
  let ic = open_in (Filename.concat dir file) in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Parser.program_of_string text

let test_corpus_good_clean () =
  match corpus_dir () with
  | None -> Alcotest.fail "corpus directory not found (dune deps missing?)"
  | Some dir ->
      List.iter
        (fun file ->
          let prog = parse_corpus dir file in
          ignore (Validate.check_program prog);
          let noisy =
            List.filter
              (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
              (Ppl_lint.check_all prog)
          in
          if noisy <> [] then
            Alcotest.failf "%s: %s" file (String.concat "; " (codes noisy)))
        [ "average.ppl"; "saxpy.ppl"; "possum.ppl"; "rowdot.ppl" ];
      (* possum's FlatMap-sized fold is the PPL220 showcase (info) *)
      check_has "possum streams" "PPL220"
        (Ppl_lint.check_program (parse_corpus (Option.get (corpus_dir ())) "possum.ppl"))

let test_corpus_bad () =
  match corpus_dir () with
  | None -> Alcotest.fail "corpus directory not found (dune deps missing?)"
  | Some dir ->
      let race = Ppl_lint.check_all (parse_corpus dir "bad_race.ppl") in
      check_has "bad_race" "PPL201" race;
      Alcotest.(check bool) "bad_race errors" true (Diagnostic.has_errors race);
      let na = Ppl_lint.check_all (parse_corpus dir "bad_nonaffine.ppl") in
      check_has "bad_nonaffine gather" "PPL212" na;
      check_has "bad_nonaffine bounds" "PPL230" na

let () =
  Alcotest.run "ppl_lint"
    [ ( "races",
        [ Alcotest.test_case "combine-less race" `Quick test_combless_race;
          Alcotest.test_case "parallelized overlap" `Quick test_parallel_race;
          Alcotest.test_case "reduction axis clean" `Quick
            test_reduction_axis_clean;
          Alcotest.test_case "serial overlap warns" `Quick
            test_serial_overlap_warns;
          Alcotest.test_case "fold ignores acc" `Quick test_fold_ignores_acc;
          Alcotest.test_case "constant key" `Quick test_constant_key ] );
      ( "access",
        [ Alcotest.test_case "classification" `Quick test_access_classes;
          Alcotest.test_case "crosscheck disagreement" `Quick test_crosscheck;
          Alcotest.test_case "crosscheck suite" `Quick test_crosscheck_suite ] );
      ( "mining",
        [ Alcotest.test_case "carried dependence" `Quick
            test_carried_dependence;
          Alcotest.test_case "unused index" `Quick test_unused_index;
          Alcotest.test_case "dead let" `Quick test_dead_let;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "depend",
        [ QCheck_alcotest.to_alcotest prop_injectivity_vs_bruteforce;
          Alcotest.test_case "injectivity units" `Quick
            test_injectivity_units ] );
      ( "codes",
        [ Alcotest.test_case "numeric-aware ordering" `Quick
            test_compare_codes ] );
      ( "corpus",
        [ Alcotest.test_case "suite error-clean" `Quick test_suite_error_clean;
          Alcotest.test_case "good corpus clean" `Quick test_corpus_good_clean;
          Alcotest.test_case "bad corpus trips" `Quick test_corpus_bad ] ) ]
