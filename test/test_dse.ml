(* Automated tile-size selection (the paper's future-work DSE loop). *)

let test_best_is_fastest_feasible () =
  let bench = Suite.find (Suite.all ()) "gemm" in
  let r = Dse.explore_bench bench in
  match r.Dse.best with
  | None -> Alcotest.fail "no feasible point"
  | Some best ->
      Alcotest.(check bool) "best is feasible" true best.Dse.feasible;
      List.iter
        (fun p ->
          if p.Dse.feasible then
            Alcotest.(check bool) "best is fastest feasible" true
              (best.Dse.cycles <= p.Dse.cycles +. 1e-6))
        r.Dse.points

let test_points_sorted () =
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let r = Dse.explore_bench bench in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Dse.cycles <= b.Dse.cycles && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cycles" true (sorted r.Dse.points);
  Alcotest.(check bool) "several points" true (List.length r.Dse.points >= 9)

let test_budget_excludes () =
  (* an absurdly small budget leaves no feasible point *)
  let bench = Suite.find (Suite.all ()) "gemm" in
  let r = Dse.explore_bench ~bram_budget:1.0 bench in
  Alcotest.(check bool) "nothing feasible" true (r.Dse.best = None);
  List.iter
    (fun p -> Alcotest.(check bool) "marked infeasible" false p.Dse.feasible)
    r.Dse.points

let test_budget_tradeoff () =
  (* a tight (but achievable) budget can only make the selected design
     slower or equal *)
  let bench = Suite.find (Suite.all ()) "gemm" in
  let loose = Dse.explore_bench ~bram_budget:4000.0 bench in
  let tight = Dse.explore_bench ~bram_budget:700.0 bench in
  match (loose.Dse.best, tight.Dse.best) with
  | Some l, Some t ->
      Alcotest.(check bool) "tight budget no faster" true
        (t.Dse.cycles >= l.Dse.cycles -. 1e-6);
      Alcotest.(check bool) "tight budget respected" true
        (t.Dse.area.Area_model.bram <= 700.0)
  | _ -> Alcotest.fail "expected feasible points at both budgets"

let test_explicit_candidates () =
  let t = Gemm.make () in
  let r =
    Dse.explore ~prog:t.Gemm.prog
      ~candidates:[ (t.Gemm.m, [ 32; 64 ]); (t.Gemm.n, [ 32 ]); (t.Gemm.p, [ 16; 32 ]) ]
      ~sizes:[ (t.Gemm.m, 512); (t.Gemm.n, 512); (t.Gemm.p, 512) ]
      ()
  in
  Alcotest.(check int) "cartesian product size" 4 (List.length r.Dse.points)

let test_joint_par_exploration () =
  let bench = Suite.find (Suite.all ()) "gda" in
  let r = Dse.explore_bench ~pars:[ 4; 16; 64 ] bench in
  (* three par points per tile assignment *)
  let tiles_assignments =
    List.sort_uniq compare (List.map (fun p -> p.Dse.tiles) r.Dse.points)
  in
  Alcotest.(check int) "3 pars per assignment"
    (3 * List.length tiles_assignments)
    (List.length r.Dse.points);
  (* on compute-bound gda, more parallelism is never slower at the same
     tiles (the model divides iteration count by par) *)
  List.iter
    (fun tiles ->
      let at par =
        (List.find (fun p -> p.Dse.tiles = tiles && p.Dse.par = par) r.Dse.points)
          .Dse.cycles
      in
      Alcotest.(check bool) "par=64 <= par=4" true (at 64 <= at 4 +. 1e-6))
    tiles_assignments;
  (* the selected point is still the fastest feasible *)
  match r.Dse.best with
  | None -> Alcotest.fail "no feasible point"
  | Some best ->
      List.iter
        (fun p ->
          if p.Dse.feasible then
            Alcotest.(check bool) "best fastest" true
              (best.Dse.cycles <= p.Dse.cycles +. 1e-6))
        r.Dse.points

(* ---------------- parallel sweeps ---------------- *)

let test_parallel_matches_sequential () =
  (* parallel exploration must be bit-identical to sequential: same
     points in the same order (structural equality compares the floats
     exactly, no tolerance) and the same selected best *)
  List.iter
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      let seq = Dse.explore_bench ~domains:1 ~pars:[ 4; 16 ] bench in
      let par = Dse.explore_bench ~domains:3 ~pars:[ 4; 16 ] bench in
      Alcotest.(check int)
        (name ^ ": same point count")
        (List.length seq.Dse.points)
        (List.length par.Dse.points);
      Alcotest.(check bool) (name ^ ": bit-identical points") true
        (seq.Dse.points = par.Dse.points);
      Alcotest.(check bool) (name ^ ": same best") true
        (seq.Dse.best = par.Dse.best);
      Alcotest.(check bool) (name ^ ": same skips") true
        (seq.Dse.skipped = par.Dse.skipped))
    [ "gemm"; "kmeans" ]

(* ---------------- failure handling ---------------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_skipped_points_reported () =
  (* a tile size the tiler rejects must not silently vanish: the sweep
     records the assignment and the reason, and still evaluates the rest *)
  let t = Gemm.make () in
  let r =
    Dse.explore ~prog:t.Gemm.prog
      ~candidates:
        [ (t.Gemm.m, [ 0; 32 ]); (t.Gemm.n, [ 32 ]); (t.Gemm.p, [ 16; 32 ]) ]
      ~sizes:[ (t.Gemm.m, 512); (t.Gemm.n, 512); (t.Gemm.p, 512) ]
      ()
  in
  Alcotest.(check int) "two assignments skipped" 2 (List.length r.Dse.skipped);
  Alcotest.(check int) "two assignments evaluated" 2 (List.length r.Dse.points);
  List.iter
    (fun s ->
      Alcotest.(check bool) "skip names the bad tile" true
        (List.mem_assoc t.Gemm.m s.Dse.sk_tiles);
      Alcotest.(check bool) "reason mentions the tile size" true
        (contains s.Dse.sk_reason "tile size"))
    r.Dse.skipped

let test_genuine_bugs_propagate () =
  (* only tiling rejections are recorded as skips; an error downstream of
     the tiler (here: simulating with a size parameter missing) is a bug
     in the caller's setup and must escape the sweep *)
  let t = Gemm.make () in
  match
    Dse.explore ~prog:t.Gemm.prog
      ~candidates:[ (t.Gemm.m, [ 32 ]); (t.Gemm.n, [ 32 ]); (t.Gemm.p, [ 32 ]) ]
      ~sizes:[ (t.Gemm.m, 512) ]
      ()
  with
  | _ -> Alcotest.fail "expected the missing-size error to propagate"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names the missing size" true
        (contains msg "missing size")

(* ---------------- default-tile regressions ---------------- *)

let tiny_bench () =
  (* a benchmark whose default tile (1) is smaller than every candidate
     the old `b >= 8` filter kept — the sweep used to come back empty *)
  let d = Dsl.size "d" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var d ] in
  let prog =
    Dsl.program ~name:"tiny" ~sizes:[ d ] ~inputs:[ x ]
      (Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun i ->
           Dsl.( *! ) (Dsl.f 2.0) (Dsl.read (Dsl.in_var x) [ i ])))
  in
  { Suite.name = "tiny";
    description = "unit-tile map";
    collection_ops = "Map";
    prog;
    tiles = [ (d, 1) ];
    sim_sizes = [ (d, 4096) ];
    test_sizes = [ (d, 16) ];
    gen = (fun ~sizes:_ ~seed:_ -> []) }

let test_small_default_kept () =
  let r = Dse.explore_bench (tiny_bench ()) in
  Alcotest.(check bool) "sweep not empty" true (r.Dse.points <> []);
  Alcotest.(check bool) "default tile evaluated" true
    (List.exists
       (fun p -> List.exists (fun (_, b) -> b = 1) p.Dse.tiles)
       r.Dse.points);
  Alcotest.(check bool) "a best exists" true (r.Dse.best <> None)

let test_nan_cycles_never_selected () =
  (* a machine description gone wrong (NaN bandwidth) makes every cycle
     count NaN; NaN must read as infeasible, never as the best point *)
  let machine =
    { Machine.default with Machine.stream_words_per_cycle = Float.nan }
  in
  let t = Gemm.make () in
  let r =
    Dse.explore ~machine ~prog:t.Gemm.prog
      ~candidates:
        [ (t.Gemm.m, [ 32; 64 ]); (t.Gemm.n, [ 32 ]); (t.Gemm.p, [ 32 ]) ]
      ~sizes:[ (t.Gemm.m, 512); (t.Gemm.n, 512); (t.Gemm.p, 512) ]
      ()
  in
  Alcotest.(check bool) "points evaluated" true (r.Dse.points <> []);
  Alcotest.(check bool) "no best under NaN cycles" true (r.Dse.best = None);
  List.iter
    (fun p ->
      Alcotest.(check bool) "NaN point infeasible" false p.Dse.feasible)
    r.Dse.points

let () =
  Alcotest.run "dse"
    [ ( "exploration",
        [ Alcotest.test_case "best is fastest feasible" `Quick
            test_best_is_fastest_feasible;
          Alcotest.test_case "points sorted" `Quick test_points_sorted;
          Alcotest.test_case "tiny budget excludes all" `Quick
            test_budget_excludes;
          Alcotest.test_case "budget tradeoff" `Quick test_budget_tradeoff;
          Alcotest.test_case "explicit candidates" `Quick
            test_explicit_candidates;
          Alcotest.test_case "joint par exploration" `Quick
            test_joint_par_exploration ] );
      ( "parallel",
        [ Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential ] );
      ( "failure handling",
        [ Alcotest.test_case "skipped points reported" `Quick
            test_skipped_points_reported;
          Alcotest.test_case "genuine bugs propagate" `Quick
            test_genuine_bugs_propagate ] );
      ( "regressions",
        [ Alcotest.test_case "small default kept" `Quick
            test_small_default_kept;
          Alcotest.test_case "NaN cycles never selected" `Quick
            test_nan_cycles_never_selected ] ) ]
