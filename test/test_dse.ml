(* Automated tile-size selection (the paper's future-work DSE loop). *)

let test_best_is_fastest_feasible () =
  let bench = Suite.find (Suite.all ()) "gemm" in
  let r = Dse.explore_bench bench in
  match r.Dse.best with
  | None -> Alcotest.fail "no feasible point"
  | Some best ->
      Alcotest.(check bool) "best is feasible" true best.Dse.feasible;
      List.iter
        (fun p ->
          if p.Dse.feasible then
            Alcotest.(check bool) "best is fastest feasible" true
              (best.Dse.cycles <= p.Dse.cycles +. 1e-6))
        r.Dse.points

let test_points_sorted () =
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let r = Dse.explore_bench bench in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Dse.cycles <= b.Dse.cycles && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cycles" true (sorted r.Dse.points);
  Alcotest.(check bool) "several points" true (List.length r.Dse.points >= 9)

let test_budget_excludes () =
  (* an absurdly small budget leaves no feasible point *)
  let bench = Suite.find (Suite.all ()) "gemm" in
  let r = Dse.explore_bench ~bram_budget:1.0 bench in
  Alcotest.(check bool) "nothing feasible" true (r.Dse.best = None);
  List.iter
    (fun p -> Alcotest.(check bool) "marked infeasible" false p.Dse.feasible)
    r.Dse.points

let test_budget_tradeoff () =
  (* a tight (but achievable) budget can only make the selected design
     slower or equal *)
  let bench = Suite.find (Suite.all ()) "gemm" in
  let loose = Dse.explore_bench ~bram_budget:4000.0 bench in
  let tight = Dse.explore_bench ~bram_budget:700.0 bench in
  match (loose.Dse.best, tight.Dse.best) with
  | Some l, Some t ->
      Alcotest.(check bool) "tight budget no faster" true
        (t.Dse.cycles >= l.Dse.cycles -. 1e-6);
      Alcotest.(check bool) "tight budget respected" true
        (t.Dse.area.Area_model.bram <= 700.0)
  | _ -> Alcotest.fail "expected feasible points at both budgets"

let test_explicit_candidates () =
  let t = Gemm.make () in
  let r =
    Dse.explore ~prog:t.Gemm.prog
      ~candidates:[ (t.Gemm.m, [ 32; 64 ]); (t.Gemm.n, [ 32 ]); (t.Gemm.p, [ 16; 32 ]) ]
      ~sizes:[ (t.Gemm.m, 512); (t.Gemm.n, 512); (t.Gemm.p, 512) ]
      ()
  in
  Alcotest.(check int) "cartesian product size" 4 (List.length r.Dse.points)

let test_joint_par_exploration () =
  let bench = Suite.find (Suite.all ()) "gda" in
  let r = Dse.explore_bench ~pars:[ 4; 16; 64 ] bench in
  (* three par points per tile assignment *)
  let tiles_assignments =
    List.sort_uniq compare (List.map (fun p -> p.Dse.tiles) r.Dse.points)
  in
  Alcotest.(check int) "3 pars per assignment"
    (3 * List.length tiles_assignments)
    (List.length r.Dse.points);
  (* on compute-bound gda, more parallelism is never slower at the same
     tiles (the model divides iteration count by par) *)
  List.iter
    (fun tiles ->
      let at par =
        (List.find (fun p -> p.Dse.tiles = tiles && p.Dse.par = par) r.Dse.points)
          .Dse.cycles
      in
      Alcotest.(check bool) "par=64 <= par=4" true (at 64 <= at 4 +. 1e-6))
    tiles_assignments;
  (* the selected point is still the fastest feasible *)
  match r.Dse.best with
  | None -> Alcotest.fail "no feasible point"
  | Some best ->
      List.iter
        (fun p ->
          if p.Dse.feasible then
            Alcotest.(check bool) "best fastest" true
              (best.Dse.cycles <= p.Dse.cycles +. 1e-6))
        r.Dse.points

let () =
  Alcotest.run "dse"
    [ ( "exploration",
        [ Alcotest.test_case "best is fastest feasible" `Quick
            test_best_is_fastest_feasible;
          Alcotest.test_case "points sorted" `Quick test_points_sorted;
          Alcotest.test_case "tiny budget excludes all" `Quick
            test_budget_excludes;
          Alcotest.test_case "budget tradeoff" `Quick test_budget_tradeoff;
          Alcotest.test_case "explicit candidates" `Quick
            test_explicit_candidates;
          Alcotest.test_case "joint par exploration" `Quick
            test_joint_par_exploration ] ) ]
