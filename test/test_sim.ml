(* Simulator and area model: controller-level unit tests on hand-built
   designs, simulator invariants across the suite, and the Fig. 5c /
   Fig. 7 shape assertions. *)

let check_f msg expected actual =
  if Float.abs (expected -. actual) > 1e-6 *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %f, got %f" msg expected actual

let pipe ?(trips = [ Hw.Tconst 1000.0 ]) ?(par = 1) ?(depth = 10) ?(dram = [])
    name =
  Hw.Pipe
    { name;
      trips;
      template = Hw.Vector;
      par;
      depth;
      ii = 1;
      ops = { Hw.flops = 1; int_ops = 0; cmp_ops = 0; mem_reads = 1; mem_writes = 1 };
      body = None;
      dram;
      uses = [];
      defines = [];
      prov = Prov.none }

let design ?(mems = []) top =
  { Hw.design_name = "t"; mems; top; par_factor = 1 }

let cycles ?machine d = (Simulate.run ?machine d ~sizes:[]).Simulate.cycles

(* ---------------- controller formulas ---------------- *)

let test_pipe_cycles () =
  (* depth + ceil(iters/par) *)
  check_f "pipe" 1010.0 (cycles (design (pipe "p")));
  check_f "pipe par" 135.0
    (cycles (design (pipe ~par:8 "p")))

let test_seq_sums () =
  let d = design (Hw.Seq { name = "s"; children = [ pipe "a"; pipe "b" ]; prov = Prov.none }) in
  check_f "seq" 2020.0 (cycles d)

let test_par_max () =
  let d =
    design
      (Hw.Par
         { name = "p";
           children = [ pipe "a"; pipe ~trips:[ Hw.Tconst 5000.0 ] "b" ]; prov = Prov.none })
  in
  check_f "par" 5010.0 (cycles d)

let test_loop_multiplies () =
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 10.0 ]; meta = false;
           stages = [ pipe "a"; pipe "b" ]; prov = Prov.none })
  in
  check_f "sequential loop" 20200.0 (cycles d)

let test_metapipe_overlap () =
  (* two balanced stages: fill (sum) + (trips-1) * slowest *)
  let d meta =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 10.0 ]; meta;
           stages = [ pipe "a"; pipe "b" ]; prov = Prov.none })
  in
  let seq = cycles (d false) and meta = cycles (d true) in
  check_f "metapipe" (2020.0 +. (9.0 *. 1010.0)) meta;
  Alcotest.(check bool) "metapipe faster than sequential" true (meta < seq)

let test_metapipe_never_slower () =
  List.iter
    (fun bench ->
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      let c opts =
        (Simulate.run (Lower.program opts r.Tiling.tiled)
           ~sizes:bench.Suite.sim_sizes)
          .Simulate.cycles
      in
      let seq = c { Lower.default_opts with Lower.meta = false } in
      let meta = c Lower.default_opts in
      Alcotest.(check bool)
        (bench.Suite.name ^ ": meta <= seq")
        true (meta <= seq +. 1e-6))
    (Suite.all ())

let test_tile_load_cost () =
  let m = Machine.default in
  let d =
    design
      (Hw.Tile_load
         { name = "tl"; mem = "b"; array = "x"; words = Hw.Tconst 800.0;
           path = []; reuse = 1; prov = Prov.none })
  in
  check_f "tile load"
    (m.Machine.tile_latency +. (800.0 /. m.Machine.stream_words_per_cycle))
    (cycles d)

let test_reuse_reduces_traffic () =
  let load reuse =
    design
      (Hw.Tile_load
         { name = "tl"; mem = "b"; array = "x"; words = Hw.Tconst 800.0;
           path = []; reuse; prov = Prov.none })
  in
  let r1 = Simulate.run (load 1) ~sizes:[] in
  let r2 = Simulate.run (load 2) ~sizes:[] in
  check_f "reuse halves words"
    (Simulate.read_words r1 "x" /. 2.0)
    (Simulate.read_words r2 "x")

(* ---------------- direct access traffic rules ---------------- *)

let da ?(contiguous = true) ?(affine = true) ?(row = 16.0) path =
  { Hw.da_array = "x";
    da_path = path;
    da_contiguous = contiguous;
    da_affine = affine;
    da_row_words = Hw.Tconst row;
    da_kind = `Read }

let test_dependent_loops_multiply () =
  let d =
    design
      (pipe
         ~dram:[ da [ (Hw.Tconst 100.0, true); (Hw.Tconst 50.0, true) ] ]
         "p")
  in
  let r = Simulate.run d ~sizes:[] in
  check_f "words" 5000.0 (Simulate.read_words r "x")

let test_burst_locality_window () =
  (* an address-independent loop re-reads only when the footprint under it
     exceeds the stream cache (16 KiB = 4096 words) *)
  let mk inner =
    design
      (pipe
         ~dram:[ da [ (Hw.Tconst 10.0, false); (Hw.Tconst inner, true) ] ]
         "p")
  in
  let small = Simulate.run (mk 1000.0) ~sizes:[] in
  check_f "small footprint reused" 1000.0 (Simulate.read_words small "x");
  let large = Simulate.run (mk 10000.0) ~sizes:[] in
  check_f "large footprint re-read" 100000.0 (Simulate.read_words large "x")

let test_noncontiguous_costs_more () =
  let mk contiguous =
    design (pipe ~dram:[ da ~contiguous [ (Hw.Tconst 100000.0, true) ] ] "p")
  in
  Alcotest.(check bool) "strided slower" true
    (cycles (mk false) > cycles (mk true))

let test_nonaffine_costs_most () =
  let mk affine =
    design
      (pipe ~dram:[ da ~affine ~contiguous:false [ (Hw.Tconst 100000.0, true) ] ]
         "p")
  in
  Alcotest.(check bool) "data-dependent slower" true
    (cycles (mk false) > cycles (mk true))

(* ---------------- suite invariants ---------------- *)

let test_tiling_never_moves_more () =
  (* Total DRAM traffic (reads + writes) with tiling stays within a few
     percent of the baseline for every benchmark.  (Strictly fewer *reads*
     does not always hold: tiled outerprod re-reads its tiny input vectors
     once per tile while the baseline keeps them in the burst window — the
     paper notes exactly this memory-for-nothing tradeoff for outerprod.) *)
  List.iter
    (fun bench ->
      let base = Experiments.design_of Experiments.Baseline bench in
      let tiled = Experiments.design_of Experiments.Tiled bench in
      let sizes = bench.Suite.sim_sizes in
      let rb = Simulate.run base ~sizes and rt = Simulate.run tiled ~sizes in
      let total r = Simulate.total_read r +. Simulate.total_written r in
      (* 25% slack: tiled designs add read-modify-write traffic on
         DRAM-resident accumulators (sumrows) and re-load small inputs per
         tile (outerprod) — second-order costs the paper also observes *)
      Alcotest.(check bool)
        (bench.Suite.name ^ ": tiled traffic <= ~baseline traffic")
        true
        (total rt <= (1.25 *. total rb) +. 1.0))
    (Suite.all ())

(* ---------------- Fig. 5c ---------------- *)

let test_fig5c_formulas () =
  let n = 1024 and k = 256 and d = 32 and b0 = 64 and b1 = 16 in
  let rows = Experiments.fig5c ~n ~k ~d ~b0 ~b1 () in
  let tol = 0.10 in
  List.iter
    (fun (r : Experiments.fig5c_row) ->
      if r.Experiments.expected_words > 0.0 then begin
        let rel =
          Float.abs (r.Experiments.measured_words -. r.Experiments.expected_words)
          /. r.Experiments.expected_words
        in
        if rel > tol then
          Alcotest.failf "%s/%s: measured %.0f vs paper %.0f" r.Experiments.structure
            r.Experiments.stage r.Experiments.measured_words
            r.Experiments.expected_words
      end;
      (* on-chip storage matches the paper's formulas exactly for the
         tiled stages *)
      if r.Experiments.stage <> "fused" && r.Experiments.expected_onchip > 2.0
      then
        check_f
          (r.Experiments.structure ^ "/" ^ r.Experiments.stage ^ " on-chip")
          r.Experiments.expected_onchip r.Experiments.onchip_words)
    rows

(* ---------------- Fig. 7 shape ---------------- *)

let test_fig7_shape () =
  let rows = Experiments.fig7 (Suite.all ()) in
  let get name =
    List.find (fun r -> r.Experiments.bench = name) rows
  in
  let tiled r = r.Experiments.speedup Experiments.Tiled in
  let meta r = r.Experiments.speedup Experiments.Tiled_meta in
  (* memory-bound streaming benchmarks gain little from tiling *)
  Alcotest.(check bool) "outerprod ~1" true
    (tiled (get "outerprod") < 2.0);
  Alcotest.(check bool) "tpchq6 small gain" true
    (tiled (get "tpchq6") > 1.0 && tiled (get "tpchq6") < 3.0);
  (* locality benchmarks gain substantially *)
  Alcotest.(check bool) "sumrows gains" true (tiled (get "sumrows") > 3.0);
  Alcotest.(check bool) "gemm gains" true
    (tiled (get "gemm") > 2.5 && tiled (get "gemm") < 8.0);
  (* on-chip-resident benchmarks gain dramatically *)
  Alcotest.(check bool) "gda dramatic" true (tiled (get "gda") > 10.0);
  Alcotest.(check bool) "kmeans dramatic" true (tiled (get "kmeans") > 10.0);
  (* ordering matches the paper: kmeans/gda > sumrows/gemm > q6/outerprod *)
  Alcotest.(check bool) "ordering" true
    (tiled (get "kmeans") > tiled (get "gemm")
    && tiled (get "gda") > tiled (get "sumrows")
    && tiled (get "gemm") > tiled (get "tpchq6")
    && tiled (get "sumrows") > tiled (get "outerprod"));
  (* metapipelining never hurts *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.bench ^ ": meta >= tiled")
        true
        (meta r >= tiled r -. 0.15))
    rows

let test_fig7_area_band () =
  let rows = Experiments.fig7 (Suite.all ()) in
  List.iter
    (fun r ->
      let a = r.Experiments.area_ratio Experiments.Tiled_meta in
      Alcotest.(check bool)
        (r.Experiments.bench ^ " logic ratio in band")
        true
        (a.Area_model.logic > 0.7 && a.Area_model.logic < 1.6);
      Alcotest.(check bool)
        (r.Experiments.bench ^ " mem ratio in band")
        true
        (a.Area_model.bram > 0.6 && a.Area_model.bram < 2.0))
    rows

(* ---------------- sensitivity ---------------- *)

let test_sensitivity_ordering_stable () =
  (* the qualitative Fig. 7 claim must survive machine perturbations:
     on-chip-resident benchmarks dominate locality benchmarks, which
     dominate the streaming ones, under every variant *)
  let rows = Experiments.sensitivity (Suite.all ()) in
  List.iter
    (fun r ->
      let s name = List.assoc name r.Experiments.speedups in
      Alcotest.(check bool)
        (r.Experiments.variant ^ ": kmeans > tpchq6")
        true
        (s "kmeans" > s "tpchq6");
      Alcotest.(check bool)
        (r.Experiments.variant ^ ": gda > outerprod")
        true
        (s "gda" > s "outerprod");
      Alcotest.(check bool)
        (r.Experiments.variant ^ ": all >= ~1")
        true
        (List.for_all (fun (_, v) -> v > 0.8) r.Experiments.speedups))
    rows

(* ---------------- breakdown ---------------- *)

let test_breakdown () =
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let rows = Simulate.breakdown d ~sizes:bench.Suite.sim_sizes in
  (* the root row carries the whole design's cycles *)
  (match rows with
  | root :: _ ->
      let total = (Simulate.run d ~sizes:bench.Suite.sim_sizes).Simulate.cycles in
      check_f "root = total" total root.Simulate.br_cycles;
      Alcotest.(check int) "root depth" 0 root.Simulate.br_depth
  | [] -> Alcotest.fail "empty breakdown");
  (* invocations multiply through loops: the centroid loads run
     (n/b0)*(k/b1) times *)
  let loads =
    List.find
      (fun r ->
        String.length r.Simulate.br_name >= 14
        && String.sub r.Simulate.br_name 0 14 = "load_centroids")
      rows
  in
  check_f "centroid load invocations" (64.0 *. 8.0) loads.Simulate.br_invocations

let test_bottlenecks () =
  (* gda's metapipeline is compute-bound (the §6.2 rebalancing story) *)
  let gda = Suite.find (Suite.all ()) "gda" in
  let d = Experiments.design_of Experiments.Tiled_meta gda in
  let rows = Simulate.bottlenecks d ~sizes:gda.Suite.sim_sizes in
  Alcotest.(check bool) "gda has a metapipeline" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Simulate.bn_loop ^ " compute-bound") true
        (r.Simulate.bn_bound = `Stage);
      Alcotest.(check bool) "stage cycles dominate dram" true
        (r.Simulate.bn_stage_cycles > r.Simulate.bn_dram_sum))
    rows;
  (* sumrows' metapipeline is DRAM-bound: the x stream is the wall *)
  let sr = Suite.find (Suite.all ()) "sumrows" in
  let d = Experiments.design_of Experiments.Tiled_meta sr in
  let rows = Simulate.bottlenecks d ~sizes:sr.Suite.sim_sizes in
  Alcotest.(check bool) "sumrows has a metapipeline" true (rows <> []);
  Alcotest.(check bool) "sumrows dram-bound" true
    (List.exists (fun r -> r.Simulate.bn_bound = `Dram) rows)

(* ---------------- memoization ---------------- *)

let test_memo_cache_consistency () =
  (* one cache shared across run/breakdown/bottlenecks must reproduce the
     uncached reports exactly — structural equality, no tolerance *)
  List.iter
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      let d = Experiments.design_of Experiments.Tiled_meta bench in
      let sizes = bench.Suite.sim_sizes in
      let cache = Simulate.cache () in
      Alcotest.(check bool) (name ^ ": run matches") true
        (Simulate.run ~cache d ~sizes = Simulate.run d ~sizes);
      Alcotest.(check bool) (name ^ ": breakdown matches") true
        (Simulate.breakdown ~cache d ~sizes = Simulate.breakdown d ~sizes);
      Alcotest.(check bool) (name ^ ": bottlenecks matches") true
        (Simulate.bottlenecks ~cache d ~sizes = Simulate.bottlenecks d ~sizes);
      (* reusing the cache at different sizes must transparently reset *)
      let sizes' = List.map (fun (s, v) -> (s, v * 2)) sizes in
      Alcotest.(check bool) (name ^ ": cache resets on new sizes") true
        (Simulate.run ~cache d ~sizes:sizes' = Simulate.run d ~sizes:sizes'))
    [ "kmeans"; "gda"; "sumrows" ]

let test_cache_stats () =
  (* two reports sharing one cache: the second is answered entirely from
     the memo table — no new misses, only hits *)
  let bench = Suite.find (Suite.all ()) "gemm" in
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let sizes = bench.Suite.sim_sizes in
  let cache = Simulate.cache () in
  let r1 = Simulate.run ~cache d ~sizes in
  let s1 = Simulate.cache_stats cache in
  Alcotest.(check bool) "first run misses" true (s1.Simulate.misses > 0);
  let r2 = Simulate.run ~cache d ~sizes in
  let s2 = Simulate.cache_stats cache in
  Alcotest.(check int) "second run adds no misses" s1.Simulate.misses
    s2.Simulate.misses;
  Alcotest.(check bool) "second run is all hits" true
    (s2.Simulate.hits > s1.Simulate.hits);
  Alcotest.(check bool) "reports identical" true (r1 = r2);
  (* memoized distinct subtrees are exactly the lifetime misses while the
     key stays fixed *)
  Alcotest.(check int) "nodes = misses" s2.Simulate.misses
    (Simulate.cache_nodes cache)

(* ---------------- rebalancing ---------------- *)

let test_rebalance () =
  (* the paper's gda stage parallelization: rebalancing the bottleneck
     stage speeds the design up and costs logic *)
  let bench = Suite.find (Suite.all ()) "gda" in
  let meta = Experiments.design_of Experiments.Tiled_meta bench in
  let sizes = bench.Suite.sim_sizes in
  let reb = Rebalance.apply ~factor:4 meta ~sizes in
  let c d = (Simulate.run d ~sizes).Simulate.cycles in
  Alcotest.(check bool) "faster" true (c reb < c meta);
  let a_m = (Area_model.of_design meta).Area_model.logic in
  let a_r = (Area_model.of_design reb).Area_model.logic in
  Alcotest.(check bool) "costs logic" true (a_r > a_m);
  (* reaches the neighborhood of the paper's 39.4x *)
  let base = Experiments.design_of Experiments.Baseline bench in
  let speedup = c base /. c reb in
  Alcotest.(check bool) "covers the paper's gda point" true (speedup > 39.4)

(* ---------------- area model unit tests ---------------- *)

let test_area_monotone_in_par () =
  let cost par = Area_model.of_design (design (pipe ~par "p")) in
  Alcotest.(check bool) "logic grows with par" true
    ((cost 16).Area_model.logic > (cost 1).Area_model.logic)

let test_double_buffer_costs_more () =
  let mem kind =
    { Hw.mem_name = "m"; kind; width_bits = 32; depth = 4096; banks = 1;
      readers = 1; writers = 1; mem_prov = Prov.none }
  in
  (* marginal cost of the memory alone: subtract the empty design *)
  let base = (Area_model.of_design (design (pipe "p"))).Area_model.bram in
  let a kind =
    (Area_model.of_design (design ~mems:[ mem kind ] (pipe "p"))).Area_model.bram
    -. base
  in
  Alcotest.(check bool) "double buffer = 2x bram" true
    (a Hw.Double_buffer >= (2.0 *. a Hw.Buffer) -. 1.0)

let () =
  Alcotest.run "sim"
    [ ( "controllers",
        [ Alcotest.test_case "pipe" `Quick test_pipe_cycles;
          Alcotest.test_case "seq" `Quick test_seq_sums;
          Alcotest.test_case "par" `Quick test_par_max;
          Alcotest.test_case "loop" `Quick test_loop_multiplies;
          Alcotest.test_case "metapipe overlap" `Quick test_metapipe_overlap;
          Alcotest.test_case "meta never slower" `Quick test_metapipe_never_slower;
          Alcotest.test_case "tile load" `Quick test_tile_load_cost;
          Alcotest.test_case "reuse factor" `Quick test_reuse_reduces_traffic ] );
      ( "direct access",
        [ Alcotest.test_case "dependent multiply" `Quick
            test_dependent_loops_multiply;
          Alcotest.test_case "burst locality window" `Quick
            test_burst_locality_window;
          Alcotest.test_case "non-contiguous" `Quick test_noncontiguous_costs_more;
          Alcotest.test_case "non-affine" `Quick test_nonaffine_costs_most ] );
      ( "invariants",
        [ Alcotest.test_case "tiled traffic <= baseline" `Quick
            test_tiling_never_moves_more ] );
      ( "fig5c",
        [ Alcotest.test_case "paper formulas" `Quick test_fig5c_formulas ] );
      ( "fig7",
        [ Alcotest.test_case "speedup shape" `Quick test_fig7_shape;
          Alcotest.test_case "area band" `Quick test_fig7_area_band ] );
      ( "sensitivity",
        [ Alcotest.test_case "ordering stable" `Quick
            test_sensitivity_ordering_stable ] );
      ( "breakdown",
        [ Alcotest.test_case "kmeans table" `Quick test_breakdown;
          Alcotest.test_case "bottleneck attribution" `Quick test_bottlenecks
        ] );
      ( "memoization",
        [ Alcotest.test_case "cached reports match uncached" `Quick
            test_memo_cache_consistency;
          Alcotest.test_case "cache stats" `Quick test_cache_stats ] );
      ( "rebalance",
        [ Alcotest.test_case "gda stage parallelization" `Quick test_rebalance ] );
      ( "area",
        [ Alcotest.test_case "par scaling" `Quick test_area_monotone_in_par;
          Alcotest.test_case "double buffer" `Quick test_double_buffer_costs_more
        ] ) ]
