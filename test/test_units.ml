(* Direct unit tests for the small analysis helpers: combine-function
   analysis (Combs), pipeline-depth estimation (Depth), the split-cost
   heuristic (Split_cost), and metapipeline finalization (Metapipe). *)

open Dsl

(* ---------------- Combs ---------------- *)

let mk_elementwise_comb () =
  let n = Sym.fresh "n" in
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  let body =
    map1 (dfull (Ir.Var n)) (fun i ->
        read (Ir.Var a) [ i ] +! read (Ir.Var b) [ i ])
  in
  (n, { Ir.ca = a; cb = b; cbody = body })

let test_combs_rename_fresh () =
  let _, c = mk_elementwise_comb () in
  let c' = Combs.rename c in
  Alcotest.(check bool) "param a refreshed" false (Sym.equal c.Ir.ca c'.Ir.ca);
  Alcotest.(check bool) "param b refreshed" false (Sym.equal c.Ir.cb c'.Ir.cb);
  (* the refreshed comb computes the same function *)
  let arr vs = Value.Arr (Ndarray.init [ Array.length vs ] (function
    | [ i ] -> Value.F vs.(i)
    | _ -> assert false))
  in
  let x = Sym.fresh "x" and y = Sym.fresh "y" in
  let env =
    Sym.Map.add x (arr [| 1.0; 2.0 |])
      (Sym.Map.add y (arr [| 10.0; 20.0 |]) Sym.Map.empty)
  in
  (* bind the map extent to 2 via substituting a literal *)
  let apply c =
    let cbody =
      Ir.subst (Sym.Map.singleton c.Ir.ca (Ir.Var x)) c.Ir.cbody
    in
    let cbody = Ir.subst (Sym.Map.singleton c.Ir.cb (Ir.Var y)) cbody in
    cbody
  in
  let with_n c n_sym =
    Ir.subst (Sym.Map.singleton n_sym (Ir.Ci 2)) (apply c)
  in
  let n1, c1 = mk_elementwise_comb () in
  let c2 = Combs.rename c1 in
  let v1 = Eval.eval env (with_n c1 n1) in
  let v2 = Eval.eval env (with_n c2 n1) in
  Alcotest.(check bool) "same function" true (Value.equal ~eps:1e-9 v1 v2)

let test_combs_elementwise_detected () =
  let _, c = mk_elementwise_comb () in
  match Combs.elementwise c with
  | None -> Alcotest.fail "elementwise comb not recognized"
  | Some build ->
      (* rebuild at extent 3 over fresh arrays and evaluate *)
      let x = Sym.fresh "x" and y = Sym.fresh "y" in
      let e = build [ Ir.Ci 3 ] (Ir.Var x) (Ir.Var y) in
      let arr vs = Value.Arr (Ndarray.init [ Array.length vs ] (function
        | [ i ] -> Value.F vs.(i)
        | _ -> assert false))
      in
      let env =
        Sym.Map.add x (arr [| 1.0; 2.0; 3.0 |])
          (Sym.Map.add y (arr [| 5.0; 6.0; 7.0 |]) Sym.Map.empty)
      in
      let v = Eval.eval env e in
      Alcotest.(check bool) "sums" true
        (Value.equal ~eps:1e-9 v (arr [| 6.0; 8.0; 10.0 |]))

let test_combs_not_elementwise () =
  (* a(i+1) is not a read at exactly the map index *)
  let n = Sym.fresh "n" in
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  let shifted =
    { Ir.ca = a;
      cb = b;
      cbody =
        map1 (dfull (Ir.Var n)) (fun i ->
            read (Ir.Var a) [ i +! Dsl.i 1 ] +! read (Ir.Var b) [ i ]) }
  in
  Alcotest.(check bool) "shifted read rejected" true
    (Combs.elementwise shifted = None);
  (* scalar comb has no map to re-instantiate *)
  let scalar = { Ir.ca = a; cb = b; cbody = Ir.Var a +! Ir.Var b } in
  Alcotest.(check bool) "scalar comb rejected" true
    (Combs.elementwise scalar = None)

(* ---------------- Depth ---------------- *)

let test_depth_latencies () =
  Alcotest.(check int) "fadd" 8 (Depth.op_latency Ir.Add);
  Alcotest.(check int) "fmul" 6 (Depth.op_latency Ir.Mul);
  Alcotest.(check int) "fdiv" 28 (Depth.op_latency Ir.Div);
  Alcotest.(check int) "sqrt" 16 (Depth.op_latency Ir.Sqrt);
  Alcotest.(check int) "exp" 20 (Depth.op_latency Ir.Exp)

let test_depth_critical_path () =
  let x = Ir.Var (Sym.fresh "x") in
  (* a chain is the sum of its op latencies *)
  let chain = sqrt_ ((x *! x) +! f 1.0) in
  Alcotest.(check int) "mul+add+sqrt" (6 + 8 + 16) (Depth.of_exp chain);
  (* parallel operands: the max, not the sum *)
  let balanced = (x *! x) +! (x +! x) in
  Alcotest.(check int) "max(mul,add)+add" (8 + 8) (Depth.of_exp balanced)

let test_depth_let_on_path () =
  let x = Ir.Var (Sym.fresh "x") in
  let e = let_ (x *! x) (fun sq -> sq +! sq) in
  Alcotest.(check int) "let value on path" (6 + 8) (Depth.of_exp e)

(* ---------------- Split_cost ---------------- *)

let test_split_cost_width () =
  Alcotest.(check int) "float" 1 (Split_cost.width_words Ty.float_);
  Alcotest.(check int) "pair" 2
    (Split_cost.width_words (Ty.Tuple [ Ty.float_; Ty.int_ ]));
  Alcotest.(check bool) "array rejected" true
    (match Split_cost.width_words (Ty.Array (Ty.float_, 1)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_split_cost_dom_bound () =
  let n = Sym.fresh "n" in
  let bound = function
    | Ir.Var s when Sym.equal s n -> Some 1000
    | Ir.Ci c -> Some c
    | _ -> None
  in
  Alcotest.(check (option int)) "dfull" (Some 1000)
    (Split_cost.dom_bound ~bound (Ir.Dfull (Ir.Var n)));
  Alcotest.(check (option int)) "dtiles" (Some 16)
    (Split_cost.dom_bound ~bound
       (Ir.Dtiles { total = Ir.Var n; tile = 64 }));
  Alcotest.(check (option int)) "unbounded" None
    (Split_cost.dom_bound ~bound (Ir.Dfull (Ir.Var (Sym.fresh "m"))))

let test_split_cost_fits () =
  let n = Sym.fresh "n" in
  let bound = function
    | Ir.Var s when Sym.equal s n -> Some 1024
    | Ir.Ci c -> Some c
    | _ -> None
  in
  let doms = [ Ir.Dfull (Ir.Var n) ] in
  Alcotest.(check bool) "1024 floats fit in 2048" true
    (Split_cost.intermediate_fits ~budget_words:2048 ~bound doms Ty.float_);
  Alcotest.(check bool) "1024 pairs exceed 1024" false
    (Split_cost.intermediate_fits ~budget_words:1024 ~bound doms
       (Ty.Tuple [ Ty.float_; Ty.float_ ]));
  Alcotest.(check bool) "unbounded never fits" false
    (Split_cost.intermediate_fits ~budget_words:1_000_000 ~bound
       [ Ir.Dfull (Ir.Var (Sym.fresh "m")) ]
       Ty.float_)

(* ---------------- Metapipe ---------------- *)

let test_metapipe_stage_sets () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = Experiments.design_of Experiments.Tiled_meta b in
  (* every memory reported as written by the top controller is a declared
     memory, and port counts in the finalized design are consistent *)
  let names = List.map (fun m -> m.Hw.mem_name) d.Hw.mems in
  List.iter
    (fun w ->
      Alcotest.(check bool) (w ^ " declared") true (List.mem w names))
    (Metapipe.stage_writes d.Hw.top);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " declared") true (List.mem r names))
    (Metapipe.stage_reads d.Hw.top)

let test_metapipe_ports_positive () =
  let b = Suite.find (Suite.all ()) "gemm" in
  let d = Experiments.design_of Experiments.Tiled_meta b in
  List.iter
    (fun m ->
      let used =
        List.mem m.Hw.mem_name (Metapipe.stage_reads d.Hw.top)
        || List.mem m.Hw.mem_name (Metapipe.stage_writes d.Hw.top)
      in
      if used then
        Alcotest.(check bool)
          (m.Hw.mem_name ^ " has ports")
          true
          (m.Hw.readers + m.Hw.writers > 0))
    d.Hw.mems

let test_metapipe_idempotent () =
  let b = Suite.find (Suite.all ()) "sumrows" in
  let d = Experiments.design_of Experiments.Tiled_meta b in
  let d2 = Metapipe.finalize d in
  Alcotest.(check int) "same memory count" (List.length d.Hw.mems)
    (List.length d2.Hw.mems);
  List.iter2
    (fun m m2 ->
      Alcotest.(check bool) (m.Hw.mem_name ^ " kind stable") true
        (m.Hw.kind = m2.Hw.kind))
    d.Hw.mems d2.Hw.mems

(* ---------------- Simplify ---------------- *)

let test_simplify_identities () =
  let x = Ir.Var (Sym.fresh "x") in
  let cases =
    [ (x *! f 1.0, x);
      (x +! f 0.0, x);
      (Ir.Prim (Ir.Min, [ Ir.Ci 5; Ir.Ci 9 ]), Ir.Ci 5);
      (Ir.Prim (Ir.Add, [ Ir.Ci 2; Ir.Ci 3 ]), Ir.Ci 5) ]
  in
  List.iter
    (fun (e, expect) ->
      let got = Simplify.exp e in
      if got <> expect then
        Alcotest.failf "simplify: got %s, want %s" (Pp.exp_to_string got)
          (Pp.exp_to_string expect))
    cases

let () =
  Alcotest.run "units"
    [ ( "combs",
        [ Alcotest.test_case "rename refreshes binders" `Quick
            test_combs_rename_fresh;
          Alcotest.test_case "elementwise detected" `Quick
            test_combs_elementwise_detected;
          Alcotest.test_case "non-elementwise rejected" `Quick
            test_combs_not_elementwise ] );
      ( "depth",
        [ Alcotest.test_case "op latencies" `Quick test_depth_latencies;
          Alcotest.test_case "critical path" `Quick test_depth_critical_path;
          Alcotest.test_case "let on path" `Quick test_depth_let_on_path ] );
      ( "split cost",
        [ Alcotest.test_case "width words" `Quick test_split_cost_width;
          Alcotest.test_case "dom bound" `Quick test_split_cost_dom_bound;
          Alcotest.test_case "intermediate fits" `Quick test_split_cost_fits ]
      );
      ( "metapipe",
        [ Alcotest.test_case "stage sets declared" `Quick
            test_metapipe_stage_sets;
          Alcotest.test_case "ports positive" `Quick
            test_metapipe_ports_positive;
          Alcotest.test_case "finalize idempotent" `Quick
            test_metapipe_idempotent ] );
      ( "simplify",
        [ Alcotest.test_case "identities" `Quick test_simplify_identities ] )
    ]
