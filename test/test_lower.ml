(* Hardware generation (Section 5 / Table 4): template selection, memory
   allocation, metapipeline scheduling, double-buffer promotion, and the
   MaxJ/DOT emitters. *)

let tiled_design ?(opts = Lower.default_opts) (bench : Suite.bench) =
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  Lower.program opts r.Tiling.tiled

let baseline_design (bench : Suite.bench) =
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  Lower.program Lower.baseline_opts r.Tiling.fused

let mems_of_kind d kind =
  List.filter (fun m -> m.Hw.kind = kind) d.Hw.mems

let count_ctrl p d = Hw.fold_ctrls (fun n c -> if p c then n + 1 else n) 0 d.Hw.top

let has_template t d =
  count_ctrl
    (function Hw.Pipe { template; _ } -> template = t | _ -> false)
    d
  > 0

(* ---------------- Table 4: IR construct -> template ---------------- *)

let test_map_vector () =
  let b = Suite.find (Suite.all ()) "outerprod" in
  Alcotest.(check bool) "map -> vector unit" true
    (has_template Hw.Vector (tiled_design b))

let test_fold_tree () =
  let b = Suite.find (Suite.all ()) "gemm" in
  Alcotest.(check bool) "fold -> reduction tree" true
    (has_template Hw.Tree (tiled_design b))

let test_flatmap_fifo () =
  let b = Suite.find (Suite.all ()) "tpchq6" in
  let d = tiled_design b in
  Alcotest.(check bool) "flatmap -> fifo-write pipe" true
    (has_template Hw.Fifo_write d);
  Alcotest.(check bool) "fifo memory allocated" true
    (mems_of_kind d Hw.Fifo <> [])

let test_groupbyfold_cam () =
  let t = Histogram.make () in
  let r = Tiling.run ~tiles:[ (t.Histogram.n, 1024) ] t.Histogram.prog in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  Alcotest.(check bool) "groupByFold -> CAM pipe" true
    (has_template Hw.Cam_update d);
  Alcotest.(check bool) "CAM memory allocated" true (mems_of_kind d Hw.Cam <> [])

let test_nonaffine_cache () =
  let b = Suite.find (Suite.all ()) "gda" in
  let d = tiled_design b in
  Alcotest.(check bool) "non-affine access -> cache" true
    (mems_of_kind d Hw.Cache <> [])

let test_copy_tile_load () =
  let b = Suite.find (Suite.all ()) "gemm" in
  let d = tiled_design b in
  let loads = count_ctrl (function Hw.Tile_load _ -> true | _ -> false) d in
  Alcotest.(check bool) "two tile loads (x and y)" true (loads >= 2)

(* ---------------- metapipelines and double buffers ------------------ *)

let test_metapipe_enabled () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design b in
  let metas =
    count_ctrl (function Hw.Loop { meta = true; _ } -> true | _ -> false) d
  in
  Alcotest.(check bool) "metapipelines generated" true (metas >= 1)

let test_metapipe_disabled () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design ~opts:{ Lower.default_opts with Lower.meta = false } b in
  let metas =
    count_ctrl (function Hw.Loop { meta = true; _ } -> true | _ -> false) d
  in
  Alcotest.(check int) "no metapipelines when disabled" 0 metas

let test_double_buffer_promotion () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design b in
  (* the points tile couples the load stage to the compute stages *)
  let points_db =
    List.exists
      (fun m ->
        m.Hw.kind = Hw.Double_buffer
        && String.length m.Hw.mem_name >= 10
        && String.sub m.Hw.mem_name 0 10 = "pointsTile")
      d.Hw.mems
  in
  Alcotest.(check bool) "points tile double buffered" true points_db

let test_no_double_buffer_without_meta () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design ~opts:{ Lower.default_opts with Lower.meta = false } b in
  Alcotest.(check int) "no double buffers in sequential design" 0
    (List.length (mems_of_kind d Hw.Double_buffer))

let test_preload_single_buffered () =
  (* Fig. 6: a top-level preload (centroids with only n tiled) is not a
     metapipeline stage output, so it stays single buffered *)
  let t = Kmeans.make () in
  let r = Tiling.run ~tiles:[ (t.Kmeans.n, 64) ] t.Kmeans.prog in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  let centroids_mem =
    List.find_opt
      (fun m ->
        String.length m.Hw.mem_name >= 13
        && String.sub m.Hw.mem_name 0 13 = "centroidsTile")
      d.Hw.mems
  in
  match centroids_mem with
  | Some m ->
      Alcotest.(check bool) "preload buffer single" true (m.Hw.kind = Hw.Buffer)
  | None -> Alcotest.fail "centroids preload buffer missing"

let test_parallel_controller () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design b in
  Alcotest.(check bool) "parallel sums/counts updates" true
    (count_ctrl (function Hw.Par _ -> true | _ -> false) d >= 1)

(* ---------------- memory sizing ------------------ *)

let test_tile_buffer_sizes () =
  let t = Gemm.make () in
  let r =
    Tiling.run
      ~tiles:[ (t.Gemm.m, 64); (t.Gemm.n, 64); (t.Gemm.p, 64) ]
      t.Gemm.prog
  in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  let tile_mems =
    List.filter
      (fun m ->
        let n = m.Hw.mem_name in
        String.length n >= 5 && (String.sub n 0 5 = "xTile" || String.sub n 0 5 = "yTile"))
      d.Hw.mems
  in
  Alcotest.(check int) "two input tiles" 2 (List.length tile_mems);
  List.iter
    (fun m -> Alcotest.(check int) "tile depth = 64x64" (64 * 64) m.Hw.depth)
    tile_mems

let test_readers_writers_counted () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = tiled_design b in
  List.iter
    (fun m ->
      if m.Hw.kind <> Hw.Cache then
        Alcotest.(check bool)
          (m.Hw.mem_name ^ " has a writer")
          true (m.Hw.writers >= 1))
    d.Hw.mems

(* ---------------- baseline properties ------------------ *)

let test_baseline_direct_reads () =
  let b = Suite.find (Suite.all ()) "kmeans" in
  let d = baseline_design b in
  let loads = count_ctrl (function Hw.Tile_load _ -> true | _ -> false) d in
  Alcotest.(check int) "baseline has no tile loads" 0 loads;
  let direct =
    Hw.fold_ctrls
      (fun n c ->
        match c with Hw.Pipe { dram; _ } -> n + List.length dram | _ -> n)
      0 d.Hw.top
  in
  Alcotest.(check bool) "baseline reads DRAM directly" true (direct >= 2)

let test_same_par_factor () =
  let b = Suite.find (Suite.all ()) "gemm" in
  Alcotest.(check int) "par constant across configs"
    (baseline_design b).Hw.par_factor (tiled_design b).Hw.par_factor

(* ---------------- emitters ------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------- forwarding path for DRAM-resident accumulators ------------- *)

let has_loop_prefix prefix d =
  count_ctrl
    (function
      | Hw.Loop { name; _ } ->
          String.length name >= String.length prefix
          && String.sub name 0 (String.length prefix) = prefix
      | _ -> false)
    d
  > 0

(* Row sums accumulated into a DRAM-resident result (maxsize exceeds the
   on-chip budget): the region is indexed by the row-tile index only, so
   the column loop can run with the region held in the staging buffer. *)
let colacc_program () =
  let m = Dsl.size "m" and n = Dsl.size "n" in
  let b0 = 4096 in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var m; Ir.Var n ] in
  let body =
    Dsl.multifold_lets
      [ Dsl.dtiles ~total:(Ir.Var m) ~tile:b0; Dsl.dfull (Ir.Var n) ]
      ~init:(Dsl.zeros Ty.Float [ Ir.Var m ])
      ~comb:(fun a b ->
        Dsl.map1
          (Dsl.dfull (Dsl.i b0))
          (fun ix -> Dsl.( +! ) (Dsl.read a [ ix ]) (Dsl.read b [ ix ])))
      (fun idxs ->
        match idxs with
        | [ ii; jj ] ->
            let off = Dsl.( *! ) ii (Dsl.i b0) in
            let len = Dsl.min_ (Dsl.i b0) (Dsl.( -! ) (Ir.Var m) off) in
            ( [ ( "xCol",
                  Ir.Copy
                    { csrc = Dsl.in_var x;
                      cdims =
                        [ Ir.Coffset { off; len; max_len = Some b0 };
                          Ir.Cfix jj ];
                      creuse = 1 } ) ],
              fun bound ->
                match bound with
                | [ xcol ] ->
                    [ { Dsl.range = [ Ir.Var m ];
                        region = [ (off, len, Some b0) ];
                        upd =
                          (fun cur ->
                            Dsl.map1 (Dsl.dfull len) (fun ix ->
                                Dsl.( +! ) (Dsl.read cur [ ix ])
                                  (Dsl.read xcol [ ix ]))) } ]
                | _ -> assert false )
        | _ -> assert false)
  in
  ( m,
    n,
    x,
    Dsl.program ~name:"colacc" ~sizes:[ m; n ]
      ~max_sizes:[ (m, 1 lsl 20); (n, 1024) ]
      ~inputs:[ x ] body )

let test_forwarding_fires () =
  let m, n, _, prog = colacc_program () in
  ignore (Validate.check_program prog);
  let d = Lower.program Lower.default_opts prog in
  Alcotest.(check bool) "rmw hoisted into outer loop" true
    (has_loop_prefix "mf_inner" d);
  let sizes = [ (m, 8192); (n, 64) ] in
  let rep = Simulate.run d ~sizes in
  (* the accumulator round-trips once per region (2 tiles x 4096 words),
     not once per (ii, jj) iteration (which would be 64x that) *)
  Alcotest.(check (float 1.0)) "result reads" 8192.0
    (Simulate.read_words rep "result");
  Alcotest.(check (float 1.0)) "result writes" 8192.0
    (Simulate.written_words rep "result");
  Alcotest.(check (float 1.0)) "x reads" (8192.0 *. 64.0)
    (Simulate.read_words rep "x");
  (* the nested metapipeline structure is new to the event engine too:
     the two engines must still agree *)
  let ev = (Event_sim.run d ~sizes).Event_sim.report.Simulate.cycles in
  let dev = Float.abs (ev -. rep.Simulate.cycles) /. rep.Simulate.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "engines agree on nested meta (%.1f%%)" (100.0 *. dev))
    true (dev < 0.05)

let test_forwarding_semantics () =
  let m, n, x, prog = colacc_program () in
  let mv = 8192 and nv = 8 in
  let mat = Workloads.float_matrix (Workloads.Rng.make 11) mv nv in
  let v =
    Eval.eval_program prog
      ~sizes:[ (m, mv); (n, nv) ]
      ~inputs:[ (x.Ir.iname, Workloads.value_of_matrix mat) ]
  in
  let expected =
    Value.Arr
      (Ndarray.init [ mv ] (function
        | [ r ] -> Value.F (Array.fold_left ( +. ) 0.0 mat.(r))
        | _ -> assert false))
  in
  Alcotest.(check bool) "row sums" true (Value.equal ~eps:1e-6 expected v)

let test_forwarding_declined () =
  (* sumrows: the x-tile copies dominate the accumulator round-trip, so
     hoisting would only cost cross-stage overlap — the lowering keeps the
     flat loop *)
  let b = Suite.find (Suite.all ()) "sumrows" in
  let d = tiled_design b in
  Alcotest.(check bool) "flat loop kept" false (has_loop_prefix "mf_inner" d)

let test_maxj_emission () =
  List.iter
    (fun bench ->
      let s = Maxj.emit (tiled_design bench) in
      Alcotest.(check bool) (bench.Suite.name ^ " kernel") true
        (String.length s > 200);
      Alcotest.(check bool) "has Kernel class" true
        (contains s "Kernel extends Kernel");
      Alcotest.(check bool) "has tile load" true (contains s "mem.tileLoad"))
    (Suite.all ())

let test_dot_emission () =
  List.iter
    (fun bench ->
      let s = Dot.emit (tiled_design bench) in
      Alcotest.(check bool) (bench.Suite.name ^ " dot") true
        (String.length s > 100);
      (* crude balance check: one closing brace per opening *)
      let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 s in
      Alcotest.(check int) "balanced braces" (count '{') (count '}'))
    (Suite.all ())

let () =
  Alcotest.run "lower"
    [ ( "templates",
        [ Alcotest.test_case "map -> vector" `Quick test_map_vector;
          Alcotest.test_case "fold -> tree" `Quick test_fold_tree;
          Alcotest.test_case "flatmap -> fifo" `Quick test_flatmap_fifo;
          Alcotest.test_case "groupbyfold -> cam" `Quick test_groupbyfold_cam;
          Alcotest.test_case "non-affine -> cache" `Quick test_nonaffine_cache;
          Alcotest.test_case "copy -> tile load" `Quick test_copy_tile_load ] );
      ( "metapipelines",
        [ Alcotest.test_case "enabled" `Quick test_metapipe_enabled;
          Alcotest.test_case "disabled" `Quick test_metapipe_disabled;
          Alcotest.test_case "double-buffer promotion" `Quick
            test_double_buffer_promotion;
          Alcotest.test_case "sequential: no double buffers" `Quick
            test_no_double_buffer_without_meta;
          Alcotest.test_case "preload single buffered" `Quick
            test_preload_single_buffered;
          Alcotest.test_case "parallel controller" `Quick test_parallel_controller
        ] );
      ( "memories",
        [ Alcotest.test_case "tile buffer sizes" `Quick test_tile_buffer_sizes;
          Alcotest.test_case "ports counted" `Quick test_readers_writers_counted
        ] );
      ( "baseline",
        [ Alcotest.test_case "direct reads" `Quick test_baseline_direct_reads;
          Alcotest.test_case "constant parallelism" `Quick test_same_par_factor
        ] );
      ( "forwarding",
        [ Alcotest.test_case "fires on rmw-dominated loops" `Quick
            test_forwarding_fires;
          Alcotest.test_case "evaluates correctly" `Quick
            test_forwarding_semantics;
          Alcotest.test_case "declined when copies dominate" `Quick
            test_forwarding_declined ] );
      ( "emitters",
        [ Alcotest.test_case "maxj" `Quick test_maxj_emission;
          Alcotest.test_case "dot" `Quick test_dot_emission ] ) ]
