(* Tests for the PPL IR: symbols, free variables, substitution, binder
   refreshing, pretty printing, and the type checker. *)

open Dsl

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ty = Alcotest.testable (fun fmt t -> Ty.pp fmt t) Ty.equal

let test_sym_fresh () =
  let a = Sym.fresh "x" and b = Sym.fresh "x" in
  check_bool "distinct ids" false (Sym.equal a b);
  check_str "base preserved" "x" (Sym.base a);
  check_bool "name differs" true (Sym.name a <> Sym.name b)

let test_free_vars_simple () =
  let x = Sym.fresh "x" and y = Sym.fresh "y" in
  let e = Ir.Prim (Ir.Add, [ Ir.Var x; Ir.Var y ]) in
  let fv = Ir.free_vars e in
  check_bool "x free" true (Sym.Set.mem x fv);
  check_bool "y free" true (Sym.Set.mem y fv)

let test_free_vars_let () =
  let x = Sym.fresh "x" in
  let e = Ir.Let (x, Ir.Ci 1, Ir.Var x) in
  check_bool "bound not free" true (Sym.Set.is_empty (Ir.free_vars e))

let test_free_vars_pattern () =
  let arr = Sym.fresh "arr" and n = Sym.fresh "n" in
  let e = map1 (dfull (Ir.Var n)) (fun idx -> read (Ir.Var arr) [ idx ]) in
  let fv = Ir.free_vars e in
  check_bool "arr free" true (Sym.Set.mem arr fv);
  check_bool "n free" true (Sym.Set.mem n fv);
  Alcotest.(check int) "only two" 2 (Sym.Set.cardinal fv)

let test_free_vars_fold_acc_bound () =
  let n = Sym.fresh "n" in
  let e =
    fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun _ acc -> acc +! f 1.0)
  in
  Alcotest.(check int) "only n free" 1 (Sym.Set.cardinal (Ir.free_vars e))

let test_subst () =
  let x = Sym.fresh "x" in
  let e = Ir.Prim (Ir.Add, [ Ir.Var x; Ir.Var x ]) in
  let e' = Ir.subst (Sym.Map.singleton x (Ir.Ci 3)) e in
  check_str "both replaced" "3 + 3" (Pp.exp_to_string e')

let test_subst_shadowing () =
  let x = Sym.fresh "x" in
  let e = Ir.Let (x, Ir.Ci 1, Ir.Var x) in
  let e' = Ir.subst (Sym.Map.singleton x (Ir.Ci 9)) e in
  (* the let-bound x shadows the substitution *)
  match e' with
  | Ir.Let (_, Ir.Ci 1, Ir.Var s) -> check_bool "kept binder" true (Sym.equal s x)
  | _ -> Alcotest.fail "unexpected shape"

let test_rename_binders () =
  let n = Sym.fresh "n" and arr = Sym.fresh "arr" in
  let e = map1 (dfull (Ir.Var n)) (fun idx -> read (Ir.Var arr) [ idx ]) in
  let e' = Ir.rename_binders e in
  (match (e, e') with
  | Ir.Map { midxs = [ s ]; _ }, Ir.Map { midxs = [ s' ]; _ } ->
      check_bool "binder renamed" false (Sym.equal s s')
  | _ -> Alcotest.fail "unexpected shape");
  (* free variables unchanged *)
  check_bool "same free vars" true
    (Sym.Set.equal (Ir.free_vars e) (Ir.free_vars e'))

let test_dom_size () =
  let n = Sym.fresh "n" in
  let d = Ir.Dtiles { total = Ir.Var n; tile = 64 } in
  check_bool "strided" true (Ir.is_strided d);
  check_bool "full not strided" false (Ir.is_strided (Ir.Dfull (Ir.Var n)));
  (* ceil(n/64) encoding: (n + 63) / 64 *)
  check_str "tile count"
    ("(" ^ Sym.name n ^ " + 63) / 64")
    (Pp.exp_to_string (Ir.dom_size d))

(* -------------------- type checking -------------------- *)

let infer_closed e = Validate.infer Sym.Map.empty e

let test_infer_scalar () =
  Alcotest.check ty "float" Ty.float_ (infer_closed (f 1.0 +! f 2.0));
  Alcotest.check ty "int" Ty.int_ (infer_closed (i 1 +! i 2));
  Alcotest.check ty "bool" Ty.bool_ (infer_closed (f 1.0 <! f 2.0));
  Alcotest.check ty "tuple"
    (Ty.Tuple [ Ty.float_; Ty.int_ ])
    (infer_closed (pair (f 1.0) (i 2)))

let test_infer_mixed_arith_rejected () =
  check_bool "int + float rejected" true
    (try
       ignore (infer_closed (i 1 +! f 2.0));
       false
     with Validate.Type_error _ -> true)

let test_infer_map () =
  let t = infer_closed (map2d (dfull (i 4)) (dfull (i 5)) (fun a b -> a +! b)) in
  Alcotest.check ty "2-D int array" (Ty.array Ty.int_ 2) t

let test_nested_array_rejected () =
  (* a Map producing arrays would be a nested array: rejected *)
  let e = map1 (dfull (i 3)) (fun _ -> map1 (dfull (i 2)) (fun x -> x)) in
  check_bool "rejected" true
    (try
       ignore (infer_closed e);
       false
     with Validate.Type_error _ -> true)

let test_infer_fold_tuple () =
  let e =
    fold1 (dfull (i 10))
      ~init:(pair (f infinity) (i (-1)))
      ~comb:(fun a b -> if_ (fst_ a <! fst_ b) a b)
      (fun idx acc -> if_ (fst_ acc <! to_float idx) acc (pair (to_float idx) idx))
  in
  Alcotest.check ty "tuple acc" (Ty.Tuple [ Ty.float_; Ty.int_ ]) (infer_closed e)

let test_infer_flatmap () =
  let e = filter (dfull (i 9)) (fun idx -> idx >! i 3) (fun idx -> to_float idx) in
  Alcotest.check ty "1-D" (Ty.array Ty.float_ 1) (infer_closed e)

let test_infer_groupbyfold () =
  let e =
    groupbyfold (dfull (i 9)) ~init:(i 0)
      ~comb:(fun a b -> a +! b)
      (fun idx -> (idx %! i 3, fun acc -> acc +! i 1))
  in
  Alcotest.check ty "assoc" (Ty.Assoc (Ty.int_, Ty.int_)) (infer_closed e)

let test_infer_multifold_bad_comb_rejected () =
  let e =
    multifold [ dfull (i 4) ] ~init:(zeros Ty.Float [ i 4 ])
      ~comb:(fun a _ -> a)  (* comb : arrays, fine *)
      (fun idxs ->
        [ { range = [ i 4 ];
            region = point idxs;
            upd = (fun acc -> acc &&! b true) (* bool update on float acc *) } ])
  in
  check_bool "rejected" true
    (try
       ignore (infer_closed e);
       false
     with Validate.Type_error _ -> true)

let test_check_apps () =
  (* every benchmark program type checks, with the expected result type *)
  let expect =
    [ ("outerprod", Ty.array Ty.float_ 2);
      ("sumrows", Ty.array Ty.float_ 1);
      ("gemm", Ty.array Ty.float_ 2);
      ("tpchq6", Ty.float_);
      ("gda", Ty.array Ty.float_ 2);
      ("kmeans", Ty.array Ty.float_ 2) ]
  in
  List.iter
    (fun bench ->
      let expected = List.assoc bench.Suite.name expect in
      Alcotest.check ty bench.Suite.name expected
        (Validate.check_program bench.Suite.prog))
    (Suite.all ());
  let h = Histogram.make () in
  Alcotest.check ty "histogram" (Ty.Assoc (Ty.int_, Ty.int_))
    (Validate.check_program h.Histogram.prog)

let test_pp_roundtrip_smoke () =
  (* pretty printing all apps must not raise and must mention the pattern *)
  List.iter
    (fun bench ->
      let s = Pp.program_to_string bench.Suite.prog in
      check_bool (bench.Suite.name ^ " prints") true (String.length s > 40))
    (Suite.all ())

let test_ty_well_formed () =
  check_bool "nested array ill-formed" false
    (Ty.well_formed (Ty.Array (Ty.Array (Ty.float_, 1), 1)));
  check_bool "array of tuples fine" true
    (Ty.well_formed (Ty.Array (Ty.Tuple [ Ty.float_; Ty.int_ ], 2)))

let () =
  Alcotest.run "ir"
    [ ( "symbols",
        [ Alcotest.test_case "fresh" `Quick test_sym_fresh ] );
      ( "free-vars",
        [ Alcotest.test_case "simple" `Quick test_free_vars_simple;
          Alcotest.test_case "let" `Quick test_free_vars_let;
          Alcotest.test_case "pattern binders" `Quick test_free_vars_pattern;
          Alcotest.test_case "fold acc bound" `Quick test_free_vars_fold_acc_bound
        ] );
      ( "subst",
        [ Alcotest.test_case "replace" `Quick test_subst;
          Alcotest.test_case "shadowing" `Quick test_subst_shadowing;
          Alcotest.test_case "rename binders" `Quick test_rename_binders ] );
      ( "domains",
        [ Alcotest.test_case "dom_size/strided" `Quick test_dom_size ] );
      ( "typing",
        [ Alcotest.test_case "scalars" `Quick test_infer_scalar;
          Alcotest.test_case "mixed arith rejected" `Quick
            test_infer_mixed_arith_rejected;
          Alcotest.test_case "map" `Quick test_infer_map;
          Alcotest.test_case "nested arrays rejected" `Quick
            test_nested_array_rejected;
          Alcotest.test_case "fold tuple" `Quick test_infer_fold_tuple;
          Alcotest.test_case "flatmap" `Quick test_infer_flatmap;
          Alcotest.test_case "groupbyfold" `Quick test_infer_groupbyfold;
          Alcotest.test_case "bad multifold rejected" `Quick
            test_infer_multifold_bad_comb_rejected;
          Alcotest.test_case "all apps type check" `Quick test_check_apps;
          Alcotest.test_case "well-formed types" `Quick test_ty_well_formed ] );
      ( "printing",
        [ Alcotest.test_case "apps print" `Quick test_pp_roundtrip_smoke ] ) ]
