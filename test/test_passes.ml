(* Fusion, CSE, code motion, simplification, alpha-equivalence. *)

open Dsl

let value_eq = Value.equal ~eps:1e-6

let check_value msg expected actual =
  if not (value_eq expected actual) then
    Alcotest.failf "%s:@.expected %s@.got %s" msg (Value.to_string expected)
      (Value.to_string actual)

(* ------------------------- simplify ------------------------- *)

let test_simplify_constants () =
  let cases =
    [ (i 2 +! i 3, Ir.Ci 5);
      (i 7 /! i 2, Ir.Ci 3);
      (min_ (i 4) (i 9), Ir.Ci 4);
      (f 1.5 *! f 2.0, Ir.Cf 3.0);
      (if_ (b true) (i 1) (i 2), Ir.Ci 1);
      (i 5 +! i 0, Ir.Ci 5) ]
  in
  List.iter
    (fun (e, expected) ->
      Alcotest.(check string)
        (Pp.exp_to_string e) (Pp.exp_to_string expected)
        (Pp.exp_to_string (Simplify.exp e)))
    cases

let test_simplify_identities () =
  let x = Sym.fresh "x" in
  let e = Ir.Prim (Ir.Add, [ Ir.Var x; Ir.Ci 0 ]) in
  Alcotest.(check string) "x + 0 = x" (Sym.name x) (Pp.exp_to_string (Simplify.exp e));
  let e2 = Ir.Prim (Ir.Mul, [ Ir.Var x; Ir.Ci 1 ]) in
  Alcotest.(check string) "x * 1 = x" (Sym.name x) (Pp.exp_to_string (Simplify.exp e2));
  (* (x + 2) + 3 -> x + 5 *)
  let e3 = Ir.Prim (Ir.Add, [ Ir.Prim (Ir.Add, [ Ir.Var x; Ir.Ci 2 ]); Ir.Ci 3 ]) in
  Alcotest.(check string) "re-associate" (Sym.name x ^ " + 5")
    (Pp.exp_to_string (Simplify.exp e3))

let test_simplify_preserves_semantics () =
  (* random arithmetic trees: simplify must not change evaluation *)
  let prop =
    QCheck.Test.make ~name:"simplify sound" ~count:200
      QCheck.(small_list (int_range (-20) 20))
      (fun xs ->
        let e =
          List.fold_left
            (fun acc v ->
              if v mod 3 = 0 then Ir.Prim (Ir.Add, [ acc; Ir.Ci v ])
              else if v mod 3 = 1 then Ir.Prim (Ir.Mul, [ acc; Ir.Ci (v mod 5) ])
              else Ir.Prim (Ir.Max, [ acc; Ir.Ci v ]))
            (Ir.Ci 1) xs
        in
        Eval.eval Sym.Map.empty e = Eval.eval Sym.Map.empty (Simplify.exp e))
  in
  QCheck.Test.check_exn prop

(* ------------------------- affine ------------------------- *)

let test_affine_basic () =
  let ii = Sym.fresh "ii" and j = Sym.fresh "j" in
  let e =
    Ir.Prim (Ir.Add, [ Ir.Prim (Ir.Mul, [ Ir.Var ii; Ir.Ci 8 ]); Ir.Var j ])
  in
  match Affine.of_exp e with
  | None -> Alcotest.fail "affine not recognized"
  | Some a ->
      Alcotest.(check int) "coeff ii" 8 (Affine.coeff a ii);
      Alcotest.(check int) "coeff j" 1 (Affine.coeff a j);
      Alcotest.(check bool) "not const" false (Affine.is_const a);
      (* round trip through to_exp *)
      let a2 = Option.get (Affine.of_exp (Affine.to_exp a)) in
      Alcotest.(check bool) "roundtrip" true (Affine.equal a a2)

let test_affine_rejects () =
  let x = Sym.fresh "x" in
  let data_dep = Ir.Read (Ir.Var x, [ Ir.Ci 0 ]) in
  Alcotest.(check bool) "read rejected" true (Affine.of_exp data_dep = None);
  let nonlinear = Ir.Prim (Ir.Mul, [ Ir.Var x; Ir.Var x ]) in
  Alcotest.(check bool) "x*x rejected" true (Affine.of_exp nonlinear = None);
  let div = Ir.Prim (Ir.Div, [ Ir.Var x; Ir.Ci 2 ]) in
  Alcotest.(check bool) "division rejected" true (Affine.of_exp div = None)

let test_affine_partition () =
  let ii = Sym.fresh "ii" and j = Sym.fresh "j" in
  let a = Affine.add (Affine.scale 8 (Affine.var ii))
            (Affine.add (Affine.var j) (Affine.const 3)) in
  let inside, outside = Affine.partition a (fun s -> Sym.equal s j) in
  Alcotest.(check int) "inside j" 1 (Affine.coeff inside j);
  Alcotest.(check int) "outside ii" 8 (Affine.coeff outside ii);
  Alcotest.(check bool) "const goes outside" true (outside.Affine.const = 3)

(* ------------------------- alpha ------------------------- *)

let test_alpha_equal () =
  let mk () = map1 (dfull (i 5)) (fun idx -> idx +! i 1) in
  Alcotest.(check bool) "same shape, fresh binders" true
    (Alpha.equal (mk ()) (mk ()));
  let other = map1 (dfull (i 5)) (fun idx -> idx +! i 2) in
  Alcotest.(check bool) "different body" false (Alpha.equal (mk ()) other);
  let x = Sym.fresh "x" in
  Alcotest.(check bool) "free vars must match" false
    (Alpha.equal (Ir.Var x) (Ir.Var (Sym.fresh "x")));
  Alcotest.(check bool) "rename_binders is alpha-equal" true
    (let e = mk () in
     Alpha.equal e (Ir.rename_binders e))

(* ------------------------- cse ------------------------- *)

let test_cse_lets () =
  let x = Sym.fresh "x" in
  let heavy () = map1 (dfull (i 8)) (fun idx -> idx *! i 3) in
  let s1 = Sym.fresh "a" and s2 = Sym.fresh "b" in
  let e =
    Ir.Let
      ( s1,
        heavy (),
        Ir.Let
          ( s2,
            heavy (),
            Ir.Prim
              (Ir.Add, [ Ir.Read (Ir.Var s1, [ Ir.Var x ]); Ir.Read (Ir.Var s2, [ Ir.Var x ]) ])
          ) )
  in
  let e' = Cse.exp e in
  (* second Let collapses; both reads now hit the first binding *)
  (match e' with
  | Ir.Let (_, _, Ir.Prim (Ir.Add, [ Ir.Read (Ir.Var a, _); Ir.Read (Ir.Var b, _) ]))
    when Sym.equal a b -> ()
  | _ -> Alcotest.failf "cse failed: %s" (Pp.exp_to_string e'));
  (* semantics preserved *)
  let env = Sym.Map.singleton x (Value.I 2) in
  check_value "cse sound" (Eval.eval env e) (Eval.eval env e')

let test_cse_trivial_not_shared () =
  (* constants are not worth binding-sharing *)
  let s1 = Sym.fresh "a" and s2 = Sym.fresh "b" in
  let e = Ir.Let (s1, Ir.Ci 5, Ir.Let (s2, Ir.Ci 5, Ir.Prim (Ir.Add, [ Ir.Var s1; Ir.Var s2 ]))) in
  match Cse.exp e with
  | Ir.Let (_, _, Ir.Let (_, _, _)) -> ()
  | e' -> Alcotest.failf "unexpected: %s" (Pp.exp_to_string e')

(* ------------------------- code motion ------------------------- *)

let test_code_motion_hoists () =
  let n = Sym.fresh "n" and arr = Sym.fresh "arr" in
  let inv = Sym.fresh "inv" in
  (* map(n){ i => inv = arr.copy(...); inv(i) } : copy is invariant *)
  let copy_e =
    Ir.Copy
      { csrc = Ir.Var arr;
        cdims = [ Ir.Coffset { off = Ir.Ci 0; len = Ir.Var n; max_len = None } ];
        creuse = 1 }
  in
  let idx = Sym.fresh "i" in
  let e =
    Ir.Map
      { mdims = [ Ir.Dfull (Ir.Var n) ];
        midxs = [ idx ];
        mbody = Ir.Let (inv, copy_e, Ir.Read (Ir.Var inv, [ Ir.Var idx ]));
        mprov = Prov.none }
  in
  match Code_motion.exp e with
  | Ir.Let (s, Ir.Copy _, Ir.Map _) when Sym.equal s inv -> ()
  | e' -> Alcotest.failf "not hoisted: %s" (Pp.exp_to_string e')

let test_code_motion_blocked () =
  (* a binding that uses the index must stay inside *)
  let n = Sym.fresh "n" in
  let idx = Sym.fresh "i" in
  let dep = Sym.fresh "dep" in
  let e =
    Ir.Map
      { mdims = [ Ir.Dfull (Ir.Var n) ];
        midxs = [ idx ];
        mbody =
          Ir.Let (dep, Ir.Prim (Ir.Mul, [ Ir.Var idx; Ir.Ci 2 ]), Ir.Var dep);
        mprov = Prov.none }
  in
  match Code_motion.exp e with
  | Ir.Map _ -> ()
  | e' -> Alcotest.failf "wrongly hoisted: %s" (Pp.exp_to_string e')

let test_code_motion_multifold_olets () =
  (* invariant olet floats out of the MultiFold *)
  let n = Sym.fresh "n" and arr = Sym.fresh "arr" in
  let e =
    multifold [ dfull (Ir.Var n) ] ~init:(zeros Ty.Float [ Ir.Var n ])
      (fun idxs ->
        [ { range = [ Ir.Var n ];
            region = point idxs;
            upd = (fun _ -> f 1.0) } ])
  in
  match e with
  | Ir.MultiFold mf ->
      let inv = Sym.fresh "inv" in
      let e2 = Ir.MultiFold { mf with olets = [ (inv, Ir.Len (Ir.Var arr, 0)) ] } in
      (match Code_motion.exp e2 with
      | Ir.Let (s, Ir.Len _, Ir.MultiFold _) when Sym.equal s inv -> ()
      | e' -> Alcotest.failf "olet not hoisted: %s" (Pp.exp_to_string e'))
  | _ -> assert false

(* ------------------------- fusion ------------------------- *)

let test_vertical_fusion () =
  let d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var d ] in
  let body =
    let_ ~name:"doubled"
      (map1 (dfull (Ir.Var d)) (fun idx -> f 2.0 *! read (in_var x) [ idx ]))
      (fun doubled ->
        fold1 (dfull (Ir.Var d)) ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun idx acc -> acc +! read doubled [ idx ]))
  in
  let prog = program ~name:"p" ~sizes:[ d ] ~inputs:[ x ] body in
  let fused = Fusion.program prog in
  (* the Let-bound Map disappears *)
  let maps = ref 0 in
  Rewrite.iter_exp
    (function Ir.Map _ -> incr maps | _ -> ())
    fused.Ir.body;
  Alcotest.(check int) "map inlined" 0 !maps;
  (* semantics preserved *)
  let dv = 17 in
  let rng = Workloads.Rng.make 3 in
  let xs = Workloads.float_vector rng dv in
  let sizes = [ (d, dv) ] in
  let inputs = [ (x.Ir.iname, Workloads.value_of_vector xs) ] in
  check_value "fusion sound"
    (Eval.eval_program prog ~sizes ~inputs)
    (Eval.eval_program fused ~sizes ~inputs)

let test_fusion_blocked_by_escape () =
  (* whole-array escape (a Slice) blocks fusion *)
  let d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var d; Ir.Var d ] in
  let body =
    let_ ~name:"m"
      (map2d (dfull (Ir.Var d)) (dfull (Ir.Var d)) (fun a b1 ->
           read (in_var x) [ a; b1 ]))
      (fun m -> read (slice_row m (i 0)) [ i 0 ])
  in
  let prog = program ~name:"p" ~sizes:[ d ] ~inputs:[ x ] body in
  let fused = Fusion.program prog in
  let maps = ref 0 in
  Rewrite.iter_exp (function Ir.Map _ -> incr maps | _ -> ()) fused.Ir.body;
  Alcotest.(check int) "map kept" 1 !maps

let test_filter_reduce_fusion () =
  let t = Tpchq6.make () in
  let fused = Fusion.program ~fuse_filters:true t.Tpchq6.prog in
  (* the FlatMap is gone; a conditional fold over n remains *)
  let flatmaps = ref 0 and folds = ref 0 in
  Rewrite.iter_exp
    (function
      | Ir.FlatMap _ -> incr flatmaps
      | Ir.Fold _ -> incr folds
      | _ -> ())
    fused.Ir.body;
  Alcotest.(check int) "flatmap fused away" 0 !flatmaps;
  Alcotest.(check int) "one fold" 1 !folds;
  (* semantics *)
  let n = 300 in
  let sizes = [ (t.Tpchq6.n, n) ] in
  let inputs = Tpchq6.gen_inputs t ~seed:9 ~n in
  check_value "q6 fused"
    (Eval.eval_program t.Tpchq6.prog ~sizes ~inputs)
    (Eval.eval_program fused ~sizes ~inputs);
  (* and the fused program still tiles correctly *)
  let tiled = Strip_mine.program ~tiles:[ (t.Tpchq6.n, 16) ] fused in
  check_value "q6 fused+tiled"
    (Eval.eval_program t.Tpchq6.prog ~sizes ~inputs)
    (Eval.eval_program tiled ~sizes ~inputs)

let test_horizontal_fusion () =
  (* two maps over the same domain merge into one tuple-producing map *)
  let d = size "d" in
  let x = input "x" Ty.float_ [ Ir.Var d ] in
  let body =
    let_ ~name:"doubled"
      (map1 (dfull (Ir.Var d)) (fun idx -> f 2.0 *! read (in_var x) [ idx ]))
      (fun doubled ->
        let_ ~name:"squared"
          (map1 (dfull (Ir.Var d)) (fun idx -> square (read (in_var x) [ idx ])))
          (fun squared ->
            fold1 (dfull (Ir.Var d)) ~init:(f 0.0)
              ~comb:(fun a b -> a +! b)
              (fun idx acc -> acc +! (read doubled [ idx ] *! read squared [ idx ])))
      )
  in
  let prog = program ~name:"p" ~sizes:[ d ] ~inputs:[ x ] body in
  let fused = Fusion.program prog in
  (* after horizontal + vertical fusion no Let-bound Map remains *)
  let lets_of_maps = ref 0 in
  Rewrite.iter_exp
    (function Ir.Let (_, Ir.Map _, _) -> incr lets_of_maps | _ -> ())
    fused.Ir.body;
  Alcotest.(check int) "maps merged and inlined" 0 !lets_of_maps;
  let dv = 13 in
  let rng = Workloads.Rng.make 8 in
  let xs = Workloads.float_vector rng dv in
  let sizes = [ (d, dv) ] in
  let inputs = [ (x.Ir.iname, Workloads.value_of_vector xs) ] in
  check_value "horizontal fusion sound"
    (Eval.eval_program prog ~sizes ~inputs)
    (Eval.eval_program fused ~sizes ~inputs)

let test_fusion_default_keeps_flatmap () =
  let t = Tpchq6.make () in
  let fused = Fusion.program t.Tpchq6.prog in
  let flatmaps = ref 0 in
  Rewrite.iter_exp (function Ir.FlatMap _ -> incr flatmaps | _ -> ()) fused.Ir.body;
  Alcotest.(check int) "flatmap kept by default" 1 !flatmaps

let () =
  Alcotest.run "passes"
    [ ( "simplify",
        [ Alcotest.test_case "constants" `Quick test_simplify_constants;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "soundness" `Quick test_simplify_preserves_semantics
        ] );
      ( "affine",
        [ Alcotest.test_case "basic" `Quick test_affine_basic;
          Alcotest.test_case "rejections" `Quick test_affine_rejects;
          Alcotest.test_case "partition" `Quick test_affine_partition ] );
      ( "alpha",
        [ Alcotest.test_case "equality" `Quick test_alpha_equal ] );
      ( "cse",
        [ Alcotest.test_case "dedupe lets" `Quick test_cse_lets;
          Alcotest.test_case "constants not shared" `Quick
            test_cse_trivial_not_shared ] );
      ( "code motion",
        [ Alcotest.test_case "hoists invariant" `Quick test_code_motion_hoists;
          Alcotest.test_case "keeps dependent" `Quick test_code_motion_blocked;
          Alcotest.test_case "multifold olets" `Quick
            test_code_motion_multifold_olets ] );
      ( "fusion",
        [ Alcotest.test_case "vertical map" `Quick test_vertical_fusion;
          Alcotest.test_case "horizontal map" `Quick test_horizontal_fusion;
          Alcotest.test_case "escape blocks" `Quick test_fusion_blocked_by_escape;
          Alcotest.test_case "filter-reduce" `Quick test_filter_reduce_fusion;
          Alcotest.test_case "default keeps flatmap" `Quick
            test_fusion_default_keeps_flatmap ] ) ]
