(* Parser: concrete-syntax roundtrips.  parse (print p) must be
   alpha-equivalent to p and evaluate identically — for every benchmark,
   at every tiling stage (so the grammar covers tiled constructs: strided
   domains, tile tails, copies with reuse, regions with bounds). *)

let roundtrip_exp e =
  Parser.exp_of_string (Pp.exp_to_string e)

let check_alpha msg a b =
  if not (Alpha.equal a b) then
    Alcotest.failf "%s: not alpha-equal@.left:  %s@.right: %s" msg
      (Pp.exp_to_string a) (Pp.exp_to_string b)

(* -------------------- small expressions -------------------- *)

let test_scalars () =
  List.iter
    (fun src ->
      let e = Parser.exp_of_string src in
      (* printing and reparsing is stable *)
      check_alpha src e (roundtrip_exp e))
    [ "1 + 2 * 3";
      "(1.5 - 2.0) / 4.0";
      "min(1, 2) + max(3, 4)";
      "if 1 < 2 then 3 else 4";
      "not(true) || (false && true)";
      "(1, 2.0, true)._2";
      "toFloat(3) + sqrt(2.0)";
      "-1 + -2";
      "[1, 2, 3](0)";
      "inf";
      "x = 1 + 2\nx * x" ]

let test_operator_precedence () =
  let v e = Eval.eval Sym.Map.empty e in
  Alcotest.(check bool) "mul binds tighter" true
    (Value.equal (Value.I 7) (v (Parser.exp_of_string "1 + 2 * 3")));
  Alcotest.(check bool) "comparison" true
    (Value.equal (Value.B true) (v (Parser.exp_of_string "1 + 1 < 3")));
  Alcotest.(check bool) "and/or" true
    (Value.equal (Value.B true)
       (v (Parser.exp_of_string "true || false && false")))

let test_patterns_parse () =
  List.iter
    (fun src ->
      let e = Parser.exp_of_string src in
      check_alpha src e (roundtrip_exp e))
    [ "map(8){ i => 2 * i }";
      "map(4, 6){ (i, j) => i + j }";
      "fold(9)(0){ i => acc => acc + i }{ (a,b) => a + b }";
      "flatMap(5){ i => if i % 2 == 0 then [i] else [] }";
      "groupByFold(9)(0){ i => (i % 3, acc => acc + 1) }{ (a,b) => a + b }";
      "multiFold(4)(zeros(4)){ i => (<4>, i, acc => acc + 1.0) }{ (a,b) => \
       map(4){ j => a(j) + b(j) } }" ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.exp_of_string src with
      | exception Parser.Parse_error _ -> ()
      | e ->
          Alcotest.failf "expected parse error for %S, got %s" src
            (Pp.exp_to_string e))
    [ "1 +"; "map(3){ i => }"; "unboundvar"; "if 1 then 2"; "(1, 2"; "" ]

(* -------------------- program roundtrips -------------------- *)

let subst_inputs (parsed : Ir.program) (orig : Ir.program) =
  (* align the parsed program's size/input symbols with the original's so
     the bodies can be compared and co-evaluated *)
  let pairs =
    List.map2
      (fun a b -> (a, Ir.Var b))
      (parsed.Ir.size_params @ List.map (fun i -> i.Ir.iname) parsed.Ir.inputs)
      (orig.Ir.size_params @ List.map (fun i -> i.Ir.iname) orig.Ir.inputs)
  in
  let sigma =
    List.fold_left (fun m (a, e) -> Sym.Map.add a e m) Sym.Map.empty pairs
  in
  Ir.subst sigma parsed.Ir.body

let roundtrip_program (p : Ir.program) =
  let text = Pp.program_to_string p in
  let parsed =
    try Parser.program_of_string text
    with Parser.Parse_error m ->
      Alcotest.failf "parse error on printed %s: %s@.%s" p.Ir.pname m text
  in
  Alcotest.(check string) "name" p.Ir.pname parsed.Ir.pname;
  Alcotest.(check int) "sizes" (List.length p.Ir.size_params)
    (List.length parsed.Ir.size_params);
  Alcotest.(check int) "inputs" (List.length p.Ir.inputs)
    (List.length parsed.Ir.inputs);
  (* max sizes survive *)
  Alcotest.(check (list int)) "max sizes"
    (List.map snd p.Ir.max_sizes)
    (List.map snd parsed.Ir.max_sizes);
  check_alpha p.Ir.pname p.Ir.body (subst_inputs parsed p);
  parsed

let test_suite_roundtrip () =
  List.iter
    (fun bench -> ignore (roundtrip_program bench.Suite.prog))
    (Suite.all ())

let test_tiled_roundtrip () =
  (* the hard case: tiled programs exercise Dtiles/Dtail/Copy/regions *)
  List.iter
    (fun bench ->
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      List.iter
        (fun (nm, prog) ->
          ignore
            (roundtrip_program { prog with Ir.pname = bench.Suite.name ^ nm }))
        [ ("_stripped", r.Tiling.stripped_with_copies); ("_tiled", r.Tiling.tiled) ])
    (Suite.all ())

let test_parsed_evaluates () =
  (* parsed tiled kmeans computes the same result *)
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  let parsed = Parser.program_of_string (Pp.program_to_string r.Tiling.tiled) in
  ignore (Validate.check_program parsed);
  let sizes = bench.Suite.test_sizes in
  let inputs = bench.Suite.gen ~sizes ~seed:3 in
  let expected = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
  (* rebind sizes/inputs to the parsed program's own symbols, by position *)
  let sizes' =
    List.map2
      (fun s (_, v) -> (s, v))
      parsed.Ir.size_params
      (List.map
         (fun s ->
           (s, List.assoc s (List.map (fun (k, v) -> (k, v)) sizes)))
         r.Tiling.tiled.Ir.size_params)
  in
  ignore sizes';
  let sizes_parsed =
    List.map2
      (fun sp so ->
        ( sp,
          snd (List.find (fun (k, _) -> Sym.equal k so) sizes) ))
      parsed.Ir.size_params r.Tiling.tiled.Ir.size_params
  in
  let inputs_parsed =
    List.map2
      (fun (ip : Ir.input) (io : Ir.input) ->
        ( ip.Ir.iname,
          snd (List.find (fun (k, _) -> Sym.equal k io.Ir.iname) inputs) ))
      parsed.Ir.inputs r.Tiling.tiled.Ir.inputs
  in
  let actual =
    Eval.eval_program parsed ~sizes:sizes_parsed ~inputs:inputs_parsed
  in
  Alcotest.(check bool) "parsed program evaluates identically" true
    (Value.equal ~eps:1e-6 expected actual)

let test_ppl_file_workflow () =
  (* write-out / read-back, as the export command produces *)
  let t = Gemm.make () in
  let r =
    Tiling.run ~tiles:[ (t.Gemm.m, 32); (t.Gemm.n, 32); (t.Gemm.p, 32) ]
      t.Gemm.prog
  in
  let path = Filename.temp_file "gemm" ".ppl" in
  let oc = open_out path in
  output_string oc (Pp.program_to_string r.Tiling.tiled);
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let parsed = Parser.program_of_string text in
  ignore (Validate.check_program parsed);
  Alcotest.(check string) "name survives" "gemm" parsed.Ir.pname

(* -------------------- hand-written concrete syntax -------------------- *)

let eval_src src ~n ~xs =
  let parsed = Parser.program_of_string src in
  ignore (Validate.check_program parsed);
  let sizes = List.map (fun s -> (s, n)) parsed.Ir.size_params in
  let inputs =
    List.map
      (fun (i : Ir.input) -> (i.Ir.iname, Workloads.value_of_vector xs))
      parsed.Ir.inputs
  in
  Eval.eval_program parsed ~sizes ~inputs

let test_handwritten_average () =
  let src =
    "program average\n\
     size n\n\
     input x : Float(n)\n\
     s = fold(n)(0.0){ i => acc => acc + x(i) }{ (a,b) => a + b }\n\
     s / toFloat(n)"
  in
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let v = eval_src src ~n:4 ~xs in
  Alcotest.(check bool) "average" true
    (Value.equal ~eps:1e-9 (Value.F 2.5) v)

let test_handwritten_saxpy () =
  let src =
    "program scale\n\
     size n\n\
     input x : Float(n)\n\
     map(n){ i => 2.0 * x(i) + 1.0 }"
  in
  let xs = [| 0.0; 1.0; 2.0 |] in
  match eval_src src ~n:3 ~xs with
  | Value.Arr a ->
      List.iteri
        (fun i expect ->
          Alcotest.(check bool)
            (Printf.sprintf "elt %d" i)
            true
            (Value.equal ~eps:1e-9 (Value.F expect) (Ndarray.get a [ i ])))
        [ 1.0; 3.0; 5.0 ]
  | v -> Alcotest.failf "expected array, got %s" (Value.to_string v)

let test_handwritten_filter_sum () =
  let src =
    "program possum\n\
     size n\n\
     input x : Float(n)\n\
     kept = flatMap(n){ i => if x(i) > 0.0 then [x(i)] else [] }\n\
     fold(kept.dim(0))(0.0){ j => acc => acc + kept(j) }{ (a,b) => a + b }"
  in
  let xs = [| 1.0; -2.0; 3.0; -4.0; 5.0 |] in
  let v = eval_src src ~n:5 ~xs in
  Alcotest.(check bool) "positive sum" true
    (Value.equal ~eps:1e-9 (Value.F 9.0) v)

let test_handwritten_tiles_compile () =
  (* hand-written source goes through the whole pipeline *)
  let src =
    "program rowmax\n\
     size n\n\
     input x : Float(n)\n\
     fold(n)(-inf){ i => acc => max(acc, x(i)) }{ (a,b) => max(a, b) }"
  in
  let parsed = Parser.program_of_string src in
  let tiles = List.map (fun s -> (s, 8)) parsed.Ir.size_params in
  let r = Tiling.run ~tiles parsed in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  Hw_check.check_exn d;
  let xs = Array.init 37 (fun i -> float_of_int ((i * 7919) mod 100)) in
  let sizes = List.map (fun s -> (s, 37)) parsed.Ir.size_params in
  let inputs =
    List.map
      (fun (i : Ir.input) -> (i.Ir.iname, Workloads.value_of_vector xs))
      parsed.Ir.inputs
  in
  let v0 = Eval.eval_program parsed ~sizes ~inputs in
  let v1 = Eval.eval_program r.Tiling.tiled ~sizes ~inputs in
  Alcotest.(check bool) "tiled hand-written program equivalent" true
    (Value.equal ~eps:1e-9 v0 v1)

let prop_float_literals_roundtrip =
  QCheck.Test.make ~name:"float literals roundtrip exactly" ~count:500
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      let f = Float.abs f in
      match Parser.exp_of_string (Pp.exp_to_string (Ir.Cf f)) with
      | Ir.Cf g -> g = f
      | _ -> false)

let test_error_line_numbers () =
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (src, line) ->
      match Parser.program_of_string src with
      | exception Parser.Parse_error m ->
          Alcotest.(check bool)
            (Printf.sprintf "%S mentions %s" m line)
            true (contains m line)
      | _ -> Alcotest.failf "expected parse error")
    [ ("program p\nsize n\ninput x : Float(n)\nmap(n){ i => y(i) }", "line 4");
      ("program p\nsize n\ninput x : Quux(n)\nmap(n){ i => x(i) }", "line 3");
      ("program p\nsize n\ninput x : Float(n)\nmap(n){ i => x(i }", "line 4") ]

let test_extended_suite_roundtrip () =
  (* the extension apps roundtrip too — incl. histogram's flattened
     GroupByFold, whose domains reference the pattern's own binders *)
  List.iter
    (fun (bench : Suite.bench) ->
      ignore (roundtrip_program bench.Suite.prog);
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      ignore
        (roundtrip_program
           { r.Tiling.tiled with Ir.pname = bench.Suite.name ^ "_tiled" }))
    (Suite.extended ())

let () =
  Alcotest.run "parser"
    [ ( "expressions",
        [ Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "precedence" `Quick test_operator_precedence;
          Alcotest.test_case "patterns" `Quick test_patterns_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "programs",
        [ Alcotest.test_case "suite roundtrip" `Quick test_suite_roundtrip;
          Alcotest.test_case "extended suite roundtrip" `Quick
            test_extended_suite_roundtrip;
          Alcotest.test_case "tiled roundtrip" `Quick test_tiled_roundtrip;
          Alcotest.test_case "parsed evaluates" `Quick test_parsed_evaluates;
          Alcotest.test_case "ppl file workflow" `Quick test_ppl_file_workflow
        ] );
      ( "hand-written",
        [ Alcotest.test_case "average" `Quick test_handwritten_average;
          Alcotest.test_case "scale" `Quick test_handwritten_saxpy;
          Alcotest.test_case "filter sum" `Quick test_handwritten_filter_sum;
          Alcotest.test_case "tiles and compiles" `Quick
            test_handwritten_tiles_compile;
          Alcotest.test_case "error line numbers" `Quick
            test_error_line_numbers;
          QCheck_alcotest.to_alcotest prop_float_literals_roundtrip ] ) ]
