(* Negative tests: every class of Type_error the validator raises, plus
   the interpreter's dynamic errors.  These pin down the restrictions of
   Section 3 (no nested arrays, 1-D dynamic patterns, typed combines). *)

open Dsl

let rejects ?(msg = "") e =
  match Validate.infer Sym.Map.empty e with
  | exception Validate.Type_error _ -> ()
  | t ->
      Alcotest.failf "expected Type_error %s, inferred %s" msg (Ty.to_string t)

let accepts e = ignore (Validate.infer Sym.Map.empty e)

let test_unbound () = rejects ~msg:"unbound" (Ir.Var (Sym.fresh "ghost"))

let test_projection () =
  rejects ~msg:"proj on scalar" (fst_ (f 1.0));
  rejects ~msg:"proj out of range" (Ir.Proj (pair (f 1.0) (i 2), 5));
  accepts (fst_ (pair (f 1.0) (i 2)))

let test_if () =
  rejects ~msg:"non-bool condition" (if_ (i 1) (i 2) (i 3));
  rejects ~msg:"branch mismatch" (if_ (b true) (i 2) (f 3.0));
  accepts (if_ (b true) (i 2) (i 3))

let test_arith () =
  rejects ~msg:"int + float" (i 1 +! f 2.0);
  rejects ~msg:"mod on floats" (f 1.0 %! f 2.0);
  rejects ~msg:"and on ints" (i 1 &&! i 0);
  rejects ~msg:"sqrt on int" (sqrt_ (i 4));
  rejects ~msg:"toFloat on float" (to_float (f 1.0));
  rejects ~msg:"comparison across types" (i 1 <! f 2.0);
  rejects ~msg:"prim arity" (Ir.Prim (Ir.Add, [ i 1 ]));
  accepts (to_float (i 1) +! f 2.0)

let test_arrays () =
  let arr1 = map1 (dfull (i 3)) (fun x -> x) in
  rejects ~msg:"read arity" (read arr1 [ i 0; i 1 ]);
  rejects ~msg:"read float index" (read arr1 [ f 0.0 ]);
  rejects ~msg:"dim out of range" (len arr1 3);
  rejects ~msg:"slice spec count" (slice arr1 [ Ir.SAll; Ir.SAll ]);
  rejects ~msg:"read on scalar" (read (i 1) [ i 0 ]);
  rejects ~msg:"mixed array literal" (arr [ i 1; f 2.0 ]);
  rejects ~msg:"empty ArrLit" (Ir.ArrLit []);
  accepts (read arr1 [ i 0 ])

let test_copy () =
  let arr1 = map1 (dfull (i 8)) (fun x -> x) in
  rejects ~msg:"reuse < 1"
    (Ir.Copy { csrc = arr1; cdims = [ Ir.Call ]; creuse = 0 });
  rejects ~msg:"spec count"
    (Ir.Copy { csrc = arr1; cdims = [ Ir.Call; Ir.Call ]; creuse = 1 });
  rejects ~msg:"rank-0 copy"
    (Ir.Copy { csrc = arr1; cdims = [ Ir.Cfix (i 0) ]; creuse = 1 });
  accepts (Ir.Copy { csrc = arr1; cdims = [ Ir.Call ]; creuse = 1 })

let test_nested_arrays () =
  rejects ~msg:"map of arrays"
    (map1 (dfull (i 3)) (fun _ -> map1 (dfull (i 2)) (fun x -> x)));
  rejects ~msg:"zeros of array elt"
    (Ir.Zeros (Ty.Array (Ty.float_, 1), [ i 3 ]));
  rejects ~msg:"array literal of arrays"
    (Ir.ArrLit [ map1 (dfull (i 2)) (fun x -> x) ])

let test_fold () =
  rejects ~msg:"update type change"
    (fold1 (dfull (i 4)) ~init:(f 0.0)
       ~comb:(fun a b -> a +! b)
       (fun idx _acc -> idx));
  rejects ~msg:"comb type change"
    (Ir.Fold
       { fdims = [ Ir.Dfull (i 4) ];
         fidxs = [ Sym.fresh "i" ];
         finit = f 0.0;
         facc = Sym.fresh "acc";
         fupd = f 1.0;
         fcomb =
           (let a = Sym.fresh "a" and b = Sym.fresh "b" in
            (* a comparison: Bool, not the Float accumulator type *)
            { Ir.ca = a; cb = b;
              cbody = Ir.Prim (Ir.Lt, [ Ir.Var a; Ir.Var b ]) });
         fprov = Prov.none })

let test_multifold () =
  (* region rank must match range rank *)
  rejects ~msg:"region rank"
    (multifold [ dfull (i 4) ]
       ~init:(zeros Ty.Float [ i 4; i 2 ])
       ~comb:(fun a _ -> a)
       (fun idxs ->
         [ { range = [ i 4; i 2 ]; region = point idxs; upd = (fun acc -> acc) } ]));
  (* output count must match init tuple *)
  rejects ~msg:"output count"
    (Ir.MultiFold
       { odims = [ Ir.Dfull (i 4) ];
         oidxs = [ Sym.fresh "i" ];
         oinit = tup [ zeros Ty.Float [ i 4 ]; zeros Ty.Float [ i 4 ]; zeros Ty.Float [ i 4 ] ];
         olets = [];
         oouts =
           [ { orange = [ i 4 ]; oregion = [ (i 0, i 1, Some 1) ];
               oacc = Sym.fresh "acc"; oupd = f 0.0 } ];
         ocomb = None;
         oprov = Prov.none });
  (* no outputs at all *)
  rejects ~msg:"no outputs"
    (Ir.MultiFold
       { odims = [ Ir.Dfull (i 4) ];
         oidxs = [ Sym.fresh "i" ];
         oinit = f 0.0;
         olets = [];
         oouts = [];
         ocomb = None;
         oprov = Prov.none })

let test_flatmap () =
  rejects ~msg:"scalar body"
    (Ir.FlatMap
       { fmdim = Ir.Dfull (i 3); fmidx = Sym.fresh "i"; fmbody = f 1.0;
         fmprov = Prov.none })

let test_groupbyfold () =
  (* non-scalar bucket *)
  rejects ~msg:"array bucket"
    (Ir.GroupByFold
       { gdims = [ Ir.Dfull (i 3) ];
         gidxs = [ Sym.fresh "i" ];
         ginit = zeros Ty.Float [ i 2 ];
         glets = [];
         gkey = i 0;
         gacc = Sym.fresh "acc";
         gupd = zeros Ty.Float [ i 2 ];
         gcomb =
           (let a = Sym.fresh "a" and b = Sym.fresh "b" in
            { Ir.ca = a; cb = b; cbody = Ir.Var a });
         gprov = Prov.none })

let test_domains () =
  (* Dtail with unbound outer *)
  rejects ~msg:"unbound Dtail outer"
    (Ir.Map
       { mdims = [ Ir.Dtail { total = i 8; tile = 4; outer = Sym.fresh "ghost" } ];
         midxs = [ Sym.fresh "i" ];
         mbody = f 1.0;
         mprov = Prov.none });
  (* index/domain count mismatch *)
  rejects ~msg:"idx count"
    (Ir.Map
       { mdims = [ Ir.Dfull (i 3); Ir.Dfull (i 4) ];
         midxs = [ Sym.fresh "i" ];
         mbody = f 1.0;
         mprov = Prov.none });
  (* float domain size *)
  rejects ~msg:"float domain" (map1 (dfull (f 3.0)) (fun _ -> f 1.0))

let test_program_checks () =
  (* input with non-int shape *)
  let n = Dsl.size "n" in
  let bad = { Ir.iname = Sym.fresh "x"; ielt = Ty.float_; ishape = [ f 3.0 ] } in
  let p =
    Dsl.program ~name:"bad" ~sizes:[ n ] ~inputs:[ bad ] (f 1.0)
  in
  (match Validate.check_program p with
  | exception Validate.Type_error _ -> ()
  | _ -> Alcotest.fail "expected shape rejection");
  (* input with array element type *)
  let bad2 =
    { Ir.iname = Sym.fresh "x"; ielt = Ty.Array (Ty.float_, 1);
      ishape = [ Ir.Var n ] }
  in
  let p2 = Dsl.program ~name:"bad2" ~sizes:[ n ] ~inputs:[ bad2 ] (f 1.0) in
  match Validate.check_program p2 with
  | exception Validate.Type_error _ -> ()
  | _ -> Alcotest.fail "expected element type rejection"

(* ---------------- dynamic (interpreter) errors ---------------- *)

let eval_rejects ?(msg = "") thunk =
  match thunk () with
  | exception Eval.Eval_error _ -> ()
  | exception Ndarray.Shape_error _ -> ()
  | v -> Alcotest.failf "expected runtime error %s, got %s" msg (Value.to_string v)

let test_eval_errors () =
  eval_rejects ~msg:"unbound" (fun () ->
      Eval.eval Sym.Map.empty (Ir.Var (Sym.fresh "ghost")));
  eval_rejects ~msg:"type confusion" (fun () ->
      Eval.eval Sym.Map.empty (Ir.Prim (Ir.Add, [ i 1; f 2.0 ])));
  eval_rejects ~msg:"out of bounds" (fun () ->
      Eval.eval Sym.Map.empty (read (map1 (dfull (i 2)) (fun x -> x)) [ i 7 ]));
  (* missing size / missing input *)
  let n = Dsl.size "n" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n ] in
  let p = Dsl.program ~name:"p" ~sizes:[ n ] ~inputs:[ x ] (f 1.0) in
  eval_rejects ~msg:"missing size" (fun () ->
      Eval.eval_program p ~sizes:[] ~inputs:[]);
  eval_rejects ~msg:"missing input" (fun () ->
      Eval.eval_program p ~sizes:[ (n, 3) ] ~inputs:[])

let () =
  Alcotest.run "validate_errors"
    [ ( "static",
        [ Alcotest.test_case "unbound" `Quick test_unbound;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "if" `Quick test_if;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "nested arrays" `Quick test_nested_arrays;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "multifold" `Quick test_multifold;
          Alcotest.test_case "flatmap" `Quick test_flatmap;
          Alcotest.test_case "groupbyfold" `Quick test_groupbyfold;
          Alcotest.test_case "domains" `Quick test_domains;
          Alcotest.test_case "program inputs" `Quick test_program_checks ] );
      ( "dynamic",
        [ Alcotest.test_case "interpreter errors" `Quick test_eval_errors ] ) ]
