(* Cross-cutting coverage: DSL-operator semantics as properties, slice
   printing/parsing/evaluation, trip evaluation, machine conversions,
   design printing, and the size-scaling study. *)

open Dsl

let value_eq = Value.equal ~eps:1e-9

(* ---------------- DSL operators match OCaml semantics ---------------- *)

let prop_float_ops =
  QCheck.Test.make ~name:"float operators match OCaml" ~count:300
    QCheck.(pair (float_range (-100.) 100.) (float_range (-100.) 100.))
    (fun (a, b) ->
      let e op = Eval.eval Sym.Map.empty (op (f a) (f b)) in
      value_eq (e ( +! )) (Value.F (a +. b))
      && value_eq (e ( -! )) (Value.F (a -. b))
      && value_eq (e ( *! )) (Value.F (a *. b))
      && value_eq (e min_) (Value.F (Float.min a b))
      && value_eq (e max_) (Value.F (Float.max a b))
      && value_eq (e ( <! )) (Value.B (a < b))
      && value_eq (e ( >=! )) (Value.B (a >= b)))

let prop_int_ops =
  QCheck.Test.make ~name:"int operators match OCaml" ~count:300
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 100))
    (fun (a, b) ->
      let e op = Eval.eval Sym.Map.empty (op (i a) (i b)) in
      value_eq (e ( +! )) (Value.I (a + b))
      && value_eq (e ( /! )) (Value.I (a / b))
      && value_eq (e ( %! )) (Value.I (a mod b))
      && value_eq (e ( =! )) (Value.B (a = b)))

let prop_unary_ops =
  QCheck.Test.make ~name:"unary operators match OCaml" ~count:200
    QCheck.(float_range 0.01 100.)
    (fun a ->
      let e op = Eval.eval Sym.Map.empty (op (f a)) in
      value_eq (e sqrt_) (Value.F (sqrt a))
      && value_eq (e (fun x -> Ir.Prim (Ir.Exp, [ x ]))) (Value.F (exp a))
      && value_eq (e (fun x -> Ir.Prim (Ir.Log, [ x ]))) (Value.F (log a))
      && value_eq (e neg) (Value.F (-.a))
      && value_eq (e abs_) (Value.F (Float.abs a)))

(* ---------------- slices ---------------- *)

let test_slice_eval_and_roundtrip () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n; Ir.Var n ] in
  (* trace of a matrix via row slices *)
  let body =
    fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun idx acc -> acc +! read (slice_row (in_var x) idx) [ idx ])
  in
  let prog = program ~name:"trace" ~sizes:[ n ] ~inputs:[ x ] body in
  ignore (Validate.check_program prog);
  (* parse(print) roundtrips the slice *)
  let parsed = Parser.program_of_string (Pp.program_to_string prog) in
  ignore (Validate.check_program parsed);
  (* evaluates to the trace *)
  let nv = 5 in
  let m = Workloads.float_matrix (Workloads.Rng.make 3) nv nv in
  let expected = ref 0.0 in
  for k = 0 to nv - 1 do
    expected := !expected +. m.(k).(k)
  done;
  let v =
    Eval.eval_program prog ~sizes:[ (n, nv) ]
      ~inputs:[ (x.Ir.iname, Workloads.value_of_matrix m) ]
  in
  Alcotest.(check bool) "trace" true (Value.equal ~eps:1e-9 (Value.F !expected) v)

(* ---------------- trips and machine ---------------- *)

let test_trip_eval () =
  let n = Dsl.size "n" in
  let sizes = [ (n, 1000) ] in
  let t = Hw.Tceil_div (Hw.Tsize n, 64) in
  Alcotest.(check int) "ceil div" 16 (int_of_float (Hw.trip_eval sizes t));
  let avg = Hw.Tavg_tail { total = Hw.Tsize n; tile = 64 } in
  Alcotest.(check bool) "avg tail" true
    (Float.abs (Hw.trip_eval sizes avg -. (1000.0 /. 16.0)) < 1e-9);
  let prod = Hw.trip_product [ Hw.Tconst 3.0; Hw.Tsize n; Hw.Tconst 2.0 ] in
  Alcotest.(check int) "product" 6000 (int_of_float (Hw.trip_eval sizes prod));
  Alcotest.(check bool) "scale" true
    (Float.abs (Hw.trip_eval sizes (Hw.Tscale (0.05, Hw.Tsize n)) -. 50.0)
    < 1e-9)

let test_machine_seconds () =
  let m = Machine.default in
  (* 150 MHz: 150e6 cycles = 1 second *)
  Alcotest.(check bool) "seconds" true
    (Float.abs (Machine.seconds m 150.0e6 -. 1.0) < 1e-9)

(* ---------------- design rendering smoke ---------------- *)

let test_design_render () =
  List.iter
    (fun bench ->
      let d = Experiments.design_of Experiments.Tiled_meta bench in
      let s = Hw_pp.design_to_string d in
      Alcotest.(check bool)
        (bench.Suite.name ^ " renders")
        true
        (String.length s > 200))
    (Suite.all ())

(* ---------------- scaling study ---------------- *)

let test_scaling_shape_stable () =
  let rows = Experiments.scaling (Suite.all ()) in
  Alcotest.(check int) "three scales" 3 (List.length rows);
  let get variant name =
    let r = List.find (fun r -> r.Experiments.variant = variant) rows in
    List.assoc name r.Experiments.speedups
  in
  (* outerprod stays flat at every scale *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.variant ^ ": outerprod stays flat")
        true
        (List.assoc "outerprod" r.Experiments.speedups < 3.0))
    rows;
  (* kmeans keeps its dramatic win at and above the default scale ... *)
  Alcotest.(check bool) "kmeans x1 dramatic" true (get "sizes x1" "kmeans" > 8.0);
  Alcotest.(check bool) "kmeans x2 dramatic" true (get "sizes x2" "kmeans" > 4.0);
  (* ... but at half scale the centroids working set (k*d words) fits the
     baseline's burst-locality window and the benefit crosses over to ~1x —
     the inverse of the paper's "small enough to be held in on-chip memory"
     condition.  The crossover itself is part of the reproduced shape. *)
  Alcotest.(check bool) "kmeans x0.5 crossover" true
    (get "sizes x0.5" "kmeans" < 2.0)

(* ---------------- workload generators ---------------- *)

let test_rng_deterministic () =
  let seq seed = Array.init 64 (fun _ -> Workloads.Rng.float (Workloads.Rng.make seed) 1.0) in
  Alcotest.(check bool) "same seed, same stream" true (seq 42 = seq 42);
  let a = Workloads.Rng.make 1 and b = Workloads.Rng.make 2 in
  let sa = Array.init 64 (fun _ -> Workloads.Rng.float a 1.0) in
  let sb = Array.init 64 (fun _ -> Workloads.Rng.float b 1.0) in
  Alcotest.(check bool) "different seeds differ" false (sa = sb)

let test_rng_ranges () =
  let rng = Workloads.Rng.make 7 in
  for _ = 1 to 1000 do
    let f = Workloads.Rng.float rng 3.0 in
    if f < 0.0 || f >= 3.0 then Alcotest.failf "float out of range: %f" f;
    let i = Workloads.Rng.int rng 10 in
    if i < 0 || i >= 10 then Alcotest.failf "int out of range: %d" i
  done

let test_q6_selectivity () =
  let li = Workloads.lineitems (Workloads.Rng.make 11) 100_000 in
  let s = Workloads.q6_selectivity li in
  Alcotest.(check bool)
    (Printf.sprintf "selectivity ~2%% (got %.4f)" s)
    true
    (s > 0.005 && s < 0.05)

let test_clustered_points_shape () =
  let pts =
    Workloads.clustered_points (Workloads.Rng.make 5) ~n:200 ~d:4 ~k:8
  in
  Alcotest.(check int) "n points" 200 (Array.length pts);
  Array.iter (fun p -> Alcotest.(check int) "dim" 4 (Array.length p)) pts

let () =
  Alcotest.run "misc"
    [ ( "operators",
        [ QCheck_alcotest.to_alcotest prop_float_ops;
          QCheck_alcotest.to_alcotest prop_int_ops;
          QCheck_alcotest.to_alcotest prop_unary_ops ] );
      ( "slices",
        [ Alcotest.test_case "trace via slices" `Quick
            test_slice_eval_and_roundtrip ] );
      ( "trips",
        [ Alcotest.test_case "trip eval" `Quick test_trip_eval;
          Alcotest.test_case "machine seconds" `Quick test_machine_seconds ] );
      ( "rendering",
        [ Alcotest.test_case "designs" `Quick test_design_render ] );
      ( "scaling",
        [ Alcotest.test_case "fig7 shape across sizes" `Quick
            test_scaling_shape_stable ] );
      ( "workloads",
        [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
          Alcotest.test_case "q6 selectivity" `Quick test_q6_selectivity;
          Alcotest.test_case "clustered points" `Quick
            test_clustered_points_shape ] ) ]
