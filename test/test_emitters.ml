(* Emitters: the MaxJ-like kernels and DOT diagrams carry the expected
   template vocabulary and structure per benchmark. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let design name = Experiments.design_of Experiments.Tiled_meta
    (Suite.find (Suite.all ()) name)

let check_all kernel needles =
  List.iter
    (fun n ->
      if not (contains kernel n) then
        Alcotest.failf "kernel missing %S" n)
    needles

let test_maxj_gemm () =
  let k = Maxj.emit (design "gemm") in
  check_all k
    [ "class GemmKernel extends Kernel";
      "control.metapipeline";
      "mem.tileLoad(\"x\"";
      "mem.tileLoad(\"y\"";
      "mem.tileStore(\"result\"";
      "compute.reductionTree";
      "// dataflow:";
      "mem.allocDouble" ]

let test_maxj_tpchq6 () =
  let k = Maxj.emit (design "tpchq6") in
  check_all k
    [ "compute.parallelFIFO"; "mem.allocFIFO"; "mem.tileLoad(\"shipdate\"" ]

let test_maxj_gda_cache () =
  let k = Maxj.emit (design "gda") in
  check_all k [ "mem.allocCache"; "CACHED_READ" ]

let test_maxj_baseline_streams () =
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let k = Maxj.emit (Experiments.design_of Experiments.Baseline bench) in
  check_all k [ ".dramStream(\"points\""; ".dramStream(\"centroids\"" ];
  Alcotest.(check bool) "no tile loads in baseline" false
    (contains k "mem.tileLoad")

let test_maxj_dataflow_expression () =
  (* the gemm pipe's dataflow comment shows the multiply-accumulate *)
  let k = Maxj.emit (design "gemm") in
  Alcotest.(check bool) "mac visible" true
    (contains k "xTile" && contains k "yTile" && contains k "* yTile"
    || contains k "* (yTile")

let test_dot_structure () =
  let d = Dot.emit (design "kmeans") in
  check_all d
    [ "digraph kmeans";
      "metapipeline";
      "cylinder";  (* DRAM nodes *)
      "double-buffer";
      "-> " ]

let test_dot_parallel_cluster () =
  let d = Dot.emit (design "kmeans") in
  Alcotest.(check bool) "parallel cluster" true (contains d "(parallel)")

let test_hwpp_lists_all_memories () =
  let dsg = design "kmeans" in
  let s = Hw_pp.design_to_string dsg in
  List.iter
    (fun m ->
      if not (contains s m.Hw.mem_name) then
        Alcotest.failf "missing memory %s" m.Hw.mem_name)
    dsg.Hw.mems

let () =
  Alcotest.run "emitters"
    [ ( "maxj",
        [ Alcotest.test_case "gemm kernel" `Quick test_maxj_gemm;
          Alcotest.test_case "tpchq6 fifo" `Quick test_maxj_tpchq6;
          Alcotest.test_case "gda cache" `Quick test_maxj_gda_cache;
          Alcotest.test_case "baseline streams" `Quick
            test_maxj_baseline_streams;
          Alcotest.test_case "dataflow expression" `Quick
            test_maxj_dataflow_expression ] );
      ( "dot",
        [ Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "parallel cluster" `Quick test_dot_parallel_cluster
        ] );
      ( "hw_pp",
        [ Alcotest.test_case "memories listed" `Quick
            test_hwpp_lists_all_memories ] ) ]
