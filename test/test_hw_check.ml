(* Hardware-design validation: every generated design is well-formed, and
   hand-built malformed designs are caught with the right finding. *)

let pipe ?(uses = []) ?(defines = []) name =
  Hw.Pipe
    { name;
      trips = [ Hw.Tconst 16.0 ];
      template = Hw.Vector;
      par = 4;
      depth = 4;
      ii = 1;
      ops = { Hw.flops = 1; int_ops = 0; cmp_ops = 0; mem_reads = 1; mem_writes = 1 };
      body = None;
      dram = [];
      uses;
      defines;
      prov = Prov.none }

let mem ?(kind = Hw.Buffer) name =
  { Hw.mem_name = name; kind; width_bits = 32; depth = 64; banks = 1;
    readers = 1; writers = 1; mem_prov = Prov.none }

let design ?(mems = []) top =
  { Hw.design_name = "t"; mems; top; par_factor = 4 }

let problems d = List.map (fun f -> f.Diagnostic.message) (Hw_check.check d)

let has_problem d needle =
  List.exists
    (fun p ->
      let nl = String.length needle and pl = String.length p in
      let rec go i = i + nl <= pl && (String.sub p i nl = needle || go (i + 1)) in
      go 0)
    (problems d)

(* ---------------- every generated design is well-formed ---------------- *)

let test_generated_designs_clean () =
  List.iter
    (fun (b : Suite.bench) ->
      List.iter
        (fun cfg ->
          let d = Experiments.design_of cfg b in
          match Hw_check.check d with
          | [] -> ()
          | fs ->
              Alcotest.failf "%s/%s: %s" b.Suite.name
                (Experiments.config_name cfg)
                (String.concat "; "
                   (List.map (Format.asprintf "%a" Diagnostic.pp) fs)))
        [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ])
    (Suite.extended ())

(* ---------------- malformed designs are caught ---------------- *)

let test_dangling_reference () =
  let d = design ~mems:[] (pipe ~defines:[ "ghost" ] "p") in
  Alcotest.(check bool) "dangling write" true
    (has_problem d "written but not declared")

let test_unused_memory () =
  let d = design ~mems:[ mem "orphan" ] (pipe "p") in
  Alcotest.(check bool) "unused memory" true
    (has_problem d "never referenced")

let test_no_producer () =
  let d = design ~mems:[ mem "buf" ] (pipe ~uses:[ "buf" ] "p") in
  Alcotest.(check bool) "no producer" true (has_problem d "never written");
  (* the same shape is fine for a cache (demand-filled from DRAM) *)
  let d =
    design ~mems:[ mem ~kind:Hw.Cache "c" ] (pipe ~uses:[ "c" ] "p")
  in
  Alcotest.(check bool) "cache exempt" false (has_problem d "never written")

let test_double_buffer_outside_meta () =
  let m = mem ~kind:Hw.Double_buffer "db" in
  let seq =
    Hw.Seq
      { name = "top";
        children = [ pipe ~defines:[ "db" ] "w"; pipe ~uses:[ "db" ] "r" ]; prov = Prov.none }
  in
  Alcotest.(check bool) "db outside metapipeline" true
    (has_problem (design ~mems:[ m ] seq) "outside metapipelines");
  (* inside a metapipelined loop it is legal *)
  let ml =
    Hw.Loop
      { name = "l";
        trips = [ Hw.Tconst 4.0 ];
        meta = true;
        stages = [ pipe ~defines:[ "db" ] "w"; pipe ~uses:[ "db" ] "r" ]; prov = Prov.none }
  in
  Alcotest.(check bool) "db inside metapipeline ok" false
    (has_problem (design ~mems:[ m ] ml) "outside metapipelines")

let test_fifo_needs_both_ends () =
  let m = mem ~kind:Hw.Fifo "q" in
  let d = design ~mems:[ m ] (pipe ~defines:[ "q" ] "w") in
  (* written but never read -> flagged (generic rule covers the FIFO) *)
  Alcotest.(check bool) "consumerless fifo flagged" true
    (has_problem d "never read")

let test_bad_fields () =
  let bad_pipe =
    Hw.Pipe
      { name = "p";
        trips = [];
        template = Hw.Vector;
        par = 0;
        depth = -1;
        ii = 0;
        ops = { Hw.flops = 0; int_ops = 0; cmp_ops = 0; mem_reads = 0; mem_writes = 0 };
        body = None;
        dram = [];
        uses = [];
        defines = [];
        prov = Prov.none }
  in
  let d = design bad_pipe in
  Alcotest.(check bool) "par" true (has_problem d "par < 1");
  Alcotest.(check bool) "ii" true (has_problem d "ii < 1");
  Alcotest.(check bool) "depth" true (has_problem d "negative depth");
  Alcotest.(check bool) "trips" true (has_problem d "no iteration space")

let test_duplicate_names () =
  let d =
    design
      ~mems:[ mem "m"; mem "m" ]
      (Hw.Seq { name = "top"; children = [ pipe "p"; pipe "p" ]; prov = Prov.none })
  in
  Alcotest.(check bool) "dup memory" true (has_problem d "duplicate memory name");
  Alcotest.(check bool) "dup controller" true
    (has_problem d "duplicate controller name")

let test_paths_and_codes () =
  (* diagnostics carry stable codes and the full controller path *)
  let bad_pipe = pipe ~defines:[ "ghost" ] "p" in
  let d =
    design
      (Hw.Seq
         { name = "top";
           children =
             [ Hw.Loop
                 { name = "l";
                   trips = [ Hw.Tconst 4.0 ];
                   meta = false;
                   stages = [ bad_pipe ];
                   prov = Prov.none } ]; prov = Prov.none })
  in
  let diag =
    List.find (fun f -> f.Diagnostic.code = "HW004") (Hw_check.check d)
  in
  Alcotest.(check (list string)) "path to the referencing pipe"
    [ "top"; "l"; "p" ] diag.Diagnostic.path;
  Alcotest.(check string) "where" "ghost" diag.Diagnostic.where;
  Alcotest.(check bool) "error severity" true
    (diag.Diagnostic.severity = Diagnostic.Error)

let test_check_exn () =
  let ok = design (pipe "p") in
  Hw_check.check_exn ok;
  let bad = design ~mems:[ mem "orphan" ] (pipe "p") in
  Alcotest.(check bool) "raises" true
    (match Hw_check.check_exn bad with
    | () -> false
    | exception Failure _ -> true)

let () =
  Alcotest.run "hw_check"
    [ ( "generated",
        [ Alcotest.test_case "all designs well-formed" `Quick
            test_generated_designs_clean ] );
      ( "malformed",
        [ Alcotest.test_case "dangling reference" `Quick test_dangling_reference;
          Alcotest.test_case "unused memory" `Quick test_unused_memory;
          Alcotest.test_case "no producer" `Quick test_no_producer;
          Alcotest.test_case "double buffer outside meta" `Quick
            test_double_buffer_outside_meta;
          Alcotest.test_case "consumerless fifo" `Quick test_fifo_needs_both_ends;
          Alcotest.test_case "bad pipe fields" `Quick test_bad_fields;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
          Alcotest.test_case "paths and codes" `Quick test_paths_and_codes;
          Alcotest.test_case "check_exn" `Quick test_check_exn ] ) ]
