(* The collections front end (Fig. 3): programs written against the
   surface layer must equal both plain-OCaml references and the
   hand-written fused PPL programs of lib/apps — including k-means, the
   paper's Fig. 3 / Fig. 4 pair. *)

open Collections

let value_eq = Value.equal ~eps:1e-5

let check_value msg expected actual =
  if not (value_eq expected actual) then
    Alcotest.failf "%s:@.expected %s@.got %s" msg (Value.to_string expected)
      (Value.to_string actual)

(* ---------------- small algebra ---------------- *)

let test_map_zip_sum () =
  let n = Dsl.size "n" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n ] in
  let y = Dsl.input "y" Ty.float_ [ Ir.Var n ] in
  (* sum (zipWith (+) (map double x) y) *)
  let body =
    vsum
      (vzip
         (fun a b -> Dsl.( +! ) a b)
         (vmap (fun a -> Dsl.( *! ) (Dsl.f 2.0) a) (vec_of_input x))
         (vec_of_input y))
  in
  let prog = Dsl.program ~name:"mzs" ~sizes:[ n ] ~inputs:[ x; y ] body in
  let nv = 17 in
  let rng = Workloads.Rng.make 2 in
  let xs = Workloads.float_vector rng nv and ys = Workloads.float_vector rng nv in
  let expected =
    Array.to_list xs |> List.mapi (fun i v -> (2.0 *. v) +. ys.(i))
    |> List.fold_left ( +. ) 0.0
  in
  let v =
    Eval.eval_program prog ~sizes:[ (n, nv) ]
      ~inputs:
        [ (x.Ir.iname, Workloads.value_of_vector xs);
          (y.Ir.iname, Workloads.value_of_vector ys) ]
  in
  check_value "map/zip/sum" (Value.F expected) v

let test_fusion_by_construction () =
  (* pull-array composition emits ONE pattern: no Let-bound intermediate *)
  let n = Dsl.size "n" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n ] in
  let body =
    vsum (vmap (fun a -> Dsl.( *! ) a a) (vmap (fun a -> Dsl.( +! ) a (Dsl.f 1.0)) (vec_of_input x)))
  in
  let patterns = ref 0 in
  Rewrite.iter_exp
    (function
      | Ir.Map _ | Ir.Fold _ | Ir.MultiFold _ -> incr patterns
      | _ -> ())
    body;
  Alcotest.(check int) "single fused fold" 1 !patterns

let test_min_with_index_ties () =
  (* ties resolve to the later index, like the Fig. 4 fold *)
  let v = vec_tabulate (Dsl.i 4) (fun _ -> Dsl.f 3.0) in
  let result = Eval.eval Sym.Map.empty (min_with_index v) in
  check_value "tie goes to last" (Value.Tup [ Value.F 3.0; Value.I 3 ]) result

let test_dot_matches_gemm_cell () =
  let t = Gemm.make () in
  let x = mat_of_input t.Gemm.x and y = mat_of_input t.Gemm.y in
  (* one output cell of gemm via the front end *)
  let body = dot (row x (Dsl.i 0)) (col y (Dsl.i 0)) in
  let prog =
    Dsl.program ~name:"cell"
      ~sizes:[ t.Gemm.m; t.Gemm.n; t.Gemm.p ]
      ~inputs:[ t.Gemm.x; t.Gemm.y ] body
  in
  let m = 3 and n = 4 and p = 5 in
  let xs, ys = Gemm.raw_inputs ~seed:3 ~m ~n ~p in
  let expected = (Gemm.reference xs ys).(0).(0) in
  let v =
    Eval.eval_program prog
      ~sizes:[ (t.Gemm.m, m); (t.Gemm.n, n); (t.Gemm.p, p) ]
      ~inputs:(Gemm.gen_inputs t ~seed:3 ~m ~n ~p)
  in
  check_value "dot = gemm cell" (Value.F expected) v

let test_sum_rows_matches_app () =
  let t = Sumrows.make () in
  let body = materialize (sum_rows (mat_of_input t.Sumrows.x)) in
  ignore body;
  (* sum_rows emits the same fused MultiFold shape as the app... compare
     values instead of syntax *)
  let front_prog =
    Dsl.program ~name:"front_sumrows" ~sizes:[ t.Sumrows.m; t.Sumrows.n ]
      ~inputs:[ t.Sumrows.x ]
      (materialize (sum_rows (mat_of_input t.Sumrows.x)))
  in
  let m = 6 and n = 9 in
  let sizes = [ (t.Sumrows.m, m); (t.Sumrows.n, n) ] in
  let inputs = Sumrows.gen_inputs t ~seed:5 ~m ~n in
  check_value "front sumrows = app sumrows"
    (Eval.eval_program t.Sumrows.prog ~sizes ~inputs)
    (Eval.eval_program front_prog ~sizes ~inputs)

(* ---------------- k-means: Fig. 3 via the front end ---------------- *)

(* Transcription of Fig. 3 against the collections layer. *)
let kmeans_front () =
  let n = Dsl.size "n" and k = Dsl.size "k" and d = Dsl.size "d" in
  let points_in = Dsl.input "points" Ty.float_ [ Ir.Var n; Ir.Var d ] in
  let centroids_in = Dsl.input "centroids" Ty.float_ [ Ir.Var k; Ir.Var d ] in
  let points = mat_of_input points_in in
  let centroids = mat_of_input centroids_in in
  (* Assign current point to the closest centroid (Fig. 3 lines 8-14) *)
  let closest pt1 =
    Dsl.snd_
      (min_with_index
         (map_rows centroids (fun _ pt2 ->
              vsum (vzip (fun a b -> Dsl.square (Dsl.( -! ) a b)) pt1 pt2))))
  in
  (* group points by closest centroid, summing and counting *)
  let sums_counts =
    group_by_vector_sum ~n:(Ir.Var n) ~k:(Ir.Var k) ~d:(Ir.Var d)
      ~key:(fun idx -> closest (row points idx))
      ~vec_of:(fun idx -> row points idx)
  in
  (* average (Fig. 3 lines 17-21) *)
  let body =
    Dsl.let_ ~name:"sums_counts" sums_counts (fun sc ->
        Dsl.map2d (Dsl.dfull (Ir.Var k)) (Dsl.dfull (Ir.Var d)) (fun ci cj ->
            Dsl.( /! )
              (Dsl.read (Dsl.fst_ sc) [ ci; cj ])
              (Dsl.read (Dsl.snd_ sc) [ ci ])))
  in
  ( Dsl.program ~name:"kmeans_front" ~sizes:[ n; k; d ]
      ~max_sizes:[ (n, 1 lsl 20); (k, 512); (d, 32) ]
      ~inputs:[ points_in; centroids_in ] body,
    n, k, d, points_in, centroids_in )

let test_kmeans_front_matches_fig4 () =
  let prog, n, k, d, points_in, centroids_in = kmeans_front () in
  ignore (Validate.check_program prog);
  let t = Kmeans.make () in
  let nv = 40 and kv = 5 and dv = 3 in
  let points, centroids = Kmeans.raw_inputs ~seed:12 ~n:nv ~k:kv ~d:dv in
  let front_v =
    Eval.eval_program prog
      ~sizes:[ (n, nv); (k, kv); (d, dv) ]
      ~inputs:
        [ (points_in.Ir.iname, Workloads.value_of_matrix points);
          (centroids_in.Ir.iname, Workloads.value_of_matrix centroids) ]
  in
  (* against the plain reference *)
  check_value "front kmeans = reference"
    (Workloads.value_of_matrix (Kmeans.reference ~points ~centroids))
    front_v;
  (* and against the hand-written Fig. 4 program *)
  let fig4_v =
    Eval.eval_program t.Kmeans.prog
      ~sizes:[ (t.Kmeans.n, nv); (t.Kmeans.k, kv); (t.Kmeans.d, dv) ]
      ~inputs:(Kmeans.gen_inputs t ~seed:12 ~n:nv ~k:kv ~d:dv)
  in
  check_value "front kmeans = Fig. 4 kmeans" fig4_v front_v

let test_kmeans_front_tiles () =
  (* the front-end program goes through the same tiling pipeline *)
  let prog, n, k, d, points_in, centroids_in = kmeans_front () in
  let r = Tiling.run ~tiles:[ (n, 8); (k, 2) ] prog in
  let nv = 30 and kv = 4 and dv = 3 in
  let points, centroids = Kmeans.raw_inputs ~seed:7 ~n:nv ~k:kv ~d:dv in
  let sizes = [ (n, nv); (k, kv); (d, dv) ] in
  let inputs =
    [ (points_in.Ir.iname, Workloads.value_of_matrix points);
      (centroids_in.Ir.iname, Workloads.value_of_matrix centroids) ]
  in
  check_value "front kmeans tiled"
    (Eval.eval_program prog ~sizes ~inputs)
    (Eval.eval_program r.Tiling.tiled ~sizes ~inputs);
  (* the split + interchange of Fig. 5b fires on the front-end version too *)
  let found = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Let
          ( _,
            Ir.Fold { fdims = [ Ir.Dtiles _ ]; _ },
            Ir.MultiFold
              { olets = [ (_, (Ir.Read _ | Ir.Proj (Ir.Read _, _))) ]; _ } ) ->
          found := true
      | _ -> ())
    r.Tiling.tiled.Ir.body;
  Alcotest.(check bool) "fig 5b structure" true !found

let test_filter_map_front () =
  let n = Dsl.size "n" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n ] in
  let xs = vec_of_input x in
  let body =
    filter_map ~n:(Ir.Var n)
      ~pred:(fun idx -> Dsl.( >! ) (vget xs idx) (Dsl.f 0.5))
      ~f:(fun idx -> vget xs idx)
  in
  let prog = Dsl.program ~name:"fm" ~sizes:[ n ] ~inputs:[ x ] body in
  let nv = 20 in
  let rng = Workloads.Rng.make 4 in
  let data = Workloads.float_vector rng nv in
  let expected =
    Value.of_float_list (List.filter (fun v -> v > 0.5) (Array.to_list data))
  in
  check_value "filter"
    expected
    (Eval.eval_program prog ~sizes:[ (n, nv) ]
       ~inputs:[ (x.Ir.iname, Workloads.value_of_vector data) ])

let test_group_by_fold_front () =
  let n = Dsl.size "n" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n ] in
  let xs = vec_of_input x in
  let body =
    group_by_fold ~n:(Ir.Var n)
      ~key:(fun idx -> Dsl.( /! ) (Dsl.to_int (vget xs idx)) (Dsl.i 10))
      ~init:(Dsl.i 0)
      ~upd:(fun acc _ -> Dsl.( +! ) acc (Dsl.i 1))
      ~comb:(fun a b -> Dsl.( +! ) a b)
  in
  let prog = Dsl.program ~name:"hist" ~sizes:[ n ] ~inputs:[ x ] body in
  let t = Histogram.make () in
  let nv = 60 in
  check_value "histogram via front"
    (Eval.eval_program t.Histogram.prog
       ~sizes:[ (t.Histogram.n, nv) ]
       ~inputs:(Histogram.gen_inputs t ~seed:6 ~n:nv))
    (Eval.eval_program prog ~sizes:[ (n, nv) ]
       ~inputs:[ (x.Ir.iname, Workloads.value_of_vector (Histogram.raw_inputs ~seed:6 ~n:nv)) ])

let () =
  Alcotest.run "front"
    [ ( "algebra",
        [ Alcotest.test_case "map/zip/sum" `Quick test_map_zip_sum;
          Alcotest.test_case "fusion by construction" `Quick
            test_fusion_by_construction;
          Alcotest.test_case "min_with_index ties" `Quick
            test_min_with_index_ties;
          Alcotest.test_case "dot = gemm cell" `Quick test_dot_matches_gemm_cell;
          Alcotest.test_case "sum_rows = app" `Quick test_sum_rows_matches_app
        ] );
      ( "kmeans fig 3",
        [ Alcotest.test_case "matches Fig. 4 and reference" `Quick
            test_kmeans_front_matches_fig4;
          Alcotest.test_case "tiles like Fig. 5b" `Quick test_kmeans_front_tiles
        ] );
      ( "dynamic",
        [ Alcotest.test_case "filter" `Quick test_filter_map_front;
          Alcotest.test_case "group-by-fold" `Quick test_group_by_fold_front ] )
    ]
