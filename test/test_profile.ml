(* IR-level memory profiling: the third leg of the Fig. 5c consistency
   triangle — words counted during actual interpretation of the tiled IR
   must match both the paper's closed forms and the hardware simulator's
   DRAM traffic counters. *)

let test_untiled_counts () =
  (* fused kmeans reads points n*k*d + n*d times (distance fold reads the
     point row per centroid) and centroids n*k*d times, at the IR level *)
  let t = Kmeans.make () in
  let n = 16 and k = 4 and d = 3 in
  let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
  let inputs = Kmeans.gen_inputs t ~seed:2 ~n ~k ~d in
  let _, counts = Mem_profile.run t.Kmeans.prog ~sizes ~inputs in
  (* [square (a - b)] duplicates its operand syntactically, so the IR
     issues two reads per distance term (hardware shares the wire) *)
  Alcotest.(check int) "centroids IR reads" (2 * n * k * d)
    (Mem_profile.words counts t.Kmeans.centroids.Ir.iname);
  (* per point: 2*k*d reads in the distance folds + d in the scatter *)
  Alcotest.(check int) "points IR reads"
    ((2 * n * k * d) + (n * d))
    (Mem_profile.words counts t.Kmeans.points.Ir.iname)

let test_tiled_counts_match_fig5c () =
  (* tiled kmeans moves exactly the Fig. 5c words: copies replace element
     traffic *)
  let t = Kmeans.make () in
  let n = 64 and k = 16 and d = 4 in
  let b0 = 16 and b1 = 4 in
  let r = Tiling.run ~tiles:[ (t.Kmeans.n, b0); (t.Kmeans.k, b1) ] t.Kmeans.prog in
  let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
  let inputs = Kmeans.gen_inputs t ~seed:3 ~n ~k ~d in
  let _, counts = Mem_profile.run r.Tiling.tiled ~sizes ~inputs in
  Alcotest.(check int) "points tile words" (n * d)
    (Mem_profile.words counts t.Kmeans.points.Ir.iname);
  Alcotest.(check int) "centroids tile words" (n / b0 * k * d)
    (Mem_profile.words counts t.Kmeans.centroids.Ir.iname)

let test_matches_simulator () =
  (* interpreter-counted words = simulator-counted words on the tiled
     design, for kmeans and gemm at exactly-dividing sizes *)
  let check_kmeans () =
    let t = Kmeans.make () in
    let n = 64 and k = 16 and d = 4 in
    let r = Tiling.run ~tiles:[ (t.Kmeans.n, 16); (t.Kmeans.k, 4) ] t.Kmeans.prog in
    let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
    let inputs = Kmeans.gen_inputs t ~seed:4 ~n ~k ~d in
    let _, counts = Mem_profile.run r.Tiling.tiled ~sizes ~inputs in
    let design = Lower.program Lower.default_opts r.Tiling.tiled in
    let rep = Simulate.run design ~sizes in
    Alcotest.(check int) "kmeans points: interp = sim"
      (int_of_float (Simulate.read_words rep "points"))
      (Mem_profile.words counts t.Kmeans.points.Ir.iname);
    Alcotest.(check int) "kmeans centroids: interp = sim"
      (int_of_float (Simulate.read_words rep "centroids"))
      (Mem_profile.words counts t.Kmeans.centroids.Ir.iname)
  in
  let check_gemm () =
    let t = Gemm.make () in
    let m = 16 and n = 16 and p = 16 in
    let r =
      Tiling.run ~tiles:[ (t.Gemm.m, 8); (t.Gemm.n, 8); (t.Gemm.p, 8) ] t.Gemm.prog
    in
    let sizes = [ (t.Gemm.m, m); (t.Gemm.n, n); (t.Gemm.p, p) ] in
    let inputs = Gemm.gen_inputs t ~seed:4 ~m ~n ~p in
    let _, counts = Mem_profile.run r.Tiling.tiled ~sizes ~inputs in
    let design = Lower.program Lower.default_opts r.Tiling.tiled in
    let rep = Simulate.run design ~sizes in
    Alcotest.(check int) "gemm x: interp = sim"
      (int_of_float (Simulate.read_words rep "x"))
      (Mem_profile.words counts t.Gemm.x.Ir.iname);
    Alcotest.(check int) "gemm y: interp = sim"
      (int_of_float (Simulate.read_words rep "y"))
      (Mem_profile.words counts t.Gemm.y.Ir.iname)
  in
  check_kmeans ();
  check_gemm ()

let test_reuse_discount () =
  (* overlapping window copies discount by the reuse factor *)
  let d = Dsl.size "d" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Prim (Ir.Add, [ Ir.Var d; Ir.Ci 2 ]) ] in
  let body =
    Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun idx ->
        Dsl.fold1 (Dsl.dfull (Dsl.i 3)) ~init:(Dsl.f 0.0)
          ~comb:(fun a b -> Dsl.( +! ) a b)
          (fun w acc ->
            Dsl.( +! ) acc (Dsl.read (Dsl.in_var x) [ Dsl.( +! ) idx w ])))
  in
  let prog =
    Dsl.program ~name:"win" ~sizes:[ d ] ~max_sizes:[ (d, 4096) ] ~inputs:[ x ]
      body
  in
  let tiled = Copy_insert.program (Strip_mine.program ~tiles:[ (d, 16) ] prog) in
  let dv = 64 in
  let rng = Workloads.Rng.make 5 in
  let xs = Workloads.float_vector rng (dv + 2) in
  let _, counts =
    Mem_profile.run tiled ~sizes:[ (d, dv) ]
      ~inputs:[ (x.Ir.iname, Workloads.value_of_vector xs) ]
  in
  (* 4 tiles of 18 words, halved by reuse=2 -> 36 *)
  Alcotest.(check int) "window words discounted" (4 * 18 / 2)
    (Mem_profile.words counts x.Ir.iname)

let test_hook_restored () =
  (* the hook uninstalls even on exceptions *)
  (try
     Eval.with_hook (fun _ _ -> ()) (fun () -> failwith "boom")
   with Failure _ -> ());
  (* a subsequent evaluation must not fire the old hook (would raise if
     the hook escaped, since the table is gone) *)
  let v = Eval.eval Sym.Map.empty (Dsl.( +! ) (Dsl.f 1.0) (Dsl.f 2.0)) in
  Alcotest.(check bool) "eval still works" true (Value.equal (Value.F 3.0) v)

let test_traffic_rows () =
  (* the generalized Fig. 5c report: the baseline re-reads the centroids
     once per point, the tiled design once per point tile — a reduction
     of exactly the point-tile size *)
  let b = Suite.find (Suite.all ()) "kmeans" in
  let rows = Experiments.traffic b in
  let centroids =
    List.find (fun r -> r.Experiments.tinput = "centroids") rows
  in
  let b0 = 1024.0 in
  Alcotest.(check bool) "centroids ratio = point-tile size" true
    (Float.abs
       ((centroids.Experiments.tbaseline /. centroids.Experiments.ttiled)
       -. b0)
    /. b0
    < 0.02)

let test_traffic_profile_cross_check () =
  (* on affine benchmarks at test sizes, the interpreter's tiled word
     counts agree with the simulator's *)
  List.iter
    (fun name ->
      let b = Suite.find (Suite.extended ()) name in
      let rows = Experiments.traffic ~profile:true b in
      List.iter
        (fun r ->
          match r.Experiments.tprofile with
          | None -> Alcotest.fail "profile column missing"
          | Some w ->
              let sim = r.Experiments.ttiled in
              let dev =
                Float.abs (sim -. float_of_int w) /. Float.max 1.0 sim
              in
              if dev > 0.05 then
                Alcotest.failf "%s/%s: sim %.0f vs interp %d" name
                  r.Experiments.tinput sim w)
        rows)
    [ "sumrows"; "gemm"; "matvec"; "outerprod" ]

let () =
  Alcotest.run "profile"
    [ ( "profile",
        [ Alcotest.test_case "untiled IR counts" `Quick test_untiled_counts;
          Alcotest.test_case "tiled counts = fig5c" `Quick
            test_tiled_counts_match_fig5c;
          Alcotest.test_case "interp = simulator" `Quick test_matches_simulator;
          Alcotest.test_case "window reuse discount" `Quick test_reuse_discount;
          Alcotest.test_case "hook restored" `Quick test_hook_restored ] );
      ( "traffic report",
        [ Alcotest.test_case "kmeans centroids ratio" `Quick test_traffic_rows;
          Alcotest.test_case "interp cross-check" `Quick
            test_traffic_profile_cross_check ] ) ]
