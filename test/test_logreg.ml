(* Logistic regression: correctness, tiling, and hardware generation for
   a transcendental-bearing MultiFold with a dense vector accumulator. *)

let value_eq = Value.equal ~eps:1e-5

let test_reference () =
  let t = Logreg.make () in
  let n = 25 and d = 6 in
  let x, y, w = Logreg.raw_inputs ~seed:3 ~n ~d in
  let v =
    Eval.eval_program t.Logreg.prog
      ~sizes:[ (t.Logreg.n, n); (t.Logreg.d, d) ]
      ~inputs:(Logreg.gen_inputs t ~seed:3 ~n ~d)
  in
  Alcotest.(check bool) "matches reference" true
    (value_eq (Workloads.value_of_vector (Logreg.reference ~x ~y ~w)) v)

let test_tiled () =
  let t = Logreg.make () in
  List.iter
    (fun (n, d, b) ->
      let r = Tiling.run ~tiles:[ (t.Logreg.n, b) ] t.Logreg.prog in
      ignore (Validate.check_program r.Tiling.tiled);
      let sizes = [ (t.Logreg.n, n); (t.Logreg.d, d) ] in
      let inputs = Logreg.gen_inputs t ~seed:8 ~n ~d in
      let a = Eval.eval_program t.Logreg.prog ~sizes ~inputs in
      let b' = Eval.eval_program r.Tiling.tiled ~sizes ~inputs in
      if not (value_eq a b') then Alcotest.failf "n=%d d=%d b=%d mismatch" n d b)
    [ (20, 4, 8); (17, 3, 5); (32, 8, 32) ]

let test_hardware () =
  let t = Logreg.make () in
  let r = Tiling.run ~tiles:[ (t.Logreg.n, 1024) ] t.Logreg.prog in
  let d = Lower.program Lower.default_opts r.Tiling.tiled in
  (* a tile load for x, a metapipeline, and the weights preloaded on-chip *)
  let loads =
    Hw.fold_ctrls
      (fun acc c -> match c with Hw.Tile_load _ -> acc + 1 | _ -> acc)
      0 d.Hw.top
  in
  Alcotest.(check bool) "tile loads present" true (loads >= 2);
  let metas =
    Hw.fold_ctrls
      (fun acc c ->
        match c with Hw.Loop { meta = true; _ } -> acc + 1 | _ -> acc)
      0 d.Hw.top
  in
  Alcotest.(check bool) "metapipelined" true (metas >= 1);
  (* speedup shape: tiling beats the baseline on this workload too *)
  let rb = Tiling.run ~tiles:[] t.Logreg.prog in
  let base = Lower.program Lower.baseline_opts rb.Tiling.fused in
  let sizes = [ (t.Logreg.n, 1 lsl 16); (t.Logreg.d, 32) ] in
  let cb = (Simulate.run base ~sizes).Simulate.cycles in
  let ct = (Simulate.run d ~sizes).Simulate.cycles in
  Alcotest.(check bool) "tiling wins" true (cb > ct)

let () =
  Alcotest.run "logreg"
    [ ( "logreg",
        [ Alcotest.test_case "reference" `Quick test_reference;
          Alcotest.test_case "tiled" `Quick test_tiled;
          Alcotest.test_case "hardware" `Quick test_hardware ] ) ]
