(* Extension applications (blackscholes, matvec) and the extended suite:
   reference semantics, tiling equivalence, and the expected performance
   shape of each addition. *)

let value_eq = Value.equal ~eps:1e-6

(* ---------------- blackscholes ---------------- *)

let test_blackscholes_reference () =
  let t = Blackscholes.make () in
  let n = 40 in
  let s, k, tm = Blackscholes.raw_inputs ~seed:7 ~n in
  let v =
    Eval.eval_program t.Blackscholes.prog
      ~sizes:[ (t.Blackscholes.n, n) ]
      ~inputs:(Blackscholes.gen_inputs t ~seed:7 ~n)
  in
  let expected =
    Value.Arr
      (Ndarray.init [ n ] (function
        | [ i ] ->
            Value.F (Blackscholes.reference ~sptprice:s ~strike:k ~time:tm).(i)
        | _ -> assert false))
  in
  Alcotest.(check bool) "prices" true (value_eq expected v)

let test_blackscholes_prices_sane () =
  (* a call is worth about [0, spot]; the branch-free logistic CND trades
     a little tail accuracy for a straight-line datapath, so allow a
     small negative slack for deep out-of-the-money options *)
  let s, k, tm = Blackscholes.raw_inputs ~seed:3 ~n:200 in
  let prices = Blackscholes.reference ~sptprice:s ~strike:k ~time:tm in
  Array.iteri
    (fun i p ->
      if p < -0.01 *. s.(i) || p > s.(i) +. 1e-9 then
        Alcotest.failf "price %d out of range: %f (spot %f)" i p s.(i))
    prices

let test_blackscholes_streaming_shape () =
  (* like outerprod: every word is used once, so tiling cannot win *)
  let b = Suite.find (Suite.extended ()) "blackscholes" in
  let base = Experiments.design_of Experiments.Baseline b in
  let meta = Experiments.design_of Experiments.Tiled_meta b in
  let c d = (Simulate.run d ~sizes:b.Suite.sim_sizes).Simulate.cycles in
  let speedup = c base /. c meta in
  Alcotest.(check bool)
    (Printf.sprintf "streaming stays ~flat (got %.2fx)" speedup)
    true
    (speedup < 3.0)

let test_blackscholes_deep_datapath () =
  (* the option-price pipe is much deeper than e.g. outerprod's multiply *)
  let deepest bench_name =
    let b = Suite.find (Suite.extended ()) bench_name in
    let d = Experiments.design_of Experiments.Tiled_meta b in
    Hw.fold_ctrls
      (fun acc c ->
        match c with Hw.Pipe { depth; _ } -> Int.max acc depth | _ -> acc)
      0 d.Hw.top
  in
  let bs = deepest "blackscholes" and op = deepest "outerprod" in
  Alcotest.(check bool)
    (Printf.sprintf "blackscholes depth %d > outerprod depth %d" bs op)
    true (bs > op)

(* ---------------- matvec ---------------- *)

let test_matvec_reference () =
  let t = Matvec.make () in
  let m = 9 and n = 13 in
  let a, x = Matvec.raw_inputs ~seed:5 ~m ~n in
  let v =
    Eval.eval_program t.Matvec.prog
      ~sizes:[ (t.Matvec.m, m); (t.Matvec.n, n) ]
      ~inputs:(Matvec.gen_inputs t ~seed:5 ~m ~n)
  in
  let expected =
    Value.Arr
      (Ndarray.init [ m ] (function
        | [ i ] -> Value.F (Matvec.reference ~a ~x).(i)
        | _ -> assert false))
  in
  Alcotest.(check bool) "product" true (value_eq expected v)

let prop_matvec_tiling_preserves =
  QCheck.Test.make ~name:"matvec: tiling preserves semantics" ~count:25
    QCheck.(
      quad (int_range 1 24) (int_range 1 24) (int_range 1 8) (int_range 1 8))
    (fun (m, n, b0, b1) ->
      let t = Matvec.make () in
      let r =
        Tiling.run
          ~tiles:[ (t.Matvec.m, b0); (t.Matvec.n, b1) ]
          t.Matvec.prog
      in
      let sizes = [ (t.Matvec.m, m); (t.Matvec.n, n) ] in
      let inputs = Matvec.gen_inputs t ~seed:(m + (31 * n)) ~m ~n in
      value_eq
        (Eval.eval_program t.Matvec.prog ~sizes ~inputs)
        (Eval.eval_program r.Tiling.tiled ~sizes ~inputs))

let test_matvec_vector_reuse () =
  (* tiling drops the x traffic by the row-tile factor: a streams once,
     x is re-read per row without tiling but once per column tile with *)
  let b = Suite.find (Suite.extended ()) "matvec" in
  let base = Experiments.design_of Experiments.Baseline b in
  let meta = Experiments.design_of Experiments.Tiled_meta b in
  let words d = Simulate.read_words (Simulate.run d ~sizes:b.Suite.sim_sizes) "x" in
  let wb = words base and wm = words meta in
  Alcotest.(check bool)
    (Printf.sprintf "x words drop (baseline %.0f vs tiled %.0f)" wb wm)
    true
    (wm *. 4.0 < wb)

let test_matvec_tiled_wins () =
  let b = Suite.find (Suite.extended ()) "matvec" in
  let base = Experiments.design_of Experiments.Baseline b in
  let meta = Experiments.design_of Experiments.Tiled_meta b in
  let c d = (Simulate.run d ~sizes:b.Suite.sim_sizes).Simulate.cycles in
  let speedup = c base /. c meta in
  Alcotest.(check bool)
    (Printf.sprintf "tiled speedup > 1.2 (got %.2fx)" speedup)
    true (speedup > 1.2)

(* ---------------- spmv ---------------- *)

let test_spmv_reference () =
  let t = Spmv.make () in
  let m = 17 and n = 11 and nnz = 64 in
  let rowptr, cols, vals, x = Spmv.raw_inputs ~seed:21 ~m ~n ~nnz in
  let v =
    Eval.eval_program t.Spmv.prog
      ~sizes:[ (t.Spmv.m, m); (t.Spmv.n, n); (t.Spmv.nnz, nnz) ]
      ~inputs:(Spmv.gen_inputs t ~seed:21 ~m ~n ~nnz)
  in
  let expected =
    Value.Arr
      (Ndarray.init [ m ] (function
        | [ r ] -> Value.F (Spmv.reference ~rowptr ~cols ~vals ~x).(r)
        | _ -> assert false))
  in
  Alcotest.(check bool) "product" true (value_eq expected v)

let prop_spmv_tiling_preserves =
  QCheck.Test.make ~name:"spmv: tiling preserves semantics" ~count:25
    QCheck.(triple (int_range 1 24) (int_range 1 12) (int_range 1 8))
    (fun (m, n, b0) ->
      let t = Spmv.make () in
      let nnz = 4 * m in
      let r = Tiling.run ~tiles:[ (t.Spmv.m, b0) ] t.Spmv.prog in
      let sizes = [ (t.Spmv.m, m); (t.Spmv.n, n); (t.Spmv.nnz, nnz) ] in
      let inputs = Spmv.gen_inputs t ~seed:(m + (17 * n)) ~m ~n ~nnz in
      value_eq
        (Eval.eval_program t.Spmv.prog ~sizes ~inputs)
        (Eval.eval_program r.Tiling.tiled ~sizes ~inputs))

let test_spmv_gather_gets_cache () =
  (* the indirect x(cols(k)) gather — untouched by tiling — is served by
     an allocated cache, the paper's generality claim in hardware *)
  let b = Suite.find (Suite.extended ()) "spmv" in
  let d = Experiments.design_of Experiments.Tiled_meta b in
  Alcotest.(check bool) "cache allocated" true
    (List.exists (fun m -> m.Hw.kind = Hw.Cache) d.Hw.mems);
  (* and the row-pointer windows became tile buffers *)
  Alcotest.(check bool) "rowptr tiled" true
    (List.exists
       (fun m ->
         String.length m.Hw.mem_name >= 10
         && String.sub m.Hw.mem_name 0 10 = "rowptrTile")
       d.Hw.mems)

(* ---------------- extended suite, end to end ---------------- *)

let test_extended_pipeline_equivalence () =
  List.iter
    (fun (b : Suite.bench) ->
      let r = Tiling.run ~tiles:b.Suite.tiles b.Suite.prog in
      let sizes = b.Suite.test_sizes in
      let inputs = b.Suite.gen ~sizes ~seed:99 in
      let reference = Eval.eval_program b.Suite.prog ~sizes ~inputs in
      let v = Eval.eval_program r.Tiling.tiled ~sizes ~inputs in
      Alcotest.(check bool) (b.Suite.name ^ " tiled = source") true
        (value_eq reference v);
      (* chunked evaluation exercises every combine the tiling generated *)
      let vc =
        Eval.eval_program ~mode:(Eval.Chunked 3) r.Tiling.tiled ~sizes ~inputs
      in
      Alcotest.(check bool) (b.Suite.name ^ " chunked") true
        (value_eq reference vc))
    (Suite.extended ())

let test_extended_designs_fit () =
  List.iter
    (fun (b : Suite.bench) ->
      let d = Experiments.design_of Experiments.Tiled_meta b in
      Alcotest.(check bool) (b.Suite.name ^ " fits") true
        (Area_model.fits (Area_model.of_design d)))
    (Suite.extended ())

let test_extended_names_unique () =
  let names = List.map (fun b -> b.Suite.name) (Suite.extended ()) in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "apps_ext"
    [ ( "blackscholes",
        [ Alcotest.test_case "matches reference" `Quick
            test_blackscholes_reference;
          Alcotest.test_case "prices sane" `Quick test_blackscholes_prices_sane;
          Alcotest.test_case "streaming stays flat" `Quick
            test_blackscholes_streaming_shape;
          Alcotest.test_case "deep datapath" `Quick
            test_blackscholes_deep_datapath ] );
      ( "matvec",
        [ Alcotest.test_case "matches reference" `Quick test_matvec_reference;
          QCheck_alcotest.to_alcotest prop_matvec_tiling_preserves;
          Alcotest.test_case "vector reuse" `Quick test_matvec_vector_reuse;
          Alcotest.test_case "tiled wins" `Quick test_matvec_tiled_wins ] );
      ( "spmv",
        [ Alcotest.test_case "matches reference" `Quick test_spmv_reference;
          QCheck_alcotest.to_alcotest prop_spmv_tiling_preserves;
          Alcotest.test_case "gather gets a cache" `Quick
            test_spmv_gather_gets_cache ] );
      ( "extended suite",
        [ Alcotest.test_case "pipeline equivalence" `Quick
            test_extended_pipeline_equivalence;
          Alcotest.test_case "designs fit" `Quick test_extended_designs_fit;
          Alcotest.test_case "names unique" `Quick test_extended_names_unique
        ] ) ]
