(* OCaml 5 parallel evaluation: Parallel mode must produce bit-identical
   results to Chunked mode with the same chunk size, on every benchmark. *)

let test_matches_chunked (bench : Suite.bench) () =
  List.iter
    (fun chunk ->
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:31 in
      let chunked =
        Eval.eval_program ~mode:(Eval.Chunked chunk) bench.Suite.prog ~sizes
          ~inputs
      in
      let parallel =
        Eval.eval_program ~mode:(Eval.Parallel chunk) bench.Suite.prog ~sizes
          ~inputs
      in
      (* bit-identical: zero tolerance *)
      if not (Value.equal ~eps:0.0 chunked parallel) then
        Alcotest.failf "%s chunk=%d: parallel differs from chunked"
          bench.Suite.name chunk)
    [ 2; 5 ]

let test_tiled_parallel () =
  (* the tiled program also evaluates correctly in parallel mode *)
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  let sizes = bench.Suite.test_sizes in
  let inputs = bench.Suite.gen ~sizes ~seed:17 in
  let seq = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
  let par = Eval.eval_program ~mode:(Eval.Parallel 4) r.Tiling.tiled ~sizes ~inputs in
  Alcotest.(check bool) "tiled parallel correct" true
    (Value.equal ~eps:1e-6 seq par)

let test_larger_workload () =
  (* a larger reduction where several domains actually run *)
  let t = Sumrows.make () in
  let m = 400 and n = 40 in
  let sizes = [ (t.Sumrows.m, m); (t.Sumrows.n, n) ] in
  let inputs = Sumrows.gen_inputs t ~seed:9 ~m ~n in
  let chunked =
    Eval.eval_program ~mode:(Eval.Chunked 32) t.Sumrows.prog ~sizes ~inputs
  in
  let parallel =
    Eval.eval_program ~mode:(Eval.Parallel 32) t.Sumrows.prog ~sizes ~inputs
  in
  Alcotest.(check bool) "identical" true (Value.equal ~eps:0.0 chunked parallel)

let () =
  let suite = Suite.extended () in
  Alcotest.run "parallel_eval"
    [ ( "parallel = chunked",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick
              (test_matches_chunked bench))
          suite );
      ( "integration",
        [ Alcotest.test_case "tiled kmeans" `Quick test_tiled_parallel;
          Alcotest.test_case "larger workload" `Quick test_larger_workload ] )
    ]
