(* Randomized whole-pipeline testing: generate random parallel-pattern
   programs (random shapes from a template grammar, random scalar bodies,
   random sizes and tile configurations), push each through the full
   tiling pipeline, and check the result against the untiled program with
   the reference interpreter — in both evaluation modes. *)

module R = Workloads.Rng

(* ---------------- random scalar expressions ---------------- *)

(* a random float-valued expression over the given float-valued atoms *)
let rec gen_scalar rng depth atoms =
  let n_atoms = List.length atoms in
  if depth = 0 || R.int rng 4 = 0 then
    if n_atoms > 0 && R.int rng 4 > 0 then List.nth atoms (R.int rng n_atoms)
    else Ir.Cf (float_of_int (R.int rng 9) /. 2.0)
  else
    let a = gen_scalar rng (depth - 1) atoms in
    let b = gen_scalar rng (depth - 1) atoms in
    match R.int rng 6 with
    | 0 -> Ir.Prim (Ir.Add, [ a; b ])
    | 1 -> Ir.Prim (Ir.Sub, [ a; b ])
    | 2 -> Ir.Prim (Ir.Mul, [ a; b ])
    | 3 -> Ir.Prim (Ir.Min, [ a; b ])
    | 4 -> Ir.Prim (Ir.Max, [ a; b ])
    | _ -> Ir.If (Ir.Prim (Ir.Lt, [ a; Ir.Cf 0.5 ]), a, b)

(* ---------------- program templates ---------------- *)

type setup = {
  prog : Ir.program;
  n : Sym.t;
  m : Sym.t;
  x1 : Ir.input;  (* float vector of length n *)
  x2 : Ir.input;  (* float matrix n x m *)
}

let make_setup rng shape_id =
  let open Dsl in
  let n = size "n" and m = size "m" in
  let x1 = input "x1" Ty.float_ [ Ir.Var n ] in
  let x2 = input "x2" Ty.float_ [ Ir.Var n; Ir.Var m ] in
  let v1 i = read (in_var x1) [ i ] in
  let v2 i j = read (in_var x2) [ i; j ] in
  let sc atoms = gen_scalar rng 2 atoms in
  let body =
    match shape_id with
    | 0 ->
        (* element-wise map *)
        map1 (dfull (Ir.Var n)) (fun i -> sc [ v1 i ])
    | 1 ->
        (* 2-D map *)
        map2d (dfull (Ir.Var n)) (dfull (Ir.Var m)) (fun i j ->
            sc [ v1 i; v2 i j ])
    | 2 ->
        (* scalar reduction *)
        fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun i acc -> acc +! sc [ v1 i ])
    | 3 ->
        (* producer-consumer: map feeding a fold (vertical fusion food) *)
        let_ ~name:"t"
          (map1 (dfull (Ir.Var n)) (fun i -> sc [ v1 i ]))
          (fun t ->
            fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
              ~comb:(fun a b -> a +! b)
              (fun i acc -> acc +! read t [ i ]))
    | 4 ->
        (* map of folds: interchange rule 1 candidate *)
        map1 (dfull (Ir.Var n)) (fun i ->
            fold1 (dfull (Ir.Var m)) ~init:(f 0.0)
              ~comb:(fun a b -> a +! b)
              (fun j acc -> acc +! sc [ v1 i; v2 i j ]))
    | 5 ->
        (* row sums as MultiFold with unit regions (localization food) *)
        multifold
          [ dfull (Ir.Var n); dfull (Ir.Var m) ]
          ~init:(zeros Ty.Float [ Ir.Var n ])
          ~comb:(fun a b ->
            map1 (dfull (Ir.Var n)) (fun i -> read a [ i ] +! read b [ i ]))
          (fun idxs ->
            match idxs with
            | [ i; j ] ->
                [ { range = [ Ir.Var n ];
                    region = point [ i ];
                    upd = (fun acc -> acc +! sc [ v2 i j ]) } ]
            | _ -> assert false)
    | 6 ->
        (* filter then reduce over the dynamic result *)
        let_ ~name:"kept"
          (flatmap (dfull (Ir.Var n)) (fun i ->
               if_ (v1 i >! f 0.5) (arr [ sc [ v1 i ] ]) (empty Ty.float_)))
          (fun kept ->
            fold1 (dfull (len kept 0)) ~init:(f 0.0)
              ~comb:(fun a b -> a +! b)
              (fun j acc -> acc +! read kept [ j ]))
    | 7 ->
        (* group-by-fold with small integer keys *)
        groupbyfold (dfull (Ir.Var n)) ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun i ->
            ( to_int (v1 i *! f 4.0),
              fun acc -> acc +! sc [ v1 i ] ))
    | 8 ->
        (* column sums: fold of a map (interchange rule 2 candidate) *)
        fold1 (dfull (Ir.Var n))
          ~init:(zeros Ty.Float [ Ir.Var m ])
          ~comb:(fun a b ->
            map1 (dfull (Ir.Var m)) (fun j -> read a [ j ] +! read b [ j ]))
          (fun i acc ->
            map1 (dfull (Ir.Var m)) (fun j -> read acc [ j ] +! v2 i j))
    | _ ->
        (* two maps then a combining fold (horizontal fusion food) *)
        let_ ~name:"ta"
          (map1 (dfull (Ir.Var n)) (fun i -> sc [ v1 i ]))
          (fun ta ->
            let_ ~name:"tb"
              (map1 (dfull (Ir.Var n)) (fun i -> sc [ v1 i ]))
              (fun tb ->
                fold1 (dfull (Ir.Var n)) ~init:(f 0.0)
                  ~comb:(fun a b -> a +! b)
                  (fun i acc -> acc +! (read ta [ i ] *! read tb [ i ]))))
  in
  let prog =
    program ~name:(Printf.sprintf "rand%d" shape_id) ~sizes:[ n; m ]
      ~max_sizes:[ (n, 1 lsl 16); (m, 1 lsl 16) ]
      ~inputs:[ x1; x2 ] body
  in
  { prog; n; m; x1; x2 }

let n_shapes = 10

(* ---------------- the property ---------------- *)

let run_case seed =
  let rng = R.make seed in
  let shape_id = R.int rng n_shapes in
  let s = make_setup rng shape_id in
  ignore (Validate.check_program s.prog);
  let nv = 1 + R.int rng 24 and mv = 1 + R.int rng 12 in
  let bn = 1 + R.int rng 8 and bm = 1 + R.int rng 8 in
  let tiles =
    List.concat
      [ (if R.int rng 4 > 0 then [ (s.n, bn) ] else []);
        (if R.int rng 4 > 0 then [ (s.m, bm) ] else []) ]
  in
  let fuse_filters = R.int rng 2 = 0 in
  let result = Tiling.run ~fuse_filters ~tiles s.prog in
  ignore (Validate.check_program result.Tiling.tiled);
  let irng = R.make (seed * 7 + 1) in
  let inputs =
    [ (s.x1.Ir.iname, Workloads.value_of_vector (Workloads.float_vector irng nv));
      (s.x2.Ir.iname, Workloads.value_of_matrix (Workloads.float_matrix irng nv mv))
    ]
  in
  let sizes = [ (s.n, nv); (s.m, mv) ] in
  let reference = Eval.eval_program s.prog ~sizes ~inputs in
  let stages =
    [ ("fused", result.Tiling.fused);
      ("stripped", result.Tiling.stripped);
      ("stripped+copies", result.Tiling.stripped_with_copies);
      ("tiled", result.Tiling.tiled) ]
  in
  List.iter
    (fun (name, prog) ->
      let v = Eval.eval_program prog ~sizes ~inputs in
      if not (Value.equal ~eps:1e-5 reference v) then
        QCheck.Test.fail_reportf
          "shape %d seed %d (%s, tiles=%s, n=%d, m=%d):@.expected %s@.got %s"
          shape_id seed name
          (String.concat ","
             (List.map (fun (_, b) -> string_of_int b) tiles))
          nv mv
          (Value.to_string reference) (Value.to_string v);
      (* chunked mode exercises generated combine functions *)
      let vc = Eval.eval_program ~mode:(Eval.Chunked 3) prog ~sizes ~inputs in
      if not (Value.equal ~eps:1e-5 reference vc) then
        QCheck.Test.fail_reportf "shape %d seed %d (%s, chunked) mismatch"
          shape_id seed name)
    stages;
  true

let prop_pipeline =
  QCheck.Test.make ~name:"random programs: full pipeline equivalence"
    ~count:120
    QCheck.(int_range 0 1_000_000)
    run_case

(* the generated hardware must also be constructible and simulable *)
let prop_lowering_total =
  QCheck.Test.make ~name:"random programs: lowering and simulation total"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = R.make seed in
      let shape_id = R.int rng n_shapes in
      let s = make_setup rng shape_id in
      let tiles = [ (s.n, 8); (s.m, 4) ] in
      let result = Tiling.run ~tiles s.prog in
      List.iter
        (fun opts ->
          let d = Lower.program opts result.Tiling.tiled in
          (match Hw_check.check d with
          | [] -> ()
          | fs ->
              QCheck.Test.fail_reportf "shape %d seed %d: malformed design: %s"
                shape_id seed
                (String.concat "; "
                   (List.map (Format.asprintf "%a" Diagnostic.pp) fs)));
          let sizes = [ (s.n, 512); (s.m, 32) ] in
          let rep = Simulate.run d ~sizes in
          if not (rep.Simulate.cycles > 0.0) then
            QCheck.Test.fail_reportf "shape %d: zero cycles" shape_id;
          let e = Event_sim.run d ~sizes in
          let ratio = e.Event_sim.report.Simulate.cycles /. rep.Simulate.cycles in
          if ratio < 0.5 || ratio > 2.0 then
            QCheck.Test.fail_reportf
              "shape %d seed %d: engines disagree (%.2f)" shape_id seed ratio;
          ignore (Area_model.of_design d))
        [ Lower.default_opts; { Lower.default_opts with Lower.meta = false } ];
      true)

(* printed text of any stage parses back to a program with identical
   semantics — the concrete syntax is total over the transformation
   pipeline, not just over the hand-written suite *)
let prop_parser_roundtrip =
  QCheck.Test.make ~name:"random programs: printer/parser roundtrip" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = R.make seed in
      let shape_id = R.int rng n_shapes in
      let s = make_setup rng shape_id in
      let tiles = [ (s.n, 1 + R.int rng 8); (s.m, 1 + R.int rng 8) ] in
      let result = Tiling.run ~tiles s.prog in
      let nv = 1 + R.int rng 24 and mv = 1 + R.int rng 12 in
      let irng = R.make (seed * 11 + 3) in
      let x1v = Workloads.value_of_vector (Workloads.float_vector irng nv) in
      let x2v = Workloads.value_of_matrix (Workloads.float_matrix irng nv mv) in
      let sizes = [ (s.n, nv); (s.m, mv) ] in
      let inputs = [ (s.x1.Ir.iname, x1v); (s.x2.Ir.iname, x2v) ] in
      let reference = Eval.eval_program s.prog ~sizes ~inputs in
      List.iter
        (fun (name, (prog : Ir.program)) ->
          let text = Pp.program_to_string prog in
          let parsed =
            try Parser.program_of_string text
            with Parser.Parse_error m ->
              QCheck.Test.fail_reportf
                "shape %d seed %d (%s): parse error %s@.%s" shape_id seed name
                m text
          in
          ignore (Validate.check_program parsed);
          let sizes' =
            List.map
              (fun sym ->
                ( sym,
                  if Sym.base sym = Sym.base s.n then nv
                  else mv ))
              parsed.Ir.size_params
          in
          let inputs' =
            List.map2
              (fun (pi : Ir.input) (_, v) -> (pi.Ir.iname, v))
              parsed.Ir.inputs inputs
          in
          let v = Eval.eval_program parsed ~sizes:sizes' ~inputs:inputs' in
          if not (Value.equal ~eps:1e-5 reference v) then
            QCheck.Test.fail_reportf
              "shape %d seed %d (%s): roundtrip changed semantics" shape_id
              seed name)
        [ ("source", s.prog);
          ("fused", result.Tiling.fused);
          ("tiled", result.Tiling.tiled) ];
      true)

let () =
  Alcotest.run "random_programs"
    [ ( "pipeline",
        [ QCheck_alcotest.to_alcotest prop_pipeline;
          QCheck_alcotest.to_alcotest prop_lowering_total ] );
      ( "parser",
        [ QCheck_alcotest.to_alcotest prop_parser_roundtrip ] ) ]
