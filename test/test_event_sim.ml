(* Event-level simulation: unit tests on hand-built designs (pipeline
   fill/steady behavior, DRAM gap-filling, double-buffer dependencies) and
   cross-validation against the analytic engine on the whole suite. *)

let check_f msg expected actual =
  if
    Float.abs (expected -. actual)
    > 1e-6 *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %f, got %f" msg expected actual

let pipe ?(trips = [ Hw.Tconst 1000.0 ]) ?(par = 1) ?(depth = 10) ?(dram = [])
    name =
  Hw.Pipe
    { name;
      trips;
      template = Hw.Vector;
      par;
      depth;
      ii = 1;
      ops = { Hw.flops = 1; int_ops = 0; cmp_ops = 0; mem_reads = 1; mem_writes = 1 };
      body = None;
      dram;
      uses = [];
      defines = [];
      prov = Prov.none }

let load ?(words = 800.0) name =
  Hw.Tile_load
    { name; mem = "buf"; array = "x"; words = Hw.Tconst words; path = [];
      reuse = 1; prov = Prov.none }

let design top = { Hw.design_name = "t"; mems = []; top; par_factor = 1 }

let ev d = (Event_sim.run d ~sizes:[]).Event_sim.report.Simulate.cycles

(* -------------------- unit behaviors -------------------- *)

let test_leaf_matches_analytic () =
  let d = design (pipe "p") in
  check_f "leaf pipe" (Simulate.run d ~sizes:[]).Simulate.cycles (ev d)

let test_metapipe_steady_state () =
  (* two equal stages of 1010 cycles, 10 iterations:
     fill 2020 + 9 * 1010 *)
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 10.0 ]; meta = true;
           stages = [ pipe "a"; pipe "b" ]; prov = Prov.none })
  in
  check_f "balanced metapipe" (2020.0 +. (9.0 *. 1010.0)) (ev d)

let test_metapipe_bottleneck () =
  (* unbalanced stages: steady state = slowest stage *)
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 10.0 ]; meta = true;
           stages = [ pipe ~trips:[ Hw.Tconst 100.0 ] "fast"; pipe "slow" ]; prov = Prov.none })
  in
  (* fill = 110 + 1010; steady = 1010 *)
  check_f "bottleneck" (110.0 +. 1010.0 +. (9.0 *. 1010.0)) (ev d)

let test_dram_serialization () =
  (* two concurrent loads of 800 words at 8 w/c + 100 latency: the memory
     interface serializes them *)
  let d =
    design (Hw.Par { name = "p"; children = [ load "l1"; load "l2" ]; prov = Prov.none })
  in
  check_f "serialized loads" 400.0 (ev d)

let test_dram_gap_filling () =
  (* load (memory) in stage 1 overlaps compute in stage 2 across
     iterations: the steady state is the max, not the sum *)
  let d meta =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 20.0 ]; meta;
           stages = [ load ~words:8000.0 "ld"; pipe "compute" ]; prov = Prov.none })
  in
  let seq = ev (d false) and meta = ev (d true) in
  (* load = 100 + 1000 = 1100; pipe = 1010; seq = 20*(2110) *)
  check_f "sequential" (20.0 *. 2110.0) seq;
  check_f "metapipe overlaps load with compute"
    (2110.0 +. (19.0 *. 1100.0))
    meta

let test_double_buffer_dependency () =
  (* stage B of iteration i cannot start before stage A of iteration i:
     with A slow and B fast, B's rate is limited by A *)
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 5.0 ]; meta = true;
           stages =
             [ pipe ~trips:[ Hw.Tconst 5000.0 ] "slowA";
               pipe ~trips:[ Hw.Tconst 10.0 ] "fastB" ]; prov = Prov.none })
  in
  (* A = 5010, B = 20; total = fill (5030) + 4 * 5010 *)
  check_f "producer limits consumer" (5030.0 +. (4.0 *. 5010.0)) (ev d)

let test_event_counts () =
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 7.0 ]; meta = false;
           stages = [ pipe "a"; pipe "b" ]; prov = Prov.none })
  in
  let r = Event_sim.run d ~sizes:[] in
  Alcotest.(check int) "7 iterations x 2 stages" 14 r.Event_sim.events;
  Alcotest.(check int) "no fallbacks" 0 r.Event_sim.fallbacks

let test_fallback_on_huge_loops () =
  let d =
    design
      (Hw.Loop
         { name = "l"; trips = [ Hw.Tconst 1e9 ]; meta = false;
           stages = [ pipe "a" ]; prov = Prov.none })
  in
  let r = Event_sim.run d ~sizes:[] in
  Alcotest.(check int) "fell back" 1 r.Event_sim.fallbacks;
  (* and the result matches the analytic engine *)
  check_f "fallback cycles" (Simulate.run d ~sizes:[]).Simulate.cycles
    r.Event_sim.report.Simulate.cycles

(* -------------------- suite cross-validation -------------------- *)

let test_cross_validation () =
  List.iter
    (fun bench ->
      List.iter
        (fun cfg ->
          let d = Experiments.design_of cfg bench in
          let sizes = bench.Suite.sim_sizes in
          let a = (Simulate.run d ~sizes).Simulate.cycles in
          let e = Event_sim.run d ~sizes in
          let ev_c = e.Event_sim.report.Simulate.cycles in
          let ratio = ev_c /. a in
          if ratio < 0.98 || ratio > 1.02 then
            Alcotest.failf "%s/%s: analytic %.0f vs event %.0f (ratio %.3f)"
              bench.Suite.name (Experiments.config_name cfg) a ev_c ratio;
          (* traffic must agree exactly *)
          let at = Simulate.total_read (Simulate.run d ~sizes) in
          let et = Simulate.total_read e.Event_sim.report in
          if Float.abs (at -. et) > 1.0 then
            Alcotest.failf "%s/%s: traffic %.0f vs %.0f" bench.Suite.name
              (Experiments.config_name cfg) at et)
        [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ])
    (Suite.all ())

let () =
  Alcotest.run "event_sim"
    [ ( "unit",
        [ Alcotest.test_case "leaf = analytic" `Quick test_leaf_matches_analytic;
          Alcotest.test_case "metapipe steady state" `Quick
            test_metapipe_steady_state;
          Alcotest.test_case "metapipe bottleneck" `Quick
            test_metapipe_bottleneck;
          Alcotest.test_case "dram serialization" `Quick test_dram_serialization;
          Alcotest.test_case "dram gap filling" `Quick test_dram_gap_filling;
          Alcotest.test_case "double-buffer dependency" `Quick
            test_double_buffer_dependency;
          Alcotest.test_case "event counts" `Quick test_event_counts;
          Alcotest.test_case "fallback" `Quick test_fallback_on_huge_loops ] );
      ( "cross-validation",
        [ Alcotest.test_case "suite x configs within 2%" `Quick
            test_cross_validation ] ) ]
