(* Static bounds verification: every tiled benchmark's tile copies are
   proven in range; deliberate violations are caught; data-dependent
   accesses report unknown (and are exactly the cache-served ones).
   Findings are Diagnostic values: PPL231 errors for violations, PPL230
   warnings for accesses the analysis cannot decide; proven accesses
   are silent. *)

open Dsl

let count code ds =
  List.length (List.filter (fun d -> d.Diagnostic.code = code) ds)

let violations ds = count "PPL231" ds
let unknowns ds = count "PPL230" ds

let test_tiled_suite_proven () =
  List.iter
    (fun bench ->
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      let ds = Bounds.check_program r.Tiling.tiled in
      Alcotest.(check int)
        (bench.Suite.name ^ ": no violations")
        0 (violations ds);
      (* everything except gda's data-dependent mu reads proves safe *)
      let expected_unknown = if bench.Suite.name = "gda" then 2 else 0 in
      Alcotest.(check int)
        (bench.Suite.name ^ ": unknowns")
        expected_unknown (unknowns ds))
    (Suite.all ())

let test_untiled_reads_proven () =
  (* direct reads at plain loop indices prove too, silently *)
  let b = Suite.find (Suite.all ()) "gemm" in
  let accesses, ds = Bounds.audit b.Suite.prog in
  Alcotest.(check (list string)) "all safe" []
    (List.map (fun d -> d.Diagnostic.message) ds);
  Alcotest.(check bool) "covers both inputs" true (accesses >= 2)

let test_constant_violation_detected () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ i 4 ] in
  let prog =
    program ~name:"oob" ~sizes:[ n ] ~inputs:[ x ]
      (read (in_var x) [ i 7 ])
  in
  let ds = Bounds.check_program prog in
  Alcotest.(check int) "violation found" 1 (violations ds);
  Alcotest.(check bool) "is an error diagnostic" true
    (Diagnostic.has_errors ds)

let test_negative_offset_detected () =
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let prog =
    program ~name:"neg" ~sizes:[ n ] ~inputs:[ x ]
      (read (in_var x) [ i (-1) ])
  in
  let ds = Bounds.check_program prog in
  Alcotest.(check int) "negative index" 1 (violations ds)

let test_off_by_one_unproven () =
  (* reading x(i+1) over the full domain is out of range; with symbolic
     sizes the checker cannot prove it safe (and must not) *)
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let prog =
    program ~name:"ob1" ~sizes:[ n ] ~inputs:[ x ]
      (map1 (dfull (Ir.Var n)) (fun idx -> read (in_var x) [ idx +! i 1 ]))
  in
  let ds = Bounds.check_program prog in
  Alcotest.(check bool) "not proven safe" true (ds <> [])

let test_halo_proven () =
  (* convolution reads x(i + w) with x declared n + taps - 1 long: the
     halo makes it safe, and the checker sees that *)
  let t = Conv2d.make () in
  let ds = Bounds.check_program t.Conv2d.prog in
  Alcotest.(check int) "conv2d safe" 0 (List.length ds);
  (* and the tiled version *)
  let r =
    Tiling.run ~tiles:[ (t.Conv2d.h, 16); (t.Conv2d.w, 16) ] t.Conv2d.prog
  in
  let ds' = Bounds.check_program r.Tiling.tiled in
  Alcotest.(check int) "tiled conv2d: no violations" 0 (violations ds')

let test_prove_ge () =
  (* the proving primitive Ppl_lint's PPL222 rule builds on *)
  let n = size "n" in
  let env = Bounds.enter Bounds.top n (Ir.Dfull (Ir.Ci 8)) in
  Alcotest.(check bool) "constant >= 1" true
    (Bounds.prove_ge Bounds.top (Ir.Ci 3) 1 = `Proven);
  Alcotest.(check bool) "constant < 1 violated" true
    (Bounds.prove_ge Bounds.top (Ir.Ci 0) 1 = `Violated);
  Alcotest.(check bool) "index + 1 >= 1" true
    (Bounds.prove_ge env (Ir.Prim (Ir.Add, [ Ir.Var n; Ir.Ci 1 ])) 1
    = `Proven);
  Alcotest.(check bool) "symbolic size not provably >= 1" true
    (Bounds.prove_ge Bounds.top (Ir.Var n) 1 = `Unknown)

let () =
  Alcotest.run "bounds"
    [ ( "bounds",
        [ Alcotest.test_case "tiled suite proven" `Quick test_tiled_suite_proven;
          Alcotest.test_case "untiled reads proven" `Quick
            test_untiled_reads_proven;
          Alcotest.test_case "constant violation" `Quick
            test_constant_violation_detected;
          Alcotest.test_case "negative index" `Quick
            test_negative_offset_detected;
          Alcotest.test_case "off-by-one unproven" `Quick
            test_off_by_one_unproven;
          Alcotest.test_case "halo proven" `Quick test_halo_proven;
          Alcotest.test_case "prove_ge primitive" `Quick test_prove_ge ] ) ]
