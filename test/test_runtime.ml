(* Host runtime model. *)

(* one shared instance: Suite.all () mints fresh symbols per call, so the
   design and the size bindings must come from the same bench value *)
let the_bench = lazy (Suite.find (Suite.all ()) "kmeans")
let the_design = lazy (Experiments.design_of Experiments.Tiled_meta (Lazy.force the_bench))
let bench () = Lazy.force the_bench
let design () = Lazy.force the_design

let test_components_add_up () =
  let b = bench () in
  let s =
    Runtime.run (design ()) ~sizes:b.Suite.sim_sizes ~input_bytes:1e6
      ~output_bytes:1e4 ~invocations:5
  in
  let sum = s.Runtime.device_s +. s.Runtime.transfer_s +. s.Runtime.overhead_s in
  Alcotest.(check bool) "total = sum" true
    (Float.abs (s.Runtime.total_s -. sum) < 1e-12);
  Alcotest.(check bool) "device = 5x per-invocation" true
    (Float.abs (s.Runtime.device_s -. (5.0 *. s.Runtime.per_invocation_s))
    < 1e-12)

let test_transfer_amortizes () =
  (* input copied once: per-iteration cost decreases with invocations *)
  let b = bench () in
  let run n =
    let s =
      Runtime.run (design ()) ~sizes:b.Suite.sim_sizes ~input_bytes:1e9
        ~output_bytes:1e3 ~invocations:n
    in
    s.Runtime.total_s /. float_of_int n
  in
  Alcotest.(check bool) "amortization" true (run 100 < run 1)

let test_custom_host () =
  let b = bench () in
  let slow =
    { Runtime.pcie_bytes_per_sec = 1e8; invocation_overhead_s = 1e-3 }
  in
  let s_fast =
    Runtime.run (design ()) ~sizes:b.Suite.sim_sizes ~input_bytes:1e8
      ~output_bytes:1e4 ~invocations:3
  in
  let s_slow =
    Runtime.run ~host:slow (design ()) ~sizes:b.Suite.sim_sizes
      ~input_bytes:1e8 ~output_bytes:1e4 ~invocations:3
  in
  Alcotest.(check bool) "slower host costs more" true
    (s_slow.Runtime.total_s > s_fast.Runtime.total_s)

let test_tiling_config_validation () =
  (* Tiling.run rejects unknown size symbols and non-positive tiles *)
  let t = Gemm.make () in
  let stranger = Dsl.size "stranger" in
  Alcotest.check_raises "unknown size symbol"
    (Invalid_argument
       (Printf.sprintf "Tiling.run: %s is not a size parameter of gemm"
          (Sym.name stranger)))
    (fun () -> ignore (Tiling.run ~tiles:[ (stranger, 8) ] t.Gemm.prog));
  Alcotest.check_raises "non-positive tile"
    (Invalid_argument
       (Printf.sprintf "Tiling.run: tile size 0 for %s" (Sym.name t.Gemm.m)))
    (fun () -> ignore (Tiling.run ~tiles:[ (t.Gemm.m, 0) ] t.Gemm.prog))

let () =
  Alcotest.run "runtime"
    [ ( "runtime",
        [ Alcotest.test_case "components" `Quick test_components_add_up;
          Alcotest.test_case "amortization" `Quick test_transfer_amortizes;
          Alcotest.test_case "custom host" `Quick test_custom_host;
          Alcotest.test_case "tiling config validation" `Quick
            test_tiling_config_validation ] ) ]
