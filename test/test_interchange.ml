(* Pattern interchange (Section 4, Table 3, Fig. 5b): structural checks on
   gemm and k-means plus semantic equivalence across the whole suite. *)

let value_eq = Value.equal ~eps:1e-6

let check_value msg expected actual =
  if not (value_eq expected actual) then
    Alcotest.failf "%s:@.expected %s@.got %s" msg (Value.to_string expected)
      (Value.to_string actual)

let tile_then_interchange (bench : Suite.bench) tiles =
  Interchange.program (Strip_mine.program ~tiles bench.Suite.prog)

(* Table 3: after interchange, gemm's strided p-tile fold is outside the
   unstrided (b0, b1) map. *)
let test_gemm_structure () =
  let t = Gemm.make () in
  let bench = Suite.find (Suite.all ()) "gemm" in
  ignore bench;
  let tiles = [ (t.Gemm.m, 4); (t.Gemm.n, 4); (t.Gemm.p, 4) ] in
  let prog = Interchange.program (Strip_mine.program ~tiles t.Gemm.prog) in
  ignore (Validate.check_program prog);
  (* there must be a strided Fold whose update contains an unstrided Map
     which itself contains the per-tile (Dtail) fold *)
  let found = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Fold { fdims = [ Ir.Dtiles { tile = 4; _ } ]; fupd; _ } ->
          if
            Rewrite.exists_exp
              (function
                | Ir.Map { mdims; mbody; _ }
                  when List.for_all (fun d -> not (Ir.is_strided d)) mdims ->
                    Rewrite.exists_exp
                      (function
                        | Ir.Fold { fdims = [ Ir.Dtail { tile = 4; _ } ]; _ } ->
                            true
                        | _ -> false)
                      mbody
                | _ -> false)
              fupd
          then found := true
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check bool) "strided fold of unstrided map" true !found

(* Fig. 5b: k-means' imperfect nest splits; the min-distance calculation
   becomes a Let-bound strided fold over centroid tiles of a Map over the
   point tile, and the scatter MultiFold reads the intermediate. *)
let test_kmeans_structure () =
  let t = Kmeans.make () in
  let tiles = [ (t.Kmeans.n, 8); (t.Kmeans.k, 2) ] in
  let prog = Interchange.program (Strip_mine.program ~tiles t.Kmeans.prog) in
  ignore (Validate.check_program prog);
  let found_split = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Let (_, Ir.Fold { fdims = [ Ir.Dtiles { tile = 2; _ } ]; fupd; _ },
                Ir.MultiFold { olets = [ (_, Ir.Read _) ]; _ }) ->
          (* the fold's update must map over the point tile *)
          if
            Rewrite.exists_exp
              (function
                | Ir.Map { mdims = [ Ir.Dtail { tile = 8; _ } ]; _ } -> true
                | _ -> false)
              fupd
          then found_split := true
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check bool) "fig 5b split + interchange" true !found_split

let test_no_split_when_too_large () =
  (* with a tiny on-chip budget the split is rejected and the program keeps
     its imperfect nest (and stays correct) *)
  let t = Kmeans.make () in
  let tiles = [ (t.Kmeans.n, 8); (t.Kmeans.k, 2) ] in
  let stripped = Strip_mine.program ~tiles t.Kmeans.prog in
  let prog = Interchange.program ~budget_words:4 stripped in
  let found_split = ref false in
  Rewrite.iter_exp
    (function
      | Ir.Let (_, Ir.Fold _, Ir.MultiFold { olets = [ (_, Ir.Read _) ]; _ }) ->
          found_split := true
      | _ -> ())
    prog.Ir.body;
  Alcotest.(check bool) "split rejected" false !found_split

let test_equivalence (bench : Suite.bench) () =
  let tiled = tile_then_interchange bench bench.Suite.tiles in
  ignore (Validate.check_program tiled);
  List.iter
    (fun seed ->
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed in
      let expected = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
      check_value
        (Printf.sprintf "%s seed=%d" bench.Suite.name seed)
        expected
        (Eval.eval_program tiled ~sizes ~inputs);
      check_value
        (Printf.sprintf "%s chunked seed=%d" bench.Suite.name seed)
        expected
        (Eval.eval_program ~mode:(Eval.Chunked 3) tiled ~sizes ~inputs))
    [ 1; 2 ]

let test_equivalence_small_tiles (bench : Suite.bench) () =
  List.iter
    (fun tile ->
      let tiles = List.map (fun (s, _) -> (s, tile)) bench.Suite.tiles in
      let tiled = tile_then_interchange bench tiles in
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:77 in
      check_value
        (Printf.sprintf "%s tile=%d" bench.Suite.name tile)
        (Eval.eval_program bench.Suite.prog ~sizes ~inputs)
        (Eval.eval_program tiled ~sizes ~inputs))
    [ 2; 3; 5 ]

(* Rule 2 (the inverse rule): a tiled Map inside an unstrided fold —
   column sums — becomes a strided MultiFold of per-slice folds. *)
let colsum_prog () =
  let n = Dsl.size "n" and d = Dsl.size "d" in
  let x = Dsl.input "x" Ty.float_ [ Ir.Var n; Ir.Var d ] in
  let body =
    Dsl.fold1
      (Dsl.dfull (Ir.Var n))
      ~init:(Dsl.zeros Ty.Float [ Ir.Var d ])
      ~comb:(fun a b ->
        Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun j ->
            Dsl.( +! ) (Dsl.read a [ j ]) (Dsl.read b [ j ])))
      (fun i acc ->
        Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun j ->
            Dsl.( +! ) (Dsl.read acc [ j ]) (Dsl.read (Dsl.in_var x) [ i; j ])))
  in
  let prog =
    Dsl.program ~name:"colsums" ~sizes:[ n; d ]
      ~max_sizes:[ (n, 1 lsl 20); (d, 1 lsl 16) ]
      ~inputs:[ x ] body
  in
  (prog, n, d, x)

let test_rule2_structure () =
  let prog, _n, d, _x = colsum_prog () in
  let stripped = Strip_mine.program ~tiles:[ (d, 8) ] prog in
  let out = Interchange.program stripped in
  (* after rule 2, the top pattern is a strided MultiFold whose update
     region holds an unstrided fold *)
  match out.Ir.body with
  | Ir.MultiFold
      { odims = [ Ir.Dtiles { tile = 8; _ } ];
        oouts = [ { oupd = Ir.Fold { fdims = [ Ir.Dfull _ ]; _ }; _ } ];
        ocomb = None; _ } ->
      ()
  | _ ->
      Alcotest.failf "rule 2 did not fire:@.%s"
        (Pp.exp_to_string out.Ir.body)

let prop_rule2_equiv =
  QCheck.Test.make ~name:"rule 2 equivalence (column sums)" ~count:25
    QCheck.(triple (int_range 1 20) (int_range 1 24) (int_range 1 6))
    (fun (nv, dv, tile) ->
      let prog, n, d, x = colsum_prog () in
      let out = Interchange.program (Strip_mine.program ~tiles:[ (d, tile) ] prog) in
      ignore (Validate.check_program out);
      let rng = Workloads.Rng.make (nv + dv) in
      let xs = Workloads.float_matrix rng nv dv in
      let sizes = [ (n, nv); (d, dv) ] in
      let inputs = [ (x.Ir.iname, Workloads.value_of_matrix xs) ] in
      value_eq
        (Eval.eval_program prog ~sizes ~inputs)
        (Eval.eval_program out ~sizes ~inputs))

let prop_gemm_equiv =
  QCheck.Test.make ~name:"gemm interchange equivalence (random sizes)"
    ~count:20
    QCheck.(
      pair
        (triple (int_range 1 12) (int_range 1 12) (int_range 1 12))
        (triple (int_range 1 5) (int_range 1 5) (int_range 1 5)))
    (fun ((m, n, p), (b0, b1, b2)) ->
      let t = Gemm.make () in
      let tiles = [ (t.Gemm.m, b0); (t.Gemm.n, b1); (t.Gemm.p, b2) ] in
      let prog = Interchange.program (Strip_mine.program ~tiles t.Gemm.prog) in
      let sizes = [ (t.Gemm.m, m); (t.Gemm.n, n); (t.Gemm.p, p) ] in
      let inputs = Gemm.gen_inputs t ~seed:(m + (13 * n) + (7 * p)) ~m ~n ~p in
      value_eq
        (Eval.eval_program t.Gemm.prog ~sizes ~inputs)
        (Eval.eval_program prog ~sizes ~inputs))

let prop_kmeans_equiv =
  QCheck.Test.make ~name:"kmeans split+interchange equivalence" ~count:15
    QCheck.(
      pair
        (triple (int_range 4 40) (int_range 2 6) (int_range 1 4))
        (pair (int_range 2 9) (int_range 1 4)))
    (fun ((n, k, d), (b0, b1)) ->
      let t = Kmeans.make () in
      let tiles = [ (t.Kmeans.n, b0); (t.Kmeans.k, b1) ] in
      let prog = Interchange.program (Strip_mine.program ~tiles t.Kmeans.prog) in
      let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in
      let inputs = Kmeans.gen_inputs t ~seed:(n + k + d) ~n ~k ~d in
      value_eq
        (Eval.eval_program t.Kmeans.prog ~sizes ~inputs)
        (Eval.eval_program prog ~sizes ~inputs))

let () =
  let suite = Suite.all () in
  Alcotest.run "interchange"
    [ ( "structure",
        [ Alcotest.test_case "gemm table 3" `Quick test_gemm_structure;
          Alcotest.test_case "kmeans fig 5b" `Quick test_kmeans_structure;
          Alcotest.test_case "split cost rejection" `Quick
            test_no_split_when_too_large;
          Alcotest.test_case "rule 2 column sums" `Quick test_rule2_structure ] );
      ( "equivalence",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick (test_equivalence bench))
          suite );
      ( "equivalence small tiles",
        List.map
          (fun bench ->
            Alcotest.test_case bench.Suite.name `Quick
              (test_equivalence_small_tiles bench))
          suite );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_gemm_equiv;
          QCheck_alcotest.to_alcotest prop_kmeans_equiv;
          QCheck_alcotest.to_alcotest prop_rule2_equiv ] ) ]
