(* The domain pool behind the parallel sweeps: Pool.map must equal
   List.map exactly — same order, same values — at every domain count,
   and exceptions must surface deterministically. *)

let test_order_preserved () =
  let items = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        (List.map f items)
        (Pool.map ~domains f items))
    [ 1; 2; 4; 8 ]

let test_default_domains () =
  Alcotest.(check bool) "at least one" true (Pool.default_domains () >= 1)

let test_mapi () =
  Alcotest.(check (list string))
    "mapi" [ "0a"; "1b"; "2c" ]
    (Pool.mapi ~domains:3 (fun i s -> string_of_int i ^ s) [ "a"; "b"; "c" ])

exception Boom of int

let test_first_exception_wins () =
  (* items 3 and 7 both raise; the smallest-index failure is the one
     reported, independent of which domain hit it first *)
  let f x = if x mod 4 = 3 then raise (Boom x) else x in
  List.iter
    (fun domains ->
      match Pool.map ~domains f (List.init 10 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "first failing item (domains=%d)" domains)
            3 n)
    [ 1; 2; 4 ]

let test_tally () =
  (* the per-domain completed counters account for every item exactly
     once, at every domain count, without perturbing the results *)
  let items = List.init 100 (fun i -> i) in
  let f x = x * 3 in
  List.iter
    (fun domains ->
      let tally = Pool.tally () in
      let out = Pool.map ~domains ~tally f items in
      Alcotest.(check (list int))
        (Printf.sprintf "results unchanged (domains=%d)" domains)
        (List.map f items) out;
      let sum = Array.fold_left ( + ) 0 tally.Pool.per_domain in
      Alcotest.(check int)
        (Printf.sprintf "counts sum to item count (domains=%d)" domains)
        (List.length items) sum;
      Alcotest.(check bool)
        (Printf.sprintf "worker count bounded (domains=%d)" domains)
        true
        (Array.length tally.Pool.per_domain >= 1
        && Array.length tally.Pool.per_domain <= Int.max 1 domains))
    [ 1; 2; 4; 16 ];
  (* edges: empty and singleton inputs still produce a consistent tally *)
  let t0 = Pool.tally () in
  ignore (Pool.map ~domains:4 ~tally:t0 (fun x -> x) []);
  Alcotest.(check int) "empty input" 0 (Array.fold_left ( + ) 0 t0.Pool.per_domain);
  let t1 = Pool.tally () in
  ignore (Pool.map ~domains:4 ~tally:t1 (fun x -> x) [ 42 ]);
  Alcotest.(check int) "singleton input" 1
    (Array.fold_left ( + ) 0 t1.Pool.per_domain)

let test_edge_shapes () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "singleton" [ 7 ]
    (Pool.map ~domains:4 (fun x -> x + 3) [ 4 ]);
  Alcotest.(check (list int))
    "more domains than items" [ 2; 4 ]
    (Pool.map ~domains:16 (fun x -> 2 * x) [ 1; 2 ])

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "default domains" `Quick test_default_domains;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "first exception wins" `Quick
            test_first_exception_wins;
          Alcotest.test_case "tally" `Quick test_tally;
          Alcotest.test_case "edge shapes" `Quick test_edge_shapes ] ) ]
