(* The domain pool behind the parallel sweeps: Pool.map must equal
   List.map exactly — same order, same values — at every domain count,
   and exceptions must surface deterministically. *)

let test_order_preserved () =
  let items = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        (List.map f items)
        (Pool.map ~domains f items))
    [ 1; 2; 4; 8 ]

let test_default_domains () =
  Alcotest.(check bool) "at least one" true (Pool.default_domains () >= 1)

let test_mapi () =
  Alcotest.(check (list string))
    "mapi" [ "0a"; "1b"; "2c" ]
    (Pool.mapi ~domains:3 (fun i s -> string_of_int i ^ s) [ "a"; "b"; "c" ])

exception Boom of int

let test_first_exception_wins () =
  (* items 3 and 7 both raise; the smallest-index failure is the one
     reported, independent of which domain hit it first *)
  let f x = if x mod 4 = 3 then raise (Boom x) else x in
  List.iter
    (fun domains ->
      match Pool.map ~domains f (List.init 10 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "first failing item (domains=%d)" domains)
            3 n)
    [ 1; 2; 4 ]

let test_edge_shapes () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "singleton" [ 7 ]
    (Pool.map ~domains:4 (fun x -> x + 3) [ 4 ]);
  Alcotest.(check (list int))
    "more domains than items" [ 2; 4 ]
    (Pool.map ~domains:16 (fun x -> 2 * x) [ 1; 2 ])

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "default domains" `Quick test_default_domains;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "first exception wins" `Quick
            test_first_exception_wins;
          Alcotest.test_case "edge shapes" `Quick test_edge_shapes ] ) ]
