(* Unit and property tests for the Ndarray substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create_shape () =
  let a = Ndarray.create [ 2; 3 ] 0 in
  check_int "rank" 2 (Ndarray.rank a);
  Alcotest.(check (list int)) "shape" [ 2; 3 ] (Ndarray.shape a);
  check_int "size" 6 (Ndarray.size a);
  check_int "dim 0" 2 (Ndarray.dim a 0);
  check_int "dim 1" 3 (Ndarray.dim a 1)

let test_scalar () =
  let a = Ndarray.scalar 42 in
  check_int "rank" 0 (Ndarray.rank a);
  check_int "size" 1 (Ndarray.size a);
  check_int "get" 42 (Ndarray.get_scalar a)

let test_init_get () =
  let a = Ndarray.init [ 3; 4 ] (function [ r; c ] -> (10 * r) + c | _ -> -1) in
  check_int "(0,0)" 0 (Ndarray.get2 a 0 0);
  check_int "(2,3)" 23 (Ndarray.get2 a 2 3);
  check_int "(1,2)" 12 (Ndarray.get a [ 1; 2 ])

let test_set () =
  let a = Ndarray.create [ 2; 2 ] 0 in
  Ndarray.set2 a 1 0 7;
  check_int "set/get" 7 (Ndarray.get2 a 1 0);
  check_int "others untouched" 0 (Ndarray.get2 a 0 0)

let test_of_list () =
  let a = Ndarray.of_list [ 5; 6; 7 ] in
  check_int "len" 3 (Ndarray.size a);
  check_int "elt" 6 (Ndarray.get1 a 1)

let test_of_list2 () =
  let a = Ndarray.of_list2 [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  Alcotest.(check (list int)) "shape" [ 3; 2 ] (Ndarray.shape a);
  check_int "(2,1)" 6 (Ndarray.get2 a 2 1)

let test_of_list2_ragged () =
  Alcotest.check_raises "ragged rows rejected"
    (Ndarray.Shape_error "of_list2: row 1 has length 1, expected 2") (fun () ->
      ignore (Ndarray.of_list2 [ [ 1; 2 ]; [ 3 ] ]))

let test_bounds () =
  let a = Ndarray.create [ 2; 2 ] 0 in
  check_bool "raises" true
    (try
       ignore (Ndarray.get2 a 2 0);
       false
     with Ndarray.Shape_error _ -> true)

let test_slice_view_row () =
  let a = Ndarray.of_list2 [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  let row = Ndarray.slice_view a [ Ndarray.Fix 1; Ndarray.Range (0, 3) ] in
  Alcotest.(check (list int)) "row shape" [ 3 ] (Ndarray.shape row);
  Alcotest.(check (list int)) "row contents" [ 4; 5; 6 ] (Ndarray.to_list row)

let test_slice_view_aliases () =
  let a = Ndarray.of_list2 [ [ 1; 2 ]; [ 3; 4 ] ] in
  let row = Ndarray.slice_view a [ Ndarray.Fix 0; Ndarray.Range (0, 2) ] in
  Ndarray.set1 row 1 99;
  check_int "write through view" 99 (Ndarray.get2 a 0 1)

let test_copy_region_independent () =
  let a = Ndarray.of_list2 [ [ 1; 2 ]; [ 3; 4 ] ] in
  let region = Ndarray.copy_region a [ Ndarray.Range (0, 1); Ndarray.Range (0, 2) ] in
  Ndarray.set2 region 0 0 99;
  check_int "copy is independent" 1 (Ndarray.get2 a 0 0)

let test_blit_region () =
  let dst = Ndarray.create [ 4; 4 ] 0 in
  let src = Ndarray.of_list2 [ [ 1; 2 ]; [ 3; 4 ] ] in
  Ndarray.blit_region ~src ~dst [ 1; 2 ];
  check_int "(1,2)" 1 (Ndarray.get2 dst 1 2);
  check_int "(2,3)" 4 (Ndarray.get2 dst 2 3);
  check_int "outside region" 0 (Ndarray.get2 dst 0 0)

let test_map_fold () =
  let a = Ndarray.init [ 2; 3 ] (fun _ -> 2) in
  let b = Ndarray.map (fun x -> x * 3) a in
  check_int "map" 6 (Ndarray.get2 b 1 1);
  check_int "fold" 36 (Ndarray.fold ( + ) 0 b)

let test_map2 () =
  let a = Ndarray.of_list [ 1; 2; 3 ] in
  let b = Ndarray.of_list [ 10; 20; 30 ] in
  let c = Ndarray.map2 ( + ) a b in
  Alcotest.(check (list int)) "sum" [ 11; 22; 33 ] (Ndarray.to_list c)

let test_concat1 () =
  let a = Ndarray.of_list [ 1; 2 ]
  and b = Ndarray.of_list ([] : int list)
  and c = Ndarray.of_list [ 3 ] in
  Alcotest.(check (list int)) "concat" [ 1; 2; 3 ]
    (Ndarray.to_list (Ndarray.concat1 [ a; b; c ]))

let test_reshape_transpose () =
  let a = Ndarray.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let m = Ndarray.reshape a [ 2; 3 ] in
  check_int "(1,0)" 4 (Ndarray.get2 m 1 0);
  let t = Ndarray.transpose2 m in
  Alcotest.(check (list int)) "transposed shape" [ 3; 2 ] (Ndarray.shape t);
  check_int "(0,1)" 4 (Ndarray.get2 t 0 1)

let test_indices_order () =
  Alcotest.(check (list (list int)))
    "row-major"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ]
    (Ndarray.indices [ 2; 3 ])

let test_linearize_roundtrip () =
  let shape = [ 3; 4; 5 ] in
  List.iter
    (fun idx ->
      let flat = Ndarray.linearize shape idx in
      Alcotest.(check (list int))
        "delinearize . linearize = id" idx
        (Ndarray.delinearize shape flat))
    (Ndarray.indices shape)

let test_equal () =
  let a = Ndarray.of_list [ 1; 2 ] and b = Ndarray.of_list [ 1; 2 ] in
  check_bool "equal" true (Ndarray.equal ( = ) a b);
  Ndarray.set1 b 0 9;
  check_bool "not equal" false (Ndarray.equal ( = ) a b);
  let c = Ndarray.of_list [ 1; 2; 3 ] in
  check_bool "shape mismatch" false (Ndarray.equal ( = ) a c)

let test_empty () =
  let a = Ndarray.create [ 0; 5 ] 1 in
  check_int "size" 0 (Ndarray.size a);
  check_int "fold over empty" 0 (Ndarray.fold ( + ) 0 a);
  check_bool "for_all on empty" true (Ndarray.for_all (fun _ -> false) a)

(* Property tests *)

let small_shape =
  QCheck.Gen.(list_size (int_range 0 3) (int_range 0 4))

let prop_size_is_product =
  QCheck.Test.make ~name:"size = product of dims" ~count:200
    (QCheck.make small_shape) (fun shape ->
      let a = Ndarray.create shape 0 in
      Ndarray.size a = List.fold_left ( * ) 1 shape)

let prop_init_get =
  QCheck.Test.make ~name:"init then get returns f idx" ~count:200
    (QCheck.make small_shape) (fun shape ->
      let f idx = List.fold_left (fun acc x -> (acc * 31) + x) 7 idx in
      let a = Ndarray.init shape f in
      List.for_all (fun idx -> Ndarray.get a idx = f idx) (Ndarray.indices shape))

let prop_copy_roundtrip =
  QCheck.Test.make ~name:"copy preserves contents" ~count:200
    (QCheck.make small_shape) (fun shape ->
      let a = Ndarray.init shape (fun idx -> List.length idx :: idx) in
      Ndarray.equal ( = ) a (Ndarray.copy a))

let prop_indices_count =
  QCheck.Test.make ~name:"indices length = size" ~count:200
    (QCheck.make small_shape) (fun shape ->
      List.length (Ndarray.indices shape) = List.fold_left ( * ) 1 shape)

let () =
  Alcotest.run "ndarray"
    [ ( "basics",
        [ Alcotest.test_case "create/shape" `Quick test_create_shape;
          Alcotest.test_case "scalar" `Quick test_scalar;
          Alcotest.test_case "init/get" `Quick test_init_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "of_list2" `Quick test_of_list2;
          Alcotest.test_case "of_list2 ragged" `Quick test_of_list2_ragged;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "empty arrays" `Quick test_empty ] );
      ( "views",
        [ Alcotest.test_case "slice row" `Quick test_slice_view_row;
          Alcotest.test_case "views alias" `Quick test_slice_view_aliases;
          Alcotest.test_case "copy_region independent" `Quick
            test_copy_region_independent;
          Alcotest.test_case "blit_region" `Quick test_blit_region ] );
      ( "bulk",
        [ Alcotest.test_case "map/fold" `Quick test_map_fold;
          Alcotest.test_case "map2" `Quick test_map2;
          Alcotest.test_case "concat1" `Quick test_concat1;
          Alcotest.test_case "reshape/transpose" `Quick test_reshape_transpose;
          Alcotest.test_case "equal" `Quick test_equal ] );
      ( "index math",
        [ Alcotest.test_case "indices order" `Quick test_indices_order;
          Alcotest.test_case "linearize roundtrip" `Quick
            test_linearize_roundtrip ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_size_is_product; prop_init_get; prop_copy_roundtrip;
            prop_indices_count ] ) ]
