(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed first, in paper-shaped rows), then times each
   compiler/simulator stage with Bechamel — one Test.make per artifact.

   Run: dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Paper artifacts: print the regenerated numbers                      *)
(* ------------------------------------------------------------------ *)

let rule () = print_endline (String.make 72 '=')

let print_artifacts () =
  let benches = Suite.all () in
  rule ();
  Experiments.print_table5 benches;
  print_newline ();
  rule ();
  Experiments.print_fig5c
    (Experiments.fig5c ~n:1024 ~k:256 ~d:32 ~b0:64 ~b1:16 ());
  print_newline ();
  rule ();
  Experiments.print_fig7 (Experiments.fig7 benches);
  print_newline ();
  rule ();
  print_endline
    "Extension applications — same three configurations (no paper reference)";
  Printf.printf "%-12s %12s %12s %12s | %8s %8s\n" "benchmark" "baseline"
    "+tiling" "+meta" "tiling" "meta";
  let paper_names = List.map (fun b -> b.Suite.name) benches in
  let extras =
    List.filter
      (fun (b : Suite.bench) -> not (List.mem b.Suite.name paper_names))
      (Suite.extended ())
  in
  List.iter
    (fun (r : Experiments.fig7_row) ->
      Printf.printf "%-12s %12.0f %12.0f %12.0f | %7.2fx %7.2fx\n" r.bench
        (r.cycles Experiments.Baseline)
        (r.cycles Experiments.Tiled)
        (r.cycles Experiments.Tiled_meta)
        (r.speedup Experiments.Tiled)
        (r.speedup Experiments.Tiled_meta))
    (Experiments.fig7 extras);
  print_newline ();
  rule ();
  print_endline
    "Table 4 — template vocabulary and the benchmarks instantiating it";
  let designs =
    List.map
      (fun (b : Suite.bench) ->
        (b.Suite.name, Experiments.design_of Experiments.Tiled_meta b))
      (Suite.extended ())
  in
  let mem_users kind =
    List.filter_map
      (fun (n, d) ->
        if List.exists (fun m -> m.Hw.kind = kind) d.Hw.mems then Some n
        else None)
      designs
  in
  let ctrl_users pred =
    List.filter_map
      (fun (n, d) ->
        if Hw.fold_ctrls (fun acc c -> acc || pred c) false d.Hw.top then
          Some n
        else None)
      designs
  in
  let pipe_users t =
    ctrl_users (function Hw.Pipe { template; _ } -> template = t | _ -> false)
  in
  let show label users =
    Printf.printf "  %-22s %s\n" label
      (if users = [] then "-" else String.concat ", " users)
  in
  show "buffer" (mem_users Hw.Buffer);
  show "double buffer" (mem_users Hw.Double_buffer);
  show "cache" (mem_users Hw.Cache);
  show "FIFO" (mem_users Hw.Fifo);
  show "CAM" (mem_users Hw.Cam);
  show "vector unit" (pipe_users Hw.Vector);
  show "reduction tree" (pipe_users Hw.Tree);
  show "parallel FIFO write" (pipe_users Hw.Fifo_write);
  show "CAM update" (pipe_users Hw.Cam_update);
  show "tile load/store"
    (ctrl_users (function Hw.Tile_load _ | Hw.Tile_store _ -> true | _ -> false));
  show "metapipeline"
    (ctrl_users (function Hw.Loop { meta = true; _ } -> true | _ -> false));
  show "parallel controller"
    (ctrl_users (function Hw.Par _ -> true | _ -> false));
  print_newline ();
  rule ();
  print_endline "Tables 1-3 — transformation exemplars (gemm IR sizes)";
  let t = Gemm.make () in
  let r =
    Tiling.run
      ~tiles:[ (t.Gemm.m, 64); (t.Gemm.n, 64); (t.Gemm.p, 64) ]
      t.Gemm.prog
  in
  List.iter
    (fun (name, (p : Ir.program)) ->
      Printf.printf "  gemm %-24s %4d IR nodes\n" name
        (Rewrite.node_count p.Ir.body))
    [ ("fused", r.Tiling.fused);
      ("strip-mined (Table 3)", r.Tiling.stripped);
      ("with tile copies", r.Tiling.stripped_with_copies);
      ("interchanged (Table 3)", r.Tiling.tiled) ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations (design choices DESIGN.md calls out)                      *)
(* ------------------------------------------------------------------ *)

let print_ablations () =
  rule ();
  print_endline "Ablation: gemm tile-size sweep (cycles and BRAM at 1024^3)";
  let t = Gemm.make () in
  let sizes = [ (t.Gemm.m, 1024); (t.Gemm.n, 1024); (t.Gemm.p, 1024) ] in
  (* each point is an independent compile+simulate chain: fan out across
     the pool, print in order *)
  List.iter print_string
    (Pool.map
       (fun b ->
         let r =
           Tiling.run
             ~tiles:[ (t.Gemm.m, b); (t.Gemm.n, b); (t.Gemm.p, b) ]
             t.Gemm.prog
         in
         let d = Lower.program Lower.default_opts r.Tiling.tiled in
         let rep = Simulate.run d ~sizes in
         let area = Area_model.of_design d in
         Printf.sprintf "  b=%-4d %14.0f cycles %8.0f M20K %14.0f words read\n"
           b rep.Simulate.cycles area.Area_model.bram (Simulate.total_read rep))
       [ 16; 32; 64; 128; 256 ]);
  print_newline ();
  print_endline "Ablation: kmeans parallelism-factor sweep (+tiling+meta)";
  let bench = Suite.find (Suite.all ()) "kmeans" in
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  List.iter print_string
    (Pool.map
       (fun par ->
         let d =
           Lower.program { Lower.default_opts with Lower.par } r.Tiling.tiled
         in
         let rep = Simulate.run d ~sizes:bench.Suite.sim_sizes in
         let area = Area_model.of_design d in
         Printf.sprintf "  par=%-3d %14.0f cycles %10.0f logic\n" par
           rep.Simulate.cycles area.Area_model.logic)
       [ 4; 8; 16; 32; 64 ]);
  print_newline ();
  print_endline "Ablation: tpchq6 filter-reduce fusion (FIFO removed)";
  let q6 = Suite.find (Suite.all ()) "tpchq6" in
  List.iter
    (fun (name, fuse) ->
      let r = Tiling.run ~fuse_filters:fuse ~tiles:q6.Suite.tiles q6.Suite.prog in
      let d = Lower.program Lower.default_opts r.Tiling.tiled in
      let rep = Simulate.run d ~sizes:q6.Suite.sim_sizes in
      let fifos =
        List.length (List.filter (fun m -> m.Hw.kind = Hw.Fifo) d.Hw.mems)
      in
      Printf.printf "  %-18s %12.0f cycles, %d FIFOs\n" name rep.Simulate.cycles
        fifos)
    [ ("separate filter", false); ("fused filter", true) ];
  print_newline ();
  print_endline
    "Ablation: metapipeline stage rebalancing (the paper's gda optimization)";
  List.iter
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      let base = Experiments.design_of Experiments.Baseline bench in
      let meta = Experiments.design_of Experiments.Tiled_meta bench in
      let sizes = bench.Suite.sim_sizes in
      let reb = Rebalance.apply ~factor:4 meta ~sizes in
      let c d = (Simulate.run d ~sizes).Simulate.cycles in
      let a_meta = Area_model.of_design meta in
      let a_reb = Area_model.of_design reb in
      Printf.printf
        "  %-8s meta %6.1fx -> rebalanced %6.1fx (logic %.0f -> %.0f)\n" name
        (c base /. c meta) (c base /. c reb) a_meta.Area_model.logic
        a_reb.Area_model.logic)
    [ "gda"; "gemm"; "kmeans" ];
  print_newline ();
  print_endline
    "Ablation: caches for non-affine leftover accesses (the paper's \
     generality claim over polyhedral tooling)";
  List.iter
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      List.iter
        (fun (label, cache) ->
          let d =
            Lower.program
              { Lower.default_opts with Lower.cache_leftover = cache }
              r.Tiling.tiled
          in
          let rep = Simulate.run d ~sizes:bench.Suite.sim_sizes in
          Printf.printf "  %-8s %-10s %14.0f cycles %14.0f words read\n" name
            label rep.Simulate.cycles (Simulate.total_read rep))
        [ ("cached", true); ("uncached", false) ])
    [ "gda"; "kmeans" ];
  print_newline ();
  print_endline "Sensitivity: Fig. 7 shape under perturbed machine models";
  Experiments.print_sensitivity (Experiments.sensitivity (Suite.all ()));
  print_newline ();
  print_endline
    "Scaling: Fig. 7 shape across problem sizes (note the kmeans crossover \
     at half scale, where the centroids fit the baseline's burst window)";
  Experiments.print_sensitivity (Experiments.scaling (Suite.all ()));
  print_newline ();
  print_endline
    "Ablation: tpchq6 modeled selectivity (FIFO consumer rate) — the FIFO \
     decouples the data-dependent output rate from the streaming stage, so \
     cycles stay flat across selectivities";
  let q6r = Tiling.run ~tiles:q6.Suite.tiles q6.Suite.prog in
  List.iter
    (fun rate ->
      let d =
        Lower.program { Lower.default_opts with Lower.fifo_rate = rate }
          q6r.Tiling.tiled
      in
      let rep = Simulate.run d ~sizes:q6.Suite.sim_sizes in
      Printf.printf "  selectivity=%-5.2f %12.0f cycles\n" rate
        rep.Simulate.cycles)
    [ 0.01; 0.02; 0.05; 0.1; 0.25; 0.5; 1.0 ];
  print_newline ();
  print_endline "Ablation: automated tile-size selection (DSE, gemm)";
  (match (Dse.explore_bench (Suite.find (Suite.all ()) "gemm")).Dse.best with
  | Some best ->
      Printf.printf "  selected %s: %.0f cycles, %.0f M20K\n"
        (String.concat ", "
           (List.map
              (fun (s, b) -> Printf.sprintf "%s=%d" (Sym.base s) b)
              best.Dse.tiles))
        best.Dse.cycles best.Dse.area.Area_model.bram
  | None -> print_endline "  no feasible point");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel DSE wall-clock banner                                      *)
(* ------------------------------------------------------------------ *)

let print_parallel_dse () =
  rule ();
  let par_domains = Int.max 2 (Pool.default_domains ()) in
  Printf.printf
    "Parallel DSE — joint tile/par sweeps, wall-clock (recommended domain \
     count %d; parallel leg uses %d)\n"
    (Pool.default_domains ()) par_domains;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      let sweep domains () =
        Dse.explore_bench ~domains ~pars:[ 4; 16; 64 ] bench
      in
      let seq, t_seq = time (sweep 1) in
      let par, t_par = time (sweep par_domains) in
      let identical =
        seq.Dse.points = par.Dse.points && seq.Dse.best = par.Dse.best
      in
      Printf.printf
        "  %-8s %3d points  1 domain %6.3fs  %d domains %6.3fs  speedup \
         %.2fx  %s\n"
        name
        (List.length seq.Dse.points)
        t_seq par_domains t_par
        (t_seq /. Float.max 1e-9 t_par)
        (if identical then "(results identical)" else "** RESULTS DIFFER **"))
    [ "gemm"; "kmeans" ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Timed benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let staged = Staged.stage

(* Table 1: one strip-mining rule application per pattern *)
let table1_tests =
  let mk_map () =
    let d = Dsl.size "d" in
    let x = Dsl.input "x" Ty.float_ [ Ir.Var d ] in
    Dsl.program ~name:"map" ~sizes:[ d ] ~inputs:[ x ]
      (Dsl.map1 (Dsl.dfull (Ir.Var d)) (fun i ->
           Dsl.( *! ) (Dsl.f 2.0) (Dsl.read (Dsl.in_var x) [ i ])))
  in
  let mk_fold () =
    let d = Dsl.size "d" in
    let x = Dsl.input "x" Ty.float_ [ Ir.Var d ] in
    Dsl.program ~name:"fold" ~sizes:[ d ] ~inputs:[ x ]
      (Dsl.fold1 (Dsl.dfull (Ir.Var d)) ~init:(Dsl.f 0.0)
         ~comb:(fun a b -> Dsl.( +! ) a b)
         (fun i acc -> Dsl.( +! ) acc (Dsl.read (Dsl.in_var x) [ i ])))
  in
  let mk_flatmap () = (Tpchq6.make ()).Tpchq6.prog in
  let mk_gbf () = (Histogram.make ()).Histogram.prog in
  List.map
    (fun (name, mk) ->
      let p = mk () in
      let tiles = List.map (fun s -> (s, 64)) p.Ir.size_params in
      Test.make ~name:(Printf.sprintf "table1/strip-mine-%s" name)
        (staged (fun () -> ignore (Strip_mine.program ~tiles p))))
    [ ("map", mk_map); ("multifold", mk_fold); ("flatmap", mk_flatmap);
      ("groupbyfold", mk_gbf) ]

(* Table 2: strip mining the worked examples *)
let table2_tests =
  List.map
    (fun name ->
      let bench = Suite.find (Suite.all ()) name in
      Test.make ~name:(Printf.sprintf "table2/%s" name)
        (staged (fun () ->
             ignore
               (Strip_mine.program ~tiles:bench.Suite.tiles bench.Suite.prog))))
    [ "sumrows"; "outerprod" ]

(* Table 3: gemm interchange *)
let table3_tests =
  let t = Gemm.make () in
  let stripped =
    Strip_mine.program
      ~tiles:[ (t.Gemm.m, 64); (t.Gemm.n, 64); (t.Gemm.p, 64) ]
      t.Gemm.prog
  in
  [ Test.make ~name:"table3/gemm-interchange"
      (staged (fun () -> ignore (Interchange.program stripped))) ]

(* Fig. 5a/5b: the full k-means tiling pipeline *)
let fig5_tests =
  let t = Kmeans.make () in
  [ Test.make ~name:"fig5/kmeans-tiling-pipeline"
      (staged (fun () ->
           ignore
             (Tiling.run
                ~tiles:[ (t.Kmeans.n, 64); (t.Kmeans.k, 16) ]
                t.Kmeans.prog))) ]

(* Fig. 5c: traffic counters *)
let fig5c_tests =
  [ Test.make ~name:"fig5c/kmeans-traffic"
      (staged (fun () ->
           ignore (Experiments.fig5c ~n:1024 ~k:256 ~d:32 ~b0:64 ~b1:16 ()))) ]

(* Table 4 / Fig. 6: hardware generation per benchmark *)
let table4_tests =
  List.map
    (fun (bench : Suite.bench) ->
      let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
      Test.make ~name:(Printf.sprintf "table4/lower-%s" bench.Suite.name)
        (staged (fun () ->
             ignore (Lower.program Lower.default_opts r.Tiling.tiled))))
    (Suite.all ())

(* Fig. 7: simulation of each benchmark in each configuration *)
let fig7_tests =
  List.concat_map
    (fun (bench : Suite.bench) ->
      List.map
        (fun (cname, cfg) ->
          let d = Experiments.design_of cfg bench in
          Test.make
            ~name:(Printf.sprintf "fig7/sim-%s-%s" bench.Suite.name cname)
            (staged (fun () ->
                 ignore (Simulate.run d ~sizes:bench.Suite.sim_sizes))))
        [ ("baseline", Experiments.Baseline);
          ("tiled", Experiments.Tiled);
          ("meta", Experiments.Tiled_meta) ])
    (Suite.all ())

(* ablation timing: DSE sweep *)
let dse_tests =
  [ Test.make ~name:"ablation/dse-gemm"
      (staged (fun () ->
           ignore (Dse.explore_bench (Suite.find (Suite.all ()) "gemm")))) ]

(* event-engine validation of the Fig. 7 designs *)
let event_tests =
  List.map
    (fun (bench : Suite.bench) ->
      let d = Experiments.design_of Experiments.Tiled_meta bench in
      Test.make ~name:(Printf.sprintf "fig7/event-%s" bench.Suite.name)
        (staged (fun () ->
             ignore (Event_sim.run d ~sizes:bench.Suite.sim_sizes))))
    (Suite.all ())

(* Fig. 7 area bars *)
let area_tests =
  List.map
    (fun (bench : Suite.bench) ->
      let d = Experiments.design_of Experiments.Tiled_meta bench in
      Test.make ~name:(Printf.sprintf "fig7/area-%s" bench.Suite.name)
        (staged (fun () -> ignore (Area_model.of_design d))))
    (Suite.all ())

(* reference interpreter on the validation workloads *)
let interp_tests =
  List.map
    (fun (bench : Suite.bench) ->
      let sizes = bench.Suite.test_sizes in
      let inputs = bench.Suite.gen ~sizes ~seed:7 in
      Test.make ~name:(Printf.sprintf "interp/%s" bench.Suite.name)
        (staged (fun () ->
             ignore (Eval.eval_program bench.Suite.prog ~sizes ~inputs))))
    (Suite.all ())

(* toolchain stages beyond the paper's artifacts: concrete-syntax parse,
   static bounds verification, design validation *)
let tooling_tests =
  let kb = Suite.find (Suite.all ()) "kmeans" in
  let r = Tiling.run ~tiles:kb.Suite.tiles kb.Suite.prog in
  let text = Pp.program_to_string r.Tiling.tiled in
  let d = Experiments.design_of Experiments.Tiled_meta kb in
  [ Test.make ~name:"tooling/parse-tiled-kmeans"
      (staged (fun () -> ignore (Parser.program_of_string text)));
    Test.make ~name:"tooling/bounds-tiled-kmeans"
      (staged (fun () -> ignore (Bounds.check_program r.Tiling.tiled)));
    Test.make ~name:"tooling/hw-check-kmeans"
      (staged (fun () -> ignore (Hw_check.check d)));
    Test.make ~name:"tooling/bottlenecks-kmeans"
      (staged (fun () ->
           ignore (Simulate.bottlenecks d ~sizes:kb.Suite.sim_sizes))) ]

let all_tests =
  table1_tests @ table2_tests @ table3_tests @ fig5_tests @ fig5c_tests
  @ table4_tests @ fig7_tests @ event_tests @ area_tests @ dse_tests
  @ interp_tests @ tooling_tests

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_timings () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-40s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (t :: _) ->
              let unit, v =
                if t > 1e9 then ("s ", t /. 1e9)
                else if t > 1e6 then ("ms", t /. 1e6)
                else if t > 1e3 then ("us", t /. 1e3)
                else ("ns", t)
              in
              Printf.printf "%-40s %11.2f %s\n" name v unit
          | _ -> Printf.printf "%-40s %14s\n" name "n/a")
        analyzed)
    all_tests

let () =
  print_artifacts ();
  print_ablations ();
  print_parallel_dse ();
  rule ();
  print_endline "Timing (Bechamel, monotonic clock, OLS estimate per run)";
  run_timings ()
