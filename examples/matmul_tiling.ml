(* Matrix multiplication and the interchange rule (Table 3).

   Walks gemm through strip mining and pattern interchange, showing how
   interchange moves the strided p-tile fold out of the unstrided tile map
   — and what that does to DRAM traffic and simulated runtime.

   Run: dune exec examples/matmul_tiling.exe *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let t = Gemm.make () in
  let b = 64 in
  let tiles = [ (t.Gemm.m, b); (t.Gemm.n, b); (t.Gemm.p, b) ] in
  let r = Tiling.run ~tiles t.Gemm.prog in

  section "gemm in PPL";
  print_endline (Pp.program_to_string t.Gemm.prog);

  section "strip-mined (Table 3, middle column)";
  print_endline (Pp.program_to_string r.Tiling.stripped);

  section "interchanged (Table 3, right column: yTile hoisted into the p-tile fold)";
  print_endline (Pp.program_to_string r.Tiling.tiled);

  section "correctness";
  let m = 48 and n = 40 and p = 56 in
  let sizes = [ (t.Gemm.m, m); (t.Gemm.n, n); (t.Gemm.p, p) ] in
  let inputs = Gemm.gen_inputs t ~seed:5 ~m ~n ~p in
  let x, y = Gemm.raw_inputs ~seed:5 ~m ~n ~p in
  let expected = Workloads.value_of_matrix (Gemm.reference x y) in
  Printf.printf "  tiled result %s\n"
    (if
       Value.equal ~eps:1e-5 expected
         (Eval.eval_program r.Tiling.tiled ~sizes ~inputs)
     then "matches reference"
     else "MISMATCH");

  section "effect of interchange on DRAM traffic (1024^3, tiles 128)";
  let bench = Suite.find (Suite.all ()) "gemm" in
  let sim prog opts =
    let d = Lower.program opts prog in
    Simulate.run d ~sizes:bench.Suite.sim_sizes
  in
  let r' = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  let seq = { Lower.default_opts with Lower.meta = false } in
  List.iter
    (fun (name, rep) ->
      Printf.printf "  %-28s reads %12.0f words   %12.0f cycles\n" name
        (Simulate.total_read rep) rep.Simulate.cycles)
    [ ("baseline (burst locality)", sim r'.Tiling.fused Lower.baseline_opts);
      ("strip-mined only", sim r'.Tiling.stripped_with_copies seq);
      ("strip-mined + interchange", sim r'.Tiling.tiled seq);
      ("            + metapipelining", sim r'.Tiling.tiled Lower.default_opts) ]
