(* Logistic regression via the collections front end, end to end:
   gradient-descent steps on the accelerator with a host loop.

   Shows the Fig. 3-style surface syntax (collections + reductions), the
   generated hardware (a metapipeline with a transcendental datapath), and
   the host runtime model amortizing the PCIe transfer over training
   epochs.

   Run: dune exec examples/logistic_regression.exe *)

open Collections

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let t = Logreg.make () in

  section "gradient step in PPL (note the shared per-sample error term)";
  print_endline (Pp.program_to_string t.Logreg.prog);

  section "the same dot product, written against the collections layer";
  let x = mat_of_input t.Logreg.x and w = vec_of_input t.Logreg.w in
  let wx0 = dot w (row x (Dsl.i 0)) in
  print_endline ("  w . x_0  =  " ^ Pp.exp_to_string wx0);

  section "correctness";
  let n = 64 and d = 8 in
  let xs, ys, ws = Logreg.raw_inputs ~seed:1 ~n ~d in
  let v =
    Eval.eval_program t.Logreg.prog
      ~sizes:[ (t.Logreg.n, n); (t.Logreg.d, d) ]
      ~inputs:(Logreg.gen_inputs t ~seed:1 ~n ~d)
  in
  Printf.printf "  gradient %s\n"
    (if
       Value.equal ~eps:1e-5
         (Workloads.value_of_vector (Logreg.reference ~x:xs ~y:ys ~w:ws))
         v
     then "matches reference"
     else "MISMATCH");

  section "tiled hardware";
  let r = Tiling.run ~tiles:[ (t.Logreg.n, 1024) ] t.Logreg.prog in
  let design = Lower.program Lower.default_opts r.Tiling.tiled in
  print_string (Hw_pp.design_to_string design);

  section "training: 50 epochs on the accelerator";
  let nv = 1 lsl 17 and dv = 64 in
  let sizes = [ (t.Logreg.n, nv); (t.Logreg.d, dv) ] in
  let input_bytes = float_of_int (((nv * dv) + nv + dv) * 4) in
  let output_bytes = float_of_int (dv * 4) in
  let s =
    Runtime.run design ~sizes ~input_bytes ~output_bytes ~invocations:50
  in
  Format.printf "  %a@." Runtime.pp_summary s;
  let rb = Tiling.run ~tiles:[] t.Logreg.prog in
  let base = Lower.program Lower.baseline_opts rb.Tiling.fused in
  let sb = Runtime.run base ~sizes ~input_bytes ~output_bytes ~invocations:50 in
  Printf.printf "  untiled baseline would need %.1f ms (%.2fx slower)\n"
    (1e3 *. sb.Runtime.total_s)
    (sb.Runtime.total_s /. s.Runtime.total_s)
