(* The paper's running example, end to end: k-means clustering (Fig. 3-6).

   Shows the IR after each transformation stage (Fig. 4 -> Fig. 5a -> 5b),
   the Fig. 5c traffic table, the generated hardware (Fig. 6), and the
   three simulated configurations of Fig. 7.

   Run: dune exec examples/kmeans_clustering.exe *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let t = Kmeans.make () in
  let n = 4096 and k = 64 and d = 16 in
  let b0 = 256 and b1 = 16 in
  let tiles = [ (t.Kmeans.n, b0); (t.Kmeans.k, b1) ] in
  let sizes = [ (t.Kmeans.n, n); (t.Kmeans.k, k); (t.Kmeans.d, d) ] in

  section "k-means in PPL (Fig. 4: fused parallel patterns)";
  print_endline (Pp.program_to_string t.Kmeans.prog);

  let r = Tiling.run ~tiles t.Kmeans.prog in

  section "strip-mined (Fig. 5a: tiles for points and centroids)";
  print_endline (Pp.program_to_string r.Tiling.stripped_with_copies);

  section "interchanged (Fig. 5b: centroid tiles reused across the point tile)";
  print_endline (Pp.program_to_string r.Tiling.tiled);

  section "correctness: every stage against the reference implementation";
  let points, centroids = Kmeans.raw_inputs ~seed:3 ~n ~k ~d in
  let inputs = Kmeans.gen_inputs t ~seed:3 ~n ~k ~d in
  let expected = Workloads.value_of_matrix (Kmeans.reference ~points ~centroids) in
  List.iter
    (fun (name, prog) ->
      let v = Eval.eval_program prog ~sizes ~inputs in
      Printf.printf "  %-24s %s\n" name
        (if Value.equal ~eps:1e-4 expected v then "matches reference"
         else "MISMATCH"))
    [ ("fused", r.Tiling.fused);
      ("strip-mined", r.Tiling.stripped_with_copies);
      ("interchanged", r.Tiling.tiled) ];

  section "Fig. 5c: main-memory words per structure";
  Experiments.print_fig5c (Experiments.fig5c ~n:1024 ~k:256 ~d:32 ~b0:64 ~b1:16 ());

  section "generated hardware (Fig. 6)";
  let design = Lower.program Lower.default_opts r.Tiling.tiled in
  print_string (Hw_pp.design_to_string design);

  section "the three configurations of Section 6.2";
  let bench = Suite.find (Suite.all ()) "kmeans" in
  List.iter
    (fun cfg ->
      let dsg = Experiments.design_of cfg bench in
      let rep = Simulate.run dsg ~sizes:bench.Suite.sim_sizes in
      Printf.printf "  %-24s %12.0f cycles  (%.2f ms, DRAM reads %.0f words)\n"
        (Experiments.config_name cfg) rep.Simulate.cycles
        (1e3 *. Machine.seconds Machine.default rep.Simulate.cycles)
        (Simulate.total_read rep))
    [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ];

  section "host loop: iterating to convergence (the paper's outer repeat)";
  (* the paper runs one refinement per invocation; the host re-invokes the
     bitstream until the centroids stop changing.  Model 10 iterations. *)
  let dsg = Experiments.design_of Experiments.Tiled_meta bench in
  (* look the suite's sizes up by base name: the suite instance carries its
     own symbols *)
  let size_by_base nm =
    match
      List.find_opt (fun (s, _) -> Sym.base s = nm) bench.Suite.sim_sizes
    with
    | Some (_, v) -> v
    | None -> 0
  in
  let nv = size_by_base "n" and kv = size_by_base "k" and dv = size_by_base "d" in
  let input_bytes = float_of_int (((nv * dv) + (kv * dv)) * 4) in
  let output_bytes = float_of_int (kv * dv * 4) in
  let s =
    Runtime.run dsg ~sizes:bench.Suite.sim_sizes ~input_bytes ~output_bytes
      ~invocations:10
  in
  Format.printf "  10 iterations: %a@." Runtime.pp_summary s
