(* Quickstart: write a parallel-pattern program with the DSL, tile it,
   generate hardware, and simulate it.

   Run: dune exec examples/quickstart.exe *)

open Dsl

let () =
  (* A dot product: map the element-wise products, reduce them.
     [size] declares runtime size parameters; [input] declares DRAM-resident
     input arrays; patterns come from the Dsl module (Fig. 2 of the paper). *)
  let n = size "n" in
  let x = input "x" Ty.float_ [ Ir.Var n ] in
  let y = input "y" Ty.float_ [ Ir.Var n ] in
  let body =
    fold1
      (dfull (Ir.Var n))
      ~init:(f 0.0)
      ~comb:(fun a b -> a +! b)
      (fun i acc -> acc +! (read (in_var x) [ i ] *! read (in_var y) [ i ]))
  in
  let prog =
    program ~name:"dot" ~sizes:[ n ]
      ~max_sizes:[ (n, 1 lsl 20) ]  (* synthesis-time bound, for buffers *)
      ~inputs:[ x; y ] body
  in

  print_endline "=== source program (PPL) ===";
  print_endline (Pp.program_to_string prog);

  (* 1. Tile: strip mining + interchange + tile-copy inference (Section 4) *)
  let result = Tiling.run ~tiles:[ (n, 1024) ] prog in
  print_endline "\n=== after tiling (tile size 1024) ===";
  print_endline (Pp.program_to_string result.Tiling.tiled);

  (* 2. Check the transformation with the reference interpreter *)
  let nv = 3000 in
  let rng = Workloads.Rng.make 1 in
  let xs = Workloads.float_vector rng nv and ys = Workloads.float_vector rng nv in
  let inputs =
    [ (x.Ir.iname, Workloads.value_of_vector xs);
      (y.Ir.iname, Workloads.value_of_vector ys) ]
  in
  let sizes = [ (n, nv) ] in
  let v0 = Eval.eval_program prog ~sizes ~inputs in
  let v1 = Eval.eval_program result.Tiling.tiled ~sizes ~inputs in
  Printf.printf "\ninterpreter check: untiled = %s, tiled = %s -> %s\n"
    (Value.to_string v0) (Value.to_string v1)
    (if Value.equal ~eps:1e-6 v0 v1 then "EQUAL" else "MISMATCH");

  (* 3. Generate hardware (Section 5) and inspect it *)
  let design = Lower.program Lower.default_opts result.Tiling.tiled in
  print_endline "\n=== generated hardware ===";
  print_string (Hw_pp.design_to_string design);

  (* 4. Simulate on the modeled Max4/Stratix-V machine *)
  let report = Simulate.run design ~sizes:[ (n, 1 lsl 20) ] in
  print_endline "\n=== simulation (n = 2^20) ===";
  Format.printf "%a" Simulate.pp_report report;
  Printf.printf "time at %.0f MHz: %.3f ms\n"
    Machine.default.Machine.clock_mhz
    (1e3 *. Machine.seconds Machine.default report.Simulate.cycles)
