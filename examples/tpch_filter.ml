(* Streaming analytics: TPC-H Query 6 (filter + reduce).

   The FlatMap filter keeps its dynamic-size output in a parallel FIFO
   (Table 4); the reduce drains the FIFO inside the same metapipeline.
   Also shows the filter-fusion ablation: fusing the filter into the fold
   removes the FIFO entirely.

   Run: dune exec examples/tpch_filter.exe *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let t = Tpchq6.make () in
  let n = 20000 in
  let sizes = [ (t.Tpchq6.n, n) ] in
  let inputs = Tpchq6.gen_inputs t ~seed:11 ~n in
  let li = Tpchq6.raw_inputs ~seed:11 ~n in

  section "TPC-H Q6 in PPL (filter as FlatMap, then reduce)";
  print_endline (Pp.program_to_string t.Tpchq6.prog);
  Printf.printf "\npredicate selectivity on this workload: %.2f%%\n"
    (100.0 *. Workloads.q6_selectivity li);

  section "result check";
  let v = Eval.eval_program t.Tpchq6.prog ~sizes ~inputs in
  Printf.printf "  revenue = %s (reference %.4f)\n" (Value.to_string v)
    (Tpchq6.reference li);

  section "hardware with the FIFO (default: filter kept for the FIFO template)";
  let bench = Suite.find (Suite.all ()) "tpchq6" in
  let r = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog in
  let design = Lower.program Lower.default_opts r.Tiling.tiled in
  print_string (Hw_pp.design_to_string design);

  section "ablation: filter-reduce fusion removes the FIFO";
  let fused = Fusion.program ~fuse_filters:true t.Tpchq6.prog in
  Printf.printf "  fused semantics preserved: %b\n"
    (Value.equal ~eps:1e-6 v (Eval.eval_program fused ~sizes ~inputs));
  let rf = Tiling.run ~fuse_filters:true ~tiles:bench.Suite.tiles bench.Suite.prog in
  let design_fused = Lower.program Lower.default_opts rf.Tiling.tiled in
  let fifos d =
    List.length (List.filter (fun m -> m.Hw.kind = Hw.Fifo) d.Hw.mems)
  in
  Printf.printf "  FIFOs with separate filter: %d; after fusion: %d\n"
    (fifos design) (fifos design_fused);
  let c d = (Simulate.run d ~sizes:bench.Suite.sim_sizes).Simulate.cycles in
  Printf.printf "  cycles with FIFO: %.0f; fused: %.0f\n" (c design)
    (c design_fused)
