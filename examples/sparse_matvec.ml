(* Sparse matrix-vector multiply (CSR): what the pattern compiler does
   when the polyhedral playbook cannot apply.

   The row extents are data-dependent (rowptr(i+1) - rowptr(i)) and the
   x gather is indirect (x(cols(k))). Tiling still strip-mines the row
   loop — the row-pointer windows become tile buffers — while the
   data-dependent pieces are left in place and served by a cache, and
   the static bounds checker honestly reports them as unknown rather
   than proven.

   Run: dune exec examples/sparse_matvec.exe *)

let () =
  let t = Spmv.make () in

  (* 1. a small CSR system against the plain-OCaml reference *)
  let m = 6 and n = 8 and nnz = 17 in
  let rowptr, cols, vals, x = Spmv.raw_inputs ~seed:3 ~m ~n ~nnz in
  let v =
    Eval.eval_program t.Spmv.prog
      ~sizes:[ (t.Spmv.m, m); (t.Spmv.n, n); (t.Spmv.nnz, nnz) ]
      ~inputs:(Spmv.gen_inputs t ~seed:3 ~m ~n ~nnz)
  in
  let expected = Spmv.reference ~rowptr ~cols ~vals ~x in
  print_endline "row   nnz   y(row)";
  (match v with
  | Value.Arr a ->
      for r = 0 to m - 1 do
        match Ndarray.get a [ r ] with
        | Value.F y ->
            Printf.printf "%3d   %3d   %8.4f  (ref %8.4f)\n" r
              (rowptr.(r + 1) - rowptr.(r))
              y expected.(r)
        | _ -> assert false
      done
  | _ -> assert false);

  (* 2. tile the row loop; the data-dependent inner fold is untouched *)
  let r = Tiling.run ~tiles:[ (t.Spmv.m, 1024) ] t.Spmv.prog in
  print_endline "\n=== tiled IR (row loop strip-mined; gather left in place) ===";
  print_endline (Pp.program_to_string r.Tiling.tiled);

  (* 3. the bounds checker proves the affine accesses and says so about
     the data-dependent ones *)
  let accesses, ds = Bounds.audit r.Tiling.tiled in
  Printf.printf "\nstatic bounds: %d accesses, %d unknown (data-dependent), %d violations\n"
    accesses
    (List.length ds - List.length (Diagnostic.errors ds))
    (List.length (Diagnostic.errors ds));

  (* 4. the generated hardware: rowptr tile buffers + a cache for x *)
  let d = Experiments.design_of Experiments.Tiled_meta
      (Suite.find (Suite.extended ()) "spmv")
  in
  print_newline ();
  List.iter
    (fun (mem : Hw.mem) ->
      Printf.printf "memory %-16s %s\n" mem.Hw.mem_name
        (match mem.Hw.kind with
        | Hw.Cache -> "cache (serves the indirect x gather)"
        | Hw.Double_buffer -> "double buffer"
        | Hw.Buffer -> "buffer"
        | Hw.Fifo -> "fifo"
        | Hw.Cam -> "cam"
        | Hw.Reg -> "register"))
    d.Hw.mems
