(* Option pricing: compile the Black-Scholes benchmark and use the
   analysis tooling — per-input traffic, metapipeline bottlenecks, and
   pipeline-depth estimation — to understand where its cycles go.

   Black-Scholes is the anti-kmeans: a pure streaming workload where every
   input word is used exactly once, so tiling cannot reduce traffic and
   the interesting question is whether the deep floating-point datapath
   (log, exp, sqrt, divide) or the DRAM stream sets the pace.

   Run: dune exec examples/option_pricing.exe *)

let () =
  let bench = Suite.find (Suite.extended ()) "blackscholes" in

  (* 1. Price a small batch in the reference interpreter and check it
     against the plain-OCaml formula *)
  let t = Blackscholes.make () in
  let n = 16 in
  let s, k, tm = Blackscholes.raw_inputs ~seed:42 ~n in
  let v =
    Eval.eval_program t.Blackscholes.prog
      ~sizes:[ (t.Blackscholes.n, n) ]
      ~inputs:(Blackscholes.gen_inputs t ~seed:42 ~n)
  in
  let expected = Blackscholes.reference ~sptprice:s ~strike:k ~time:tm in
  print_endline "option    spot   strike   years    price";
  (match v with
  | Value.Arr arr ->
      for i = 0 to 4 do
        match Ndarray.get arr [ i ] with
        | Value.F p ->
            Printf.printf "%4d    %6.2f  %6.2f   %5.2f   %6.3f  (ref %6.3f)\n"
              i s.(i) k.(i) tm.(i) p expected.(i)
        | _ -> assert false
      done
  | _ -> assert false);

  (* 2. The datapath is deep: estimate the pipe's fill latency *)
  let d = Experiments.design_of Experiments.Tiled_meta bench in
  let deepest =
    Hw.fold_ctrls
      (fun acc c ->
        match c with Hw.Pipe { depth; _ } -> Int.max acc depth | _ -> acc)
      0 d.Hw.top
  in
  Printf.printf "\ndeepest pipe: %d stages of pipeline registers\n" deepest;

  (* 3. Traffic: tiling buys nothing on a streaming workload *)
  print_newline ();
  Experiments.print_traffic bench.Suite.name (Experiments.traffic bench);

  (* 4. So what limits the design? Ask the bottleneck analysis. *)
  print_newline ();
  Format.printf "%a" Simulate.pp_bottlenecks
    (Simulate.bottlenecks d ~sizes:bench.Suite.sim_sizes);

  (* 5. And the bottom line across the three configurations *)
  print_newline ();
  List.iter
    (fun cfg ->
      let d = Experiments.design_of cfg bench in
      let rep = Simulate.run d ~sizes:bench.Suite.sim_sizes in
      Printf.printf "%-24s %12.0f cycles  (%.3f ms at 150 MHz)\n"
        (Experiments.config_name cfg) rep.Simulate.cycles
        (1e3 *. Machine.seconds Machine.default rep.Simulate.cycles))
    [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ]
