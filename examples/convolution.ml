(* 1-D convolution: sliding windows and copy reuse factors.

   A stencil reads x(i + w) — two loop indices in one dimension.  The
   tile-copy inference detects the overlap, extends the tile by the window
   and marks the copy with a reuse factor so the tile load unit avoids
   re-fetching the halo (Section 4, "array tiles which have overlap ...
   are marked with a reuse factor").

   Run: dune exec examples/convolution.exe *)

open Dsl

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let n = size "n" in
  let taps = 5 in
  let x = input "x" Ty.float_ [ Ir.Prim (Ir.Add, [ Ir.Var n; Dsl.i (taps - 1) ]) ] in
  let w = input "w" Ty.float_ [ Dsl.i taps ] in
  let body =
    map1 (dfull (Ir.Var n)) (fun idx ->
        fold1
          (dfull (i taps))
          ~init:(f 0.0)
          ~comb:(fun a b -> a +! b)
          (fun t acc ->
            acc +! (read (in_var x) [ idx +! t ] *! read (in_var w) [ t ])))
  in
  let prog =
    program ~name:"conv1d" ~sizes:[ n ]
      ~max_sizes:[ (n, 1 lsl 20) ]
      ~inputs:[ x; w ] body
  in

  section "1-D convolution in PPL";
  print_endline (Pp.program_to_string prog);

  let r = Tiling.run ~tiles:[ (n, 1024) ] prog in
  section "tiled: the x tile covers the window overlap (note reuse marker)";
  print_endline (Pp.program_to_string r.Tiling.tiled);

  section "correctness";
  let nv = 777 in
  let rng = Workloads.Rng.make 9 in
  let xs = Workloads.float_vector rng (nv + taps - 1) in
  let ws = Workloads.float_vector rng taps in
  let inputs =
    [ (x.Ir.iname, Workloads.value_of_vector xs);
      (w.Ir.iname, Workloads.value_of_vector ws) ]
  in
  let sizes = [ (n, nv) ] in
  let expected =
    Workloads.value_of_vector
      (Array.init nv (fun idx ->
           let acc = ref 0.0 in
           for t = 0 to taps - 1 do
             acc := !acc +. (xs.(idx + t) *. ws.(t))
           done;
           !acc))
  in
  let tiled_v = Eval.eval_program r.Tiling.tiled ~sizes ~inputs in
  Printf.printf "  tiled convolution %s\n"
    (if Value.equal ~eps:1e-5 expected tiled_v then "matches reference"
     else "MISMATCH");

  section "generated hardware";
  let design = Lower.program Lower.default_opts r.Tiling.tiled in
  print_string (Hw_pp.design_to_string design);

  section "simulated at n = 2^20";
  let rep = Simulate.run design ~sizes:[ (n, 1 lsl 20) ] in
  Format.printf "%a" Simulate.pp_report rep
