(* ppl-fpga: command-line driver for the parallel-patterns-to-hardware
   compiler, simulator, and experiment harness. *)

open Cmdliner

let benches () = Suite.extended ()

let bench_conv =
  let parse s =
    match Suite.find (benches ()) s with
    | b -> Ok b
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown benchmark %S (try: %s)" s
                (String.concat ", "
                   (List.map (fun b -> b.Suite.name) (benches ())))))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt b.Suite.name)

let bench_arg =
  Arg.(
    required
    & pos 0 (some bench_conv) None
    & info [] ~docv:"BENCH" ~doc:"Benchmark name (see $(b,ppl-fpga list)).")

let config_arg =
  let cfg_conv =
    Arg.enum
      [ ("baseline", Experiments.Baseline);
        ("tiled", Experiments.Tiled);
        ("meta", Experiments.Tiled_meta) ]
  in
  Arg.(
    value & opt cfg_conv Experiments.Tiled_meta
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Hardware configuration: $(b,baseline) (burst-level locality \
           only), $(b,tiled) (tiling, sequential controllers), or $(b,meta) \
           (tiling + metapipelining).")

let stage_arg =
  Arg.(
    value
    & opt (enum [ ("fused", `Fused); ("stripped", `Stripped);
                  ("stripped-copies", `Swc); ("tiled", `Tiled) ])
        `Tiled
    & info [ "s"; "stage" ] ~docv:"STAGE"
        ~doc:
          "Pipeline stage to show: $(b,fused), $(b,stripped) (after strip \
           mining), $(b,stripped-copies) (strip mining with tile copies), \
           or $(b,tiled) (after interchange; the final form).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Evaluate independent sweep points on $(docv) parallel OCaml \
           domains (default: the runtime's recommended count; 1 = \
           sequential).  Results are identical at every domain count.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file covering this run \
           (compiler-pass wall-clock spans plus the simulator's \
           virtual-cycle timeline); load it at https://ui.perfetto.dev \
           or chrome://tracing.  A per-track summary is printed to \
           stderr.  See doc/OBSERVABILITY.md.")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics recorded by this invocation (pass timers, \
           simulator cache hit/miss counters, pool task counts, ...) \
           after the run.  The registry is process-global; the report is \
           the delta against a snapshot taken at command entry.")

(* Run a command body under the observability flags: tracing is enabled
   for the duration when --trace FILE is given (the JSON is written and a
   summary goes to stderr afterwards, even if the body raises), and the
   metrics recorded by this invocation are printed when --metrics is.
   The metrics registry is process-global and survives across in-process
   runs, so the report is a delta against the snapshot taken here — not
   lifetime totals. *)
let obs_wrap trace metrics f =
  let metrics_base = if metrics then Metrics.snapshot () else [] in
  (match trace with
  | Some _ ->
      Trace.clear ();
      Trace.enable ()
  | None -> ());
  Fun.protect f ~finally:(fun () ->
      (match trace with
      | Some file ->
          Trace.disable ();
          Trace.write file;
          prerr_string (Trace.summary ());
          Printf.eprintf "trace: wrote %s (open in https://ui.perfetto.dev)\n"
            file
      | None -> ());
      if metrics then
        Format.printf "%a" Metrics.pp_values
          (Metrics.diff ~base:metrics_base (Metrics.snapshot ())))

let warn_fallbacks ctx (r : Event_sim.result) =
  if r.Event_sim.fallbacks > 0 then
    Printf.eprintf
      "warning: %s: event engine fell back to the analytic model for %d \
       subtree(s) exceeding %d controller instances; their cycle counts \
       are closed-form estimates, not scheduled timelines\n"
      ctx r.Event_sim.fallbacks Event_sim.max_events

(* publish one event-engine run and (optionally) its timeline *)
let observe_event_run ctx trace (r : Event_sim.result) =
  warn_fallbacks ctx r;
  Metrics.incr ~by:r.Event_sim.events "sim.event.instances";
  Metrics.incr ~by:r.Event_sim.fallbacks "sim.event.fallbacks";
  if trace <> None then Option.iter Sim_trace.record r.Event_sim.timeline

let observe_cache cache =
  let st = Simulate.cache_stats cache in
  Metrics.incr ~by:st.Simulate.hits "sim.cache.hits";
  Metrics.incr ~by:st.Simulate.misses "sim.cache.misses";
  Metrics.set_gauge "sim.cache.nodes"
    (float_of_int (Simulate.cache_nodes cache))

(* Machine-readable simulation report, shared by `simulate --json` and
   `timeline --json`.  Numbers use Profile.json_float, so totals compare
   byte-for-byte with `profile --json`. *)
let report_json ~bench ~config ~engine (rep : Simulate.report) area =
  let f = Profile.json_float in
  let traffic t =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (f v)) t)
  in
  Printf.sprintf
    "{\"bench\": \"%s\", \"config\": \"%s\", \"engine\": \"%s\", \"cycles\": \
     %s, \"dram_cycles\": %s, \"reads\": {%s}, \"writes\": {%s}, \"area\": \
     {\"logic\": %s, \"ff\": %s, \"bram\": %s, \"dsp\": %s}, \"time_ms\": \
     %.6f}\n"
    bench config engine
    (f rep.Simulate.cycles)
    (f rep.Simulate.dram_cycles)
    (traffic rep.Simulate.reads)
    (traffic rep.Simulate.writes)
    (f area.Area_model.logic) (f area.Area_model.ff) (f area.Area_model.bram)
    (f area.Area_model.dsp)
    (1e3 *. Machine.seconds Machine.default rep.Simulate.cycles)

let tiling_of bench = Tiling.run ~tiles:bench.Suite.tiles bench.Suite.prog

let stage_prog bench = function
  | `Fused -> (tiling_of bench).Tiling.fused
  | `Stripped -> (tiling_of bench).Tiling.stripped
  | `Swc -> (tiling_of bench).Tiling.stripped_with_copies
  | `Tiled -> (tiling_of bench).Tiling.tiled

(* ------------------------------ commands ---------------------------- *)

let list_cmd =
  let run () =
    Experiments.print_table5 (Suite.all ());
    let paper = List.map (fun b -> b.Suite.name) (Suite.all ()) in
    Printf.printf "\nExtension applications (beyond the paper's Table 5)\n";
    List.iter
      (fun (b : Suite.bench) ->
        if not (List.mem b.Suite.name paper) then
          Printf.printf "%-12s %-38s %s\n" b.Suite.name b.Suite.description
            b.Suite.collection_ops)
      (benches ())
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List the benchmark suite (Table 5) and extension applications.")
    Term.(const run $ const ())

let ir_cmd =
  let run bench stage =
    print_endline (Pp.program_to_string (stage_prog bench stage))
  in
  Cmd.v
    (Cmd.info "ir"
       ~doc:"Print a benchmark's parallel-pattern IR at a pipeline stage.")
    Term.(const run $ bench_arg $ stage_arg)

let design_cmd =
  let run bench config =
    print_string
      (Hw_pp.design_to_string (Experiments.design_of config bench))
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:"Print the generated hardware design (controllers + memories).")
    Term.(const run $ bench_arg $ config_arg)

let maxj_cmd =
  let run bench config =
    print_string (Maxj.emit (Experiments.design_of config bench))
  in
  Cmd.v
    (Cmd.info "maxj" ~doc:"Emit the MaxJ-like HGL kernel for a benchmark.")
    Term.(const run $ bench_arg $ config_arg)

let dot_cmd =
  let run bench config =
    print_string (Dot.emit (Experiments.design_of config bench))
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit a Graphviz block diagram of the generated hardware (the \
          Fig. 6 view).")
    Term.(const run $ bench_arg $ config_arg)

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("analytic", `Analytic); ("event", `Event) ]) `Analytic
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulation engine: $(b,analytic) (hierarchical closed forms) or \
           $(b,event) (per-instance scheduling with double-buffer \
           handshakes and a DRAM calendar).")

let breakdown_flag =
  Arg.(value & flag & info [ "breakdown" ] ~doc:"Per-controller timing table.")

let bottlenecks_flag =
  Arg.(
    value & flag
    & info [ "bottlenecks" ]
        ~doc:
          "Per-metapipeline bottleneck table: the slowest stage and \
           whether compute or DRAM sets the steady state (the analysis \
           behind the gda rebalancing).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Machine-readable output: one JSON object with cycles, DRAM \
           traffic and area (numbers formatted as in $(b,profile --json), \
           so totals compare byte-for-byte).")

let simulate_cmd =
  let run bench config engine breakdown bottlenecks json trace metrics =
    obs_wrap trace metrics @@ fun () ->
    let d = Experiments.design_of config bench in
    (* one memo cache serves the report, the breakdown and the
       bottleneck table — each subtree is simulated once *)
    let cache = Simulate.cache () in
    let rep =
      match engine with
      | `Analytic ->
          let rep = Simulate.run ~cache d ~sizes:bench.Suite.sim_sizes in
          (* the virtual timeline always comes from the event engine, so a
             trace has a simulator section under either engine *)
          if trace <> None then
            observe_event_run bench.Suite.name trace
              (Event_sim.run ~record:true d ~sizes:bench.Suite.sim_sizes);
          rep
      | `Event ->
          let r =
            Event_sim.run ~record:(trace <> None) d
              ~sizes:bench.Suite.sim_sizes
          in
          if not json then
            Printf.printf
              "(event engine: %d controller instances, %d fallbacks)\n"
              r.Event_sim.events r.Event_sim.fallbacks;
          observe_event_run bench.Suite.name trace r;
          r.Event_sim.report
    in
    let a = Area_model.of_design d in
    if json then
      print_string
        (report_json ~bench:bench.Suite.name
           ~config:(Experiments.config_name config)
           ~engine:(match engine with `Analytic -> "analytic" | `Event -> "event")
           rep a)
    else begin
      Printf.printf "%s / %s\n" bench.Suite.name
        (Experiments.config_name config);
      Format.printf "%a" Simulate.pp_report rep;
      Format.printf "area: %a@." Area_model.pp a;
      Format.printf "utilization (Stratix V): %a%s@." Area_model.pp_utilization
        a
        (if Area_model.fits a then "" else "  ** EXCEEDS CHIP **");
      Printf.printf "time at %.0f MHz: %.3f ms\n"
        Machine.default.Machine.clock_mhz
        (1e3 *. Machine.seconds Machine.default rep.Simulate.cycles);
      if breakdown then
        Format.printf "%a"
          Simulate.pp_breakdown
          (Simulate.breakdown ~cache d ~sizes:bench.Suite.sim_sizes);
      if bottlenecks then
        Format.printf "%a"
          Simulate.pp_bottlenecks
          (Simulate.bottlenecks ~cache d ~sizes:bench.Suite.sim_sizes)
    end;
    observe_cache cache
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a benchmark's design: cycles, DRAM traffic, area.")
    Term.(
      const run $ bench_arg $ config_arg $ engine_arg $ breakdown_flag
      $ bottlenecks_flag $ json_flag $ trace_arg $ metrics_flag)

let verify_cmd =
  let run bench =
    let r = tiling_of bench in
    let sizes = bench.Suite.test_sizes in
    let inputs = bench.Suite.gen ~sizes ~seed:2026 in
    let reference = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
    List.iter
      (fun (name, prog) ->
        let v = Eval.eval_program prog ~sizes ~inputs in
        Printf.printf "%-22s %s\n" name
          (if Value.equal ~eps:1e-6 reference v then "ok" else "MISMATCH"))
      [ ("fused", r.Tiling.fused);
        ("strip-mined", r.Tiling.stripped);
        ("strip-mined+copies", r.Tiling.stripped_with_copies);
        ("interchanged", r.Tiling.tiled) ]
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Evaluate every tiling stage with the reference interpreter and \
          check it against the untiled program.")
    Term.(const run $ bench_arg)

let fig5c_cmd =
  let n = Arg.(value & opt int 1024 & info [ "n" ] ~doc:"Number of points.") in
  let k = Arg.(value & opt int 256 & info [ "k" ] ~doc:"Number of clusters.") in
  let d = Arg.(value & opt int 32 & info [ "d" ] ~doc:"Point dimensionality.") in
  let b0 = Arg.(value & opt int 64 & info [ "b0" ] ~doc:"Tile size for n.") in
  let b1 = Arg.(value & opt int 16 & info [ "b1" ] ~doc:"Tile size for k.") in
  let run n k d b0 b1 =
    Experiments.print_fig5c (Experiments.fig5c ~n ~k ~d ~b0 ~b1 ())
  in
  Cmd.v
    (Cmd.info "fig5c"
       ~doc:
         "Reproduce Fig. 5c: k-means main-memory reads and on-chip storage \
          per structure for the fused, strip-mined and interchanged forms.")
    Term.(const run $ n $ k $ d $ b0 $ b1)

let stats_cmd =
  let run bench =
    let r = tiling_of bench in
    print_endline Ir_stats.header;
    List.iter
      (fun (name, prog) ->
        print_endline (Ir_stats.row name (Ir_stats.of_program prog)))
      [ ("source", bench.Suite.prog);
        ("fused", r.Tiling.fused);
        ("strip-mined", r.Tiling.stripped);
        ("with copies", r.Tiling.stripped_with_copies);
        ("interchanged", r.Tiling.tiled) ]
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show IR statistics for each transformation stage.")
    Term.(const run $ bench_arg)

let dse_cmd =
  let budget =
    Arg.(
      value & opt float 2560.0
      & info [ "bram" ] ~docv:"BLOCKS"
          ~doc:"On-chip memory budget in M20K blocks (Stratix V: 2560).")
  in
  let pars_arg =
    Arg.(
      value & opt (list int) []
      & info [ "pars" ] ~docv:"P1,P2,..."
          ~doc:
            "Also sweep these parallelism factors jointly with the tile \
             sizes (default: the single default factor).")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "After the sweep, rebuild the selected design and print its \
             top-3 cycle sinks by source pattern — what to optimize next \
             at the chosen tile sizes.")
  in
  let run bench budget pars domains profile trace metrics =
    obs_wrap trace metrics @@ fun () ->
    Printf.printf
      "tile-size exploration for %s (budget %.0f M20K, sizes at sim scale)\n\n"
      bench.Suite.name budget;
    let res = Dse.explore_bench ?domains ~bram_budget:budget ~pars bench in
    Dse.print_result res;
    if profile then
      match res.Dse.best with
      | None -> print_endline "\nprofile: no feasible point to profile"
      | Some best ->
          let r = Tiling.run ~tiles:best.Dse.tiles bench.Suite.prog in
          let d =
            Lower.program
              { Lower.default_opts with Lower.par = best.Dse.par }
              r.Tiling.tiled
          in
          let p = Profile.of_design d ~sizes:bench.Suite.sim_sizes in
          Printf.printf "\ntop cycle sinks for the selected tile (%s, par %d)\n"
            (String.concat ", "
               (List.map
                  (fun (s, b) -> Printf.sprintf "%s=%d" (Sym.base s) b)
                  best.Dse.tiles))
            best.Dse.par;
          List.iter
            (fun (o : Profile.origin_row) ->
              Printf.printf "  %-36s %14.0f cycles  %5.1f%%\n" o.Profile.origin
                o.Profile.o_cycles
                (100.0 *. o.Profile.o_share))
            (Profile.top_sinks p 3)
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Automated tile-size (and optionally parallelism-factor) \
          selection (the paper's future-work loop): sweep candidates in \
          parallel across OCaml domains, model cycles and area, pick the \
          fastest design that fits the memory budget and the chip.")
    Term.(
      const run $ bench_arg $ budget $ pars_arg $ domains_arg $ profile_flag
      $ trace_arg $ metrics_flag)

let compile_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .ppl program (the syntax ir/export emit).")
  in
  let tiles_arg =
    Arg.(
      value & opt (list (pair ~sep:'=' string int)) []
      & info [ "tiles" ] ~docv:"NAME=SIZE,..."
          ~doc:"Tile configuration by size-parameter base name.")
  in
  let sizes_arg =
    Arg.(
      value & opt (list (pair ~sep:'=' string int)) []
      & info [ "sizes" ] ~docv:"NAME=N,..."
          ~doc:
            "Concrete size-parameter values; when given, the compiled \
             design is also simulated at them.")
  in
  let run file tiles_spec sizes_spec engine trace metrics =
    obs_wrap trace metrics @@ fun () ->
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let prog = Parser.program_of_string text in
    ignore (Validate.check_program prog);
    Printf.printf "parsed %s: %d IR nodes, result type ok\n" prog.Ir.pname
      (Rewrite.node_count prog.Ir.body);
    let resolve spec =
      List.filter_map
        (fun (name, v) ->
          match
            List.find_opt (fun s -> Sym.base s = name) prog.Ir.size_params
          with
          | Some s -> Some (s, v)
          | None ->
              Printf.printf "warning: no size parameter %s\n" name;
              None)
        spec
    in
    let tiles = resolve tiles_spec in
    let r = Tiling.run ~tiles prog in
    print_endline (Pp.program_to_string r.Tiling.tiled);
    let d = Lower.program Lower.default_opts r.Tiling.tiled in
    print_string (Hw_pp.design_to_string d);
    (match Hw_lint.check_all d with
    | [] -> print_endline "design check: ok"
    | fs ->
        List.iter (fun f -> Format.printf "design check: %a@." Diagnostic.pp f) fs;
        if Diagnostic.has_errors fs then exit 1
        else Printf.printf "design check: ok (%s)\n" (Diagnostic.summary fs));
    match resolve sizes_spec with
    | [] -> ignore engine
    | sizes ->
        let rep =
          match engine with
          | `Analytic ->
              let rep = Simulate.run d ~sizes in
              if trace <> None then
                observe_event_run prog.Ir.pname trace
                  (Event_sim.run ~record:true d ~sizes);
              rep
          | `Event ->
              let r = Event_sim.run ~record:(trace <> None) d ~sizes in
              observe_event_run prog.Ir.pname trace r;
              r.Event_sim.report
        in
        Format.printf "%a" Simulate.pp_report rep;
        let a = Area_model.of_design d in
        Format.printf "area: %a@." Area_model.pp a
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Parse a .ppl file, tile it, print and validate the hardware \
          design, and (with --sizes) simulate it.")
    Term.(
      const run $ file $ tiles_arg $ sizes_arg $ engine_arg $ trace_arg
      $ metrics_flag)

let bounds_cmd =
  let run bench stage =
    let prog = stage_prog bench stage in
    let accesses, ds = Bounds.audit prog in
    Format.printf "%a" Diagnostic.pp_list ds;
    let v = List.length (Diagnostic.errors ds) in
    let u = List.length ds - v in
    Printf.printf "%d accesses: %d proven, %d unknown, %d violations\n"
      accesses (accesses - u - v) u v;
    if v > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:
         "Statically verify that every input access of the (tiled) program           stays within its declared shape.")
    Term.(const run $ bench_arg $ stage_arg)

let export_cmd =
  let outdir =
    Arg.(
      value & opt string "artifacts"
      & info [ "o"; "outdir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run outdir =
    (try Unix.mkdir outdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let write name contents =
      let oc = open_out (Filename.concat outdir name) in
      output_string oc contents;
      close_out oc;
      Printf.printf "  wrote %s\n" (Filename.concat outdir name)
    in
    List.iter
      (fun (bench : Suite.bench) ->
        let r = tiling_of bench in
        let d = Experiments.design_of Experiments.Tiled_meta bench in
        write (bench.Suite.name ^ ".ppl") (Pp.program_to_string r.Tiling.tiled);
        write (bench.Suite.name ^ ".maxj") (Maxj.emit d);
        write (bench.Suite.name ^ ".dot") (Dot.emit d);
        write (bench.Suite.name ^ ".design") (Hw_pp.design_to_string d))
      (benches ());
    Printf.printf "exported %d benchmarks to %s/\n" (List.length (benches ()))
      outdir
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Write every benchmark's tiled IR, MaxJ-like kernel, Graphviz           diagram and design listing to a directory.")
    Term.(const run $ outdir)

let traffic_cmd =
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Also execute the tiled program in the interpreter (at test \
             sizes) and report its independent per-input word counts.")
  in
  let run bench profile =
    let rows = Experiments.traffic ~profile bench in
    Experiments.print_traffic bench.Suite.name rows;
    if profile then
      print_endline
        "(profile runs at test sizes; simulated columns use the same sizes)"
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Per-input DRAM read words under the baseline and tiled designs \
          (the Fig. 5c analysis generalized to any benchmark).")
    Term.(const run $ bench_arg $ profile_flag)

let check_cmd =
  let bench_opt =
    Arg.(
      value
      & pos 0 (some bench_conv) None
      & info [] ~docv:"BENCH"
          ~doc:"Benchmark to check; omitted = the whole suite.")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "After the checks, print each benchmark's top-3 cycle sinks \
             by source pattern (meta configuration, simulation sizes).")
  in
  (* each bench's checks print into its own buffer, so the whole suite
     can run benches on parallel domains and still report in order *)
  let check_bench ~profile buf (bench : Suite.bench) =
    let failures = ref 0 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let report name ok detail =
      pr "  %-28s %s%s\n" name
        (if ok then "ok" else "FAIL")
        (if detail = "" then "" else " (" ^ detail ^ ")");
      if not ok then incr failures
    in
    pr "%s\n" bench.Suite.name;
    (* 0. the source program is PPL-lint-clean at error severity — this
       runs before any tiling, where a race or legality finding still
       points at the pattern that caused it *)
    let src_lints = Ppl_lint.check_all bench.Suite.prog in
    report "lint-ir: source"
      (not (Diagnostic.has_errors src_lints))
      (if Diagnostic.has_errors src_lints then
         String.concat "; "
           (List.map
              (Format.asprintf "%a" Diagnostic.pp)
              (Diagnostic.errors src_lints))
       else Diagnostic.summary src_lints);
    let r = tiling_of bench in
    let stages =
      [ ("fused", r.Tiling.fused);
        ("strip-mined", r.Tiling.stripped);
        ("strip-mined+copies", r.Tiling.stripped_with_copies);
        ("interchanged", r.Tiling.tiled) ]
    in
    (* 1. every stage type-checks *)
    List.iter
      (fun (name, prog) ->
        match Validate.check_program prog with
        | _ -> report ("types: " ^ name) true ""
        | exception Validate.Type_error msg -> report ("types: " ^ name) false msg)
      stages;
    (* 2. every stage evaluates to the reference result *)
    let sizes = bench.Suite.test_sizes in
    let inputs = bench.Suite.gen ~sizes ~seed:2026 in
    let reference = Eval.eval_program bench.Suite.prog ~sizes ~inputs in
    List.iter
      (fun (name, prog) ->
        let v = Eval.eval_program prog ~sizes ~inputs in
        report ("semantics: " ^ name) (Value.equal ~eps:1e-6 reference v) "")
      stages;
    (* 3. printed tiled IR parses back to an equivalent program *)
    (match
       let parsed = Parser.program_of_string (Pp.program_to_string r.Tiling.tiled) in
       (* the parser mints fresh symbols: rebind sizes by base name and
          inputs by declaration order *)
       let by_base = List.map (fun (s, v) -> (Sym.base s, v)) sizes in
       let sizes' =
         List.map (fun s -> (s, List.assoc (Sym.base s) by_base)) parsed.Ir.size_params
       in
       let inputs' =
         List.map2
           (fun (pi : Ir.input) (oi : Ir.input) ->
             (pi.Ir.iname, List.assoc oi.Ir.iname inputs))
           parsed.Ir.inputs bench.Suite.prog.Ir.inputs
       in
       Eval.eval_program parsed ~sizes:sizes' ~inputs:inputs'
     with
    | v -> report "printer/parser roundtrip" (Value.equal ~eps:1e-6 reference v) ""
    | exception e -> report "printer/parser roundtrip" false (Printexc.to_string e));
    (* 4. static bounds on the tiled program *)
    let accesses, ds = Bounds.audit r.Tiling.tiled in
    let v = List.length (Diagnostic.errors ds) in
    let u = List.length ds - v in
    report "bounds: tiled accesses" (v = 0)
      (Printf.sprintf "%d proven, %d unknown, %d violations"
         (accesses - u - v) u v);
    (* 5. every configuration's design passes the hardware validator and
       is lint-clean at error severity *)
    List.iter
      (fun cfg ->
        let d = Experiments.design_of cfg bench in
        let fs = Hw_check.check d in
        report
          ("design: " ^ Experiments.config_name cfg)
          (fs = [])
          (String.concat "; "
             (List.map (Format.asprintf "%a" Diagnostic.pp) fs));
        let ls = Hw_lint.check d in
        report
          ("lint: " ^ Experiments.config_name cfg)
          (not (Diagnostic.has_errors ls))
          (if Diagnostic.has_errors ls then
             String.concat "; "
               (List.map
                  (Format.asprintf "%a" Diagnostic.pp)
                  (Diagnostic.errors ls))
           else Diagnostic.summary ls);
        (* the source linter's tile-vs-cache predictions must agree with
           the memories Lower actually instantiated for this config *)
        let lowered_prog, cache_leftover =
          match cfg with
          | Experiments.Baseline -> (r.Tiling.fused, false)
          | Experiments.Tiled | Experiments.Tiled_meta ->
              (r.Tiling.tiled, true)
        in
        let xs = Ppl_lint.crosscheck ~cache_leftover lowered_prog d in
        report
          ("access classes: " ^ Experiments.config_name cfg)
          (xs = [])
          (String.concat "; "
             (List.map (Format.asprintf "%a" Diagnostic.pp) xs)))
      [ Experiments.Baseline; Experiments.Tiled; Experiments.Tiled_meta ];
    (* 6. the two simulation engines agree on the final design *)
    let d = Experiments.design_of Experiments.Tiled_meta bench in
    let a = (Simulate.run d ~sizes:bench.Suite.sim_sizes).Simulate.cycles in
    let er = Event_sim.run d ~sizes:bench.Suite.sim_sizes in
    warn_fallbacks (bench.Suite.name ^ " (engines agree)") er;
    let e = er.Event_sim.report.Simulate.cycles in
    let dev = Float.abs (a -. e) /. Float.max a e in
    report "engines agree" (dev < 0.02) (Printf.sprintf "deviation %.2f%%" (100.0 *. dev));
    (* 7. the design fits the chip *)
    let area = Area_model.of_design d in
    report "fits Stratix V" (Area_model.fits area) "";
    if profile then begin
      let p = Profile.of_design d ~sizes:bench.Suite.sim_sizes in
      pr "  top cycle sinks (meta):\n";
      List.iter
        (fun (o : Profile.origin_row) ->
          pr "    %-36s %14.0f cycles  %5.1f%%\n" o.Profile.origin
            o.Profile.o_cycles
            (100.0 *. o.Profile.o_share))
        (Profile.top_sinks p 3)
    end;
    !failures
  in
  let run bench_opt domains profile =
    let targets =
      match bench_opt with Some b -> [ b ] | None -> benches ()
    in
    let results =
      Pool.map ?domains
        (fun b ->
          let buf = Buffer.create 1024 in
          let n = check_bench ~profile buf b in
          (Buffer.contents buf, n))
        targets
    in
    let failures =
      List.fold_left
        (fun acc (out, n) ->
          print_string out;
          acc + n)
        0 results
    in
    if failures > 0 then begin
      Printf.printf "%d check(s) failed\n" failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run every validator on a benchmark (or the suite, with benchmarks \
          checked in parallel across OCaml domains): source-level pattern \
          lint (Ppl_lint, before tiling), type checker on all tiling \
          stages, interpreter equivalence against the source program, \
          printer/parser roundtrip, static bounds, access-classification \
          cross-check against the lowered memories, analytic/event engine \
          agreement, and chip fit.")
    Term.(const run $ bench_opt $ domains_arg $ profile_flag)

let lint_cmd =
  let bench_opt =
    Arg.(
      value
      & pos 0 (some bench_conv) None
      & info [] ~docv:"BENCH"
          ~doc:"Benchmark to lint; omitted = the whole suite.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: a JSON array of per-design objects, \
             each with the design name and its diagnostics.")
  in
  let run bench_opt config json =
    let targets =
      match bench_opt with Some b -> [ b ] | None -> benches ()
    in
    let results =
      List.map
        (fun (b : Suite.bench) ->
          let d = Experiments.design_of config b in
          (b.Suite.name, d.Hw.design_name, Hw_lint.check_all d))
        targets
    in
    if json then
      Printf.printf "[%s]\n"
        (String.concat ", "
           (List.map
              (fun (bench, design, ds) ->
                Printf.sprintf
                  "{\"bench\": \"%s\", \"design\": \"%s\", \"config\": \
                   \"%s\", \"summary\": \"%s\", \"diagnostics\": %s}"
                  bench design
                  (Experiments.config_name config)
                  (Diagnostic.summary ds)
                  (Diagnostic.list_to_json ds))
              results))
    else
      List.iter
        (fun (bench, _, ds) ->
          Printf.printf "%s / %s: %s\n" bench
            (Experiments.config_name config)
            (Diagnostic.summary ds);
          Format.printf "%a" Diagnostic.pp_list ds)
        results;
    if List.exists (fun (_, _, ds) -> Diagnostic.has_errors ds) results then
      exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the design-level static analyzer on a benchmark (or the \
          suite): structural validation (Hw_check) plus semantic lints — \
          metapipeline write-after-read races, banking and port conflicts, \
          FIFO rate/deadlock analysis, tile-capacity overflows, and \
          performance hints.  Codes are cataloged in doc/LINTS.md.  Exits \
          non-zero iff any error-severity diagnostic is produced.")
    Term.(const run $ bench_opt $ config_arg $ json_flag)

let lint_ir_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "Benchmark name or a .ppl source file; omitted = the whole \
             suite.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: a JSON array of per-program objects, \
             each with the program name and its diagnostics.")
  in
  let run target json =
    let progs =
      match target with
      | None ->
          List.map
            (fun (b : Suite.bench) -> (b.Suite.name, b.Suite.prog))
            (benches ())
      | Some t when Sys.file_exists t ->
          let ic = open_in t in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          [ (Filename.basename t, Parser.program_of_string text) ]
      | Some t -> (
          match Suite.find (benches ()) t with
          | b -> [ (b.Suite.name, b.Suite.prog) ]
          | exception Not_found ->
              Printf.eprintf "unknown benchmark or file %S\n" t;
              exit 2)
    in
    let results =
      List.map (fun (name, prog) -> (name, Ppl_lint.check_all prog)) progs
    in
    if json then
      Printf.printf "[%s]\n"
        (String.concat ", "
           (List.map
              (fun (name, ds) ->
                Printf.sprintf
                  "{\"program\": \"%s\", \"summary\": \"%s\", \
                   \"diagnostics\": %s}"
                  name
                  (Diagnostic.summary ds)
                  (Diagnostic.list_to_json ds))
              results))
    else
      List.iter
        (fun (name, ds) ->
          Printf.printf "%s: %s\n" name (Diagnostic.summary ds);
          Format.printf "%a" Diagnostic.pp_list ds)
        results;
    if List.exists (fun (_, ds) -> Diagnostic.has_errors ds) results then
      exit 1
  in
  Cmd.v
    (Cmd.info "lint-ir"
       ~doc:
         "Run the source-level pattern analyzer on a benchmark, a .ppl \
          file, or the whole suite — before any tiling or lowering: \
          MultiFold/Fold accumulator race detection via affine write-map \
          injectivity, access-pattern classification (tile buffer vs \
          cache/CAM service), strip-mining legality, hygiene, and static \
          bounds.  Codes (PPL2xx) are cataloged in doc/LINTS.md.  Exits \
          non-zero iff any error-severity diagnostic is produced.")
    Term.(const run $ target $ json_flag)

let fig7_cmd =
  let run domains trace metrics =
    obs_wrap trace metrics @@ fun () ->
    Experiments.print_fig7 (Experiments.fig7 ?domains (Suite.all ()))
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Reproduce Fig. 7: speedups and relative resource usage of tiling \
          and metapipelining over the baseline, across the suite \
          (benchmarks evaluated in parallel across OCaml domains).")
    Term.(const run $ domains_arg $ trace_arg $ metrics_flag)

let timeline_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace JSON to $(docv) instead of stdout.")
  in
  let run bench config out json =
    (* compile before enabling the collector: the emitted JSON then holds
       only virtual-clock events and is bit-deterministic *)
    let d = Experiments.design_of config bench in
    Trace.clear ();
    Trace.enable ();
    let r = Event_sim.run ~record:true d ~sizes:bench.Suite.sim_sizes in
    warn_fallbacks bench.Suite.name r;
    Option.iter Sim_trace.record r.Event_sim.timeline;
    Trace.disable ();
    let trace_json = Trace.to_json () in
    (match out with
    | Some file ->
        let oc = open_out file in
        output_string oc trace_json;
        close_out oc;
        Printf.eprintf "timeline: wrote %s (open in https://ui.perfetto.dev)\n"
          file
    | None -> if not json then print_string trace_json);
    if json then
      (* --json parity with `simulate`: the same report object on stdout
         (write the trace itself with -o FILE) *)
      print_string
        (report_json ~bench:bench.Suite.name
           ~config:(Experiments.config_name config)
           ~engine:"event" r.Event_sim.report
           (Area_model.of_design d));
    prerr_string (Trace.summary ())
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Simulate with the event engine and emit its virtual-cycle Gantt \
          timeline (one track per metapipeline stage, one per top-level \
          controller, plus the DRAM-busy track) as Chrome/Perfetto \
          trace-event JSON on stdout; a per-track utilization summary \
          goes to stderr.  The output is deterministic: bit-identical \
          across runs.  An unknown benchmark name is a clean usage error \
          (non-zero exit).  With $(b,--json) stdout instead carries the \
          same machine-readable report object as $(b,simulate --json) \
          (pass $(b,-o) to still write the trace).")
    Term.(const run $ bench_arg $ config_arg $ out_arg $ json_flag)

let profile_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Benchmark name or a .ppl source file.")
  in
  let tiles_arg =
    Arg.(
      value & opt (list (pair ~sep:'=' string int)) []
      & info [ "tiles" ] ~docv:"NAME=SIZE,..."
          ~doc:"Tile configuration by size-parameter base name (.ppl targets).")
  in
  let sizes_arg =
    Arg.(
      value & opt (list (pair ~sep:'=' string int)) []
      & info [ "sizes" ] ~docv:"NAME=N,..."
          ~doc:
            "Concrete size-parameter values to profile at (required for \
             .ppl targets; benchmarks default to their simulation sizes).")
  in
  let profile_json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: the full attribution tree and \
             per-origin table as one JSON object.")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Also write folded flamegraph stacks (one \
             $(i,frame;frame;... weight) line per provenance trail, \
             weight = self cycles) to $(docv); feed to flamegraph.pl or \
             speedscope.")
  in
  let run target config tiles_spec sizes_spec json folded trace metrics =
    obs_wrap trace metrics @@ fun () ->
    let design, sizes =
      if Sys.file_exists target then begin
        let ic = open_in target in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let prog = Parser.program_of_string text in
        ignore (Validate.check_program prog);
        let resolve spec =
          List.filter_map
            (fun (name, v) ->
              match
                List.find_opt
                  (fun s -> Sym.base s = name)
                  prog.Ir.size_params
              with
              | Some s -> Some (s, v)
              | None ->
                  Printf.eprintf "warning: no size parameter %s\n" name;
                  None)
            spec
        in
        let sizes = resolve sizes_spec in
        if sizes = [] then begin
          Printf.eprintf
            "profile: %s: --sizes NAME=N,... is required for .ppl targets\n"
            target;
          exit 2
        end;
        let r = Tiling.run ~tiles:(resolve tiles_spec) prog in
        (Lower.program Lower.default_opts r.Tiling.tiled, sizes)
      end
      else
        match Suite.find (benches ()) target with
        | b -> (Experiments.design_of config b, b.Suite.sim_sizes)
        | exception Not_found ->
            Printf.eprintf "unknown benchmark or file %S (try: %s)\n" target
              (String.concat ", "
                 (List.map (fun b -> b.Suite.name) (benches ())));
            exit 2
    in
    let p = Profile.of_design design ~sizes in
    (match folded with
    | Some file ->
        let oc = open_out file in
        output_string oc (Profile.to_folded p);
        close_out oc;
        Printf.eprintf
          "profile: wrote %s (render with flamegraph.pl or speedscope)\n" file
    | None -> ());
    if json then print_string (Profile.to_json p)
    else Format.printf "%a" Profile.pp_text p
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Attribute simulated cycles (split into fill, steady-state and \
          DRAM-serialized time), DRAM traffic and modeled area back to \
          the source patterns they came from, via the provenance stamped \
          on every controller and memory.  Attribution is complete: the \
          tree's cycles sum exactly to the $(b,simulate) total.  Output \
          backends: aligned text, $(b,--json), and $(b,--folded) \
          flamegraph stacks.")
    Term.(
      const run $ target $ config_arg $ tiles_arg $ sizes_arg
      $ profile_json_flag $ folded_arg $ trace_arg $ metrics_flag)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace compiler passes.")

let () =
  let info =
    Cmd.info "ppl-fpga" ~version:"1.0.0"
      ~doc:
        "Configurable hardware from parallel patterns: tiling and \
         metapipelining compiler with an FPGA performance model."
  in
  ignore verbose_arg;
  (* light-weight: -v anywhere on the command line enables pass tracing
     (stripped before cmdliner parses the rest) *)
  let verbose = Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv in
  setup_logs verbose;
  let argv =
    Array.of_list
      (List.filter
         (fun a -> a <> "-v" && a <> "--verbose")
         (Array.to_list Sys.argv))
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group ~default info
          [ list_cmd; ir_cmd; design_cmd; maxj_cmd; dot_cmd; simulate_cmd;
            profile_cmd; timeline_cmd; verify_cmd; check_cmd; lint_cmd;
            lint_ir_cmd; traffic_cmd; stats_cmd; bounds_cmd; compile_cmd;
            dse_cmd; export_cmd; fig5c_cmd; fig7_cmd ]))
